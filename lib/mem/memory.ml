(** Byte-addressable little-endian main memory with atomic memory
    operations.  This is the architectural memory shared by the GPP and all
    LPSU lanes; speculative stores are buffered in per-lane LSQs
    ({!Xloops_sim.Lsq}) and only reach this module when they commit. *)

open Xloops_isa

exception Bad_access of { addr : int; what : string }

type t = {
  data : Bytes.t;
  size : int;
  mutable loads : int;   (* event counters for the energy model *)
  mutable stores : int;
  mutable amos : int;
  mutable journal : (int, char) Hashtbl.t option;
      (* pre-image of every byte written since [journal_begin]; rollback
         support for the machine's specialized-loop checkpoints *)
}

let create ?(size = 1 lsl 20) () =
  { data = Bytes.make size '\000'; size; loads = 0; stores = 0; amos = 0;
    journal = None }

let size t = t.size

(* -- Write journal ----------------------------------------------------- *)

(* The journal records the first pre-image of each byte written while
   active; aborting restores them, committing discards them.  This is the
   memory half of the architectural checkpoint the machine takes at
   specialized-loop entry (registers being the other half), so a faulted
   or hung LPSU run can be rolled back and re-executed traditionally. *)

let journal_active t = t.journal <> None

let journal_begin t =
  if journal_active t then
    invalid_arg "Memory.journal_begin: journal already active";
  t.journal <- Some (Hashtbl.create 64)

let journal_commit t =
  if not (journal_active t) then
    invalid_arg "Memory.journal_commit: no active journal";
  t.journal <- None

let journal_abort t =
  match t.journal with
  | None -> invalid_arg "Memory.journal_abort: no active journal"
  | Some j ->
    Hashtbl.iter (fun addr old -> Bytes.set t.data addr old) j;
    t.journal <- None

let journal_size t =
  match t.journal with None -> 0 | Some j -> Hashtbl.length j

let note_write t addr bytes =
  match t.journal with
  | None -> ()
  | Some j ->
    for a = addr to addr + bytes - 1 do
      if not (Hashtbl.mem j a) then Hashtbl.add j a (Bytes.get t.data a)
    done

let check t addr bytes what =
  if addr < 0 || addr + bytes > t.size then
    raise (Bad_access { addr; what })

let check_align addr bytes what =
  if addr mod bytes <> 0 then raise (Bad_access { addr; what })

(* Fused bounds+alignment checks: [Bad_access] carries the same payload
   whether the address is out of range or misaligned, so one combined
   branch per access suffices on the hot path. *)

let[@inline] check1 t addr what =
  if addr < 0 || addr >= t.size then raise (Bad_access { addr; what })

let[@inline] check2 t addr what =
  if addr < 0 || addr + 2 > t.size || addr land 1 <> 0 then
    raise (Bad_access { addr; what })

let[@inline] check4 t addr what =
  if addr < 0 || addr + 4 > t.size || addr land 3 <> 0 then
    raise (Bad_access { addr; what })

(* Raw accessors (no event counting): used for dataset initialization and
   for result checking. *)

let get_u8 t addr =
  check1 t addr "get_u8";
  Char.code (Bytes.unsafe_get t.data addr)

let set_u8 t addr v =
  check1 t addr "set_u8";
  note_write t addr 1;
  Bytes.unsafe_set t.data addr (Char.unsafe_chr (v land 0xFF))

let get_u16 t addr =
  check2 t addr "get_u16";
  Bytes.get_uint16_le t.data addr

let set_u16 t addr v =
  check2 t addr "set_u16";
  note_write t addr 2;
  Bytes.set_uint16_le t.data addr (v land 0xFFFF)

let get_i32 t addr : int32 =
  check4 t addr "get_i32";
  Bytes.get_int32_le t.data addr

let set_i32 t addr (v : int32) =
  check4 t addr "set_i32";
  note_write t addr 4;
  Bytes.set_int32_le t.data addr v

let get_int t addr = Int32.to_int (get_i32 t addr)
let set_int t addr v = set_i32 t addr (Int32.of_int v)

let get_f32 t addr = Int32.float_of_bits (get_i32 t addr)
let set_f32 t addr v = set_i32 t addr (Int32.bits_of_float v)

(* Architectural accessors used by the simulators. *)

let sext8 v = if v land 0x80 <> 0 then v - 0x100 else v
let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

(** [load t width addr] returns the value as a sign/zero-extended int32. *)
let load t (w : Insn.width) addr : int32 =
  t.loads <- t.loads + 1;
  match w with
  | B -> Int32.of_int (sext8 (get_u8 t addr))
  | Bu -> Int32.of_int (get_u8 t addr)
  | H -> Int32.of_int (sext16 (get_u16 t addr))
  | Hu -> Int32.of_int (get_u16 t addr)
  | W -> get_i32 t addr

let store t (w : Insn.width) addr (v : int32) =
  t.stores <- t.stores + 1;
  match w with
  | B | Bu -> set_u8 t addr (Int32.to_int v land 0xFF)
  | H | Hu -> set_u16 t addr (Int32.to_int v land 0xFFFF)
  | W -> set_i32 t addr v

(* Native-int variants of the architectural accessors, for executors
   whose register file is already sign-extended native ints (the
   predecoded and direct-threaded tiers): same checks, counters and
   journal behavior, but the value crosses the call boundary as an
   unboxed [int] instead of a boxed [int32]. *)

let load_int t (w : Insn.width) addr : int =
  t.loads <- t.loads + 1;
  match w with
  | B -> sext8 (get_u8 t addr)
  | Bu -> get_u8 t addr
  | H -> sext16 (get_u16 t addr)
  | Hu -> get_u16 t addr
  | W ->
    check4 t addr "get_i32";
    Int32.to_int (Bytes.get_int32_le t.data addr)

let store_int t (w : Insn.width) addr (v : int) =
  t.stores <- t.stores + 1;
  match w with
  | B | Bu -> set_u8 t addr (v land 0xFF)
  | H | Hu -> set_u16 t addr (v land 0xFFFF)
  | W ->
    (* [set_i32] inlined so the intermediate int32 never crosses a call
       boundary (a boxed-int32 allocation per store without flambda) *)
    check4 t addr "set_i32";
    note_write t addr 4;
    Bytes.set_int32_le t.data addr (Int32.of_int v)

(** Atomic read-modify-write on a word: returns the old value. *)
let amo t (op : Insn.amo_op) addr (v : int32) : int32 =
  t.amos <- t.amos + 1;
  let old = get_i32 t addr in
  let nv =
    match op with
    | Amo_add -> Int32.add old v
    | Amo_and -> Int32.logand old v
    | Amo_or -> Int32.logor old v
    | Amo_xchg -> v
    | Amo_min -> if Int32.compare old v <= 0 then old else v
    | Amo_max -> if Int32.compare old v >= 0 then old else v
  in
  set_i32 t addr nv;
  old

let amo_sext_shift = Sys.int_size - 32

let amo_int t (op : Insn.amo_op) addr (v : int) : int =
  t.amos <- t.amos + 1;
  check4 t addr "get_i32";
  let old = Int32.to_int (Bytes.get_int32_le t.data addr) in
  let nv =
    match op with
    | Amo_add -> ((old + v) lsl amo_sext_shift) asr amo_sext_shift
    | Amo_and -> old land v
    | Amo_or -> old lor v
    | Amo_xchg -> v
    | Amo_min -> if old <= v then old else v
    | Amo_max -> if old >= v then old else v
  in
  note_write t addr 4;
  Bytes.set_int32_le t.data addr (Int32.of_int nv);
  old

(** Number of bytes a width accesses (for address-overlap checks). *)
let width_bytes : Insn.width -> int = Insn.width_bytes

(* Bulk helpers for dataset setup / checking: one up-front range (and
   alignment) check for the whole transfer, then a raw inner loop —
   datasets are rebuilt for every uncached run, so the per-element
   checks these replace were pure overhead. *)

let check_range t ~addr ~bytes ~align what =
  if bytes > 0 then begin
    check t addr bytes what;
    check_align addr align what
  end

let blit_int_array t ~addr (a : int array) =
  let n = Array.length a in
  check_range t ~addr ~bytes:(4 * n) ~align:4 "blit_int_array";
  note_write t addr (4 * n);
  let d = t.data in
  for i = 0 to n - 1 do
    Bytes.set_int32_le d (addr + 4 * i)
      (Int32.of_int (Array.unsafe_get a i))
  done

let read_int_array t ~addr ~n =
  check_range t ~addr ~bytes:(4 * n) ~align:4 "read_int_array";
  let d = t.data in
  Array.init n (fun i -> Int32.to_int (Bytes.get_int32_le d (addr + 4 * i)))

let blit_f32_array t ~addr (a : float array) =
  let n = Array.length a in
  check_range t ~addr ~bytes:(4 * n) ~align:4 "blit_f32_array";
  note_write t addr (4 * n);
  let d = t.data in
  for i = 0 to n - 1 do
    Bytes.set_int32_le d (addr + 4 * i)
      (Int32.bits_of_float (Array.unsafe_get a i))
  done

let read_f32_array t ~addr ~n =
  check_range t ~addr ~bytes:(4 * n) ~align:4 "read_f32_array";
  let d = t.data in
  Array.init n
    (fun i -> Int32.float_of_bits (Bytes.get_int32_le d (addr + 4 * i)))

let blit_bytes t ~addr (a : int array) =
  let n = Array.length a in
  check_range t ~addr ~bytes:n ~align:1 "blit_bytes";
  note_write t addr n;
  let d = t.data in
  for i = 0 to n - 1 do
    Bytes.unsafe_set d (addr + i)
      (Char.unsafe_chr (Array.unsafe_get a i land 0xFF))
  done

let read_bytes t ~addr ~n =
  check_range t ~addr ~bytes:n ~align:1 "read_bytes";
  let d = t.data in
  Array.init n (fun i -> Char.code (Bytes.unsafe_get d (addr + i)))

let reset_counters t =
  t.loads <- 0; t.stores <- 0; t.amos <- 0
