(** Shared-resource arbiter: the LPSU lanes and the GPP dynamically
    arbitrate for the data-memory port and the long-latency functional
    unit (Figure 4).  A port grants at most [width] requests per cycle;
    [occupancy] models unpipelined resources (the divider). *)

type t

val create : ?width:int -> string -> t

val try_grant : ?occupancy:int -> t -> now:int -> bool
(** Attempt to acquire the port at cycle [now]; [occupancy > 1] keeps
    the whole port busy until [now + occupancy]. *)

val hold : t -> until:int -> unit
(** Keep the port busy until the given cycle (miss occupancy). *)

val inject_stall : t -> now:int -> cycles:int -> unit
(** Fault-injection hook: jam the port for [cycles] starting at [now],
    modelling a transient resource timeout.  Requesters see ordinary
    conflicts. *)

val grants : t -> int
val conflicts : t -> int
(** Requests that were denied and had to retry. *)

val injected_stalls : t -> int
(** Number of {!inject_stall} events applied. *)

val reset : t -> unit
