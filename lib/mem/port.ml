(** Shared-resource arbiter.  The LPSU lanes and the GPP dynamically
    arbitrate for the data-memory port and for the long-latency functional
    unit (Section II-D, Figure 4).  A port accepts at most [width] requests
    per cycle; [occupancy] additionally models an unpipelined resource that
    stays busy for several cycles (integer divide). *)

type t = {
  name : string;
  width : int;                       (* grants per cycle *)
  mutable cycle : int;               (* cycle the grant counter refers to *)
  mutable granted : int;             (* grants so far in [cycle] *)
  mutable busy_until : int;          (* for unpipelined occupancy *)
  mutable grants : int;              (* total grants (stats) *)
  mutable conflicts : int;           (* requests that had to retry (stats) *)
  mutable injected_stalls : int;     (* fault-injected busy windows *)
}

let create ?(width = 1) name =
  { name; width; cycle = -1; granted = 0; busy_until = 0;
    grants = 0; conflicts = 0; injected_stalls = 0 }

let sync_cycle t now =
  if now <> t.cycle then begin
    t.cycle <- now;
    t.granted <- 0
  end

(** [try_grant t ~now ~occupancy] attempts to acquire the port at cycle
    [now].  Returns [true] on success; [occupancy > 1] keeps the whole port
    busy (all slots) until [now + occupancy]. *)
let try_grant ?(occupancy = 1) t ~now =
  sync_cycle t now;
  if now < t.busy_until || t.granted >= t.width then begin
    t.conflicts <- t.conflicts + 1;
    false
  end else begin
    t.granted <- t.granted + 1;
    t.grants <- t.grants + 1;
    if occupancy > 1 then t.busy_until <- now + occupancy;
    true
  end

(** Extend the port's busy window (e.g. an L1 miss holds the single
    memory port until the fill returns). *)
let hold t ~until = if until > t.busy_until then t.busy_until <- until

(** Fault-injection hook: jam the port for [cycles] starting at [now],
    as if an external agent held the resource (a transient timeout).
    Requesters see ordinary conflicts; only the stall's origin differs. *)
let inject_stall t ~now ~cycles =
  hold t ~until:(now + cycles);
  t.injected_stalls <- t.injected_stalls + 1

let grants t = t.grants
let conflicts t = t.conflicts
let injected_stalls t = t.injected_stalls

let reset t =
  t.cycle <- -1; t.granted <- 0; t.busy_until <- 0;
  t.grants <- 0; t.conflicts <- 0; t.injected_stalls <- 0
