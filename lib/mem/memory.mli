(** Byte-addressable little-endian main memory with atomic memory
    operations — the architectural memory shared by the GPP and all LPSU
    lanes (speculative stores live in per-lane LSQs until commit). *)

exception Bad_access of { addr : int; what : string }
(** Raised on out-of-range or misaligned accesses. *)

type t = {
  data : Bytes.t;
  size : int;
  mutable loads : int;   (** architectural load count (energy model) *)
  mutable stores : int;
  mutable amos : int;
  mutable journal : (int, char) Hashtbl.t option;
      (** pre-images of bytes written while a journal is active *)
}

val create : ?size:int -> unit -> t
(** Default size 1 MiB, zero-filled. *)

val size : t -> int

(** {1 Write journal}

    Checkpoint/rollback support for graceful degradation: the machine
    begins a journal before handing a loop to the LPSU; every byte
    written records its pre-image, so a faulted or hung specialized run
    can be rolled back ({!journal_abort}) and the loop re-executed
    traditionally, or the journal discarded ({!journal_commit}) on a
    clean finish.  Journals do not nest. *)

val journal_begin : t -> unit
(** Raises [Invalid_argument] if a journal is already active. *)

val journal_commit : t -> unit
(** Keep the writes, drop the pre-images.  Raises [Invalid_argument]
    if no journal is active. *)

val journal_abort : t -> unit
(** Restore every journalled byte to its pre-image.  Raises
    [Invalid_argument] if no journal is active. *)

val journal_active : t -> bool
val journal_size : t -> int
(** Number of distinct bytes the active journal covers (0 if none). *)

(** {1 Raw accessors} (dataset setup / checking; not event-counted) *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_i32 : t -> int -> int32
val set_i32 : t -> int -> int32 -> unit
val get_int : t -> int -> int
val set_int : t -> int -> int -> unit
val get_f32 : t -> int -> float
val set_f32 : t -> int -> float -> unit

(** {1 Architectural accessors} (event-counted) *)

val load : t -> Xloops_isa.Insn.width -> int -> int32
(** Sign/zero-extends according to the width. *)

val store : t -> Xloops_isa.Insn.width -> int -> int32 -> unit

val amo : t -> Xloops_isa.Insn.amo_op -> int -> int32 -> int32
(** Atomic read-modify-write on a word; returns the old value. *)

(** Native-int variants for executors whose register file is already
    sign-extended native ints: same checks, counters and journal
    behavior as {!load}/{!store}/{!amo}, but values cross the call
    boundary unboxed. *)

val load_int : t -> Xloops_isa.Insn.width -> int -> int
val store_int : t -> Xloops_isa.Insn.width -> int -> int -> unit
val amo_int : t -> Xloops_isa.Insn.amo_op -> int -> int -> int

val width_bytes : Xloops_isa.Insn.width -> int

(** {1 Bulk helpers}

    One up-front range/alignment check for the whole transfer, then a
    raw inner loop; writes are journalled as a single range. *)

val blit_int_array : t -> addr:int -> int array -> unit
val read_int_array : t -> addr:int -> n:int -> int array
val blit_f32_array : t -> addr:int -> float array -> unit
val read_f32_array : t -> addr:int -> n:int -> float array
val blit_bytes : t -> addr:int -> int array -> unit
val read_bytes : t -> addr:int -> n:int -> int array

val reset_counters : t -> unit
