(** Kernel descriptor: a Loopc program, its deterministic dataset
    initializer, and a self-check against an OCaml-computed reference.
    Every Table II / Table IV / extension kernel is one of these. *)

module Memory = Xloops_mem.Memory

type bases = string -> int
(** Array base resolver: the data address the compiler placed an array
    at. *)

type t = {
  name : string;
  suite : string;           (** Po / M / P / C, as in Table II *)
  dominant : string;        (** dominant dependence pattern, e.g. "uc" *)
  kernel : Xloops_compiler.Ast.kernel;
  init : bases -> Memory.t -> unit;
  check : bases -> Memory.t -> (unit, string) result;
}

val arr : string -> Xloops_compiler.Ast.ty -> int ->
  Xloops_compiler.Ast.array_decl

(** {1 Check helpers} *)

val check_int_array :
  what:string -> expected:int array -> int array -> (unit, string) result

val check_f32_array :
  what:string -> expected:float array -> ?eps:float -> float array ->
  (unit, string) result

val check_sorted : what:string -> int array -> (unit, string) result

val check_permutation :
  what:string -> of_:int array -> int array -> (unit, string) result

val all_checks : (unit, string) result list -> (unit, string) result

(** {1 Compile-and-simulate convenience} *)

module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Compile = Xloops_compiler.Compile

type run = {
  result : Machine.result;
  compiled : Compile.compiled;
  mem : Memory.t;
  check_result : (unit, string) result;
}

val run_result :
  ?target:Compile.target -> ?cfg:Config.t -> ?mode:Machine.mode ->
  ?adaptive:Config.adaptive -> ?faults:Xloops_sim.Fault.t ->
  ?watchdog:int -> ?degrade:bool -> ?fuel:int ->
  ?trace:Xloops_sim.Trace.t ->
  t -> (run, Machine.failure) result
(** Compile, initialize a fresh memory, simulate and self-check.  A
    simulation failure (fuel exhaustion, un-degraded LPSU hang) is
    [Error]. *)

val run :
  ?target:Compile.target -> ?cfg:Config.t -> ?mode:Machine.mode ->
  ?adaptive:Config.adaptive -> ?faults:Xloops_sim.Fault.t ->
  ?watchdog:int -> ?degrade:bool -> ?fuel:int ->
  ?trace:Xloops_sim.Trace.t -> t -> run
(** {!run_result}, raising [Failure] on a simulation failure. *)

val dynamic_insns : ?target:Compile.target -> t -> (int, string) result
(** Dynamic instruction count of the serial functional execution —
    Table II's GPI/XLI columns.  [Error] if the kernel exhausts the
    functional model's fuel. *)
