(** Kernel descriptor: a Loopc program plus its dataset initializer and a
    self-check against an OCaml-computed reference.  Every Table II / IV
    application kernel in this library is one of these. *)

module Memory = Xloops_mem.Memory

(** Array base resolver: [base "name"] is the data address the compiler
    placed the array at. *)
type bases = string -> int

type t = {
  name : string;
  suite : string;           (** Po / M / P / C, as in Table II *)
  dominant : string;        (** dominant dependence pattern, e.g. "uc" *)
  kernel : Xloops_compiler.Ast.kernel;
  init : bases -> Memory.t -> unit;
  check : bases -> Memory.t -> (unit, string) result;
}

(** Array declaration shorthand for kernel definitions. *)
let arr name ty len : Xloops_compiler.Ast.array_decl =
  { a_name = name; a_ty = ty; a_len = len }

(* -- Check helpers ------------------------------------------------------ *)

let check_int_array ~what ~(expected : int array) (actual : int array) =
  let n = Array.length expected in
  if Array.length actual <> n then
    Error (Printf.sprintf "%s: length %d, expected %d" what
             (Array.length actual) n)
  else begin
    let bad = ref None in
    for i = n - 1 downto 0 do
      if expected.(i) <> actual.(i) then bad := Some i
    done;
    match !bad with
    | None -> Ok ()
    | Some i ->
      Error (Printf.sprintf "%s[%d] = %d, expected %d" what i actual.(i)
               expected.(i))
  end

let check_f32_array ~what ~(expected : float array) ?(eps = 1e-3)
    (actual : float array) =
  let n = Array.length expected in
  let bad = ref None in
  for i = n - 1 downto 0 do
    if Float.abs (expected.(i) -. actual.(i)) > eps
       *. Float.max 1.0 (Float.abs expected.(i))
    then bad := Some i
  done;
  match !bad with
  | None -> Ok ()
  | Some i ->
    Error (Printf.sprintf "%s[%d] = %g, expected %g" what i actual.(i)
             expected.(i))

let check_sorted ~what (a : int array) =
  let bad = ref None in
  for i = 0 to Array.length a - 2 do
    if a.(i) > a.(i + 1) then bad := Some i
  done;
  match !bad with
  | None -> Ok ()
  | Some i ->
    Error (Printf.sprintf "%s not sorted at %d: %d > %d" what i a.(i)
             a.(i + 1))

let check_permutation ~what ~(of_ : int array) (a : int array) =
  let sa = Array.copy a and sb = Array.copy of_ in
  Array.sort compare sa;
  Array.sort compare sb;
  if sa = sb then Ok ()
  else Error (Printf.sprintf "%s is not a permutation of the input" what)

let all_checks cs = List.fold_left (fun acc c ->
    match acc with Ok () -> c | e -> e) (Ok ()) cs

(* -- Convenience: compile and run a kernel on a config ------------------ *)

module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Compile = Xloops_compiler.Compile

type run = {
  result : Machine.result;
  compiled : Compile.compiled;
  mem : Memory.t;
  check_result : (unit, string) result;
}

(** Compile [k] for [target], initialize a fresh memory, simulate on
    [cfg]/[mode], and self-check the output.  A simulation failure (fuel,
    un-degraded hang) comes back as [Error]. *)
let run_result ?(target = Compile.xloops) ?(cfg = Config.io)
    ?(mode = Machine.Traditional) ?adaptive ?faults ?watchdog ?degrade
    ?fuel ?trace (k : t) : (run, Machine.failure) result =
  let compiled = Compile.compile ~target k.kernel in
  let mem = Memory.create () in
  k.init compiled.array_base mem;
  match Machine.simulate ?adaptive ?faults ?watchdog ?degrade ?fuel ?trace
          ~cfg ~mode compiled.program mem with
  | Error f -> Error f
  | Ok result ->
    let check_result = k.check compiled.array_base mem in
    Ok { result; compiled; mem; check_result }

(** Like {!run_result}, raising [Failure] on a simulation failure — the
    convenience form for tests and experiments where kernels are expected
    to complete. *)
let run ?target ?cfg ?mode ?adaptive ?faults ?watchdog ?degrade ?fuel
    ?trace (k : t) : run =
  match run_result ?target ?cfg ?mode ?adaptive ?faults ?watchdog
          ?degrade ?fuel ?trace k with
  | Ok r -> r
  | Error f -> failwith (Fmt.str "Kernel.run %s: %a" k.name
                           Machine.pp_failure f)

(** Dynamic instruction count of the serial functional execution —
    Table II's dynamic-instruction columns.  Observer-free, so it runs
    through the selected execution tier ({!Xloops_sim.Tier}). *)
let dynamic_insns ?(target = Compile.xloops) (k : t) =
  let compiled = Compile.compile ~target k.kernel in
  let mem = Memory.create () in
  k.init compiled.array_base mem;
  match Xloops_sim.Tier.run_serial compiled.program mem with
  | Ok r -> Ok r.dynamic_insns
  | Error stop -> Error (Fmt.str "%s: %a" k.name Xloops_sim.Exec.pp_stop stop)
