(* The spec-batch daemon.  See server.mli for the architecture contract.

   Locking discipline: [t.mu] guards the queue, the in-flight table, the
   connection list and every counter; each connection's [c_wmu] guards
   its output channel.  [t.mu] is never held across a frame write, and
   [c_wmu] is never acquired while holding [t.mu] — so a slow or dead
   client can never stall admission or the workers. *)

module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Failure = Xloops.Failure
module Chaos = Xloops.Chaos
module Digest_hex = Xloops.Digest_hex
module Stats = Xloops.Sim.Stats
module P = Protocol

type config = {
  addr : P.addr;
  workers : int;
  max_queue : int;
  cache : Run_cache.t option;
  chaos : Chaos.t option;
  default_deadline_ms : int option;
  default_max_retries : int;
  compress_threshold : int;
  banner : string;
  verbose : bool;
}

let config ~addr ?(workers = 1) ?(max_queue = 256) ?cache ?chaos
    ?deadline_ms ?(max_retries = 0) ?(compress_threshold = Codec.threshold)
    ?(banner = "xloops") ?(verbose = false) () =
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  if max_queue < 1 then invalid_arg "Server.config: max_queue must be >= 1";
  { addr; workers; max_queue; cache; chaos;
    default_deadline_ms = deadline_ms; default_max_retries = max_retries;
    compress_threshold; banner; verbose }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_wmu : Mutex.t;
  c_zthresh : int;           (* config.compress_threshold, for [send] *)
  mutable c_version : int;   (* negotiated protocol version *)
  mutable c_alive : bool;
  mutable c_pending : int;   (* results still owed for the current batch *)
  mutable c_batch : int;     (* size of the current batch *)
  mutable c_cancelled : int; (* batch entries dropped by CANCEL *)
}

type waiter = { w_conn : conn; w_index : int }

type job = {
  j_digest : Digest_hex.t;
  j_spec : Run_spec.t;
  j_deadline_ms : int option;
  j_max_retries : int;
  mutable j_started : bool;  (* picked up by a worker (v2 PROGRESS) *)
  mutable j_waiters : waiter list;
}

type wstat = { mutable ws_jobs : int; mutable ws_busy_ms : int }

type t = {
  cfg : config;
  mu : Mutex.t;
  work : Condition.t;          (* queue gained a job, or stopping *)
  stopc : Condition.t;         (* shutdown requested, or stopping *)
  queue : job Queue.t;
  inflight : (Digest_hex.t, job) Hashtbl.t;  (* queued or executing *)
  mutable conns : conn list;
  mutable next_conn : int;
  mutable stopping : bool;
  mutable shutdown_req : bool;
  lsock : Unix.file_descr;
  bound : P.addr;
  started : float;
  mutable executing : int;
  mutable accepted : int;
  mutable rejected_batches : int;
  mutable dedup_hits : int;
  mutable completed : int;
  mutable failed : int;
  wstats : wstat array;
  mutable domains : unit Domain.t list;
  mutable threads : Thread.t list;  (* acceptor + per-connection readers *)
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let logf t fmt =
  if t.cfg.verbose then Fmt.epr ("[serve] " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter ("[serve] " ^^ fmt ^^ "@.")

let bound_addr t = t.bound

(* Frame delivery: best effort under the connection's write lock.  A
   broken pipe marks the connection dead; its remaining results are
   simply dropped (the work still lands in the cache, so a reconnecting
   client resubmits and hits). *)
let send conn resp =
  Mutex.lock conn.c_wmu;
  let ok =
    conn.c_alive
    && (match
          P.write_frame conn.c_oc
            (P.encode_response ~version:conn.c_version
               ~compress_threshold:conn.c_zthresh resp)
        with
        | () -> true
        | exception (Sys_error _ | Unix.Unix_error _) ->
          conn.c_alive <- false;
          false)
  in
  Mutex.unlock conn.c_wmu;
  ok

(* PROGRESS is a v2 frame; v1 peers never see it. *)
let send_progress conn ~index =
  if conn.c_version >= 2 then
    ignore (send conn (P.Progress { index }))

let stats t : P.stats =
  locked t (fun () ->
      { P.uptime_ms =
          int_of_float (1000. *. (Unix.gettimeofday () -. t.started));
        workers = t.cfg.workers;
        queue_depth = Queue.length t.queue;
        queue_limit = t.cfg.max_queue;
        in_flight = t.executing;
        accepted = t.accepted;
        rejected_batches = t.rejected_batches;
        dedup_hits = t.dedup_hits;
        completed = t.completed;
        failed = t.failed;
        cache_hits =
          (match t.cfg.cache with Some c -> Run_cache.hits c | None -> 0);
        cache_misses =
          (match t.cfg.cache with Some c -> Run_cache.misses c | None -> 0);
        cache_stores =
          (match t.cfg.cache with Some c -> Run_cache.stores c | None -> 0);
        per_worker =
          Array.to_list
            (Array.map
               (fun w -> { P.w_jobs = w.ws_jobs; w_busy_ms = w.ws_busy_ms })
               t.wstats) })

(* -- Workers -------------------------------------------------------------- *)

(* Cache-or-simulate, marking results exactly like
   [Experiments.caching_engine] so a client-side engine built on the
   service is indistinguishable from the in-process one. *)
let simulate t spec =
  match t.cfg.cache with
  | None -> Run_spec.execute spec
  | Some cache ->
    let key = Run_spec.cache_key spec in
    (match Run_cache.find_run cache ~key with
     | Some rd -> rd.Run_spec.stats.Stats.cache_hits <- 1; rd
     | None ->
       let rd = Run_spec.execute spec in
       Run_cache.store_run cache ~key rd;
       rd.Run_spec.stats.Stats.cache_misses <- 1;
       rd)

(* One owed result has been delivered (or dropped) for [conn]'s current
   batch; when the count reaches zero the stream is closed. *)
let finish_one t conn =
  let batch_done, delivered =
    locked t (fun () ->
        conn.c_pending <- conn.c_pending - 1;
        (conn.c_pending = 0, conn.c_batch - conn.c_cancelled))
  in
  if batch_done then ignore (send conn (P.Batch_done { delivered }))

let worker t wi =
  let rec loop () =
    Mutex.lock t.mu;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.mu
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mu (* stopping, drained *)
    else begin
      let job = Queue.pop t.queue in
      (* CANCEL may have stripped every waiter while the job sat queued.
         Re-check under the same lock dedup attachment uses: nobody
         wants this result, so drop the job instead of simulating.  (A
         later twin resubmission re-queues it from scratch.) *)
      if job.j_waiters = [] then begin
        Hashtbl.remove t.inflight job.j_digest;
        Mutex.unlock t.mu;
        loop ()
      end
      else begin
      job.j_started <- true;
      let starters = job.j_waiters in
      t.executing <- t.executing + 1;
      Mutex.unlock t.mu;
      List.iter (fun w -> send_progress w.w_conn ~index:w.w_index) starters;
      let t0 = Unix.gettimeofday () in
      let deadline_ms =
        match job.j_deadline_ms with
        | Some _ as d -> d
        | None -> t.cfg.default_deadline_ms
      in
      let result =
        match
          Failure.with_retries ?deadline_ms
            ~max_retries:job.j_max_retries
            ~salt:(Digest_hex.to_hex job.j_digest)
            (fun () ->
               (match t.cfg.chaos with
                | Some c -> Chaos.before_item c
                | None -> ());
               simulate t job.j_spec)
        with
        | outcome -> outcome.Failure.result
        | exception Failure.Abort msg ->
          (* A daemon has no sweep to abort: degrade an injected
             sweep-kill to a per-job transient crash. *)
          Error (Failure.Crash { exn = "abort: " ^ msg; transient = true })
      in
      let busy_ms = int_of_float (1000. *. (Unix.gettimeofday () -. t0)) in
      let waiters =
        locked t (fun () ->
            let ws = t.wstats.(wi) in
            ws.ws_jobs <- ws.ws_jobs + 1;
            ws.ws_busy_ms <- ws.ws_busy_ms + busy_ms;
            t.executing <- t.executing - 1;
            (match result with
             | Ok _ -> t.completed <- t.completed + 1
             | Error _ -> t.failed <- t.failed + 1);
            Hashtbl.remove t.inflight job.j_digest;
            let ws = job.j_waiters in
            job.j_waiters <- [];
            ws)
      in
      (match result with
       | Ok _ -> ()
       | Error f ->
         logf t "job %s failed: %a" (Digest_hex.short job.j_digest)
           Failure.pp_tagged f);
      let outcome =
        match result with
        | Ok rd -> Ok rd
        | Error f -> Error (P.error_of_failure f)
      in
      List.iter
        (fun w ->
           ignore
             (send w.w_conn
                (P.Result { index = w.w_index; digest = job.j_digest;
                            outcome }));
           finish_one t w.w_conn)
        waiters;
      loop ()
      end
    end
  in
  loop ()

(* -- Admission ------------------------------------------------------------ *)

let reject_error code message =
  let transient =
    match code with
    | P.Overloaded | P.Shutting_down -> true
    | _ -> false
  in
  { P.code; transient; message }

(* Atomic batch admission: under one [t.mu] hold, either every spec of
   the batch is queued (or attached to an in-flight twin) or the whole
   batch is rejected. *)
let admit t conn ~deadline_ms ~max_retries specs =
  let n = List.length specs in
  let verdict =
    locked t (fun () ->
        if t.stopping then
          Error (reject_error P.Shutting_down "server is draining")
        else if conn.c_pending > 0 then
          Error
            (reject_error P.Malformed
               "a batch is already in flight on this connection")
        else begin
          let digests = List.map Run_spec.digest specs in
          let fresh = Hashtbl.create 16 in
          List.iter
            (fun d ->
               if not (Hashtbl.mem t.inflight d) then
                 Hashtbl.replace fresh d ())
            digests;
          let nfresh = Hashtbl.length fresh in
          let depth = Queue.length t.queue in
          if depth + nfresh > t.cfg.max_queue then begin
            t.rejected_batches <- t.rejected_batches + 1;
            Error
              (reject_error P.Overloaded
                 (Fmt.str "queue full: %d queued + %d new > limit %d"
                    depth nfresh t.cfg.max_queue))
          end
          else begin
            conn.c_pending <- n;
            conn.c_batch <- n;
            conn.c_cancelled <- 0;
            t.accepted <- t.accepted + n;
            let late = ref [] in
            List.iteri
              (fun i (spec, d) ->
                 match Hashtbl.find_opt t.inflight d with
                 | Some job ->
                   t.dedup_hits <- t.dedup_hits + 1;
                   job.j_waiters <-
                     { w_conn = conn; w_index = i } :: job.j_waiters;
                   (* Attached to a job already on a worker: this batch
                      entry's PROGRESS moment has passed — replay it. *)
                   if job.j_started then late := i :: !late
                 | None ->
                   let job =
                     { j_digest = d; j_spec = spec;
                       j_deadline_ms = deadline_ms;
                       j_max_retries = max_retries;
                       j_started = false;
                       j_waiters = [ { w_conn = conn; w_index = i } ] }
                   in
                   Hashtbl.replace t.inflight d job;
                   Queue.push job t.queue)
              (List.combine specs digests);
            Condition.broadcast t.work;
            Ok (nfresh, List.rev !late)
          end
        end)
  in
  match verdict with
  | Error e ->
    logf t "conn %d: batch of %d rejected (%s)" conn.c_id n
      (P.error_code_name e.P.code);
    ignore (send conn (P.Rejected e))
  | Ok (nfresh, late) ->
    logf t "conn %d: admitted batch of %d (%d fresh, %d coalesced)"
      conn.c_id n nfresh (n - nfresh);
    List.iter (fun i -> send_progress conn ~index:i) late;
    if n = 0 then ignore (send conn (P.Batch_done { delivered = 0 }))

(* CANCEL: detach this connection from every admitted-but-not-started
   job.  Executing (and finished) specs still deliver; [Batch_done]'s
   [delivered] accounts for the drop.  Jobs left waiter-less stay queued
   and are skipped at worker pop. *)
let cancel t conn =
  let batch_done, delivered, dropped =
    locked t (fun () ->
        if conn.c_pending = 0 then (false, 0, 0)
        else begin
          let dropped = ref 0 in
          Hashtbl.iter
            (fun _ job ->
               if not job.j_started then begin
                 let mine, others =
                   List.partition (fun w -> w.w_conn == conn) job.j_waiters
                 in
                 if mine <> [] then begin
                   job.j_waiters <- others;
                   dropped := !dropped + List.length mine
                 end
               end)
            t.inflight;
          conn.c_pending <- conn.c_pending - !dropped;
          conn.c_cancelled <- conn.c_cancelled + !dropped;
          (conn.c_pending = 0 && !dropped > 0,
           conn.c_batch - conn.c_cancelled, !dropped)
        end)
  in
  logf t "conn %d: cancel dropped %d queued spec(s)" conn.c_id dropped;
  if batch_done then ignore (send conn (P.Batch_done { delivered }))

(* -- Connections ---------------------------------------------------------- *)

let handshake t conn ic =
  match P.read_frame ic with
  | `Eof | `Error _ -> false
  | `Frame payload ->
    (match P.decode_request payload with
     | Ok (P.Hello { version; ocaml })
       when version >= P.min_version && version <= P.version
            && String.equal ocaml Sys.ocaml_version ->
       (* Negotiate down to the client's version; every later frame on
          this session is encoded for it. *)
       conn.c_version <- version;
       ignore
         (send conn
            (P.Welcome
               { version; ocaml = Sys.ocaml_version;
                 banner = t.cfg.banner }));
       true
     | Ok (P.Hello { version; ocaml }) ->
       ignore
         (send conn
            (P.Rejected
               (reject_error P.Version_mismatch
                  (Fmt.str
                     "server speaks protocol v%d..v%d on OCaml %s; client \
                      offered v%d on OCaml %s"
                     P.min_version P.version Sys.ocaml_version version
                     ocaml))));
       false
     | Ok _ ->
       ignore
         (send conn
            (P.Rejected
               (reject_error P.Version_mismatch
                  "expected HELLO as the first frame")));
       false
     | Error msg ->
       ignore (send conn (P.Rejected (reject_error P.Malformed msg)));
       false)

let serve_conn t conn =
  let ic = Unix.in_channel_of_descr conn.c_fd in
  if handshake t conn ic then begin
    logf t "conn %d: session open" conn.c_id;
    let closing = ref false in
    while not !closing do
      match P.read_frame ic with
      | `Eof -> closing := true
      | `Error msg ->
        logf t "conn %d: read error: %s" conn.c_id msg;
        closing := true
      | `Frame payload ->
        (match P.decode_request payload with
         | Error msg ->
           ignore (send conn (P.Rejected (reject_error P.Malformed msg)));
           closing := true
         | Ok (P.Hello _) ->
           ignore
             (send conn
                (P.Rejected (reject_error P.Malformed "duplicate HELLO")));
           closing := true
         | Ok (P.Submit { deadline_ms; max_retries; specs }) ->
           admit t conn ~deadline_ms ~max_retries specs
         | Ok P.Cancel -> cancel t conn
         | Ok P.Stats -> ignore (send conn (P.Stats_reply (stats t)))
         | Ok P.Ping -> ignore (send conn P.Pong)
         | Ok P.Shutdown ->
           ignore (send conn P.Bye);
           locked t (fun () ->
               t.shutdown_req <- true;
               Condition.broadcast t.stopc);
           logf t "conn %d: shutdown requested" conn.c_id;
           closing := true)
    done
  end;
  Mutex.lock conn.c_wmu;
  conn.c_alive <- false;
  Mutex.unlock conn.c_wmu;
  locked t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns);
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  logf t "conn %d: closed" conn.c_id

let acceptor t =
  let continue = ref true in
  while !continue do
    if locked t (fun () -> t.stopping) then continue := false
    else
      match Unix.select [ t.lsock ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> begin
          match Unix.accept t.lsock with
          | exception Unix.Unix_error _ -> () (* racing stop; loop re-checks *)
          | fd, _ ->
            P.set_nodelay fd;
            let conn =
              locked t (fun () ->
                  let id = t.next_conn in
                  t.next_conn <- id + 1;
                  let c =
                    { c_id = id; c_fd = fd;
                      c_oc = Unix.out_channel_of_descr fd;
                      c_wmu = Mutex.create ();
                      c_zthresh = t.cfg.compress_threshold;
                      c_version = P.version; c_alive = true;
                      c_pending = 0; c_batch = 0; c_cancelled = 0 }
                  in
                  t.conns <- c :: t.conns;
                  c)
            in
            let th = Thread.create (fun () -> serve_conn t conn) () in
            locked t (fun () -> t.threads <- th :: t.threads)
        end
  done

(* -- Lifecycle ------------------------------------------------------------ *)

let listen_on (addr : P.addr) =
  match addr with
  | P.Unix_path path ->
    (* A stale socket file left by a killed daemon blocks bind. *)
    (match (Unix.stat path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink path
     | _ -> ()
     | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, addr)
  | P.Tcp (host, _) ->
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (P.sockaddr_of addr);
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, port) -> P.Tcp (host, port)
      | _ -> addr
    in
    (fd, bound)

let start (cfg : config) =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Option.iter (fun c -> ignore (Run_cache.reap_tmp c)) cfg.cache;
  let lsock, bound = listen_on cfg.addr in
  let t =
    { cfg; mu = Mutex.create (); work = Condition.create ();
      stopc = Condition.create (); queue = Queue.create ();
      inflight = Hashtbl.create 64; conns = []; next_conn = 0;
      stopping = false; shutdown_req = false; lsock; bound;
      started = Unix.gettimeofday (); executing = 0; accepted = 0;
      rejected_batches = 0; dedup_hits = 0; completed = 0; failed = 0;
      wstats = Array.init cfg.workers (fun _ -> { ws_jobs = 0; ws_busy_ms = 0 });
      domains = []; threads = [] }
  in
  t.domains <-
    List.init cfg.workers (fun wi -> Domain.spawn (fun () -> worker t wi));
  let acc = Thread.create (fun () -> acceptor t) () in
  t.threads <- [ acc ];
  logf t "listening on %a: %d worker(s), queue limit %d, cache %s, chaos %s"
    P.pp_addr bound cfg.workers cfg.max_queue
    (if Option.is_some cfg.cache then "on" else "off")
    (if Option.is_some cfg.chaos then "on" else "off");
  t

let stop t =
  let already =
    locked t (fun () ->
        let a = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.work;
        Condition.broadcast t.stopc;
        a)
  in
  if not already then begin
    logf t "stopping: draining %d queued job(s)"
      (locked t (fun () -> Queue.length t.queue));
    (* Join the acceptor and every reader; readers unblock when their
       connection is shut down.  The acceptor may still register a last
       thread before it notices [stopping], so pop until empty. *)
    let rec drain_threads () =
      locked t (fun () ->
          List.iter
            (fun c ->
               try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
               with Unix.Unix_error _ | Invalid_argument _ -> ())
            t.conns);
      match
        locked t (fun () ->
            match t.threads with
            | [] -> None
            | th :: rest -> t.threads <- rest; Some th)
      with
      | Some th -> Thread.join th; drain_threads ()
      | None -> ()
    in
    drain_threads ();
    (* Workers drain the queue, then exit on [stopping]. *)
    List.iter Domain.join t.domains;
    t.domains <- [];
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    (match t.bound with
     | P.Unix_path path ->
       (try Unix.unlink path with Unix.Unix_error _ -> ())
     | P.Tcp _ -> ());
    logf t "stopped: %a" P.pp_stats (stats t)
  end

let wait t =
  Mutex.lock t.mu;
  while not (t.shutdown_req || t.stopping) do
    Condition.wait t.stopc t.mu
  done;
  Mutex.unlock t.mu

let run cfg =
  let t = start cfg in
  wait t;
  stop t
