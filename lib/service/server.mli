(** The spec-batch daemon: a persistent simulation service over the
    run-spec engine.

    One process, three populations of control flow:

    {ul
    {- an {e acceptor} thread listening on the configured address and
       spawning one reader thread per connection;}
    {- {e reader} threads enforcing the {!Protocol} handshake and state
       machine (one outstanding batch per connection), running admission
       control, and answering [STATS]/[PING] inline;}
    {- {e worker} domains pulling admitted jobs off a bounded queue and
       executing them under the retry policy ({!Xloops.Failure.with_retries}),
       consulting and populating the on-disk result cache before
       simulating.}}

    Admission is atomic per batch: a [Submit] either enters the queue
    whole or is rejected whole with [Overloaded] (queue full, transient)
    — no partial acceptance.  Specs are deduplicated in flight by
    {!Xloops.Run_spec.digest}: a spec equal to one already queued or
    executing attaches as a second waiter instead of simulating twice;
    each waiter still receives its own [Result] frame.  Results stream
    back in completion order, tagged with their batch index, and
    [Batch_done] closes the stream.

    Sessions negotiate their protocol version down to the client's
    ({!Protocol.min_version} .. {!Protocol.version}): a v1 session gets
    the v1 byte stream exactly (no [Progress] frames, no compressed
    blobs), a v2 session additionally receives [Progress] when a spec of
    its batch starts executing, may [Cancel] its queued-but-unstarted
    specs, and receives large result blobs LZSS-compressed.

    Chaos ({!Xloops.Chaos}) can be injected server-side — worker stalls
    and transient crashes before each job, cache read errors and blob
    corruption through the cache handle — and the retry policy must
    absorb all of it without changing any client-visible result. *)

module Run_cache = Xloops.Run_cache
module Chaos = Xloops.Chaos

type config = {
  addr : Protocol.addr;
  workers : int;                    (** simulation domains (>= 1) *)
  max_queue : int;                  (** admission bound on queued jobs *)
  cache : Run_cache.t option;       (** consult/populate before simulating *)
  chaos : Chaos.t option;           (** server-side fault injection *)
  default_deadline_ms : int option; (** for [Submit]s that carry none *)
  default_max_retries : int;
  compress_threshold : int;         (** v2 blob compression cutoff *)
  banner : string;                  (** free-text, echoed in [Welcome] *)
  verbose : bool;                   (** [serve] diagnostics on stderr *)
}

val config :
  addr:Protocol.addr -> ?workers:int -> ?max_queue:int ->
  ?cache:Run_cache.t -> ?chaos:Chaos.t -> ?deadline_ms:int ->
  ?max_retries:int -> ?compress_threshold:int -> ?banner:string ->
  ?verbose:bool -> unit -> config
(** Defaults: 1 worker, queue bound 256, no cache, no chaos, no
    deadline, 0 retries, {!Codec.threshold} compression cutoff, quiet.
    Raises [Invalid_argument] on a non-positive worker count or queue
    bound. *)

type t

val listen_on : Protocol.addr -> Unix.file_descr * Protocol.addr
(** Bind + listen on an address, returning the socket and the actual
    bound address (a [Tcp (host, 0)] request carries the kernel-assigned
    port back).  Unlinks a stale Unix socket file first.  Shared with
    {!Proxy}, which fronts the same protocol. *)

val start : config -> t
(** Bind, listen, spawn workers and the acceptor, return immediately.
    Raises [Unix.Unix_error] if the address cannot be bound.  A stale
    Unix socket file left by a killed daemon is unlinked first. *)

val bound_addr : t -> Protocol.addr
(** The actual listening address — for [Tcp (host, 0)] this carries the
    kernel-assigned port. *)

val stats : t -> Protocol.stats
(** The same snapshot a [STATS] request returns. *)

val stop : t -> unit
(** Stop accepting, drain already-admitted jobs through the workers,
    disconnect clients, join every thread and domain, close and (for
    Unix sockets) unlink the listening socket.  Idempotent. *)

val wait : t -> unit
(** Block until a client's [SHUTDOWN] request arrives (or {!stop} is
    called from another thread). *)

val run : config -> unit
(** [start] + [wait] + [stop] — the blocking form the daemon binary
    uses. *)
