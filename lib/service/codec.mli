(** Pure-OCaml LZSS compression for protocol v2 result blobs.

    Marshalled [run_data] blobs are highly repetitive (field headers,
    zero runs), so a small sliding-window codec recovers most of the
    wire bytes without any new dependency.  The format is 4 bytes of
    big-endian uncompressed length followed by flag-grouped tokens:
    literal bytes and 2-byte [(offset, length)] back-references into a
    4096-byte window (match lengths 3..18).

    {!decompress} is total and validating — truncated streams,
    out-of-window offsets, overruns of the declared length and trailing
    bytes are all [Error], never an exception or garbage — because its
    input arrives off the network. *)

val threshold : int
(** 4096 bytes: blobs smaller than this ship uncompressed — framing
    overhead and codec time exceed the savings. *)

val compress : string -> string
(** Never raises; output may exceed the input for incompressible data
    (worst case 9/8 + 4 bytes), which is why callers compare sizes and
    keep the plain encoding when compression does not pay. *)

val decompress : string -> (string, string) result
