(** Client side of the xloops service: a thin session layer over the
    wire protocol, a fault-tolerant batch runner, and an
    {!Xloops.Experiments.engine} adapter that makes a remote daemon a
    drop-in replacement for the in-process run engine.

    The session layer ({!connect}/{!submit}/…) is deliberately dumb —
    one request, blocking reads, structured errors.  The resilience
    lives in {!run_plan}: it chunks a plan into batches, reconnects with
    deterministic backoff when the daemon dies or refuses ([Overloaded],
    [Shutting_down], connection errors), and resubmits exactly the specs
    it has no result for — so a daemon kill/restart mid-plan costs only
    the re-simulation the server's cache doesn't absorb. *)

module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Experiments = Xloops.Experiments
module Digest_hex = Xloops.Digest_hex

(** {1 Sessions} *)

type session
(** One connected, handshaken client connection. *)

type connect_error =
  | Refused of Protocol.error
      (** the server answered the handshake with [Rejected] — e.g.
          [Version_mismatch] *)
  | Conn of string
      (** socket-level trouble: connection refused, reset, bad frame *)

val pp_connect_error : Format.formatter -> connect_error -> unit

val connect :
  ?version:int -> ?ocaml:string -> Protocol.addr ->
  (session, connect_error) result
(** Dial, send [Hello], wait for [Welcome].  [version] (default
    {!Protocol.version}) is the protocol version to offer — pass [1] to
    run a v1 session against a v2 server; [ocaml] overrides the
    advertised compiler version (tests exercise the server's rejection
    path). *)

val banner : session -> string
(** The server's [Welcome] banner. *)

val negotiated_version : session -> int
(** The protocol version the [Welcome] confirmed for this session. *)

val close : session -> unit

type submit_error =
  | Submit_rejected of Protocol.error  (** whole batch refused *)
  | Submit_conn of string              (** connection died mid-stream *)

val submit :
  session -> ?deadline_ms:int -> ?max_retries:int ->
  ?on_progress:(index:int -> unit) ->
  on_result:
    (index:int -> digest:Digest_hex.t ->
     (Run_spec.run_data, Protocol.error) result -> unit) ->
  Run_spec.t list -> (int, submit_error) result
(** One batch: send [Submit], invoke [on_result] for each streamed
    [Result] (completion order, [index] is the spec's position in this
    batch), return the server's [Batch_done] count.  On a v2 session,
    [on_progress] fires for each [Progress] frame (spec [index] started
    executing); without it, progress frames are consumed silently. *)

val cancel : session -> (unit, submit_error) result
(** v2: ask the server to drop this connection's queued-but-unstarted
    specs.  Write-only — safe to call from [on_result]/[on_progress]
    while {!submit} is still streaming; the effect shows up as an early
    [Batch_done] with a reduced [delivered] count.  [Submit_rejected]
    with [Version_mismatch] on a v1 session. *)

val stats : session -> (Protocol.stats, submit_error) result
val ping : session -> (unit, submit_error) result
val shutdown : session -> (unit, submit_error) result
(** Ask the daemon to shut down; [Ok ()] means it answered [Bye]. *)

(** {1 The fault-tolerant plan runner} *)

val run_plan :
  ?chunk:int -> ?max_attempts:int -> ?deadline_ms:int ->
  ?max_retries:int -> Protocol.addr -> Run_spec.t list ->
  ((Run_spec.run_data, Protocol.error) result array, string) result
(** Run a whole plan through the service: batches of [chunk] (default
    64) specs, [max_attempts] (default 10) connection rounds with
    {!Xloops.Failure.backoff_ms} sleeps between them.  Permanent
    per-spec failures are final immediately; transient ones and specs
    orphaned by a dropped connection are resubmitted on the next round.
    [Error] only when the server rejects for a permanent reason (e.g.
    version mismatch) — an unreachable daemon surfaces as per-spec
    transient errors after the attempt budget, so the caller can report
    exactly which specs are missing. *)

(** {1 The remote engine} *)

exception Remote_error of Protocol.error
(** Raised by the remote engine's [run] when the service reports a
    failure for an on-demand spec. *)

val engine :
  ?cache:Run_cache.t -> ?chunk:int -> ?max_attempts:int ->
  ?deadline_ms:int -> ?max_retries:int -> Protocol.addr ->
  Experiments.engine * (Run_spec.t list -> (Run_spec.t * Protocol.error) list)
(** [(eng, warm)]: [warm plan] pushes the plan through {!run_plan},
    memoizes every success, and returns the failures; [eng.run] serves
    from the memo and falls back to a single-spec fetch (raising
    {!Remote_error} on failure), so table assembly after a warm pass is
    local and byte-identical to the in-process engines.  [eng.meta] is
    computed locally (kernel metadata never crosses the wire), through
    [cache] when given. *)
