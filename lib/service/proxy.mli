(** The fleet balancer: one {!Protocol}-speaking front door over a
    sharded fleet of {!Server} daemons.

    The proxy speaks the same wire protocol on both faces.  Downstream
    it is a server — handshake with version negotiation, one batch per
    connection, completion-order [Result] streaming, [Batch_done] —
    and upstream it is a v2 {!Client} of every shard in its
    {!Shard.t} descriptor.

    A [Submit] is partitioned by {!Shard.route} on each spec's digest
    and fanned out; each shard's results are forwarded to the client as
    they stream back, re-tagged with the spec's index in the {e
    client's} batch, so the merged stream is exactly what a single big
    daemon would produce (modulo completion order, which was never
    deterministic).  [Progress] frames forward the same way to v2
    clients.

    Failure handling per shard mirrors {!Client.run_plan}: transient
    refusals, transient per-spec errors and dropped connections are
    retried with deterministic backoff up to [max_attempts] rounds,
    resubmitting only unanswered specs; a shard that stays down is
    {e failed over} — its specs execute locally through the proxy's
    cache handle (the shared fleet cache, so nothing already computed
    re-simulates) — unless failover is disabled, in which case its
    specs are answered with transient [Io_error]s the client can retry.

    [Cancel] from the client is forwarded to every shard session active
    for that connection, and remaining unanswered specs are dropped at
    the next round boundary.  [Stats] fans out and sums the shards'
    replies ([per_worker] concatenates in shard order; unreachable
    shards contribute nothing).  [Shutdown] stops the proxy only — the
    fleet's daemons have their own lifecycles. *)

module Run_cache = Xloops.Run_cache

type config = {
  addr : Protocol.addr;            (** where the proxy listens *)
  shards : Shard.t;
  chunk : int;                     (** specs per upstream [Submit] *)
  max_attempts : int;              (** rounds per shard before failover *)
  default_deadline_ms : int option;(** forwarded upstream when the
                                       client's [Submit] carries none *)
  default_max_retries : int;
  failover : bool;                 (** execute locally when a shard
                                       stays down *)
  cache : Run_cache.t option;      (** for local failover execution *)
  compress_threshold : int;        (** client-facing v2 compression *)
  banner : string;
  verbose : bool;
}

val config :
  addr:Protocol.addr -> shards:Shard.t -> ?chunk:int ->
  ?max_attempts:int -> ?deadline_ms:int -> ?max_retries:int ->
  ?failover:bool -> ?cache:Run_cache.t -> ?compress_threshold:int ->
  ?banner:string -> ?verbose:bool -> unit -> config
(** Defaults: chunk 64, 5 attempts, no deadline, 0 retries, failover
    on, no cache, {!Codec.threshold}, quiet. *)

type t

val start : config -> t
val bound_addr : t -> Protocol.addr
val stop : t -> unit
val wait : t -> unit
(** Same lifecycle contract as {!Server}. *)

val run : config -> unit
