(* Digest-prefix sharding.  See shard.mli. *)

module Digest_hex = Xloops.Digest_hex

type shard = {
  lo : int;
  hi : int;
  addr : Protocol.addr;
}

type t = {
  ranges : shard array;
  table : int array;   (* 256 prefix bytes -> index into [ranges] *)
}

let shards t = t.ranges

let of_shards = function
  | [] -> Error "shard map is empty"
  | l ->
    let ranges =
      Array.of_list (List.sort (fun a b -> compare a.lo b.lo) l)
    in
    let table = Array.make 256 (-1) in
    let err = ref None in
    Array.iteri
      (fun i s ->
         if !err = None then
           if s.lo < 0 || s.hi > 0xff || s.lo > s.hi then
             err :=
               Some (Fmt.str "shard %a: bad range %02x-%02x"
                       Protocol.pp_addr s.addr s.lo s.hi)
           else
             for b = s.lo to s.hi do
               if table.(b) >= 0 then
                 err :=
                   Some (Fmt.str "prefix %02x claimed by both %a and %a" b
                           Protocol.pp_addr ranges.(table.(b)).addr
                           Protocol.pp_addr s.addr)
               else table.(b) <- i
             done)
      ranges;
    (match !err with
     | Some _ -> ()
     | None ->
       Array.iteri
         (fun b i ->
            if i < 0 && !err = None then
              err := Some (Fmt.str "prefix %02x not covered by any shard" b))
         table);
    (match !err with Some m -> Error m | None -> Ok { ranges; table })

let hex2 s =
  if String.length s = 2 then
    let d c =
      match c with
      | '0' .. '9' -> Some (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
      | _ -> None
    in
    match d s.[0], d s.[1] with
    | Some h, Some l -> Some ((h lsl 4) lor l)
    | _ -> None
  else None

let parse_spec s =
  (* LO-HI=ADDR *)
  match String.index_opt s '=' with
  | None -> Error (Fmt.str "bad shard %S (want LO-HI=ADDR)" s)
  | Some i ->
    let range = String.sub s 0 i in
    let addr = String.sub s (i + 1) (String.length s - i - 1) in
    (match String.index_opt range '-' with
     | Some 2 when String.length range = 5 ->
       (match hex2 (String.sub range 0 2), hex2 (String.sub range 3 2) with
        | Some lo, Some hi ->
          Result.map (fun addr -> { lo; hi; addr }) (Protocol.parse_addr addr)
        | _ ->
          Error
            (Fmt.str "bad prefix range %S in shard %S (want two lowercase \
                      hex digits each side)" range s))
     | _ -> Error (Fmt.str "bad prefix range %S in shard %S" range s))

let of_specs specs =
  let rec go acc = function
    | [] -> of_shards (List.rev acc)
    | s :: rest ->
      (match parse_spec s with
       | Ok sh -> go (sh :: acc) rest
       | Error _ as e -> e)
  in
  go [] specs

let even addrs =
  let n = List.length addrs in
  if n < 1 || n > 256 then
    invalid_arg "Shard.even: need 1..256 addresses";
  let ranges =
    List.mapi
      (fun i addr ->
         { lo = i * 256 / n; hi = ((i + 1) * 256 / n) - 1; addr })
      addrs
  in
  match of_shards ranges with
  | Ok t -> t
  | Error m -> invalid_arg ("Shard.even: " ^ m)   (* unreachable *)

let route t d =
  (* The digest's first two hex chars are its cache shard; hex2 cannot
     fail on a Digest_hex (lowercase hex by construction). *)
  match hex2 (Digest_hex.shard d) with
  | Some b -> t.table.(b)
  | None -> assert false

let pp ppf t =
  Array.iteri
    (fun i s ->
       if i > 0 then Fmt.pf ppf ", ";
       Fmt.pf ppf "%02x-%02x=%a" s.lo s.hi Protocol.pp_addr s.addr)
    t.ranges
