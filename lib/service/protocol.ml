(* Wire protocol v2 (v1 still spoken): framing, message codec, and the
   failure-taxonomy mapping.  See protocol.mli for the format contract. *)

module Run_spec = Xloops.Run_spec
module Failure = Xloops.Failure
module Digest_hex = Xloops.Digest_hex

let version = 2
let min_version = 1

let max_frame_bytes = 64 * 1024 * 1024

(* -- Addresses ------------------------------------------------------------ *)

(* The address grammar is shared with every CLI ([--listen], [--server],
   [--shard]), so the single parser lives in [Cli_common]; this module
   re-exports it so protocol users need not depend on the CLI library's
   name. *)

type addr = Cli_common.addr =
  | Unix_path of string
  | Tcp of string * int

let parse_addr = Cli_common.parse_addr
let pp_addr = Cli_common.pp_addr
let sockaddr_of = Cli_common.sockaddr_of

(* The protocol is request/response with small frames; Nagle's
   algorithm serializes those round trips against delayed ACKs and
   can cost tens of ms per exchange.  No-op on AF_UNIX sockets. *)
let set_nodelay fd =
  try Unix.setsockopt fd Unix.TCP_NODELAY true
  with Unix.Unix_error _ | Invalid_argument _ -> ()

(* -- Errors -------------------------------------------------------------- *)

type error_code =
  | Version_mismatch
  | Malformed
  | Overloaded
  | Shutting_down
  | Sim_error
  | Check_error
  | Timeout_error
  | Crash_error
  | Io_error

type error = {
  code : error_code;
  transient : bool;
  message : string;
}

let error_of_failure (f : Failure.t) : error =
  let code =
    match f with
    | Failure.Sim _ -> Sim_error
    | Failure.Check _ -> Check_error
    | Failure.Timeout _ -> Timeout_error
    | Failure.Crash _ -> Crash_error
    | Failure.Io _ -> Io_error
  in
  { code; transient = Failure.is_transient f;
    message = Fmt.str "%a" Failure.pp f }

let error_code_name = function
  | Version_mismatch -> "version-mismatch"
  | Malformed -> "malformed"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting-down"
  | Sim_error -> "sim"
  | Check_error -> "check"
  | Timeout_error -> "timeout"
  | Crash_error -> "crash"
  | Io_error -> "io"

let pp_error ppf e =
  Fmt.pf ppf "[%s%s] %s" (error_code_name e.code)
    (if e.transient then "/transient" else "") e.message

(* -- Stats --------------------------------------------------------------- *)

type worker_stat = {
  w_jobs : int;
  w_busy_ms : int;
}

type stats = {
  uptime_ms : int;
  workers : int;
  queue_depth : int;
  queue_limit : int;
  in_flight : int;
  accepted : int;
  rejected_batches : int;
  dedup_hits : int;
  completed : int;
  failed : int;
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  per_worker : worker_stat list;
}

let pp_stats ppf s =
  Fmt.pf ppf
    "up %.1fs, %d worker(s), queue %d/%d, %d in flight; %d accepted \
     (%d dedup), %d batch(es) rejected; %d completed, %d failed; cache \
     %d hit(s) / %d miss(es) / %d store(s)"
    (float_of_int s.uptime_ms /. 1000.) s.workers s.queue_depth
    s.queue_limit s.in_flight s.accepted s.dedup_hits s.rejected_batches
    s.completed s.failed s.cache_hits s.cache_misses s.cache_stores;
  List.iteri
    (fun i w ->
       Fmt.pf ppf "; w%d: %d job(s) %d ms" i w.w_jobs w.w_busy_ms)
    s.per_worker

(* Machine-readable stats for [--stats --json].  Every field is an
   integer, so hand-rolled rendering is exact (no escaping, no float
   formatting) and costs no dependency. *)
let stats_to_json (s : stats) =
  let b = Buffer.create 256 in
  let field name v =
    if Buffer.length b > 1 then Buffer.add_char b ',';
    Buffer.add_string b (Fmt.str "%S:%d" name v)
  in
  Buffer.add_char b '{';
  field "uptime_ms" s.uptime_ms;
  field "workers" s.workers;
  field "queue_depth" s.queue_depth;
  field "queue_limit" s.queue_limit;
  field "in_flight" s.in_flight;
  field "accepted" s.accepted;
  field "rejected_batches" s.rejected_batches;
  field "dedup_hits" s.dedup_hits;
  field "completed" s.completed;
  field "failed" s.failed;
  field "cache_hits" s.cache_hits;
  field "cache_misses" s.cache_misses;
  field "cache_stores" s.cache_stores;
  Buffer.add_string b ",\"per_worker\":[";
  List.iteri
    (fun i w ->
       if i > 0 then Buffer.add_char b ',';
       Buffer.add_string b
         (Fmt.str "{\"jobs\":%d,\"busy_ms\":%d}" w.w_jobs w.w_busy_ms))
    s.per_worker;
  Buffer.add_string b "]}";
  Buffer.contents b

(* -- Field codec --------------------------------------------------------- *)

(* Same style as Run_spec's canonical encoding: decimal integers with a
   ';' terminator, length-prefixed strings, one-byte tags.  Decoding is
   strict and total — any malformation raises [Bad], caught at the
   message boundary. *)

let enc_int b n = Buffer.add_string b (string_of_int n); Buffer.add_char b ';'
let enc_str b s = enc_int b (String.length s); Buffer.add_string b s
let enc_bool b v = Buffer.add_char b (if v then 't' else 'f')

exception Bad of string

type cursor = { s : string; mutable pos : int }

let fail_at c msg = raise (Bad (Fmt.str "%s at byte %d" msg c.pos))

let dec_char c =
  if c.pos >= String.length c.s then fail_at c "unexpected end of payload";
  let ch = c.s.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let dec_int c =
  let start = c.pos in
  if c.pos < String.length c.s && c.s.[c.pos] = '-' then c.pos <- c.pos + 1;
  let digits0 = c.pos in
  while c.pos < String.length c.s
        && (match c.s.[c.pos] with '0' .. '9' -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  if c.pos = digits0 then fail_at c "expected an integer";
  if dec_char c <> ';' then fail_at c "expected ';' after integer";
  match int_of_string (String.sub c.s start (c.pos - 1 - start)) with
  | n -> n
  | exception Stdlib.Failure _ -> fail_at c "integer out of range"

let dec_str c =
  let n = dec_int c in
  if n < 0 || c.pos + n > String.length c.s then
    fail_at c "string length overruns payload";
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let dec_bool c =
  match dec_char c with
  | 't' -> true
  | 'f' -> false
  | _ -> fail_at c "expected a bool tag"

let enc_int_opt b = function
  | None -> Buffer.add_char b 'n'
  | Some v -> Buffer.add_char b 's'; enc_int b v

let dec_int_opt c =
  match dec_char c with
  | 'n' -> None
  | 's' -> Some (dec_int c)
  | _ -> fail_at c "expected an option tag"

let finish c v =
  if c.pos <> String.length c.s then fail_at c "trailing bytes";
  v

(* -- Error / stats codec -------------------------------------------------- *)

let error_code_tag = function
  | Version_mismatch -> 'V'
  | Malformed -> 'M'
  | Overloaded -> 'O'
  | Shutting_down -> 'D'
  | Sim_error -> 'S'
  | Check_error -> 'C'
  | Timeout_error -> 'T'
  | Crash_error -> 'R'
  | Io_error -> 'I'

let error_code_of_tag c = function
  | 'V' -> Version_mismatch
  | 'M' -> Malformed
  | 'O' -> Overloaded
  | 'D' -> Shutting_down
  | 'S' -> Sim_error
  | 'C' -> Check_error
  | 'T' -> Timeout_error
  | 'R' -> Crash_error
  | 'I' -> Io_error
  | _ -> fail_at c "unknown error-code tag"

let enc_error b (e : error) =
  Buffer.add_char b (error_code_tag e.code);
  enc_bool b e.transient;
  enc_str b e.message

let dec_error c : error =
  let code = error_code_of_tag c (dec_char c) in
  let transient = dec_bool c in
  let message = dec_str c in
  { code; transient; message }

let enc_stats b (s : stats) =
  List.iter (enc_int b)
    [ s.uptime_ms; s.workers; s.queue_depth; s.queue_limit; s.in_flight;
      s.accepted; s.rejected_batches; s.dedup_hits; s.completed; s.failed;
      s.cache_hits; s.cache_misses; s.cache_stores ];
  enc_int b (List.length s.per_worker);
  List.iter
    (fun w -> enc_int b w.w_jobs; enc_int b w.w_busy_ms)
    s.per_worker

let dec_stats c : stats =
  let uptime_ms = dec_int c in
  let workers = dec_int c in
  let queue_depth = dec_int c in
  let queue_limit = dec_int c in
  let in_flight = dec_int c in
  let accepted = dec_int c in
  let rejected_batches = dec_int c in
  let dedup_hits = dec_int c in
  let completed = dec_int c in
  let failed = dec_int c in
  let cache_hits = dec_int c in
  let cache_misses = dec_int c in
  let cache_stores = dec_int c in
  let n = dec_int c in
  if n < 0 || n > 4096 then fail_at c "implausible worker count";
  let per_worker =
    List.init n (fun _ ->
        let w_jobs = dec_int c in
        let w_busy_ms = dec_int c in
        { w_jobs; w_busy_ms })
  in
  { uptime_ms; workers; queue_depth; queue_limit; in_flight; accepted;
    rejected_batches; dedup_hits; completed; failed; cache_hits;
    cache_misses; cache_stores; per_worker }

(* -- run_data transport --------------------------------------------------- *)

(* Results are checksummed [Marshal] blobs, exactly like the on-disk
   result cache (PR 6): the handshake pins both the protocol version and
   the OCaml version, which is what makes [Marshal] safe here, and the
   MD5 prefix catches in-flight truncation or corruption. *)

let bytes_of_run_data (rd : Run_spec.run_data) =
  let body = Marshal.to_string rd [] in
  (Digest.string body : Digest.t :> string) ^ body

let run_data_of_bytes s : (Run_spec.run_data, string) result =
  if String.length s < 16 then Error "run_data blob shorter than checksum"
  else
    let sum = String.sub s 0 16 in
    let body = String.sub s 16 (String.length s - 16) in
    if not (String.equal (Digest.string body) sum) then
      Error "run_data checksum mismatch"
    else
      match (Marshal.from_string body 0 : Run_spec.run_data) with
      | rd -> Ok rd
      | exception Stdlib.Failure m -> Error ("run_data unmarshal: " ^ m)

(* -- Messages ------------------------------------------------------------- *)

type request =
  | Hello of { version : int; ocaml : string }
  | Submit of {
      deadline_ms : int option;
      max_retries : int;
      specs : Run_spec.t list;
    }
  | Cancel                                             (* v2 *)
  | Stats
  | Ping
  | Shutdown

type response =
  | Welcome of { version : int; ocaml : string; banner : string }
  | Result of {
      index : int;
      digest : Digest_hex.t;
      outcome : (Run_spec.run_data, error) result;
    }
  | Progress of { index : int }                        (* v2 *)
  | Batch_done of { delivered : int }
  | Stats_reply of stats
  | Pong
  | Rejected of error
  | Bye

let encode_request (r : request) =
  let b = Buffer.create 256 in
  (match r with
   | Hello { version; ocaml } ->
     Buffer.add_char b 'H'; enc_int b version; enc_str b ocaml
   | Submit { deadline_ms; max_retries; specs } ->
     Buffer.add_char b 'S';
     enc_int_opt b deadline_ms;
     enc_int b max_retries;
     enc_int b (List.length specs);
     List.iter (fun spec -> enc_str b (Run_spec.encode spec)) specs
   | Cancel -> Buffer.add_char b 'C'
   | Stats -> Buffer.add_char b 'T'
   | Ping -> Buffer.add_char b 'P'
   | Shutdown -> Buffer.add_char b 'Q');
  Buffer.contents b

let decode_request s : (request, string) result =
  let c = { s; pos = 0 } in
  match
    match dec_char c with
    | 'H' ->
      let version = dec_int c in
      let ocaml = dec_str c in
      finish c (Hello { version; ocaml })
    | 'S' ->
      let deadline_ms = dec_int_opt c in
      let max_retries = dec_int c in
      let n = dec_int c in
      if n < 0 || n > 1_000_000 then fail_at c "implausible batch size";
      let specs =
        List.init n (fun i ->
            match Run_spec.decode (dec_str c) with
            | Ok spec -> spec
            | Error msg ->
              raise (Bad (Fmt.str "spec %d of %d: %s" i n msg)))
      in
      finish c (Submit { deadline_ms; max_retries; specs })
    | 'C' -> finish c Cancel
    | 'T' -> finish c Stats
    | 'P' -> finish c Ping
    | 'Q' -> finish c Shutdown
    | _ -> fail_at c "unknown request tag"
  with
  | req -> Ok req
  | exception Bad msg -> Error ("decode_request: " ^ msg)

let encode_response ?(version = version) ?(compress_threshold = Codec.threshold)
    (r : response) =
  let b = Buffer.create 256 in
  (match r with
   | Welcome { version; ocaml; banner } ->
     Buffer.add_char b 'W'; enc_int b version; enc_str b ocaml;
     enc_str b banner
   | Result { index; digest; outcome } ->
     Buffer.add_char b 'R';
     enc_int b index;
     enc_str b (Digest_hex.to_hex digest);
     (match outcome with
      | Ok rd ->
        let blob = bytes_of_run_data rd in
        (* 'z' (LZSS) only to v2 peers, only above the threshold, and
           only when compression actually pays. *)
        let compressed =
          if version >= 2 && String.length blob >= compress_threshold then
            let z = Codec.compress blob in
            if String.length z < String.length blob then Some z else None
          else None
        in
        (match compressed with
         | Some z -> Buffer.add_char b 'z'; enc_str b z
         | None -> Buffer.add_char b 'k'; enc_str b blob)
      | Error e -> Buffer.add_char b 'e'; enc_error b e)
   | Progress { index } -> Buffer.add_char b 'G'; enc_int b index
   | Batch_done { delivered } -> Buffer.add_char b 'D'; enc_int b delivered
   | Stats_reply st -> Buffer.add_char b 'A'; enc_stats b st
   | Pong -> Buffer.add_char b 'O'
   | Rejected e -> Buffer.add_char b 'E'; enc_error b e
   | Bye -> Buffer.add_char b 'B');
  Buffer.contents b

let decode_response s : (response, string) result =
  let c = { s; pos = 0 } in
  match
    match dec_char c with
    | 'W' ->
      let version = dec_int c in
      let ocaml = dec_str c in
      let banner = dec_str c in
      finish c (Welcome { version; ocaml; banner })
    | 'R' ->
      let index = dec_int c in
      let digest =
        match Digest_hex.of_hex (dec_str c) with
        | Ok d -> d
        | Error msg -> fail_at c msg
      in
      let outcome =
        match dec_char c with
        | 'k' ->
          (match run_data_of_bytes (dec_str c) with
           | Ok rd -> Ok rd
           | Error msg -> fail_at c msg)
        | 'z' ->
          (match Codec.decompress (dec_str c) with
           | Error msg -> fail_at c msg
           | Ok blob ->
             (match run_data_of_bytes blob with
              | Ok rd -> Ok rd
              | Error msg -> fail_at c msg))
        | 'e' -> Error (dec_error c)
        | _ -> fail_at c "unknown outcome tag"
      in
      finish c (Result { index; digest; outcome })
    | 'G' -> let index = dec_int c in finish c (Progress { index })
    | 'D' -> let delivered = dec_int c in finish c (Batch_done { delivered })
    | 'A' -> finish c (Stats_reply (dec_stats c))
    | 'O' -> finish c Pong
    | 'E' -> finish c (Rejected (dec_error c))
    | 'B' -> finish c Bye
    | _ -> fail_at c "unknown response tag"
  with
  | resp -> Ok resp
  | exception Bad msg -> Error ("decode_response: " ^ msg)

(* -- Framing -------------------------------------------------------------- *)

let write_frame oc payload =
  let n = String.length payload in
  if n > max_frame_bytes then
    invalid_arg (Fmt.str "Protocol.write_frame: %d-byte frame" n);
  let hdr = Bytes.create 4 in
  Bytes.set_uint8 hdr 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 hdr 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 hdr 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 hdr 3 (n land 0xff);
  output_bytes oc hdr;
  output_string oc payload;
  flush oc

let read_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> `Eof
  | exception Sys_error msg -> `Error msg
  | hdr ->
    let n =
      (Char.code hdr.[0] lsl 24) lor (Char.code hdr.[1] lsl 16)
      lor (Char.code hdr.[2] lsl 8) lor Char.code hdr.[3]
    in
    if n > max_frame_bytes then
      `Error (Fmt.str "frame length %d exceeds limit" n)
    else
      match really_input_string ic n with
      | payload -> `Frame payload
      | exception End_of_file -> `Error "truncated frame"
      | exception Sys_error msg -> `Error msg
