(* The fleet balancer.  See proxy.mli for the contract.

   Threading: an acceptor thread, one reader thread per client
   connection, and per batch one orchestrator thread that fans out one
   worker thread per shard holding specs.  The reader stays free while a
   batch runs so CANCEL can arrive mid-stream; orchestrator and shard
   workers are tracked and joined on [stop].

   Locking: [t.mu] guards proxy-wide state, each connection's [c_wmu]
   guards its output channel (never held across upstream IO), and
   [c_smu] guards the cancel flag + the set of live upstream sessions
   the reader forwards CANCEL into. *)

module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Failure = Xloops.Failure
module Digest_hex = Xloops.Digest_hex
module Stats = Xloops.Sim.Stats
module P = Protocol

type config = {
  addr : P.addr;
  shards : Shard.t;
  chunk : int;
  max_attempts : int;
  default_deadline_ms : int option;
  default_max_retries : int;
  failover : bool;
  cache : Run_cache.t option;
  compress_threshold : int;
  banner : string;
  verbose : bool;
}

let config ~addr ~shards ?(chunk = 64) ?(max_attempts = 5) ?deadline_ms
    ?(max_retries = 0) ?(failover = true) ?cache
    ?(compress_threshold = Codec.threshold) ?(banner = "xloops-proxy")
    ?(verbose = false) () =
  if chunk < 1 then invalid_arg "Proxy.config: chunk must be >= 1";
  if max_attempts < 1 then
    invalid_arg "Proxy.config: max_attempts must be >= 1";
  { addr; shards; chunk; max_attempts; default_deadline_ms = deadline_ms;
    default_max_retries = max_retries; failover; cache; compress_threshold;
    banner; verbose }

type conn = {
  c_id : int;
  c_fd : Unix.file_descr;
  c_oc : out_channel;
  c_wmu : Mutex.t;
  c_smu : Mutex.t;
  c_zthresh : int;
  mutable c_version : int;
  mutable c_alive : bool;
  mutable c_busy : bool;                    (* a batch is orchestrating *)
  mutable c_cancel : bool;
  mutable c_sessions : Client.session list; (* live upstream sessions *)
}

type t = {
  cfg : config;
  mu : Mutex.t;
  stopc : Condition.t;
  mutable conns : conn list;
  mutable next_conn : int;
  mutable stopping : bool;
  mutable shutdown_req : bool;
  lsock : Unix.file_descr;
  bound : P.addr;
  mutable threads : Thread.t list;
}

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let slocked conn f =
  Mutex.lock conn.c_smu;
  Fun.protect ~finally:(fun () -> Mutex.unlock conn.c_smu) f

let logf t fmt =
  if t.cfg.verbose then Fmt.epr ("[proxy] " ^^ fmt ^^ "@.")
  else Format.ifprintf Format.err_formatter ("[proxy] " ^^ fmt ^^ "@.")

let bound_addr t = t.bound

let send conn resp =
  Mutex.lock conn.c_wmu;
  let ok =
    conn.c_alive
    && (match
          P.write_frame conn.c_oc
            (P.encode_response ~version:conn.c_version
               ~compress_threshold:conn.c_zthresh resp)
        with
        | () -> true
        | exception (Sys_error _ | Unix.Unix_error _) ->
          conn.c_alive <- false;
          false)
  in
  Mutex.unlock conn.c_wmu;
  ok

let reject_error code message =
  let transient =
    match code with
    | P.Overloaded | P.Shutting_down -> true
    | _ -> false
  in
  { P.code; transient; message }

(* -- Local failover execution --------------------------------------------- *)

(* Cache-or-simulate exactly like [Server.simulate]: through the shared
   fleet cache when configured, so failover never re-computes what any
   shard already stored. *)
let simulate_local t spec =
  match t.cfg.cache with
  | None -> Run_spec.execute spec
  | Some cache ->
    let key = Run_spec.cache_key spec in
    (match Run_cache.find_run cache ~key with
     | Some rd -> rd.Run_spec.stats.Stats.cache_hits <- 1; rd
     | None ->
       let rd = Run_spec.execute spec in
       Run_cache.store_run cache ~key rd;
       rd.Run_spec.stats.Stats.cache_misses <- 1;
       rd)

let failover_outcome t ~deadline_ms ~max_retries spec =
  let digest = Run_spec.digest spec in
  match
    Failure.with_retries ?deadline_ms ~max_retries
      ~salt:(Digest_hex.to_hex digest)
      (fun () -> simulate_local t spec)
  with
  | outcome ->
    (match outcome.Failure.result with
     | Ok rd -> Ok rd
     | Error f -> Error (P.error_of_failure f))
  | exception Failure.Abort msg ->
    Error
      { P.code = P.Crash_error; transient = true;
        message = "abort during failover: " ^ msg }

(* -- Batch orchestration --------------------------------------------------- *)

exception Round_over

(* One shard's slice of the batch: rounds of dial + submit-unanswered,
   transient trouble retried with deterministic backoff, then failover
   or per-spec transient errors.  [indices] are positions in the
   client's batch; only this thread touches them, so [answered] needs no
   lock.  [deliver] forwards one final outcome to the client. *)
let shard_worker t conn ~deadline_ms ~max_retries ~spec_arr ~answered
    ~deliver si indices =
  let shard = (Shard.shards t.cfg.shards).(si) in
  let last_err : P.error option array =
    Array.make (Array.length spec_arr) None in
  let cancelled () = slocked conn (fun () -> conn.c_cancel) in
  let running () =
    conn.c_alive && (not (cancelled ()))
    && not (locked t (fun () -> t.stopping))
  in
  let pending () = List.filter (fun gi -> not answered.(gi)) indices in
  let finalize gi outcome = answered.(gi) <- true; deliver gi outcome in
  let register sess =
    slocked conn (fun () -> conn.c_sessions <- sess :: conn.c_sessions)
  in
  let unregister sess =
    slocked conn (fun () ->
        conn.c_sessions <-
          List.filter (fun s -> s != sess) conn.c_sessions)
  in
  let rec chunks_of k = function
    | [] -> []
    | l ->
      let rec take acc n = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | x :: rest -> take (x :: acc) (n - 1) rest
      in
      let c, rest = take [] k l in
      c :: chunks_of k rest
  in
  let attempt = ref 0 in
  while pending () <> [] && !attempt < t.cfg.max_attempts && running () do
    incr attempt;
    if !attempt > 1 then
      Unix.sleepf
        (float_of_int
           (Failure.backoff_ms ~base_ms:50 ~cap_ms:2000 ~seed:1
              ~salt:(Fmt.str "xloops-proxy-shard%d" si) ~attempt:!attempt ())
         /. 1000.);
    match Client.connect shard.Shard.addr with
    | Error (Client.Refused e) when e.P.transient ->
      () (* shard overloaded or draining: back off and redial *)
    | Error (Client.Refused e) ->
      (* Permanent refusal (protocol/OCaml skew): retrying cannot help
         and neither can local failover make the fleet healthy — answer
         every pending spec with the shard's verdict. *)
      let msg =
        Fmt.str "shard %a refused: %a" P.pp_addr shard.Shard.addr
          P.pp_error e
      in
      List.iter
        (fun gi ->
           finalize gi
             (Error { P.code = e.P.code; transient = false; message = msg }))
        (pending ())
    | Error (Client.Conn _) ->
      () (* shard down or restarting: back off and redial *)
    | Ok sess ->
      register sess;
      (try
         List.iter
           (fun chunk ->
              if not (running ()) then raise Round_over;
              let index_arr = Array.of_list chunk in
              let batch =
                List.map (fun gi -> spec_arr.(gi)) chunk in
              match
                Client.submit sess ?deadline_ms ~max_retries batch
                  ~on_progress:(fun ~index ->
                      if conn.c_version >= 2 then
                        ignore
                          (send conn
                             (P.Progress { index = index_arr.(index) })))
                  ~on_result:(fun ~index ~digest:_ outcome ->
                      let gi = index_arr.(index) in
                      match outcome with
                      | Ok rd -> finalize gi (Ok rd)
                      | Error e when not e.P.transient ->
                        finalize gi (Error e)
                      | Error e -> last_err.(gi) <- Some e)
              with
              | Ok _ -> ()
              | Error (Client.Submit_rejected e) when e.P.transient ->
                raise Round_over (* shard queue full: next round *)
              | Error (Client.Submit_rejected e) ->
                List.iter (fun gi -> finalize gi (Error e)) (pending ());
                raise Round_over
              | Error (Client.Submit_conn _) ->
                raise Round_over (* reconnect next round *))
           (chunks_of t.cfg.chunk (pending ()))
       with Round_over -> ());
      unregister sess;
      Client.close sess
  done;
  (* Out of attempts (or cancelled/stopping).  Cancelled specs are
     simply dropped — the client asked for that; otherwise the shard is
     considered down and the proxy degrades. *)
  let leftovers = pending () in
  if leftovers <> [] && not (cancelled ()) then begin
    if t.cfg.failover then begin
      logf t "shard %a down after %d attempt(s): failing %d spec(s) over \
              to local execution"
        P.pp_addr shard.Shard.addr t.cfg.max_attempts
        (List.length leftovers);
      List.iter
        (fun gi ->
           if running () then
             finalize gi
               (failover_outcome t ~deadline_ms ~max_retries spec_arr.(gi)))
        leftovers
    end
    else
      List.iter
        (fun gi ->
           let e =
             match last_err.(gi) with
             | Some e -> e
             | None ->
               { P.code = P.Io_error; transient = true;
                 message =
                   Fmt.str "shard %a unreachable after %d attempt(s)"
                     P.pp_addr shard.Shard.addr t.cfg.max_attempts }
           in
           finalize gi (Error e))
        leftovers
  end

let orchestrate t conn ~deadline_ms ~max_retries specs =
  let spec_arr = Array.of_list specs in
  let n = Array.length spec_arr in
  let answered = Array.make n false in
  let delivered = ref 0 in
  let dmu = Mutex.create () in
  let deliver gi outcome =
    let digest = Run_spec.digest spec_arr.(gi) in
    if send conn (P.Result { index = gi; digest; outcome }) then begin
      Mutex.lock dmu;
      incr delivered;
      Mutex.unlock dmu
    end
  in
  (* Partition the batch by home shard. *)
  let nshards = Array.length (Shard.shards t.cfg.shards) in
  let buckets = Array.make nshards [] in
  Array.iteri
    (fun gi spec ->
       let si = Shard.route t.cfg.shards (Run_spec.digest spec) in
       buckets.(si) <- gi :: buckets.(si))
    spec_arr;
  let workers =
    List.filter_map
      (fun si ->
         match List.rev buckets.(si) with
         | [] -> None
         | indices ->
           Some
             (Thread.create
                (fun () ->
                   shard_worker t conn ~deadline_ms ~max_retries ~spec_arr
                     ~answered ~deliver si indices)
                ()))
      (List.init nshards Fun.id)
  in
  List.iter Thread.join workers;
  (* Clear the busy flag before Batch_done goes out: the moment the
     client sees the frame it may legally submit its next batch, and
     the reader thread must not bounce it off a stale flag. *)
  slocked conn (fun () -> conn.c_cancel <- false);
  conn.c_busy <- false;
  ignore (send conn (P.Batch_done { delivered = !delivered }));
  logf t "conn %d: batch of %d done, %d delivered" conn.c_id n !delivered

(* -- Fan-out requests ------------------------------------------------------ *)

let zero_stats : P.stats = {
  P.uptime_ms = 0; workers = 0; queue_depth = 0; queue_limit = 0;
  in_flight = 0; accepted = 0; rejected_batches = 0; dedup_hits = 0;
  completed = 0; failed = 0; cache_hits = 0; cache_misses = 0;
  cache_stores = 0; per_worker = [];
}

let add_stats (a : P.stats) (b : P.stats) : P.stats = {
  P.uptime_ms = max a.P.uptime_ms b.P.uptime_ms;
  workers = a.P.workers + b.P.workers;
  queue_depth = a.P.queue_depth + b.P.queue_depth;
  queue_limit = a.P.queue_limit + b.P.queue_limit;
  in_flight = a.P.in_flight + b.P.in_flight;
  accepted = a.P.accepted + b.P.accepted;
  rejected_batches = a.P.rejected_batches + b.P.rejected_batches;
  dedup_hits = a.P.dedup_hits + b.P.dedup_hits;
  completed = a.P.completed + b.P.completed;
  failed = a.P.failed + b.P.failed;
  cache_hits = a.P.cache_hits + b.P.cache_hits;
  cache_misses = a.P.cache_misses + b.P.cache_misses;
  cache_stores = a.P.cache_stores + b.P.cache_stores;
  per_worker = a.P.per_worker @ b.P.per_worker;
}

(* Fleet stats: dial every shard and sum.  A shard that is down simply
   contributes nothing — the proxy's stats must work exactly when the
   operator is diagnosing a sick fleet. *)
let fleet_stats t =
  Array.fold_left
    (fun acc (s : Shard.shard) ->
       match Client.connect s.Shard.addr with
       | Error _ -> acc
       | Ok sess ->
         let acc =
           match Client.stats sess with
           | Ok st -> add_stats acc st
           | Error _ -> acc
         in
         Client.close sess;
         acc)
    zero_stats (Shard.shards t.cfg.shards)

let forward_cancel t conn =
  let sessions = slocked conn (fun () -> conn.c_cancel <- true; conn.c_sessions) in
  List.iter (fun sess -> ignore (Client.cancel sess)) sessions;
  logf t "conn %d: cancel forwarded to %d shard session(s)" conn.c_id
    (List.length sessions)

(* -- Connections ----------------------------------------------------------- *)

let handshake t conn ic =
  match P.read_frame ic with
  | `Eof | `Error _ -> false
  | `Frame payload ->
    (match P.decode_request payload with
     | Ok (P.Hello { version; ocaml })
       when version >= P.min_version && version <= P.version
            && String.equal ocaml Sys.ocaml_version ->
       conn.c_version <- version;
       ignore
         (send conn
            (P.Welcome
               { version; ocaml = Sys.ocaml_version;
                 banner = t.cfg.banner }));
       true
     | Ok (P.Hello { version; ocaml }) ->
       ignore
         (send conn
            (P.Rejected
               (reject_error P.Version_mismatch
                  (Fmt.str
                     "proxy speaks protocol v%d..v%d on OCaml %s; client \
                      offered v%d on OCaml %s"
                     P.min_version P.version Sys.ocaml_version version
                     ocaml))));
       false
     | Ok _ ->
       ignore
         (send conn
            (P.Rejected
               (reject_error P.Version_mismatch
                  "expected HELLO as the first frame")));
       false
     | Error msg ->
       ignore (send conn (P.Rejected (reject_error P.Malformed msg)));
       false)

let serve_conn t conn =
  let ic = Unix.in_channel_of_descr conn.c_fd in
  if handshake t conn ic then begin
    logf t "conn %d: session open (v%d)" conn.c_id conn.c_version;
    let closing = ref false in
    while not !closing do
      match P.read_frame ic with
      | `Eof -> closing := true
      | `Error msg ->
        logf t "conn %d: read error: %s" conn.c_id msg;
        closing := true
      | `Frame payload ->
        (match P.decode_request payload with
         | Error msg ->
           ignore (send conn (P.Rejected (reject_error P.Malformed msg)));
           closing := true
         | Ok (P.Hello _) ->
           ignore
             (send conn
                (P.Rejected (reject_error P.Malformed "duplicate HELLO")));
           closing := true
         | Ok (P.Submit { deadline_ms; max_retries; specs }) ->
           if conn.c_busy then begin
             ignore
               (send conn
                  (P.Rejected
                     (reject_error P.Malformed
                        "a batch is already in flight on this connection")));
             closing := true
           end
           else if locked t (fun () -> t.stopping) then
             ignore
               (send conn
                  (P.Rejected
                     (reject_error P.Shutting_down "proxy is draining")))
           else if specs = [] then
             ignore (send conn (P.Batch_done { delivered = 0 }))
           else begin
             conn.c_busy <- true;
             slocked conn (fun () -> conn.c_cancel <- false);
             let deadline_ms =
               match deadline_ms with
               | Some _ as d -> d
               | None -> t.cfg.default_deadline_ms
             in
             let max_retries =
               max max_retries t.cfg.default_max_retries in
             (* The reader stays on the socket for CANCEL; the batch
                runs on its own thread. *)
             let th =
               Thread.create
                 (fun () ->
                    orchestrate t conn ~deadline_ms ~max_retries specs)
                 ()
             in
             locked t (fun () -> t.threads <- th :: t.threads)
           end
         | Ok P.Cancel -> forward_cancel t conn
         | Ok P.Stats ->
           ignore (send conn (P.Stats_reply (fleet_stats t)))
         | Ok P.Ping -> ignore (send conn P.Pong)
         | Ok P.Shutdown ->
           ignore (send conn P.Bye);
           locked t (fun () ->
               t.shutdown_req <- true;
               Condition.broadcast t.stopc);
           logf t "conn %d: shutdown requested" conn.c_id;
           closing := true)
    done
  end;
  Mutex.lock conn.c_wmu;
  conn.c_alive <- false;
  Mutex.unlock conn.c_wmu;
  locked t (fun () -> t.conns <- List.filter (fun c -> c != conn) t.conns);
  (try Unix.close conn.c_fd with Unix.Unix_error _ -> ());
  logf t "conn %d: closed" conn.c_id

let acceptor t =
  let continue = ref true in
  while !continue do
    if locked t (fun () -> t.stopping) then continue := false
    else
      match Unix.select [ t.lsock ] [] [] 0.25 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | [], _, _ -> ()
      | _ -> begin
          match Unix.accept t.lsock with
          | exception Unix.Unix_error _ -> ()
          | fd, _ ->
            P.set_nodelay fd;
            let conn =
              locked t (fun () ->
                  let id = t.next_conn in
                  t.next_conn <- id + 1;
                  let c =
                    { c_id = id; c_fd = fd;
                      c_oc = Unix.out_channel_of_descr fd;
                      c_wmu = Mutex.create (); c_smu = Mutex.create ();
                      c_zthresh = t.cfg.compress_threshold;
                      c_version = P.version; c_alive = true;
                      c_busy = false; c_cancel = false; c_sessions = [] }
                  in
                  t.conns <- c :: t.conns;
                  c)
            in
            let th = Thread.create (fun () -> serve_conn t conn) () in
            locked t (fun () -> t.threads <- th :: t.threads)
        end
  done

(* -- Lifecycle ------------------------------------------------------------- *)

let start (cfg : config) =
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Option.iter (fun c -> ignore (Run_cache.reap_tmp c)) cfg.cache;
  let lsock, bound = Server.listen_on cfg.addr in
  let t =
    { cfg; mu = Mutex.create (); stopc = Condition.create (); conns = [];
      next_conn = 0; stopping = false; shutdown_req = false; lsock; bound;
      threads = [] }
  in
  let acc = Thread.create (fun () -> acceptor t) () in
  t.threads <- [ acc ];
  logf t "listening on %a for fleet [%a]: chunk %d, %d attempt(s), \
          failover %s"
    P.pp_addr bound Shard.pp cfg.shards cfg.chunk cfg.max_attempts
    (if cfg.failover then "on" else "off");
  t

let stop t =
  let already =
    locked t (fun () ->
        let a = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.stopc;
        a)
  in
  if not already then begin
    let rec drain_threads () =
      locked t (fun () ->
          List.iter
            (fun c ->
               try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL
               with Unix.Unix_error _ | Invalid_argument _ -> ())
            t.conns);
      match
        locked t (fun () ->
            match t.threads with
            | [] -> None
            | th :: rest -> t.threads <- rest; Some th)
      with
      | Some th -> Thread.join th; drain_threads ()
      | None -> ()
    in
    drain_threads ();
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    (match t.bound with
     | P.Unix_path path ->
       (try Unix.unlink path with Unix.Unix_error _ -> ())
     | P.Tcp _ -> ());
    logf t "stopped"
  end

let wait t =
  Mutex.lock t.mu;
  while not (t.shutdown_req || t.stopping) do
    Condition.wait t.stopc t.mu
  done;
  Mutex.unlock t.mu

let run cfg =
  let t = start cfg in
  wait t;
  stop t
