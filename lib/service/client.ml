(* Client side of the xloops service.  See client.mli. *)

module Run_spec = Xloops.Run_spec
module Run_cache = Xloops.Run_cache
module Experiments = Xloops.Experiments
module Failure = Xloops.Failure
module Digest_hex = Xloops.Digest_hex
module P = Protocol

type session = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  s_banner : string;
  s_version : int;           (* negotiated in the handshake *)
  s_wmu : Mutex.t;           (* [cancel] writes from a callback thread *)
  mutable alive : bool;
}

type connect_error =
  | Refused of P.error
  | Conn of string

let pp_connect_error ppf = function
  | Refused e -> Fmt.pf ppf "refused: %a" P.pp_error e
  | Conn msg -> Fmt.pf ppf "connection: %s" msg

let banner s = s.s_banner
let negotiated_version s = s.s_version

let close s =
  if s.alive then begin
    s.alive <- false;
    try Unix.close s.fd with Unix.Unix_error _ -> ()
  end

let connect ?(version = P.version) ?(ocaml = Sys.ocaml_version) addr =
  (* A daemon dying under us must surface as an error code, not kill
     the whole client process. *)
  if Sys.unix then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let sa = P.sockaddr_of addr in
  let fd = Unix.socket (Unix.domain_of_sockaddr sa) Unix.SOCK_STREAM 0 in
  match Unix.connect fd sa with
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (Conn (Fmt.str "connect %a: %s" P.pp_addr addr
                   (Unix.error_message e)))
  | () ->
    P.set_nodelay fd;
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let fail msg =
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Conn msg)
    in
    (match
       P.write_frame oc (P.encode_request (P.Hello { version; ocaml }))
     with
     | exception (Sys_error m | Stdlib.Failure m) -> fail m
     | () ->
       (match P.read_frame ic with
        | `Eof -> fail "server closed the connection during handshake"
        | `Error m -> fail m
        | `Frame payload ->
          (match P.decode_response payload with
           | Ok (P.Welcome { banner = b; version = v; _ }) ->
             Ok { fd; ic; oc; s_banner = b; s_version = v;
                  s_wmu = Mutex.create (); alive = true }
           | Ok (P.Rejected e) ->
             (try Unix.close fd with Unix.Unix_error _ -> ());
             Error (Refused e)
           | Ok _ -> fail "unexpected response to HELLO"
           | Error m -> fail ("bad handshake frame: " ^ m))))

type submit_error =
  | Submit_rejected of P.error
  | Submit_conn of string

let send_request s req =
  Mutex.lock s.s_wmu;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.s_wmu) @@ fun () ->
  match P.write_frame s.oc (P.encode_request req) with
  | () -> Ok ()
  | exception (Sys_error m | Stdlib.Failure m) -> Error (Submit_conn m)

let read_response s =
  match P.read_frame s.ic with
  | `Eof -> Error (Submit_conn "server closed the connection")
  | `Error m -> Error (Submit_conn m)
  | `Frame payload ->
    (match P.decode_response payload with
     | Ok r -> Ok r
     | Error m -> Error (Submit_conn ("bad frame: " ^ m)))

let submit s ?deadline_ms ?(max_retries = 0) ?on_progress ~on_result specs =
  match send_request s (P.Submit { deadline_ms; max_retries; specs }) with
  | Error _ as e -> e
  | Ok () ->
    let rec loop () =
      match read_response s with
      | Error _ as e -> e
      | Ok (P.Result { index; digest; outcome }) ->
        on_result ~index ~digest outcome;
        loop ()
      | Ok (P.Progress { index }) ->
        (match on_progress with
         | Some f -> f ~index
         | None -> ());  (* v2 servers send these unasked; ignore *)
        loop ()
      | Ok (P.Batch_done { delivered }) -> Ok delivered
      | Ok (P.Rejected e) -> Error (Submit_rejected e)
      | Ok _ -> Error (Submit_conn "unexpected response mid-batch")
    in
    loop ()

(* Write-only: the reply is the early [Batch_done] the in-progress
   [submit] loop is already reading.  Callable from [on_result] /
   [on_progress] (the writer mutex, not the reader, is taken). *)
let cancel s =
  if s.s_version < 2 then
    Error
      (Submit_rejected
         { P.code = P.Version_mismatch; transient = false;
           message = "CANCEL requires protocol v2" })
  else send_request s P.Cancel

let simple_request s req ~expect =
  match send_request s req with
  | Error _ as e -> e
  | Ok () ->
    (match read_response s with
     | Error _ as e -> e
     | Ok resp ->
       (match expect resp with
        | Some v -> Ok v
        | None ->
          (match resp with
           | P.Rejected e -> Error (Submit_rejected e)
           | _ -> Error (Submit_conn "unexpected response"))))

let stats s =
  simple_request s P.Stats
    ~expect:(function P.Stats_reply st -> Some st | _ -> None)

let ping s =
  simple_request s P.Ping ~expect:(function P.Pong -> Some () | _ -> None)

let shutdown s =
  simple_request s P.Shutdown ~expect:(function P.Bye -> Some () | _ -> None)

(* -- The fault-tolerant plan runner --------------------------------------- *)

let chunks_of k l =
  let rec go acc cur ncur = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if ncur = k then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (ncur + 1) rest
  in
  go [] [] 0 l

exception Round_over

let run_plan ?(chunk = 64) ?(max_attempts = 10) ?deadline_ms
    ?(max_retries = 0) addr specs =
  if chunk < 1 then invalid_arg "Client.run_plan: chunk must be >= 1";
  let spec_arr = Array.of_list specs in
  let n = Array.length spec_arr in
  let final :
    (Run_spec.run_data, P.error) result option array = Array.make n None in
  let last_err : P.error option array = Array.make n None in
  let fatal = ref None in
  let pending () =
    let idx = ref [] in
    for i = n - 1 downto 0 do
      if final.(i) = None then idx := i :: !idx
    done;
    !idx
  in
  let attempt = ref 0 in
  let todo = ref (pending ()) in
  while !fatal = None && !todo <> [] && !attempt < max_attempts do
    incr attempt;
    if !attempt > 1 then
      Unix.sleepf
        (float_of_int
           (Failure.backoff_ms ~base_ms:50 ~cap_ms:2000 ~seed:1
              ~salt:"xloops-client" ~attempt:!attempt ())
         /. 1000.);
    (match connect addr with
     | Error (Refused e) when e.P.transient ->
       () (* overloaded / draining: back off and redial *)
     | Error (Refused e) ->
       fatal := Some (Fmt.str "%a" P.pp_error e)
     | Error (Conn _) ->
       () (* daemon down or restarting: back off and redial *)
     | Ok sess ->
       (try
          List.iter
            (fun indices ->
               let batch =
                 List.map (fun i -> spec_arr.(i)) indices
               in
               let index_arr = Array.of_list indices in
               match
                 submit sess ?deadline_ms ~max_retries batch
                   ~on_result:(fun ~index ~digest:_ outcome ->
                       let gi = index_arr.(index) in
                       match outcome with
                       | Ok rd -> final.(gi) <- Some (Ok rd)
                       | Error e when not e.P.transient ->
                         final.(gi) <- Some (Error e)
                       | Error e -> last_err.(gi) <- Some e)
               with
               | Ok _ -> ()
               | Error (Submit_rejected e) when e.P.transient ->
                 raise Round_over (* queue full or draining: next round *)
               | Error (Submit_rejected e) ->
                 fatal := Some (Fmt.str "%a" P.pp_error e);
                 raise Round_over
               | Error (Submit_conn _) ->
                 raise Round_over (* reconnect next round *))
            (chunks_of chunk !todo)
        with Round_over -> ());
       close sess);
    todo := pending ()
  done;
  match !fatal with
  | Some msg -> Error msg
  | None ->
    Ok
      (Array.mapi
         (fun i -> function
            | Some r -> r
            | None ->
              Error
                (match last_err.(i) with
                 | Some e -> e
                 | None ->
                   { P.code = P.Io_error; transient = true;
                     message =
                       Fmt.str "service %a unreachable after %d attempt(s)"
                         P.pp_addr addr max_attempts }))
         final)

(* -- The remote engine ---------------------------------------------------- *)

exception Remote_error of P.error

let engine ?cache ?chunk ?max_attempts ?deadline_ms ?max_retries addr =
  let memo : (Digest_hex.t, Run_spec.run_data) Hashtbl.t =
    Hashtbl.create 256 in
  let mu = Mutex.create () in
  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  let local = Experiments.caching_engine ?cache () in
  let fetch plan =
    match
      run_plan ?chunk ?max_attempts ?deadline_ms ?max_retries addr plan
    with
    | Error msg ->
      raise (Remote_error
               { P.code = P.Io_error; transient = false; message = msg })
    | Ok results ->
      let failures = ref [] in
      List.iteri
        (fun i spec ->
           match results.(i) with
           | Ok rd ->
             locked (fun () ->
                 Hashtbl.replace memo (Run_spec.digest spec) rd)
           | Error e -> failures := (spec, e) :: !failures)
        plan;
      List.rev !failures
  in
  let run spec =
    let d = Run_spec.digest spec in
    match locked (fun () -> Hashtbl.find_opt memo d) with
    | Some rd -> rd
    | None ->
      (match fetch [ spec ] with
       | [] ->
         (match locked (fun () -> Hashtbl.find_opt memo d) with
          | Some rd -> rd
          | None ->
            raise (Remote_error
                     { P.code = P.Io_error; transient = false;
                       message = "service returned no result" }))
       | (_, e) :: _ -> raise (Remote_error e))
  in
  ({ Experiments.run; meta = local.Experiments.meta }, fetch)
