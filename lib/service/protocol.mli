(** The xloops service wire protocol, version 1.

    Framing: every message is a 4-byte big-endian length followed by
    that many payload bytes.  Payloads are deterministic field-by-field
    encodings in the same style as {!Xloops.Run_spec.encode}
    (length-prefixed strings, decimal integers with a [';'] terminator,
    one-byte constructor tags), so both ends can be fuzzed against each
    other and a tampered frame decodes to an [Error], never to a
    half-filled message.

    Sessions open with a handshake: the client's first frame must be
    {!Hello} carrying the protocol version {e and} the client's OCaml
    version (result payloads are checksummed [Marshal] blobs, so both
    must match the server's); anything else is answered with
    {!Rejected} [Version_mismatch] and the connection is closed.

    Specs cross the boundary only in their canonical
    {!Xloops.Run_spec.encode} form — {!decode_request} runs
    {!Xloops.Run_spec.decode} on each, so a [Submit] that reaches the
    caller holds fully validated specs.

    Results stream back as one {!Result} frame per spec, in completion
    order, each tagged with the spec's index in the submitted batch;
    {!Batch_done} terminates the stream.  Errors carry a structured
    {!error_code} mapped from the orchestration failure taxonomy
    ({!Xloops.Failure.t}) plus its transient/permanent classification,
    so a client can apply the same retry policy it would in-process. *)

module Run_spec = Xloops.Run_spec
module Failure = Xloops.Failure
module Digest_hex = Xloops.Digest_hex

val version : int
(** The protocol version this build speaks (1). *)

val max_frame_bytes : int
(** Upper bound on a frame payload (defense against garbage lengths). *)

(** {1 Addresses} *)

type addr =
  | Unix_path of string          (** a filesystem socket *)
  | Tcp of string * int          (** host, port *)

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or bare ["HOST:PORT"]. *)

val pp_addr : Format.formatter -> addr -> unit
(** Prints in the {!parse_addr} spelling. *)

val sockaddr_of : addr -> Unix.sockaddr

(** {1 Errors} *)

type error_code =
  | Version_mismatch   (** handshake: protocol or OCaml version skew *)
  | Malformed          (** unparseable frame or payload *)
  | Overloaded         (** admission control: queue full, try later *)
  | Shutting_down      (** server is draining; no new work *)
  | Sim_error          (** {!Xloops.Failure.Sim} *)
  | Check_error        (** {!Xloops.Failure.Check} *)
  | Timeout_error      (** {!Xloops.Failure.Timeout} *)
  | Crash_error        (** {!Xloops.Failure.Crash} *)
  | Io_error           (** {!Xloops.Failure.Io} *)

type error = {
  code : error_code;
  transient : bool;
      (** whether retrying the same request may succeed — mirrors
          {!Xloops.Failure.classify} for taxonomy codes; [Overloaded]
          and [Shutting_down] are transient by definition *)
  message : string;
}

val error_of_failure : Failure.t -> error
(** The taxonomy mapping: [Sim]→[Sim_error], [Check]→[Check_error],
    [Timeout]→[Timeout_error], [Crash]→[Crash_error], [Io]→[Io_error],
    with [transient] from {!Xloops.Failure.is_transient}. *)

val error_code_name : error_code -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Server statistics (the [STATS] request)} *)

type worker_stat = {
  w_jobs : int;          (** simulations this worker completed *)
  w_busy_ms : int;       (** wall-clock spent executing them *)
}

type stats = {
  uptime_ms : int;
  workers : int;
  queue_depth : int;     (** jobs admitted but not yet picked up *)
  queue_limit : int;
  in_flight : int;       (** jobs executing right now *)
  accepted : int;        (** specs admitted across all batches *)
  rejected_batches : int;(** batches refused by admission control *)
  dedup_hits : int;      (** specs coalesced onto an in-flight twin *)
  completed : int;       (** jobs finished successfully *)
  failed : int;          (** jobs finished with a failure *)
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  per_worker : worker_stat list;
}

val pp_stats : Format.formatter -> stats -> unit

(** {1 Messages} *)

type request =
  | Hello of { version : int; ocaml : string }
  | Submit of {
      deadline_ms : int option;  (** per-spec wall-clock budget *)
      max_retries : int;         (** transient-failure retry budget *)
      specs : Run_spec.t list;
    }
  | Stats
  | Ping
  | Shutdown

type response =
  | Welcome of { version : int; ocaml : string; banner : string }
  | Result of {
      index : int;               (** position in the submitted batch *)
      digest : Digest_hex.t;     (** {!Xloops.Run_spec.digest} *)
      outcome : (Run_spec.run_data, error) result;
    }
  | Batch_done of { delivered : int }
  | Stats_reply of stats
  | Pong
  | Rejected of error
  | Bye

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response : response -> string
val decode_response : string -> (response, string) result

(** {1 Framing} *)

val write_frame : out_channel -> string -> unit
(** Length prefix + payload + flush.  Raises [Sys_error] on a broken
    connection. *)

val read_frame : in_channel -> [ `Frame of string | `Eof | `Error of string ]
(** One frame off the channel: [`Eof] on a cleanly closed connection
    (end of input before any length byte), [`Error] on a truncated or
    oversized frame. *)
