(** The xloops service wire protocol, version 2 (version 1 still
    spoken).

    Framing: every message is a 4-byte big-endian length followed by
    that many payload bytes.  Payloads are deterministic field-by-field
    encodings in the same style as {!Xloops.Run_spec.encode}
    (length-prefixed strings, decimal integers with a [';'] terminator,
    one-byte constructor tags), so both ends can be fuzzed against each
    other and a tampered frame decodes to an [Error], never to a
    half-filled message.

    Sessions open with a handshake: the client's first frame must be
    {!Hello} carrying the protocol version {e and} the client's OCaml
    version (result payloads are checksummed [Marshal] blobs, so the
    OCaml versions must match exactly); anything else is answered with
    {!Rejected} [Version_mismatch] and the connection is closed.  The
    protocol version {e negotiates down}: a server speaking [version]
    accepts any client in [[min_version, version]] and the session runs
    at the client's version, echoed back in {!Welcome} — so v1 clients
    interoperate with v2 servers unchanged.

    Version 2 adds: {!Progress} frames (a spec of your batch started
    executing), the {!Cancel} request (drop this connection's queued,
    not-yet-started work), and LZSS-compressed result blobs (['z']
    outcome tag, {!Codec}) for payloads where compression pays.  None
    of these reach a v1 peer: servers suppress [Progress] and compress
    nothing on a v1 session.

    Specs cross the boundary only in their canonical
    {!Xloops.Run_spec.encode} form — {!decode_request} runs
    {!Xloops.Run_spec.decode} on each, so a [Submit] that reaches the
    caller holds fully validated specs.

    Results stream back as one {!Result} frame per spec, in completion
    order, each tagged with the spec's index in the submitted batch;
    {!Batch_done} terminates the stream.  Errors carry a structured
    {!error_code} mapped from the orchestration failure taxonomy
    ({!Xloops.Failure.t}) plus its transient/permanent classification,
    so a client can apply the same retry policy it would in-process. *)

module Run_spec = Xloops.Run_spec
module Failure = Xloops.Failure
module Digest_hex = Xloops.Digest_hex

val version : int
(** The newest protocol version this build speaks (2). *)

val min_version : int
(** The oldest version still accepted in a handshake (1). *)

val max_frame_bytes : int
(** Upper bound on a frame payload (defense against garbage lengths). *)

(** {1 Addresses} *)

type addr = Cli_common.addr =
  | Unix_path of string          (** a filesystem socket *)
  | Tcp of string * int          (** host, port *)
(** Re-exported from {!Cli_common}, where the one parser for the
    [--listen]/[--server]/[--shard] address grammar lives. *)

val parse_addr : string -> (addr, string) result
(** ["unix:PATH"], ["tcp:HOST:PORT"], or bare ["HOST:PORT"]. *)

val pp_addr : Format.formatter -> addr -> unit
(** Prints in the {!parse_addr} spelling. *)

val sockaddr_of : addr -> Unix.sockaddr

val set_nodelay : Unix.file_descr -> unit
(** Disable Nagle on a TCP socket (the protocol is small-frame
    request/response, where batching against delayed ACKs costs tens of
    milliseconds per exchange).  A no-op on non-TCP sockets. *)

(** {1 Errors} *)

type error_code =
  | Version_mismatch   (** handshake: protocol or OCaml version skew *)
  | Malformed          (** unparseable frame or payload *)
  | Overloaded         (** admission control: queue full, try later *)
  | Shutting_down      (** server is draining; no new work *)
  | Sim_error          (** {!Xloops.Failure.Sim} *)
  | Check_error        (** {!Xloops.Failure.Check} *)
  | Timeout_error      (** {!Xloops.Failure.Timeout} *)
  | Crash_error        (** {!Xloops.Failure.Crash} *)
  | Io_error           (** {!Xloops.Failure.Io} *)

type error = {
  code : error_code;
  transient : bool;
      (** whether retrying the same request may succeed — mirrors
          {!Xloops.Failure.classify} for taxonomy codes; [Overloaded]
          and [Shutting_down] are transient by definition *)
  message : string;
}

val error_of_failure : Failure.t -> error
(** The taxonomy mapping: [Sim]→[Sim_error], [Check]→[Check_error],
    [Timeout]→[Timeout_error], [Crash]→[Crash_error], [Io]→[Io_error],
    with [transient] from {!Xloops.Failure.is_transient}. *)

val error_code_name : error_code -> string
val pp_error : Format.formatter -> error -> unit

(** {1 Server statistics (the [STATS] request)} *)

type worker_stat = {
  w_jobs : int;          (** simulations this worker completed *)
  w_busy_ms : int;       (** wall-clock spent executing them *)
}

type stats = {
  uptime_ms : int;
  workers : int;
  queue_depth : int;     (** jobs admitted but not yet picked up *)
  queue_limit : int;
  in_flight : int;       (** jobs executing right now *)
  accepted : int;        (** specs admitted across all batches *)
  rejected_batches : int;(** batches refused by admission control *)
  dedup_hits : int;      (** specs coalesced onto an in-flight twin *)
  completed : int;       (** jobs finished successfully *)
  failed : int;          (** jobs finished with a failure *)
  cache_hits : int;
  cache_misses : int;
  cache_stores : int;
  per_worker : worker_stat list;
}

val pp_stats : Format.formatter -> stats -> unit

val stats_to_json : stats -> string
(** One-line JSON object (all-integer fields plus a [per_worker]
    array), for [xloops_serve --stats --json] and CI gates. *)

(** {1 Messages} *)

type request =
  | Hello of { version : int; ocaml : string }
  | Submit of {
      deadline_ms : int option;  (** per-spec wall-clock budget *)
      max_retries : int;         (** transient-failure retry budget *)
      specs : Run_spec.t list;
    }
  | Cancel
      (** v2: drop this connection's queued, not-yet-started specs;
          executing and finished ones still deliver.  {!Batch_done}'s
          [delivered] reflects what was actually sent. *)
  | Stats
  | Ping
  | Shutdown

type response =
  | Welcome of { version : int; ocaml : string; banner : string }
      (** [version] is the negotiated session version. *)
  | Result of {
      index : int;               (** position in the submitted batch *)
      digest : Digest_hex.t;     (** {!Xloops.Run_spec.digest} *)
      outcome : (Run_spec.run_data, error) result;
    }
  | Progress of { index : int }
      (** v2: spec [index] of your batch started executing. *)
  | Batch_done of { delivered : int }
  | Stats_reply of stats
  | Pong
  | Rejected of error
  | Bye

val encode_request : request -> string
val decode_request : string -> (request, string) result

val encode_response :
  ?version:int -> ?compress_threshold:int -> response -> string
(** [version] (default {!version}) is the session's negotiated version:
    at [>= 2], [Result] blobs of at least [compress_threshold] bytes
    (default {!Codec.threshold}) are LZSS-compressed when that actually
    shrinks them.  At 1, the v1 encoding is produced byte-for-byte. *)

val decode_response : string -> (response, string) result
(** Accepts both the plain (['k']) and compressed (['z']) result blob
    encodings regardless of session version. *)

(** {1 Framing} *)

val write_frame : out_channel -> string -> unit
(** Length prefix + payload + flush.  Raises [Sys_error] on a broken
    connection. *)

val read_frame : in_channel -> [ `Frame of string | `Eof | `Error of string ]
(** One frame off the channel: [`Eof] on a cleanly closed connection
    (end of input before any length byte), [`Error] on a truncated or
    oversized frame. *)
