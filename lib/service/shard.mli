(** Digest-prefix sharding: the fleet descriptor mapping spec-digest
    space onto daemons.

    A spec's home shard is decided by the first byte of its
    {!Xloops.Run_spec.digest} — the same two hex characters the result
    cache uses as its shard subdirectory, so one shard's daemon touches
    a disjoint slice of the blob tree.  A descriptor is a set of
    inclusive prefix ranges, one per daemon, that must {e partition}
    [00..ff]: full cover, no overlap.  Routing is a 256-entry table
    lookup — total by construction, so "every digest routes to exactly
    one shard" is a property of {!of_specs}'s validation, not of the
    lookup. *)

type shard = {
  lo : int;             (** first owned prefix byte, 0x00..0xff *)
  hi : int;             (** last owned prefix byte, inclusive *)
  addr : Protocol.addr; (** the daemon serving this range *)
}

type t

val of_shards : shard list -> (t, string) result
(** Validate: at least one shard, every range well-formed
    ([0 <= lo <= hi <= 0xff]), and the ranges partition [00..ff]
    (any gap or overlap is an [Error] naming the first offending
    prefix). *)

val of_specs : string list -> (t, string) result
(** Parse ["LO-HI=ADDR"] descriptors (two lowercase hex digits each
    side, {!Protocol.parse_addr} grammar on the right — e.g.
    ["00-7f=tcp:10.0.0.1:7777"]) and validate as {!of_shards}. *)

val even : Protocol.addr list -> t
(** Split [00..ff] into [n] near-equal contiguous ranges, one per
    address in order.  Raises [Invalid_argument] on an empty list or
    more than 256 addresses. *)

val route : t -> Xloops.Digest_hex.t -> int
(** The index (into {!shards}) of the digest's home shard. *)

val shards : t -> shard array
val pp : Format.formatter -> t -> unit
