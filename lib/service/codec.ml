(* Pure-OCaml LZSS blob compression for protocol v2 frames.

   Stream format:

     4 bytes   uncompressed length, big-endian (matches frame framing)
     then repeating groups:
       1 byte  flags, LSB first, one per following token
       tokens  flag=0: one literal byte
               flag=1: two bytes OFFSET/LENGTH — high 12 bits the
                       backwards distance (1..4096), low 4 bits the
                       match length minus [min_match] (3..18)

   The window is 4096 bytes, matches are 3..18 bytes.  This is the
   classic Storer–Szymanski layout chosen because the decoder is a
   dozen lines and total: every input either decodes to exactly the
   declared length with in-range offsets, or is rejected — the wire
   layer treats a rejection like any other malformed frame.

   Marshalled run_data blobs are full of repeated field headers and
   zero runs, which is what the 16-entry-deep hash-chain matcher is
   tuned for; this is a transport codec, not an archiver. *)

let window = 4096
let min_match = 3
let max_match = 18

let threshold = 4096
(* Blobs below this many bytes ship uncompressed: framing overhead and
   codec time exceed the savings on small payloads. *)

(* -- Compression ---------------------------------------------------------- *)

(* Greedy matcher over a 3-byte-hash head table with prev chains,
   bounded probe depth.  Positions older than the window are skipped at
   probe time rather than evicted. *)
let hash_bits = 13
let hash_size = 1 lsl hash_bits
let chain_limit = 32

let hash3 s i =
  let b k = Char.code (String.unsafe_get s (i + k)) in
  ((b 0 lsl 10) lxor (b 1 lsl 5) lxor b 2) land (hash_size - 1)

let compress (s : string) : string =
  let n = String.length s in
  let buf = Buffer.create (n / 2 + 16) in
  Buffer.add_uint8 buf ((n lsr 24) land 0xff);
  Buffer.add_uint8 buf ((n lsr 16) land 0xff);
  Buffer.add_uint8 buf ((n lsr 8) land 0xff);
  Buffer.add_uint8 buf (n land 0xff);
  let head = Array.make hash_size (-1) in
  let prev = Array.make (max n 1) (-1) in
  let insert_pos i =
    if i + min_match <= n then begin
      let h = hash3 s i in
      prev.(i) <- head.(h);
      head.(h) <- i
    end
  in
  let match_len i j =
    (* length of the common prefix of s[i..] and s[j..], capped *)
    let cap = min max_match (n - i) in
    let l = ref 0 in
    while !l < cap
          && Char.equal (String.unsafe_get s (i + !l))
               (String.unsafe_get s (j + !l)) do incr l done;
    !l
  in
  let best_match i =
    if i + min_match > n then None
    else begin
      let best_len = ref 0 and best_off = ref 0 in
      let cand = ref head.(hash3 s i) in
      let probes = ref 0 in
      while !cand >= 0 && !probes < chain_limit do
        (if i - !cand <= window then begin
           let l = match_len i !cand in
           if l > !best_len then begin best_len := l; best_off := i - !cand end
         end);
        cand := prev.(!cand);
        incr probes
      done;
      if !best_len >= min_match then Some (!best_off, !best_len) else None
    end
  in
  (* Emit groups of up to 8 tokens prefixed by their flag byte. *)
  let flags = ref 0 and nflags = ref 0 in
  let pending = Buffer.create 17 in
  let flush_group () =
    if !nflags > 0 then begin
      Buffer.add_uint8 buf !flags;
      Buffer.add_buffer buf pending;
      Buffer.clear pending;
      flags := 0; nflags := 0
    end
  in
  let token is_match =
    if is_match then flags := !flags lor (1 lsl !nflags);
    incr nflags;
    if !nflags = 8 then flush_group ()
  in
  let i = ref 0 in
  while !i < n do
    (match best_match !i with
     | Some (off, len) ->
       let word = ((off - 1) lsl 4) lor (len - min_match) in
       Buffer.add_uint8 pending ((word lsr 8) land 0xff);
       Buffer.add_uint8 pending (word land 0xff);
       token true;
       for k = 0 to len - 1 do insert_pos (!i + k) done;
       i := !i + len
     | None ->
       Buffer.add_char pending (String.unsafe_get s !i);
       token false;
       insert_pos !i;
       incr i)
  done;
  flush_group ();
  Buffer.contents buf

(* -- Decompression -------------------------------------------------------- *)

let decompress (z : string) : (string, string) result =
  let zn = String.length z in
  if zn < 4 then Error "compressed blob shorter than its length header"
  else begin
    let b k = Char.code (String.unsafe_get z k) in
    let n = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    let out = Bytes.create n in
    let src = ref 4 and dst = ref 0 in
    let err = ref None in
    let fail m = err := Some m; src := zn; dst := n in
    while !err = None && !dst < n do
      if !src >= zn then fail "compressed blob truncated (flag byte)"
      else begin
        let flags = Char.code (String.unsafe_get z !src) in
        incr src;
        let f = ref 0 in
        while !err = None && !f < 8 && !dst < n do
          (if flags land (1 lsl !f) = 0 then begin
             if !src >= zn then fail "compressed blob truncated (literal)"
             else begin
               Bytes.unsafe_set out !dst (String.unsafe_get z !src);
               incr src; incr dst
             end
           end
           else if !src + 1 >= zn then
             fail "compressed blob truncated (match)"
           else begin
             let word =
               (Char.code (String.unsafe_get z !src) lsl 8)
               lor Char.code (String.unsafe_get z (!src + 1))
             in
             src := !src + 2;
             let off = (word lsr 4) + 1 in
             let len = (word land 0xf) + min_match in
             if off > !dst then fail "match offset before start of output"
             else if !dst + len > n then
               fail "match overruns declared length"
             else
               (* byte-at-a-time: matches may overlap their source *)
               for _ = 1 to len do
                 Bytes.unsafe_set out !dst (Bytes.unsafe_get out (!dst - off));
                 incr dst
               done
           end);
          incr f
        done
      end
    done;
    match !err with
    | Some m -> Error m
    | None ->
      if !src <> zn then Error "trailing bytes after declared length"
      else Ok (Bytes.unsafe_to_string out)
  end
