(* Shared plumbing for the CLI tools: common argument parsers, the
   robustness flags (--fuel, --watchdog-cycles, --fault-seed, ...), and a
   top-level guard that turns expected failures — unknown kernel or
   config, malformed arguments, fuel exhaustion — into a one-line
   diagnostic on stderr and a nonzero exit instead of a backtrace. *)

open Cmdliner
module Sim = Xloops.Sim
module C = Xloops.Compiler

(* -- Service addresses ---------------------------------------------------
   One parser for every tool that names a socket: the daemon, the
   proxy, bench --server, and the shard map all accept the same
   spellings.  [Protocol.addr] re-exports this type, so the service
   library and the CLIs agree by construction. *)

type addr =
  | Unix_path of string
  | Tcp of string * int

let parse_addr s : (addr, string) result =
  let port_of p =
    match int_of_string_opt p with
    (* 0 is allowed: the kernel picks a free port (tests, CI). *)
    | Some n when n >= 0 && n < 65536 -> Ok n
    | _ -> Error (Fmt.str "bad port %S in address %S" p s)
  in
  match String.index_opt s ':' with
  | None -> Error (Fmt.str "bad address %S (want unix:PATH or HOST:PORT)" s)
  | Some i ->
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    (match scheme with
     | "unix" ->
       if rest = "" then Error "empty unix socket path"
       else Ok (Unix_path rest)
     | "tcp" ->
       (match String.rindex_opt rest ':' with
        | None -> Error (Fmt.str "bad address %S (want tcp:HOST:PORT)" s)
        | Some j ->
          let host = String.sub rest 0 j in
          let port = String.sub rest (j + 1) (String.length rest - j - 1) in
          if host = "" then Error (Fmt.str "empty host in address %S" s)
          else Result.map (fun p -> Tcp (host, p)) (port_of port))
     | host when host <> "" -> Result.map (fun p -> Tcp (host, p)) (port_of rest)
     | _ -> Error (Fmt.str "bad address %S" s))

let pp_addr ppf = function
  | Unix_path p -> Fmt.pf ppf "unix:%s" p
  | Tcp (h, p) -> Fmt.pf ppf "tcp:%s:%d" h p

let sockaddr_of = function
  | Unix_path p -> Unix.ADDR_UNIX p
  | Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).h_addr_list.(0)
      with Not_found | Invalid_argument _ ->
        Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (ip, port)

let parse_mode = function
  | "T" | "t" -> Sim.Machine.Traditional
  | "S" | "s" -> Sim.Machine.Specialized
  | "A" | "a" -> Sim.Machine.Adaptive
  | m -> invalid_arg ("unknown mode " ^ m ^ " (expected T, S or A)")

let parse_target = function
  | "general" -> C.Compile.general
  | "xloops" -> C.Compile.xloops
  | "xloops-no-xi" -> C.Compile.xloops_no_xi
  | t -> invalid_arg
           ("unknown target " ^ t
            ^ " (expected general, xloops or xloops-no-xi)")

(* -- The unified engine arguments ----------------------------------------
   One record, one flag wording, one set of XLOOPS_* environment
   fallbacks for every tool that executes run specs: xloops_run,
   xloops_trace, bench/main.exe and xloops_serve.  Flags beat the
   environment; the environment beats the built-in default.  Malformed
   environment values warn once per process through the same code path
   as [Pool.default_jobs] ([Pool.env_int]). *)

module Pool = Xloops.Pool
module Run_cache = Xloops.Run_cache

type engine_args = {
  ea_fuel : int option;         (* None: the tool's own budget default *)
  ea_watchdog : int option;     (* None: the simulator default *)
  ea_deadline_ms : int option;  (* None: no per-run deadline *)
  ea_max_retries : int;
  ea_jobs : int;
  ea_cache_dir : string option; (* None: on-disk cache disabled *)
  ea_cache_index : string option; (* mmap'd shared index: fleet tier *)
  ea_cache_limit_mb : int option; (* None: unbounded cache *)
  ea_exec_tier : Sim.Tier.t;    (* functional-run execution tier *)
}

let fuel_doc =
  "GPP instruction budget; exhausting it is an error (env XLOOPS_FUEL)."
let watchdog_doc =
  "LPSU no-progress watchdog threshold in cycles, 0 = off \
   (env XLOOPS_WATCHDOG_CYCLES)."
let deadline_doc =
  "Per-run wall-clock deadline in milliseconds, 0 = none: a run that \
   finishes slower than this fails as a timeout (env XLOOPS_DEADLINE_MS)."
let max_retries_doc =
  "Extra attempts for transient failures (blown deadlines, I/O errors, \
   environmental crashes), with deterministic exponential backoff \
   between attempts (env XLOOPS_MAX_RETRIES)."
let jobs_doc = "Worker domains for parallel execution (env XLOOPS_JOBS)."
let cache_dir_doc =
  "Content-addressed on-disk result cache directory \
   (env XLOOPS_CACHE_DIR)."
let no_cache_doc = "Disable the on-disk result cache."
let cache_index_doc =
  "mmap'd shared cache index file backing the blob store: concurrent \
   daemons sharing one cache directory coordinate hits and eviction \
   through it (env XLOOPS_CACHE_INDEX)."
let cache_limit_mb_doc =
  "Size bound on the result cache in megabytes: the shared index \
   evicts clock/second-chance past it; a private cache reaps \
   least-recently-used blobs at startup (env XLOOPS_CACHE_LIMIT_MB)."
let exec_tier_doc =
  "Execution tier for functional (observer-free) runs: ref, predecode, \
   threaded or block (env XLOOPS_EXEC_TIER).  All tiers are \
   architecturally identical; timing models are unaffected, except \
   that LPSU lanes use compiled dispatch for plain instructions unless \
   the ref tier is selected or an observer is attached."

let env_opt_int ?min var =
  match Sys.getenv_opt var with
  | None -> None
  | Some _ ->
    (match Pool.env_int ?min ~default:(-1) var with
     | -1 -> None
     | n -> Some n)

(** The pre-flag engine arguments: XLOOPS_* where set, built-in
    defaults otherwise.  [max_retries] lets a tool keep its own retry
    default (bench ships with 2, the single-run tools with 0). *)
let default_engine_args ?(max_retries = 0) () =
  { ea_fuel = env_opt_int ~min:1 "XLOOPS_FUEL";
    ea_watchdog = env_opt_int "XLOOPS_WATCHDOG_CYCLES";
    ea_deadline_ms =
      (match env_opt_int "XLOOPS_DEADLINE_MS" with
       | Some 0 | None -> None
       | Some n -> Some n);
    ea_max_retries =
      Pool.env_int ~default:max_retries "XLOOPS_MAX_RETRIES";
    ea_jobs = Pool.default_jobs ();   (* XLOOPS_JOBS, the shared path *)
    ea_cache_dir =
      Some (Option.value (Sys.getenv_opt "XLOOPS_CACHE_DIR")
              ~default:Run_cache.default_dir);
    ea_cache_index =
      (match Sys.getenv_opt "XLOOPS_CACHE_INDEX" with
       | Some "" | None -> None
       | Some p -> Some p);
    ea_cache_limit_mb = env_opt_int ~min:1 "XLOOPS_CACHE_LIMIT_MB";
    (* Tier.get is initialized from XLOOPS_EXEC_TIER at module init *)
    ea_exec_tier = Sim.Tier.get () }

let fuel_arg =
  Arg.(value & opt (some int) None & info [ "fuel" ] ~doc:fuel_doc)

let watchdog_arg =
  Arg.(value & opt (some int) None
       & info [ "watchdog-cycles" ] ~doc:watchdog_doc)

let deadline_arg =
  Arg.(value & opt (some int) None
       & info [ "deadline-ms" ] ~doc:deadline_doc)

let max_retries_arg =
  Arg.(value & opt (some int) None
       & info [ "max-retries" ] ~doc:max_retries_doc)

let jobs_arg =
  Arg.(value & opt (some int) None & info [ "jobs" ] ~doc:jobs_doc)

let cache_dir_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-dir" ] ~doc:cache_dir_doc)

let no_cache_arg = Arg.(value & flag & info [ "no-cache" ] ~doc:no_cache_doc)

let cache_index_arg =
  Arg.(value & opt (some string) None
       & info [ "cache-index" ] ~doc:cache_index_doc)

let cache_limit_mb_arg =
  Arg.(value & opt (some int) None
       & info [ "cache-limit-mb" ] ~doc:cache_limit_mb_doc)

let tier_conv =
  let parse s =
    match Sim.Tier.of_string s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun ppf t -> Fmt.string ppf (Sim.Tier.name t))

let exec_tier_arg =
  Arg.(value & opt (some tier_conv) None
       & info [ "exec-tier" ] ~doc:exec_tier_doc)

(** The Cmdliner form of the record.  [pool] additionally surfaces
    [--jobs]/[--cache-dir]/[--no-cache] (the daemon); the single-run
    tools leave them at their defaults.  [tier_default] lets a tool pick
    its own tier when neither the flag nor the environment chose one
    (the sweep service defaults to [Threaded]).  The resolved tier is
    installed process-wide ({!Sim.Tier.set}) as part of parsing, so
    every functional-run site downstream observes it. *)
let engine_term ?(pool = false) ?max_retries ?tier_default ()
  : engine_args Cmdliner.Term.t =
  let combine fuel watchdog deadline retries jobs cache_dir no_cache
      cache_index cache_limit_mb exec_tier =
    let d = default_engine_args ?max_retries () in
    let tier =
      match exec_tier with
      | Some t -> t
      | None ->
        (match Sys.getenv_opt Sim.Tier.env_var with
         | Some s when s <> "" -> d.ea_exec_tier   (* env already applied *)
         | _ -> Option.value tier_default ~default:d.ea_exec_tier)
    in
    Sim.Tier.set tier;
    { ea_fuel = (match fuel with Some _ -> fuel | None -> d.ea_fuel);
      ea_watchdog =
        (match watchdog with Some _ -> watchdog | None -> d.ea_watchdog);
      ea_deadline_ms =
        (match deadline with
         | Some 0 -> None
         | Some _ -> deadline
         | None -> d.ea_deadline_ms);
      ea_max_retries = Option.value retries ~default:d.ea_max_retries;
      ea_jobs = Option.value jobs ~default:d.ea_jobs;
      ea_cache_dir =
        (if no_cache then None
         else match cache_dir with Some _ -> cache_dir
                                 | None -> d.ea_cache_dir);
      ea_cache_index =
        (if no_cache then None
         else match cache_index with Some _ -> cache_index
                                   | None -> d.ea_cache_index);
      ea_cache_limit_mb =
        (match cache_limit_mb with
         | Some _ -> cache_limit_mb
         | None -> d.ea_cache_limit_mb);
      ea_exec_tier = tier }
  in
  if pool then
    Term.(const combine $ fuel_arg $ watchdog_arg $ deadline_arg
          $ max_retries_arg $ jobs_arg $ cache_dir_arg $ no_cache_arg
          $ cache_index_arg $ cache_limit_mb_arg $ exec_tier_arg)
  else
    Term.(const combine $ fuel_arg $ watchdog_arg $ deadline_arg
          $ max_retries_arg $ const None $ const None $ const false
          $ const None $ const None $ exec_tier_arg)

(** Hand-rolled-parser form of the same flags for bench/main.exe (which
    parses argv itself): consume one engine flag from the head of
    [args] into [o], or return [None] if the head is not an engine
    flag.  Malformed values exit 2 with one diagnostic wording. *)
let consume_engine_flag (o : engine_args ref) (args : string list) :
  string list option =
  let int_arg ?(min = 0) flag v k =
    match int_of_string_opt v with
    | Some n when n >= min -> k n
    | _ ->
      Fmt.epr "error: bad value %S for %s (want an integer >= %d)@."
        v flag min;
      exit 2
  in
  match args with
  | "--fuel" :: v :: tl ->
    int_arg ~min:1 "--fuel" v (fun n -> o := { !o with ea_fuel = Some n });
    Some tl
  | "--watchdog-cycles" :: v :: tl ->
    int_arg "--watchdog-cycles" v
      (fun n -> o := { !o with ea_watchdog = Some n });
    Some tl
  | "--deadline-ms" :: v :: tl ->
    int_arg "--deadline-ms" v
      (fun n ->
         o := { !o with ea_deadline_ms = (if n = 0 then None else Some n) });
    Some tl
  | "--max-retries" :: v :: tl ->
    int_arg "--max-retries" v
      (fun n -> o := { !o with ea_max_retries = n });
    Some tl
  | "--jobs" :: v :: tl ->
    int_arg ~min:1 "--jobs" v (fun n -> o := { !o with ea_jobs = n });
    Some tl
  | "--cache-dir" :: d :: tl ->
    o := { !o with ea_cache_dir = Some d };
    Some tl
  | "--cache-index" :: p :: tl ->
    o := { !o with ea_cache_index = Some p };
    Some tl
  | "--cache-limit-mb" :: v :: tl ->
    int_arg ~min:1 "--cache-limit-mb" v
      (fun n -> o := { !o with ea_cache_limit_mb = Some n });
    Some tl
  | "--no-cache" :: tl ->
    o := { !o with ea_cache_dir = None; ea_cache_index = None };
    Some tl
  | "--exec-tier" :: v :: tl ->
    (match Sim.Tier.of_string v with
     | Ok t ->
       Sim.Tier.set t;
       o := { !o with ea_exec_tier = t }
     | Error msg ->
       Fmt.epr "error: bad value for --exec-tier: %s@." msg;
       exit 2);
    Some tl
  | _ -> None

(** Build the result cache the engine arguments describe: plain private
    cache, or the shared fleet tier when [--cache-index] names an mmap'd
    index file.  Startup hygiene runs here — orphaned temp files are
    reaped, and a [--cache-limit-mb] bound on a private cache triggers
    the LRU reap (the shared index enforces its bound continuously
    instead).  Diagnostics go to stderr under the given [tag]. *)
let cache_of_engine ?chaos ?(tag = "cache") (eng : engine_args) =
  match eng.ea_cache_dir with
  | None -> None
  | Some dir ->
    let index =
      Option.map
        (fun path ->
           Xloops.Cache_index.openf ?limit_mb:eng.ea_cache_limit_mb path)
        eng.ea_cache_index
    in
    let limit_bytes =
      Option.map (fun mb -> mb * 1024 * 1024) eng.ea_cache_limit_mb
    in
    let c = Run_cache.create ~dir ?chaos ?index ?limit_bytes () in
    let reaped = Run_cache.reap_tmp c in
    if reaped > 0 then
      Fmt.epr "[%s] reaped %d stale tmp file(s)@." tag reaped;
    (if Option.is_none index then
       let evicted = Run_cache.reap_over_limit c in
       if evicted > 0 then
         Fmt.epr "[%s] evicted %d blob(s) over the %d MB limit@." tag
           evicted (Option.value eng.ea_cache_limit_mb ~default:0));
    Some c

let fault_seed_arg =
  let doc = "Inject a deterministic transient-fault plan with this seed \
             into every specialized run." in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)

let fault_events_arg =
  let doc = "Number of fault events in the plan (with --fault-seed)." in
  Arg.(value & opt int 12 & info [ "fault-events" ] ~doc)

let no_degrade_arg =
  let doc = "Disable the traditional-fallback safety net: a hung or \
             faulted specialized run fails the simulation instead of \
             rolling back." in
  Arg.(value & flag & info [ "no-degrade" ] ~doc)

let faults_of ~seed ~events =
  Option.map (fun s -> Sim.Fault.plan ~seed:s ~events ()) seed

(** Run one simulation thunk under the CLI retry policy
    ({!Xloops.Failure.with_retries}), with the deadline and retry
    budget of the unified engine arguments.  [salt] keys the
    deterministic backoff schedule — pass the spec digest. *)
let with_policy ~(eng : engine_args) ~salt f =
  let o =
    Xloops.Failure.with_retries ?deadline_ms:eng.ea_deadline_ms
      ~max_retries:eng.ea_max_retries ~salt f
  in
  if o.Xloops.Failure.attempts > 1 then
    Fmt.epr "[retry] %s: %d attempt(s), %d ms total@." salt
      o.Xloops.Failure.attempts o.Xloops.Failure.elapsed_ms;
  o

(** Assemble the parsed CLI arguments into one first-class run plan —
    the record the evaluation engine executes and caches. *)
let spec_of ~(eng : engine_args) ~config ~mode ~target ~fault_seed
    ~fault_events ~no_degrade kernel : Xloops.Run_spec.t =
  Xloops.Run_spec.make
    ~target:(parse_target target)
    ~fuel:(Option.value eng.ea_fuel ~default:500_000_000)
    ~watchdog:(Option.value eng.ea_watchdog ~default:50_000)
    ?fault_seed:(Option.map (fun s -> (s, fault_events)) fault_seed)
    ~degrade:(not no_degrade)
    ~cfg:(Sim.Config.by_name config)
    ~mode:(parse_mode mode)
    kernel

(** Print one summary line when fault injection / degradation was live. *)
let report_robustness (s : Sim.Stats.t) =
  if s.faults_injected > 0 || s.watchdog_hangs > 0 || s.degradations > 0
  then
    Fmt.pr "robust:  %d fault(s) injected, %d hang(s), %d degradation(s)@."
      s.faults_injected s.watchdog_hangs s.degradations

let guarded f =
  try f () with
  | Xloops.Failure.Abort msg ->
    Fmt.epr "aborted: %s@." msg; 3
  | Xloops.Failure.Sim_failed sf ->
    Fmt.epr "error: simulation failed: %a@." Sim.Machine.pp_failure sf; 2
  | Invalid_argument msg | Stdlib.Failure msg ->
    Fmt.epr "error: %s@." msg; 2
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg; 2
