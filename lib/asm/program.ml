(** An assembled XLOOPS program: instructions at word addresses 0..n-1,
    plus the symbol table kept for disassembly and debugging. *)

type t = {
  insns : int Xloops_isa.Insn.t array;
  symbols : (string * int) list;  (** label -> instruction address *)
}

let length p = Array.length p.insns

let address_of_symbol p name =
  match List.assoc_opt name p.symbols with
  | Some a -> a
  | None -> invalid_arg ("Program.address_of_symbol: " ^ name)

let symbol_at p addr =
  List.filter_map (fun (n, a) -> if a = addr then Some n else None) p.symbols

(** Disassemble the whole program, one instruction per line, with label
    definitions interleaved. *)
let pp ppf p =
  Array.iteri
    (fun pc insn ->
       List.iter (fun s -> Fmt.pf ppf "%s:@." s) (symbol_at p pc);
       Fmt.pf ppf "  %4d: %a@." pc Xloops_isa.Insn.pp_resolved insn)
    p.insns

let to_string p = Fmt.str "%a" pp p

(** Encode to flat 32-bit words (loses the symbol table). *)
let encode p = Xloops_isa.Encode.encode_program p.insns

let decode words =
  { insns = Xloops_isa.Encode.decode_program words; symbols = [] }

(* -- Predecoded micro-ops --------------------------------------------- *)

(* The interpreter's hot loop pays a decode tax on every dynamic
   instruction: immediates are normalized, memory widths expanded to
   byte counts, and [lui]/[jal] recompute constants that depend only on
   the static instruction.  [predecode] pays all of that once per static
   instruction, producing a parallel array of micro-ops the executor can
   dispatch on directly.  Immediates are stored as 32-bit values
   sign-extended into native ints — the executor's register-file
   representation — so the hot path never boxes. *)

module I = Xloops_isa.Insn
module Reg = Xloops_isa.Reg

let sext_shift = Sys.int_size - 32
let norm v = (v lsl sext_shift) asr sext_shift

type uop =
  | U_alu of I.alu_op * Reg.t * Reg.t * Reg.t
  | U_alui of I.alu_op * Reg.t * Reg.t * int       (* imm normalized *)
  | U_fpu of I.fpu_op * Reg.t * Reg.t * Reg.t
  | U_lui of Reg.t * int                           (* imm << 16, pre-shifted *)
  | U_load of I.width * Reg.t * Reg.t * int * int  (* rd, rs, imm, bytes *)
  | U_store of I.width * Reg.t * Reg.t * int * int (* rt, rs, imm, bytes *)
  | U_amo of I.amo_op * Reg.t * Reg.t * Reg.t
  | U_branch of I.branch_cond * Reg.t * Reg.t * int
  | U_jump of int
  | U_jal of int * int                             (* link value, target *)
  | U_jr of Reg.t
  | U_xloop_de of Reg.t * int                      (* exit reg, target *)
  | U_xloop_cmp of Reg.t * Reg.t * int             (* idx, bound, target *)
  | U_xi_addi of Reg.t * Reg.t * int               (* imm normalized *)
  | U_xi_add of Reg.t * Reg.t * Reg.t
  | U_sync
  | U_halt
  | U_nop

type predecoded = {
  source : t;
  uops : uop array;
  leaders : bool array;
}

(** Coarse micro-op class, aligned with {!Xloops_isa.Insn.class_name}
    but distinguishing the predecode-level splits (xloop_de vs
    xloop_cmp) — the names the superop pair profiler and the fused
    disassembly view print. *)
let uop_class = function
  | U_alu _ -> "alu"
  | U_alui _ -> "alui"
  | U_fpu _ -> "fpu"
  | U_lui _ -> "lui"
  | U_load _ -> "load"
  | U_store _ -> "store"
  | U_amo _ -> "amo"
  | U_branch _ -> "branch"
  | U_jump _ -> "jump"
  | U_jal _ -> "jal"
  | U_jr _ -> "jr"
  | U_xloop_de _ -> "xloop_de"
  | U_xloop_cmp _ -> "xloop_cmp"
  | U_xi_addi _ -> "xi_addi"
  | U_xi_add _ -> "xi_add"
  | U_sync -> "sync"
  | U_halt -> "halt"
  | U_nop -> "nop"

let predecode_insn (i : int I.t) : uop =
  match i with
  | I.Alu (op, rd, rs, rt) -> U_alu (op, rd, rs, rt)
  | Alui (op, rd, rs, imm) -> U_alui (op, rd, rs, norm imm)
  | Fpu (op, rd, rs, rt) -> U_fpu (op, rd, rs, rt)
  | Lui (rd, imm) -> U_lui (rd, norm (imm lsl 16))
  | Load (w, rd, rs, imm) -> U_load (w, rd, rs, imm, I.width_bytes w)
  | Store (w, rt, rs, imm) -> U_store (w, rt, rs, imm, I.width_bytes w)
  | Amo (op, rd, rs, rt) -> U_amo (op, rd, rs, rt)
  | Branch (c, rs, rt, l) -> U_branch (c, rs, rt, l)
  | Jump l -> U_jump l
  | Jal l -> U_jal (0 (* patched per-pc below *), l)
  | Jr rs -> U_jr rs
  | Xloop ({ cp = De; _ }, _, rt, l) -> U_xloop_de (rt, l)
  | Xloop ({ cp = Fixed | Dyn; _ }, rs, rt, l) -> U_xloop_cmp (rs, rt, l)
  | Xi_addi (rd, rs, imm) -> U_xi_addi (rd, rs, norm imm)
  | Xi_add (rd, rs, rt) -> U_xi_add (rd, rs, rt)
  | Sync -> U_sync
  | Halt -> U_halt
  | Nop -> U_nop

(* Basic-block leaders: the entry point, every static control-transfer
   target, and the fall-through successor of every control transfer
   (branch not-taken, jal return, the slot after a jump/halt reached by
   some other edge).  [jr] targets are link values — already leaders via
   the jal fall-through rule — so every pc control can *reach* by a
   transfer is marked; a block never spans a leader, which is what lets
   the block tier retire a whole block in one bump. *)
let leaders_of (uops : uop array) : bool array =
  let n = Array.length uops in
  let l = Array.make n false in
  if n > 0 then l.(0) <- true;
  let mark t = if t >= 0 && t < n then l.(t) <- true in
  Array.iteri
    (fun pc u ->
       match u with
       | U_branch (_, _, _, t) | U_xloop_de (_, t) | U_xloop_cmp (_, _, t)
       | U_jump t | U_jal (_, t) -> mark t; mark (pc + 1)
       | U_jr _ | U_halt -> mark (pc + 1)
       | U_alu _ | U_alui _ | U_fpu _ | U_lui _ | U_load _ | U_store _
       | U_amo _ | U_xi_addi _ | U_xi_add _ | U_sync | U_nop -> ())
    uops;
  l

let predecode_fresh (p : t) : predecoded =
  let uops =
    Array.mapi
      (fun pc i ->
         match predecode_insn i with
         | U_jal (_, l) -> U_jal (pc + 1, l)
         | u -> u)
      p.insns
  in
  { source = p; uops; leaders = leaders_of uops }

(* Memoized per domain (the bench driver runs simulations on a pool of
   domains): a tiny most-recently-used list keyed by physical equality,
   so repeated runs of the same program — the common case inside a sweep
   — predecode once. *)

let memo : (t * predecoded) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_cap = 8

let predecode (p : t) : predecoded =
  let cache = Domain.DLS.get memo in
  match List.find_opt (fun (src, _) -> src == p) !cache with
  | Some (_, pre) -> pre
  | None ->
    let pre = predecode_fresh p in
    let rest =
      if List.length !cache >= memo_cap
      then List.filteri (fun i _ -> i < memo_cap - 1) !cache
      else !cache
    in
    cache := (p, pre) :: rest;
    pre
