(** Imperative program builder with symbolic labels and the usual
    pseudo-instructions.  This is the "assembler" of the toolchain: both
    hand-written kernels and the compiler back end emit through it. *)

open Xloops_isa

type t

val create : unit -> t

val here : t -> int
(** Address of the next instruction to be emitted. *)

val emit : t -> string Insn.t -> unit

val label : t -> string -> unit
(** Define a label at the current position.  Raises [Invalid_argument]
    on a duplicate definition. *)

val fresh_label : t -> string -> string
(** Generate a program-unique label with a readable prefix. *)

(** {1 Raw emitters} *)

val alu : t -> Insn.alu_op -> Reg.t -> Reg.t -> Reg.t -> unit
val alui : t -> Insn.alu_op -> Reg.t -> Reg.t -> int -> unit
val fpu : t -> Insn.fpu_op -> Reg.t -> Reg.t -> Reg.t -> unit
val load : t -> Insn.width -> Reg.t -> Reg.t -> int -> unit
val store : t -> Insn.width -> Reg.t -> Reg.t -> int -> unit
val amo : t -> Insn.amo_op -> Reg.t -> Reg.t -> Reg.t -> unit
val branch : t -> Insn.branch_cond -> Reg.t -> Reg.t -> string -> unit
val jump : t -> string -> unit
val jal : t -> string -> unit
val jr : t -> Reg.t -> unit
val xloop : t -> Insn.xpat -> Reg.t -> Reg.t -> string -> unit
val xi_addi : t -> Reg.t -> Reg.t -> int -> unit
val xi_add : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sync : t -> unit
val halt : t -> unit
val nop : t -> unit

(** {1 Common mnemonics} *)

val add : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sub : t -> Reg.t -> Reg.t -> Reg.t -> unit
val mul : t -> Reg.t -> Reg.t -> Reg.t -> unit
val div : t -> Reg.t -> Reg.t -> Reg.t -> unit
val rem : t -> Reg.t -> Reg.t -> Reg.t -> unit
val and_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val or_ : t -> Reg.t -> Reg.t -> Reg.t -> unit
val xor : t -> Reg.t -> Reg.t -> Reg.t -> unit
val slt : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sltu : t -> Reg.t -> Reg.t -> Reg.t -> unit
val sll : t -> Reg.t -> Reg.t -> int -> unit
val srl : t -> Reg.t -> Reg.t -> int -> unit
val sra : t -> Reg.t -> Reg.t -> int -> unit
val addi : t -> Reg.t -> Reg.t -> int -> unit
val andi : t -> Reg.t -> Reg.t -> int -> unit
val ori : t -> Reg.t -> Reg.t -> int -> unit
val slti : t -> Reg.t -> Reg.t -> int -> unit
val lw : t -> Reg.t -> Reg.t -> int -> unit
val lb : t -> Reg.t -> Reg.t -> int -> unit
val lbu : t -> Reg.t -> Reg.t -> int -> unit
val lh : t -> Reg.t -> Reg.t -> int -> unit
val lhu : t -> Reg.t -> Reg.t -> int -> unit
val sw : t -> Reg.t -> Reg.t -> int -> unit
val sb : t -> Reg.t -> Reg.t -> int -> unit
val sh : t -> Reg.t -> Reg.t -> int -> unit
val beq : t -> Reg.t -> Reg.t -> string -> unit
val bne : t -> Reg.t -> Reg.t -> string -> unit
val blt : t -> Reg.t -> Reg.t -> string -> unit
val bge : t -> Reg.t -> Reg.t -> string -> unit
val bltu : t -> Reg.t -> Reg.t -> string -> unit
val bgeu : t -> Reg.t -> Reg.t -> string -> unit
val beqz : t -> Reg.t -> string -> unit
val bnez : t -> Reg.t -> string -> unit
val fadd : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fsub : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fmul : t -> Reg.t -> Reg.t -> Reg.t -> unit
val fdiv : t -> Reg.t -> Reg.t -> Reg.t -> unit
val flt : t -> Reg.t -> Reg.t -> Reg.t -> unit

(** {1 Pseudo-instructions} *)

val mv : t -> Reg.t -> Reg.t -> unit
(** Register copy. *)

val li : t -> Reg.t -> int -> unit
(** Load a 32-bit constant, expanding to [lui]+[ori] when it does not
    fit in a signed 16-bit immediate. *)

val ble : t -> Reg.t -> Reg.t -> string -> unit
(** Branch if [rs <= rt] (signed). *)

val bgt : t -> Reg.t -> Reg.t -> string -> unit
(** Branch if [rs > rt] (signed). *)

(** {1 Assembly} *)

exception Undefined_label of string

val assemble : t -> Program.t
(** Resolve labels and produce the final program.  Raises
    {!Undefined_label} on a branch to a label never defined. *)
