(** An assembled XLOOPS program: instructions at word addresses
    [0..n-1] plus the symbol table (kept for disassembly). *)

type t = {
  insns : int Xloops_isa.Insn.t array;
  symbols : (string * int) list;  (** label -> instruction address *)
}

val length : t -> int

val address_of_symbol : t -> string -> int
(** Raises [Invalid_argument] on unknown symbols. *)

val symbol_at : t -> int -> string list
(** All labels defined at an address. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with interleaved label definitions; re-parseable
    by {!Parser.parse}. *)

val to_string : t -> string

val encode : t -> int32 array
(** Flat 32-bit machine words (drops the symbol table). *)

val decode : int32 array -> t

(** {1 Predecoded micro-ops}

    The executor's hot loop dispatches on micro-ops instead of raw
    instructions: immediates are normalized (sign-extended 32-bit values
    in native ints, matching the executor's register representation),
    [lui]/[jal] constants pre-computed, branch/xloop targets resolved,
    and memory widths expanded to byte counts — all paid once per static
    instruction instead of once per dynamic one. *)

type uop =
  | U_alu of Xloops_isa.Insn.alu_op * Xloops_isa.Reg.t * Xloops_isa.Reg.t
             * Xloops_isa.Reg.t
  | U_alui of Xloops_isa.Insn.alu_op * Xloops_isa.Reg.t * Xloops_isa.Reg.t
              * int                    (** immediate normalized *)
  | U_fpu of Xloops_isa.Insn.fpu_op * Xloops_isa.Reg.t * Xloops_isa.Reg.t
             * Xloops_isa.Reg.t
  | U_lui of Xloops_isa.Reg.t * int    (** immediate pre-shifted *)
  | U_load of Xloops_isa.Insn.width * Xloops_isa.Reg.t * Xloops_isa.Reg.t
              * int * int              (** rd, rs, imm, bytes *)
  | U_store of Xloops_isa.Insn.width * Xloops_isa.Reg.t * Xloops_isa.Reg.t
               * int * int             (** rt, rs, imm, bytes *)
  | U_amo of Xloops_isa.Insn.amo_op * Xloops_isa.Reg.t * Xloops_isa.Reg.t
             * Xloops_isa.Reg.t
  | U_branch of Xloops_isa.Insn.branch_cond * Xloops_isa.Reg.t
                * Xloops_isa.Reg.t * int
  | U_jump of int
  | U_jal of int * int                 (** link value, target *)
  | U_jr of Xloops_isa.Reg.t
  | U_xloop_de of Xloops_isa.Reg.t * int
      (** data-dependent exit: loop while the exit register reads zero *)
  | U_xloop_cmp of Xloops_isa.Reg.t * Xloops_isa.Reg.t * int
      (** fixed/dynamic bound: loop while idx < bound (signed) *)
  | U_xi_addi of Xloops_isa.Reg.t * Xloops_isa.Reg.t * int
  | U_xi_add of Xloops_isa.Reg.t * Xloops_isa.Reg.t * Xloops_isa.Reg.t
  | U_sync
  | U_halt
  | U_nop

type predecoded = {
  source : t;                (** the program the micro-ops mirror *)
  uops : uop array;          (** parallel to [source.insns] *)
  leaders : bool array;
      (** basic-block leaders, parallel to [uops]: the entry point,
          every static control-transfer target, and every control
          transfer's fall-through successor.  A basic block never spans
          a leader — the block-compiled tier dispatches one closure per
          block and retires it with a single bump. *)
}

val uop_class : uop -> string
(** Coarse micro-op class ("alu", "xloop_cmp", ...): the names the
    superop pair profiler and fused disassembly print. *)

val predecode : t -> predecoded
(** Memoized (per domain, keyed by physical equality): repeated calls on
    the same program return the same predecoded value. *)

val predecode_fresh : t -> predecoded
(** Unmemoized {!predecode} — what each domain's cache miss computes.
    Exposed for the cross-domain memoization property tests. *)
