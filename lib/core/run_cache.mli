(** Content-addressed on-disk result cache for {!Run_spec} executions.

    Keys are {!Run_spec.cache_key} digests (spec encoding + compiled
    program bytes), so a warm cache survives exactly as long as both the
    experiment description and the generated code are unchanged.  Blobs
    are versioned marshalled records; a version or compiler mismatch, or
    a corrupt file, reads as a miss.  Writes are temp-file + rename and
    directory creation tolerates races, so concurrent workers and
    concurrent processes are safe. *)

type t

val current_version : int
(** Bump when the marshalled payload layout changes. *)

val default_dir : string
(** ["_xloops_cache"]. *)

val create : ?version:int -> ?dir:string -> unit -> t
(** A cache handle.  Nothing is touched on disk until the first store;
    [version] defaults to {!current_version} (override only to test
    invalidation). *)

val find_run : t -> key:string -> Run_spec.run_data option
val store_run : t -> key:string -> Run_spec.run_data -> unit

val find_meta : t -> key:string -> int array option
(** Kernel-metadata blobs (dynamic instruction counts, body statistics),
    keyed by {!Run_spec.kernel_digest}. *)

val store_meta : t -> key:string -> int array -> unit

val hits : t -> int
val misses : t -> int
val stores : t -> int
(** Lookup/store counters for this handle (thread-safe). *)

val pp_counters : Format.formatter -> t -> unit
