(** Content-addressed on-disk result cache for {!Run_spec} executions.

    Keys are {!Run_spec.cache_key} digests (spec encoding + compiled
    program bytes), so a warm cache survives exactly as long as both the
    experiment description and the generated code are unchanged.  Blobs
    are versioned marshalled records carrying an MD5 payload checksum:
    an absent or version/compiler-stale blob reads as a miss; a torn,
    rotten, or checksum-failing blob counts as {e corrupt} and is
    quarantined to [dir/quarantine/] — never an error, never silently
    re-read.  Writes are temp-file + rename and directory creation
    tolerates races, so concurrent workers and concurrent processes are
    safe; {!reap_tmp} cleans up after killed writers. *)

type t

val current_version : int
(** Bump when the marshalled payload layout changes. *)

val default_dir : string
(** ["_xloops_cache"]. *)

val quarantine_subdir : string
(** ["quarantine"], under the cache [dir]. *)

val create : ?version:int -> ?dir:string -> ?chaos:Chaos.t -> unit -> t
(** A cache handle.  Nothing is touched on disk until the first store;
    [version] defaults to {!current_version} (override only to test
    invalidation).  [chaos] injects read errors and post-store blob
    corruption for integrity testing. *)

val find_run : t -> key:Digest_hex.t -> Run_spec.run_data option
val store_run : t -> key:Digest_hex.t -> Run_spec.run_data -> unit

val find_meta : t -> key:Digest_hex.t -> int array option
(** Kernel-metadata blobs (dynamic instruction counts, body statistics),
    keyed by {!Run_spec.kernel_digest}. *)

val store_meta : t -> key:Digest_hex.t -> int array -> unit

val reap_tmp : t -> int
(** Remove orphaned [*.tmp.*] files a killed writer left under this
    version's tree; returns the count.  Run at startup. *)

val quarantined : t -> int
(** Files currently in the quarantine directory. *)

val hits : t -> int
val misses : t -> int
(** Absent or version-stale lookups. *)

val corrupt : t -> int
(** Integrity failures detected (and quarantined) by this handle. *)

val stores : t -> int
(** Lookup/store counters for this handle (thread-safe). *)

val pp_counters : Format.formatter -> t -> unit
