(** Content-addressed on-disk result cache for {!Run_spec} executions.

    Keys are {!Run_spec.cache_key} digests (spec encoding + compiled
    program bytes), so a warm cache survives exactly as long as both the
    experiment description and the generated code are unchanged.  Blobs
    are versioned marshalled records carrying an MD5 payload checksum:
    an absent or version/compiler-stale blob reads as a miss; a torn,
    rotten, or checksum-failing blob counts as {e corrupt} and is
    quarantined to [dir/quarantine/] — never an error, never silently
    re-read.  Writes are temp-file + rename and directory creation
    tolerates races, so concurrent workers and concurrent processes are
    safe; {!reap_tmp} cleans up after killed writers. *)

type t

val current_version : int
(** Bump when the marshalled payload layout changes. *)

val default_dir : string
(** ["_xloops_cache"]. *)

val quarantine_subdir : string
(** ["quarantine"], under the cache [dir]. *)

val create :
  ?version:int -> ?dir:string -> ?chaos:Chaos.t ->
  ?index:Cache_index.t -> ?limit_bytes:int -> unit -> t
(** A cache handle.  Nothing is touched on disk until the first store;
    [version] defaults to {!current_version} (override only to test
    invalidation).  [chaos] injects read errors and post-store blob
    corruption for integrity testing.

    [index] attaches a shared mmap'd {!Cache_index} over [dir]: lookups
    consult the index first (falling back to — and adopting — on-disk
    blobs the index does not know), stores register their blob, entries
    whose blobs turn out absent or corrupt are healed out of the index,
    and the index's clock sweep bounds the store, deleting victim blobs
    through this handle.  [limit_bytes] bounds a {e private} (index-less)
    cache instead, enforced by {!reap_over_limit} at startup. *)

val find_run : t -> key:Digest_hex.t -> Run_spec.run_data option
val store_run : t -> key:Digest_hex.t -> Run_spec.run_data -> unit

val find_meta : t -> key:Digest_hex.t -> int array option
(** Kernel-metadata blobs (dynamic instruction counts, body statistics),
    keyed by {!Run_spec.kernel_digest}. *)

val store_meta : t -> key:Digest_hex.t -> int array -> unit

val reap_tmp : t -> int
(** Remove orphaned [*.tmp.*] files a killed writer left under this
    version's tree; returns the count.  Run at startup. *)

val reap_over_limit : t -> int
(** For a private cache with [limit_bytes]: delete least-recently-written
    blobs until the version tree fits the limit; returns how many were
    removed.  Recency is blob mtime — without a shared index there is no
    access record.  Returns [0] with no limit, or when a shared [index]
    owns eviction.  Run at startup, like {!reap_tmp}. *)

val quarantined : t -> int
(** Files currently in the quarantine directory. *)

val hits : t -> int
val misses : t -> int
(** Absent or version-stale lookups. *)

val corrupt : t -> int
(** Integrity failures detected (and quarantined) by this handle. *)

val stores : t -> int
(** Lookup/store counters for this handle (thread-safe). *)

val evictions : t -> int
(** Blobs this handle deleted for space — via the shared index's clock
    sweep or {!reap_over_limit}. *)

val index : t -> Cache_index.t option
(** The shared index attached at {!create}, if any. *)

val pp_counters : Format.formatter -> t -> unit
