(** Differential checker for the graceful-degradation safety net: every
    fault-injected, degraded specialized run must leave memory
    bit-identical to a plain traditional run of the same kernel.

    Registers are deliberately not compared — post-loop values of
    registers not live-out of an xloop are unspecified by the ISA; memory
    plus the kernel's self-check is authoritative. *)

module Machine = Xloops_sim.Machine
module Fault = Xloops_sim.Fault
module Config = Xloops_sim.Config
module Kernel = Xloops_kernels.Kernel

type outcome = {
  kernel : string;
  failure : Machine.failure option;  (** faulted run failed outright *)
  identical : bool;                  (** memory matches traditional *)
  check_ok : bool;                   (** kernel self-check on faulted run *)
  injected : Fault.kind list;        (** distinct kinds actually injected *)
  degradations : int;
  hangs : Fault.hang list;
}

val ok : outcome -> bool
(** No failure, memory identical, self-check passed. *)

val pp_outcome : Format.formatter -> outcome -> unit

val run_kernel :
  ?cfg:Config.t -> ?mode:Machine.mode -> ?watchdog:int ->
  faults:Fault.t -> Kernel.t -> outcome
(** Run the kernel traditionally, then under [faults] with the safety
    net, and compare final memories byte for byte.  Raises [Failure] if
    the fault-free reference run itself fails. *)

val check_table2 :
  ?cfg:Config.t -> ?mode:Machine.mode -> ?watchdog:int -> ?events:int ->
  seed:int -> unit -> outcome list * Fault.kind list
(** Sweep all 25 Table II kernels, each under a deterministic per-kernel
    fault plan derived from [seed]; returns outcomes and the union of
    fault kinds injected across the sweep. *)
