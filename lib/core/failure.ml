(** Unified failure taxonomy for the orchestration layer.

    PR 1 taught the {e simulator} to return structured failures instead
    of dying ([Machine.failure]: fuel exhaustion, watchdog hangs).  This
    module is the same discipline one layer up: every way a {e sweep
    item} can fail — the simulation itself, a failed self-check, a
    worker crash, a blown per-spec deadline, an I/O error from the cache
    or journal — is one constructor of one type, and every constructor
    has a severity: {e transient} failures are worth a seeded-backoff
    retry, {e permanent} ones are reported as-is.

    The type deliberately stores strings for exceptions (not the [exn]
    itself): failures cross domain boundaries and get marshalled into
    reports, so they must be plain data. *)

module Machine = Xloops_sim.Machine

type t =
  | Sim of Machine.failure
      (** the simulator's own structured failure (fuel, hang) *)
  | Check of { kernel : string; what : string; msg : string }
      (** the kernel's architectural self-check failed *)
  | Timeout of { elapsed_ms : int; deadline_ms : int }
      (** the per-spec wall-clock deadline was exceeded *)
  | Crash of { exn : string; transient : bool }
      (** the worker raised; [transient] marks injected/environmental
          crashes worth retrying *)
  | Io of string
      (** cache / journal / filesystem trouble *)

type severity = Transient | Permanent

(** The sweep-level escape hatch: raised to abort a whole sweep (SIGINT
    translation, injected mid-sweep aborts).  {!with_retries} and the
    pool's crash isolation deliberately let it propagate — it is the one
    exception that must {e not} become a per-item failure. *)
exception Abort of string

(** Marker for injected or environmental crashes ({!Chaos} raises it):
    classified transient, so the retry policy re-attempts them. *)
exception Transient_crash of string

(** Re-exported here (rather than defined in [Run_spec]) so that
    {!of_exn} can classify it without a dependency cycle; [Run_spec] and
    [Experiments] alias it. *)
exception Check_failed of { kernel : string; what : string; msg : string }

(** Raising spelling of a structured simulation failure
    ([Run_spec.execute] throws it), so {!of_exn} can fold it back into
    {!Sim} instead of a shapeless {!Crash}. *)
exception Sim_failed of Machine.failure

let of_exn : exn -> t = function
  | Check_failed { kernel; what; msg } -> Check { kernel; what; msg }
  | Sim_failed f -> Sim f
  | Transient_crash msg -> Crash { exn = msg; transient = true }
  | Sys_error msg -> Io msg
  | e -> Crash { exn = Printexc.to_string e; transient = false }

(* Sim failures and failed checks are deterministic functions of the
   spec (seeded faults included), so retrying them re-derives the same
   answer; deadline misses and I/O errors are properties of the run's
   environment and may clear. *)
let classify = function
  | Sim _ | Check _ -> Permanent
  | Crash { transient; _ } -> if transient then Transient else Permanent
  | Timeout _ | Io _ -> Transient

let is_transient f = classify f = Transient

let severity_name = function
  | Transient -> "transient"
  | Permanent -> "permanent"

let pp ppf = function
  | Sim f -> Fmt.pf ppf "simulation: %a" Machine.pp_failure f
  | Check { kernel; what; msg } ->
    Fmt.pf ppf "self-check failed: %s on %s: %s" kernel what msg
  | Timeout { elapsed_ms; deadline_ms } ->
    Fmt.pf ppf "deadline exceeded: %d ms elapsed > %d ms budget"
      elapsed_ms deadline_ms
  | Crash { exn; _ } -> Fmt.pf ppf "worker crash: %s" exn
  | Io msg -> Fmt.pf ppf "i/o error: %s" msg

let pp_tagged ppf f =
  Fmt.pf ppf "[%s] %a" (severity_name (classify f)) pp f

(* -- Seeded exponential backoff ----------------------------------------- *)

(* Same SplitMix64 as [Fault]: the jitter component of every backoff is
   a pure function of (seed, salt, attempt), so a retried sweep sleeps
   the same schedule on every reproduction of it. *)
let mix s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash64 ~seed ~salt ~attempt =
  let h = mix (Int64.of_int (seed * 2 + 1)) in
  let h = mix (Int64.logxor h (Int64.of_int (Hashtbl.hash salt))) in
  mix (Int64.logxor h (Int64.of_int attempt))

(** Backoff before retry [attempt] (1-based): [base_ms * 2^(attempt-1)]
    plus deterministic jitter in [\[0, base_ms)], capped at [cap_ms]. *)
let backoff_ms ?(base_ms = 25) ?(cap_ms = 2_000) ~seed ~salt ~attempt () =
  let expo = base_ms * (1 lsl min (attempt - 1) 10) in
  let jitter =
    Int64.to_int
      (Int64.rem
         (Int64.shift_right_logical (hash64 ~seed ~salt ~attempt) 2)
         (Int64.of_int (max 1 base_ms)))
  in
  min cap_ms (expo + jitter)

(* -- The retry loop ------------------------------------------------------ *)

type 'a outcome = {
  result : ('a, t) result;
  attempts : int;       (** total attempts made (>= 1) *)
  elapsed_ms : int;     (** wall-clock across all attempts and backoffs *)
}

(** Run [thunk] under the retry policy: any exception except {!Abort}
    becomes a structured failure ({!of_exn}); a successful return that
    took longer than [deadline_ms] is a {!Timeout} (the caller asked for
    an answer {e within} the budget, and the per-spec fuel/watchdog
    machinery below us guarantees the thunk terminates at all);
    transient failures retry up to [max_retries] extra attempts with
    {!backoff_ms} sleeps in between. *)
let with_retries ?deadline_ms ?(max_retries = 0) ?(backoff_base_ms = 25)
    ?(seed = 0) ?(salt = "") thunk : 'a outcome =
  let t_start = Unix.gettimeofday () in
  let elapsed_of t0 =
    int_of_float (1e3 *. (Unix.gettimeofday () -. t0)) in
  let rec attempt n =
    let t0 = Unix.gettimeofday () in
    let result =
      match thunk () with
      | v ->
        (match deadline_ms with
         | Some d when elapsed_of t0 > d ->
           Error (Timeout { elapsed_ms = elapsed_of t0; deadline_ms = d })
         | _ -> Ok v)
      | exception (Abort _ as e) -> raise e
      | exception e -> Error (of_exn e)
    in
    match result with
    | Error f when is_transient f && n <= max_retries ->
      let ms =
        backoff_ms ~base_ms:backoff_base_ms ~seed ~salt ~attempt:n () in
      Unix.sleepf (float_of_int ms /. 1e3);
      attempt (n + 1)
    | result ->
      { result; attempts = n; elapsed_ms = elapsed_of t_start }
  in
  attempt 1
