(** Domain-based worker pool: execute a list of independent,
    self-contained work items (in practice {!Run_spec.t}s) on OCaml 5
    domains.  Results preserve input order, so a parallel sweep is
    byte-identical to a serial one. *)

val env_jobs_var : string
(** ["XLOOPS_JOBS"] — environment fallback for the job count. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** [$XLOOPS_JOBS] if set to a positive integer, else 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs] on up to [jobs] domains
    (including the caller's).  [jobs] defaults to {!default_jobs}.
    Order-preserving.  If applications raise, the earliest-indexed
    exception is re-raised after every domain has been joined. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
