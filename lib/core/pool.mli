(** Domain-based worker pool: execute a list of independent,
    self-contained work items (in practice {!Run_spec.t}s) on OCaml 5
    domains.  Results preserve input order, so a parallel sweep is
    byte-identical to a serial one.

    {!map} is the plain fail-fast form; {!run_each} is the
    fault-tolerant form: per-item structured results, worker crash
    isolation, per-item deadlines, and seeded-backoff retry of
    transient failures. *)

val env_jobs_var : string
(** ["XLOOPS_JOBS"] — environment fallback for the job count. *)

val available_cores : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val env_int : ?min:int -> default:int -> string -> int
(** [$var] parsed as an integer [>= min] (default 0), or [default].  A
    set-but-malformed value warns on stderr once per process per
    variable — the one code path every environment-knob consumer
    (this pool, the service daemon's worker count, the CLI engine
    defaults) shares. *)

val env_positive_int : default:int -> string -> int
(** [env_int ~min:1]. *)

val default_jobs : unit -> int
(** [env_positive_int ~default:1 env_jobs_var]: [$XLOOPS_JOBS] if set to
    a positive integer, else 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] = [List.map f xs] on up to [jobs] domains
    (including the caller's).  [jobs] defaults to {!default_jobs}.
    Order-preserving.  If applications raise, the earliest-indexed
    exception is re-raised after every domain has been joined. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit

(** {1 Fault-tolerant execution} *)

type policy = {
  deadline_ms : int option;
      (** per-item wall-clock budget; exceeding it is a structured
          {!Failure.Timeout} (the simulator's fuel/watchdog budgets
          guarantee items terminate at all) *)
  max_retries : int;
      (** extra attempts for transient failures *)
  backoff_base_ms : int;
  backoff_seed : int;
      (** seed of the deterministic backoff schedule *)
}

val default_policy : policy
(** No deadline, 2 retries, 25 ms backoff base, seed 0. *)

type 'b outcome = 'b Failure.outcome = {
  result : ('b, Failure.t) result;
  attempts : int;
  elapsed_ms : int;
}

val run_each :
  ?jobs:int -> ?policy:policy -> ?salt:('a -> string) ->
  ('a -> 'b) -> 'a list -> 'b outcome list
(** Run [f] on every item with crash isolation: a failing or timed-out
    item yields a per-item [Error] instead of aborting the sweep;
    transient failures retry under [policy].  [salt] names items for
    backoff determinism.  Only {!Failure.Abort} escapes: workers stop
    pulling new items and the abort is re-raised after all domains have
    been joined. *)
