(** First-class run plans: one value describes one self-contained
    simulation — which kernel, which machine, which mode, which compile
    target, plus the robustness knobs (fuel, fault plan, watchdog,
    degradation).  A spec owns its whole machine state: executing one
    compiles the kernel afresh, builds a fresh memory and machine, and
    returns plain data, so any number of specs can execute concurrently
    (no shared mutable [Machine.t] ever escapes).

    Specs have a canonical binary encoding and an MD5 digest; the digest
    of [encoding ++ program bytes] is the content address the on-disk
    result cache ({!Run_cache}) files results under. *)

module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Stats = Xloops_sim.Stats
module Fault = Xloops_sim.Fault
module Trace = Xloops_sim.Trace
module Compile = Xloops_compiler.Compile
module Energy = Xloops_energy.Model
module Insn = Xloops_isa.Insn

type t = {
  kernel : string;                  (** registry name *)
  cfg : Config.t;
  mode : Machine.mode;
  target : Compile.target;
  fuel : int option;                (** GPP instruction budget *)
  fault_seed : (int * int) option;  (** (seed, events) of a fault plan *)
  watchdog : int;                   (** LPSU no-progress threshold, 0 = off *)
  degrade : bool;                   (** traditional-fallback safety net *)
}

let make ?(target = Compile.xloops) ?fuel ?fault_seed ?(watchdog = 50_000)
    ?(degrade = true) ~cfg ~mode kernel =
  { kernel; cfg; mode; target; fuel; fault_seed; watchdog; degrade }

let what t =
  Fmt.str "%s/%s" t.cfg.Config.name (Machine.mode_name t.mode)

let pp ppf t =
  Fmt.pf ppf "%s on %s%s%s" t.kernel (what t)
    (match t.fault_seed with
     | Some (s, n) -> Fmt.str " faults(seed=%d,events=%d)" s n
     | None -> "")
    (if t.degrade then "" else " no-degrade")

(* -- Canonical binary encoding ------------------------------------------ *)

(* Deterministic field-by-field serialization: length-prefixed strings,
   decimal integers with a terminator, one-byte constructor tags.  Unlike
   [Marshal] output this is stable by construction, so it can key an
   on-disk cache. *)

let enc_int b n = Buffer.add_string b (string_of_int n); Buffer.add_char b ';'
let enc_str b s = enc_int b (String.length s); Buffer.add_string b s
let enc_bool b v = Buffer.add_char b (if v then 't' else 'f')

let dpattern_tag : Insn.dpattern -> int = function
  | Uc -> 0 | Or -> 1 | Om -> 2 | Orm -> 3 | Ua -> 4

let enc_gpp b (g : Config.gpp) =
  (match g.kind with
   | Config.Inorder -> Buffer.add_char b 'I'
   | Config.Ooo { width; window } ->
     Buffer.add_char b 'O'; enc_int b width; enc_int b window);
  List.iter (enc_int b)
    [ g.l1_size; g.l1_ways; g.l1_line; g.load_use_latency; g.miss_penalty;
      g.branch_penalty; g.mul_latency; g.div_latency; g.fpu_latency ]

let enc_lpsu b (l : Config.lpsu) =
  List.iter (enc_int b)
    [ l.lanes; l.ib_entries; l.idq_entries; l.lsq_loads; l.lsq_stores;
      l.mem_ports; l.llfu_ports; l.threads_per_lane; l.lane_issue_width ];
  enc_bool b l.inter_lane_fwd;
  List.iter (enc_int b) [ l.scan_fixed; l.scan_per_insn ];
  enc_int b (List.length l.supported);
  List.iter (fun dp -> enc_int b (dpattern_tag dp)) l.supported;
  enc_int b l.squash_penalty

let enc_cfg b (c : Config.t) =
  enc_str b c.name;
  enc_gpp b c.gpp;
  match c.lpsu with
  | None -> Buffer.add_char b 'N'
  | Some l -> Buffer.add_char b 'L'; enc_lpsu b l

let encode (t : t) =
  let b = Buffer.create 128 in
  Buffer.add_string b "XRS1";                (* format magic + revision *)
  enc_str b t.kernel;
  enc_cfg b t.cfg;
  Buffer.add_char b
    (match t.mode with
     | Machine.Traditional -> 'T' | Specialized -> 'S' | Adaptive -> 'A');
  enc_bool b t.target.Compile.xloops;
  enc_bool b t.target.Compile.use_xi;
  (match t.fuel with
   | None -> Buffer.add_char b 'n'
   | Some f -> Buffer.add_char b 's'; enc_int b f);
  (match t.fault_seed with
   | None -> Buffer.add_char b 'n'
   | Some (seed, events) ->
     Buffer.add_char b 's'; enc_int b seed; enc_int b events);
  enc_int b t.watchdog;
  enc_bool b t.degrade;
  Buffer.contents b

let digest t = Digest_hex.of_digest (Digest.string (encode t))

(* -- Decoding ------------------------------------------------------------ *)

(* The inverse of [encode], for specs arriving over a process boundary
   (the service wire protocol).  Strict: every field must parse and the
   input must be fully consumed, so a truncated or tampered frame is an
   [Error], never a half-filled spec. *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let fail_at c msg = raise (Bad (Fmt.str "%s at byte %d" msg c.pos))

let dec_char c =
  if c.pos >= String.length c.s then fail_at c "unexpected end of input";
  let ch = c.s.[c.pos] in
  c.pos <- c.pos + 1;
  ch

let dec_int c =
  let start = c.pos in
  let neg = c.pos < String.length c.s && c.s.[c.pos] = '-' in
  if neg then c.pos <- c.pos + 1;
  let digits0 = c.pos in
  while c.pos < String.length c.s
        && (match c.s.[c.pos] with '0' .. '9' -> true | _ -> false) do
    c.pos <- c.pos + 1
  done;
  if c.pos = digits0 then fail_at c "expected an integer";
  if dec_char c <> ';' then fail_at c "expected ';' after integer";
  match int_of_string (String.sub c.s start (c.pos - 1 - start)) with
  | n -> n
  | exception Stdlib.Failure _ -> fail_at c "integer out of range"

let dec_str c =
  let n = dec_int c in
  if n < 0 || c.pos + n > String.length c.s then
    fail_at c "string length overruns input";
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let dec_bool c =
  match dec_char c with
  | 't' -> true
  | 'f' -> false
  | _ -> fail_at c "expected a bool tag"

let dpattern_of_tag c : int -> Insn.dpattern = function
  | 0 -> Uc | 1 -> Or | 2 -> Om | 3 -> Orm | 4 -> Ua
  | _ -> fail_at c "unknown dependence-pattern tag"

let dec_gpp c : Config.gpp =
  let kind =
    match dec_char c with
    | 'I' -> Config.Inorder
    | 'O' ->
      let width = dec_int c in
      let window = dec_int c in
      Config.Ooo { width; window }
    | _ -> fail_at c "unknown GPP kind tag"
  in
  let l1_size = dec_int c in
  let l1_ways = dec_int c in
  let l1_line = dec_int c in
  let load_use_latency = dec_int c in
  let miss_penalty = dec_int c in
  let branch_penalty = dec_int c in
  let mul_latency = dec_int c in
  let div_latency = dec_int c in
  let fpu_latency = dec_int c in
  { Config.kind; l1_size; l1_ways; l1_line; load_use_latency; miss_penalty;
    branch_penalty; mul_latency; div_latency; fpu_latency }

let dec_lpsu c : Config.lpsu =
  let lanes = dec_int c in
  let ib_entries = dec_int c in
  let idq_entries = dec_int c in
  let lsq_loads = dec_int c in
  let lsq_stores = dec_int c in
  let mem_ports = dec_int c in
  let llfu_ports = dec_int c in
  let threads_per_lane = dec_int c in
  let lane_issue_width = dec_int c in
  let inter_lane_fwd = dec_bool c in
  let scan_fixed = dec_int c in
  let scan_per_insn = dec_int c in
  let n_supported = dec_int c in
  if n_supported < 0 || n_supported > 8 then
    fail_at c "implausible supported-pattern count";
  let supported =
    List.init n_supported (fun _ -> dpattern_of_tag c (dec_int c)) in
  let squash_penalty = dec_int c in
  { Config.lanes; ib_entries; idq_entries; lsq_loads; lsq_stores; mem_ports;
    llfu_ports; threads_per_lane; lane_issue_width; inter_lane_fwd;
    scan_fixed; scan_per_insn; supported; squash_penalty }

let dec_cfg c : Config.t =
  let name = dec_str c in
  let gpp = dec_gpp c in
  let lpsu =
    match dec_char c with
    | 'N' -> None
    | 'L' -> Some (dec_lpsu c)
    | _ -> fail_at c "unknown LPSU tag"
  in
  { Config.name; gpp; lpsu }

(** Inverse of {!encode}: strict parse of the canonical encoding. *)
let decode s : (t, string) result =
  let c = { s; pos = 0 } in
  match
    if String.length s < 4 || String.sub s 0 4 <> "XRS1" then
      raise (Bad "bad magic (want XRS1)");
    c.pos <- 4;
    let kernel = dec_str c in
    let cfg = dec_cfg c in
    let mode =
      match dec_char c with
      | 'T' -> Machine.Traditional
      | 'S' -> Machine.Specialized
      | 'A' -> Machine.Adaptive
      | _ -> fail_at c "unknown mode tag"
    in
    let xloops = dec_bool c in
    let use_xi = dec_bool c in
    let target = { Compile.xloops; use_xi } in
    let fuel =
      match dec_char c with
      | 'n' -> None
      | 's' -> Some (dec_int c)
      | _ -> fail_at c "unknown fuel tag"
    in
    let fault_seed =
      match dec_char c with
      | 'n' -> None
      | 's' -> let seed = dec_int c in Some (seed, dec_int c)
      | _ -> fail_at c "unknown fault tag"
    in
    let watchdog = dec_int c in
    let degrade = dec_bool c in
    if c.pos <> String.length s then fail_at c "trailing bytes";
    { kernel; cfg; mode; target; fuel; fault_seed; watchdog; degrade }
  with
  | spec -> Ok spec
  | exception Bad msg -> Error ("Run_spec.decode: " ^ msg)

(* -- Content addressing -------------------------------------------------- *)

let resolve ?kernel (t : t) : Kernel.t =
  match kernel with Some k -> k | None -> Registry.find t.kernel

(* The disassembly listing, not [Program.encode]: the simulator executes
   [Insn.t] values directly, so programs may carry immediates the binary
   encoder would reject, and the digest must be total over anything the
   simulator can run. *)
let bytes_of_program prog = Xloops_asm.Program.to_string prog

let program_digest ?kernel (t : t) =
  let k = resolve ?kernel t in
  let c = Compile.compile ~target:t.target k.Kernel.kernel in
  Digest.string (bytes_of_program c.Compile.program)

(** The content address of a spec's result: digest over the canonical
    spec encoding {e and} the compiled program bytes, so a compiler or
    kernel change invalidates cached results by construction. *)
let cache_key ?kernel (t : t) =
  Digest_hex.of_digest (Digest.string (encode t ^ program_digest ?kernel t))

(** Content address of a kernel's target-independent metadata (dynamic
    instruction counts, body statistics): digest over its name and its
    compiled general and XLOOPS programs. *)
let kernel_digest (k : Kernel.t) =
  let prog target =
    (Compile.compile ~target k.Kernel.kernel).Compile.program in
  Digest_hex.of_digest
    (Digest.string
       (k.Kernel.name ^ "\x00"
        ^ bytes_of_program (prog Compile.general) ^ "\x00"
        ^ bytes_of_program (prog Compile.xloops)))

(* -- Execution ----------------------------------------------------------- *)

type run_data = {
  cfg : Config.t;
  mode : Machine.mode;
  cycles : int;
  insns : int;
  stats : Stats.t;
  energy : Energy.breakdown;
}

(* Defined in [Failure] so the taxonomy can classify it without a
   dependency cycle; aliased here for the historical spelling. *)
exception Check_failed = Failure.Check_failed

(** Low-level execution: the full {!Kernel.run} (memory, compiled
    program, check result) without raising on a failed self-check — the
    form the CLIs want.  [kernel] overrides the registry lookup, for
    synthetic kernels that are not registered. *)
let run_result ?kernel ?trace (t : t)
  : (Kernel.run, Machine.failure) result =
  let k = resolve ?kernel t in
  let faults =
    Option.map (fun (seed, events) -> Fault.plan ~seed ~events ())
      t.fault_seed
  in
  Kernel.run_result ~target:t.target ~cfg:t.cfg ~mode:t.mode ?faults
    ~watchdog:t.watchdog ~degrade:t.degrade ?fuel:t.fuel ?trace k

(** Checked execution distilled to plain {!run_data}, with every
    failure mode folded into the orchestration layer's taxonomy: a
    simulation failure becomes [Failure.Sim], a failed self-check
    [Failure.Check].  Records the wall-clock of the simulation in
    [stats.wall_ns]. *)
let execute_result ?kernel (t : t)
  : (run_data, Failure.t) result =
  let t0 = Unix.gettimeofday () in
  match run_result ?kernel t with
  | Error f -> Error (Failure.Sim f)
  | Ok r ->
    match r.Kernel.check_result with
    | Error msg ->
      Error (Failure.Check { kernel = t.kernel; what = what t; msg })
    | Ok () ->
      let result = r.Kernel.result in
      result.Machine.stats.wall_ns <-
        int_of_float (1e9 *. (Unix.gettimeofday () -. t0));
      Ok { cfg = t.cfg; mode = t.mode;
           cycles = result.Machine.cycles;
           insns = result.Machine.insns;
           stats = result.Machine.stats;
           energy = Energy.of_stats t.cfg result.Machine.stats }

(** Raising form of {!execute_result}: {!Check_failed} on a failed
    self-check, [Failure.Sim_failed] on a simulation failure — both
    round-trip through [Failure.of_exn] without losing structure. *)
let execute ?kernel (t : t) : run_data =
  match execute_result ?kernel t with
  | Ok rd -> rd
  | Error (Failure.Check { kernel; what; msg }) ->
    raise (Check_failed { kernel; what; msg })
  | Error (Failure.Sim f) -> raise (Failure.Sim_failed f)
  | Error f ->
    failwith (Fmt.str "Run_spec.execute %s: %a" t.kernel Failure.pp f)
