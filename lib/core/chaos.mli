(** Seeded chaos plans for the orchestration infrastructure — the
    [Fault]-plan discipline applied to the sweep machinery itself:
    injected cache read errors, bit-flipped or truncated cache blobs,
    stalled or crashing workers, and mid-sweep aborts.  A plan is a
    deterministic schedule derived from a seed; progress is counted in
    {e opportunities} (hook-site calls), not cycles. *)

type kind =
  | Cache_read_error   (** a cache lookup fails as if unreadable *)
  | Blob_bitflip       (** flip one bit of a just-written cache blob *)
  | Blob_truncate      (** truncate a just-written cache blob *)
  | Worker_stall       (** sleep a worker before it runs its item *)
  | Worker_abort       (** crash a worker (transient, retryable) *)
  | Sweep_abort        (** kill the whole sweep mid-flight *)

val recoverable_kinds : kind list
(** Every kind except {!Sweep_abort} — the default draw, under which a
    sweep must still complete with byte-identical results. *)

val all_kinds : kind list
val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type t

val plan : ?kinds:kind list -> ?stall_ms:int -> seed:int -> events:int ->
  unit -> t
(** Reproducible plan: same [(seed, events, kinds)] → same schedule.
    [kinds] defaults to {!recoverable_kinds}; [stall_ms] (default 100)
    is the length of an injected worker stall.  Raises
    [Invalid_argument] on a negative count or empty kind list. *)

val explicit : ?stall_ms:int -> (int * kind) list -> t
(** A hand-written plan of [(opportunity, kind)] pairs. *)

val none : unit -> t
(** The empty plan (injects nothing). *)

val fire : t -> kind list -> kind option
(** One injection opportunity at a site that can apply [kinds]:
    advances the opportunity counter, pops and returns the first due
    applicable event (at most one per call).  Thread-safe. *)

val before_item : t -> unit
(** Worker-side hook, once per sweep item: may sleep
    ({!Worker_stall}), raise [Failure.Transient_crash]
    ({!Worker_abort}), or raise [Failure.Abort] ({!Sweep_abort}). *)

val read_error : t -> bool
(** Cache-read hook: [true] means "pretend this blob is unreadable". *)

val after_store : t -> string -> unit
(** Store-side hook: corrupt the just-written blob at the given path if
    the plan says so (bit flip or truncation). *)

val corrupt_file : kind -> string -> bool
(** Apply {!Blob_bitflip} / {!Blob_truncate} corruption directly (tests,
    fixtures).  [false] if the file is too small or the kind does not
    corrupt files. *)

val injected : t -> (kind * int) list
(** Events applied so far, oldest first, with their opportunity. *)

val injected_count : t -> int
val pending : t -> int
val pp_plan : Format.formatter -> t -> unit
