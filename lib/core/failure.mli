(** Unified failure taxonomy for the orchestration layer: one type for
    every way a sweep item can fail (simulation failure, failed
    self-check, blown deadline, worker crash, I/O error), a
    transient-vs-permanent classification, deterministic seeded
    exponential backoff, and the retry loop both the worker pool and the
    CLIs run failures through. *)

module Machine = Xloops_sim.Machine

type t =
  | Sim of Machine.failure
      (** the simulator's own structured failure (fuel, hang) *)
  | Check of { kernel : string; what : string; msg : string }
      (** the kernel's architectural self-check failed *)
  | Timeout of { elapsed_ms : int; deadline_ms : int }
      (** the per-spec wall-clock deadline was exceeded *)
  | Crash of { exn : string; transient : bool }
      (** the worker raised; [transient] marks injected/environmental
          crashes worth retrying *)
  | Io of string
      (** cache / journal / filesystem trouble *)

type severity = Transient | Permanent

exception Abort of string
(** Sweep-level abort: the one exception crash isolation must let
    propagate (SIGINT translation, injected mid-sweep aborts). *)

exception Transient_crash of string
(** Marker for injected/environmental crashes; classified transient. *)

exception Check_failed of { kernel : string; what : string; msg : string }
(** Defined here (aliased by [Run_spec] and [Experiments]) so
    {!of_exn} can classify it without a dependency cycle. *)

exception Sim_failed of Machine.failure
(** Raising spelling of a structured simulation failure
    ([Run_spec.execute] throws it); {!of_exn} folds it into {!Sim}. *)

val of_exn : exn -> t
(** Structured failure for a caught exception.  Never call it on
    {!Abort} — the retry loop re-raises that one instead. *)

val classify : t -> severity
(** {!Sim} and {!Check} are deterministic functions of the spec →
    permanent; {!Timeout}, {!Io} and transient {!Crash}es may clear →
    transient. *)

val is_transient : t -> bool
val severity_name : severity -> string
val pp : Format.formatter -> t -> unit
val pp_tagged : Format.formatter -> t -> unit
(** [pp] prefixed with "[transient]"/"[permanent]". *)

val backoff_ms :
  ?base_ms:int -> ?cap_ms:int -> seed:int -> salt:string -> attempt:int ->
  unit -> int
(** Deterministic backoff before retry [attempt] (1-based):
    [base_ms * 2^(attempt-1)] plus SplitMix jitter from
    [(seed, salt, attempt)], capped at [cap_ms].  Defaults: 25 ms base,
    2000 ms cap. *)

type 'a outcome = {
  result : ('a, t) result;
  attempts : int;       (** total attempts made (>= 1) *)
  elapsed_ms : int;     (** wall-clock across all attempts and backoffs *)
}

val with_retries :
  ?deadline_ms:int -> ?max_retries:int -> ?backoff_base_ms:int ->
  ?seed:int -> ?salt:string -> (unit -> 'a) -> 'a outcome
(** Run the thunk under the retry policy: exceptions (except {!Abort})
    become failures via {!of_exn}; a return slower than [deadline_ms] is
    a {!Timeout}; transient failures retry up to [max_retries] extra
    attempts with {!backoff_ms} sleeps between them. *)
