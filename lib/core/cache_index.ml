(* The mmap'd shared cache index.  See cache_index.mli for the
   concurrency contract.

   File layout (all integers little-endian, 8 bytes):

     header, 64 bytes:
       0..7    magic "XLIDX01\n"
       8..15   nslots
       16..23  limit_bytes
       24..31  used_bytes        } writer-lock guarded
       32..39  generation        }
       40..47  clock hand        }
       48..55  evictions         }
       56..63  live count        }

     record s, 64 bytes at 64 + s*64:
       0       state: 0 empty, 1 live, 2 tombstone
       1       reference byte (set lock-free by readers; not checksummed)
       2       tag ('r' = .run, 'm' = .meta)
       3       pad
       4..35   key (32 lowercase hex chars)
       36..43  blob size
       44..51  generation at insert
       52..59  checksum (FNV-1a over state, tag, key, size, gen)
       60..63  pad

   Insert order is: state <- 0, fields, checksum, state <- 1 — each a
   plain byte store into the shared mapping, with the single-byte state
   flip last, so a concurrent reader either skips the slot or sees a
   fully checksummed record. *)

module A = Bigarray.Array1

type t = {
  p : string;
  fd : Unix.file_descr;
  map : (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) A.t;
  nslots : int;
  wmu : Mutex.t;   (* in-process writer exclusion; fcntl covers processes *)
}

let magic = "XLIDX01\n"
let header_bytes = 64
let record_bytes = 64
let default_slots = 65536
let default_limit_mb = 1024
let max_load_num = 7 (* evict slots past 7/8 occupancy *)
let max_load_den = 8

(* -- Raw field access ----------------------------------------------------- *)

let get8 map off =
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor A.unsafe_get map (off + i)
  done;
  !v

let set8 map off v =
  let v = ref v in
  for i = 0 to 7 do
    A.unsafe_set map (off + i) (!v land 0xff);
    v := !v lsr 8
  done

(* Header fields *)
let h_nslots = 8
let h_limit = 16
let h_used = 24
let h_gen = 32
let h_hand = 40
let h_evictions = 48
let h_live = 56

(* Record fields (relative to the record's base offset) *)
let r_state = 0
let r_ref = 1
let r_tag = 2
let r_key = 4
let r_size = 36
let r_gen = 44
let r_sum = 52

let key_len = 32

let base _t slot = header_bytes + (slot * record_bytes)

(* -- Checksum / hash ------------------------------------------------------ *)

(* FNV-1a, 62-bit (stays in an OCaml int).  Used both as the record
   checksum and, keyed differently, as the probe hash. *)
let fnv_prime = 0x100000001b3
let fnv_mask = (1 lsl 62) - 1

let fnv_byte h b = ((h lxor b) * fnv_prime) land fnv_mask

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let record_sum ~state ~tag ~key ~size ~gen =
  (* FNV offset basis, truncated to the 62-bit working width. *)
  let h = fnv_byte 0x0bf29ce484222325 state in
  let h = fnv_byte h (Char.code tag) in
  let h = fnv_string h key in
  let h = fnv_byte h (size land 0xff) in (* mix the ints bytewise *)
  let rec mix h v n = if n = 0 then h else mix (fnv_byte h (v land 0xff)) (v lsr 8) (n - 1) in
  let h = mix h size 8 in
  mix h gen 8

let probe_start t ~key ~tag =
  let h = fnv_string (fnv_byte 0x1234567 (Char.code tag)) key in
  h mod t.nslots

(* -- Open / create -------------------------------------------------------- *)

let file_size nslots = header_bytes + (nslots * record_bytes)

(* fcntl lock on byte 0: serializes writers (and creation) across
   processes.  POSIX record locks are per-process, hence the mutex too. *)
let with_lock_fd ~mu fd f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) @@ fun () ->
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  Unix.lockf fd Unix.F_LOCK 1;
  Fun.protect
    ~finally:(fun () ->
        ignore (Unix.lseek fd 0 Unix.SEEK_SET);
        Unix.lockf fd Unix.F_ULOCK 1)
    f

let with_file_lock t f = with_lock_fd ~mu:t.wmu t.fd f

let map_fd fd nslots =
  let gen =
    Unix.map_file fd Bigarray.int8_unsigned Bigarray.c_layout true
      [| file_size nslots |]
  in
  Bigarray.array1_of_genarray gen

let read_magic fd =
  let b = Bytes.create (String.length magic) in
  ignore (Unix.lseek fd 0 Unix.SEEK_SET);
  let n = Unix.read fd b 0 (Bytes.length b) in
  if n = Bytes.length b then Some (Bytes.to_string b) else None

let openf ?(slots = default_slots) ?limit_mb p =
  if slots < 8 then invalid_arg "Cache_index.openf: slots must be >= 8";
  let dir = Filename.dirname p in
  if dir <> "" && not (Sys.file_exists dir) then begin
    let rec mkdir_p d =
      if not (Sys.file_exists d) then begin
        let parent = Filename.dirname d in
        if parent <> d then mkdir_p parent;
        try Sys.mkdir d 0o755
        with Sys_error _ when Sys.file_exists d -> ()
      end
    in
    mkdir_p dir
  end;
  let fd = Unix.openfile p [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let wmu = Mutex.create () in
  (* Creation races with other openers: decide under the file lock.
     Note no mapping exists yet — [Unix.map_file] grows a too-short
     file, which would corrupt the create-vs-open decision below. *)
  let nslots =
    with_lock_fd ~mu:wmu fd @@ fun () ->
    let st = Unix.fstat fd in
    if st.Unix.st_size < header_bytes then begin
      Unix.ftruncate fd (file_size slots);
      let map = map_fd fd slots in
      String.iteri (fun i c -> A.set map i (Char.code c)) magic;
      set8 map h_nslots slots;
      set8 map h_limit
        (Option.value limit_mb ~default:default_limit_mb * 1024 * 1024);
      slots
    end
    else
      match read_magic fd with
      | Some m when String.equal m magic ->
        let map = map_fd fd 1 in
        let n = get8 map h_nslots in
        if n < 8 || file_size n > st.Unix.st_size then
          failwith (p ^ ": corrupt index header");
        Option.iter
          (fun mb -> set8 map h_limit (mb * 1024 * 1024))
          limit_mb;
        n
      | _ -> failwith (p ^ ": not an xloops cache index")
  in
  { p; fd; map = map_fd fd nslots; nslots; wmu }

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let path t = t.p

(* -- Record views --------------------------------------------------------- *)

type entry = { e_slot : int; e_size : int; e_gen : int }

let record_key t b =
  String.init key_len (fun i -> Char.chr (A.unsafe_get t.map (b + r_key + i)))

(* One consistent read of a slot: [Some (key, size, gen, tag)] iff the
   slot is live and its checksum matches its fields right now. *)
let read_live t slot =
  let b = base t slot in
  if A.unsafe_get t.map (b + r_state) <> 1 then None
  else begin
    let tag = Char.chr (A.unsafe_get t.map (b + r_tag)) in
    let key = record_key t b in
    let size = get8 t.map (b + r_size) in
    let gen = get8 t.map (b + r_gen) in
    let sum = get8 t.map (b + r_sum) in
    if record_sum ~state:1 ~tag ~key ~size ~gen = sum
       && A.unsafe_get t.map (b + r_state) = 1
    then Some (key, size, gen, tag)
    else None
  end

let state t slot = A.unsafe_get t.map (base t slot + r_state)

(* -- Lookup --------------------------------------------------------------- *)

let find t ~key ~tag =
  let key = Digest_hex.to_hex key in
  let start = probe_start t ~key ~tag in
  let rec probe i =
    if i >= t.nslots then None
    else
      let slot = (start + i) mod t.nslots in
      match state t slot with
      | 0 -> None                             (* empty stops the probe *)
      | _ ->
        (match read_live t slot with
         | Some (k, size, gen, tg)
           when Char.equal tg tag && String.equal k key ->
           A.unsafe_set t.map (base t slot + r_ref) 1;
           Some { e_slot = slot; e_size = size; e_gen = gen }
         | _ -> probe (i + 1))               (* tomb, mismatch, or torn *)
  in
  probe 0

let still_valid t ~key ~tag e =
  match read_live t e.e_slot with
  | Some (k, _, gen, tg) ->
    Char.equal tg tag && String.equal k (Digest_hex.to_hex key)
    && gen = e.e_gen
  | None -> false

(* -- Mutation (writer-locked) --------------------------------------------- *)

let write_record t slot ~key ~tag ~size ~gen =
  let b = base t slot in
  A.unsafe_set t.map (b + r_state) 0;   (* invisible while we fill it *)
  A.unsafe_set t.map (b + r_ref) 1;
  A.unsafe_set t.map (b + r_tag) (Char.code tag);
  String.iteri
    (fun i c -> A.unsafe_set t.map (b + r_key + i) (Char.code c))
    key;
  set8 t.map (b + r_size) size;
  set8 t.map (b + r_gen) gen;
  set8 t.map (b + r_sum) (record_sum ~state:1 ~tag ~key ~size ~gen);
  A.unsafe_set t.map (b + r_state) 1    (* publish *)

let tombstone t slot =
  A.unsafe_set t.map (base t slot + r_state) 2

(* The clock sweep.  Called with the writer lock held. *)
let sweep_locked t ~goal_bytes ~goal_slots ~protect ~evict =
  let verdict =
    Evict.second_chance ~nslots:t.nslots ~hand:(get8 t.map h_hand)
      ~live:(fun s -> state t s = 1)
      ~size:(fun s -> get8 t.map (base t s + r_size))
      ~referenced:(fun s -> A.unsafe_get t.map (base t s + r_ref) = 1)
      ~clear_ref:(fun s -> A.unsafe_set t.map (base t s + r_ref) 0)
      ~goal_bytes ~goal_slots ~protect ()
  in
  List.iter
    (fun slot ->
       match read_live t slot with
       | None -> ()
       | Some (k, size, _, tag) ->
         tombstone t slot;
         set8 t.map h_used (max 0 (get8 t.map h_used - size));
         set8 t.map h_live (max 0 (get8 t.map h_live - 1));
         set8 t.map h_evictions (get8 t.map h_evictions + 1);
         (* The key in a checksummed live record is hex by construction. *)
         evict ~key:(Digest_hex.of_hex_exn k) ~tag)
    verdict.Evict.cv_victims;
  set8 t.map h_hand verdict.Evict.cv_hand;
  if verdict.Evict.cv_victims <> [] then
    set8 t.map h_gen (get8 t.map h_gen + 1)

let insert t ~key ~tag ~size ~evict =
  let hex = Digest_hex.to_hex key in
  with_file_lock t @@ fun () ->
  let start = probe_start t ~key:hex ~tag in
  (* First pass: find the key if present, else the first reusable slot. *)
  let slot = ref (-1) in
  let existing = ref false in
  (try
     for i = 0 to t.nslots - 1 do
       let s = (start + i) mod t.nslots in
       match state t s with
       | 0 ->
         if !slot < 0 then slot := s;
         raise Exit   (* empty terminates every probe chain *)
       | 2 -> if !slot < 0 then slot := s
       | _ ->
         (match read_live t s with
          | Some (k, _, _, tg) when Char.equal tg tag && String.equal k hex ->
            slot := s; existing := true; raise Exit
          | Some _ -> ()
          | None ->
            (* A non-live-checksum record under the writer lock is a
               leftover from a crashed writer: reusable. *)
            if !slot < 0 then slot := s)
     done
   with Exit -> ());
  if !existing then
    A.unsafe_set t.map (base t !slot + r_ref) 1
  else begin
    (if !slot < 0 then begin
       (* Table completely full: free some slots first, then re-probe. *)
       sweep_locked t ~goal_bytes:0 ~goal_slots:(t.nslots / 8) ~protect:(-1)
         ~evict;
       (try
          for i = 0 to t.nslots - 1 do
            let s = (start + i) mod t.nslots in
            if state t s <> 1 then begin slot := s; raise Exit end
          done
        with Exit -> ())
     end);
    if !slot < 0 then failwith "Cache_index.insert: table full";
    write_record t !slot ~key:hex ~tag ~size ~gen:(get8 t.map h_gen);
    set8 t.map h_used (get8 t.map h_used + size);
    set8 t.map h_live (get8 t.map h_live + 1);
    let limit = get8 t.map h_limit in
    let used = get8 t.map h_used in
    let live = get8 t.map h_live in
    let over_bytes = if limit > 0 && used > limit then used - limit else 0 in
    let over_slots =
      let bound = t.nslots * max_load_num / max_load_den in
      if live > bound then live - bound else 0
    in
    if over_bytes > 0 || over_slots > 0 then
      sweep_locked t ~goal_bytes:over_bytes ~goal_slots:over_slots
        ~protect:!slot ~evict
  end

let delete t ~key ~tag =
  with_file_lock t @@ fun () ->
  match find t ~key ~tag with
  | None -> ()
  | Some e ->
    (match read_live t e.e_slot with
     | Some (_, size, _, _) ->
       tombstone t e.e_slot;
       set8 t.map h_used (max 0 (get8 t.map h_used - size));
       set8 t.map h_live (max 0 (get8 t.map h_live - 1));
       set8 t.map h_gen (get8 t.map h_gen + 1)
     | None -> ())

(* -- Introspection -------------------------------------------------------- *)

let slots t = t.nslots
let live_entries t = get8 t.map h_live
let used_bytes t = get8 t.map h_used
let limit_bytes t = get8 t.map h_limit
let generation t = get8 t.map h_gen
let evictions t = get8 t.map h_evictions

let pp ppf t =
  Fmt.pf ppf
    "%s: %d/%d slot(s) live, %d/%d byte(s), generation %d, %d eviction(s)"
    t.p (live_entries t) t.nslots (used_bytes t) (limit_bytes t)
    (generation t) (evictions t)
