(** XLOOPS: explicit loop specialization — a full-system reproduction of
    Srinath et al., "Architectural Specialization for Inter-Iteration Loop
    Dependence Patterns" (MICRO 2014).

    This is the façade module; the pieces are:

    - {!Isa} / {!Asm} / {!Mem}: the 32-bit RISC + XLOOPS instruction set,
      assembler and memory subsystem;
    - {!Sim}: functional executor, in-order and out-of-order GPP timing
      models, the LPSU, and the machine driver with traditional /
      specialized / adaptive execution;
    - {!Compiler}: the Loopc language and the XLOOPS compiler (dependence
      analysis, pattern selection, [.xi] strength reduction);
    - {!Energy} / {!Vlsi}: McPAT-style energy accounting and the Table V
      area/cycle-time model;
    - {!Kernels}: the 25 Table II application kernels plus the Table IV
      variants;
    - {!Run_spec} / {!Pool} / {!Run_cache}: the parallel evaluation
      engine — pure run plans, the Domain-based worker pool and the
      content-addressed on-disk result cache;
    - {!Failure} / {!Journal} / {!Chaos}: the fault-tolerant
      orchestration layer — the unified failure taxonomy with seeded
      retry/backoff, the crash-safe sweep journal behind [--resume],
      and seeded infrastructure chaos plans;
    - {!Experiments}: the harness that regenerates every table and
      figure, including {!Experiments.sweep}, the fault-tolerant sweep
      driver.

    Quick start (see also [examples/quickstart.ml]):
    {[
      let kernel = Xloops.Kernels.Registry.find "sgemm-uc" in
      let run =
        Xloops.Kernels.Kernel.run
          ~cfg:Xloops.Sim.Config.io_x
          ~mode:Xloops.Sim.Machine.Specialized kernel
      in
      Fmt.pr "cycles: %d@." run.result.cycles
    ]} *)

module Isa = Xloops_isa
module Asm = Xloops_asm
module Mem = Xloops_mem
module Sim = Xloops_sim
module Compiler = Xloops_compiler
module Energy = Xloops_energy
module Vlsi = Xloops_vlsi
module Kernels = Xloops_kernels
module Digest_hex = Digest_hex
module Run_spec = Run_spec
module Pool = Pool
module Run_cache = Run_cache
module Cache_index = Cache_index
module Evict = Evict
module Failure = Failure
module Journal = Journal
module Chaos = Chaos
module Experiments = Experiments
module Differential = Differential
