(** The evaluation engine: regenerates the paper's tables and figures
    from the simulator.  Every run self-checks its architectural outputs
    against the kernel's OCaml reference; a failed check raises
    {!Check_failed} instead of producing numbers. *)

module Kernel = Xloops_kernels.Kernel
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Stats = Xloops_sim.Stats
module Compile = Xloops_compiler.Compile
module Energy = Xloops_energy.Model

type run_data = Run_spec.run_data = {
  cfg : Config.t;
  mode : Machine.mode;
  cycles : int;
  insns : int;
  stats : Stats.t;
  energy : Energy.breakdown;
}

exception Check_failed of { kernel : string; what : string; msg : string }
(** Alias of {!Run_spec.Check_failed}. *)

val run_checked :
  ?target:Compile.target -> cfg:Config.t -> mode:Machine.mode ->
  Kernel.t -> run_data
(** One checked run, described as a {!Run_spec} and executed in place. *)

val hosts : (Config.t * Config.t) list
(** Table II's (baseline GPP, +x machine) pairs. *)

type host_eval = {
  base : run_data;   (** serial baseline on the bare GPP *)
  trad : run_data;
  spec : run_data;
  adapt : run_data;
}

type eval = {
  kernel : Kernel.t;
  gpi_dyn : int;
  xli_dyn : int;
  body_min : int;
  body_max : int;
  per_host : (string * host_eval) list;
}

val body_stats : Kernel.t -> int * int

(** {1 The run engine}

    Producers obtain results through an {!engine}: [run] executes one
    {!Run_spec} (directly, memoized or cached — producers don't care),
    [meta] computes a kernel's dynamic-instruction counts and body
    statistics.  Warm a {!caching_engine} in parallel with
    [Pool.map ~jobs engine.run specs], then assemble tables serially:
    the output is byte-identical to a fully serial sweep. *)

type kernel_meta = {
  gpi_dyn : int;
  xli_dyn : int;
  body_min : int;
  body_max : int;
}

type engine = {
  run : Run_spec.t -> run_data;
  meta : Kernel.t -> kernel_meta;
}

val direct_engine : engine
(** Executes every spec directly (serial, uncached). *)

val caching_engine : ?cache:Run_cache.t -> unit -> engine
(** Thread-safe in-memory memoization on top of the optional on-disk
    cache.  Disk hits get [stats.cache_hits = 1]; fresh simulations get
    [stats.cache_misses = 1]. *)

(** {1 Fault-tolerant sweeps}

    {!sweep} executes a spec plan under the orchestration stack: crash
    isolation and retry ({!Pool.run_each}), journaled checkpoint/resume
    ({!Journal}), and optional infrastructure chaos ({!Chaos}).  A
    failing or timed-out spec becomes a per-item failure in the report
    instead of aborting the sweep; only [Failure.Abort] propagates. *)

type sweep_outcome = {
  so_spec : Run_spec.t;
  so_digest : Digest_hex.t;         (** {!Run_spec.digest} — journal key *)
  so_attempts : int;
  so_result : (run_data, Failure.t) result option;
      (** [None] when the journal said the spec was already complete *)
}

type sweep_report = {
  sr_outcomes : sweep_outcome list; (** in plan order *)
  sr_executed : int;                (** items actually run (ok or failed) *)
  sr_skipped : int;                 (** items served by the journal *)
  sr_failures : (Run_spec.t * Failure.t) list;
}

val sweep :
  ?jobs:int -> ?policy:Pool.policy -> ?journal:Journal.t ->
  ?chaos:Chaos.t -> engine -> Run_spec.t list -> sweep_report
(** Specs already in [journal] are skipped; completed specs are durably
    journaled the moment they finish, so a killed sweep resumes from
    exactly where it died.  Successful results stay in the engine's
    memo/cache, so assembly passes after the sweep are unchanged and
    stdout stays byte-identical to an uninterrupted serial sweep. *)

val pp_sweep_failure :
  Format.formatter -> Run_spec.t * Failure.t -> unit

val specs_for : ?hosts:(Config.t * Config.t) list -> Kernel.t ->
  Run_spec.t list
(** The twelve specs of one kernel's Table II methodology, in canonical
    (base, trad, spec, adapt)-per-host order. *)

val evaluate :
  ?hosts:(Config.t * Config.t) list -> ?engine:engine -> Kernel.t -> eval
(** Without [engine], every spec executes directly against the passed
    kernel value (which need not be registered); with one, specs resolve
    through the registry and may be served memoized or from cache. *)

val host : eval -> string -> host_eval

val speedup : host_eval -> run_data -> float
(** Relative to the serial baseline on the same GPP. *)

val energy_eff : host_eval -> run_data -> float
val rel_power : host_eval -> run_data -> float

(** {1 Table II} *)

type table2_row = {
  t2_name : string;
  t2_suite : string;
  t2_type : string;
  t2_body : int * int;
  t2_gpi : int;
  t2_xg : float;
  t2_speedups : (string * (float * float * float)) list;
}

val table2_row : eval -> table2_row
val pp_table2_header : Format.formatter -> unit -> unit
val pp_table2_row : Format.formatter -> table2_row -> unit

(** {1 Figures 6-10, Table IV} *)

val fig6_row : eval -> string * (string * float) list
val pp_fig6 :
  Format.formatter -> (string * (string * float) list) list -> unit

type fig8_point = {
  f8_kernel : string;
  f8_host : string;
  f8_mode : string;
  f8_speedup : float;
  f8_energy_eff : float;
  f8_rel_power : float;
}

val fig8_points : eval -> fig8_point list
val pp_fig8 : Format.formatter -> fig8_point list -> unit

val fig9_kernels : string list
val fig9_specs : unit -> Run_spec.t list
val fig9 : ?engine:engine -> unit -> (string * (string * float) list) list
val pp_fig9 :
  Format.formatter -> (string * (string * float) list) list -> unit

val table4_specs : unit -> Run_spec.t list
val table4 :
  ?engine:engine -> unit -> (string * string * (string * float) list) list
val pp_table4 :
  Format.formatter -> (string * string * (string * float) list) list -> unit

val fig10_kernels : string list
val fig10_specs : unit -> Run_spec.t list
val fig10 : ?engine:engine -> unit -> (string * float * float) list
val pp_fig10 : Format.formatter -> (string * float * float) list -> unit
