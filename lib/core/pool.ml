(** Domain-based worker pool for evaluation sweeps.

    The unit of work is an independent, self-contained description (a
    {!Run_spec.t}, in practice): the pool just pulls indices off a
    shared atomic counter and runs the worker function on its own
    domain, so there is no inter-task communication at all — the only
    synchronization is the counter and the final joins.  Results come
    back in input order regardless of completion order, which is what
    keeps parallel sweeps byte-identical to serial ones. *)

let env_jobs_var = "XLOOPS_JOBS"

let available_cores () = Domain.recommended_domain_count ()

(** The job count to use when the caller gave none: [$XLOOPS_JOBS] if
    set to a positive integer, else 1 (serial — determinism of resource
    use by default; parallelism is opt-in). *)
let default_jobs () =
  match Sys.getenv_opt env_jobs_var with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | _ -> 1)
  | None -> 1

(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains (including the calling one).  Order is preserved.  If any
    application raises, the exception of the earliest-indexed failing
    element is re-raised in the caller — after all workers have been
    joined, so no domain leaks. *)
let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <-
            Some (match f input.(i) with
                  | v -> Ok v
                  | exception e -> Error (e, Printexc.get_raw_backtrace ()));
          loop ()
        end
      in
      loop ()
    in
    let domains =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list out
    |> List.map (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
  end

(** [iter ~jobs f xs] is {!map} with unit results. *)
let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x; ()) xs)
