(** Domain-based worker pool for evaluation sweeps.

    The unit of work is an independent, self-contained description (a
    {!Run_spec.t}, in practice): the pool just pulls indices off a
    shared atomic counter and runs the worker function on its own
    domain, so there is no inter-task communication at all — the only
    synchronization is the counter and the final joins.  Results come
    back in input order regardless of completion order, which is what
    keeps parallel sweeps byte-identical to serial ones.

    Two entry points share that machinery: {!map} is the plain
    fail-fast form (first exception wins, whole sweep dies — fine for
    tests and short interactive runs), and {!run_each} is the
    fault-tolerant form the orchestration layer uses: every item gets a
    structured per-item [('b, Failure.t) result], crashes are isolated
    to their item, transient failures retry with seeded backoff, a
    per-item deadline turns stalls into {!Failure.Timeout}s, and only
    {!Failure.Abort} (SIGINT translation, injected mid-sweep aborts)
    stops the sweep — promptly, because every worker checks a shared
    stop flag before pulling its next item. *)

let env_jobs_var = "XLOOPS_JOBS"

let available_cores () = Domain.recommended_domain_count ()

(* Warn-once registry keyed by variable name: every consumer of a
   positive-integer environment knob (default_jobs here, the service
   daemon's worker count, the CLI engine defaults) goes through this one
   code path, so a malformed variable warns exactly once per process no
   matter how many subsystems consult it. *)
let env_warned : (string, unit) Hashtbl.t = Hashtbl.create 4
let env_warned_mu = Mutex.create ()

let warn_once var msg =
  Mutex.lock env_warned_mu;
  let first = not (Hashtbl.mem env_warned var) in
  if first then Hashtbl.replace env_warned var ();
  Mutex.unlock env_warned_mu;
  if first then Fmt.epr "%s" msg

(** [$var] parsed as an integer [>= min], or [default].  A set-but-
    malformed value would otherwise silently fall back behind the
    user's back (e.g. serialize a sweep they believed was parallel), so
    it warns on stderr — once per process per variable. *)
let env_int ?(min = 0) ~default var =
  match Sys.getenv_opt var with
  | None -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= min -> n
     | _ ->
       warn_once var
         (Fmt.str "[env] warning: ignoring %s=%S (want an integer >= %d)@."
            var s min);
       default)

let env_positive_int ~default var = env_int ~min:1 ~default var

(** The job count to use when the caller gave none: [$XLOOPS_JOBS] if
    set to a positive integer, else 1 (serial — determinism of resource
    use by default; parallelism is opt-in). *)
let default_jobs () = env_positive_int ~default:1 env_jobs_var

(* Shared fan-out skeleton: run [worker i] for every index on up to
   [jobs] domains (including the calling one), honoring a stop flag
   checked before each pull.  [worker] must not raise. *)
let fan_out ~jobs ~n ~stop worker =
  let next = Atomic.make 0 in
  let domain_worker () =
    let rec loop () =
      if not (Atomic.get stop) then begin
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin worker i; loop () end
      end
    in
    loop ()
  in
  let domains =
    List.init (min jobs n - 1) (fun _ -> Domain.spawn domain_worker) in
  domain_worker ();
  List.iter Domain.join domains

(** [map ~jobs f xs] is [List.map f xs] computed on up to [jobs]
    domains (including the calling one).  Order is preserved.  If any
    application raises, the exception of the earliest-indexed failing
    element is re-raised in the caller — after all workers have been
    joined, so no domain leaks. *)
let map ?jobs f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let n = List.length xs in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let out = Array.make n None in
    fan_out ~jobs ~n ~stop:(Atomic.make false) (fun i ->
        out.(i) <-
          Some (match f input.(i) with
                | v -> Ok v
                | exception e -> Error (e, Printexc.get_raw_backtrace ())));
    Array.to_list out
    |> List.map (function
        | Some (Ok v) -> v
        | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
        | None -> assert false)
  end

(** [iter ~jobs f xs] is {!map} with unit results. *)
let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x; ()) xs)

(* -- Fault-tolerant execution ------------------------------------------- *)

(** The retry/deadline policy one sweep runs under.  [deadline_ms]
    bounds each item's wall clock — exceeding it is a structured
    {!Failure.Timeout}, relying on the simulator's own fuel/watchdog
    budgets (PR 1) for the guarantee that items terminate at all.
    Transient failures retry up to [max_retries] extra attempts with
    deterministic seeded exponential backoff. *)
type policy = {
  deadline_ms : int option;
  max_retries : int;
  backoff_base_ms : int;
  backoff_seed : int;
}

let default_policy =
  { deadline_ms = None; max_retries = 2; backoff_base_ms = 25;
    backoff_seed = 0 }

type 'b outcome = 'b Failure.outcome = {
  result : ('b, Failure.t) result;
  attempts : int;
  elapsed_ms : int;
}

exception Aborted_before_start

(** [run_each ~jobs ~policy ~salt f xs] runs [f] on every item with
    crash isolation: the result is a per-item {!outcome} in input
    order.  [salt] names an item for backoff determinism (default: its
    index).  {!Failure.Abort} is the one exception that escapes: the
    sweep stops promptly (workers finish their current item and stop
    pulling), already-finished outcomes are discarded, and the abort is
    re-raised after every domain has been joined. *)
let run_each ?jobs ?(policy = default_policy) ?salt f xs =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let input = Array.of_list xs in
  let n = Array.length input in
  let salt_of =
    match salt with Some s -> s | None -> fun _ -> "" in
  let out = Array.make n None in
  let stop = Atomic.make false in
  let abort : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None in
  let worker i =
    let x = input.(i) in
    match
      Failure.with_retries
        ?deadline_ms:policy.deadline_ms
        ~max_retries:policy.max_retries
        ~backoff_base_ms:policy.backoff_base_ms
        ~seed:policy.backoff_seed
        ~salt:(Printf.sprintf "%d:%s" i (salt_of x))
        (fun () -> f x)
    with
    | outcome -> out.(i) <- Some outcome
    | exception (Failure.Abort _ as e) ->
      ignore
        (Atomic.compare_and_set abort None
           (Some (e, Printexc.get_raw_backtrace ())));
      Atomic.set stop true
  in
  if n > 0 then fan_out ~jobs ~n ~stop worker;
  match Atomic.get abort with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
    Array.to_list out
    |> List.map (function
        | Some o -> o
        | None ->
          (* Unreachable without an abort; keep the invariant loud. *)
          raise Aborted_before_start)
