(** Abstract hex-encoded MD5 content addresses.

    Every identity in the evaluation engine — spec digests, result cache
    keys, kernel-metadata keys, journal entries — is one of these.  The
    type is abstract so raw strings can no longer masquerade as digests
    (or vice versa) anywhere inside the process; the only ways in are
    {!of_digest} (from a freshly computed [Stdlib.Digest.t]) and
    {!of_hex} (parsing, for values read off a wire or a journal line,
    which is where validation belongs). *)

type t

val of_digest : Stdlib.Digest.t -> t
(** From a raw 16-byte MD5 (the output of [Digest.string]). *)

val of_hex : string -> (t, string) result
(** Parse a 32-lowercase-hex-character string; [Error] explains what is
    wrong with anything else.  The inverse of {!to_hex}. *)

val of_hex_exn : string -> t
(** {!of_hex}, raising [Invalid_argument]. *)

val to_hex : t -> string
(** The canonical 32-character lowercase hex spelling — the form that
    crosses process boundaries (wire frames, journal lines, file
    names). *)

val shard : t -> string
(** The first two hex digits — the result cache's shard directory. *)

val short : t -> string
(** First 8 hex digits, for diagnostics. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
