(** The evaluation engine: everything needed to regenerate the paper's
    tables and figures from the simulator.

    An {!eval} bundles, for one application kernel, all twelve runs of
    Section IV's methodology: the serial (general-purpose ISA) baseline on
    each of io / ooo2 / ooo4, and the XLOOPS binary in traditional /
    specialized / adaptive mode on the corresponding +x machine.  Every
    run self-checks its outputs; a failed check raises, so the tables can
    never silently report numbers from a broken execution. *)

module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Stats = Xloops_sim.Stats
module Compile = Xloops_compiler.Compile
module Energy = Xloops_energy.Model

type run_data = Run_spec.run_data = {
  cfg : Config.t;
  mode : Machine.mode;
  cycles : int;
  insns : int;
  stats : Stats.t;
  energy : Energy.breakdown;
}

exception Check_failed = Run_spec.Check_failed

(** One checked run, described as a {!Run_spec} and executed in place —
    the serial convenience the ablations and tests use. *)
let run_checked ?(target = Compile.xloops) ~cfg ~mode (k : Kernel.t)
  : run_data =
  Run_spec.execute ~kernel:k (Run_spec.make ~target ~cfg ~mode k.name)

(* The three host pairs of Table II: baseline GPP and its +x machine. *)
let hosts = [ (Config.io, Config.io_x);
              (Config.ooo2, Config.ooo2_x);
              (Config.ooo4, Config.ooo4_x) ]

type host_eval = {
  base : run_data;          (** serial baseline on the bare GPP *)
  trad : run_data;          (** XLOOPS binary, traditional *)
  spec : run_data;          (** XLOOPS binary, specialized *)
  adapt : run_data;         (** XLOOPS binary, adaptive *)
}

type eval = {
  kernel : Kernel.t;
  gpi_dyn : int;            (** serial dynamic instructions, general ISA *)
  xli_dyn : int;            (** serial dynamic instructions, XLOOPS ISA *)
  body_min : int;           (** smallest static xloop body *)
  body_max : int;
  per_host : (string * host_eval) list;   (** keyed by GPP name *)
}

let body_stats (k : Kernel.t) =
  let c = Compile.compile ~target:Compile.xloops k.kernel in
  match Compile.xloop_bodies c.program with
  | [] -> (0, 0)
  | bodies ->
    let lens = List.map (fun (_, _, l) -> l) bodies in
    (List.fold_left min max_int lens, List.fold_left max 0 lens)

(* ------------------------------------------------------------------ *)
(* The run engine: how specs get executed and metadata gets computed   *)
(* ------------------------------------------------------------------ *)

type kernel_meta = {
  gpi_dyn : int;
  xli_dyn : int;
  body_min : int;
  body_max : int;
}

(** How the producers below obtain results: [run] executes one
    {!Run_spec} (directly, memoized, cached — the producer does not
    care), [meta] computes a kernel's dynamic-instruction counts and
    body statistics.  Producers only ever consume what the engine hands
    back, so warming the engine in parallel ({!Pool.map} over a spec
    list) and then assembling tables serially yields byte-identical
    output to a fully serial sweep. *)
type engine = {
  run : Run_spec.t -> run_data;
  meta : Kernel.t -> kernel_meta;
}

let compute_meta (k : Kernel.t) : kernel_meta =
  let dyn target =
    match Kernel.dynamic_insns ~target k with
    | Ok n -> n
    | Error msg -> failwith ("Experiments.evaluate: " ^ msg)
  in
  let body_min, body_max = body_stats k in
  { gpi_dyn = dyn Compile.general; xli_dyn = dyn Compile.xloops;
    body_min; body_max }

let direct_engine =
  { run = (fun spec -> Run_spec.execute spec); meta = compute_meta }

(** An engine that memoizes every result in memory (thread-safe, so it
    can be warmed by a {!Pool}) and, when [cache] is given, reads and
    writes the on-disk result cache.  Runs served from disk get
    [stats.cache_hits = 1]; freshly simulated ones get
    [stats.cache_misses = 1]. *)
let caching_engine ?cache () : engine =
  let memo_runs : (Digest_hex.t, run_data) Hashtbl.t = Hashtbl.create 256 in
  let memo_meta : (Digest_hex.t, kernel_meta) Hashtbl.t =
    Hashtbl.create 64 in
  let mu = Mutex.create () in
  let locked f =
    Mutex.lock mu;
    Fun.protect ~finally:(fun () -> Mutex.unlock mu) f
  in
  (* First writer wins: if two domains raced on the same key, every
     later reader sees one canonical record. *)
  let publish memo key v =
    locked (fun () ->
        match Hashtbl.find_opt memo key with
        | Some v' -> v'
        | None -> Hashtbl.replace memo key v; v)
  in
  let run spec =
    let key = Run_spec.cache_key spec in
    match locked (fun () -> Hashtbl.find_opt memo_runs key) with
    | Some rd -> rd
    | None ->
      let rd =
        match Option.bind cache (fun c -> Run_cache.find_run c ~key) with
        | Some rd -> rd.stats.Stats.cache_hits <- 1; rd
        | None ->
          let rd = Run_spec.execute spec in
          Option.iter (fun c -> Run_cache.store_run c ~key rd) cache;
          rd.stats.Stats.cache_misses <- 1;
          rd
      in
      publish memo_runs key rd
  in
  let meta k =
    let key = Run_spec.kernel_digest k in
    match locked (fun () -> Hashtbl.find_opt memo_meta key) with
    | Some m -> m
    | None ->
      let m =
        match Option.bind cache (fun c -> Run_cache.find_meta c ~key) with
        | Some [| g; x; bmin; bmax |] ->
          { gpi_dyn = g; xli_dyn = x; body_min = bmin; body_max = bmax }
        | Some _ | None ->
          let m = compute_meta k in
          Option.iter
            (fun c ->
               Run_cache.store_meta c ~key
                 [| m.gpi_dyn; m.xli_dyn; m.body_min; m.body_max |])
            cache;
          m
      in
      publish memo_meta key m
  in
  { run; meta }

(* ------------------------------------------------------------------ *)
(* Fault-tolerant sweep orchestration                                  *)
(* ------------------------------------------------------------------ *)

(** One sweep item's fate: [None] when the journal said it was already
    complete (resume), otherwise the structured per-item result. *)
type sweep_outcome = {
  so_spec : Run_spec.t;
  so_digest : Digest_hex.t;         (** {!Run_spec.digest} — journal key *)
  so_attempts : int;
  so_result : (run_data, Failure.t) result option;
}

type sweep_report = {
  sr_outcomes : sweep_outcome list; (** in plan order *)
  sr_executed : int;                (** items actually run (ok or failed) *)
  sr_skipped : int;                 (** items served by the journal *)
  sr_failures : (Run_spec.t * Failure.t) list;
}

(** Execute a spec plan under the full fault-tolerance stack: per-item
    crash isolation, deadlines and seeded retry ({!Pool.run_each} with
    [policy]), journaled checkpoint/resume (specs whose digest [journal]
    already holds are skipped; each completed spec is durably recorded
    the moment it finishes, so a killed sweep resumes from exactly where
    it died), and optional infrastructure chaos ([chaos] stalls/crashes
    workers and may abort the sweep — {!Failure.Abort} propagates to the
    caller with the journal intact).

    The engine's memo/cache still holds every successful result, so the
    assembly passes that follow a sweep are unchanged: skipped items are
    served from the on-disk cache, executed ones from the memo — stdout
    stays byte-identical to an uninterrupted serial sweep. *)
let sweep ?jobs ?(policy = Pool.default_policy) ?journal ?chaos
    (engine : engine) (plan : Run_spec.t list) : sweep_report =
  let items =
    List.map (fun spec -> (spec, Run_spec.digest spec)) plan in
  let todo, skipped =
    match journal with
    | None -> (items, [])
    | Some j ->
      List.partition (fun (_, dg) -> not (Journal.member j dg)) items
  in
  let worker (spec, dg) =
    Option.iter Chaos.before_item chaos;
    let rd = engine.run spec in
    (* Journal from inside the worker, not after the join: completion
       must be durable the moment it happens or a killed sweep forfeits
       in-flight progress. *)
    Option.iter (fun j -> Journal.record j dg) journal;
    rd
  in
  let outcomes =
    Pool.run_each ?jobs ~policy
      ~salt:(fun (_, dg) -> Digest_hex.to_hex dg) worker todo in
  let by_digest = Hashtbl.create (List.length todo * 2 + 1) in
  List.iter2
    (fun (_, dg) (o : run_data Pool.outcome) ->
       Hashtbl.replace by_digest dg o)
    todo outcomes;
  let sr_outcomes =
    List.map
      (fun (spec, dg) ->
         match Hashtbl.find_opt by_digest dg with
         | None ->
           { so_spec = spec; so_digest = dg; so_attempts = 0;
             so_result = None }
         | Some o ->
           { so_spec = spec; so_digest = dg; so_attempts = o.Pool.attempts;
             so_result = Some o.Pool.result })
      items
  in
  let sr_failures =
    List.filter_map
      (fun so ->
         match so.so_result with
         | Some (Error f) -> Some (so.so_spec, f)
         | _ -> None)
      sr_outcomes
  in
  { sr_outcomes;
    sr_executed = List.length todo;
    sr_skipped = List.length skipped;
    sr_failures }

let pp_sweep_failure ppf ((spec : Run_spec.t), f) =
  Fmt.pf ppf "%a: %a" Run_spec.pp spec Failure.pp_tagged f

(** The twelve specs of one kernel's Table II methodology, in canonical
    order: (base, trad, spec, adapt) per host. *)
let specs_for ?(hosts = hosts) (k : Kernel.t) : Run_spec.t list =
  List.concat_map
    (fun (gpp, gpp_x) ->
       [ Run_spec.make ~target:Compile.general ~cfg:gpp
           ~mode:Machine.Traditional k.name;
         Run_spec.make ~cfg:gpp_x ~mode:Machine.Traditional k.name;
         Run_spec.make ~cfg:gpp_x ~mode:Machine.Specialized k.name;
         Run_spec.make ~cfg:gpp_x ~mode:Machine.Adaptive k.name ])
    hosts

(** Run the full Table II methodology for one kernel.  Without [engine]
    every spec executes directly against the passed kernel value (which
    need not be registered); with one, specs resolve through the kernel
    registry and may be served memoized or from the cache. *)
let evaluate ?(hosts = hosts) ?engine (k : Kernel.t) : eval =
  let run, meta_of =
    match engine with
    | Some e -> (e.run, e.meta)
    | None -> ((fun spec -> Run_spec.execute ~kernel:k spec), compute_meta)
  in
  let m = meta_of k in
  let per_host =
    List.map
      (fun (gpp, gpp_x) ->
         (gpp.Config.name,
          { base = run (Run_spec.make ~target:Compile.general ~cfg:gpp
                          ~mode:Machine.Traditional k.name);
            trad = run (Run_spec.make ~cfg:gpp_x ~mode:Machine.Traditional
                          k.name);
            spec = run (Run_spec.make ~cfg:gpp_x ~mode:Machine.Specialized
                          k.name);
            adapt = run (Run_spec.make ~cfg:gpp_x ~mode:Machine.Adaptive
                           k.name) }))
      hosts
  in
  { kernel = k; gpi_dyn = m.gpi_dyn; xli_dyn = m.xli_dyn;
    body_min = m.body_min; body_max = m.body_max; per_host }

let host ev name =
  match List.assoc_opt name ev.per_host with
  | Some h -> h
  | None -> invalid_arg ("Experiments.host: " ^ name)

(** Speedup of a run relative to the serial baseline on the same GPP. *)
let speedup (h : host_eval) (r : run_data) =
  float_of_int h.base.cycles /. float_of_int r.cycles

(** Energy efficiency relative to the serial baseline on the same GPP
    (>1 means less energy than the baseline). *)
let energy_eff (h : host_eval) (r : run_data) =
  Energy.efficiency ~baseline:h.base.energy r.energy

(** Relative dynamic power (energy/time) vs the baseline. *)
let rel_power (h : host_eval) (r : run_data) =
  Energy.power ~cycles:r.cycles r.energy
  /. Energy.power ~cycles:h.base.cycles h.base.energy

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

type table2_row = {
  t2_name : string;
  t2_suite : string;
  t2_type : string;
  t2_body : int * int;
  t2_gpi : int;
  t2_xg : float;               (** XLI/GPI dynamic-instruction ratio *)
  (* (T, S, A) per host, in io / ooo2 / ooo4 order *)
  t2_speedups : (string * (float * float * float)) list;
}

let table2_row (ev : eval) : table2_row =
  { t2_name = ev.kernel.name;
    t2_suite = ev.kernel.suite;
    t2_type = ev.kernel.dominant;
    t2_body = (ev.body_min, ev.body_max);
    t2_gpi = ev.gpi_dyn;
    t2_xg = float_of_int ev.xli_dyn /. float_of_int ev.gpi_dyn;
    t2_speedups =
      List.map
        (fun (name, h) ->
           (name, (speedup h h.trad, speedup h h.spec, speedup h h.adapt)))
        ev.per_host }

let pp_table2_header ppf () =
  Fmt.pf ppf
    "%-14s %-3s %-6s %-9s %9s %5s │ %-17s │ %-17s │ %-17s@."
    "name" "st" "type" "body" "GPI-dyn" "X/G"
    "io: T    S    A" "ooo2: T   S    A" "ooo4: T   S    A"

let pp_table2_row ppf (r : table2_row) =
  let tri (t, s, a) = Fmt.str "%4.2f %4.2f %4.2f" t s a in
  let get n = tri (List.assoc n r.t2_speedups) in
  Fmt.pf ppf "%-14s %-3s %-6s %4d-%-4d %9d %5.2f │ %s │ %s │ %s@."
    r.t2_name r.t2_suite r.t2_type (fst r.t2_body) (snd r.t2_body)
    r.t2_gpi r.t2_xg (get "io") (get "ooo/2") (get "ooo/4")

(* ------------------------------------------------------------------ *)
(* Figure 6: LPSU lane-cycle breakdown for specialized execution       *)
(* ------------------------------------------------------------------ *)

let fig6_row (ev : eval) =
  let h = host ev "io" in
  (ev.kernel.name, Stats.lane_breakdown h.spec.stats)

let pp_fig6 ppf rows =
  Fmt.pf ppf "%-14s" "kernel";
  (match rows with
   | (_, cats) :: _ ->
     List.iter (fun (c, _) -> Fmt.pf ppf " %6s" c) cats
   | [] -> ());
  Fmt.pf ppf "@.";
  List.iter
    (fun (name, cats) ->
       Fmt.pf ppf "%-14s" name;
       List.iter (fun (_, f) -> Fmt.pf ppf " %6.3f" f) cats;
       Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8: energy efficiency vs performance                          *)
(* ------------------------------------------------------------------ *)

type fig8_point = {
  f8_kernel : string;
  f8_host : string;
  f8_mode : string;
  f8_speedup : float;
  f8_energy_eff : float;
  f8_rel_power : float;
}

let fig8_points (ev : eval) : fig8_point list =
  List.concat_map
    (fun (name, h) ->
       List.map
         (fun (mode, r) ->
            { f8_kernel = ev.kernel.name; f8_host = name; f8_mode = mode;
              f8_speedup = speedup h r;
              f8_energy_eff = energy_eff h r;
              f8_rel_power = rel_power h r })
         [ ("S", h.spec); ("A", h.adapt) ])
    ev.per_host

let pp_fig8 ppf points =
  Fmt.pf ppf "%-14s %-6s %-2s %8s %8s %8s@." "kernel" "host" "m"
    "speedup" "en-eff" "power";
  List.iter
    (fun p ->
       Fmt.pf ppf "%-14s %-6s %-2s %8.2f %8.2f %8.2f@."
         p.f8_kernel p.f8_host p.f8_mode p.f8_speedup p.f8_energy_eff
         p.f8_rel_power)
    points

(* ------------------------------------------------------------------ *)
(* Figure 9: LPSU design-space exploration                             *)
(* ------------------------------------------------------------------ *)

let fig9_kernels =
  [ "sgemm-uc"; "viterbi-uc"; "kmeans-or"; "covar-or"; "btree-ua" ]

let fig9_base name =
  Run_spec.make ~target:Compile.general ~cfg:Config.ooo4
    ~mode:Machine.Traditional name

let fig9_specs () =
  List.concat_map
    (fun name ->
       fig9_base name
       :: List.map
         (fun cfg -> Run_spec.make ~cfg ~mode:Machine.Specialized name)
         Config.design_space)
    fig9_kernels

(** Speedups of specialized execution on each design-space LPSU over the
    serial baseline on the ooo/4 host. *)
let fig9 ?(engine = direct_engine) () =
  List.map
    (fun name ->
       let base = engine.run (fig9_base name) in
       let points =
         List.map
           (fun cfg ->
              let r =
                engine.run (Run_spec.make ~cfg ~mode:Machine.Specialized
                              name) in
              (cfg.Config.name,
               float_of_int base.cycles /. float_of_int r.cycles))
           Config.design_space
       in
       (name, points))
    fig9_kernels

let pp_fig9 ppf rows =
  (match rows with
   | (_, points) :: _ ->
     Fmt.pf ppf "%-14s" "kernel";
     List.iter (fun (n, _) -> Fmt.pf ppf " %10s" n) points;
     Fmt.pf ppf "@."
   | [] -> ());
  List.iter
    (fun (name, points) ->
       Fmt.pf ppf "%-14s" name;
       List.iter (fun (_, s) -> Fmt.pf ppf " %10.2f" s) points;
       Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Table IV: case studies                                              *)
(* ------------------------------------------------------------------ *)

let table4_pair (k : Kernel.t) (gpp, gpp_x) =
  ( Run_spec.make ~target:Compile.general ~cfg:gpp
      ~mode:Machine.Traditional k.name,
    Run_spec.make ~cfg:gpp_x ~mode:Machine.Specialized k.name )

let table4_specs () =
  List.concat_map
    (fun (k : Kernel.t) ->
       List.concat_map
         (fun host -> let b, s = table4_pair k host in [ b; s ])
         hosts)
    Registry.table4

(** Specialized-execution speedups of the Table IV variants on each +x
    host, relative to the serial baseline of the {e original} algorithm
    (the paper normalizes to the general-purpose kernels). *)
let table4 ?(engine = direct_engine) () =
  List.map
    (fun (k : Kernel.t) ->
       let speedups =
         List.map
           (fun ((_, gpp_x) as host) ->
              let b, s = table4_pair k host in
              let base = engine.run b and spec = engine.run s in
              (gpp_x.Config.name,
               float_of_int base.cycles /. float_of_int spec.cycles))
           hosts
       in
       (k.name, k.dominant, speedups))
    Registry.table4

let pp_table4 ppf rows =
  Fmt.pf ppf "%-16s %-6s %8s %8s %8s@." "name" "type" "io+x" "ooo2+x"
    "ooo4+x";
  List.iter
    (fun (name, ty, speedups) ->
       Fmt.pf ppf "%-16s %-6s" name ty;
       List.iter (fun (_, s) -> Fmt.pf ppf " %8.2f" s) speedups;
       Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figure 10: VLSI-mode evaluation (uc kernels, no .xi, uc-only LPSU)  *)
(* ------------------------------------------------------------------ *)

let fig10_kernels =
  [ "rgb2cmyk-uc"; "sgemm-uc"; "ssearch-uc"; "symm-uc"; "viterbi-uc";
    "war-uc" ]

let fig10_rtl_cfg =
  Config.with_lpsu Config.io "+rtl"
    ~lpsu:(Xloops_vlsi.Area.rtl_lpsu ~ib_entries:128 ~lanes:4)

let fig10_pair name =
  ( Run_spec.make ~target:Compile.xloops_no_xi ~cfg:Config.io
      ~mode:Machine.Traditional name,
    Run_spec.make ~target:Compile.xloops_no_xi ~cfg:fig10_rtl_cfg
      ~mode:Machine.Specialized name )

let fig10_specs () =
  List.concat_map (fun name -> let b, s = fig10_pair name in [ b; s ])
    fig10_kernels

let fig10 ?(engine = direct_engine) () =
  List.map
    (fun name ->
       let b, s = fig10_pair name in
       let base = engine.run b and spec = engine.run s in
       let eff =
         Energy.efficiency ~baseline:base.energy spec.energy in
       (name,
        float_of_int base.cycles /. float_of_int spec.cycles,
        eff))
    fig10_kernels

let pp_fig10 ppf rows =
  Fmt.pf ppf "%-14s %8s %8s@." "kernel" "speedup" "en-eff";
  List.iter
    (fun (name, s, e) -> Fmt.pf ppf "%-14s %8.2f %8.2f@." name s e)
    rows
