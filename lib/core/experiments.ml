(** The evaluation engine: everything needed to regenerate the paper's
    tables and figures from the simulator.

    An {!eval} bundles, for one application kernel, all twelve runs of
    Section IV's methodology: the serial (general-purpose ISA) baseline on
    each of io / ooo2 / ooo4, and the XLOOPS binary in traditional /
    specialized / adaptive mode on the corresponding +x machine.  Every
    run self-checks its outputs; a failed check raises, so the tables can
    never silently report numbers from a broken execution. *)

module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Stats = Xloops_sim.Stats
module Compile = Xloops_compiler.Compile
module Energy = Xloops_energy.Model

type run_data = {
  cfg : Config.t;
  mode : Machine.mode;
  cycles : int;
  insns : int;
  stats : Stats.t;
  energy : Energy.breakdown;
}

exception Check_failed of { kernel : string; what : string; msg : string }

let run_checked ?(target = Compile.xloops) ~cfg ~mode (k : Kernel.t)
  : run_data =
  let r = Kernel.run ~target ~cfg ~mode k in
  (match r.check_result with
   | Ok () -> ()
   | Error msg ->
     raise (Check_failed
              { kernel = k.name;
                what = Fmt.str "%s/%s" cfg.Config.name
                    (Machine.mode_name mode);
                msg }));
  { cfg; mode;
    cycles = r.result.Machine.cycles;
    insns = r.result.Machine.insns;
    stats = r.result.Machine.stats;
    energy = Energy.of_stats cfg r.result.Machine.stats }

(* The three host pairs of Table II: baseline GPP and its +x machine. *)
let hosts = [ (Config.io, Config.io_x);
              (Config.ooo2, Config.ooo2_x);
              (Config.ooo4, Config.ooo4_x) ]

type host_eval = {
  base : run_data;          (** serial baseline on the bare GPP *)
  trad : run_data;          (** XLOOPS binary, traditional *)
  spec : run_data;          (** XLOOPS binary, specialized *)
  adapt : run_data;         (** XLOOPS binary, adaptive *)
}

type eval = {
  kernel : Kernel.t;
  gpi_dyn : int;            (** serial dynamic instructions, general ISA *)
  xli_dyn : int;            (** serial dynamic instructions, XLOOPS ISA *)
  body_min : int;           (** smallest static xloop body *)
  body_max : int;
  per_host : (string * host_eval) list;   (** keyed by GPP name *)
}

let body_stats (k : Kernel.t) =
  let c = Compile.compile ~target:Compile.xloops k.kernel in
  match Compile.xloop_bodies c.program with
  | [] -> (0, 0)
  | bodies ->
    let lens = List.map (fun (_, _, l) -> l) bodies in
    (List.fold_left min max_int lens, List.fold_left max 0 lens)

(** Run the full Table II methodology for one kernel. *)
let evaluate ?(hosts = hosts) (k : Kernel.t) : eval =
  let dyn target =
    match Kernel.dynamic_insns ~target k with
    | Ok n -> n
    | Error msg -> failwith ("Experiments.evaluate: " ^ msg)
  in
  let gpi_dyn = dyn Compile.general in
  let xli_dyn = dyn Compile.xloops in
  let body_min, body_max = body_stats k in
  let per_host =
    List.map
      (fun (gpp, gpp_x) ->
         (gpp.Config.name,
          { base = run_checked ~target:Compile.general ~cfg:gpp
                ~mode:Machine.Traditional k;
            trad = run_checked ~cfg:gpp_x ~mode:Machine.Traditional k;
            spec = run_checked ~cfg:gpp_x ~mode:Machine.Specialized k;
            adapt = run_checked ~cfg:gpp_x ~mode:Machine.Adaptive k }))
      hosts
  in
  { kernel = k; gpi_dyn; xli_dyn; body_min; body_max; per_host }

let host ev name =
  match List.assoc_opt name ev.per_host with
  | Some h -> h
  | None -> invalid_arg ("Experiments.host: " ^ name)

(** Speedup of a run relative to the serial baseline on the same GPP. *)
let speedup (h : host_eval) (r : run_data) =
  float_of_int h.base.cycles /. float_of_int r.cycles

(** Energy efficiency relative to the serial baseline on the same GPP
    (>1 means less energy than the baseline). *)
let energy_eff (h : host_eval) (r : run_data) =
  Energy.efficiency ~baseline:h.base.energy r.energy

(** Relative dynamic power (energy/time) vs the baseline. *)
let rel_power (h : host_eval) (r : run_data) =
  Energy.power ~cycles:r.cycles r.energy
  /. Energy.power ~cycles:h.base.cycles h.base.energy

(* ------------------------------------------------------------------ *)
(* Table II                                                            *)
(* ------------------------------------------------------------------ *)

type table2_row = {
  t2_name : string;
  t2_suite : string;
  t2_type : string;
  t2_body : int * int;
  t2_gpi : int;
  t2_xg : float;               (** XLI/GPI dynamic-instruction ratio *)
  (* (T, S, A) per host, in io / ooo2 / ooo4 order *)
  t2_speedups : (string * (float * float * float)) list;
}

let table2_row (ev : eval) : table2_row =
  { t2_name = ev.kernel.name;
    t2_suite = ev.kernel.suite;
    t2_type = ev.kernel.dominant;
    t2_body = (ev.body_min, ev.body_max);
    t2_gpi = ev.gpi_dyn;
    t2_xg = float_of_int ev.xli_dyn /. float_of_int ev.gpi_dyn;
    t2_speedups =
      List.map
        (fun (name, h) ->
           (name, (speedup h h.trad, speedup h h.spec, speedup h h.adapt)))
        ev.per_host }

let pp_table2_header ppf () =
  Fmt.pf ppf
    "%-14s %-3s %-6s %-9s %9s %5s │ %-17s │ %-17s │ %-17s@."
    "name" "st" "type" "body" "GPI-dyn" "X/G"
    "io: T    S    A" "ooo2: T   S    A" "ooo4: T   S    A"

let pp_table2_row ppf (r : table2_row) =
  let tri (t, s, a) = Fmt.str "%4.2f %4.2f %4.2f" t s a in
  let get n = tri (List.assoc n r.t2_speedups) in
  Fmt.pf ppf "%-14s %-3s %-6s %4d-%-4d %9d %5.2f │ %s │ %s │ %s@."
    r.t2_name r.t2_suite r.t2_type (fst r.t2_body) (snd r.t2_body)
    r.t2_gpi r.t2_xg (get "io") (get "ooo/2") (get "ooo/4")

(* ------------------------------------------------------------------ *)
(* Figure 6: LPSU lane-cycle breakdown for specialized execution       *)
(* ------------------------------------------------------------------ *)

let fig6_row (ev : eval) =
  let h = host ev "io" in
  (ev.kernel.name, Stats.lane_breakdown h.spec.stats)

let pp_fig6 ppf rows =
  Fmt.pf ppf "%-14s" "kernel";
  (match rows with
   | (_, cats) :: _ ->
     List.iter (fun (c, _) -> Fmt.pf ppf " %6s" c) cats
   | [] -> ());
  Fmt.pf ppf "@.";
  List.iter
    (fun (name, cats) ->
       Fmt.pf ppf "%-14s" name;
       List.iter (fun (_, f) -> Fmt.pf ppf " %6.3f" f) cats;
       Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figure 8: energy efficiency vs performance                          *)
(* ------------------------------------------------------------------ *)

type fig8_point = {
  f8_kernel : string;
  f8_host : string;
  f8_mode : string;
  f8_speedup : float;
  f8_energy_eff : float;
  f8_rel_power : float;
}

let fig8_points (ev : eval) : fig8_point list =
  List.concat_map
    (fun (name, h) ->
       List.map
         (fun (mode, r) ->
            { f8_kernel = ev.kernel.name; f8_host = name; f8_mode = mode;
              f8_speedup = speedup h r;
              f8_energy_eff = energy_eff h r;
              f8_rel_power = rel_power h r })
         [ ("S", h.spec); ("A", h.adapt) ])
    ev.per_host

let pp_fig8 ppf points =
  Fmt.pf ppf "%-14s %-6s %-2s %8s %8s %8s@." "kernel" "host" "m"
    "speedup" "en-eff" "power";
  List.iter
    (fun p ->
       Fmt.pf ppf "%-14s %-6s %-2s %8.2f %8.2f %8.2f@."
         p.f8_kernel p.f8_host p.f8_mode p.f8_speedup p.f8_energy_eff
         p.f8_rel_power)
    points

(* ------------------------------------------------------------------ *)
(* Figure 9: LPSU design-space exploration                             *)
(* ------------------------------------------------------------------ *)

let fig9_kernels =
  [ "sgemm-uc"; "viterbi-uc"; "kmeans-or"; "covar-or"; "btree-ua" ]

(** Speedups of specialized execution on each design-space LPSU over the
    serial baseline on the ooo/4 host. *)
let fig9 () =
  List.map
    (fun name ->
       let k = Registry.find name in
       let base = run_checked ~target:Compile.general ~cfg:Config.ooo4
           ~mode:Machine.Traditional k in
       let points =
         List.map
           (fun cfg ->
              let r = run_checked ~cfg ~mode:Machine.Specialized k in
              (cfg.Config.name,
               float_of_int base.cycles /. float_of_int r.cycles))
           Config.design_space
       in
       (name, points))
    fig9_kernels

let pp_fig9 ppf rows =
  (match rows with
   | (_, points) :: _ ->
     Fmt.pf ppf "%-14s" "kernel";
     List.iter (fun (n, _) -> Fmt.pf ppf " %10s" n) points;
     Fmt.pf ppf "@."
   | [] -> ());
  List.iter
    (fun (name, points) ->
       Fmt.pf ppf "%-14s" name;
       List.iter (fun (_, s) -> Fmt.pf ppf " %10.2f" s) points;
       Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Table IV: case studies                                              *)
(* ------------------------------------------------------------------ *)

(** Specialized-execution speedups of the Table IV variants on each +x
    host, relative to the serial baseline of the {e original} algorithm
    (the paper normalizes to the general-purpose kernels). *)
let table4 () =
  List.map
    (fun (k : Kernel.t) ->
       let speedups =
         List.map
           (fun (gpp, gpp_x) ->
              let base = run_checked ~target:Compile.general ~cfg:gpp
                  ~mode:Machine.Traditional k in
              let spec = run_checked ~cfg:gpp_x ~mode:Machine.Specialized k
              in
              (gpp_x.Config.name,
               float_of_int base.cycles /. float_of_int spec.cycles))
           hosts
       in
       (k.name, k.dominant, speedups))
    Registry.table4

let pp_table4 ppf rows =
  Fmt.pf ppf "%-16s %-6s %8s %8s %8s@." "name" "type" "io+x" "ooo2+x"
    "ooo4+x";
  List.iter
    (fun (name, ty, speedups) ->
       Fmt.pf ppf "%-16s %-6s" name ty;
       List.iter (fun (_, s) -> Fmt.pf ppf " %8.2f" s) speedups;
       Fmt.pf ppf "@.")
    rows

(* ------------------------------------------------------------------ *)
(* Figure 10: VLSI-mode evaluation (uc kernels, no .xi, uc-only LPSU)  *)
(* ------------------------------------------------------------------ *)

let fig10_kernels =
  [ "rgb2cmyk-uc"; "sgemm-uc"; "ssearch-uc"; "symm-uc"; "viterbi-uc";
    "war-uc" ]

let fig10 () =
  let rtl_cfg =
    Config.with_lpsu Config.io "+rtl"
      ~lpsu:(Xloops_vlsi.Area.rtl_lpsu ~ib_entries:128 ~lanes:4)
  in
  List.map
    (fun name ->
       let k = Registry.find name in
       let base = run_checked ~target:Compile.xloops_no_xi ~cfg:Config.io
           ~mode:Machine.Traditional k in
       let spec = run_checked ~target:Compile.xloops_no_xi ~cfg:rtl_cfg
           ~mode:Machine.Specialized k in
       let eff =
         Energy.efficiency ~baseline:base.energy spec.energy in
       (name,
        float_of_int base.cycles /. float_of_int spec.cycles,
        eff))
    fig10_kernels

let pp_fig10 ppf rows =
  Fmt.pf ppf "%-14s %8s %8s@." "kernel" "speedup" "en-eff";
  List.iter
    (fun (name, s, e) -> Fmt.pf ppf "%-14s %8.2f %8.2f@." name s e)
    rows
