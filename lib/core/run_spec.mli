(** First-class run plans: one serializable value per self-contained
    simulation.  Executing a spec compiles the kernel afresh and builds
    a fresh machine and memory, so specs are independent by construction
    and can execute concurrently ({!Pool}).  The canonical encoding and
    digest make specs the keys of the on-disk result cache
    ({!Run_cache}). *)

module Kernel = Xloops_kernels.Kernel
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Stats = Xloops_sim.Stats
module Compile = Xloops_compiler.Compile
module Energy = Xloops_energy.Model

type t = {
  kernel : string;                  (** registry name *)
  cfg : Config.t;
  mode : Machine.mode;
  target : Compile.target;
  fuel : int option;                (** GPP instruction budget *)
  fault_seed : (int * int) option;  (** (seed, events) of a fault plan *)
  watchdog : int;                   (** LPSU no-progress threshold, 0 = off *)
  degrade : bool;                   (** traditional-fallback safety net *)
}

val make :
  ?target:Compile.target -> ?fuel:int -> ?fault_seed:int * int ->
  ?watchdog:int -> ?degrade:bool ->
  cfg:Config.t -> mode:Machine.mode -> string -> t
(** [make ~cfg ~mode kernel_name] with the simulator's default
    robustness knobs (no fuel bound beyond {!Kernel.run_result}'s
    default, no faults, 50k-cycle watchdog, degradation on). *)

val what : t -> string
(** ["cfg-name/mode"], as the self-check diagnostics spell it. *)

val pp : Format.formatter -> t -> unit

(** {1 Canonical encoding and content addressing} *)

val encode : t -> string
(** Canonical binary encoding: deterministic field-by-field
    serialization covering every field (including the full machine
    configuration), stable across processes.  This is the {e only} form
    in which a spec crosses a process boundary — the wire protocol
    carries exactly these bytes. *)

val decode : string -> (t, string) result
(** Strict inverse of {!encode}: every field must parse and the input
    must be fully consumed, so a truncated or tampered frame is an
    [Error], never a half-filled spec. *)

val digest : t -> Digest_hex.t
(** MD5 of {!encode} — the spec's identity (journal key, in-flight
    dedupe key). *)

val cache_key : ?kernel:Kernel.t -> t -> Digest_hex.t
(** Content address of the spec's result: digest over the canonical
    encoding {e and} the compiled program bytes, so compiler or kernel
    changes invalidate cached results by construction. *)

val kernel_digest : Kernel.t -> Digest_hex.t
(** Content address of a kernel's target-independent metadata: digest
    over its name and its compiled general and XLOOPS programs. *)

(** {1 Execution} *)

type run_data = {
  cfg : Config.t;
  mode : Machine.mode;
  cycles : int;
  insns : int;
  stats : Stats.t;
  energy : Energy.breakdown;
}

exception Check_failed of { kernel : string; what : string; msg : string }
(** Alias of {!Failure.Check_failed}. *)

val run_result :
  ?kernel:Kernel.t -> ?trace:Xloops_sim.Trace.t -> t ->
  (Kernel.run, Machine.failure) result
(** Low-level execution returning the full {!Kernel.run} without raising
    on a failed self-check — the form the CLIs use.  [kernel] overrides
    the registry lookup (synthetic kernels). *)

val execute_result : ?kernel:Kernel.t -> t -> (run_data, Failure.t) result
(** Checked execution distilled to {!run_data}, with every failure mode
    folded into the orchestration taxonomy (simulation failures as
    [Failure.Sim], failed self-checks as [Failure.Check]).  Sets
    [stats.wall_ns] to the simulation's wall-clock. *)

val execute : ?kernel:Kernel.t -> t -> run_data
(** Raising form of {!execute_result}: {!Check_failed} on a failed
    self-check, [Failure] on a simulation failure. *)
