(** Crash-safe sweep journal: an append-only, fsync'd record of
    completed spec digests, so an interrupted sweep resumes from where
    it left off.  Fresh journals are created atomically (temp + rename);
    each record is a single append + fsync; a torn final line from a
    crash mid-append is ignored on load and repaired on resume. *)

type t

val default_name : string
(** ["sweep.journal"] — conventionally placed beside the result cache. *)

val load : string -> Digest_hex.t list
(** Digests recorded at a path ([[]] if absent or not a journal);
    malformed/torn lines are skipped. *)

val start : ?resume:bool -> string -> t
(** Open a journal.  [resume:true] keeps existing entries (repairing a
    torn tail); the default atomically replaces any previous journal
    with an empty one. *)

val record : t -> Digest_hex.t -> unit
(** Durably record a completed spec digest (append + fsync).
    Idempotent; thread-safe. *)

val member : t -> Digest_hex.t -> bool
val count : t -> int
(** Total distinct digests (preloaded + recorded). *)

val preloaded : t -> int
(** Entries that were already present when the journal was opened. *)

val recorded : t -> int
(** Entries appended by this session. *)

val path : t -> string
val close : t -> unit
val pp_counters : Format.formatter -> t -> unit
