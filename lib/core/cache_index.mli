(** The shared cache tier's mmap'd index: a fixed-size open-addressed
    hash table over the {!Run_cache} blob store, mapped into every
    daemon of a simulation fleet so their caches coordinate without a
    coordinator.

    The file is a 64-byte header followed by [nslots] 64-byte records,
    each carrying a {!Digest_hex.t} key, a blob tag ([.run]/[.meta]), the
    blob's size, the generation it was inserted under, and a checksum
    over all of those fields.  The concurrency discipline:

    - {e Readers are lock-free.}  A lookup probes the slot array
      straight off the shared mapping and validates each candidate
      record's checksum; a record a writer is mid-way through (state
      byte not yet live, or checksum not yet matching its fields) reads
      as a miss, never as garbage.  Hits set the record's reference byte
      — a single-byte write deliberately excluded from the checksum —
      which is all the clock eviction policy needs from readers.
    - {e Writers serialize on an [fcntl] file lock} (plus an in-process
      mutex, since POSIX record locks do not exclude threads of one
      process).  Inserts write the record fields first, the checksum
      next, and flip the state byte live last, so the record becomes
      visible atomically.
    - {e Eviction is guarded by a generation counter.}  When the store
      exceeds its byte bound (or the table its load factor), the writer
      runs a second-chance clock sweep ({!Evict.second_chance}),
      tombstones the victims, deletes their blobs through the caller's
      callback, and bumps the header generation.  A reader that found an
      entry before an eviction re-validates it ({!still_valid}) after
      reading the blob; a vanished or re-written record reads as a miss
      and the spec re-simulates — torn or evicted entries are never
      served.  (The blobs themselves are additionally checksummed by
      {!Run_cache}, so even a file truncated mid-read is caught.) *)

type t

val default_slots : int
(** 65536 slots — a 4 MiB index file. *)

val default_limit_mb : int
(** 1024 MiB: the byte bound adopted when a fresh index is created
    without an explicit limit. *)

val openf : ?slots:int -> ?limit_mb:int -> string -> t
(** Open (or create, racing safely against concurrent creators) the
    index file at this path and map it.  [slots] applies only at
    creation; an existing file keeps its geometry.  [limit_mb] updates
    the shared byte bound — last opener wins; omitted, an existing
    bound is kept.  Raises [Sys_error]/[Unix.Unix_error] on filesystem
    trouble and [Failure] on a file that is not an index. *)

val close : t -> unit
val path : t -> string

type entry = {
  e_slot : int;   (** slot the record lives in *)
  e_size : int;   (** blob bytes the record accounts for *)
  e_gen : int;    (** generation the record was inserted under *)
}

val find : t -> key:Digest_hex.t -> tag:char -> entry option
(** Lock-free lookup; a hit sets the reference byte (second chance). *)

val still_valid : t -> key:Digest_hex.t -> tag:char -> entry -> bool
(** Re-validate an entry after reading its blob: still live, same key,
    same generation — i.e. not evicted or replaced meanwhile. *)

val insert :
  t -> key:Digest_hex.t -> tag:char -> size:int ->
  evict:(key:Digest_hex.t -> tag:char -> unit) -> unit
(** Register a freshly stored blob (idempotent on an already-live key).
    If the accounted bytes exceed the limit, or live slots exceed the
    load-factor bound, the clock sweep runs here: victims are
    tombstoned, [evict] is called for each (delete the blob file), and
    the generation advances.  The inserted entry itself is protected
    from the sweep. *)

val delete : t -> key:Digest_hex.t -> tag:char -> unit
(** Drop an entry whose blob turned out corrupt or missing (quarantine
    healing): tombstone it and release its accounted bytes. *)

(** {1 Introspection} *)

val slots : t -> int
val live_entries : t -> int
val used_bytes : t -> int
val limit_bytes : t -> int
val generation : t -> int
val evictions : t -> int
val pp : Format.formatter -> t -> unit
