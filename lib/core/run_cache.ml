(** Content-addressed on-disk result cache.

    Results are filed under [dir/v<version>/<kk>/<key>.run] where [key]
    is {!Run_spec.cache_key} (digest of canonical spec encoding +
    compiled program bytes) and [kk] its first two hex digits.  Kernel
    metadata (dynamic instruction counts, body statistics) lives beside
    them as [.meta] blobs keyed by {!Run_spec.kernel_digest}.

    A blob is a [Marshal]led header [(magic, version, ocaml-version)]
    followed by an MD5 checksum of the marshalled payload and the
    payload itself.  Reads distinguish three non-hit cases and count
    them separately: {e absent} (no file — a plain miss), {e stale} (a
    well-formed blob from another cache version or compiler — also a
    miss), and {e corrupt} (unparseable header, torn payload, or a
    checksum mismatch).  Corrupt files are quarantined to
    [dir/quarantine/] — moved aside for post-mortem rather than
    silently re-read or deleted — and never crash a sweep.

    Writes go to a unique temporary file and are [rename]d into place,
    so concurrent workers (and concurrent processes) race safely;
    directory creation tolerates [EEXIST]; {!reap_tmp} sweeps out
    orphaned temp files a killed writer left behind.  An optional
    {!Chaos} plan injects read errors and post-store corruption for
    integrity testing. *)

type t = {
  dir : string;
  version : int;
  chaos : Chaos.t option;
  index : Cache_index.t option;   (* shared fleet index over this dir *)
  limit_bytes : int option;       (* private-cache bound (reap_over_limit) *)
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;      (* absent or stale — simply not usable *)
  mutable corrupt : int;     (* integrity failures, quarantined *)
  mutable stores : int;
  mutable evictions : int;   (* blobs this handle deleted for space *)
}

let magic = "XLOOPS-CACHE"

(** Bump when the marshalled payload layout changes ({!Run_spec.run_data},
    [Stats.t], [Config.t] or the energy breakdown) — v2 added the
    payload checksum. *)
let current_version = 2

let default_dir = "_xloops_cache"

let quarantine_subdir = "quarantine"

(* Race-safe mkdir -p: concurrent workers may all attempt creation on
   first store; every failure mode is re-checked against the directory
   actually existing. *)
let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> ()
  end

let create ?(version = current_version) ?(dir = default_dir) ?chaos ?index
    ?limit_bytes () =
  { dir; version; chaos; index; limit_bytes; mu = Mutex.create ();
    hits = 0; misses = 0; corrupt = 0; stores = 0; evictions = 0 }

let counted cache f =
  Mutex.lock cache.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache.mu) f

let version_dir cache =
  Filename.concat cache.dir (Printf.sprintf "v%d" cache.version)

let path cache ~key ~suffix =
  List.fold_left Filename.concat (version_dir cache)
    [ Digest_hex.shard key; Digest_hex.to_hex key ^ suffix ]

let quarantine_dir cache = Filename.concat cache.dir quarantine_subdir

(* Move a corrupt blob aside for post-mortem.  Failure to quarantine
   (e.g. a concurrent reader already moved it) must never break the
   read path — the blob already reads as a miss. *)
let quarantine cache p =
  try
    let qdir = quarantine_dir cache in
    mkdir_p qdir;
    Sys.rename p (Filename.concat qdir (Filename.basename p))
  with Sys_error _ -> ()

(* Unsafe generic blob IO; the monomorphic wrappers below pin the payload
   type to the suffix that wrote it. *)
let read_blob cache ~key ~suffix =
  let p = path cache ~key ~suffix in
  let injected_error =
    match cache.chaos with Some c -> Chaos.read_error c | None -> false in
  if injected_error then `Absent
  else
    match open_in_bin p with
    | exception Sys_error _ -> `Absent
    | ic ->
      let verdict =
        Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
        (* Narrow catches only: a bare [_] here once masked
           [Out_of_memory] and [Stack_overflow] as cache misses.  The
           three below are exactly what a torn or rotten blob can
           raise ([Marshal] signals corruption as [Failure]). *)
        try
          let (m, v, ocaml) : string * int * string =
            Marshal.from_channel ic in
          if m <> magic then `Corrupt
          else if v <> cache.version || ocaml <> Sys.ocaml_version then
            `Stale
          else begin
            let sum : Digest.t = Marshal.from_channel ic in
            let payload : string = Marshal.from_channel ic in
            if Digest.string payload <> sum then `Corrupt
            else `Hit (Marshal.from_string payload 0)
          end
        with End_of_file | Stdlib.Failure _ | Sys_error _ -> `Corrupt
      in
      (match verdict with `Corrupt -> quarantine cache p | _ -> ());
      verdict

let write_blob cache ~key ~suffix payload =
  let p = path cache ~key ~suffix in
  mkdir_p (Filename.dirname p);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  (try
     let body = Marshal.to_string payload [] in
     Marshal.to_channel oc (magic, cache.version, Sys.ocaml_version) [];
     Marshal.to_channel oc (Digest.string body) [];
     Marshal.to_channel oc body [];
     close_out oc
   with e -> close_out_noerr oc; (try Sys.remove tmp with _ -> ()); raise e);
  Sys.rename tmp p;
  (* Chaos: rot the blob at rest, after the rename — the next reader
     must detect it, quarantine it, and re-simulate. *)
  match cache.chaos with
  | Some c -> Chaos.after_store c p
  | None -> ()

(* -- Shared-index integration --------------------------------------------- *)

let tag_of_suffix = function ".run" -> 'r' | _ -> 'm'

let blob_size p = try (Unix.stat p).Unix.st_size with Unix.Unix_error _ -> 0

(* Deleting a victim's blob is the index's [evict] callback; the handle
   doing the insert does the unlink and owns the count. *)
let evict_blob cache ~key ~tag =
  let suffix = if Char.equal tag 'r' then ".run" else ".meta" in
  (try Sys.remove (path cache ~key ~suffix) with Sys_error _ -> ());
  counted cache (fun () -> cache.evictions <- cache.evictions + 1)

let index_insert cache ~key ~suffix =
  match cache.index with
  | None -> ()
  | Some idx ->
    let size = blob_size (path cache ~key ~suffix) in
    Cache_index.insert idx ~key ~tag:(tag_of_suffix suffix) ~size
      ~evict:(evict_blob cache)

let find cache ~key ~suffix =
  let verdict =
    match cache.index with
    | None -> read_blob cache ~key ~suffix
    | Some idx ->
      let tag = tag_of_suffix suffix in
      (match Cache_index.find idx ~key ~tag with
       | None ->
         (* Not indexed: a blob may still exist on disk (written before
            the index did, or after a lost index file).  Adopt it. *)
         (match read_blob cache ~key ~suffix with
          | `Hit _ as hit -> index_insert cache ~key ~suffix; hit
          | other -> other)
       | Some entry ->
         (match read_blob cache ~key ~suffix with
          | `Hit _ as hit ->
            (* Serve only if no eviction/replacement raced the read:
               a concurrent writer may have recycled the slot while we
               were reading a blob another daemon already deleted. *)
            if Cache_index.still_valid idx ~key ~tag entry then hit
            else `Absent
          | `Absent ->
            (* The index outlived the blob — heal the entry. *)
            Cache_index.delete idx ~key ~tag; `Absent
          | (`Stale | `Corrupt) as bad ->
            Cache_index.delete idx ~key ~tag; bad))
  in
  counted cache (fun () ->
      match verdict with
      | `Hit _ -> cache.hits <- cache.hits + 1
      | `Absent | `Stale -> cache.misses <- cache.misses + 1
      | `Corrupt -> cache.corrupt <- cache.corrupt + 1);
  match verdict with `Hit v -> Some v | `Absent | `Stale | `Corrupt -> None

let find_run cache ~key : Run_spec.run_data option =
  find cache ~key ~suffix:".run"

let store_run cache ~key (rd : Run_spec.run_data) =
  write_blob cache ~key ~suffix:".run" rd;
  index_insert cache ~key ~suffix:".run";
  counted cache (fun () -> cache.stores <- cache.stores + 1)

let find_meta cache ~key : int array option =
  find cache ~key ~suffix:".meta"

let store_meta cache ~key (m : int array) =
  write_blob cache ~key ~suffix:".meta" m;
  index_insert cache ~key ~suffix:".meta";
  counted cache (fun () -> cache.stores <- cache.stores + 1)

(* -- Startup hygiene ----------------------------------------------------- *)

let is_tmp_name name =
  (* <key><suffix>.tmp.<pid>.<domain> *)
  let rec find_sub i =
    i + 5 <= String.length name
    && (String.sub name i 5 = ".tmp." || find_sub (i + 1))
  in
  find_sub 0

(** Remove orphaned [*.tmp.*] files a killed writer left under this
    cache version's tree; returns how many were reaped.  Safe to run
    concurrently with readers (temp files are never read) but meant for
    startup, before workers start writing. *)
let reap_tmp cache =
  let reaped = ref 0 in
  let vdir = version_dir cache in
  if Sys.file_exists vdir && Sys.is_directory vdir then
    Array.iter
      (fun shard ->
         let sdir = Filename.concat vdir shard in
         if Sys.is_directory sdir then
           Array.iter
             (fun name ->
                if is_tmp_name name then begin
                  (try Sys.remove (Filename.concat sdir name)
                   with Sys_error _ -> ());
                  incr reaped
                end)
             (Sys.readdir sdir))
      (Sys.readdir vdir);
  !reaped

(** Bound the private cache directory: when the version tree holds more
    blob bytes than [limit_bytes], delete the least-recently-written
    blobs ({!Evict.lru} over mtimes — without a shared index there is no
    access record, so write age is the recency signal) until back under
    the limit.  Returns how many blobs were removed.  No-ops when no
    limit was configured or a shared index owns eviction. *)
let reap_over_limit cache =
  match cache.limit_bytes, cache.index with
  | None, _ | _, Some _ -> 0
  | Some limit, None ->
    let vdir = version_dir cache in
    if not (Sys.file_exists vdir && Sys.is_directory vdir) then 0
    else begin
      let blobs = ref [] in
      let total = ref 0 in
      Array.iter
        (fun shard ->
           let sdir = Filename.concat vdir shard in
           if Sys.is_directory sdir then
             Array.iter
               (fun name ->
                  if not (is_tmp_name name) then begin
                    let p = Filename.concat sdir name in
                    match Unix.stat p with
                    | exception Unix.Unix_error _ -> ()
                    | st ->
                      total := !total + st.Unix.st_size;
                      blobs :=
                        (p, st.Unix.st_size, st.Unix.st_mtime) :: !blobs
                  end)
               (Sys.readdir sdir))
        (Array.of_list (List.sort compare
                          (Array.to_list (Sys.readdir vdir))));
      if !total <= limit then 0
      else begin
        let arr = Array.of_list (List.rev !blobs) in
        let items = Array.map (fun (_, sz, mt) -> (sz, mt)) arr in
        let victims = Evict.lru ~items ~excess:(!total - limit) in
        List.iter
          (fun i ->
             let (p, _, _) = arr.(i) in
             try Sys.remove p with Sys_error _ -> ())
          victims;
        let n = List.length victims in
        counted cache (fun () -> cache.evictions <- cache.evictions + n);
        n
      end
    end

let quarantined cache =
  let qdir = quarantine_dir cache in
  if Sys.file_exists qdir && Sys.is_directory qdir
  then Array.length (Sys.readdir qdir)
  else 0

let hits c = counted c (fun () -> c.hits)
let misses c = counted c (fun () -> c.misses)
let corrupt c = counted c (fun () -> c.corrupt)
let stores c = counted c (fun () -> c.stores)
let evictions c = counted c (fun () -> c.evictions)
let index c = c.index

let pp_counters ppf c =
  Fmt.pf ppf
    "%d hit(s), %d miss(es), %d corrupt, %d store(s) under %s (v%d)"
    (hits c) (misses c) (corrupt c) (stores c) c.dir c.version
