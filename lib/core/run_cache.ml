(** Content-addressed on-disk result cache.

    Results are filed under [dir/v<version>/<kk>/<key>.run] where [key]
    is {!Run_spec.cache_key} (digest of canonical spec encoding +
    compiled program bytes) and [kk] its first two hex digits.  Kernel
    metadata (dynamic instruction counts, body statistics) lives beside
    them as [.meta] blobs keyed by {!Run_spec.kernel_digest}.

    Blobs are a [Marshal]led header [(magic, version, ocaml-version)]
    followed by the payload; any mismatch — stale cache version, a
    different compiler, a truncated or corrupt file — reads as a miss,
    never an error.  Writes go to a unique temporary file and are
    [rename]d into place, so concurrent workers (and concurrent
    processes) race safely; directory creation tolerates [EEXIST]. *)

type t = {
  dir : string;
  version : int;
  mu : Mutex.t;
  mutable hits : int;
  mutable misses : int;
  mutable stores : int;
}

let magic = "XLOOPS-CACHE"

(** Bump when the marshalled payload layout changes ({!Run_spec.run_data},
    [Stats.t], [Config.t] or the energy breakdown). *)
let current_version = 1

let default_dir = "_xloops_cache"

(* Race-safe mkdir -p: concurrent workers may all attempt creation on
   first store; every failure mode is re-checked against the directory
   actually existing. *)
let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> ()
  end

let create ?(version = current_version) ?(dir = default_dir) () =
  { dir; version; mu = Mutex.create (); hits = 0; misses = 0; stores = 0 }

let counted cache f =
  Mutex.lock cache.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache.mu) f

let path cache ~key ~suffix =
  let shard = if String.length key >= 2 then String.sub key 0 2 else "xx" in
  List.fold_left Filename.concat cache.dir
    [ Printf.sprintf "v%d" cache.version; shard; key ^ suffix ]

(* Unsafe generic blob IO; the monomorphic wrappers below pin the payload
   type to the suffix that wrote it. *)
let read_blob cache ~key ~suffix =
  let p = path cache ~key ~suffix in
  match open_in_bin p with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (try
       let (m, v, ocaml) : string * int * string = Marshal.from_channel ic in
       if m = magic && v = cache.version && ocaml = Sys.ocaml_version
       then Some (Marshal.from_channel ic)
       else None
     with _ -> None)

let write_blob cache ~key ~suffix payload =
  let p = path cache ~key ~suffix in
  mkdir_p (Filename.dirname p);
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" p (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  (try
     Marshal.to_channel oc (magic, cache.version, Sys.ocaml_version) [];
     Marshal.to_channel oc payload [];
     close_out oc
   with e -> close_out_noerr oc; (try Sys.remove tmp with _ -> ()); raise e);
  Sys.rename tmp p

let find_run cache ~key : Run_spec.run_data option =
  let r = read_blob cache ~key ~suffix:".run" in
  counted cache (fun () ->
      match r with
      | Some _ -> cache.hits <- cache.hits + 1
      | None -> cache.misses <- cache.misses + 1);
  r

let store_run cache ~key (rd : Run_spec.run_data) =
  write_blob cache ~key ~suffix:".run" rd;
  counted cache (fun () -> cache.stores <- cache.stores + 1)

let find_meta cache ~key : int array option =
  let r = read_blob cache ~key ~suffix:".meta" in
  counted cache (fun () ->
      match r with
      | Some _ -> cache.hits <- cache.hits + 1
      | None -> cache.misses <- cache.misses + 1);
  r

let store_meta cache ~key (m : int array) =
  write_blob cache ~key ~suffix:".meta" m;
  counted cache (fun () -> cache.stores <- cache.stores + 1)

let hits c = counted c (fun () -> c.hits)
let misses c = counted c (fun () -> c.misses)
let stores c = counted c (fun () -> c.stores)

let pp_counters ppf c =
  Fmt.pf ppf "%d hit(s), %d miss(es), %d store(s) under %s (v%d)"
    (hits c) (misses c) (stores c) c.dir c.version
