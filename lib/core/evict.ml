(* Victim selection for bounded caches.  See evict.mli. *)

type clock_verdict = {
  cv_victims : int list;
  cv_hand : int;
  cv_freed : int;
}

let second_chance ~nslots ~hand ~live ~size ~referenced ~clear_ref
    ~goal_bytes ?(goal_slots = 0) ?(protect = -1) () =
  if nslots <= 0 then invalid_arg "Evict.second_chance: nslots";
  let victims = ref [] in
  let freed = ref 0 in
  let slots_freed = ref 0 in
  let hand = ref (((hand mod nslots) + nslots) mod nslots) in
  let steps = ref 0 in
  let max_steps = 2 * nslots in
  let satisfied () = !freed >= goal_bytes && !slots_freed >= goal_slots in
  while (not (satisfied ())) && !steps < max_steps do
    let s = !hand in
    (if s <> protect && live s then
       if referenced s then clear_ref s
       else begin
         victims := s :: !victims;
         freed := !freed + size s;
         incr slots_freed
       end);
    hand := (s + 1) mod nslots;
    incr steps
  done;
  { cv_victims = List.rev !victims; cv_hand = !hand; cv_freed = !freed }

let lru ~items ~excess =
  if excess <= 0 then []
  else begin
    let order = Array.init (Array.length items) Fun.id in
    Array.sort
      (fun a b ->
         let (_, sa) = items.(a) and (_, sb) = items.(b) in
         match compare sa sb with 0 -> compare a b | c -> c)
      order;
    let victims = ref [] in
    let freed = ref 0 in
    Array.iter
      (fun i ->
         if !freed < excess then begin
           victims := i :: !victims;
           freed := !freed + fst items.(i)
         end)
      order;
    List.rev !victims
  end
