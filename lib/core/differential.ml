(** Differential checker for the graceful-degradation safety net.

    The guarantee under test: a specialized run with faults injected into
    the LPSU, protected by the watchdog and checkpoint/rollback, must
    leave memory {e bit-identical} to a plain traditional run of the same
    kernel — every corrupted or hung loop is rolled back to its entry
    checkpoint and re-executed with traditional semantics, so the fault
    must be architecturally invisible.

    Registers are deliberately not compared: the post-loop values of
    registers that are not live-out of an xloop are unspecified by the
    ISA, so only memory (plus the kernel's own self-check) is
    authoritative. *)

module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Fault = Xloops_sim.Fault
module Config = Xloops_sim.Config
module Kernel = Xloops_kernels.Kernel
module Compile = Xloops_compiler.Compile

type outcome = {
  kernel : string;
  failure : Machine.failure option;  (** faulted run failed outright *)
  identical : bool;                  (** memory matches traditional *)
  check_ok : bool;                   (** kernel self-check on faulted run *)
  injected : Fault.kind list;        (** distinct kinds actually injected *)
  degradations : int;
  hangs : Fault.hang list;
}

let ok o = o.failure = None && o.identical && o.check_ok

let pp_outcome ppf o =
  Fmt.pf ppf "%-14s %s inj=[%a] degr=%d hangs=%d"
    o.kernel
    (match o.failure with
     | Some f -> Fmt.str "FAIL(%a)" Machine.pp_failure f
     | None ->
       if not o.identical then "MEM-DIVERGED"
       else if not o.check_ok then "CHECK-FAILED"
       else "identical")
    Fmt.(list ~sep:comma Fault.pp_kind) o.injected
    o.degradations (List.length o.hangs)

(** Run [k] twice from identical initial state — plain traditional, then
    specialized under [faults] with the watchdog and safety net on — and
    compare final memories byte for byte. *)
let run_kernel ?(cfg = Config.io_x) ?(mode = Machine.Specialized)
    ?(watchdog = 20_000) ~faults (k : Kernel.t) : outcome =
  let compiled = Compile.compile ~target:Compile.xloops k.kernel in
  let mem_ref = Memory.create () in
  k.init compiled.array_base mem_ref;
  (match Machine.simulate ~cfg ~mode:Machine.Traditional
           compiled.program mem_ref with
   | Ok _ -> ()
   | Error f ->
     failwith (Fmt.str "Differential.run_kernel %s: reference run: %a"
                 k.name Machine.pp_failure f));
  let mem = Memory.create () in
  k.init compiled.array_base mem;
  let m = Machine.create ~cfg ~mode ~prog:compiled.program ~mem
      ~faults ~watchdog () in
  match Machine.run m with
  | Error f ->
    { kernel = k.name; failure = Some f; identical = false;
      check_ok = false; injected = Fault.injected_kinds faults;
      degradations = 0; hangs = Machine.hangs m }
  | Ok r ->
    { kernel = k.name;
      failure = None;
      identical = Bytes.equal mem_ref.Memory.data mem.Memory.data;
      check_ok = (k.check compiled.array_base mem = Ok ());
      injected = Fault.injected_kinds faults;
      degradations = r.Machine.stats.Xloops_sim.Stats.degradations;
      hangs = Machine.hangs m }

(** Sweep every Table II kernel under a fresh fault plan derived from
    [seed] (one deterministic sub-seed per kernel) and return the
    outcomes plus the union of fault kinds injected anywhere in the
    sweep.  [events] is the number of fault events per kernel. *)
let check_table2 ?cfg ?mode ?watchdog ?(events = 12) ~seed () =
  let outcomes =
    List.mapi
      (fun i k ->
         let faults = Fault.plan ~seed:(seed + (i * 7919)) ~events () in
         run_kernel ?cfg ?mode ?watchdog ~faults k)
      Xloops_kernels.Registry.table2
  in
  let kinds =
    List.sort_uniq compare (List.concat_map (fun o -> o.injected) outcomes)
  in
  (outcomes, kinds)
