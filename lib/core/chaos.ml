(** Seeded chaos plans for the orchestration infrastructure.

    [lib/sim/fault.ml] injects faults into the {e simulated machine};
    this module injects them into the {e machinery that runs the
    sweeps}: cache reads that error out, stored blobs that rot on disk
    (bit flips, truncation), workers that stall or crash, and whole
    sweeps that die halfway.  Like a fault plan, a chaos plan is a
    deterministic schedule derived from a seed — the same
    [(seed, events, kinds)] names the same injection schedule, so a
    failing CI run replays exactly.

    Time is measured in {e opportunities}: every hook site
    ({!fire} call) advances a shared counter, and a pending event fires
    at the first opportunity at or past its offset whose site accepts
    its kind.  Under a serial sweep the schedule is fully deterministic;
    under a parallel one the set of injected events still is (the plan
    is consumed under a lock), only their interleaving varies. *)

type kind =
  | Cache_read_error   (** a cache lookup fails as if unreadable *)
  | Blob_bitflip       (** flip one bit of a just-written cache blob *)
  | Blob_truncate      (** truncate a just-written cache blob *)
  | Worker_stall       (** sleep a worker before it runs its item *)
  | Worker_abort       (** crash a worker (transient, retryable) *)
  | Sweep_abort        (** kill the whole sweep mid-flight *)

(* [Sweep_abort] is deliberately not in the default draw: a plan of
   recoverable events must leave a sweep exiting 0 with byte-identical
   results; killing the sweep is its own, opt-in, kind. *)
let recoverable_kinds =
  [ Cache_read_error; Blob_bitflip; Blob_truncate; Worker_stall;
    Worker_abort ]

let all_kinds = recoverable_kinds @ [ Sweep_abort ]

let kind_name = function
  | Cache_read_error -> "cache-read-error"
  | Blob_bitflip -> "blob-bitflip"
  | Blob_truncate -> "blob-truncate"
  | Worker_stall -> "worker-stall"
  | Worker_abort -> "worker-abort"
  | Sweep_abort -> "sweep-abort"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

type event = { ev_op : int; ev_kind : kind }

type t = {
  seed : int;
  stall_ms : int;
  mu : Mutex.t;
  mutable op : int;                      (* opportunities seen so far *)
  mutable pending : event list;          (* sorted by ev_op *)
  mutable injected : (kind * int) list;  (* kind, opportunity; newest first *)
}

(* Same SplitMix64 generator as [Fault] / [Failure]. *)
let mix s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int state bound =
  state := mix !state;
  Int64.to_int (Int64.rem (Int64.shift_right_logical !state 2)
                  (Int64.of_int bound))

let of_events evs ~seed ~stall_ms =
  { seed; stall_ms; mu = Mutex.create (); op = 0;
    pending = List.stable_sort (fun a b -> compare a.ev_op b.ev_op) evs;
    injected = [] }

(** Build a plan of [events] injections from [seed]: kinds round-robin
    from [kinds] (default {!recoverable_kinds}), at small jittered
    opportunity offsets so even a quick sweep reaches them. *)
let plan ?(kinds = recoverable_kinds) ?(stall_ms = 100) ~seed ~events () =
  if events < 0 then invalid_arg "Chaos.plan: negative event count";
  if kinds = [] then invalid_arg "Chaos.plan: empty kind list";
  let state = ref (Int64.of_int (seed * 2 + 1)) in
  let evs =
    List.init events (fun i ->
        { ev_op = 1 + i * 4 + rand_int state 6;
          ev_kind = List.nth kinds (i mod List.length kinds) })
  in
  of_events evs ~seed ~stall_ms

(** A hand-written plan of [(opportunity, kind)] pairs (tests, targeted
    reproduction). *)
let explicit ?(stall_ms = 100) evs =
  of_events
    (List.map (fun (op, k) -> { ev_op = op; ev_kind = k }) evs)
    ~seed:0 ~stall_ms

let none () = of_events [] ~seed:0 ~stall_ms:0

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(** One injection opportunity at a site that can apply [kinds]: advance
    the opportunity counter and pop the first due, applicable pending
    event (at most one per call).  Due events of other kinds stay
    pending for the next applicable site. *)
let fire t kinds =
  locked t @@ fun () ->
  t.op <- t.op + 1;
  let rec pop acc = function
    | [] -> None
    | e :: tl when e.ev_op <= t.op && List.mem e.ev_kind kinds ->
      t.pending <- List.rev_append acc tl;
      t.injected <- (e.ev_kind, t.op) :: t.injected;
      Some e.ev_kind
    | e :: tl -> pop (e :: acc) tl
  in
  pop [] t.pending

let injected t = locked t (fun () -> List.rev t.injected)
let injected_count t = locked t (fun () -> List.length t.injected)
let pending t = locked t (fun () -> List.length t.pending)

let pp_plan ppf t =
  let pend, inj = locked t (fun () -> (t.pending, List.rev t.injected)) in
  Fmt.pf ppf "@[<v>chaos plan (seed %d): %d pending, %d injected@,%a@]"
    t.seed (List.length pend) (List.length inj)
    (Fmt.list ~sep:Fmt.cut
       (fun ppf e ->
          Fmt.pf ppf "  @@%-4d %a" e.ev_op pp_kind e.ev_kind))
    pend

(* -- Hook implementations ------------------------------------------------ *)

(** Worker-side hook, called once per sweep item before it executes.
    May sleep ([Worker_stall]), raise [Failure.Transient_crash]
    ([Worker_abort]) or raise [Failure.Abort] ([Sweep_abort]). *)
let before_item t =
  match fire t [ Worker_stall; Worker_abort; Sweep_abort ] with
  | None -> ()
  | Some Worker_stall -> Unix.sleepf (float_of_int t.stall_ms /. 1e3)
  | Some Worker_abort ->
    raise (Failure.Transient_crash "chaos: injected worker abort")
  | Some Sweep_abort ->
    raise (Failure.Abort "chaos: injected mid-sweep abort")
  | Some _ -> ()

(** Cache-read hook: [true] means "pretend this blob is unreadable". *)
let read_error t =
  match fire t [ Cache_read_error ] with
  | Some Cache_read_error -> true
  | _ -> false

(** Apply [kind]'s corruption to the file at [path]: flip one payload
    bit or truncate to half size.  Returns [false] when the file is too
    small to corrupt meaningfully. *)
let corrupt_file kind path =
  match kind with
  | Blob_bitflip ->
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    if len < 2 then (close_in_noerr ic; false)
    else begin
      let pos = len / 2 in
      seek_in ic pos;
      let byte = input_char ic in
      close_in_noerr ic;
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () ->
      ignore (Unix.lseek fd pos Unix.SEEK_SET);
      let flipped = Bytes.make 1 (Char.chr (Char.code byte lxor 0x10)) in
      ignore (Unix.write fd flipped 0 1);
      true
    end
  | Blob_truncate ->
    let len = (Unix.stat path).Unix.st_size in
    if len < 2 then false
    else begin
      let fd = Unix.openfile path [ Unix.O_WRONLY ] 0 in
      Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
      @@ fun () -> Unix.ftruncate fd (len / 2); true
    end
  | _ -> false

(** Store-side hook: corrupt the just-written blob at [path] if the plan
    says so. *)
let after_store t path =
  match fire t [ Blob_bitflip; Blob_truncate ] with
  | Some (Blob_bitflip | Blob_truncate as k) ->
    (try ignore (corrupt_file k path) with Sys_error _ | Unix.Unix_error _ -> ())
  | _ -> ()
