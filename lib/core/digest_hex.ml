(* See digest_hex.mli.  Representation: the 32-char lowercase hex string
   itself, so [to_hex] is free and structural equality/hash/compare are
   the string ones. *)

type t = string

let is_hex_char = function '0' .. '9' | 'a' .. 'f' -> true | _ -> false

let of_digest (d : Stdlib.Digest.t) = Stdlib.Digest.to_hex d

let of_hex s =
  if String.length s <> 32 then
    Error
      (Printf.sprintf "digest must be 32 hex chars, got %d" (String.length s))
  else if not (String.for_all is_hex_char s) then
    Error "digest must be lowercase hex"
  else Ok s

let of_hex_exn s =
  match of_hex s with
  | Ok t -> t
  | Error msg -> invalid_arg ("Digest_hex.of_hex_exn: " ^ msg ^ ": " ^ s)

let to_hex t = t
let shard t = String.sub t 0 2
let short t = String.sub t 0 8
let equal = String.equal
let compare = String.compare
let hash = Hashtbl.hash
let pp ppf t = Format.pp_print_string ppf t
