(** Cache eviction policies, shared by the mmap'd fleet index
    ({!Cache_index}) and the private on-disk cache's startup reap
    ({!Run_cache.reap_over_limit}).

    Both entry points are pure victim selectors: they never touch disk
    themselves, they return {e which} entries to drop and leave the
    deletion (blob unlink, index tombstone) to the caller, so the same
    policy code serves a byte-addressed slot array and a directory
    walk. *)

type clock_verdict = {
  cv_victims : int list;  (** slots to evict, in hand order *)
  cv_hand : int;          (** where the clock hand stopped *)
  cv_freed : int;         (** bytes the victims account for *)
}

val second_chance :
  nslots:int ->
  hand:int ->
  live:(int -> bool) ->
  size:(int -> int) ->
  referenced:(int -> bool) ->
  clear_ref:(int -> unit) ->
  goal_bytes:int ->
  ?goal_slots:int ->
  ?protect:int ->
  unit -> clock_verdict
(** Classic clock / second-chance selection over a slot array: the hand
    sweeps from [hand], giving every referenced live entry a second
    chance (its reference bit is cleared in place via [clear_ref]) and
    victimizing unreferenced ones, until at least [goal_bytes] bytes and
    [goal_slots] slots (default 0) are freed or two full revolutions
    have passed.  [protect] (a slot index) is never victimized — the
    entry that triggered the sweep.  With every entry referenced, the
    first revolution clears bits and the second evicts: the sweep always
    terminates, and never selects a dead slot. *)

val lru : items:(int * float) array -> excess:int -> int list
(** Least-recently-stamped selection for the directory reap: [items] is
    [(bytes, stamp)] per entry; returns the indices of the
    oldest-stamped entries whose cumulative size reaches [excess], in
    eviction order.  Ties break on index for determinism. *)
