(** Crash-safe sweep journal: an append-only record of which spec
    digests a sweep has completed, so a killed sweep restarts from where
    it left off instead of forfeiting its uncached progress.

    Format: one header line ([XLOOPS-JOURNAL 1]) then one 32-hex-char
    {!Run_spec.digest} per line.  A fresh journal is created atomically
    (unique temp file, fsync, rename); records are single short appends
    followed by [fsync], so a record is either durably present or absent
    — and a crash mid-append leaves at worst one torn final line, which
    {!load} ignores and a resuming {!start} repairs (terminates with a
    newline) before appending anything new.

    The journal records {e completion}, not results: results live in the
    content-addressed {!Run_cache}.  The two compose — on resume, the
    journal says which specs to skip, and the cache serves their data to
    the assembly phase. *)

let header = "XLOOPS-JOURNAL 1"

let default_name = "sweep.journal"

type t = {
  path : string;
  fd : Unix.file_descr;
  mu : Mutex.t;
  members : (string, unit) Hashtbl.t;
  preloaded : int;            (* entries present before this session *)
  mutable recorded : int;     (* entries appended by this session *)
}

(** Digests recorded in the journal at [path] ([[]] if absent).  A bad
    header means "not our file" — treated as empty rather than trusted.
    Torn or malformed lines (a crash mid-append) are skipped —
    {!Digest_hex.of_hex} is the validator. *)
let load path =
  match open_in_bin path with
  | exception Sys_error _ -> []
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    (match input_line ic with
     | exception End_of_file -> []
     | h when h <> header -> []
     | _ ->
       let rec go acc =
         match input_line ic with
         | exception End_of_file -> List.rev acc
         | line ->
           go (match Digest_hex.of_hex line with
               | Ok d -> d :: acc
               | Error _ -> acc)
       in
       go [])

let rec mkdir_p d =
  if not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755
    with Sys_error _ when Sys.file_exists d -> ()
  end

let fsync_noerr fd = try Unix.fsync fd with Unix.Unix_error _ -> ()

(* Atomic fresh creation: header to a unique temp file, fsync, rename. *)
let create_fresh path =
  mkdir_p (Filename.dirname path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let line = Bytes.of_string (header ^ "\n") in
  ignore (Unix.write fd line 0 (Bytes.length line));
  fsync_noerr fd;
  Unix.close fd;
  Sys.rename tmp path

(* Repair a torn tail left by a crash mid-append: if the file does not
   end in a newline, terminate the partial line so the next append
   starts clean (load already ignores the malformed line). *)
let repair_tail path =
  let fd = Unix.openfile path [ O_RDWR ] 0 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
  @@ fun () ->
  let len = Unix.lseek fd 0 Unix.SEEK_END in
  if len > 0 then begin
    ignore (Unix.lseek fd (len - 1) Unix.SEEK_SET);
    let last = Bytes.create 1 in
    if Unix.read fd last 0 1 = 1 && Bytes.get last 0 <> '\n' then begin
      ignore (Unix.write fd (Bytes.of_string "\n") 0 1);
      fsync_noerr fd
    end
  end

(** Open the journal at [path].  With [resume:true] existing entries are
    kept (and a torn tail repaired); otherwise any previous journal is
    atomically replaced by an empty one. *)
let start ?(resume = false) path =
  let existing =
    if resume then begin
      if Sys.file_exists path then repair_tail path;
      load path
    end else []
  in
  if not (resume && Sys.file_exists path) then create_fresh path;
  let fd = Unix.openfile path [ O_WRONLY; O_APPEND ] 0o644 in
  let members = Hashtbl.create (List.length existing * 2 + 16) in
  List.iter
    (fun d -> Hashtbl.replace members (Digest_hex.to_hex d) ()) existing;
  { path; fd; mu = Mutex.create (); members;
    preloaded = Hashtbl.length members; recorded = 0 }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

(** Durably record [digest] as completed: one append (a single [write])
    plus [fsync].  Recording a digest twice is harmless (the journal is
    a set). *)
let record t digest =
  let hex = Digest_hex.to_hex digest in
  locked t @@ fun () ->
  if not (Hashtbl.mem t.members hex) then begin
    let line = Bytes.of_string (hex ^ "\n") in
    ignore (Unix.write t.fd line 0 (Bytes.length line));
    fsync_noerr t.fd;
    Hashtbl.replace t.members hex ();
    t.recorded <- t.recorded + 1
  end

let member t digest =
  locked t (fun () -> Hashtbl.mem t.members (Digest_hex.to_hex digest))
let count t = locked t (fun () -> Hashtbl.length t.members)
let preloaded t = t.preloaded
let recorded t = locked t (fun () -> t.recorded)
let path t = t.path

let close t = locked t (fun () -> try Unix.close t.fd with _ -> ())

let pp_counters ppf t =
  Fmt.pf ppf "%d resumed + %d recorded under %s"
    (preloaded t) (recorded t) t.path
