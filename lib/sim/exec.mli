(** Functional (architectural) executor: the single implementation of
    the ISA semantics.  GPP timing models execute through it directly;
    each LPSU lane wraps it with a private register file and a
    speculative memory interface.

    The step loop is allocation-free: it dispatches on
    {!Program.predecode}d micro-ops, fills a caller-owned mutable
    {!event} scratch record instead of allocating one per instruction,
    and computes ALU results over unboxed native ints. *)

module Program = Xloops_asm.Program

exception Halted
exception Trap of string

(** Register file as native ints: each slot holds the sign extension of
    its architectural 32-bit value, so ALU arithmetic never boxes.
    [regs.(0)] is always 0 (writes to r0 are dropped).  Use {!get}/{!set}
    for [int32] views; direct indexing yields the sign-extended value
    (identical to {!get_int}). *)
type hart = {
  regs : int array;
  mutable pc : int;
}

val create_hart : ?pc:int -> unit -> hart
val copy_hart : hart -> hart

val get : hart -> Xloops_isa.Reg.t -> int32
val set : hart -> Xloops_isa.Reg.t -> int32 -> unit
val get_int : hart -> Xloops_isa.Reg.t -> int
val set_int : hart -> Xloops_isa.Reg.t -> int -> unit

(** Memory interface: bind to {!Xloops_mem.Memory} directly, or to an
    LSQ overlay for speculative lanes.  Build once per machine or lane —
    not per instruction. *)
type mem_iface = {
  load : Xloops_isa.Insn.width -> int -> int32;
  store : Xloops_isa.Insn.width -> int -> int32 -> unit;
  amo : Xloops_isa.Insn.amo_op -> int -> int32 -> int32;
}

val direct_mem : Xloops_mem.Memory.t -> mem_iface

(** What one dynamic instruction did.  A reusable scratch record:
    {!step} overwrites every field on each call, so consumers must read
    what they need before the next step on the same scratch.  The
    executed instruction is identified by [prog]/[pc] (see
    {!event_insn}) instead of being stored — a pointer store per step
    would pay a write barrier on every instruction. *)
type event = {
  mutable prog : Program.t;
  mutable pc : int;
  mutable next_pc : int;
  mutable taken : bool;
  mutable mem_addr : int;      (** -1 if not a memory operation *)
  mutable mem_bytes : int;
  mutable mem_is_store : bool;
  mutable mem_is_amo : bool;
}

val event_insn : event -> int Xloops_isa.Insn.t
(** The instruction the event describes: [prog.insns.(pc)]. *)

val create_event : unit -> event
(** A fresh scratch, initialized to a retired [Nop] at pc 0. *)

val step : Program.predecoded -> hart -> mem_iface -> event -> unit
(** Execute the instruction at [hart.pc] and advance, filling the event
    scratch in place.  [Xloop] executes with its traditional
    (conditional-branch) semantics.  Raises {!Halted} on [Halt] (with
    [hart.pc] left at the halt), {!Trap} on bad PCs. *)

val step_ref : Program.t -> hart -> mem_iface -> event -> unit
(** Reference executor decoding the raw instruction stream on every
    call; the semantic baseline {!step} is property-tested against. *)

(** {1 Pure operator semantics} (exposed for property tests) *)

val alu_eval : Xloops_isa.Insn.alu_op -> int32 -> int32 -> int32
val fpu_eval : Xloops_isa.Insn.fpu_op -> int32 -> int32 -> int32
val branch_eval : Xloops_isa.Insn.branch_cond -> int32 -> int32 -> bool

(** The same semantics over sign-extended native ints — the hot-path
    variants {!step} dispatches to.  Operands must be normalized
    (sign-extended 32-bit values); results are normalized. *)

val alu_eval_int : Xloops_isa.Insn.alu_op -> int -> int -> int
val fpu_eval_int : Xloops_isa.Insn.fpu_op -> int -> int -> int
val branch_eval_int : Xloops_isa.Insn.branch_cond -> int -> int -> bool

(** {1 Whole-program functional runs} *)

type run = {
  dynamic_insns : int;
  final : hart;
}

type stop = Out_of_fuel of { pc : int; insns : int; cycle : int }
(** Structured termination reason for a run that exhausted its fuel
    (for the functional model, [cycle] = [insns]). *)

val pp_stop : Format.formatter -> stop -> unit

val run_serial : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (run, stop) result
(** Reference serial execution until [Halt]; the paper's
    dynamic-instruction-count columns come from here.  Fuel exhaustion
    is reported as [Error], not raised.  Predecodes (memoized)
    internally. *)

val run_serial_ref : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (run, stop) result
(** [run_serial] through {!step_ref} — original decode path, for
    differential tests. *)
