(** Functional (architectural) executor: the single implementation of
    the ISA semantics.  GPP timing models execute through it directly;
    each LPSU lane wraps it with a private register file and a
    speculative memory interface. *)

module Program = Xloops_asm.Program

exception Halted
exception Trap of string

type hart = {
  regs : int32 array;
  mutable pc : int;
}

val create_hart : ?pc:int -> unit -> hart
val copy_hart : hart -> hart

val get : hart -> Xloops_isa.Reg.t -> int32
val set : hart -> Xloops_isa.Reg.t -> int32 -> unit
val get_int : hart -> Xloops_isa.Reg.t -> int
val set_int : hart -> Xloops_isa.Reg.t -> int -> unit

(** Memory interface: bind to {!Xloops_mem.Memory} directly, or to an
    LSQ overlay for speculative lanes. *)
type mem_iface = {
  load : Xloops_isa.Insn.width -> int -> int32;
  store : Xloops_isa.Insn.width -> int -> int32 -> unit;
  amo : Xloops_isa.Insn.amo_op -> int -> int32 -> int32;
}

val direct_mem : Xloops_mem.Memory.t -> mem_iface

(** What one dynamic instruction did. *)
type event = {
  insn : int Xloops_isa.Insn.t;
  pc : int;
  next_pc : int;
  taken : bool;
  mem_addr : int;      (** -1 if not a memory operation *)
  mem_bytes : int;
  mem_is_store : bool;
  mem_is_amo : bool;
}

val step : Program.t -> hart -> mem_iface -> event
(** Execute the instruction at [hart.pc] and advance.  [Xloop] executes
    with its traditional (conditional-branch) semantics.  Raises
    {!Halted} on [Halt], {!Trap} on bad PCs. *)

(** {1 Pure operator semantics} (exposed for property tests) *)

val alu_eval : Xloops_isa.Insn.alu_op -> int32 -> int32 -> int32
val fpu_eval : Xloops_isa.Insn.fpu_op -> int32 -> int32 -> int32
val branch_eval : Xloops_isa.Insn.branch_cond -> int32 -> int32 -> bool

(** {1 Whole-program functional runs} *)

type run = {
  dynamic_insns : int;
  final : hart;
}

type stop = Out_of_fuel of { pc : int; insns : int; cycle : int }
(** Structured termination reason for a run that exhausted its fuel
    (for the functional model, [cycle] = [insns]). *)

val pp_stop : Format.formatter -> stop -> unit

val run_serial : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (run, stop) result
(** Reference serial execution until [Halt]; the paper's
    dynamic-instruction-count columns come from here.  Fuel exhaustion
    is reported as [Error], not raised. *)
