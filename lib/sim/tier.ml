(** Execution-tier selection for observer-free functional runs.

    Four tiers implement identical architectural semantics at different
    speeds: [Ref] decodes raw instructions every step, [Predecode]
    dispatches on micro-ops ({!Exec.run_serial}), [Threaded] runs
    closure-compiled code with superop pair fusion
    ({!Threaded.run_serial}), and [Block] dispatches one compiled
    closure per basic block ({!Threaded.run_serial_block}).
    The selection is a process-wide atomic so every functional-run site
    (kernel metadata, bench harness, CLI tools, the sweep service) picks
    up the CLI/env choice without threading a parameter through. *)

type t = Ref | Predecode | Threaded | Block

let name = function
  | Ref -> "ref"
  | Predecode -> "predecode"
  | Threaded -> "threaded"
  | Block -> "block"

let of_string = function
  | "ref" -> Ok Ref
  | "predecode" -> Ok Predecode
  | "threaded" -> Ok Threaded
  | "block" -> Ok Block
  | s ->
    Error
      (Fmt.str "unknown execution tier %S (want ref|predecode|threaded|block)"
         s)

let all = [ Ref; Predecode; Threaded; Block ]

let env_var = "XLOOPS_EXEC_TIER"

let initial () =
  match Sys.getenv_opt env_var with
  | None | Some "" -> Predecode
  | Some s ->
    (match of_string s with
     | Ok t -> t
     | Error msg ->
       Fmt.epr "warning: ignoring %s: %s@." env_var msg;
       Predecode)

let current = Atomic.make (initial ())

let get () = Atomic.get current
let set t = Atomic.set current t

let run_serial_with (tier : t) ?entry ?fuel prog mem =
  match tier with
  | Ref -> Exec.run_serial_ref ?entry ?fuel prog mem
  | Predecode -> Exec.run_serial ?entry ?fuel prog mem
  | Threaded -> Threaded.run_serial ?entry ?fuel prog mem
  | Block -> Threaded.run_serial_block ?entry ?fuel prog mem

let run_serial ?entry ?fuel prog mem =
  run_serial_with (get ()) ?entry ?fuel prog mem
