(** Deterministic fault injection and structured hang diagnostics for the
    LPSU (the robustness layer around Section II-D's squash/restart
    machinery).

    A {e fault plan} is a seeded, reproducible schedule of transient
    faults to inject into LPSU structures while a specialized loop runs:
    dropped or duplicated CIB forwards, lost LSQ store-broadcasts,
    corrupted IDQ index values, stale MIVT seeds, memory-port stalls and
    frozen lanes.  Event times are {e relative to the start of a
    specialized run}, so the same plan means the same thing on every
    machine configuration; each event fires in the first specialized run
    that reaches its cycle offset and finds an applicable target.

    A {e hang} is what the progress watchdog reports instead of blind
    fuel exhaustion: which shared resource the LPSU is blocked on, at
    which cycle, after how many committed iterations.  The machine either
    surfaces it as a structured failure or — with graceful degradation
    enabled — squashes the loop, restores the architectural checkpoint
    and re-executes traditionally on the GPP (the paper's compatibility
    escape hatch, here exercised under adversarial conditions). *)

type kind =
  | Cib_drop            (** lose the newest cross-iteration forward *)
  | Cib_dup             (** duplicate a CIB value to the next consumer *)
  | Lsq_drop_load       (** forget a lane's newest recorded load *)
  | Lsq_lost_broadcast  (** swallow the next store broadcast *)
  | Idq_corrupt         (** corrupt a running iteration's index value *)
  | Mivt_stale          (** reseed an MIV register with its stale base *)
  | Port_stall          (** jam the shared data-memory port *)
  | Lane_freeze         (** freeze a lane's issue logic for good *)

let all_kinds =
  [ Cib_drop; Cib_dup; Lsq_drop_load; Lsq_lost_broadcast; Idq_corrupt;
    Mivt_stale; Port_stall; Lane_freeze ]

let kind_name = function
  | Cib_drop -> "cib-drop"
  | Cib_dup -> "cib-dup"
  | Lsq_drop_load -> "lsq-drop-load"
  | Lsq_lost_broadcast -> "lsq-lost-broadcast"
  | Idq_corrupt -> "idq-corrupt"
  | Mivt_stale -> "mivt-stale"
  | Port_stall -> "port-stall"
  | Lane_freeze -> "lane-freeze"

let pp_kind ppf k = Fmt.string ppf (kind_name k)

type event = {
  ev_after : int;   (** cycles after the start of a specialized run *)
  ev_lane : int;    (** target lane / structure selector (taken mod) *)
  ev_kind : kind;
}

type t = {
  seed : int;
  mutable pending : event list;          (* sorted by [ev_after] *)
  mutable injected : (kind * int) list;  (* kind, absolute cycle; newest first *)
}

(* SplitMix-style deterministic generator: no dependence on the global
   Random state, so a (seed, events) pair names one reproducible plan. *)
let mix s =
  let s = Int64.add s 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor s (Int64.shift_right_logical s 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let rand_int state bound =
  state := mix !state;
  Int64.to_int (Int64.rem (Int64.shift_right_logical !state 2)
                  (Int64.of_int bound))

(** Build a plan of [events] faults from [seed].  Kinds are drawn
    round-robin from [kinds] (default {!all_kinds}, with freezes last in
    each round so corruptions land before the watchdog can fire), at
    small jittered offsets so short specialized runs still reach them. *)
let plan ?(kinds = all_kinds) ~seed ~events () =
  if events < 0 then invalid_arg "Fault.plan: negative event count";
  if kinds = [] then invalid_arg "Fault.plan: empty kind list";
  let state = ref (Int64.of_int (seed * 2 + 1)) in
  let nk = List.length kinds in
  let evs =
    List.init events (fun i ->
        { ev_after = 2 + (i / nk) * 24 + rand_int state 20;
          ev_lane = rand_int state 8;
          ev_kind = List.nth kinds (i mod nk) })
  in
  { seed;
    pending = List.stable_sort (fun a b -> compare a.ev_after b.ev_after) evs;
    injected = [] }

(** A hand-written plan (tests, targeted repro). *)
let explicit events =
  { seed = 0;
    pending =
      List.stable_sort (fun a b -> compare a.ev_after b.ev_after) events;
    injected = [] }

let none () = { seed = 0; pending = []; injected = [] }

(** Events due at relative cycle [rel]; they are removed from the plan
    and the injector is expected to {!record} the ones it could apply and
    {!defer} the rest. *)
let due t ~rel =
  let fire, keep = List.partition (fun e -> e.ev_after <= rel) t.pending in
  t.pending <- keep;
  fire

(** Put an event the injector found no applicable target for back on the
    plan; it retries on later cycles (and later specialized runs). *)
let defer t ev = t.pending <- ev :: t.pending

let record t kind ~cycle = t.injected <- (kind, cycle) :: t.injected

let injected t = List.length t.injected

let injected_kinds t =
  List.sort_uniq compare (List.map fst t.injected)

let pending t = List.length t.pending

let pp_plan ppf t =
  Fmt.pf ppf "@[<v>fault plan (seed %d): %d pending, %d injected@,%a@]"
    t.seed (List.length t.pending) (List.length t.injected)
    (Fmt.list ~sep:Fmt.cut
       (fun ppf e ->
          Fmt.pf ppf "  +%-5d lane%d %a" e.ev_after e.ev_lane pp_kind
            e.ev_kind))
    t.pending

(* -- Hang diagnostics -------------------------------------------------- *)

(** The shared resource the watchdog found the LPSU blocked on. *)
type resource =
  | Cib_chain        (** a cross-iteration register chain never fills *)
  | Lsq_full         (** every lane is load/store-queue bound *)
  | Port_starved     (** the shared memory port never frees up *)
  | Lane_frozen      (** an injected lane freeze pins the commit point *)
  | Fuel             (** cycle budget exhausted without a diagnosis *)
  | Trapped          (** an architectural trap escaped a lane mid-run *)
  | No_progress      (** stalled, but on no single identifiable resource *)

let resource_name = function
  | Cib_chain -> "CIB chain"
  | Lsq_full -> "LSQ full"
  | Port_starved -> "memory-port starvation"
  | Lane_frozen -> "frozen lane"
  | Fuel -> "out of fuel"
  | Trapped -> "architectural trap"
  | No_progress -> "no progress"

type hang = {
  h_resource : resource;
  h_cycle : int;       (** absolute cycle the watchdog fired at *)
  h_committed : int;   (** iterations committed before the hang *)
  h_detail : string;
}

let pp_resource ppf r = Fmt.string ppf (resource_name r)

let pp_hang ppf h =
  Fmt.pf ppf "LPSU hang at cycle %d after %d iterations: %s (%s)"
    h.h_cycle h.h_committed (resource_name h.h_resource) h.h_detail
