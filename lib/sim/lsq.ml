(** Per-lane load-store queue for speculative execution of
    [xloop.{om,orm,ua}] (Section II-D).

    A speculative lane buffers its stores here instead of writing memory,
    records the addresses of its loads for violation detection, and reads
    through a byte-accurate overlay of its own buffered stores on top of
    architectural memory (store-to-load forwarding). *)

open Xloops_isa
module Memory = Xloops_mem.Memory

type store_entry = {
  s_addr : int;
  s_bytes : int;
  s_value : int32;  (* little-endian in the low [s_bytes] bytes *)
}

type forward_source = {
  f_iter : int;     (** iteration whose buffered store supplied the value *)
  f_value : int32;  (** raw little-endian bytes observed at forward time *)
}

type load_entry = {
  l_addr : int;
  l_bytes : int;
  l_fwd : forward_source option;
      (** [Some _] when the value came from another lane's LSQ
          (inter-lane store-to-load forwarding) *)
}

type t = {
  max_loads : int;
  max_stores : int;
  mutable stores : store_entry list;  (* newest first *)
  mutable loads : load_entry list;
  mutable n_stores : int;
  mutable n_loads : int;
}

let create ~max_loads ~max_stores =
  { max_loads; max_stores; stores = []; loads = []; n_stores = 0;
    n_loads = 0 }

let loads_full t = t.n_loads >= t.max_loads
let stores_full t = t.n_stores >= t.max_stores
let n_stores t = t.n_stores
let is_empty t = t.n_stores = 0 && t.n_loads = 0

let clear t =
  t.stores <- []; t.loads <- []; t.n_stores <- 0; t.n_loads <- 0

let ranges_overlap a an b bn = a < b + bn && b < a + an

(** Does any buffered store overlap [addr, addr+bytes)?  (Used to decide
    whether a load can forward without touching the memory port.) *)
let store_overlaps t ~addr ~bytes =
  List.exists (fun s -> ranges_overlap s.s_addr s.s_bytes addr bytes) t.stores

(** Has this lane already issued a load overlapping [addr, addr+bytes)?
    (Violation check against a broadcast store.) *)
let load_overlaps t ~addr ~bytes =
  List.exists (fun l -> ranges_overlap l.l_addr l.l_bytes addr bytes) t.loads

let record_load ?fwd t ~addr ~bytes =
  t.loads <- { l_addr = addr; l_bytes = bytes; l_fwd = fwd } :: t.loads;
  t.n_loads <- t.n_loads + 1

let record_store t ~addr ~bytes ~value =
  t.stores <- { s_addr = addr; s_bytes = bytes; s_value = value } :: t.stores;
  t.n_stores <- t.n_stores + 1

let store_byte_at (s : store_entry) addr =
  let off = addr - s.s_addr in
  Int32.to_int (Int32.shift_right_logical s.s_value (off * 8)) land 0xFF

(** Read one byte through the overlay: the youngest buffered store covering
    the byte wins, otherwise architectural memory. *)
let read_byte t mem addr =
  let rec find = function
    | [] -> Memory.get_u8 mem addr
    | s :: rest ->
      if addr >= s.s_addr && addr < s.s_addr + s.s_bytes
      then store_byte_at s addr
      else find rest
  in
  find t.stores

let sext v bits =
  let m = 1 lsl (bits - 1) in
  ((v lxor m) - m)

(** Architectural load through the overlay. *)
let read t mem (w : Insn.width) addr : int32 =
  let nbytes = Memory.width_bytes w in
  let raw = ref 0 in
  for i = nbytes - 1 downto 0 do
    raw := (!raw lsl 8) lor read_byte t mem (addr + i)
  done;
  match w with
  | B -> Int32.of_int (sext !raw 8)
  | H -> Int32.of_int (sext !raw 16)
  | Bu | Hu -> Int32.of_int !raw
  | W -> Int32.of_int (sext !raw 32)

(** Buffered stores, oldest first, ready to drain to memory. *)
let drain_order t = List.rev t.stores

let apply_store mem (s : store_entry) =
  for i = 0 to s.s_bytes - 1 do
    Memory.set_u8 mem (s.s_addr + i) (store_byte_at s (s.s_addr + i))
  done

(** Raw little-endian bytes of the load range, read through the overlay
    (used to snapshot a forwarded value). *)
let read_raw t mem ~addr ~bytes =
  let raw = ref 0 in
  for i = bytes - 1 downto 0 do
    raw := (!raw lsl 8) lor read_byte t mem (addr + i)
  done;
  Int32.of_int !raw

(** Does some single buffered store fully cover [addr, addr+bytes)?
    Returns its raw bytes over that range if so — the only case where an
    inter-lane forward is attempted (partial covers fall back to memory
    and rely on violation detection). *)
let covering_store_value t ~addr ~bytes : int32 option =
  let covers s =
    s.s_addr <= addr && addr + bytes <= s.s_addr + s.s_bytes in
  match List.find_opt covers t.stores with
  | None -> None
  | Some s ->
    let raw = ref 0 in
    for i = bytes - 1 downto 0 do
      raw := (!raw lsl 8) lor store_byte_at s (addr + i)
    done;
    Some (Int32.of_int !raw)

(** Loads that overlap [addr, addr+bytes) and are {e not} satisfied by
    this very broadcast: an entry forwarded from iteration [from_iter]
    is innocent iff the committing store still covers it with the same
    bytes. *)
let violated_loads t ~from_iter ~addr ~bytes ~(store : store_entry) =
  List.filter
    (fun l ->
       ranges_overlap l.l_addr l.l_bytes addr bytes
       && (match l.l_fwd with
           | Some f when f.f_iter = from_iter ->
             not (store.s_addr <= l.l_addr
                  && l.l_addr + l.l_bytes <= store.s_addr + store.s_bytes
                  && (let raw = ref 0 in
                      for i = l.l_bytes - 1 downto 0 do
                        raw := (!raw lsl 8)
                               lor store_byte_at store (l.l_addr + i)
                      done;
                      Int32.of_int !raw = f.f_value))
           | _ -> true))
    t.loads

(* -- Fault-injection hooks --------------------------------------------- *)

(** Forget the newest recorded load (a transiently lost CAM entry): the
    violation check can no longer see it, so a conflicting broadcast
    store slips past undetected.  Returns whether there was one. *)
let drop_newest_load t =
  match t.loads with
  | [] -> false
  | _ :: rest ->
    t.loads <- rest;
    t.n_loads <- t.n_loads - 1;
    true

(** Flip bits in the newest buffered store's value (a transient data-array
    upset); it drains to memory corrupted.  Returns whether applied. *)
let corrupt_newest_store t ~mask =
  match t.stores with
  | [] -> false
  | s :: rest ->
    t.stores <- { s with s_value = Int32.logxor s.s_value mask } :: rest;
    true

(** Any load entry forwarded from iteration [iter] (such entries must be
    squashed when [iter] itself squashes). *)
let has_forward_from t iter =
  List.exists
    (fun l -> match l.l_fwd with
       | Some f -> f.f_iter = iter
       | None -> false)
    t.loads
