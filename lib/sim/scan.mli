(** Scan-phase static analysis of an [xloop] body (Section II-D): the
    MIVT (register, increment) entries from [.xi] instructions, the CIR
    set for [or/orm] via read-before-write bit-vectors, last-CIR-write
    positions, the loop-index step, and the reasons a loop must fall
    back to traditional execution. *)

type miv = {
  m_reg : Xloops_isa.Reg.t;
  m_inc : int32;   (** per-iteration increment, resolved at scan time *)
}

type cir = {
  c_reg : Xloops_isa.Reg.t;
  c_last_write_pc : int;
      (** PC carrying the last-CIR-write bit; -1 when the value may only
          be forwarded by the end-of-iteration copy (never written, or
          written inside an inner loop where the write re-executes) *)
}

type fallback_reason =
  | Body_too_large of int
  | Pattern_unsupported of Xloops_isa.Insn.dpattern
  | Has_call
  | Bad_index_step
  | Malformed_body

val pp_fallback : Format.formatter -> fallback_reason -> unit

type t = {
  xloop_pc : int;
  body_start : int;
  body_len : int;
  pat : Xloops_isa.Insn.xpat;
  r_idx : Xloops_isa.Reg.t;
  r_bound : Xloops_isa.Reg.t;
  idx_step : int32;
  mivs : miv list;
  cirs : cir list;
}

val has_cirs : Xloops_isa.Insn.xpat -> bool
val is_speculative_pattern : Xloops_isa.Insn.xpat -> bool
(** [om], [orm] and [ua] need the LSQ speculation machinery — and so
    does any [.de] loop, whose iterations beyond the data-dependent exit
    are control-speculative and must leave no trace. *)

val analyze : Xloops_asm.Program.t -> xloop_pc:int -> regs:int array ->
  lpsu:Config.lpsu -> (t, fallback_reason) result
(** [regs] is the GPP register file at scan time (resolves the
    loop-invariant increments of [addu.xi]).  Raises [Invalid_argument]
    if [xloop_pc] does not hold an [xloop]. *)
