(** Cycle-level, execution-driven model of the loop-pattern
    specialization unit (Section II-D, Figure 4): decoupled in-order
    lanes fed by an index-dispensing LMU, with the MIVT seeding mutual
    induction variables per iteration, CIB chains carrying [or/orm]
    register dependences, per-lane LSQs with store-broadcast violation
    detection and squash/restart for [om/orm/ua], dynamic-bound updates
    for [.db], and arbitration for the shared memory port and LLFU.

    Squashed iterations genuinely re-execute, so data-dependent
    violation behaviour (ksack-sm vs ksack-lg) emerges from execution. *)

exception Lane_trap of string

type result = {
  cycles : int;             (** specialized-execution cycles *)
  iterations : int;         (** iterations committed *)
  finished : bool;          (** ran to the (final) bound *)
  next_idx : int32;         (** index value of the next iteration *)
  bound : int32;            (** final, possibly dynamically-raised *)
  cir_finals : (Xloops_isa.Reg.t * int32) list;
      (** serial-final CIR values (defined live-outs of [xloop.or]) *)
  miv_finals : (Xloops_isa.Reg.t * int32) list;
}

val run :
  prog:Xloops_asm.Program.t ->
  mem:Xloops_mem.Memory.t ->
  dcache:Xloops_mem.Cache.t ->
  cfg:Config.t ->
  stats:Stats.t ->
  info:Scan.t ->
  regs:int array ->
  start_cycle:int ->
  ?stop_after:int ->
  ?trace:Trace.t ->
  ?faults:Fault.t ->
  ?watchdog:int ->
  ?fuel:int ->
  unit -> (result, Fault.hang) Stdlib.result
(** Run specialized execution of the loop described by [info], with GPP
    register snapshot [regs] (live-ins, MIV bases, initial CIR values).
    [stop_after] bounds the number of iterations dispatched — the
    adaptive profiling phase; in-flight iterations always drain before
    returning.  [dcache] is the GPP's L1D (the LPSU shares its port).

    [faults] injects the plan's due events each cycle; [watchdog] (off
    when 0) declares a hang after that many cycles without a dispatch or
    commit, classified by the blocked resource.  Hangs — including fuel
    exhaustion, and architectural traps provoked by an injected fault —
    return as [Error] so the machine can restore its checkpoint and
    degrade to traditional execution. *)
