(** Top-level machine: a GPP, optionally augmented with an LPSU, executing
    a program in one of the paper's three execution modes.

    - {b Traditional}: every instruction, including [xloop] and [.xi],
      executes on the GPP ([xloop] as a conditional branch, [.xi] as an
      add).
    - {b Specialized}: when the GPP takes an [xloop] back-edge (i.e. after
      the first iteration has executed on the GPP, which is how the
      fall-through encoding works), it scans the body into the LPSU and
      hands the remaining iterations to specialized execution; on loops the
      LPSU cannot handle it falls back to traditional execution.
    - {b Adaptive}: an adaptive profiling table (APT) indexed by the
      [xloop] PC first measures traditional-execution throughput, then
      specialized throughput on the same number of iterations, and commits
      to whichever is faster (Section II-E).  Profiling stretches across
      dynamic instances of the loop, and a decision, once made, sticks. *)

module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory

type mode = Traditional | Specialized | Adaptive

let mode_name = function
  | Traditional -> "T" | Specialized -> "S" | Adaptive -> "A"

type result = {
  cycles : int;
  insns : int;              (** dynamically committed instructions *)
  stats : Stats.t;
}

(** Why a run could not complete.  Structured data, not an exception:
    sweep drivers report the failing kernel and keep going. *)
type failure =
  | Out_of_fuel of { pc : int; insns : int; cycle : int }
  | Lpsu_hang of Fault.hang

let pp_failure ppf = function
  | Out_of_fuel { pc; insns; cycle } ->
    Fmt.pf ppf "out of fuel at pc %d after %d instructions (cycle %d)"
      pc insns cycle
  | Lpsu_hang h -> Fault.pp_hang ppf h

exception Stuck of failure

type apt_entry =
  | Profiling of {
      mutable iters : int;
      mutable cycles : int;
      mutable last_taken : int;   (* -1 between dynamic instances *)
    }
  | Decided of {
      spec : bool;
      mutable uses : int;   (* dynamic loop instances under this decision *)
    }

let decided spec = Decided { spec; uses = 0 }

type t = {
  cfg : Config.t;
  mode : mode;
  adaptive : Config.adaptive;
  lpsu_fuel : int;
  trace : Trace.t option;
  prog : Program.t;
  pre : Program.predecoded;      (* prog, predecoded once for the run *)
  mem : Memory.t;
  gpp_mem : Exec.mem_iface;      (* built once, not per instruction *)
  ev : Exec.event;               (* the GPP's reusable step scratch *)
  stats : Stats.t;
  hart : Exec.hart;
  timing : Gpp_timing.t;
  apt : (int, apt_entry) Hashtbl.t;
  scan_fail : (int, Scan.fallback_reason) Hashtbl.t;
  faults : Fault.t option;
  watchdog : int;
  degrade : bool;
  degraded : (int, unit) Hashtbl.t;
      (* xloop PCs pinned to traditional execution after a rollback *)
  mutable hangs : Fault.hang list;   (* newest first *)
  mutable insns : int;
}

let create ?(adaptive = Config.default_adaptive)
    ?(lpsu_fuel = 500_000_000) ?trace ?faults ?(watchdog = 50_000)
    ?(degrade = true) ~cfg ~mode ~prog ~mem
    ?(entry = 0) () =
  (match mode, cfg.Config.lpsu with
   | (Specialized | Adaptive), None ->
     invalid_arg
       (Printf.sprintf "Machine.create: config %s has no LPSU" cfg.name)
   | _ -> ());
  let stats = Stats.create () in
  { cfg; mode; adaptive; lpsu_fuel; trace; prog;
    pre = Program.predecode prog;
    mem;
    gpp_mem = Exec.direct_mem mem;
    ev = Exec.create_event ();
    stats;
    hart = Exec.create_hart ~pc:entry ();
    timing = Gpp_timing.create cfg.Config.gpp stats;
    apt = Hashtbl.create 8;
    scan_fail = Hashtbl.create 8;
    faults; watchdog; degrade;
    degraded = Hashtbl.create 4;
    hangs = [];
    insns = 0 }

let hangs t = List.rev t.hangs

(* -- Specialized-execution plumbing ---------------------------------- *)

let lpsu_cfg t =
  match t.cfg.Config.lpsu with Some l -> l | None -> assert false

(** Write the LPSU's architectural results back into the GPP register
    file: index, (possibly raised) bound, serial-final CIR values and MIV
    values — exactly the registers whose post-loop values the XLOOPS ISA
    defines. *)
let writeback t (info : Scan.t) (r : Lpsu.result) =
  Exec.set t.hart info.r_idx r.next_idx;
  Exec.set t.hart info.r_bound r.bound;
  List.iter (fun (reg, v) -> Exec.set t.hart reg v) r.cir_finals;
  List.iter (fun (reg, v) -> Exec.set t.hart reg v) r.miv_finals

(** Analyze the xloop at [pc] for specialization, caching the (static)
    failure reasons so fallback loops do not re-scan on every back-edge. *)
let analyze t ~pc =
  match Hashtbl.find_opt t.scan_fail pc with
  | Some reason -> Error reason
  | None ->
    (match Scan.analyze t.prog ~xloop_pc:pc ~regs:t.hart.regs
             ~lpsu:(lpsu_cfg t) with
    | Ok info -> Ok info
    | Error reason ->
      Hashtbl.replace t.scan_fail pc reason;
      if not (Hashtbl.mem t.apt pc) then begin
        if Trace.enabled t.trace Decisions then
          Trace.event t.trace Decisions
            "xloop@%d falls back to traditional execution: %a" pc
            Scan.pp_fallback reason;
        t.stats.xloops_traditional <- t.stats.xloops_traditional + 1;
        Hashtbl.replace t.apt pc (decided false)
      end;
      Error reason)

(** Run the LPSU over (part of) the xloop described by [info], starting
    after a scan phase, and bring the GPP state up to date.  On [Ok] the
    LPSU's results are written back; on [Error] (hang) GPP state is left
    untouched except for the clock, which honestly pays for the cycles
    spent detecting the hang. *)
let run_lpsu ?stop_after t (info : Scan.t) =
  Gpp_timing.barrier t.timing;
  let scan = Gpp_timing.scan_cycles t.timing (lpsu_cfg t)
      ~body_insns:info.body_len in
  t.stats.scan_insns <- t.stats.scan_insns + info.body_len;
  t.stats.renames <- t.stats.renames + info.body_len;
  let start_cycle = Gpp_timing.now t.timing + scan in
  if Trace.enabled t.trace Decisions then
    Trace.event t.trace Decisions
      "[%7d] scan xloop@%d (%d instructions, %d scan cycles)"
      (Gpp_timing.now t.timing) info.Scan.xloop_pc info.body_len scan;
  match Lpsu.run ~prog:t.prog ~mem:t.mem
          ~dcache:(Gpp_timing.l1d t.timing) ~cfg:t.cfg ~stats:t.stats
          ~info ~regs:t.hart.regs ~start_cycle ?stop_after
          ?trace:t.trace ?faults:t.faults ~watchdog:t.watchdog
          ~fuel:t.lpsu_fuel () with
  | Ok r ->
    writeback t info r;
    Gpp_timing.skip_to t.timing (start_cycle + r.cycles);
    Ok r
  | Error h ->
    Gpp_timing.skip_to t.timing h.Fault.h_cycle;
    Error h

(** Outcome of one attempt at specialized execution under the safety net. *)
type spec_outcome =
  | Completed of Lpsu.result
  | Degraded   (** rolled back; the GPP re-executes the loop traditionally *)

(** Pin [pc] to traditional execution for the rest of the run. *)
let mark_degraded t ~pc =
  Hashtbl.replace t.degraded pc ();
  Hashtbl.replace t.apt pc (decided false);
  t.stats.degradations <- t.stats.degradations + 1;
  t.stats.xloops_traditional <- t.stats.xloops_traditional + 1

(** Specialize under an architectural checkpoint: GPP registers are
    snapshotted and every memory write journalled for the duration of the
    LPSU run.  Three outcomes:

    - clean completion: commit the journal, keep the specialized result;
    - hang (watchdog, fuel, or a fault-provoked trap): roll everything
      back and degrade;
    - completion with faults injected mid-run: the result cannot be
      trusted (the corruption may be architecturally silent), so roll
      back and degrade just the same.

    Degrading restores the exact state at loop entry, so the GPP resumes
    at the body head and re-executes the loop with its traditional
    (conditional-branch) semantics — the program's final state is then
    bit-identical to a never-specialized run. *)
let try_specialize ?stop_after t (info : Scan.t) =
  let pc = info.Scan.xloop_pc in
  let snap_regs = Array.copy t.hart.regs in
  let snap_pc = t.hart.pc in
  let injected_before =
    match t.faults with Some p -> Fault.injected p | None -> 0 in
  Memory.journal_begin t.mem;
  let outcome =
    try run_lpsu ?stop_after t info
    with e ->
      (* e.g. Lane_trap from a malformed body with no fault plan active:
         don't leave the journal open behind the escaping exception. *)
      Memory.journal_abort t.mem;
      raise e
  in
  let injected =
    (match t.faults with Some p -> Fault.injected p | None -> 0)
    - injected_before
  in
  let rollback why =
    Memory.journal_abort t.mem;
    Array.blit snap_regs 0 t.hart.regs 0 (Array.length snap_regs);
    t.hart.pc <- snap_pc;
    mark_degraded t ~pc;
    if Trace.enabled t.trace Decisions then
      Trace.event t.trace Decisions
        "[%7d] xloop@%d: %s; rolled back, degrading to traditional"
        (Gpp_timing.now t.timing) pc why
  in
  match outcome with
  | Ok r when injected = 0 ->
    Memory.journal_commit t.mem;
    Completed r
  | Ok r when not t.degrade ->
    (* Safety net disabled: keep the possibly-corrupt result. *)
    Memory.journal_commit t.mem;
    Completed r
  | Ok _ ->
    rollback
      (Printf.sprintf "completed under %d injected fault(s)" injected);
    Degraded
  | Error h ->
    t.hangs <- h :: t.hangs;
    if t.degrade then begin
      rollback (Fmt.str "%a" Fault.pp_hang h);
      Degraded
    end else begin
      Memory.journal_abort t.mem;
      Array.blit snap_regs 0 t.hart.regs 0 (Array.length snap_regs);
      t.hart.pc <- snap_pc;
      raise (Stuck (Lpsu_hang h))
    end

let specialize_fully t (info : Scan.t) =
  match try_specialize t info with
  | Completed r ->
    assert r.finished;
    t.hart.pc <- info.xloop_pc + 1
  | Degraded -> ()   (* GPP resumes at the body head, traditionally *)

(* -- Adaptive execution ----------------------------------------------- *)

let adaptive_step t ~pc (ev : Exec.event) =
  let now = Gpp_timing.now t.timing in
  let entry =
    match Hashtbl.find_opt t.apt pc with
    | Some e -> e
    | None ->
      let e = Profiling { iters = 0; cycles = 0; last_taken = -1 } in
      Hashtbl.replace t.apt pc e;
      e
  in
  let reprofile_if_stale uses =
    (* Future-work extension (Section II-E): optionally reconsider a
       decision after it has served a number of dynamic loop instances. *)
    match t.adaptive.reconsider_after with
    | Some n when uses >= n ->
      if Trace.enabled t.trace Decisions then
        Trace.event t.trace Decisions
          "xloop@%d: decision stale after %d instances; re-profiling" pc
          uses;
      Hashtbl.replace t.apt pc
        (Profiling { iters = 0; cycles = 0; last_taken = -1 })
    | _ -> ()
  in
  match entry with
  | Decided ({ spec = false; _ } as d) ->
    (* A traditional instance completes when the xloop falls through. *)
    if not ev.taken then begin
      d.uses <- d.uses + 1;
      reprofile_if_stale d.uses
    end
  | Decided ({ spec = true; _ } as d) ->
    if ev.taken then begin
      (match analyze t ~pc with
       | Ok info -> specialize_fully t info
       | Error _ -> Hashtbl.replace t.apt pc (decided false));
      d.uses <- d.uses + 1;
      reprofile_if_stale d.uses
    end
  | Profiling p ->
    if not ev.taken then p.last_taken <- -1
    else begin
      if p.last_taken >= 0 then p.cycles <- p.cycles + (now - p.last_taken);
      p.last_taken <- now;
      p.iters <- p.iters + 1;
      if p.iters >= t.adaptive.profile_iters
      || p.cycles >= t.adaptive.profile_cycles then begin
        match analyze t ~pc with
        | Error _ -> Hashtbl.replace t.apt pc (decided false)
        | Ok info ->
          (* LPSU profiling phase: same number of iterations as measured
             traditionally. *)
          let budget = max 1 p.iters in
          if Trace.enabled t.trace Decisions then
            Trace.event t.trace Decisions
              "xloop@%d: GPP profile done (%d iters, %d cycles); trying \
               the LPSU" pc p.iters p.cycles;
          match try_specialize ~stop_after:budget t info with
          | Degraded -> ()   (* mark_degraded already decided false *)
          | Completed r ->
            let spec_faster =
              (* cycles-per-iteration comparison, cross-multiplied. *)
              r.iterations > 0
              && r.cycles * p.iters <= p.cycles * r.iterations
            in
            if r.finished then begin
              t.hart.pc <- info.xloop_pc + 1;
              Hashtbl.replace t.apt pc (decided spec_faster)
            end else if spec_faster then begin
              (* Stay on the LPSU for the rest of the loop. *)
              match try_specialize t info with
              | Degraded -> ()
              | Completed r2 ->
                assert r2.finished;
                t.hart.pc <- info.xloop_pc + 1;
                Hashtbl.replace t.apt pc (decided true)
            end else begin
              (* Migrate back: the GPP finishes the remaining iterations. *)
              if Trace.enabled t.trace Decisions then
                Trace.event t.trace Decisions
                  "xloop@%d: specialized slower (%d cyc / %d iters); \
                   migrating back to the GPP" pc r.cycles r.iterations;
              t.stats.migrations <- t.stats.migrations + 1;
              t.hart.pc <- info.body_start;
              Hashtbl.replace t.apt pc (decided false)
            end
      end
    end

(* -- Main loop --------------------------------------------------------- *)

(** Execute the program to completion ([Halt]).  [fuel] bounds the number
    of GPP-committed instructions; exhausting it — or an LPSU hang with
    degradation disabled — is reported as [Error], never raised. *)
let run ?(fuel = 500_000_000) t : (result, failure) Stdlib.result =
  try
    (try
       let steps = ref 0 in
       while true do
         if !steps > fuel then
           raise (Stuck (Out_of_fuel { pc = t.hart.pc; insns = !steps;
                                       cycle = Gpp_timing.now t.timing }));
         incr steps;
         Exec.step t.pre t.hart t.gpp_mem t.ev;
         let ev = t.ev in
         if Trace.enabled t.trace Insns then
           Trace.event t.trace Insns "[%7d] gpp      %4d: %a"
             (Gpp_timing.now t.timing) ev.pc
             Xloops_isa.Insn.pp_resolved (Exec.event_insn ev);
         Gpp_timing.consume t.timing ev;
         (match Exec.event_insn ev with
          | Xloop (_, _, _, _)
            when t.cfg.Config.lpsu <> None
              && not (Hashtbl.mem t.degraded ev.pc) ->
            if ev.taken then t.stats.iterations <- t.stats.iterations + 1;
            (match t.mode with
             | Traditional -> ()
             | Specialized ->
               if ev.taken then
                 (match analyze t ~pc:ev.pc with
                  | Ok info -> specialize_fully t info
                  | Error _ -> ())
             | Adaptive ->
               (* Both edges matter: taken drives profiling/decisions,
                  fall-through marks the end of a dynamic instance. *)
               adaptive_step t ~pc:ev.pc ev)
          | Xloop _ when ev.taken ->
            t.stats.iterations <- t.stats.iterations + 1
          | _ -> ())
       done
     with Exec.Halted -> ());
    Gpp_timing.barrier t.timing;
    Ok { cycles = Gpp_timing.now t.timing;
         insns = t.stats.committed_insns;
         stats = t.stats }
  with Stuck f -> Error f

let ok_exn = function
  | Ok r -> r
  | Error f -> failwith (Fmt.str "Machine.run: %a" pp_failure f)

(** One-call convenience: build a machine and run [prog] on [mem]. *)
let simulate ?adaptive ?lpsu_fuel ?trace ?faults ?watchdog ?degrade
    ?entry ?fuel ~cfg ~mode prog mem
  : (result, failure) Stdlib.result =
  let t = create ?adaptive ?lpsu_fuel ?trace ?faults ?watchdog ?degrade
      ~cfg ~mode ~prog ~mem ?entry () in
  run ?fuel t
