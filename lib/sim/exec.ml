(** Functional (architectural) executor.

    A single implementation of the ISA semantics shared by every timing
    model: the GPP models execute through it directly, and each LPSU lane
    wraps it with its own register file and a speculative memory interface.
    [step] executes one instruction and fills a caller-owned {!event}
    scratch record describing what happened; timing models consume the
    event stream.

    The hot loop is allocation-free by construction: programs are
    {!Program.predecode}d once (immediates pre-widened, targets resolved,
    widths expanded), the event record is reused across steps, the memory
    interface is built once per machine or lane, and the register file
    holds 32-bit values sign-extended into unboxed native [int]s — ALU
    results never box. *)

open Xloops_isa
module Program = Xloops_asm.Program

exception Halted
exception Trap of string

(* Each register holds the sign extension of its architectural 32-bit
   value into a native int; [norm] re-establishes the invariant after
   arithmetic that can leave bits above position 31. *)
type hart = {
  regs : int array;
  mutable pc : int;
}

let sext_shift = Sys.int_size - 32
let[@inline] norm v = (v lsl sext_shift) asr sext_shift

let create_hart ?(pc = 0) () = { regs = Array.make Reg.num_regs 0; pc }

let copy_hart h = { regs = Array.copy h.regs; pc = h.pc }

(* [set]/[set_int] never write r0, so [regs.(0)] stays 0 and reads need
   no special case. *)
let get h r = Int32.of_int h.regs.(r)

let set h r v = if r <> Reg.zero then h.regs.(r) <- Int32.to_int v

let get_int h r = h.regs.(r)
let set_int h r v = if r <> Reg.zero then h.regs.(r) <- norm v

(** Memory interface: the GPP binds this straight to {!Xloops_mem.Memory};
    a speculative LPSU lane binds it to its LSQ overlay. *)
type mem_iface = {
  load : Insn.width -> int -> int32;
  store : Insn.width -> int -> int32 -> unit;
  amo : Insn.amo_op -> int -> int32 -> int32;
}

let direct_mem (m : Xloops_mem.Memory.t) : mem_iface = {
  load = (fun w a -> Xloops_mem.Memory.load m w a);
  store = (fun w a v -> Xloops_mem.Memory.store m w a v);
  amo = (fun op a v -> Xloops_mem.Memory.amo m op a v);
}

(** What one dynamic instruction did; everything a timing or energy model
    needs to know about it.  Mutable scratch: [step] fills the same record
    in place on every call, so consumers must read the fields they need
    before the next step on the same scratch. *)
type event = {
  mutable prog : Program.t;               (** program [pc] indexes into *)
  mutable pc : int;
  mutable next_pc : int;
  mutable taken : bool;                   (** control transfer taken *)
  mutable mem_addr : int;                 (** -1 if not a memory operation *)
  mutable mem_bytes : int;
  mutable mem_is_store : bool;
  mutable mem_is_amo : bool;
}

(* The executed instruction is identified by [prog]/[pc] rather than
   stored in the event: a pointer field written per step would cost a
   write barrier on every instruction, while [prog] only changes when
   the stepped program does. *)
let[@inline] event_insn (ev : event) : int Insn.t =
  Array.unsafe_get ev.prog.Program.insns ev.pc

let create_event () = {
  prog = { Program.insns = [| Insn.Nop |]; symbols = [] };
  pc = 0; next_pc = 1; taken = false;
  mem_addr = -1; mem_bytes = 0; mem_is_store = false; mem_is_amo = false;
}

(* -- ALU semantics --------------------------------------------------- *)

let u32 v = Int32.logand v 0xFFFFFFFFl

let alu_eval (op : Insn.alu_op) (a : int32) (b : int32) : int32 =
  let sh = Int32.to_int b land 31 in
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | And -> Int32.logand a b
  | Or_ -> Int32.logor a b
  | Xor -> Int32.logxor a b
  | Nor -> Int32.lognot (Int32.logor a b)
  | Sll -> Int32.shift_left a sh
  | Srl -> Int32.shift_right_logical a sh
  | Sra -> Int32.shift_right a sh
  | Slt -> if Int32.compare a b < 0 then 1l else 0l
  | Sltu -> if Int32.unsigned_compare a b < 0 then 1l else 0l
  | Mul -> Int32.mul a b
  | Mulh ->
    let p = Int64.mul (Int64.of_int32 a) (Int64.of_int32 b) in
    Int64.to_int32 (Int64.shift_right p 32)
  | Div ->
    (* RISC-V-style corner cases: x/0 = -1; min_int / -1 = min_int. *)
    if b = 0l then -1l
    else if a = Int32.min_int && b = -1l then Int32.min_int
    else Int32.div a b
  | Rem ->
    if b = 0l then a
    else if a = Int32.min_int && b = -1l then 0l
    else Int32.rem a b

let f32 bits = Int32.float_of_bits bits
let bits_of_f32 f = Int32.bits_of_float f

let fpu_eval (op : Insn.fpu_op) (a : int32) (b : int32) : int32 =
  let fa = f32 a and fb = f32 b in
  match op with
  | Fadd -> bits_of_f32 (fa +. fb)
  | Fsub -> bits_of_f32 (fa -. fb)
  | Fmul -> bits_of_f32 (fa *. fb)
  | Fdiv -> bits_of_f32 (fa /. fb)
  | Fmin -> bits_of_f32 (Float.min fa fb)
  | Fmax -> bits_of_f32 (Float.max fa fb)
  | Feq -> if fa = fb then 1l else 0l
  | Flt -> if fa < fb then 1l else 0l
  | Fle -> if fa <= fb then 1l else 0l
  | Fcvt_sw -> bits_of_f32 (Int32.to_float a)
  | Fcvt_ws -> Int32.of_float (Float.trunc (f32 a))

let branch_eval (c : Insn.branch_cond) (a : int32) (b : int32) =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int32.compare a b < 0
  | Bge -> Int32.compare a b >= 0
  | Bltu -> Int32.unsigned_compare a b < 0
  | Bgeu -> Int32.unsigned_compare a b >= 0

(* -- Unboxed ALU semantics -------------------------------------------- *)

(* The same semantics over sign-extended native ints, used by the hot
   [step] path so ALU results never box.  Operands are assumed
   normalized (the register-file invariant); results are normalized.
   Equivalence with the [int32] versions above is what the
   predecoded-vs-reference property test pins down. *)

let min32 = -0x8000_0000

let alu_eval_int (op : Insn.alu_op) (a : int) (b : int) : int =
  match op with
  | Add -> norm (a + b)
  | Sub -> norm (a - b)
  | And -> a land b
  | Or_ -> a lor b
  | Xor -> a lxor b
  | Nor -> lnot (a lor b)
  (* Shifts/products only need the low 32 bits of the exact result, and
     those survive any native-int overflow wrap. *)
  | Sll -> norm (a lsl (b land 31))
  | Srl -> norm ((a land 0xFFFFFFFF) lsr (b land 31))
  | Sra -> a asr (b land 31)
  | Slt -> if a < b then 1 else 0
  | Sltu -> if a land 0xFFFFFFFF < b land 0xFFFFFFFF then 1 else 0
  | Mul -> norm (a * b)
  | Mulh ->
    (* The full product can overflow a native int (min32 * min32). *)
    Int64.to_int
      (Int64.shift_right (Int64.mul (Int64.of_int a) (Int64.of_int b)) 32)
  | Div ->
    if b = 0 then -1
    else if a = min32 && b = -1 then min32
    else a / b
  | Rem ->
    if b = 0 then a
    else if a = min32 && b = -1 then 0
    else a mod b

(* Allocation-free FP: the [int32] spec above funnels every operand
   through boxed [Int32.t] and a cross-function-boundary call, which
   costs several boxes per FP instruction (the residual bytes/insn the
   sgemm workload used to show).  Staying inside one function lets the
   non-flambda backend's local unboxing eliminate every intermediate
   [Int32]/[float] box: [float_of_bits]/[bits_of_float] are [@@unboxed]
   externals and [Int32.of_int]/[to_int] are primitives, so each arm
   compiles to raw bit moves and FP arithmetic.  Must stay pointwise
   equal to [fpu_eval] (property-tested). *)
let fpu_eval_int (op : Insn.fpu_op) (a : int) (b : int) : int =
  let fa = Int32.float_of_bits (Int32.of_int a) in
  let fb = Int32.float_of_bits (Int32.of_int b) in
  match op with
  | Fadd -> Int32.to_int (Int32.bits_of_float (fa +. fb))
  | Fsub -> Int32.to_int (Int32.bits_of_float (fa -. fb))
  | Fmul -> Int32.to_int (Int32.bits_of_float (fa *. fb))
  | Fdiv -> Int32.to_int (Int32.bits_of_float (fa /. fb))
  | Fmin -> Int32.to_int (Int32.bits_of_float (Float.min fa fb))
  | Fmax -> Int32.to_int (Int32.bits_of_float (Float.max fa fb))
  | Feq -> if fa = fb then 1 else 0
  | Flt -> if fa < fb then 1 else 0
  | Fle -> if fa <= fb then 1 else 0
  | Fcvt_sw -> Int32.to_int (Int32.bits_of_float (Int32.to_float (Int32.of_int a)))
  | Fcvt_ws -> Int32.to_int (Int32.of_float (Float.trunc fa))

let branch_eval_int (c : Insn.branch_cond) (a : int) (b : int) =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> a < b
  | Bge -> a >= b
  | Bltu -> a land 0xFFFFFFFF < b land 0xFFFFFFFF
  | Bgeu -> a land 0xFFFFFFFF >= b land 0xFFFFFFFF

(* -- Single-step ------------------------------------------------------ *)

(* Reset the scratch to the fall-through defaults for the instruction at
   [pc]; arms below only touch the fields that deviate. *)
let reset_event (ev : event) prog pc =
  if ev.prog != prog then ev.prog <- prog;
  ev.pc <- pc;
  ev.next_pc <- pc + 1;
  ev.taken <- false;
  ev.mem_addr <- -1;
  ev.mem_bytes <- 0;
  ev.mem_is_store <- false;
  ev.mem_is_amo <- false

let take (h : hart) (ev : event) target =
  h.pc <- target;
  ev.next_pc <- target;
  ev.taken <- true

(** Execute the predecoded instruction at [h.pc], filling [ev].  Advances
    the hart; raises {!Halted} on [Halt] (with [h.pc] left pointing at the
    halt).

    The [Xloop] instruction here implements its *traditional* semantics —
    a conditional backward branch — which is also the correct
    architectural meaning inside an LPSU lane, where the lane runtime
    intercepts the loop-control decision before calling [step]. *)
let step (p : Program.predecoded) (h : hart) (mem : mem_iface)
    (ev : event) : unit =
  let pc = h.pc in
  let uops = p.Program.uops in
  if pc < 0 || pc >= Array.length uops then
    raise (Trap (Printf.sprintf "pc out of range: %d" pc));
  reset_event ev p.Program.source pc;
  h.pc <- pc + 1;
  let regs = h.regs in
  match Array.unsafe_get uops pc with
  | U_alu (op, rd, rs, rt) ->
    if rd <> 0 then regs.(rd) <- alu_eval_int op regs.(rs) regs.(rt)
  | U_alui (op, rd, rs, imm) ->
    if rd <> 0 then regs.(rd) <- alu_eval_int op regs.(rs) imm
  | U_fpu (op, rd, rs, rt) ->
    if rd <> 0 then regs.(rd) <- fpu_eval_int op regs.(rs) regs.(rt)
  | U_lui (rd, v) -> if rd <> 0 then regs.(rd) <- v
  | U_load (w, rd, rs, imm, bytes) ->
    let addr = regs.(rs) + imm in
    if rd <> 0 then regs.(rd) <- Int32.to_int (mem.load w addr)
    else ignore (mem.load w addr);
    ev.mem_addr <- addr;
    ev.mem_bytes <- bytes
  | U_store (w, rt, rs, imm, bytes) ->
    let addr = regs.(rs) + imm in
    mem.store w addr (Int32.of_int regs.(rt));
    ev.mem_addr <- addr;
    ev.mem_bytes <- bytes;
    ev.mem_is_store <- true
  | U_amo (op, rd, rs, rt) ->
    let addr = regs.(rs) in
    let old = mem.amo op addr (Int32.of_int regs.(rt)) in
    if rd <> 0 then regs.(rd) <- Int32.to_int old;
    ev.mem_addr <- addr;
    ev.mem_bytes <- 4;
    ev.mem_is_store <- true;
    ev.mem_is_amo <- true
  | U_branch (c, rs, rt, l) ->
    if branch_eval_int c regs.(rs) regs.(rt) then take h ev l
  | U_jump l -> take h ev l
  | U_jal (link, l) ->
    regs.(Reg.ra) <- link;
    take h ev l
  | U_jr rs -> take h ev regs.(rs)
  | U_xloop_de (rt, l) ->
    (* rt is the exit flag: loop while clear *)
    if regs.(rt) = 0 then take h ev l
  | U_xloop_cmp (rs, rt, l) ->
    if regs.(rs) < regs.(rt) then take h ev l
  | U_xi_addi (rd, rs, imm) ->
    if rd <> 0 then regs.(rd) <- norm (regs.(rs) + imm)
  | U_xi_add (rd, rs, rt) ->
    if rd <> 0 then regs.(rd) <- norm (regs.(rs) + regs.(rt))
  | U_sync -> ()
  | U_halt ->
    h.pc <- pc;
    raise Halted
  | U_nop -> ()

(** Reference implementation of [step] that decodes the raw instruction
    stream on every call — the original executor, kept as the semantic
    baseline the predecoded path is property-tested against. *)
let step_ref (prog : Program.t) (h : hart) (mem : mem_iface)
    (ev : event) : unit =
  let pc = h.pc in
  if pc < 0 || pc >= Array.length prog.Program.insns then
    raise (Trap (Printf.sprintf "pc out of range: %d" pc));
  let insn = prog.Program.insns.(pc) in
  reset_event ev prog pc;
  h.pc <- pc + 1;
  match insn with
  | Alu (op, rd, rs, rt) -> set h rd (alu_eval op (get h rs) (get h rt))
  | Alui (op, rd, rs, imm) -> set h rd (alu_eval op (get h rs) (Int32.of_int imm))
  | Fpu (op, rd, rs, rt) -> set h rd (fpu_eval op (get h rs) (get h rt))
  | Lui (rd, imm) -> set h rd (u32 (Int32.shift_left (Int32.of_int imm) 16))
  | Load (w, rd, rs, imm) ->
    let addr = get_int h rs + imm in
    set h rd (mem.load w addr);
    ev.mem_addr <- addr;
    ev.mem_bytes <- Insn.width_bytes w
  | Store (w, rt, rs, imm) ->
    let addr = get_int h rs + imm in
    mem.store w addr (get h rt);
    ev.mem_addr <- addr;
    ev.mem_bytes <- Insn.width_bytes w;
    ev.mem_is_store <- true
  | Amo (op, rd, rs, rt) ->
    let addr = get_int h rs in
    let old = mem.amo op addr (get h rt) in
    set h rd old;
    ev.mem_addr <- addr;
    ev.mem_bytes <- 4;
    ev.mem_is_store <- true;
    ev.mem_is_amo <- true
  | Branch (c, rs, rt, l) ->
    if branch_eval c (get h rs) (get h rt) then take h ev l
  | Jump l -> take h ev l
  | Jal l ->
    set h Reg.ra (Int32.of_int (pc + 1));
    take h ev l
  | Jr rs -> take h ev (get_int h rs)
  | Xloop ({ cp; _ }, rs, rt, l) ->
    let continue_loop =
      match cp with
      | De -> get h rt = 0l   (* rt is the exit flag: loop while clear *)
      | Fixed | Dyn -> Int32.compare (get h rs) (get h rt) < 0
    in
    if continue_loop then take h ev l
  | Xi_addi (rd, rs, imm) -> set h rd (Int32.add (get h rs) (Int32.of_int imm))
  | Xi_add (rd, rs, rt) -> set h rd (Int32.add (get h rs) (get h rt))
  | Sync -> ()
  | Halt ->
    h.pc <- pc;
    raise Halted
  | Nop -> ()

(* -- Whole-program functional run ------------------------------------- *)

type run = {
  dynamic_insns : int;
  final : hart;
}

type stop = Out_of_fuel of { pc : int; insns : int; cycle : int }

let pp_stop ppf (Out_of_fuel { pc; insns; cycle }) =
  Fmt.pf ppf "out of fuel at pc %d after %d instructions (cycle %d)"
    pc insns cycle

(** Run the program serially from [entry] until [Halt]; the reference
    execution used for correctness checks and for the paper's
    dynamic-instruction-count columns.  [fuel] bounds runaway programs:
    exhausting it is a structured [Error], not an exception, so callers
    report instead of crash. *)
let run_serial ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Xloops_mem.Memory.t) : (run, stop) result =
  let pre = Program.predecode prog in
  let h = create_hart ~pc:entry () in
  let mem = direct_mem m in
  let ev = create_event () in
  let count = ref 0 in
  try
    while !count < fuel do
      step pre h mem ev;
      incr count
    done;
    (* The functional model retires one instruction per step, so the
       instruction count doubles as its cycle count. *)
    Error (Out_of_fuel { pc = h.pc; insns = !count; cycle = !count })
  with Halted -> Ok { dynamic_insns = !count; final = h }

(** [run_serial] through {!step_ref}: same contract, original decode
    path.  Exists so the property tests can diff the two executors. *)
let run_serial_ref ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Xloops_mem.Memory.t) : (run, stop) result =
  let h = create_hart ~pc:entry () in
  let mem = direct_mem m in
  let ev = create_event () in
  let count = ref 0 in
  try
    while !count < fuel do
      step_ref prog h mem ev;
      incr count
    done;
    Error (Out_of_fuel { pc = h.pc; insns = !count; cycle = !count })
  with Halted -> Ok { dynamic_insns = !count; final = h }
