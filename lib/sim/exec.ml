(** Functional (architectural) executor.

    A single implementation of the ISA semantics shared by every timing
    model: the GPP models execute through it directly, and each LPSU lane
    wraps it with its own register file and a speculative memory interface.
    [step] executes one instruction and reports a {!event} describing what
    happened; timing models consume the event stream. *)

open Xloops_isa
module Program = Xloops_asm.Program

exception Halted
exception Trap of string

type hart = {
  regs : int32 array;
  mutable pc : int;
}

let create_hart ?(pc = 0) () = { regs = Array.make Reg.num_regs 0l; pc }

let copy_hart h = { regs = Array.copy h.regs; pc = h.pc }

let get h r = if r = Reg.zero then 0l else h.regs.(r)

let set h r v = if r <> Reg.zero then h.regs.(r) <- v

let get_int h r = Int32.to_int (get h r)
let set_int h r v = set h r (Int32.of_int v)

(** Memory interface: the GPP binds this straight to {!Xloops_mem.Memory};
    a speculative LPSU lane binds it to its LSQ overlay. *)
type mem_iface = {
  load : Insn.width -> int -> int32;
  store : Insn.width -> int -> int32 -> unit;
  amo : Insn.amo_op -> int -> int32 -> int32;
}

let direct_mem (m : Xloops_mem.Memory.t) : mem_iface = {
  load = (fun w a -> Xloops_mem.Memory.load m w a);
  store = (fun w a v -> Xloops_mem.Memory.store m w a v);
  amo = (fun op a v -> Xloops_mem.Memory.amo m op a v);
}

(** What one dynamic instruction did; everything a timing or energy model
    needs to know about it. *)
type event = {
  insn : int Insn.t;
  pc : int;
  next_pc : int;
  taken : bool;                   (** control transfer taken *)
  mem_addr : int;                 (** -1 if not a memory operation *)
  mem_bytes : int;
  mem_is_store : bool;
  mem_is_amo : bool;
}

let plain insn pc = {
  insn; pc; next_pc = pc + 1; taken = false;
  mem_addr = -1; mem_bytes = 0; mem_is_store = false; mem_is_amo = false;
}

(* -- ALU semantics --------------------------------------------------- *)

let u32 v = Int32.logand v 0xFFFFFFFFl

let alu_eval (op : Insn.alu_op) (a : int32) (b : int32) : int32 =
  let sh = Int32.to_int b land 31 in
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | And -> Int32.logand a b
  | Or_ -> Int32.logor a b
  | Xor -> Int32.logxor a b
  | Nor -> Int32.lognot (Int32.logor a b)
  | Sll -> Int32.shift_left a sh
  | Srl -> Int32.shift_right_logical a sh
  | Sra -> Int32.shift_right a sh
  | Slt -> if Int32.compare a b < 0 then 1l else 0l
  | Sltu -> if Int32.unsigned_compare a b < 0 then 1l else 0l
  | Mul -> Int32.mul a b
  | Mulh ->
    let p = Int64.mul (Int64.of_int32 a) (Int64.of_int32 b) in
    Int64.to_int32 (Int64.shift_right p 32)
  | Div ->
    (* RISC-V-style corner cases: x/0 = -1; min_int / -1 = min_int. *)
    if b = 0l then -1l
    else if a = Int32.min_int && b = -1l then Int32.min_int
    else Int32.div a b
  | Rem ->
    if b = 0l then a
    else if a = Int32.min_int && b = -1l then 0l
    else Int32.rem a b

let f32 bits = Int32.float_of_bits bits
let bits_of_f32 f = Int32.bits_of_float f

let fpu_eval (op : Insn.fpu_op) (a : int32) (b : int32) : int32 =
  let fa = f32 a and fb = f32 b in
  match op with
  | Fadd -> bits_of_f32 (fa +. fb)
  | Fsub -> bits_of_f32 (fa -. fb)
  | Fmul -> bits_of_f32 (fa *. fb)
  | Fdiv -> bits_of_f32 (fa /. fb)
  | Fmin -> bits_of_f32 (Float.min fa fb)
  | Fmax -> bits_of_f32 (Float.max fa fb)
  | Feq -> if fa = fb then 1l else 0l
  | Flt -> if fa < fb then 1l else 0l
  | Fle -> if fa <= fb then 1l else 0l
  | Fcvt_sw -> bits_of_f32 (Int32.to_float a)
  | Fcvt_ws -> Int32.of_float (Float.trunc (f32 a))

let branch_eval (c : Insn.branch_cond) (a : int32) (b : int32) =
  match c with
  | Beq -> a = b
  | Bne -> a <> b
  | Blt -> Int32.compare a b < 0
  | Bge -> Int32.compare a b >= 0
  | Bltu -> Int32.unsigned_compare a b < 0
  | Bgeu -> Int32.unsigned_compare a b >= 0

(* -- Single-step ------------------------------------------------------ *)

(** Execute the instruction at [h.pc].  Advances the hart; raises {!Halted}
    on [Halt] (with [h.pc] left pointing at the halt).

    The [Xloop] instruction here implements its *traditional* semantics —
    a conditional backward branch — which is also the correct
    architectural meaning inside an LPSU lane, where the lane runtime
    intercepts the loop-control decision before calling [step]. *)
let step (prog : Program.t) (h : hart) (mem : mem_iface) : event =
  let pc = h.pc in
  if pc < 0 || pc >= Array.length prog.Program.insns then
    raise (Trap (Printf.sprintf "pc out of range: %d" pc));
  let insn = prog.Program.insns.(pc) in
  let ev = plain insn pc in
  let finish ?(next = pc + 1) ?(taken = false) ev =
    h.pc <- next;
    { ev with next_pc = next; taken }
  in
  match insn with
  | Alu (op, rd, rs, rt) ->
    set h rd (alu_eval op (get h rs) (get h rt));
    finish ev
  | Alui (op, rd, rs, imm) ->
    set h rd (alu_eval op (get h rs) (Int32.of_int imm));
    finish ev
  | Fpu (op, rd, rs, rt) ->
    set h rd (fpu_eval op (get h rs) (get h rt));
    finish ev
  | Lui (rd, imm) ->
    set h rd (u32 (Int32.shift_left (Int32.of_int imm) 16));
    finish ev
  | Load (w, rd, rs, imm) ->
    let addr = get_int h rs + imm in
    set h rd (mem.load w addr);
    finish { ev with mem_addr = addr;
                     mem_bytes = Xloops_mem.Memory.width_bytes w }
  | Store (w, rt, rs, imm) ->
    let addr = get_int h rs + imm in
    mem.store w addr (get h rt);
    finish { ev with mem_addr = addr;
                     mem_bytes = Xloops_mem.Memory.width_bytes w;
                     mem_is_store = true }
  | Amo (op, rd, rs, rt) ->
    let addr = get_int h rs in
    let old = mem.amo op addr (get h rt) in
    set h rd old;
    finish { ev with mem_addr = addr; mem_bytes = 4;
                     mem_is_store = true; mem_is_amo = true }
  | Branch (c, rs, rt, l) ->
    if branch_eval c (get h rs) (get h rt)
    then finish ~next:l ~taken:true ev
    else finish ev
  | Jump l -> finish ~next:l ~taken:true ev
  | Jal l ->
    set h Reg.ra (Int32.of_int (pc + 1));
    finish ~next:l ~taken:true ev
  | Jr rs -> finish ~next:(get_int h rs) ~taken:true ev
  | Xloop ({ cp; _ }, rs, rt, l) ->
    let continue_loop =
      match cp with
      | De -> get h rt = 0l   (* rt is the exit flag: loop while clear *)
      | Fixed | Dyn -> Int32.compare (get h rs) (get h rt) < 0
    in
    if continue_loop then finish ~next:l ~taken:true ev else finish ev
  | Xi_addi (rd, rs, imm) ->
    set h rd (Int32.add (get h rs) (Int32.of_int imm));
    finish ev
  | Xi_add (rd, rs, rt) ->
    set h rd (Int32.add (get h rs) (get h rt));
    finish ev
  | Sync -> finish ev
  | Halt -> raise Halted
  | Nop -> finish ev

(* -- Whole-program functional run ------------------------------------- *)

type run = {
  dynamic_insns : int;
  final : hart;
}

type stop = Out_of_fuel of { pc : int; insns : int; cycle : int }

let pp_stop ppf (Out_of_fuel { pc; insns; cycle }) =
  Fmt.pf ppf "out of fuel at pc %d after %d instructions (cycle %d)"
    pc insns cycle

(** Run the program serially from [entry] until [Halt]; the reference
    execution used for correctness checks and for the paper's
    dynamic-instruction-count columns.  [fuel] bounds runaway programs:
    exhausting it is a structured [Error], not an exception, so callers
    report instead of crash. *)
let run_serial ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Xloops_mem.Memory.t) : (run, stop) result =
  let h = create_hart ~pc:entry () in
  let mem = direct_mem m in
  let count = ref 0 in
  try
    while !count < fuel do
      ignore (step prog h mem);
      incr count
    done;
    (* The functional model retires one instruction per step, so the
       instruction count doubles as its cycle count. *)
    Error (Out_of_fuel { pc = h.pc; insns = !count; cycle = !count })
  with Halted -> Ok { dynamic_insns = !count; final = h }
