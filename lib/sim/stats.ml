(** Microarchitectural event counters.

    Every timing model (in-order GPP, out-of-order GPP, LPSU) accumulates
    events into one of these records.  The energy model
    ({!Xloops_energy.Model}) turns event counts into joules the way McPAT
    does — this is the interface between performance and energy modelling
    that Section IV-A of the paper describes. *)

type t = {
  (* Work *)
  mutable committed_insns : int;   (** architecturally committed *)
  mutable squashed_insns : int;    (** executed then thrown away *)
  mutable iterations : int;        (** xloop iterations executed *)
  (* Front end *)
  mutable icache_fetches : int;    (** instruction fetches from the L1I *)
  mutable ib_fetches : int;        (** fetches from an LPSU instr buffer *)
  mutable decodes : int;
  mutable renames : int;           (** OOO rename events; LPSU scan renames *)
  mutable rob_ops : int;           (** ROB allocate+commit pairs *)
  mutable iq_ops : int;            (** issue-queue wakeup/select events *)
  (* Register file *)
  mutable rf_reads : int;
  mutable rf_writes : int;
  (* Execute *)
  mutable alu_ops : int;
  mutable mul_ops : int;
  mutable div_ops : int;
  mutable fpu_ops : int;
  mutable xi_ops : int;            (** MIV computations via the MIVT *)
  mutable branches : int;
  mutable mispredicts : int;
  (* Memory *)
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable icache_misses : int;
  mutable amo_ops : int;
  mutable lsq_searches : int;      (** LSQ CAM searches *)
  mutable lsq_writes : int;        (** LSQ entry allocations *)
  mutable store_broadcasts : int;  (** violation-check broadcasts *)
  mutable lsq_forwards : int;      (** inter-lane store-to-load forwards *)
  mutable violations : int;        (** memory dependence violations *)
  (* LPSU specific *)
  mutable scan_insns : int;        (** instructions written to instr buffers *)
  mutable cib_reads : int;
  mutable cib_writes : int;
  mutable idq_ops : int;
  mutable xloops_specialized : int;(** dynamic xloops run on the LPSU *)
  mutable xloops_traditional : int;(** dynamic xloops run on the GPP *)
  mutable migrations : int;        (** adaptive GPP<->LPSU migrations *)
  (* Robustness: fault injection, watchdog, graceful degradation *)
  mutable faults_injected : int;   (** transient faults applied by a plan *)
  mutable watchdog_hangs : int;    (** structured hangs the watchdog caught *)
  mutable degradations : int;      (** specialized loops rolled back and
                                       re-executed traditionally *)
  (* Evaluation-engine bookkeeping: how this run was obtained *)
  mutable wall_ns : int;           (** wall-clock of the producing simulation *)
  mutable cache_hits : int;        (** 1 if served from the result cache *)
  mutable cache_misses : int;      (** 1 if simulated because of a cache miss *)
  (* LPSU per-lane cycle breakdown (Figure 6) *)
  mutable cyc_exec : int;
  mutable cyc_stall_raw : int;
  mutable cyc_stall_mem : int;
  mutable cyc_stall_llfu : int;
  mutable cyc_stall_cir : int;
  mutable cyc_stall_lsq : int;
  mutable cyc_squash : int;
  mutable cyc_idle : int;
}

let create () = {
  committed_insns = 0; squashed_insns = 0; iterations = 0;
  icache_fetches = 0; ib_fetches = 0; decodes = 0; renames = 0;
  rob_ops = 0; iq_ops = 0;
  rf_reads = 0; rf_writes = 0;
  alu_ops = 0; mul_ops = 0; div_ops = 0; fpu_ops = 0; xi_ops = 0;
  branches = 0; mispredicts = 0;
  dcache_accesses = 0; dcache_misses = 0; icache_misses = 0;
  amo_ops = 0; lsq_searches = 0; lsq_writes = 0;
  store_broadcasts = 0; lsq_forwards = 0; violations = 0;
  scan_insns = 0; cib_reads = 0; cib_writes = 0; idq_ops = 0;
  xloops_specialized = 0; xloops_traditional = 0; migrations = 0;
  faults_injected = 0; watchdog_hangs = 0; degradations = 0;
  wall_ns = 0; cache_hits = 0; cache_misses = 0;
  cyc_exec = 0; cyc_stall_raw = 0; cyc_stall_mem = 0; cyc_stall_llfu = 0;
  cyc_stall_cir = 0; cyc_stall_lsq = 0; cyc_squash = 0; cyc_idle = 0;
}

(** [merge ~into src] adds every counter of [src] into [into]. *)
let merge ~into (s : t) =
  into.committed_insns <- into.committed_insns + s.committed_insns;
  into.squashed_insns <- into.squashed_insns + s.squashed_insns;
  into.iterations <- into.iterations + s.iterations;
  into.icache_fetches <- into.icache_fetches + s.icache_fetches;
  into.ib_fetches <- into.ib_fetches + s.ib_fetches;
  into.decodes <- into.decodes + s.decodes;
  into.renames <- into.renames + s.renames;
  into.rob_ops <- into.rob_ops + s.rob_ops;
  into.iq_ops <- into.iq_ops + s.iq_ops;
  into.rf_reads <- into.rf_reads + s.rf_reads;
  into.rf_writes <- into.rf_writes + s.rf_writes;
  into.alu_ops <- into.alu_ops + s.alu_ops;
  into.mul_ops <- into.mul_ops + s.mul_ops;
  into.div_ops <- into.div_ops + s.div_ops;
  into.fpu_ops <- into.fpu_ops + s.fpu_ops;
  into.xi_ops <- into.xi_ops + s.xi_ops;
  into.branches <- into.branches + s.branches;
  into.mispredicts <- into.mispredicts + s.mispredicts;
  into.dcache_accesses <- into.dcache_accesses + s.dcache_accesses;
  into.dcache_misses <- into.dcache_misses + s.dcache_misses;
  into.icache_misses <- into.icache_misses + s.icache_misses;
  into.amo_ops <- into.amo_ops + s.amo_ops;
  into.lsq_searches <- into.lsq_searches + s.lsq_searches;
  into.lsq_writes <- into.lsq_writes + s.lsq_writes;
  into.store_broadcasts <- into.store_broadcasts + s.store_broadcasts;
  into.lsq_forwards <- into.lsq_forwards + s.lsq_forwards;
  into.violations <- into.violations + s.violations;
  into.scan_insns <- into.scan_insns + s.scan_insns;
  into.cib_reads <- into.cib_reads + s.cib_reads;
  into.cib_writes <- into.cib_writes + s.cib_writes;
  into.idq_ops <- into.idq_ops + s.idq_ops;
  into.xloops_specialized <- into.xloops_specialized + s.xloops_specialized;
  into.xloops_traditional <- into.xloops_traditional + s.xloops_traditional;
  into.migrations <- into.migrations + s.migrations;
  into.faults_injected <- into.faults_injected + s.faults_injected;
  into.watchdog_hangs <- into.watchdog_hangs + s.watchdog_hangs;
  into.degradations <- into.degradations + s.degradations;
  into.wall_ns <- into.wall_ns + s.wall_ns;
  into.cache_hits <- into.cache_hits + s.cache_hits;
  into.cache_misses <- into.cache_misses + s.cache_misses;
  into.cyc_exec <- into.cyc_exec + s.cyc_exec;
  into.cyc_stall_raw <- into.cyc_stall_raw + s.cyc_stall_raw;
  into.cyc_stall_mem <- into.cyc_stall_mem + s.cyc_stall_mem;
  into.cyc_stall_llfu <- into.cyc_stall_llfu + s.cyc_stall_llfu;
  into.cyc_stall_cir <- into.cyc_stall_cir + s.cyc_stall_cir;
  into.cyc_stall_lsq <- into.cyc_stall_lsq + s.cyc_stall_lsq;
  into.cyc_squash <- into.cyc_squash + s.cyc_squash;
  into.cyc_idle <- into.cyc_idle + s.cyc_idle

(** Lane-cycle breakdown as fractions of total lane cycles, in the order
    the paper's Figure 6 stacks them. *)
let lane_breakdown (s : t) =
  let total =
    s.cyc_exec + s.cyc_stall_raw + s.cyc_stall_mem + s.cyc_stall_llfu
    + s.cyc_stall_cir + s.cyc_stall_lsq + s.cyc_squash + s.cyc_idle
  in
  let f v = if total = 0 then 0.0 else float_of_int v /. float_of_int total in
  [ ("exec", f s.cyc_exec);
    ("raw", f s.cyc_stall_raw);
    ("mem", f s.cyc_stall_mem);
    ("llfu", f s.cyc_stall_llfu);
    ("cir", f s.cyc_stall_cir);
    ("lsq", f s.cyc_stall_lsq);
    ("squash", f s.cyc_squash);
    ("idle", f s.cyc_idle) ]

let pp ppf s =
  Fmt.pf ppf
    "@[<v>insns: %d (+%d squashed)  iters: %d@,\
     fetch: ic=%d ib=%d  rf: %dr/%dw@,\
     exec: alu=%d mul=%d div=%d fpu=%d xi=%d br=%d (misp=%d)@,\
     mem: d$=%d (miss=%d) amo=%d lsq=%ds/%dw viol=%d@,\
     lpsu: scan=%d cib=%dr/%dw idq=%d spec=%d trad=%d migr=%d@,\
     robust: faults=%d hangs=%d degraded=%d@]"
    s.committed_insns s.squashed_insns s.iterations
    s.icache_fetches s.ib_fetches s.rf_reads s.rf_writes
    s.alu_ops s.mul_ops s.div_ops s.fpu_ops s.xi_ops s.branches
    s.mispredicts s.dcache_accesses s.dcache_misses s.amo_ops
    s.lsq_searches s.lsq_writes s.violations
    s.scan_insns s.cib_reads s.cib_writes s.idq_ops
    s.xloops_specialized s.xloops_traditional s.migrations
    s.faults_injected s.watchdog_hangs s.degradations
