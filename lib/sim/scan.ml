(** Scan-phase static analysis of an [xloop] body (Section II-D).

    When the GPP reaches an [xloop] instruction it scans the loop body —
    the static instruction sequence between the label [L] and the [xloop] —
    into the LPSU, renaming registers and building three structures:

    - the {b MIVT} (mutual-induction-variable table) from the [.xi]
      instructions: (register, loop-invariant increment) pairs;
    - the {b CIR set} for [xloop.{or,orm}]: registers that are read before
      they are written, discovered with two bit-vectors in one static pass
      over the body, plus the largest PC that writes each CIR (the
      "last CIR write" bit);
    - the loop-index step, taken from the index register's MIVT entry or a
      plain immediate add.

    The same analysis decides whether the LPSU can specialize the loop at
    all ([fallback] lists the reasons it cannot). *)

open Xloops_isa
module Program = Xloops_asm.Program

type miv = {
  m_reg : Reg.t;
  m_inc : int32;   (** per-iteration increment (resolved at scan time) *)
}

type cir = {
  c_reg : Reg.t;
  c_last_write_pc : int;  (** -1 if the CIR is never written in the body *)
}

type fallback_reason =
  | Body_too_large of int
  | Pattern_unsupported of Insn.dpattern
  | Has_call                  (** jal/jalr in body: lanes have no link stack *)
  | Bad_index_step            (** non-positive or undiscoverable step *)
  | Malformed_body            (** label does not precede the xloop *)

let pp_fallback ppf = function
  | Body_too_large n -> Fmt.pf ppf "body too large (%d insns)" n
  | Pattern_unsupported p ->
    Fmt.pf ppf "pattern %s unsupported" (Insn.show_dpattern p)
  | Has_call -> Fmt.string ppf "body contains a call"
  | Bad_index_step -> Fmt.string ppf "bad index step"
  | Malformed_body -> Fmt.string ppf "malformed body"

type t = {
  xloop_pc : int;
  body_start : int;
  body_len : int;
  pat : Insn.xpat;
  r_idx : Reg.t;
  r_bound : Reg.t;
  idx_step : int32;
  mivs : miv list;        (** excludes the index register itself *)
  cirs : cir list;        (** empty unless pattern is or/orm *)
}

let has_cirs (pat : Insn.xpat) =
  match pat.dp with Or | Orm -> true | Uc | Om | Ua -> false

let is_speculative_pattern (pat : Insn.xpat) =
  (* A data-dependent exit is control speculation: iterations beyond the
     exit must leave no trace, so every .de loop buffers its stores. *)
  pat.cp = De
  || (match pat.dp with Om | Orm | Ua -> true | Uc | Or -> false)

(** [analyze prog ~xloop_pc ~regs ~lpsu] inspects the xloop at [xloop_pc].
    [regs] is the GPP register file at scan time, needed to resolve the
    loop-invariant increment of [addu.xi].  Returns [Error] with the
    fallback reason when the LPSU cannot run this loop specialized. *)
let analyze (prog : Program.t) ~xloop_pc ~(regs : int array)
    ~(lpsu : Config.lpsu) : (t, fallback_reason) result =
  let insns = prog.Program.insns in
  match insns.(xloop_pc) with
  | Xloop (pat, r_idx, r_bound, body_start) ->
    if body_start >= xloop_pc then Error Malformed_body
    else begin
      let body_len = xloop_pc - body_start in
      if body_len > lpsu.ib_entries then Error (Body_too_large body_len)
      else if not (List.mem pat.dp lpsu.supported) then
        Error (Pattern_unsupported pat.dp)
      else begin
        (* One static pass: MIVT, read-first/written bit-vectors,
           last-write PCs, calls. *)
        let read_first = Array.make Reg.num_regs false in
        let written = Array.make Reg.num_regs false in
        let last_write = Array.make Reg.num_regs (-1) in
        let miv_inc = Array.make Reg.num_regs 0l in
        let miv_clean = Array.make Reg.num_regs true in
        (* [miv_clean.(r)]: r is written only by .xi instructions of the
           form rd = rs = r. *)
        let has_call = ref false in
        for pc = body_start to xloop_pc - 1 do
          let i = insns.(pc) in
          (match i with
           | Jal _ | Jr _ -> has_call := true
           | _ -> ());
          List.iter
            (fun r -> if not written.(r) then read_first.(r) <- true)
            (Insn.sources i);
          (match i with
           | Xi_addi (rd, rs, imm) when rd = rs ->
             miv_inc.(rd) <- Int32.add miv_inc.(rd) (Int32.of_int imm)
           | Xi_add (rd, rs, rt) when rd = rs ->
             miv_inc.(rd) <- Int32.add miv_inc.(rd) (Int32.of_int regs.(rt))
           | _ ->
             (match Insn.dest i with
              | Some rd -> miv_clean.(rd) <- false
              | None -> ()));
          (match Insn.dest i with
           | Some rd ->
             written.(rd) <- true;
             last_write.(rd) <- pc
           | None -> ())
        done;
        if !has_call then Error Has_call
        else begin
          (* Index step: the index register's MIVT entry, or a plain
             self-increment [addi r_idx, r_idx, imm]. *)
          let idx_step =
            if written.(r_idx) && miv_clean.(r_idx)
            && miv_inc.(r_idx) <> 0l then miv_inc.(r_idx)
            else begin
              let step = ref 0l in
              for pc = body_start to xloop_pc - 1 do
                match insns.(pc) with
                | Alui (Add, rd, rs, imm) when rd = r_idx && rs = r_idx ->
                  step := Int32.add !step (Int32.of_int imm)
                | Xi_addi (rd, rs, imm) when rd = r_idx && rs = r_idx ->
                  step := Int32.add !step (Int32.of_int imm)
                | _ -> ()
              done;
              !step
            end
          in
          if Int32.compare idx_step 0l <= 0 then Error Bad_index_step
          else begin
            let mivs = ref [] in
            for r = Reg.num_regs - 1 downto 0 do
              if r <> r_idx && r <> Reg.zero && written.(r)
              && miv_clean.(r) && miv_inc.(r) <> 0l then
                mivs := { m_reg = r; m_inc = miv_inc.(r) } :: !mivs
            done;
            let cirs =
              if not (has_cirs pat) then []
              else begin
                (* A last-CIR-write instruction inside an inner loop of the
                   body can execute more than once per iteration; forwarding
                   on each execution would expose non-final values to the
                   next iteration, so such CIRs forward only via the
                   end-of-iteration copy (last-write bit unset). *)
                let in_backward_range pc =
                  let hit = ref false in
                  for bpc = body_start to xloop_pc - 1 do
                    match insns.(bpc) with
                    | Insn.Branch (_, _, _, target)
                    | Insn.Jump target
                    | Insn.Xloop (_, _, _, target)
                      when target <= bpc && target > body_start ->
                      if pc >= target && pc <= bpc then hit := true
                    | _ -> ()
                  done;
                  !hit
                in
                let acc = ref [] in
                for r = Reg.num_regs - 1 downto 1 do
                  let is_miv =
                    List.exists (fun m -> m.m_reg = r) !mivs in
                  if r <> r_idx && r <> r_bound && not is_miv
                  && read_first.(r) && written.(r) then begin
                    let lw =
                      if in_backward_range last_write.(r) then -1
                      else last_write.(r)
                    in
                    acc := { c_reg = r; c_last_write_pc = lw } :: !acc
                  end
                done;
                !acc
              end
            in
            Ok { xloop_pc; body_start; body_len; pat; r_idx; r_bound;
                 idx_step; mivs = !mivs; cirs }
          end
        end
      end
    end
  | _ -> invalid_arg "Scan.analyze: not an xloop"
