(** Direct-threaded execution tier.

    The predecoded tier ({!Exec.step}) still pays, per dynamic
    instruction, an 18-arm match on the micro-op, the event-scratch
    reset, and the per-step calling convention.  This tier compiles each
    {!Program.predecoded} once into an array of closures — one per
    static instruction, specialized at compile time to its operands — so
    the driver loop is a single indirect call per dispatch and no event
    record exists at all.

    On top of the single-op closures, adjacent pairs selected by the
    {!Xloops_isa.Insn.fusible_head}/[fusible_tail] predicates fuse into
    *superop* closures that execute both micro-ops in one dispatch:
    compare+branch, address-gen+load/store, and the [.xi]
    add+index-bump idioms the static pair profiler (bench/micro
    [--profile-pairs]) shows dominate the kernel registry.  Fusion is
    purely local: the slot after a fused head keeps its own single-op
    closure, so a jump into the middle of a pair needs no target
    analysis — it simply dispatches the unfused second op.

    Because no event is produced, this tier serves only observer-free
    functional runs ({!run_serial} consumers such as
    [Kernel.dynamic_insns] and the bench harness).  Anything that
    watches per-instruction events — GPP timing, the LPSU lanes,
    tracing, the watchdog, fault injection — stays on {!Exec.step}. *)

open Xloops_isa
module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory
module P = Program

type state = {
  regs : int array;
  mem : Memory.t;
  mutable pc : int;
  mutable retired : int;
}

type op = state -> unit

type compiled = {
  pre : Program.predecoded;
  ops : op array;   (** single-op closures, parallel to the uops *)
  sup : op array;   (** [ops] with fused heads replaced by superops *)
  rules : (int * string) list;
      (** superop head pcs (ascending) and their rule names *)
}

let sext_shift = Sys.int_size - 32
let[@inline] norm v = (v lsl sext_shift) asr sext_shift
let[@inline] g (r : int array) i = Array.unsafe_get r i
let[@inline] s (r : int array) i v = Array.unsafe_set r i v

(* Compile-time validation: closures index the register file unsafely,
   so every register specifier must be proven in range first.  Micro-ops
   that fail (only reachable through hand-built [Program.t] values with
   corrupt specifiers) fall back to [safe_op] below, which reproduces
   {!Exec.step}'s bounds-checked behavior exactly — including the
   [Invalid_argument] it raises when executed. *)
let uop_valid (u : P.uop) =
  let ok r = r >= 0 && r < Reg.num_regs in
  match u with
  | P.U_alu (_, rd, rs, rt) | U_fpu (_, rd, rs, rt)
  | U_xi_add (rd, rs, rt) | U_amo (_, rd, rs, rt) -> ok rd && ok rs && ok rt
  | U_alui (_, rd, rs, _) | U_xi_addi (rd, rs, _) -> ok rd && ok rs
  | U_lui (rd, _) -> ok rd
  | U_load (_, rd, rs, _, _) -> ok rd && ok rs
  | U_store (_, rt, rs, _, _) -> ok rt && ok rs
  | U_branch (_, rs, rt, _) | U_xloop_cmp (rs, rt, _) -> ok rs && ok rt
  | U_jr rs -> ok rs
  | U_xloop_de (rt, _) -> ok rt
  | U_jump _ | U_jal _ | U_sync | U_halt | U_nop -> true

(* Mirrors {!Exec.step} arm for arm with safe (bounds-checked) register
   indexing; pc advances before the body and the retired count bumps
   after, so an escaping exception leaves the same partial state as a
   failed [step]. *)
let safe_op (u : P.uop) pc : op = fun st ->
  let regs = st.regs in
  st.pc <- pc + 1;
  (match u with
   | P.U_alu (op, rd, rs, rt) ->
     if rd <> 0 then regs.(rd) <- Exec.alu_eval_int op regs.(rs) regs.(rt)
   | U_alui (op, rd, rs, imm) ->
     if rd <> 0 then regs.(rd) <- Exec.alu_eval_int op regs.(rs) imm
   | U_fpu (op, rd, rs, rt) ->
     if rd <> 0 then regs.(rd) <- Exec.fpu_eval_int op regs.(rs) regs.(rt)
   | U_lui (rd, v) -> if rd <> 0 then regs.(rd) <- v
   | U_load (w, rd, rs, imm, _) ->
     let v = Memory.load_int st.mem w (regs.(rs) + imm) in
     if rd <> 0 then regs.(rd) <- v
   | U_store (w, rt, rs, imm, _) ->
     Memory.store_int st.mem w (regs.(rs) + imm) regs.(rt)
   | U_amo (op, rd, rs, rt) ->
     let old = Memory.amo_int st.mem op regs.(rs) regs.(rt) in
     if rd <> 0 then regs.(rd) <- old
   | U_branch (c, rs, rt, l) ->
     if Exec.branch_eval_int c regs.(rs) regs.(rt) then st.pc <- l
   | U_jump l -> st.pc <- l
   | U_jal (link, l) -> regs.(Reg.ra) <- link; st.pc <- l
   | U_jr rs -> st.pc <- regs.(rs)
   | U_xloop_de (rt, l) -> if regs.(rt) = 0 then st.pc <- l
   | U_xloop_cmp (rs, rt, l) -> if regs.(rs) < regs.(rt) then st.pc <- l
   | U_xi_addi (rd, rs, imm) ->
     if rd <> 0 then regs.(rd) <- norm (regs.(rs) + imm)
   | U_xi_add (rd, rs, rt) ->
     if rd <> 0 then regs.(rd) <- norm (regs.(rs) + regs.(rt))
   | U_sync | U_nop -> ()
   | U_halt -> st.pc <- pc; raise Exec.Halted);
  st.retired <- st.retired + 1

(* -- Single-op closures ------------------------------------------------ *)

(* One closure per static instruction, all operand decisions folded at
   compile time: the common ALU/branch operators get a dedicated closure
   body; rare operators (mulh/div/rem, all FP) capture the operator and
   call the shared evaluator.  Writes to r0 compile to an advance-only
   closure, matching [step]'s dropped-write semantics. *)

let retire1 nx : op = fun st ->
  st.pc <- nx;
  st.retired <- st.retired + 1

let fast_op (u : P.uop) pc : op =
  let nx = pc + 1 in
  match u with
  | P.U_alu (op, rd, rs, rt) ->
    if rd = 0 then retire1 nx
    else begin
      match op with
      | Insn.Add -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs + g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
      | Sub -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs - g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
      | And -> fun st ->
        let r = st.regs in
        s r rd (g r rs land g r rt);
        st.pc <- nx; st.retired <- st.retired + 1
      | Or_ -> fun st ->
        let r = st.regs in
        s r rd (g r rs lor g r rt);
        st.pc <- nx; st.retired <- st.retired + 1
      | Xor -> fun st ->
        let r = st.regs in
        s r rd (g r rs lxor g r rt);
        st.pc <- nx; st.retired <- st.retired + 1
      | Mul -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs * g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
      | Slt -> fun st ->
        let r = st.regs in
        s r rd (if g r rs < g r rt then 1 else 0);
        st.pc <- nx; st.retired <- st.retired + 1
      | Nor | Sll | Srl | Sra | Sltu | Mulh | Div | Rem -> fun st ->
        let r = st.regs in
        s r rd (Exec.alu_eval_int op (g r rs) (g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
    end
  | U_alui (op, rd, rs, imm) ->
    if rd = 0 then retire1 nx
    else begin
      match op with
      | Insn.Add -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs + imm));
        st.pc <- nx; st.retired <- st.retired + 1
      | And -> fun st ->
        let r = st.regs in
        s r rd (g r rs land imm);
        st.pc <- nx; st.retired <- st.retired + 1
      | Or_ -> fun st ->
        let r = st.regs in
        s r rd (g r rs lor imm);
        st.pc <- nx; st.retired <- st.retired + 1
      | Xor -> fun st ->
        let r = st.regs in
        s r rd (g r rs lxor imm);
        st.pc <- nx; st.retired <- st.retired + 1
      | Slt -> fun st ->
        let r = st.regs in
        s r rd (if g r rs < imm then 1 else 0);
        st.pc <- nx; st.retired <- st.retired + 1
      | Sub | Nor | Sll | Srl | Sra | Sltu | Mul | Mulh | Div | Rem ->
        fun st ->
          let r = st.regs in
          s r rd (Exec.alu_eval_int op (g r rs) imm);
          st.pc <- nx; st.retired <- st.retired + 1
    end
  | U_fpu (op, rd, rs, rt) ->
    if rd = 0 then retire1 nx
    else fun st ->
      let r = st.regs in
      s r rd (Exec.fpu_eval_int op (g r rs) (g r rt));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_lui (rd, v) ->
    if rd = 0 then retire1 nx
    else fun st ->
      s st.regs rd v;
      st.pc <- nx; st.retired <- st.retired + 1
  | U_load (w, rd, rs, imm, _) ->
    if rd = 0 then fun st ->
      ignore (Memory.load_int st.mem w (g st.regs rs + imm));
      st.pc <- nx; st.retired <- st.retired + 1
    else fun st ->
      let r = st.regs in
      s r rd (Memory.load_int st.mem w (g r rs + imm));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_store (w, rt, rs, imm, _) -> fun st ->
    let r = st.regs in
    Memory.store_int st.mem w (g r rs + imm) (g r rt);
    st.pc <- nx; st.retired <- st.retired + 1
  | U_amo (op, rd, rs, rt) -> fun st ->
    let r = st.regs in
    let old = Memory.amo_int st.mem op (g r rs) (g r rt) in
    if rd <> 0 then s r rd old;
    st.pc <- nx; st.retired <- st.retired + 1
  | U_branch (c, rs, rt, l) ->
    (match c with
     | Insn.Beq -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs = g r rt then l else nx);
       st.retired <- st.retired + 1
     | Bne -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs <> g r rt then l else nx);
       st.retired <- st.retired + 1
     | Blt -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs < g r rt then l else nx);
       st.retired <- st.retired + 1
     | Bge -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs >= g r rt then l else nx);
       st.retired <- st.retired + 1
     | Bltu -> fun st ->
       let r = st.regs in
       st.pc <-
         (if g r rs land 0xFFFFFFFF < g r rt land 0xFFFFFFFF then l else nx);
       st.retired <- st.retired + 1
     | Bgeu -> fun st ->
       let r = st.regs in
       st.pc <-
         (if g r rs land 0xFFFFFFFF >= g r rt land 0xFFFFFFFF then l else nx);
       st.retired <- st.retired + 1)
  | U_jump l -> fun st ->
    st.pc <- l;
    st.retired <- st.retired + 1
  | U_jal (link, l) -> fun st ->
    s st.regs Reg.ra link;
    st.pc <- l;
    st.retired <- st.retired + 1
  | U_jr rs -> fun st ->
    st.pc <- g st.regs rs;
    st.retired <- st.retired + 1
  | U_xloop_de (rt, l) -> fun st ->
    st.pc <- (if g st.regs rt = 0 then l else nx);
    st.retired <- st.retired + 1
  | U_xloop_cmp (rs, rt, l) -> fun st ->
    let r = st.regs in
    st.pc <- (if g r rs < g r rt then l else nx);
    st.retired <- st.retired + 1
  | U_xi_addi (rd, rs, imm) ->
    if rd = 0 then retire1 nx
    else fun st ->
      let r = st.regs in
      s r rd (norm (g r rs + imm));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_xi_add (rd, rs, rt) ->
    if rd = 0 then retire1 nx
    else fun st ->
      let r = st.regs in
      s r rd (norm (g r rs + g r rt));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_sync | U_nop -> retire1 nx
  | U_halt -> fun st ->
    st.pc <- pc;
    raise Exec.Halted

(* -- Superop fusion ---------------------------------------------------- *)

(* A fusible head's entire effect is one register write, captured as
   compile-time data so each tail constructor specializes against it.
   The hottest head shapes (plain add / add-immediate, which is also
   what both [.xi] forms lower to) get fully inlined bodies in the fused
   closures; the rest go through [run_head], a per-closure-constant
   match that predicts perfectly. *)

type head =
  | H_add of int * int * int           (* rd, rs, rt *)
  | H_addi of int * int * int          (* rd, rs, imm *)
  | H_alu of Insn.alu_op * int * int * int
  | H_alui of Insn.alu_op * int * int * int
  | H_const of int * int               (* rd, value *)

let head_of (src : int Insn.t) (u : P.uop) : head option =
  if not (Insn.fusible_head src && uop_valid u) then None
  else
    match u with
    | P.U_alu (Insn.Add, rd, rs, rt) | U_xi_add (rd, rs, rt) ->
      Some (H_add (rd, rs, rt))
    | U_alui (Insn.Add, rd, rs, imm) | U_xi_addi (rd, rs, imm) ->
      Some (H_addi (rd, rs, imm))
    | U_alu (op, rd, rs, rt) -> Some (H_alu (op, rd, rs, rt))
    | U_alui (op, rd, rs, imm) -> Some (H_alui (op, rd, rs, imm))
    | U_lui (rd, v) -> Some (H_const (rd, v))
    | _ -> None

let run_head (h : head) (r : int array) =
  match h with
  | H_add (rd, rs, rt) -> s r rd (norm (g r rs + g r rt))
  | H_addi (rd, rs, imm) -> s r rd (norm (g r rs + imm))
  | H_alu (op, rd, rs, rt) -> s r rd (Exec.alu_eval_int op (g r rs) (g r rt))
  | H_alui (op, rd, rs, imm) -> s r rd (Exec.alu_eval_int op (g r rs) imm)
  | H_const (rd, v) -> s r rd v

(* Build the superop closure for the pair at [pc], or [None] when the
   pair doesn't fuse.  Every branch of a fused closure executes both
   micro-ops and retires 2, so a fused dispatch is observationally two
   [ops] dispatches. *)
let fuse_pair (src : int Insn.t array) (uops : P.uop array) pc
  : (op * string) option =
  let n = Array.length uops in
  if pc + 1 >= n then None
  else
    match head_of src.(pc) uops.(pc) with
    | None -> None
    | Some h ->
      let tail = uops.(pc + 1) in
      if not (Insn.fusible_tail src.(pc + 1) && uop_valid tail) then None
      else begin
        let nx2 = pc + 2 in
        let rule tl = P.uop_class uops.(pc) ^ "+" ^ tl in
        match tail with
        | P.U_branch (c, brs, brt, l) ->
          let f =
            match h, c with
            | H_addi (rd, rs, imm), Insn.Bne -> fun st ->
              let r = st.regs in
              s r rd (norm (g r rs + imm));
              st.pc <- (if g r brs <> g r brt then l else nx2);
              st.retired <- st.retired + 2
            | H_addi (rd, rs, imm), Blt -> fun st ->
              let r = st.regs in
              s r rd (norm (g r rs + imm));
              st.pc <- (if g r brs < g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Beq -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs = g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Bne -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs <> g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Blt -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs < g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Bge -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs >= g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Bltu -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <-
                (if g r brs land 0xFFFFFFFF < g r brt land 0xFFFFFFFF
                 then l else nx2);
              st.retired <- st.retired + 2
            | _, Bgeu -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <-
                (if g r brs land 0xFFFFFFFF >= g r brt land 0xFFFFFFFF
                 then l else nx2);
              st.retired <- st.retired + 2
          in
          Some (f, rule "branch")
        | U_xloop_cmp (xrs, xrt, l) ->
          let f =
            match h with
            | H_addi (rd, rs, imm) -> fun st ->
              (* the canonical [.xi] index-bump + xloop back-edge pair *)
              let r = st.regs in
              s r rd (norm (g r rs + imm));
              st.pc <- (if g r xrs < g r xrt then l else nx2);
              st.retired <- st.retired + 2
            | H_add (rd, rs, rt) -> fun st ->
              let r = st.regs in
              s r rd (norm (g r rs + g r rt));
              st.pc <- (if g r xrs < g r xrt then l else nx2);
              st.retired <- st.retired + 2
            | _ -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r xrs < g r xrt then l else nx2);
              st.retired <- st.retired + 2
          in
          Some (f, rule "xloop_cmp")
        | U_xloop_de (xrt, l) ->
          let f st =
            let r = st.regs in
            run_head h r;
            st.pc <- (if g r xrt = 0 then l else nx2);
            st.retired <- st.retired + 2
          in
          Some (f, rule "xloop_de")
        | U_load (w, rd, rs, imm, _) ->
          if rd = 0 then
            let f st =
              let r = st.regs in
              run_head h r;
              ignore (Memory.load_int st.mem w (g r rs + imm));
              st.pc <- nx2; st.retired <- st.retired + 2
            in
            Some (f, rule "load")
          else begin
            let f =
              match h with
              | H_add (hrd, hrs, hrt) -> fun st ->
                (* address-gen + load *)
                let r = st.regs in
                s r hrd (norm (g r hrs + g r hrt));
                s r rd (Memory.load_int st.mem w (g r rs + imm));
                st.pc <- nx2; st.retired <- st.retired + 2
              | H_addi (hrd, hrs, himm) -> fun st ->
                let r = st.regs in
                s r hrd (norm (g r hrs + himm));
                s r rd (Memory.load_int st.mem w (g r rs + imm));
                st.pc <- nx2; st.retired <- st.retired + 2
              | _ -> fun st ->
                let r = st.regs in
                run_head h r;
                s r rd (Memory.load_int st.mem w (g r rs + imm));
                st.pc <- nx2; st.retired <- st.retired + 2
            in
            Some (f, rule "load")
          end
        | U_store (w, srt, srs, imm, _) ->
          let f =
            match h with
            | H_add (hrd, hrs, hrt) -> fun st ->
              (* address-gen + store *)
              let r = st.regs in
              s r hrd (norm (g r hrs + g r hrt));
              Memory.store_int st.mem w (g r srs + imm) (g r srt);
              st.pc <- nx2; st.retired <- st.retired + 2
            | H_addi (hrd, hrs, himm) -> fun st ->
              let r = st.regs in
              s r hrd (norm (g r hrs + himm));
              Memory.store_int st.mem w (g r srs + imm) (g r srt);
              st.pc <- nx2; st.retired <- st.retired + 2
            | _ -> fun st ->
              let r = st.regs in
              run_head h r;
              Memory.store_int st.mem w (g r srs + imm) (g r srt);
              st.pc <- nx2; st.retired <- st.retired + 2
          in
          Some (f, rule "store")
        | U_alu _ | U_alui _ | U_lui _ | U_xi_addi _ | U_xi_add _ ->
          (match head_of src.(pc + 1) tail with
           | None -> None  (* e.g. a dropped write to r0: not worth a superop *)
           | Some h2 ->
             let f =
               match h, h2 with
               | H_add (rd1, rs1, rt1), H_add (rd2, rs2, rt2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + g r rt1));
                 s r rd2 (norm (g r rs2 + g r rt2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | H_add (rd1, rs1, rt1), H_addi (rd2, rs2, imm2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + g r rt1));
                 s r rd2 (norm (g r rs2 + imm2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | H_addi (rd1, rs1, imm1), H_add (rd2, rs2, rt2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + imm1));
                 s r rd2 (norm (g r rs2 + g r rt2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | H_addi (rd1, rs1, imm1), H_addi (rd2, rs2, imm2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + imm1));
                 s r rd2 (norm (g r rs2 + imm2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | _, _ -> fun st ->
                 let r = st.regs in
                 run_head h r;
                 run_head h2 r;
                 st.pc <- nx2; st.retired <- st.retired + 2
             in
             Some (f, rule (P.uop_class tail)))
        | U_fpu _ | U_amo _ | U_jump _ | U_jal _ | U_jr _ | U_sync
        | U_halt | U_nop -> None
      end

(* -- Compilation ------------------------------------------------------- *)

let compile_fresh (pre : Program.predecoded) : compiled =
  let uops = pre.P.uops in
  let src = pre.P.source.P.insns in
  let n = Array.length uops in
  let ops =
    Array.init n (fun pc ->
        let u = uops.(pc) in
        if uop_valid u then fast_op u pc else safe_op u pc)
  in
  let sup = Array.copy ops in
  let rules = ref [] in
  (* Greedy left-to-right pairing, but installed in any order: a fused
     head at [pc] overlapping one at [pc+1] is harmless (whichever head
     control reaches wins; both execute exact pair semantics), so no
     overlap resolution is needed. *)
  for pc = n - 2 downto 0 do
    match fuse_pair src uops pc with
    | Some (f, rule) ->
      sup.(pc) <- f;
      rules := (pc, rule) :: !rules
    | None -> ()
  done;
  { pre; ops; sup; rules = !rules }

(* Per-domain memo keyed by physical equality, same shape as the
   predecode memo: sweeps re-run the same few programs thousands of
   times, so compilation is paid once per program per domain. *)

let memo : (Program.predecoded * compiled) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_cap = 8

let compile (pre : Program.predecoded) : compiled =
  let cache = Domain.DLS.get memo in
  match List.find_opt (fun (p, _) -> p == pre) !cache with
  | Some (_, c) -> c
  | None ->
    let c = compile_fresh pre in
    let rest =
      if List.length !cache >= memo_cap
      then List.filteri (fun i _ -> i < memo_cap - 1) !cache
      else !cache
    in
    cache := (pre, c) :: rest;
    c

let superops prog = (compile (Program.predecode prog)).rules

let fused_heads prog =
  let c = compile (Program.predecode prog) in
  let marks = Array.make (Array.length c.ops) false in
  List.iter (fun (pc, _) -> marks.(pc) <- true) c.rules;
  marks

(* -- Driver ------------------------------------------------------------ *)

(* Fuel parity with {!Exec.run_serial}: a superop always retires its
   pair whole, so running fused code until [fuel] could overshoot by
   one.  The main loop therefore runs fused code only while at least two
   units of fuel remain (a superop landing exactly on [fuel] is fine),
   and the final unit — if still unspent — executes one *unfused* op.
   Out-of-fuel reports are then bit-identical to the per-step tiers. *)
let run_serial ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Memory.t) : (Exec.run, Exec.stop) result =
  let c = compile (Program.predecode prog) in
  let sup = c.sup and ops = c.ops in
  let n = Array.length sup in
  let st = { regs = Array.make Reg.num_regs 0; mem = m;
             pc = entry; retired = 0 } in
  try
    let lim = fuel - 1 in
    while st.retired < lim do
      let pc = st.pc in
      if pc < 0 || pc >= n then
        raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
      (Array.unsafe_get sup pc) st
    done;
    if st.retired < fuel then begin
      let pc = st.pc in
      if pc < 0 || pc >= n then
        raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
      (Array.unsafe_get ops pc) st
    end;
    Error (Exec.Out_of_fuel { pc = st.pc; insns = st.retired;
                              cycle = st.retired })
  with Exec.Halted ->
    Ok { Exec.dynamic_insns = st.retired;
         final = { Exec.regs = st.regs; pc = st.pc } }
