(** Direct-threaded execution tier.

    The predecoded tier ({!Exec.step}) still pays, per dynamic
    instruction, an 18-arm match on the micro-op, the event-scratch
    reset, and the per-step calling convention.  This tier compiles each
    {!Program.predecoded} once into an array of closures — one per
    static instruction, specialized at compile time to its operands — so
    the driver loop is a single indirect call per dispatch and no event
    record exists at all.

    On top of the single-op closures, adjacent pairs selected by the
    {!Xloops_isa.Insn.fusible_head}/[fusible_tail] predicates fuse into
    *superop* closures that execute both micro-ops in one dispatch:
    compare+branch, address-gen+load/store, and the [.xi]
    add+index-bump idioms the static pair profiler (bench/micro
    [--profile-pairs]) shows dominate the kernel registry.  Fusion is
    purely local: the slot after a fused head keeps its own single-op
    closure, so a jump into the middle of a pair needs no target
    analysis — it simply dispatches the unfused second op.

    Because no event is produced, this tier serves only observer-free
    functional runs ({!run_serial} consumers such as
    [Kernel.dynamic_insns] and the bench harness).  Anything that
    watches per-instruction events — GPP timing, the LPSU lanes,
    tracing, the watchdog, fault injection — stays on {!Exec.step}. *)

open Xloops_isa
module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory
module P = Program

type state = {
  regs : int array;
  mem : Memory.t;
  mutable pc : int;
  mutable retired : int;
}

type op = state -> unit

type compiled = {
  pre : Program.predecoded;
  ops : op array;   (** single-op closures, parallel to the uops *)
  sup : op array;   (** [ops] with fused heads replaced by superops *)
  rules : (int * string) list;
      (** superop head pcs (ascending) and their rule names *)
  blk : op array;
      (** block closures at leaders of multi-uop blocks; [ops] elsewhere *)
  max_block : int;  (** most uops any [blk] dispatch can retire (>= 1) *)
  spans : (int * int) list;
      (** compiled blocks as (leader pc, uop count), ascending *)
  btriples : (int * string) list;
      (** fused-triple head pcs and rule names, ascending *)
  lane : lane_meta array;  (** per-pc LPSU lane fast-path metadata *)
}

and lane_meta =
  | L_slow
  | L_plain of {
      l_op : op;             (** the pc's single-op closure *)
      l_insn : int Xloops_isa.Insn.t;
      l_rd : int;            (** dest register, -1 when none *)
      l_s1 : int;            (** source registers, -1 when absent *)
      l_s2 : int;
      l_ctrl : int;
          (** 0 = never redirects; 1 = conditional (taken iff the
              outgoing pc differs from pc+1); 2 = always taken *)
    }

let sext_shift = Sys.int_size - 32
let[@inline] norm v = (v lsl sext_shift) asr sext_shift
let[@inline] g (r : int array) i = Array.unsafe_get r i
let[@inline] s (r : int array) i v = Array.unsafe_set r i v

(* Compile-time validation: closures index the register file unsafely,
   so every register specifier must be proven in range first.  Micro-ops
   that fail (only reachable through hand-built [Program.t] values with
   corrupt specifiers) fall back to [safe_op] below, which reproduces
   {!Exec.step}'s bounds-checked behavior exactly — including the
   [Invalid_argument] it raises when executed. *)
let uop_valid (u : P.uop) =
  let ok r = r >= 0 && r < Reg.num_regs in
  match u with
  | P.U_alu (_, rd, rs, rt) | U_fpu (_, rd, rs, rt)
  | U_xi_add (rd, rs, rt) | U_amo (_, rd, rs, rt) -> ok rd && ok rs && ok rt
  | U_alui (_, rd, rs, _) | U_xi_addi (rd, rs, _) -> ok rd && ok rs
  | U_lui (rd, _) -> ok rd
  | U_load (_, rd, rs, _, _) -> ok rd && ok rs
  | U_store (_, rt, rs, _, _) -> ok rt && ok rs
  | U_branch (_, rs, rt, _) | U_xloop_cmp (rs, rt, _) -> ok rs && ok rt
  | U_jr rs -> ok rs
  | U_xloop_de (rt, _) -> ok rt
  | U_jump _ | U_jal _ | U_sync | U_halt | U_nop -> true

(* Mirrors {!Exec.step} arm for arm with safe (bounds-checked) register
   indexing; pc advances before the body and the retired count bumps
   after, so an escaping exception leaves the same partial state as a
   failed [step]. *)
let safe_op (u : P.uop) pc : op = fun st ->
  let regs = st.regs in
  st.pc <- pc + 1;
  (match u with
   | P.U_alu (op, rd, rs, rt) ->
     if rd <> 0 then regs.(rd) <- Exec.alu_eval_int op regs.(rs) regs.(rt)
   | U_alui (op, rd, rs, imm) ->
     if rd <> 0 then regs.(rd) <- Exec.alu_eval_int op regs.(rs) imm
   | U_fpu (op, rd, rs, rt) ->
     if rd <> 0 then regs.(rd) <- Exec.fpu_eval_int op regs.(rs) regs.(rt)
   | U_lui (rd, v) -> if rd <> 0 then regs.(rd) <- v
   | U_load (w, rd, rs, imm, _) ->
     let v = Memory.load_int st.mem w (regs.(rs) + imm) in
     if rd <> 0 then regs.(rd) <- v
   | U_store (w, rt, rs, imm, _) ->
     Memory.store_int st.mem w (regs.(rs) + imm) regs.(rt)
   | U_amo (op, rd, rs, rt) ->
     let old = Memory.amo_int st.mem op regs.(rs) regs.(rt) in
     if rd <> 0 then regs.(rd) <- old
   | U_branch (c, rs, rt, l) ->
     if Exec.branch_eval_int c regs.(rs) regs.(rt) then st.pc <- l
   | U_jump l -> st.pc <- l
   | U_jal (link, l) -> regs.(Reg.ra) <- link; st.pc <- l
   | U_jr rs -> st.pc <- regs.(rs)
   | U_xloop_de (rt, l) -> if regs.(rt) = 0 then st.pc <- l
   | U_xloop_cmp (rs, rt, l) -> if regs.(rs) < regs.(rt) then st.pc <- l
   | U_xi_addi (rd, rs, imm) ->
     if rd <> 0 then regs.(rd) <- norm (regs.(rs) + imm)
   | U_xi_add (rd, rs, rt) ->
     if rd <> 0 then regs.(rd) <- norm (regs.(rs) + regs.(rt))
   | U_sync | U_nop -> ()
   | U_halt -> st.pc <- pc; raise Exec.Halted);
  st.retired <- st.retired + 1

(* -- Single-op closures ------------------------------------------------ *)

(* One closure per static instruction, all operand decisions folded at
   compile time: the common ALU/branch operators get a dedicated closure
   body; rare operators (mulh/div/rem, all FP) capture the operator and
   call the shared evaluator.  Writes to r0 compile to an advance-only
   closure, matching [step]'s dropped-write semantics. *)

let retire1 nx : op = fun st ->
  st.pc <- nx;
  st.retired <- st.retired + 1

let fast_op (u : P.uop) pc : op =
  let nx = pc + 1 in
  match u with
  | P.U_alu (op, rd, rs, rt) ->
    if rd = 0 then retire1 nx
    else begin
      match op with
      | Insn.Add -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs + g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
      | Sub -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs - g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
      | And -> fun st ->
        let r = st.regs in
        s r rd (g r rs land g r rt);
        st.pc <- nx; st.retired <- st.retired + 1
      | Or_ -> fun st ->
        let r = st.regs in
        s r rd (g r rs lor g r rt);
        st.pc <- nx; st.retired <- st.retired + 1
      | Xor -> fun st ->
        let r = st.regs in
        s r rd (g r rs lxor g r rt);
        st.pc <- nx; st.retired <- st.retired + 1
      | Mul -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs * g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
      | Slt -> fun st ->
        let r = st.regs in
        s r rd (if g r rs < g r rt then 1 else 0);
        st.pc <- nx; st.retired <- st.retired + 1
      | Nor | Sll | Srl | Sra | Sltu | Mulh | Div | Rem -> fun st ->
        let r = st.regs in
        s r rd (Exec.alu_eval_int op (g r rs) (g r rt));
        st.pc <- nx; st.retired <- st.retired + 1
    end
  | U_alui (op, rd, rs, imm) ->
    if rd = 0 then retire1 nx
    else begin
      match op with
      | Insn.Add -> fun st ->
        let r = st.regs in
        s r rd (norm (g r rs + imm));
        st.pc <- nx; st.retired <- st.retired + 1
      | And -> fun st ->
        let r = st.regs in
        s r rd (g r rs land imm);
        st.pc <- nx; st.retired <- st.retired + 1
      | Or_ -> fun st ->
        let r = st.regs in
        s r rd (g r rs lor imm);
        st.pc <- nx; st.retired <- st.retired + 1
      | Xor -> fun st ->
        let r = st.regs in
        s r rd (g r rs lxor imm);
        st.pc <- nx; st.retired <- st.retired + 1
      | Slt -> fun st ->
        let r = st.regs in
        s r rd (if g r rs < imm then 1 else 0);
        st.pc <- nx; st.retired <- st.retired + 1
      | Sub | Nor | Sll | Srl | Sra | Sltu | Mul | Mulh | Div | Rem ->
        fun st ->
          let r = st.regs in
          s r rd (Exec.alu_eval_int op (g r rs) imm);
          st.pc <- nx; st.retired <- st.retired + 1
    end
  | U_fpu (op, rd, rs, rt) ->
    if rd = 0 then retire1 nx
    else fun st ->
      let r = st.regs in
      s r rd (Exec.fpu_eval_int op (g r rs) (g r rt));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_lui (rd, v) ->
    if rd = 0 then retire1 nx
    else fun st ->
      s st.regs rd v;
      st.pc <- nx; st.retired <- st.retired + 1
  | U_load (w, rd, rs, imm, _) ->
    if rd = 0 then fun st ->
      ignore (Memory.load_int st.mem w (g st.regs rs + imm));
      st.pc <- nx; st.retired <- st.retired + 1
    else fun st ->
      let r = st.regs in
      s r rd (Memory.load_int st.mem w (g r rs + imm));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_store (w, rt, rs, imm, _) -> fun st ->
    let r = st.regs in
    Memory.store_int st.mem w (g r rs + imm) (g r rt);
    st.pc <- nx; st.retired <- st.retired + 1
  | U_amo (op, rd, rs, rt) -> fun st ->
    let r = st.regs in
    let old = Memory.amo_int st.mem op (g r rs) (g r rt) in
    if rd <> 0 then s r rd old;
    st.pc <- nx; st.retired <- st.retired + 1
  | U_branch (c, rs, rt, l) ->
    (match c with
     | Insn.Beq -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs = g r rt then l else nx);
       st.retired <- st.retired + 1
     | Bne -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs <> g r rt then l else nx);
       st.retired <- st.retired + 1
     | Blt -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs < g r rt then l else nx);
       st.retired <- st.retired + 1
     | Bge -> fun st ->
       let r = st.regs in
       st.pc <- (if g r rs >= g r rt then l else nx);
       st.retired <- st.retired + 1
     | Bltu -> fun st ->
       let r = st.regs in
       st.pc <-
         (if g r rs land 0xFFFFFFFF < g r rt land 0xFFFFFFFF then l else nx);
       st.retired <- st.retired + 1
     | Bgeu -> fun st ->
       let r = st.regs in
       st.pc <-
         (if g r rs land 0xFFFFFFFF >= g r rt land 0xFFFFFFFF then l else nx);
       st.retired <- st.retired + 1)
  | U_jump l -> fun st ->
    st.pc <- l;
    st.retired <- st.retired + 1
  | U_jal (link, l) -> fun st ->
    s st.regs Reg.ra link;
    st.pc <- l;
    st.retired <- st.retired + 1
  | U_jr rs -> fun st ->
    st.pc <- g st.regs rs;
    st.retired <- st.retired + 1
  | U_xloop_de (rt, l) -> fun st ->
    st.pc <- (if g st.regs rt = 0 then l else nx);
    st.retired <- st.retired + 1
  | U_xloop_cmp (rs, rt, l) -> fun st ->
    let r = st.regs in
    st.pc <- (if g r rs < g r rt then l else nx);
    st.retired <- st.retired + 1
  | U_xi_addi (rd, rs, imm) ->
    if rd = 0 then retire1 nx
    else fun st ->
      let r = st.regs in
      s r rd (norm (g r rs + imm));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_xi_add (rd, rs, rt) ->
    if rd = 0 then retire1 nx
    else fun st ->
      let r = st.regs in
      s r rd (norm (g r rs + g r rt));
      st.pc <- nx; st.retired <- st.retired + 1
  | U_sync | U_nop -> retire1 nx
  | U_halt -> fun st ->
    st.pc <- pc;
    raise Exec.Halted

(* -- Superop fusion ---------------------------------------------------- *)

(* A fusible head's entire effect is one register write, captured as
   compile-time data so each tail constructor specializes against it.
   The hottest head shapes (plain add / add-immediate, which is also
   what both [.xi] forms lower to) get fully inlined bodies in the fused
   closures; the rest go through [run_head], a per-closure-constant
   match that predicts perfectly. *)

type head =
  | H_add of int * int * int           (* rd, rs, rt *)
  | H_addi of int * int * int          (* rd, rs, imm *)
  | H_alu of Insn.alu_op * int * int * int
  | H_alui of Insn.alu_op * int * int * int
  | H_const of int * int               (* rd, value *)

let head_of (src : int Insn.t) (u : P.uop) : head option =
  if not (Insn.fusible_head src && uop_valid u) then None
  else
    match u with
    | P.U_alu (Insn.Add, rd, rs, rt) | U_xi_add (rd, rs, rt) ->
      Some (H_add (rd, rs, rt))
    | U_alui (Insn.Add, rd, rs, imm) | U_xi_addi (rd, rs, imm) ->
      Some (H_addi (rd, rs, imm))
    | U_alu (op, rd, rs, rt) -> Some (H_alu (op, rd, rs, rt))
    | U_alui (op, rd, rs, imm) -> Some (H_alui (op, rd, rs, imm))
    | U_lui (rd, v) -> Some (H_const (rd, v))
    | _ -> None

let run_head (h : head) (r : int array) =
  match h with
  | H_add (rd, rs, rt) -> s r rd (norm (g r rs + g r rt))
  | H_addi (rd, rs, imm) -> s r rd (norm (g r rs + imm))
  | H_alu (op, rd, rs, rt) -> s r rd (Exec.alu_eval_int op (g r rs) (g r rt))
  | H_alui (op, rd, rs, imm) -> s r rd (Exec.alu_eval_int op (g r rs) imm)
  | H_const (rd, v) -> s r rd v

(* Build the superop closure for the pair at [pc], or [None] when the
   pair doesn't fuse.  Every branch of a fused closure executes both
   micro-ops and retires 2, so a fused dispatch is observationally two
   [ops] dispatches. *)
let fuse_pair (src : int Insn.t array) (uops : P.uop array) pc
  : (op * string) option =
  let n = Array.length uops in
  if pc + 1 >= n then None
  else
    match head_of src.(pc) uops.(pc) with
    | None -> None
    | Some h ->
      let tail = uops.(pc + 1) in
      if not (Insn.fusible_tail src.(pc + 1) && uop_valid tail) then None
      else begin
        let nx2 = pc + 2 in
        let rule tl = P.uop_class uops.(pc) ^ "+" ^ tl in
        match tail with
        | P.U_branch (c, brs, brt, l) ->
          let f =
            match h, c with
            | H_addi (rd, rs, imm), Insn.Bne -> fun st ->
              let r = st.regs in
              s r rd (norm (g r rs + imm));
              st.pc <- (if g r brs <> g r brt then l else nx2);
              st.retired <- st.retired + 2
            | H_addi (rd, rs, imm), Blt -> fun st ->
              let r = st.regs in
              s r rd (norm (g r rs + imm));
              st.pc <- (if g r brs < g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Beq -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs = g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Bne -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs <> g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Blt -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs < g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Bge -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r brs >= g r brt then l else nx2);
              st.retired <- st.retired + 2
            | _, Bltu -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <-
                (if g r brs land 0xFFFFFFFF < g r brt land 0xFFFFFFFF
                 then l else nx2);
              st.retired <- st.retired + 2
            | _, Bgeu -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <-
                (if g r brs land 0xFFFFFFFF >= g r brt land 0xFFFFFFFF
                 then l else nx2);
              st.retired <- st.retired + 2
          in
          Some (f, rule "branch")
        | U_xloop_cmp (xrs, xrt, l) ->
          let f =
            match h with
            | H_addi (rd, rs, imm) -> fun st ->
              (* the canonical [.xi] index-bump + xloop back-edge pair *)
              let r = st.regs in
              s r rd (norm (g r rs + imm));
              st.pc <- (if g r xrs < g r xrt then l else nx2);
              st.retired <- st.retired + 2
            | H_add (rd, rs, rt) -> fun st ->
              let r = st.regs in
              s r rd (norm (g r rs + g r rt));
              st.pc <- (if g r xrs < g r xrt then l else nx2);
              st.retired <- st.retired + 2
            | _ -> fun st ->
              let r = st.regs in
              run_head h r;
              st.pc <- (if g r xrs < g r xrt then l else nx2);
              st.retired <- st.retired + 2
          in
          Some (f, rule "xloop_cmp")
        | U_xloop_de (xrt, l) ->
          let f st =
            let r = st.regs in
            run_head h r;
            st.pc <- (if g r xrt = 0 then l else nx2);
            st.retired <- st.retired + 2
          in
          Some (f, rule "xloop_de")
        | U_load (w, rd, rs, imm, _) ->
          if rd = 0 then
            let f st =
              let r = st.regs in
              run_head h r;
              ignore (Memory.load_int st.mem w (g r rs + imm));
              st.pc <- nx2; st.retired <- st.retired + 2
            in
            Some (f, rule "load")
          else begin
            let f =
              match h with
              | H_add (hrd, hrs, hrt) -> fun st ->
                (* address-gen + load *)
                let r = st.regs in
                s r hrd (norm (g r hrs + g r hrt));
                s r rd (Memory.load_int st.mem w (g r rs + imm));
                st.pc <- nx2; st.retired <- st.retired + 2
              | H_addi (hrd, hrs, himm) -> fun st ->
                let r = st.regs in
                s r hrd (norm (g r hrs + himm));
                s r rd (Memory.load_int st.mem w (g r rs + imm));
                st.pc <- nx2; st.retired <- st.retired + 2
              | _ -> fun st ->
                let r = st.regs in
                run_head h r;
                s r rd (Memory.load_int st.mem w (g r rs + imm));
                st.pc <- nx2; st.retired <- st.retired + 2
            in
            Some (f, rule "load")
          end
        | U_store (w, srt, srs, imm, _) ->
          let f =
            match h with
            | H_add (hrd, hrs, hrt) -> fun st ->
              (* address-gen + store *)
              let r = st.regs in
              s r hrd (norm (g r hrs + g r hrt));
              Memory.store_int st.mem w (g r srs + imm) (g r srt);
              st.pc <- nx2; st.retired <- st.retired + 2
            | H_addi (hrd, hrs, himm) -> fun st ->
              let r = st.regs in
              s r hrd (norm (g r hrs + himm));
              Memory.store_int st.mem w (g r srs + imm) (g r srt);
              st.pc <- nx2; st.retired <- st.retired + 2
            | _ -> fun st ->
              let r = st.regs in
              run_head h r;
              Memory.store_int st.mem w (g r srs + imm) (g r srt);
              st.pc <- nx2; st.retired <- st.retired + 2
          in
          Some (f, rule "store")
        | U_alu _ | U_alui _ | U_lui _ | U_xi_addi _ | U_xi_add _ ->
          (match head_of src.(pc + 1) tail with
           | None -> None  (* e.g. a dropped write to r0: not worth a superop *)
           | Some h2 ->
             let f =
               match h, h2 with
               | H_add (rd1, rs1, rt1), H_add (rd2, rs2, rt2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + g r rt1));
                 s r rd2 (norm (g r rs2 + g r rt2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | H_add (rd1, rs1, rt1), H_addi (rd2, rs2, imm2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + g r rt1));
                 s r rd2 (norm (g r rs2 + imm2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | H_addi (rd1, rs1, imm1), H_add (rd2, rs2, rt2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + imm1));
                 s r rd2 (norm (g r rs2 + g r rt2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | H_addi (rd1, rs1, imm1), H_addi (rd2, rs2, imm2) -> fun st ->
                 let r = st.regs in
                 s r rd1 (norm (g r rs1 + imm1));
                 s r rd2 (norm (g r rs2 + imm2));
                 st.pc <- nx2; st.retired <- st.retired + 2
               | _, _ -> fun st ->
                 let r = st.regs in
                 run_head h r;
                 run_head h2 r;
                 st.pc <- nx2; st.retired <- st.retired + 2
             in
             Some (f, rule (P.uop_class tail)))
        | U_fpu _ | U_amo _ | U_jump _ | U_jal _ | U_jr _ | U_sync
        | U_halt | U_nop -> None
      end

(* -- Basic-block compilation ------------------------------------------- *)

(* A block closure executes a whole basic block — from a leader up to
   and including the first control transfer, stopping early at the next
   leader, an invalid uop, or the length cap — in one dispatch, with one
   pc write and one retirement bump at the end.

   Side exits must still materialize {!Exec.step}-precise state.  The
   only mid-block exits are memory traps ([Memory] raising on a bad
   access) and [halt]: memory uops are *sync points* that first publish
   the in-progress pc (advanced past the faulting op, as [step] does)
   and fold the retirement delta accumulated since the previous sync
   point, so an escaping exception observes exactly the state a per-uop
   tier would have left.  Everything between sync points is a *bare*
   closure — no pc or retired writes at all — which is where the block
   tier's headroom over per-uop dispatch comes from.  The delta
   bookkeeping is entirely compile-time. *)

type bkind = K_bare | K_mem | K_term

let kind_of (u : P.uop) : bkind =
  match u with
  | P.U_alu _ | U_alui _ | U_fpu _ | U_lui _ | U_xi_addi _ | U_xi_add _
  | U_sync | U_nop -> K_bare
  | U_load _ | U_store _ | U_amo _ -> K_mem
  | U_branch _ | U_jump _ | U_jal _ | U_jr _ | U_xloop_de _ | U_xloop_cmp _
  | U_halt -> K_term

let nothing : op = fun _ -> ()

(* Bare effect of a straightline uop: registers only, no bookkeeping.
   Requires [uop_valid] and [K_bare]. *)
let bare_op (u : P.uop) : op =
  match u with
  | P.U_alu (op, rd, rs, rt) ->
    if rd = 0 then nothing
    else begin
      match op with
      | Insn.Add -> fun st -> let r = st.regs in s r rd (norm (g r rs + g r rt))
      | Sub -> fun st -> let r = st.regs in s r rd (norm (g r rs - g r rt))
      | And -> fun st -> let r = st.regs in s r rd (g r rs land g r rt)
      | Or_ -> fun st -> let r = st.regs in s r rd (g r rs lor g r rt)
      | Xor -> fun st -> let r = st.regs in s r rd (g r rs lxor g r rt)
      | Mul -> fun st -> let r = st.regs in s r rd (norm (g r rs * g r rt))
      | Slt -> fun st ->
        let r = st.regs in s r rd (if g r rs < g r rt then 1 else 0)
      | Nor | Sll | Srl | Sra | Sltu | Mulh | Div | Rem -> fun st ->
        let r = st.regs in s r rd (Exec.alu_eval_int op (g r rs) (g r rt))
    end
  | U_alui (op, rd, rs, imm) ->
    if rd = 0 then nothing
    else begin
      match op with
      | Insn.Add -> fun st -> let r = st.regs in s r rd (norm (g r rs + imm))
      | And -> fun st -> let r = st.regs in s r rd (g r rs land imm)
      | Or_ -> fun st -> let r = st.regs in s r rd (g r rs lor imm)
      | Xor -> fun st -> let r = st.regs in s r rd (g r rs lxor imm)
      | Slt -> fun st ->
        let r = st.regs in s r rd (if g r rs < imm then 1 else 0)
      | Sub | Nor | Sll | Srl | Sra | Sltu | Mul | Mulh | Div | Rem ->
        fun st ->
          let r = st.regs in s r rd (Exec.alu_eval_int op (g r rs) imm)
    end
  | U_fpu (op, rd, rs, rt) ->
    if rd = 0 then nothing
    else fun st ->
      let r = st.regs in s r rd (Exec.fpu_eval_int op (g r rs) (g r rt))
  | U_lui (rd, v) ->
    if rd = 0 then nothing else fun st -> s st.regs rd v
  | U_xi_addi (rd, rs, imm) ->
    if rd = 0 then nothing
    else fun st -> let r = st.regs in s r rd (norm (g r rs + imm))
  | U_xi_add (rd, rs, rt) ->
    if rd = 0 then nothing
    else fun st -> let r = st.regs in s r rd (norm (g r rs + g r rt))
  | U_sync | U_nop -> nothing
  | U_load _ | U_store _ | U_amo _ | U_branch _ | U_jump _ | U_jal _
  | U_jr _ | U_xloop_de _ | U_xloop_cmp _ | U_halt -> assert false

(* Memory sync point: publish the advanced pc and the [delta] uops
   completed since the previous sync point *before* touching memory, so
   a trap escapes with exactly [step]'s partial state (pc past the
   faulting op, retired excluding it). *)
let mem_op (u : P.uop) pc ~delta : op =
  let nx = pc + 1 in
  match u with
  | P.U_load (w, rd, rs, imm, _) ->
    if rd = 0 then fun st ->
      st.pc <- nx; st.retired <- st.retired + delta;
      ignore (Memory.load_int st.mem w (g st.regs rs + imm))
    else fun st ->
      st.pc <- nx; st.retired <- st.retired + delta;
      let r = st.regs in
      s r rd (Memory.load_int st.mem w (g r rs + imm))
  | U_store (w, rt, rs, imm, _) -> fun st ->
    st.pc <- nx; st.retired <- st.retired + delta;
    let r = st.regs in
    Memory.store_int st.mem w (g r rs + imm) (g r rt)
  | U_amo (op, rd, rs, rt) -> fun st ->
    st.pc <- nx; st.retired <- st.retired + delta;
    let r = st.regs in
    let old = Memory.amo_int st.mem op (g r rs) (g r rt) in
    if rd <> 0 then s r rd old
  | _ -> assert false

(* Block terminator: run the fused-head prefix [pre] (if any), decide
   the outgoing pc, and retire the whole tail in one bump.  [dt] counts
   every uop since the last sync point including the terminator itself;
   the [halt] arm retires one less (halt never retires) and leaves pc on
   the halt, matching [fast_op]. *)
let term_op ?pre (u : P.uop) pc ~dt : op =
  let nx = pc + 1 in
  let p = match pre with Some f -> f | None -> nothing in
  match u with
  | P.U_branch (c, rs, rt, l) ->
    (match c with
     | Insn.Beq -> fun st ->
       p st;
       let r = st.regs in
       st.pc <- (if g r rs = g r rt then l else nx);
       st.retired <- st.retired + dt
     | Bne -> fun st ->
       p st;
       let r = st.regs in
       st.pc <- (if g r rs <> g r rt then l else nx);
       st.retired <- st.retired + dt
     | Blt -> fun st ->
       p st;
       let r = st.regs in
       st.pc <- (if g r rs < g r rt then l else nx);
       st.retired <- st.retired + dt
     | Bge -> fun st ->
       p st;
       let r = st.regs in
       st.pc <- (if g r rs >= g r rt then l else nx);
       st.retired <- st.retired + dt
     | Bltu -> fun st ->
       p st;
       let r = st.regs in
       st.pc <-
         (if g r rs land 0xFFFFFFFF < g r rt land 0xFFFFFFFF then l else nx);
       st.retired <- st.retired + dt
     | Bgeu -> fun st ->
       p st;
       let r = st.regs in
       st.pc <-
         (if g r rs land 0xFFFFFFFF >= g r rt land 0xFFFFFFFF then l else nx);
       st.retired <- st.retired + dt)
  | U_xloop_cmp (rs, rt, l) -> fun st ->
    p st;
    let r = st.regs in
    st.pc <- (if g r rs < g r rt then l else nx);
    st.retired <- st.retired + dt
  | U_xloop_de (rt, l) -> fun st ->
    p st;
    st.pc <- (if g st.regs rt = 0 then l else nx);
    st.retired <- st.retired + dt
  | U_jump l -> fun st ->
    p st;
    st.pc <- l;
    st.retired <- st.retired + dt
  | U_jal (link, l) -> fun st ->
    p st;
    s st.regs Reg.ra link;
    st.pc <- l;
    st.retired <- st.retired + dt
  | U_jr rs -> fun st ->
    p st;
    st.pc <- g st.regs rs;
    st.retired <- st.retired + dt
  | U_halt -> fun st ->
    p st;
    st.pc <- pc;
    st.retired <- st.retired + (dt - 1);
    raise Exec.Halted
  | _ -> assert false

(* Hot head+terminator pairs, fully inlined (the addi+bne / addi+blt
   back edges and the [.xi] bump + xloop back edge the pair profile
   shows dominate); the rest compose [run_head] in front of [term_op]'s
   generic arms. *)
let term_op1 (h : head) (u : P.uop) pc ~dt : op =
  let nx = pc + 1 in
  match h, u with
  | H_addi (rd, rs, imm), P.U_branch (Insn.Bne, brs, brt, l) -> fun st ->
    let r = st.regs in
    s r rd (norm (g r rs + imm));
    st.pc <- (if g r brs <> g r brt then l else nx);
    st.retired <- st.retired + dt
  | H_addi (rd, rs, imm), U_branch (Insn.Blt, brs, brt, l) -> fun st ->
    let r = st.regs in
    s r rd (norm (g r rs + imm));
    st.pc <- (if g r brs < g r brt then l else nx);
    st.retired <- st.retired + dt
  | H_addi (rd, rs, imm), U_xloop_cmp (xrs, xrt, l) -> fun st ->
    let r = st.regs in
    s r rd (norm (g r rs + imm));
    st.pc <- (if g r xrs < g r xrt then l else nx);
    st.retired <- st.retired + dt
  | H_add (rd, rs, rt), U_xloop_cmp (xrs, xrt, l) -> fun st ->
    let r = st.regs in
    s r rd (norm (g r rs + g r rt));
    st.pc <- (if g r xrs < g r xrt then l else nx);
    st.retired <- st.retired + dt
  | _ ->
    let pre st = run_head h st.regs in
    term_op ~pre u pc ~dt

(* Bare head pairs/triples in one closure, add/addi combos inlined:
   for the short bare stretches between memory ops, a branch-free
   specialized closure beats the cell loop below, and the surrounding
   out-of-order window hides the register-array round trips that
   dominate long dependent chains. *)
let fuse2_bare (h1 : head) (h2 : head) : op =
  match h1, h2 with
  | H_add (d1, a1, b1), H_add (d2, a2, b2) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + g r b1));
    s r d2 (norm (g r a2 + g r b2))
  | H_add (d1, a1, b1), H_addi (d2, a2, i2) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + g r b1));
    s r d2 (norm (g r a2 + i2))
  | H_addi (d1, a1, i1), H_add (d2, a2, b2) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + i1));
    s r d2 (norm (g r a2 + g r b2))
  | H_addi (d1, a1, i1), H_addi (d2, a2, i2) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + i1));
    s r d2 (norm (g r a2 + i2))
  | _ -> fun st ->
    let r = st.regs in
    run_head h1 r;
    run_head h2 r

let fuse3_bare (h1 : head) (h2 : head) (h3 : head) : op =
  match h1, h2, h3 with
  | H_add (d1, a1, b1), H_add (d2, a2, b2), H_add (d3, a3, b3) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + g r b1));
    s r d2 (norm (g r a2 + g r b2));
    s r d3 (norm (g r a3 + g r b3))
  | H_add (d1, a1, b1), H_add (d2, a2, b2), H_addi (d3, a3, i3) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + g r b1));
    s r d2 (norm (g r a2 + g r b2));
    s r d3 (norm (g r a3 + i3))
  | H_addi (d1, a1, i1), H_add (d2, a2, b2), H_add (d3, a3, b3) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + i1));
    s r d2 (norm (g r a2 + g r b2));
    s r d3 (norm (g r a3 + g r b3))
  | H_addi (d1, a1, i1), H_addi (d2, a2, i2), H_addi (d3, a3, i3) -> fun st ->
    let r = st.regs in
    s r d1 (norm (g r a1 + i1));
    s r d2 (norm (g r a2 + i2));
    s r d3 (norm (g r a3 + i3))
  | _ -> fun st ->
    let r = st.regs in
    run_head h1 r;
    run_head h2 r;
    run_head h3 r

(* A *long* run of fusible heads inside a block compiles into a
   micro-code cell array interpreted by one closure.  Every
   architectural register write still happens in order, but an operand
   that names the *previous* op's destination reads the forwarded value
   — a local the compiler keeps in a machine register — instead of
   loading the register array back.  A dependent chain (acc <- acc + x,
   the reduction and induction-variable idiom) therefore never pays the
   store-to-load forward that dominates its latency on the per-op
   tiers.  Forwarding is resolved here, at compile time, against the
   previous op's destination: [f_s1]/[f_s2] are register numbers, or
   [-1] for the forwarded value, or (s2 only) [-2] for the immediate. *)
type fcell = {
  f_kind : int;  (* 0 = add (sign-extending), 1 = generic alu, 2 = const *)
  f_rd : int;
  f_s1 : int;
  f_s2 : int;
  f_imm : int;
  f_op : Insn.alu_op;
}

let head_rd = function
  | H_add (rd, _, _) | H_addi (rd, _, _) | H_alu (_, rd, _, _)
  | H_alui (_, rd, _, _) | H_const (rd, _) -> rd

let fcell_of (prev_rd : int) (h : head) : fcell =
  let fwd x = if x = prev_rd then -1 else x in
  match h with
  | H_add (rd, rs, rt) ->
    { f_kind = 0; f_rd = rd; f_s1 = fwd rs; f_s2 = fwd rt; f_imm = 0;
      f_op = Insn.Add }
  | H_addi (rd, rs, imm) ->
    { f_kind = 0; f_rd = rd; f_s1 = fwd rs; f_s2 = -2; f_imm = imm;
      f_op = Insn.Add }
  | H_alu (op, rd, rs, rt) ->
    { f_kind = 1; f_rd = rd; f_s1 = fwd rs; f_s2 = fwd rt; f_imm = 0;
      f_op = op }
  | H_alui (op, rd, rs, imm) ->
    { f_kind = 1; f_rd = rd; f_s1 = fwd rs; f_s2 = -2; f_imm = imm;
      f_op = op }
  | H_const (rd, v) ->
    { f_kind = 2; f_rd = rd; f_s1 = 0; f_s2 = -2; f_imm = v;
      f_op = Insn.Add }

let fuse_run (hs : head list) : op =
  let rec cells prev = function
    | [] -> []
    | h :: tl -> fcell_of prev h :: cells (head_rd h) tl
  in
  let arr = Array.of_list (cells (-1) hs) in
  let n = Array.length arr in
  if Array.for_all (fun c -> c.f_kind = 0) arr then begin
    (* All-add run (the dominant case by far: induction variables,
       address arithmetic, reductions), packed as (rd, s1, s2, imm)
       quads in a flat int array.  The forwarded value is carried
       *unnormalized*: addition is congruent mod 2^32, and 2^32 divides
       2^63, so 63-bit wrap-around preserves the congruence and
       [norm v] remains exact no matter how long the chain grows.  Each
       store still publishes the normalized architectural value, but
       the sign-extension shifts sit off the loop-carried path, leaving
       a 1-cycle add as the chain's whole latency. *)
    let p =
      Array.init (4 * n)
        (fun idx ->
           let c = arr.(idx / 4) in
           match idx mod 4 with
           | 0 -> c.f_rd
           | 1 -> c.f_s1
           | 2 -> c.f_s2
           | _ -> c.f_imm)
    in
    let m = 4 * n in
    fun st ->
      let r = st.regs in
      let v = ref 0 in
      let k = ref 0 in
      while !k < m do
        let s1 = Array.unsafe_get p (!k + 1) in
        let s2 = Array.unsafe_get p (!k + 2) in
        let x1 = if s1 >= 0 then g r s1 else !v in
        let x2 =
          if s2 >= 0 then g r s2
          else if s2 = -1 then !v
          else Array.unsafe_get p (!k + 3)
        in
        let x = x1 + x2 in
        s r (Array.unsafe_get p !k) (norm x);
        v := x;
        k := !k + 4
      done
  end
  else fun st ->
    let r = st.regs in
    let v = ref 0 in
    for k = 0 to n - 1 do
      let c = Array.unsafe_get arr k in
      let x1 = if c.f_s1 >= 0 then g r c.f_s1 else !v in
      let x =
        match c.f_kind with
        | 0 ->
          let x2 =
            if c.f_s2 >= 0 then g r c.f_s2
            else if c.f_s2 = -1 then !v
            else c.f_imm
          in
          norm (x1 + x2)
        | 1 ->
          let x2 =
            if c.f_s2 >= 0 then g r c.f_s2
            else if c.f_s2 = -1 then !v
            else c.f_imm
          in
          Exec.alu_eval_int c.f_op x1 x2
        | _ -> c.f_imm
      in
      s r c.f_rd x;
      v := x
    done

(* Address-gen + load + bump: the other dominant profiled triple.  The
   load is still a sync point inside the fused closure — the delta
   published covers the head and everything before it. *)
let fuse3_load (h1 : head) (u : P.uop) pc ~delta (h3 : head) : op =
  let nx = pc + 1 in
  match u, h1, h3 with
  | P.U_load (w, rd, rs, imm, _), H_add (d1, a1, b1), H_addi (d3, a3, i3) ->
    fun st ->
      let r = st.regs in
      s r d1 (norm (g r a1 + g r b1));
      st.pc <- nx; st.retired <- st.retired + delta;
      s r rd (Memory.load_int st.mem w (g r rs + imm));
      s r d3 (norm (g r a3 + i3))
  | U_load (w, rd, rs, imm, _), H_addi (d1, a1, i1), H_addi (d3, a3, i3) ->
    fun st ->
      let r = st.regs in
      s r d1 (norm (g r a1 + i1));
      st.pc <- nx; st.retired <- st.retired + delta;
      s r rd (Memory.load_int st.mem w (g r rs + imm));
      s r d3 (norm (g r a3 + i3))
  | U_load (w, rd, rs, imm, _), _, _ -> fun st ->
    let r = st.regs in
    run_head h1 r;
    st.pc <- nx; st.retired <- st.retired + delta;
    s r rd (Memory.load_int st.mem w (g r rs + imm));
    run_head h3 r
  | _ -> assert false

(* Chain segments with three calls per closure level. *)
let rec chain (fs : op list) : op =
  match fs with
  | [] -> nothing
  | [ f ] -> f
  | [ f; g ] -> fun st -> f st; g st
  | [ f; g; h ] -> fun st -> f st; g st; h st
  | f :: g :: h :: rest ->
    let tl = chain rest in
    fun st -> f st; g st; h st; tl st

(* Compile the block spanning [l..e] (every uop valid; only uop [e] may
   be a terminator) into one closure, fusing greedily left to right:
   maximal head runs become forwarded chains ({!fuse_run}), a lone
   address-gen head in front of a load with an index bump behind it
   becomes the profiled load triple ({!fuse3_load}), a lone head in
   front of the terminator inlines into it ({!term_op1}).  Returns the
   closure and the fused groups fired, as (head pc,
   "class+class+...") — the block plan the triple profiler reports. *)
let compile_block (src : int Insn.t array) (uops : P.uop array) l e
  : op * (int * string) list =
  let rules = ref [] in
  let rule a len =
    rules :=
      (a,
       String.concat "+"
         (List.init len (fun k -> P.uop_class uops.(a + k))))
      :: !rules
  in
  let hd j =
    if j <= e && kind_of uops.(j) = K_bare then head_of src.(j) uops.(j)
    else None
  in
  (* [since] = uops completed since the last sync point, compile-time. *)
  let rec seg i since : op list =
    if i > e then
      let nx = e + 1 and dt = since in
      [ (fun st -> st.pc <- nx; st.retired <- st.retired + dt) ]
    else
      let u = uops.(i) in
      match kind_of u with
      | K_term -> [ term_op u i ~dt:(since + 1) ]
      | K_mem -> mem_op u i ~delta:since :: seg (i + 1) 1
      | K_bare ->
        match head_of src.(i) u with
        | None -> bare_op u :: seg (i + 1) (since + 1)
        | Some h1 ->
          (* maximal run of fusible heads starting at [i] *)
          let rec collect j acc =
            match hd j with
            | Some h -> collect (j + 1) (h :: acc)
            | None -> (j, List.rev acc)
          in
          let j, hs = collect (i + 1) [ h1 ] in
          match hs with
          | [ _ ] ->
            (match (if i + 1 <= e then Some uops.(i + 1) else None),
                   hd (i + 2) with
             | Some (P.U_load (_, rd, _, _, _) as lu), Some h3
               when rd <> 0 ->
               rule i 3;
               fuse3_load h1 lu (i + 1) ~delta:(since + 1) h3
               :: seg (i + 3) 2
             | _ ->
               if i + 1 = e && kind_of uops.(e) = K_term then
                 [ term_op1 h1 uops.(e) e ~dt:(since + 2) ]
               else bare_op u :: seg (i + 1) (since + 1))
          | [ _; h2 ] ->
            if i + 2 = e && kind_of uops.(e) = K_term then begin
              rule i 3;
              [ term_op ~pre:(fuse2_bare h1 h2) uops.(e) e ~dt:(since + 3) ]
            end
            else begin
              rule i 2;
              fuse2_bare h1 h2 :: seg (i + 2) (since + 2)
            end
          | [ _; h2; h3 ] ->
            rule i 3;
            fuse3_bare h1 h2 h3 :: seg (i + 3) (since + 3)
          | _ ->
            let len = List.length hs in
            rule i len;
            fuse_run hs :: seg j (since + len)
  in
  let f = chain (seg l 0) in
  (f, List.rev !rules)

(* Blocks longer than this split; bounds the fuel the driver must
   reserve to keep out-of-fuel reports bit-identical. *)
let max_block_len = 64

(* -- LPSU lane metadata ------------------------------------------------ *)

(* Which pcs an LPSU lane may execute through the compiled closure
   instead of {!Exec.step}.  Plain = single-cycle, portless, trapless,
   and observationally silent: no memory traffic (ports, LSQ, store
   broadcasts), no long-latency unit, no loop bookkeeping, and a control
   transfer only when "taken" is recoverable from the outgoing pc — a
   conditional branch targeting its own fall-through is indistinguishable
   either way, so it stays slow.  The LPSU demotes further pcs it
   observes (CIR registers, last-CIR-write pcs, dynamic-bound writes)
   and bypasses the whole array under any attached observer. *)
let lane_meta_of (src : int Insn.t array) (uops : P.uop array)
    (ops : op array) : lane_meta array =
  Array.init (Array.length uops) (fun pc ->
      let insn = src.(pc) and u = uops.(pc) in
      let plain =
        uop_valid u && not (Insn.is_mem insn) && not (Insn.is_llfu insn)
        && (match u with
            | P.U_xloop_de _ | U_xloop_cmp _ | U_halt -> false
            | U_branch (_, _, _, l) -> l <> pc + 1
            | _ -> true)
      in
      if not plain then L_slow
      else
        let ctrl = match u with
          | P.U_branch _ -> 1
          | U_jump _ | U_jal _ | U_jr _ -> 2
          | _ -> 0
        in
        L_plain { l_op = ops.(pc); l_insn = insn;
                  l_rd = Insn.dest_reg insn;
                  l_s1 = Insn.src1 insn; l_s2 = Insn.src2 insn;
                  l_ctrl = ctrl })

(* -- Compilation ------------------------------------------------------- *)

let compile_fresh (pre : Program.predecoded) : compiled =
  let uops = pre.P.uops in
  let src = pre.P.source.P.insns in
  let n = Array.length uops in
  let ops =
    Array.init n (fun pc ->
        let u = uops.(pc) in
        if uop_valid u then fast_op u pc else safe_op u pc)
  in
  let sup = Array.copy ops in
  let rules = ref [] in
  (* Greedy left-to-right pairing, but installed in any order: a fused
     head at [pc] overlapping one at [pc+1] is harmless (whichever head
     control reaches wins; both execute exact pair semantics), so no
     overlap resolution is needed. *)
  for pc = n - 2 downto 0 do
    match fuse_pair src uops pc with
    | Some (f, rule) ->
      sup.(pc) <- f;
      rules := (pc, rule) :: !rules
    | None -> ()
  done;
  (* Block closures at the leaders of multi-uop blocks; every other pc
     (jr targets, mid-block branch destinations in hand-built code)
     keeps its single-op closure, so any dynamic pc is dispatchable. *)
  let leaders = pre.P.leaders in
  let blk = Array.copy ops in
  let spans = ref [] and btriples = ref [] and max_block = ref 1 in
  let block_end l =
    let rec go j =
      if j >= n || (j > l && leaders.(j)) || j - l >= max_block_len
         || not (uop_valid uops.(j))
      then j - 1
      else if kind_of uops.(j) = K_term then j
      else go (j + 1)
    in
    go l
  in
  for l = n - 1 downto 0 do
    if leaders.(l) then begin
      let e = block_end l in
      if e > l then begin
        let f, rls = compile_block src uops l e in
        blk.(l) <- f;
        spans := (l, e - l + 1) :: !spans;
        btriples := rls @ !btriples;
        max_block := max !max_block (e - l + 1)
      end
    end
  done;
  { pre; ops; sup; rules = !rules; blk; max_block = !max_block;
    spans = !spans; btriples = !btriples;
    lane = lane_meta_of src uops ops }

(* Per-domain memo keyed by physical equality, same shape as the
   predecode memo: sweeps re-run the same few programs thousands of
   times, so compilation is paid once per program per domain. *)

let memo : (Program.predecoded * compiled) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let memo_cap = 8

let compile (pre : Program.predecoded) : compiled =
  let cache = Domain.DLS.get memo in
  match List.find_opt (fun (p, _) -> p == pre) !cache with
  | Some (_, c) -> c
  | None ->
    let c = compile_fresh pre in
    let rest =
      if List.length !cache >= memo_cap
      then List.filteri (fun i _ -> i < memo_cap - 1) !cache
      else !cache
    in
    cache := (pre, c) :: rest;
    c

let superops prog = (compile (Program.predecode prog)).rules

let fused_heads prog =
  let c = compile (Program.predecode prog) in
  let marks = Array.make (Array.length c.ops) false in
  List.iter (fun (pc, _) -> marks.(pc) <- true) c.rules;
  marks

let block_plan prog =
  let c = compile (Program.predecode prog) in
  (c.spans, c.btriples)

let lane_meta pre = (compile pre).lane

(* -- Driver ------------------------------------------------------------ *)

(* Fuel parity with {!Exec.run_serial}: a superop always retires its
   pair whole, so running fused code until [fuel] could overshoot by
   one.  The main loop therefore runs fused code only while at least two
   units of fuel remain (a superop landing exactly on [fuel] is fine),
   and the final unit — if still unspent — executes one *unfused* op.
   Out-of-fuel reports are then bit-identical to the per-step tiers. *)
let run_serial ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Memory.t) : (Exec.run, Exec.stop) result =
  let c = compile (Program.predecode prog) in
  let sup = c.sup and ops = c.ops in
  let n = Array.length sup in
  let st = { regs = Array.make Reg.num_regs 0; mem = m;
             pc = entry; retired = 0 } in
  try
    let lim = fuel - 1 in
    while st.retired < lim do
      let pc = st.pc in
      if pc < 0 || pc >= n then
        raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
      (Array.unsafe_get sup pc) st
    done;
    if st.retired < fuel then begin
      let pc = st.pc in
      if pc < 0 || pc >= n then
        raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
      (Array.unsafe_get ops pc) st
    end;
    Error (Exec.Out_of_fuel { pc = st.pc; insns = st.retired;
                              cycle = st.retired })
  with Exec.Halted ->
    Ok { Exec.dynamic_insns = st.retired;
         final = { Exec.regs = st.regs; pc = st.pc } }

(* Block-dispatch driver.  A block dispatch retires at most [max_block]
   uops in one bump, so the main loop only runs while that much fuel
   provably remains; the residue executes on the per-uop closures, which
   stop on the exact instruction the per-step tiers would — out-of-fuel
   reports stay bit-identical. *)
let run_serial_block ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Memory.t) : (Exec.run, Exec.stop) result =
  let c = compile (Program.predecode prog) in
  let blk = c.blk and ops = c.ops in
  let n = Array.length blk in
  let st = { regs = Array.make Reg.num_regs 0; mem = m;
             pc = entry; retired = 0 } in
  try
    let lim = fuel - c.max_block in
    while st.retired <= lim do
      let pc = st.pc in
      if pc < 0 || pc >= n then
        raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
      (Array.unsafe_get blk pc) st
    done;
    while st.retired < fuel do
      let pc = st.pc in
      if pc < 0 || pc >= n then
        raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
      (Array.unsafe_get ops pc) st
    done;
    Error (Exec.Out_of_fuel { pc = st.pc; insns = st.retired;
                              cycle = st.retired })
  with Exec.Halted ->
    Ok { Exec.dynamic_insns = st.retired;
         final = { Exec.regs = st.regs; pc = st.pc } }

type block_profile = {
  bp_dispatches : int;
  bp_insns : int;
  bp_hist : int array;  (** [bp_hist.(k)] = dispatches that retired k *)
}

(* Instrumented [run_serial_block] for the coverage report; the
   per-dispatch accounting allocates nothing but costs a handful of
   loads per dispatch, so it stays out of the measured driver. *)
let run_serial_block_profiled ?(entry = 0) ?(fuel = 200_000_000) prog
    (m : Memory.t) : (Exec.run, Exec.stop) result * block_profile =
  let c = compile (Program.predecode prog) in
  let blk = c.blk and ops = c.ops in
  let n = Array.length blk in
  let hist = Array.make (c.max_block + 1) 0 in
  let dispatches = ref 0 in
  let st = { regs = Array.make Reg.num_regs 0; mem = m;
             pc = entry; retired = 0 } in
  let res =
    try
      let lim = fuel - c.max_block in
      while st.retired <= lim do
        let pc = st.pc in
        if pc < 0 || pc >= n then
          raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
        let before = st.retired in
        (try (Array.unsafe_get blk pc) st
         with Exec.Halted ->
           incr dispatches;
           hist.(st.retired - before) <- hist.(st.retired - before) + 1;
           raise Exec.Halted);
        incr dispatches;
        hist.(st.retired - before) <- hist.(st.retired - before) + 1
      done;
      while st.retired < fuel do
        let pc = st.pc in
        if pc < 0 || pc >= n then
          raise (Exec.Trap (Printf.sprintf "pc out of range: %d" pc));
        let before = st.retired in
        (try (Array.unsafe_get ops pc) st
         with Exec.Halted ->
           incr dispatches;
           hist.(st.retired - before) <- hist.(st.retired - before) + 1;
           raise Exec.Halted);
        incr dispatches;
        hist.(st.retired - before) <- hist.(st.retired - before) + 1
      done;
      Error (Exec.Out_of_fuel { pc = st.pc; insns = st.retired;
                                cycle = st.retired })
    with Exec.Halted ->
      Ok { Exec.dynamic_insns = st.retired;
           final = { Exec.regs = st.regs; pc = st.pc } }
  in
  (res, { bp_dispatches = !dispatches; bp_insns = st.retired;
          bp_hist = hist })
