(** Execution-tier selection for observer-free functional runs.

    All four tiers implement identical architectural semantics; they
    differ only in dispatch cost.  Timing models and anything else that
    consumes per-instruction events always executes through
    {!Exec.step} and is unaffected by this selection — except the LPSU
    lane fast path, which consults the selection and falls back to
    [Exec.step] under [Ref] or any attached observer. *)

type t =
  | Ref        (** decode the raw instruction stream every step *)
  | Predecode  (** micro-op dispatch ({!Exec.run_serial}) *)
  | Threaded   (** closure-compiled with superop pair fusion
                   ({!Threaded.run_serial}) *)
  | Block      (** one compiled closure per basic block, triples fused
                   ({!Threaded.run_serial_block}) *)

val name : t -> string
val of_string : string -> (t, string) result
val all : t list

val env_var : string
(** ["XLOOPS_EXEC_TIER"]: initializes the process-wide selection; the
    [--exec-tier] flag overrides it. *)

val get : unit -> t
val set : t -> unit
(** Process-wide selection (atomic; default [Predecode] unless
    {!env_var} says otherwise). *)

val run_serial : ?entry:int -> ?fuel:int -> Xloops_asm.Program.t ->
  Xloops_mem.Memory.t -> (Exec.run, Exec.stop) result
(** Functional run through the currently selected tier. *)

val run_serial_with : t -> ?entry:int -> ?fuel:int ->
  Xloops_asm.Program.t -> Xloops_mem.Memory.t ->
  (Exec.run, Exec.stop) result
(** Functional run through an explicit tier (the bench harness measures
    all tiers side by side regardless of the global selection). *)
