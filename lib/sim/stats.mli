(** Microarchitectural event counters, accumulated by every timing model
    and priced by the energy model ({!Xloops_energy.Model}) the way
    McPAT prices gem5 events (Section IV-A). *)

type t = {
  mutable committed_insns : int;
  mutable squashed_insns : int;
  mutable iterations : int;
  mutable icache_fetches : int;
  mutable ib_fetches : int;    (** fetches from an LPSU instr buffer *)
  mutable decodes : int;
  mutable renames : int;
  mutable rob_ops : int;
  mutable iq_ops : int;
  mutable rf_reads : int;
  mutable rf_writes : int;
  mutable alu_ops : int;
  mutable mul_ops : int;
  mutable div_ops : int;
  mutable fpu_ops : int;
  mutable xi_ops : int;        (** MIV computations via the MIVT *)
  mutable branches : int;
  mutable mispredicts : int;
  mutable dcache_accesses : int;
  mutable dcache_misses : int;
  mutable icache_misses : int;
  mutable amo_ops : int;
  mutable lsq_searches : int;
  mutable lsq_writes : int;
  mutable store_broadcasts : int;
  mutable lsq_forwards : int;
  mutable violations : int;    (** memory dependence violations *)
  mutable scan_insns : int;
  mutable cib_reads : int;
  mutable cib_writes : int;
  mutable idq_ops : int;
  mutable xloops_specialized : int;
  mutable xloops_traditional : int;
  mutable migrations : int;    (** adaptive LPSU->GPP migrations *)
  mutable faults_injected : int; (** transient faults applied by a plan *)
  mutable watchdog_hangs : int;  (** structured hangs the watchdog caught *)
  mutable degradations : int;    (** specialized loops rolled back and
                                     re-executed traditionally *)
  mutable wall_ns : int;         (** wall-clock nanoseconds of the producing
                                     simulation (set by the run engine) *)
  mutable cache_hits : int;      (** 1 if this run was served from the
                                     result cache instead of simulated *)
  mutable cache_misses : int;    (** 1 if this run was simulated because of
                                     a cache miss *)
  (* Per-lane cycle breakdown (Figure 6). *)
  mutable cyc_exec : int;
  mutable cyc_stall_raw : int;
  mutable cyc_stall_mem : int;
  mutable cyc_stall_llfu : int;
  mutable cyc_stall_cir : int;
  mutable cyc_stall_lsq : int;
  mutable cyc_squash : int;
  mutable cyc_idle : int;
}

val create : unit -> t

val merge : into:t -> t -> unit
(** Add every counter of the second argument into [into]. *)

val lane_breakdown : t -> (string * float) list
(** Lane-cycle categories as fractions, in Figure 6's stacking order:
    exec, raw, mem, llfu, cir, lsq, squash, idle. *)

val pp : Format.formatter -> t -> unit
