(** GPP timing models.

    Both models consume the committed-instruction event stream produced by
    {!Exec.step} and maintain a cycle estimate:

    - {b In-order}: a single-issue scoreboard.  An instruction issues when
      the previous instruction has issued, its source operands are ready
      and any unpipelined unit (divider) is free; taken branches insert
      [branch_penalty] bubbles; loads have a load-use latency plus the L1
      miss penalty.

    - {b Out-of-order}: the classic windowed-dataflow model.  Dispatch is
      bounded by issue width and reorder-window occupancy; an instruction
      issues when its operands are ready; loads wait for earlier stores to
      the same word; AMOs and fences serialize memory; branch mispredicts
      (bimodal predictor) redirect dispatch to the branch's completion plus
      the refill penalty.

    This is the same modelling altitude as the paper's gem5 configurations:
    cycle-approximate, honest about where ILP comes from. *)

open Xloops_isa
module Cache = Xloops_mem.Cache

type latencies = {
  alu : int; mul : int; div : int; fpu : int; load_use : int; amo : int;
}

let latencies_of (g : Config.gpp) = {
  alu = 1;
  mul = g.mul_latency;
  div = g.div_latency;
  fpu = g.fpu_latency;
  load_use = g.load_use_latency;
  amo = g.load_use_latency + 1;
}

let insn_class_latency lat (i : int Insn.t) =
  match i with
  | Alu ((Mul | Mulh), _, _, _) | Alui ((Mul | Mulh), _, _, _) -> lat.mul
  | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) -> lat.div
  | Fpu (Fdiv, _, _, _) -> lat.div
  | Fpu (_, _, _, _) -> lat.fpu
  | _ -> lat.alu

(* ------------------------------------------------------------------ *)
(*  In-order                                                           *)
(* ------------------------------------------------------------------ *)

module Inorder = struct
  type t = {
    cfg : Config.gpp;
    lat : latencies;
    stats : Stats.t;
    l1i : Cache.t;
    l1d : Cache.t;
    reg_ready : int array;
    mutable last_issue : int;
    mutable last_complete : int;
    mutable div_busy_until : int;
  }

  let create (cfg : Config.gpp) (stats : Stats.t) = {
    cfg; lat = latencies_of cfg; stats;
    l1i = Cache.create ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways
        ~line_bytes:cfg.l1_line ();
    l1d = Cache.create ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways
        ~line_bytes:cfg.l1_line ();
    reg_ready = Array.make Reg.num_regs 0;
    last_issue = 0; last_complete = 0; div_busy_until = 0;
  }

  let count_exec_events (s : Stats.t) (i : int Insn.t) =
    s.decodes <- s.decodes + 1;
    s.rf_reads <- s.rf_reads
                  + (if Insn.src1 i >= 0 then 1 else 0)
                  + (if Insn.src2 i >= 0 then 1 else 0);
    if Insn.dest_reg i >= 0 then s.rf_writes <- s.rf_writes + 1;
    (match i with
     | Alu ((Mul | Mulh), _, _, _) | Alui ((Mul | Mulh), _, _, _) ->
       s.mul_ops <- s.mul_ops + 1
     | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _) ->
       s.div_ops <- s.div_ops + 1
     | Fpu _ -> s.fpu_ops <- s.fpu_ops + 1
     | Xi_addi _ | Xi_add _ -> s.xi_ops <- s.xi_ops + 1
     | Amo _ -> s.amo_ops <- s.amo_ops + 1
     | _ -> s.alu_ops <- s.alu_ops + 1);
    if Insn.is_branch i then s.branches <- s.branches + 1

  let consume t (ev : Exec.event) =
    let s = t.stats in
    let insn = Exec.event_insn ev in
    s.committed_insns <- s.committed_insns + 1;
    s.icache_fetches <- s.icache_fetches + 1;
    count_exec_events s insn;
    (* Fetch. *)
    let fetch_extra =
      if Cache.access t.l1i (ev.pc * 4) then 0
      else begin
        s.icache_misses <- s.icache_misses + 1;
        t.cfg.miss_penalty
      end
    in
    (* Operand readiness. *)
    let ready =
      let s1 = Insn.src1 insn and s2 = Insn.src2 insn in
      max (if s1 >= 0 then t.reg_ready.(s1) else 0)
        (if s2 >= 0 then t.reg_ready.(s2) else 0)
    in
    let struct_ready =
      match insn with
      | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _)
      | Fpu (Fdiv, _, _, _) -> t.div_busy_until
      | _ -> 0
    in
    let issue =
      max (t.last_issue + 1 + fetch_extra) (max ready struct_ready)
    in
    (* Completion. *)
    let miss_stall = ref 0 in
    let complete =
      if ev.mem_addr >= 0 then begin
        s.dcache_accesses <- s.dcache_accesses + 1;
        let hit = Cache.access t.l1d ev.mem_addr in
        if not hit then begin
          s.dcache_misses <- s.dcache_misses + 1;
          (* A simple in-order core blocks on an L1 miss regardless of
             whether anything consumes the value. *)
          miss_stall := t.cfg.miss_penalty
        end;
        let base = if ev.mem_is_amo then t.lat.amo
          else if ev.mem_is_store then 1
          else t.lat.load_use in
        issue + base + !miss_stall
      end else
        issue + insn_class_latency t.lat insn
    in
    (match insn with
     | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _)
     | Fpu (Fdiv, _, _, _) -> t.div_busy_until <- complete
     | _ -> ());
    let rd = Insn.dest_reg insn in
    if rd >= 0 then t.reg_ready.(rd) <- complete;
    (* Control flow: taken branches insert fetch bubbles. *)
    t.last_issue <-
      issue + !miss_stall
      + (if ev.taken then t.cfg.branch_penalty else 0);
    t.last_complete <- max t.last_complete complete

  let now t = max t.last_issue t.last_complete

  (** Drain the pipeline (used before a specialized phase / at halt). *)
  let barrier t =
    let c = now t in
    t.last_issue <- c;
    t.last_complete <- c

  (** Jump the clock forward (used after a specialized phase). *)
  let skip_to t cycle =
    let c = max cycle (now t) in
    t.last_issue <- c;
    t.last_complete <- c;
    Array.fill t.reg_ready 0 (Array.length t.reg_ready) c
end

(* ------------------------------------------------------------------ *)
(*  Out-of-order                                                       *)
(* ------------------------------------------------------------------ *)

module Ooo = struct
  type t = {
    cfg : Config.gpp;
    width : int;
    window : int;
    lat : latencies;
    stats : Stats.t;
    l1i : Cache.t;
    l1d : Cache.t;
    bp : Branch_pred.t;
    reg_ready : int array;
    ring : int array;              (* completion times, window ring *)
    mutable n : int;               (* dynamic instruction number *)
    mutable dispatch_cycle : int;
    mutable dispatched_in_cycle : int;
    mutable redirect : int;        (* front end stalled until this cycle *)
    mutable mem_serial : int;      (* AMO/fence serialization point *)
    store_ready : (int, int) Hashtbl.t;  (* word addr -> completion *)
    mutable max_complete : int;
  }

  let create (cfg : Config.gpp) (stats : Stats.t) =
    let width, window =
      match cfg.kind with
      | Config.Ooo { width; window } -> width, window
      | Config.Inorder -> invalid_arg "Gpp_timing.Ooo.create: in-order config"
    in
    { cfg; width; window; lat = latencies_of cfg; stats;
      l1i = Cache.create ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways
          ~line_bytes:cfg.l1_line ();
      l1d = Cache.create ~size_bytes:cfg.l1_size ~ways:cfg.l1_ways
          ~line_bytes:cfg.l1_line ();
      bp = Branch_pred.create ();
      reg_ready = Array.make Reg.num_regs 0;
      ring = Array.make window 0;
      n = 0; dispatch_cycle = 0; dispatched_in_cycle = 0;
      redirect = 0; mem_serial = 0;
      store_ready = Hashtbl.create 64;
      max_complete = 0 }

  let consume t (ev : Exec.event) =
    let s = t.stats in
    let insn = Exec.event_insn ev in
    s.committed_insns <- s.committed_insns + 1;
    s.icache_fetches <- s.icache_fetches + 1;
    s.renames <- s.renames + 1;
    s.rob_ops <- s.rob_ops + 1;
    s.iq_ops <- s.iq_ops + 1;
    Inorder.count_exec_events s insn;
    (* Fetch-side cache (fetch groups share lines; charge misses only). *)
    if not (Cache.access t.l1i (ev.pc * 4)) then begin
      s.icache_misses <- s.icache_misses + 1;
      t.redirect <- max t.redirect (t.dispatch_cycle + t.cfg.miss_penalty)
    end;
    (* Dispatch: width, window, and redirect constraints. *)
    let window_ready = t.ring.(t.n mod t.window) in
    let d = max (max t.dispatch_cycle t.redirect) window_ready in
    if d > t.dispatch_cycle then begin
      t.dispatch_cycle <- d;
      t.dispatched_in_cycle <- 0
    end;
    if t.dispatched_in_cycle >= t.width then begin
      t.dispatch_cycle <- t.dispatch_cycle + 1;
      t.dispatched_in_cycle <- 0
    end;
    let dispatch = t.dispatch_cycle in
    t.dispatched_in_cycle <- t.dispatched_in_cycle + 1;
    (* Operand readiness. *)
    let ready =
      let s1 = Insn.src1 insn and s2 = Insn.src2 insn in
      max dispatch
        (max (if s1 >= 0 then t.reg_ready.(s1) else 0)
           (if s2 >= 0 then t.reg_ready.(s2) else 0))
    in
    let issue = max ready t.mem_serial in
    (* Completion. *)
    let complete =
      if ev.mem_addr >= 0 then begin
        s.dcache_accesses <- s.dcache_accesses + 1;
        let hit = Cache.access t.l1d ev.mem_addr in
        if not hit then s.dcache_misses <- s.dcache_misses + 1;
        let miss = if hit then 0 else t.cfg.miss_penalty in
        let word = ev.mem_addr / 4 in
        if ev.mem_is_amo then begin
          (* Conservative AMO: waits for all earlier memory traffic and
             serializes later traffic (Section IV-B's "rather
             conservative" implementation). *)
          let c = max issue t.mem_serial + t.lat.amo + miss in
          t.mem_serial <- c;
          Hashtbl.replace t.store_ready word c;
          c
        end else if ev.mem_is_store then begin
          let c = issue + 1 + miss in
          Hashtbl.replace t.store_ready word c;
          c
        end else begin
          (* Load: wait for the youngest earlier store to the same word
             (store-to-load forwarding at its completion). *)
          let dep =
            match Hashtbl.find_opt t.store_ready word with
            | Some c -> c
            | None -> 0
          in
          max issue dep + t.lat.load_use + miss
        end
      end else
        (match insn with
         | Sync ->
           let c = max issue t.mem_serial in
           t.mem_serial <- c;
           c
         | _ -> issue + insn_class_latency t.lat insn)
    in
    let rd = Insn.dest_reg insn in
    if rd >= 0 then t.reg_ready.(rd) <- complete;
    (* Branch prediction. *)
    if Insn.is_branch insn then begin
      let correct =
        match insn with
        | Branch _ | Xloop _ ->
          Branch_pred.predict_update t.bp ~pc:ev.pc ~taken:ev.taken
        | Jr _ -> true  (* return-address stack assumed perfect *)
        | _ -> true     (* direct jumps *)
      in
      if not correct then begin
        s.mispredicts <- s.mispredicts + 1;
        t.redirect <- max t.redirect (complete + t.cfg.branch_penalty)
      end
    end;
    t.ring.(t.n mod t.window) <- complete;
    t.n <- t.n + 1;
    t.max_complete <- max t.max_complete complete

  let now t = max t.dispatch_cycle t.max_complete

  let barrier t =
    let c = now t in
    t.dispatch_cycle <- c;
    t.dispatched_in_cycle <- 0;
    t.redirect <- max t.redirect c;
    t.mem_serial <- max t.mem_serial c

  let skip_to t cycle =
    let c = max cycle (now t) in
    t.dispatch_cycle <- c;
    t.dispatched_in_cycle <- 0;
    t.redirect <- c;
    t.mem_serial <- c;
    t.max_complete <- c;
    Array.fill t.reg_ready 0 (Array.length t.reg_ready) c;
    Array.fill t.ring 0 (Array.length t.ring) c;
    Hashtbl.reset t.store_ready
end

(* ------------------------------------------------------------------ *)
(*  Uniform front door                                                 *)
(* ------------------------------------------------------------------ *)

type t =
  | In_order of Inorder.t
  | Out_of_order of Ooo.t

let create (cfg : Config.gpp) (stats : Stats.t) =
  match cfg.kind with
  | Config.Inorder -> In_order (Inorder.create cfg stats)
  | Config.Ooo _ -> Out_of_order (Ooo.create cfg stats)

let consume = function
  | In_order m -> Inorder.consume m
  | Out_of_order m -> Ooo.consume m

let now = function
  | In_order m -> Inorder.now m
  | Out_of_order m -> Ooo.now m

let barrier = function
  | In_order m -> Inorder.barrier m
  | Out_of_order m -> Ooo.barrier m

let skip_to = function
  | In_order m -> Inorder.skip_to m
  | Out_of_order m -> Ooo.skip_to m

(** The GPP's L1 data cache — shared with the LPSU, which arbitrates for
    the same data-memory port (Figure 4). *)
let l1d = function
  | In_order m -> m.Inorder.l1d
  | Out_of_order m -> m.Ooo.l1d

(** Scan-phase cost model: an out-of-order GPP overlaps part of the scan
    with draining earlier work (Section II-D), modelled as a smaller fixed
    overhead. *)
let scan_cycles t (lpsu : Config.lpsu) ~body_insns =
  let fixed = match t with
    | In_order _ -> lpsu.scan_fixed
    | Out_of_order _ -> max 1 (lpsu.scan_fixed / 2)
  in
  fixed + (lpsu.scan_per_insn * body_insns)
