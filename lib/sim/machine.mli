(** Top-level machine: a GPP, optionally with an LPSU, executing a
    program in one of the paper's three execution modes.

    - {b Traditional}: [xloop] as a branch, [.xi] as an add — the whole
      program runs on the GPP.
    - {b Specialized}: taking an [xloop] back-edge triggers the scan
      phase and hands the remaining iterations to the LPSU; loops the
      LPSU cannot handle (oversized body, unsupported pattern, calls)
      fall back to traditional execution.
    - {b Adaptive}: an adaptive profiling table (APT) indexed by the
      [xloop] PC measures traditional throughput, then specialized
      throughput over the same number of iterations, and commits to the
      winner (Section II-E); profiling stretches across dynamic
      instances, and losing loops migrate back to the GPP. *)

type mode = Traditional | Specialized | Adaptive

val mode_name : mode -> string
(** "T" / "S" / "A", as in Table II's column heads. *)

type result = {
  cycles : int;
  insns : int;        (** dynamically committed instructions *)
  stats : Stats.t;
}

(** Why a run could not complete.  Structured data rather than an
    exception so sweep drivers can report the failing kernel and keep
    going. *)
type failure =
  | Out_of_fuel of { pc : int; insns : int; cycle : int }
      (** the GPP instruction budget ran out at [pc] *)
  | Lpsu_hang of Fault.hang
      (** the LPSU watchdog tripped and degradation was disabled *)

val pp_failure : Format.formatter -> failure -> unit

type t

val create :
  ?adaptive:Config.adaptive ->
  ?lpsu_fuel:int ->
  ?trace:Trace.t ->
  ?faults:Fault.t ->
  ?watchdog:int ->
  ?degrade:bool ->
  cfg:Config.t -> mode:mode ->
  prog:Xloops_asm.Program.t -> mem:Xloops_mem.Memory.t ->
  ?entry:int -> unit -> t
(** Raises [Invalid_argument] if [mode] needs an LPSU and [cfg] has
    none.

    [faults] attaches a fault-injection plan to every specialized run.
    [watchdog] (default 50_000, 0 = off) is the LPSU's no-progress
    threshold in cycles.  [degrade] (default [true]) enables the safety
    net: a specialized run that hangs or runs under injected faults is
    rolled back — registers from a snapshot, memory from a write
    journal — and the loop re-executes traditionally on the GPP, pinned
    traditional for the rest of the run.  With [degrade:false] a hang
    surfaces as [Error (Lpsu_hang _)] instead. *)

val hangs : t -> Fault.hang list
(** Watchdog diagnostics collected so far, in chronological order. *)

val run : ?fuel:int -> t -> (result, failure) Stdlib.result
(** Execute to [Halt].  [fuel] bounds GPP-committed instructions;
    exhausting it is [Error (Out_of_fuel _)], never an exception. *)

val ok_exn : (result, failure) Stdlib.result -> result
(** Unwrap, raising [Failure] with a one-line diagnostic on [Error] —
    for tests and examples where a failure is a bug. *)

val simulate :
  ?adaptive:Config.adaptive -> ?lpsu_fuel:int -> ?trace:Trace.t ->
  ?faults:Fault.t -> ?watchdog:int -> ?degrade:bool ->
  ?entry:int -> ?fuel:int ->
  cfg:Config.t -> mode:mode ->
  Xloops_asm.Program.t -> Xloops_mem.Memory.t ->
  (result, failure) Stdlib.result
(** One-call convenience: {!create} + {!run}. *)
