(** Cycle-level, execution-driven model of the loop-pattern specialization
    unit (Section II-D, Figure 4).

    The LPSU contains [lanes] decoupled in-order lanes and a lane
    management unit (LMU).  Iteration indices are dispensed in order (for
    [xloop.uc] this degenerates into dynamic load balancing because any
    idle lane takes the next index).  Each lane executes one iteration at a
    time through the shared functional executor {!Exec.step}:

    - {b MIVT}: at dispatch of iteration [k] the lane seeds the index
      register and every mutual induction variable with
      [base + k * increment] (the narrow-multiplier computation of the
      paper), so [.xi] instructions execute as cheap single-cycle adds;
    - {b CIB}: for [xloop.{or,orm}], the first read of a cross-iteration
      register stalls until the previous iteration has produced its value;
      the instruction whose PC carries the last-CIR-write bit forwards its
      result, and iterations that skip it copy the register at loop end;
    - {b LSQ}: for [xloop.{om,orm,ua}], speculative lanes buffer stores
      and record load addresses; stores by the non-speculative lane (and
      drained stores at promotion) are broadcast, and any speculative lane
      that already loaded from an overlapping address squashes and restarts
      its iteration;
    - {b dynamic bounds}: for [xloop.*.db], writes to the bound register
      are reported to the LMU, which monotonically raises the bound and
      keeps dispensing indices;
    - the data-memory port and the long-latency functional unit are shared
      and arbitrated per cycle ({!Xloops_mem.Port}).

    Squashed iterations really re-execute, so the model is honest about
    data-dependent violation behaviour (e.g. the paper's ksack-sm vs
    ksack-lg contrast). *)

open Xloops_isa
module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory
module Cache = Xloops_mem.Cache
module Port = Xloops_mem.Port

exception Lane_trap of string

type ctx_state =
  | Idle
  | Run           (** executing the iteration body *)
  | Wait_commit   (** finished, speculative, waiting for promotion *)
  | Drain_commit  (** finished, promoted, draining buffered stores *)

type ctx = {
  lane : int;
  tid : int;
  hart : Exec.hart;
  reg_ready : int array;
  mutable st : ctx_state;
  mutable iter : int;            (** local iteration number; -1 when idle *)
  lsq : Lsq.t;
  mutable drain_q : Lsq.store_entry list;
  mutable got_cir : bool array;
  mutable insns_iter : int;
  mutable next_issue : int;
  mutable exit_flag : int32;   (** .de: exit-register value at loop end *)
  mutable frozen_until : int;  (** injected lane freeze; [max_int] = dead *)
  (* Per-context memory interfaces, built once at LPSU creation instead
     of once per memory instruction. *)
  mutable spec_if : Exec.mem_iface;   (** LSQ overlay for this context *)
  mutable fwd_if : Exec.mem_iface;    (** inter-lane forward; reads fwd_* *)
  mutable fwd_src : int;              (** forwarding source iteration *)
  mutable fwd_raw : int32;            (** forwarded raw store bytes *)
  mutable fwd_addr : int;
  mutable fwd_bytes : int;
  tstate : Threaded.state;            (** compiled-closure view of this
                                          hart ([regs] aliased) for the
                                          lane fast path *)
}

type cib = {
  cir : Scan.cir;
  slot : int;
  (* (consumer iteration, value, ready cycle), newest first.  History is
     kept (not popped on read) so that orm squashes can roll back. *)
  mutable hist : (int * int32 * int) list;
}

type stall = [ `Raw | `Mem | `Llfu | `Cir | `Lsq | `Idle | `Frozen ]

type result = {
  cycles : int;             (** specialized-execution cycles *)
  iterations : int;         (** iterations committed *)
  finished : bool;          (** loop ran to its (final) bound *)
  next_idx : int32;         (** index value of the next iteration *)
  bound : int32;            (** final (possibly dynamically-raised) bound *)
  cir_finals : (Reg.t * int32) list;
  miv_finals : (Reg.t * int32) list;
}

type t = {
  prog : Program.t;
  pre : Program.predecoded;      (* prog, predecoded once *)
  mem : Memory.t;
  direct_if : Exec.mem_iface;    (* architectural memory, built once *)
  ev : Exec.event;               (* shared reusable step scratch *)
  dcache : Cache.t;
  lat : Gpp_timing.latencies;
  lpsu : Config.lpsu;
  stats : Stats.t;
  info : Scan.t;
  base_regs : int array;         (* GPP register snapshot at scan *)
  idx0 : int32;
  miv_bases : (Reg.t * int32 * int32) list;  (* reg, base, inc *)
  ctxs : ctx array;              (* lane-major, then thread *)
  cibs : cib array;
  mem_port : Port.t;
  llfu_port : Port.t;
  mutable bound : int32;
  mutable next_k : int;          (* next iteration to dispense *)
  mutable commit_iter : int;     (* lowest uncommitted iteration *)
  mutable committed : int;
  mutable exit_at : int option;  (* .de: iteration that took the exit *)
  mutable cycle : int;
  stop_after : int option;
  spec_pattern : bool;
  has_cirs : bool;
  mt_enabled : bool;
  trace : Trace.t option;
  (* Robustness machinery *)
  faults : Fault.t option;
  (* Lane fast path: per-pc compiled-closure dispatch for instructions
     whose lane-level effects are fully recoverable without the event
     record ({!Threaded.lane_meta}, further demoted below for CIR and
     dynamic-bound bookkeeping).  [fast_ok] gates the whole array off
     whenever an observer is attached or the reference tier is forced. *)
  lane_fast : Threaded.lane_meta array;
  fast_ok : bool;
  watchdog : int;                (* no-progress cycles before a hang; 0=off *)
  mutable last_progress : int;   (* cycle of the last dispatch or commit *)
  mutable drop_broadcasts : int; (* injected: swallow this many broadcasts *)
  lane_reason : stall array;     (* last cycle's stall reason per lane *)
}

let idx_of t k =
  Int32.add t.idx0 (Int32.mul (Int32.of_int k) t.info.Scan.idx_step)

(* -- Memory interfaces ------------------------------------------------ *)

(* Each context's interfaces are built once at LPSU creation; the
   speculative path closes over the context's LSQ, and the forwarding
   path reads the context's [fwd_*] scratch fields, so no closure is
   allocated per memory instruction. *)

let spec_iface t (c : ctx) : Exec.mem_iface = {
  load = (fun w a ->
      Lsq.record_load c.lsq ~addr:a ~bytes:(Insn.width_bytes w);
      t.stats.lsq_writes <- t.stats.lsq_writes + 1;
      Lsq.read c.lsq t.mem w a);
  store = (fun w a v ->
      Lsq.record_store c.lsq ~addr:a ~bytes:(Insn.width_bytes w) ~value:v;
      t.stats.lsq_writes <- t.stats.lsq_writes + 1);
  amo = (fun op a v ->
      let old = Lsq.read c.lsq t.mem Insn.W a in
      Lsq.record_load c.lsq ~addr:a ~bytes:4;
      let nv = match op with
        | Insn.Amo_add -> Int32.add old v
        | Amo_and -> Int32.logand old v
        | Amo_or -> Int32.logor old v
        | Amo_xchg -> v
        | Amo_min -> if Int32.compare old v <= 0 then old else v
        | Amo_max -> if Int32.compare old v >= 0 then old else v
      in
      Lsq.record_store c.lsq ~addr:a ~bytes:4 ~value:nv;
      t.stats.lsq_writes <- t.stats.lsq_writes + 2;
      old);
}

(* Sign/zero-extend raw little-endian bytes per access width. *)
let extend_raw (w : Insn.width) (raw : int32) : int32 =
  let v = Int32.to_int raw in
  match w with
  | B -> Int32.of_int (if v land 0x80 <> 0 then v - 0x100 else v)
  | H -> Int32.of_int (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Bu | Hu -> raw
  | W -> raw

(* One-load interface delivering an inter-lane forwarded value; the
   source iteration, raw value and address live in the context's [fwd_*]
   fields, set by [inter_lane_forward] just before the step. *)
let fwd_iface t (c : ctx) : Exec.mem_iface = {
  Exec.load = (fun w a ->
      assert (a = c.fwd_addr);
      Lsq.record_load c.lsq ~addr:c.fwd_addr ~bytes:c.fwd_bytes
        ~fwd:{ Lsq.f_iter = c.fwd_src; f_value = c.fwd_raw };
      t.stats.lsq_writes <- t.stats.lsq_writes + 1;
      extend_raw w c.fwd_raw);
  store = (fun _ _ _ -> assert false);
  amo = (fun _ _ _ -> assert false);
}

let create ~prog ~mem ~dcache ~(cfg : Config.t) ~stats ~(info : Scan.t)
    ~(regs : int array) ~start_cycle ?stop_after ?trace ?faults
    ?(watchdog = 0) () =
  let lpsu = match cfg.lpsu with
    | Some l -> l
    | None -> invalid_arg "Lpsu.create: config has no LPSU"
  in
  let spec_pattern = Scan.is_speculative_pattern info.pat in
  let has_cirs = Scan.has_cirs info.pat in
  let mt_enabled =
    lpsu.threads_per_lane > 1 && info.pat.dp = Insn.Uc in
  let threads = if mt_enabled then lpsu.threads_per_lane else 1 in
  let direct_if = Exec.direct_mem mem in
  let ctxs =
    Array.init (lpsu.lanes * threads) (fun i ->
        let hart = Exec.create_hart () in
        { lane = i / threads; tid = i mod threads;
          hart;
          reg_ready = Array.make Reg.num_regs 0;
          st = Idle; iter = -1;
          lsq = Lsq.create ~max_loads:lpsu.lsq_loads
              ~max_stores:lpsu.lsq_stores;
          drain_q = []; got_cir = [||]; insns_iter = 0; next_issue = 0;
          exit_flag = 0l; frozen_until = 0;
          (* real interfaces are installed after [t] exists *)
          spec_if = direct_if; fwd_if = direct_if;
          fwd_src = -1; fwd_raw = 0l; fwd_addr = -1; fwd_bytes = 0;
          tstate = { Threaded.regs = hart.Exec.regs; mem;
                     pc = 0; retired = 0 } })
  in
  let cibs =
    Array.of_list
      (List.mapi
         (fun slot (c : Scan.cir) ->
            { cir = c; slot;
              hist = [ (0, Int32.of_int regs.(c.c_reg), start_cycle) ] })
         info.cirs)
  in
  let miv_bases =
    List.map
      (fun (m : Scan.miv) -> (m.m_reg, Int32.of_int regs.(m.m_reg), m.m_inc))
      info.mivs
  in
  let pre = Program.predecode prog in
  (* Start from the compiled tier's per-pc metadata, then demote the
     pcs whose execution the LPSU must see one at a time: anything
     reading a CIR (first-read stall and got_cir bookkeeping), anything
     writing one (got_cir), the last-CIR-write pc (CIB forwarding), and
     dynamic-bound writes (LMU bound raising). *)
  let lane_fast = Array.copy (Threaded.lane_meta pre) in
  let demote pc =
    if pc >= 0 && pc < Array.length lane_fast then
      lane_fast.(pc) <- Threaded.L_slow
  in
  Array.iteri
    (fun pc m ->
       match m with
       | Threaded.L_plain { l_rd; l_s1; l_s2; _ } ->
         let cir r =
           r >= 0
           && List.exists (fun (c : Scan.cir) -> c.c_reg = r) info.cirs
         in
         if cir l_rd || cir l_s1 || cir l_s2 then demote pc;
         if info.pat.cp = Insn.Dyn && l_rd = info.r_bound then demote pc
       | Threaded.L_slow -> ())
    lane_fast;
  List.iter (fun (c : Scan.cir) -> demote c.c_last_write_pc) info.cirs;
  let fast_ok = trace = None && faults = None && Tier.get () <> Tier.Ref in
  let t =
    { prog; pre; mem; direct_if;
      ev = Exec.create_event ();
      dcache; lat = Gpp_timing.latencies_of cfg.gpp; lpsu; stats;
      info; base_regs = Array.copy regs;
      idx0 = Int32.of_int regs.(info.r_idx); miv_bases;
      ctxs; cibs;
      mem_port = Port.create ~width:lpsu.mem_ports "dmem";
      llfu_port = Port.create ~width:lpsu.llfu_ports "llfu";
      bound = Int32.of_int regs.(info.r_bound);
      next_k = 0; commit_iter = 0; committed = 0; exit_at = None;
      cycle = start_cycle;
      stop_after; spec_pattern; has_cirs; mt_enabled; trace;
      faults; lane_fast; fast_ok;
      watchdog; last_progress = start_cycle; drop_broadcasts = 0;
      lane_reason = Array.make lpsu.lanes (`Idle : stall) }
  in
  Array.iter
    (fun c ->
       c.spec_if <- spec_iface t c;
       c.fwd_if <- fwd_iface t c)
    t.ctxs;
  t

(* -- Dispatch -------------------------------------------------------- *)

let can_dispense t =
  (match t.stop_after with Some m -> t.next_k < m | None -> true)
  && (match t.info.pat.cp with
      | De -> t.exit_at = None
      | Fixed | Dyn -> Int32.compare (idx_of t t.next_k) t.bound < 0)

(** Seed a context's register file for iteration [k]: live-ins from the
    scan snapshot, index and MIVs from the MIVT computation. *)
let seed_ctx t (c : ctx) k =
  Array.blit t.base_regs 0 c.hart.regs 0 Reg.num_regs;
  Exec.set c.hart t.info.r_idx (idx_of t k);
  List.iter
    (fun (r, base, inc) ->
       Exec.set c.hart r (Int32.add base (Int32.mul (Int32.of_int k) inc));
       t.stats.xi_ops <- t.stats.xi_ops + 1)
    t.miv_bases;
  Array.fill c.reg_ready 0 Reg.num_regs t.cycle;
  c.hart.pc <- t.info.body_start;
  c.got_cir <- Array.make (Array.length t.cibs) false;
  c.insns_iter <- 0

let frozen (t : t) (c : ctx) = t.cycle < c.frozen_until

let dispatch t (c : ctx) =
  let k = t.next_k in
  t.next_k <- k + 1;
  c.iter <- k;
  c.st <- Run;
  t.last_progress <- t.cycle;
  seed_ctx t c k;
  Lsq.clear c.lsq;
  c.drain_q <- [];
  c.next_issue <- t.cycle + 1;  (* IDQ dequeue costs a cycle *)
  t.stats.idq_ops <- t.stats.idq_ops + 1;
  if Trace.enabled t.trace Lanes then
    Trace.event t.trace Lanes "[%7d] lane%d.%d dispatch iter=%d idx=%ld"
      t.cycle c.lane c.tid k (idx_of t k)

(* -- CIB ------------------------------------------------------------- *)

let cib_lookup (cb : cib) k =
  List.find_opt (fun (i, _, _) -> i = k) cb.hist

(* Oldest history entry any future lookup can need: speculative patterns
   may roll back to the commit point; non-speculative ones only ever look
   up an active context's iteration or (for [finals]) the commit count.
   Without the non-speculative bound a long register-carried loop (the
   [or] kernels run thousands of iterations in one LPSU instance, and
   [commit_iter] never moves) grows each chain without limit and turns
   every lookup into an O(iterations) walk. *)
let cib_keep_from t =
  if t.spec_pattern then t.commit_iter - 1
  else
    Array.fold_left
      (fun acc c ->
         if c.st <> Idle && c.iter >= 0 && c.iter < acc then c.iter else acc)
      t.committed t.ctxs
    - 1

let cib_write t (cb : cib) ~producer_iter ~value =
  cb.hist <- (producer_iter + 1, value, t.cycle + 1) :: cb.hist;
  t.stats.cib_writes <- t.stats.cib_writes + 1;
  (* Prune entries no consumer can ever need again. *)
  if List.length cb.hist > Array.length t.ctxs * 2 + 4 then begin
    let keep_from = cib_keep_from t in
    cb.hist <- List.filter (fun (i, _, _) -> i >= keep_from) cb.hist
  end

let cib_rollback t k_min =
  Array.iter
    (fun cb -> cb.hist <- List.filter (fun (i, _, _) -> i <= k_min) cb.hist)
    t.cibs

(* -- Squash ---------------------------------------------------------- *)

let squash_ctx t (c : ctx) =
  if Trace.enabled t.trace Lanes then
    Trace.event t.trace Lanes
      "[%7d] lane%d.%d SQUASH iter=%d (%d insns thrown away)"
      t.cycle c.lane c.tid c.iter c.insns_iter;
  t.stats.violations <- t.stats.violations + 1;
  t.stats.squashed_insns <- t.stats.squashed_insns + c.insns_iter;
  (* Transfer this iteration's execute cycles to the squash bucket. *)
  t.stats.cyc_exec <- t.stats.cyc_exec - c.insns_iter;
  t.stats.cyc_squash <-
    t.stats.cyc_squash + c.insns_iter + t.lpsu.squash_penalty;
  Lsq.clear c.lsq;
  c.drain_q <- [];
  seed_ctx t c c.iter;
  c.st <- Run;
  c.next_issue <- t.cycle + t.lpsu.squash_penalty

(** Squash [c], plus (recursively) every younger context that forwarded a
    value from [c]'s iteration — its buffered stores are gone, so any
    forwarded value is unsubstantiated. *)
let rec squash_with_forward_cascade t (c : ctx) =
  let k = c.iter in
  squash_ctx t c;
  Array.iter
    (fun o ->
       if (o.st = Run || o.st = Wait_commit) && o.iter > k
       && Lsq.has_forward_from o.lsq k then
         squash_with_forward_cascade t o)
    t.ctxs

(** Violation check for a committed [store] by iteration [from_iter].
    Squashes any speculative context that already loaded from an
    overlapping address — except loads whose value was forwarded from
    this very store and is byte-identical.  With CIRs present (orm) the
    register chain makes every younger iteration dependent, so squashes
    cascade; with inter-lane forwarding, consumers of a squashed
    iteration's buffers cascade too. *)
let broadcast_store t ~from_iter ~(store : Lsq.store_entry) =
  if t.drop_broadcasts > 0 then begin
    (* Injected fault: the broadcast is swallowed — speculative lanes
       that already loaded from the range never hear about the store. *)
    t.drop_broadcasts <- t.drop_broadcasts - 1;
    if Trace.enabled t.trace Lanes then
      Trace.event t.trace Lanes
        "[%7d] FAULT broadcast of store @%d swallowed" t.cycle
        store.Lsq.s_addr
  end
  else if t.spec_pattern then begin
    t.stats.store_broadcasts <- t.stats.store_broadcasts + 1;
    let addr = store.Lsq.s_addr and bytes = store.Lsq.s_bytes in
    let violated = ref [] in
    Array.iter
      (fun c ->
         if (c.st = Run || c.st = Wait_commit) && c.iter > from_iter then begin
           t.stats.lsq_searches <- t.stats.lsq_searches + 1;
           if Lsq.violated_loads c.lsq ~from_iter ~addr ~bytes ~store <> []
           then violated := c :: !violated
         end)
      t.ctxs;
    match !violated with
    | [] -> ()
    | vs ->
      let k_min = List.fold_left (fun a c -> min a c.iter) max_int vs in
      if t.has_cirs then begin
        (* Cascade: squash every active iteration >= k_min and roll the
           CIB chains back so iteration k_min can re-read its input. *)
        Array.iter
          (fun c ->
             if (c.st = Run || c.st = Wait_commit) && c.iter >= k_min then
               squash_ctx t c)
          t.ctxs;
        cib_rollback t k_min
      end else
        List.iter
          (fun c ->
             (* A context may already have been squashed by an earlier
                cascade step this broadcast; its cleared LSQ makes the
                recursion idempotent. *)
             if c.st = Run || c.st = Wait_commit then
               squash_with_forward_cascade t c)
          vs
  end

(* -- Inter-lane forwarding -------------------------------------------- *)

(** Inter-lane store-to-load forwarding (enabled by
    [Config.lpsu.inter_lane_fwd]): the youngest older active iteration
    whose buffered stores fully cover the load supplies the value; the
    load entry remembers its source so commits can confirm it and
    squashes can cascade.  On a hit the context's [fwd_*] scratch fields
    are armed and its pre-built [fwd_if] returned. *)
let inter_lane_forward t (c : ctx) ~addr ~bytes
  : Exec.mem_iface option =
  if not t.lpsu.inter_lane_fwd then None
  else begin
    let best = ref None in
    Array.iter
      (fun o ->
         if (o.st = Run || o.st = Wait_commit)
         && o.iter < c.iter && o.iter >= t.commit_iter then begin
           t.stats.lsq_searches <- t.stats.lsq_searches + 1;
           match Lsq.covering_store_value o.lsq ~addr ~bytes with
           | Some raw ->
             (match !best with
              | Some (bi, _) when bi > o.iter -> ()
              | _ -> best := Some (o.iter, raw))
           | None -> ()
         end)
      t.ctxs;
    match !best with
    | None -> None
    | Some (src, raw) ->
      t.stats.lsq_forwards <- t.stats.lsq_forwards + 1;
      c.fwd_src <- src;
      c.fwd_raw <- raw;
      c.fwd_addr <- addr;
      c.fwd_bytes <- bytes;
      Some c.fwd_if
  end

(* An L1 miss is charged to the value's latency, blocks the issuing lane
   (simple in-order lanes), and holds the shared memory port for the
   fill — the single port is the structural bottleneck the paper's
   L1-resident datasets deliberately avoid. *)
let miss_penalty = 20

let dcache_latency t (c : ctx) ~addr ~base_latency =
  t.stats.dcache_accesses <- t.stats.dcache_accesses + 1;
  if Cache.access t.dcache addr then base_latency
  else begin
    t.stats.dcache_misses <- t.stats.dcache_misses + 1;
    c.next_issue <- max c.next_issue (t.cycle + miss_penalty);
    Port.hold t.mem_port ~until:(t.cycle + miss_penalty);
    base_latency + miss_penalty
  end

(* -- Commit ---------------------------------------------------------- *)

(** .de: a committed iteration whose exit flag is set ends the loop;
    every in-flight younger iteration is control-speculative and is
    discarded outright (buffered state vanishes, nothing re-dispatches). *)
let take_exit t (c : ctx) =
  if Trace.enabled t.trace Decisions then
    Trace.event t.trace Decisions
      "[%7d] data-dependent exit taken at iter=%d; discarding younger work"
      t.cycle c.iter;
  t.exit_at <- Some c.iter;
  t.bound <- c.exit_flag;
  Array.iter
    (fun o ->
       if o.st <> Idle && o.iter > c.iter then begin
         t.stats.squashed_insns <- t.stats.squashed_insns + o.insns_iter;
         t.stats.cyc_squash <- t.stats.cyc_squash + o.insns_iter;
         t.stats.cyc_exec <- t.stats.cyc_exec - o.insns_iter;
         Lsq.clear o.lsq;
         o.drain_q <- [];
         o.st <- Idle;
         o.iter <- -1
       end)
    t.ctxs

let commit_iteration t (c : ctx) =
  if Trace.enabled t.trace Lanes then
    Trace.event t.trace Lanes "[%7d] lane%d.%d commit iter=%d (%d insns)"
      t.cycle c.lane c.tid c.iter c.insns_iter;
  t.committed <- t.committed + 1;
  t.last_progress <- t.cycle;
  t.stats.iterations <- t.stats.iterations + 1;
  t.stats.committed_insns <- t.stats.committed_insns + c.insns_iter;
  if t.spec_pattern then t.commit_iter <- t.commit_iter + 1;
  if t.info.pat.cp = Insn.De && c.exit_flag <> 0l && t.exit_at = None
  then take_exit t c;
  c.st <- Idle;
  c.iter <- -1

(** Promote / commit whatever can make forward progress for free:
    finished non-speculative iterations with empty store buffers commit
    immediately; finished iterations with buffered stores move to the
    draining state; a still-running promoted context gets its drain queue
    filled so the issue loop empties it before the lane proceeds. *)
let rec try_commits t =
  if t.spec_pattern then begin
    let oldest =
      Array.fold_left
        (fun acc c -> if c.iter = t.commit_iter && c.st <> Idle
          then Some c else acc)
        None t.ctxs
    in
    match oldest with
    | Some c when c.st = Wait_commit ->
      if Lsq.n_stores c.lsq = 0 then begin
        commit_iteration t c;
        try_commits t
      end else if c.drain_q = [] then begin
        c.drain_q <- Lsq.drain_order c.lsq;
        c.st <- Drain_commit
      end
    | Some c when c.st = Run && Lsq.n_stores c.lsq > 0 && c.drain_q = [] ->
      (* Promoted while still running: drain before continuing. *)
      c.drain_q <- Lsq.drain_order c.lsq
    | _ -> ()
  end

(* -- Issue ----------------------------------------------------------- *)

(** Can the iteration finish now?  Every CIR chain must be forwardable: if
    the lane executed the last-CIR-write instruction the outgoing value
    already exists; if that instruction was skipped, the lane copies the
    CIR value through — but if it never consumed the incoming value it
    must first wait for the previous iteration to produce it (the copy
    forwards the {e chain} value, not the lane's stale register). *)
let cir_finish_ready t (c : ctx) =
  Array.for_all
    (fun cb ->
       match cib_lookup cb (c.iter + 1) with
       | Some _ -> true  (* already forwarded by the last-write insn *)
       | None ->
         c.got_cir.(cb.slot)
         || (match cib_lookup cb c.iter with
             | Some (_, _, ready) -> ready <= t.cycle
             | None -> false))
    t.cibs

let end_of_iteration t (c : ctx) =
  (* The implicit xloop at the end of the iteration. *)
  c.insns_iter <- c.insns_iter + 1;
  t.stats.ib_fetches <- t.stats.ib_fetches + 1;
  if t.info.pat.cp = Insn.De then
    c.exit_flag <- Exec.get c.hart t.info.r_bound;
  if t.has_cirs then
    (* End-of-iteration CIR copy for chains whose last-write instruction
       was skipped by control flow. *)
    Array.iter
      (fun cb ->
         match cib_lookup cb (c.iter + 1) with
         | Some _ -> ()
         | None ->
           let value =
             if c.got_cir.(cb.slot) then Exec.get c.hart cb.cir.c_reg
             else
               match cib_lookup cb c.iter with
               | Some (_, v, _) -> v
               | None -> assert false  (* guarded by cir_finish_ready *)
           in
           cib_write t cb ~producer_iter:c.iter ~value)
      t.cibs;
  if t.spec_pattern && c.iter > t.commit_iter then
    c.st <- Wait_commit
  else if t.spec_pattern && Lsq.n_stores c.lsq > 0 then begin
    c.drain_q <- Lsq.drain_order c.lsq;
    c.st <- Drain_commit
  end else
    commit_iteration t c

(** Attempt to issue one instruction from [c] at the current cycle.
    Returns [Ok ()] if the lane did useful work, [Error reason] on a
    stall. *)
let attempt_issue t (c : ctx) : (unit, stall) Result.t =
  let now = t.cycle in
  if now < c.next_issue then Error `Raw
  else if c.hart.pc = t.info.xloop_pc then begin
    if t.has_cirs && not (cir_finish_ready t c) then Error `Cir
    else begin
      end_of_iteration t c; Ok ()
    end
  end else begin
    if c.hart.pc < t.info.body_start || c.hart.pc > t.info.xloop_pc then
      raise (Lane_trap
               (Printf.sprintf "lane pc %d escaped xloop body [%d,%d]"
                  c.hart.pc t.info.body_start t.info.xloop_pc));
    match
      (if t.fast_ok && not (t.spec_pattern && c.iter > t.commit_iter)
       then t.lane_fast.(c.hart.pc)
       else Threaded.L_slow)
    with
    | Threaded.L_plain { l_op; l_insn; l_rd; l_s1; l_s2; l_ctrl } ->
      (* Fast path: a plain single-cycle instruction on a
         non-speculative context with no observer attached.  The
         compiled closure replays exactly [Exec.step]'s architectural
         effects (the register file is aliased), and every lane-level
         effect — issue accounting, RAW scoreboard, taken-branch
         bubble — is recovered from the metadata and the outgoing pc. *)
      let ready =
        max (if l_s1 >= 0 then c.reg_ready.(l_s1) else 0)
          (if l_s2 >= 0 then c.reg_ready.(l_s2) else 0)
      in
      if ready > now then Error `Raw
      else begin
        let pc = c.hart.pc in
        let st = c.tstate in
        l_op st;
        c.hart.pc <- st.Threaded.pc;
        c.insns_iter <- c.insns_iter + 1;
        t.stats.ib_fetches <- t.stats.ib_fetches + 1;
        Gpp_timing.Inorder.count_exec_events t.stats l_insn;
        if l_rd >= 0 then c.reg_ready.(l_rd) <- now + 1;
        if l_ctrl = 2 || (l_ctrl = 1 && st.Threaded.pc <> pc + 1) then
          c.next_issue <- now + 2;
        Ok ()
      end
    | Threaded.L_slow ->
    let insn = t.prog.Program.insns.(c.hart.pc) in
    (* CIR consumption: the first read of each CIR waits on the CIB. *)
    let s1 = Insn.src1 insn and s2 = Insn.src2 insn in
    let cir_stall = ref false in
    if t.has_cirs then
      Array.iter
        (fun cb ->
           if (not c.got_cir.(cb.slot))
           && (s1 = cb.cir.c_reg || s2 = cb.cir.c_reg)
           && not !cir_stall then begin
             match cib_lookup cb c.iter with
             | Some (_, v, ready) when ready <= now ->
               Exec.set c.hart cb.cir.c_reg v;
               c.reg_ready.(cb.cir.c_reg) <- now;
               c.got_cir.(cb.slot) <- true;
               t.stats.cib_reads <- t.stats.cib_reads + 1
             | _ -> cir_stall := true
           end)
        t.cibs;
    if !cir_stall then Error `Cir
    else begin
      let ready =
        max (if s1 >= 0 then c.reg_ready.(s1) else 0)
          (if s2 >= 0 then c.reg_ready.(s2) else 0) in
      if ready > now then Error `Raw
      else begin
        let speculative =
          t.spec_pattern && c.iter > t.commit_iter in
        (* Resource checks and latency selection, before any side
           effects. *)
        let decide : (Exec.mem_iface option * int, stall) Result.t =
          if Insn.is_llfu insn then begin
            let occupancy = match insn with
              | Alu ((Div | Rem), _, _, _) | Alui ((Div | Rem), _, _, _)
              | Fpu (Fdiv, _, _, _) -> t.lat.div
              | _ -> 1
            in
            if Port.try_grant ~occupancy t.llfu_port ~now then
              let l = Gpp_timing.insn_class_latency t.lat insn in
              Ok (None, l)
            else Error `Llfu
          end else if Insn.is_mem insn then begin
            match insn with
            | Load (w, _, rs, imm) ->
              let addr = Exec.get_int c.hart rs + imm in
              let bytes = Memory.width_bytes w in
              if speculative then begin
                if Lsq.loads_full c.lsq then Error `Lsq
                else if Lsq.store_overlaps c.lsq ~addr ~bytes then begin
                  (* Own-lane store-to-load forwarding: no port needed. *)
                  t.stats.lsq_searches <- t.stats.lsq_searches + 1;
                  Ok (Some c.spec_if, 1)
                end else begin
                  match inter_lane_forward t c ~addr ~bytes with
                  | Some iface -> Ok (Some iface, 1)
                  | None ->
                    if Port.try_grant t.mem_port ~now then begin
                      t.stats.lsq_searches <- t.stats.lsq_searches + 1;
                      Ok (Some c.spec_if,
                          dcache_latency t c ~addr
                            ~base_latency:t.lat.load_use)
                    end else Error `Mem
                end
              end else if Port.try_grant t.mem_port ~now then
                Ok (Some t.direct_if,
                    dcache_latency t c ~addr ~base_latency:t.lat.load_use)
              else Error `Mem
            | Store (_, _, rs, imm) ->
              if speculative then begin
                if Lsq.stores_full c.lsq then Error `Lsq
                else Ok (Some c.spec_if, 1)
              end else if Port.try_grant t.mem_port ~now then
                Ok (Some t.direct_if,
                    dcache_latency t c ~addr:(Exec.get_int c.hart rs + imm)
                      ~base_latency:1)
              else Error `Mem
            | Amo (_, _, rs, _) ->
              let addr = Exec.get_int c.hart rs in
              if speculative then begin
                if Lsq.loads_full c.lsq || Lsq.stores_full c.lsq
                then Error `Lsq
                else Ok (Some c.spec_if, t.lat.amo)
              end else if Port.try_grant ~occupancy:2 t.mem_port ~now then
                Ok (Some t.direct_if,
                    dcache_latency t c ~addr ~base_latency:t.lat.amo)
              else Error `Mem
            | _ -> assert false
          end else Ok (None, 1)
        in
        match decide with
        | Error _ as e -> e
        | Ok (iface, latency) ->
          let iface = match iface with
            | Some i -> i
            | None -> t.direct_if  (* non-memory: never used *)
          in
          Exec.step t.pre c.hart iface t.ev;
          let ev = t.ev in
          let insn = Exec.event_insn ev in
          if Trace.enabled t.trace Insns then
            Trace.event t.trace Insns "[%7d] lane%d.%d it=%-4d %4d: %a"
              t.cycle c.lane c.tid c.iter ev.pc Insn.pp_resolved insn;
          c.insns_iter <- c.insns_iter + 1;
          t.stats.ib_fetches <- t.stats.ib_fetches + 1;
          Gpp_timing.Inorder.count_exec_events t.stats insn;
          let rd = Insn.dest_reg insn in
          if rd >= 0 then c.reg_ready.(rd) <- now + latency;
          (* Taken branches inside the body cost one fetch bubble. *)
          if ev.taken then c.next_issue <- now + 2;
          (* Non-speculative stores are broadcast for violation checks;
             the just-written memory bytes stand in for the store data. *)
          if ev.mem_is_store && not (t.spec_pattern && c.iter > t.commit_iter)
          then begin
            let raw = ref 0 in
            for i = ev.mem_bytes - 1 downto 0 do
              raw := (!raw lsl 8) lor Memory.get_u8 t.mem (ev.mem_addr + i)
            done;
            broadcast_store t ~from_iter:c.iter
              ~store:{ Lsq.s_addr = ev.mem_addr; s_bytes = ev.mem_bytes;
                       s_value = Int32.of_int !raw }
          end;
          (* Dynamic bound: report writes to the bound register. *)
          if t.info.pat.cp = Insn.Dyn && rd = t.info.r_bound then begin
            let v = Exec.get c.hart t.info.r_bound in
            if Int32.compare v t.bound > 0 then begin
              if Trace.enabled t.trace Lanes then
                Trace.event t.trace Lanes
                  "[%7d] lmu bound raised %ld -> %ld (lane%d iter=%d)"
                  t.cycle t.bound v c.lane c.iter;
              t.bound <- v
            end
          end;
          (* Last-CIR-write forwarding; a local write also supersedes the
             incoming chain value (a write-before-read iteration must not
             have its value clobbered by a later consumption). *)
          if t.has_cirs then
            Array.iter
              (fun cb ->
                 if rd = cb.cir.c_reg then c.got_cir.(cb.slot) <- true;
                 if cb.cir.c_last_write_pc = ev.pc then
                   cib_write t cb ~producer_iter:c.iter
                     ~value:(Exec.get c.hart cb.cir.c_reg))
              t.cibs;
          Ok ()
      end
    end
  end

(** Drain one buffered store to memory through the shared port. *)
let attempt_drain t (c : ctx) : (unit, stall) Result.t =
  match c.drain_q with
  | [] -> assert false
  | s :: rest ->
    if Port.try_grant t.mem_port ~now:t.cycle then begin
      Lsq.apply_store t.mem s;
      ignore (dcache_latency t c ~addr:s.Lsq.s_addr ~base_latency:1);
      broadcast_store t ~from_iter:c.iter ~store:s;
      c.drain_q <- rest;
      if rest = [] then begin
        Lsq.clear c.lsq;
        if c.st = Drain_commit then commit_iteration t c
        (* A running promoted context just continues non-speculatively. *)
      end;
      Ok ()
    end else Error `Mem

(* -- Fault injection --------------------------------------------------- *)

(** First context at or after [lane] (wrapping) satisfying [pred] — fault
    events name a lane, but the structure they target may live elsewhere
    this cycle. *)
let pick_ctx t lane pred =
  let n = Array.length t.ctxs in
  let rec go i =
    if i = n then None
    else
      let c = t.ctxs.((lane + i) mod n) in
      if pred c then Some c else go (i + 1)
  in
  go 0

let active c = c.st = Run || c.st = Wait_commit

(** Apply one fault event.  Returns [true] if a target existed; an event
    with no applicable target is deferred and retried later. *)
let apply_fault t (e : Fault.event) =
  match e.ev_kind with
  | Cib_drop ->
    Array.length t.cibs > 0
    && (let cb = t.cibs.(e.ev_lane mod Array.length t.cibs) in
        match cb.hist with
        | _ :: (_ :: _ as rest) -> cb.hist <- rest; true
        | _ -> false)
  | Cib_dup ->
    Array.length t.cibs > 0
    && (let cb = t.cibs.(e.ev_lane mod Array.length t.cibs) in
        match cb.hist with
        | (i, v, r) :: _ when cib_lookup cb (i + 1) = None ->
          cb.hist <- (i + 1, v, r) :: cb.hist; true
        | _ -> false)
  | Lsq_drop_load ->
    (match pick_ctx t e.ev_lane (fun c -> active c && not (Lsq.is_empty c.lsq))
     with
     | Some c -> Lsq.drop_newest_load c.lsq
     | None -> false)
  | Lsq_lost_broadcast ->
    t.spec_pattern
    && (t.drop_broadcasts <- t.drop_broadcasts + 1; true)
  | Idq_corrupt ->
    (match pick_ctx t e.ev_lane (fun c -> c.st = Run) with
     | Some c ->
       (* A bit-flip in the dispensed index: the iteration computes with
          a wrong induction value (the LMU's own count is unaffected, so
          the loop still terminates — the damage is purely data). *)
       Exec.set c.hart t.info.r_idx
         (Int32.logxor (Exec.get c.hart t.info.r_idx) 0x40l);
       true
     | None -> false)
  | Mivt_stale ->
    (match t.miv_bases, pick_ctx t e.ev_lane (fun c -> c.st = Run) with
     | (r, base, _) :: _, Some c -> Exec.set c.hart r base; true
     | _ -> false)
  | Port_stall ->
    Port.inject_stall t.mem_port ~now:t.cycle
      ~cycles:(32 + 16 * (e.ev_lane land 3));
    true
  | Lane_freeze ->
    (match pick_ctx t e.ev_lane
             (fun c -> c.st <> Idle && c.frozen_until < max_int) with
     | Some c -> c.frozen_until <- max_int; true
     | None -> false)

(* -- Main loop -------------------------------------------------------- *)

let account_lane_cycle t issued (reason : stall) =
  let s = t.stats in
  if issued then s.cyc_exec <- s.cyc_exec + 1
  else match reason with
    | `Raw -> s.cyc_stall_raw <- s.cyc_stall_raw + 1
    | `Mem -> s.cyc_stall_mem <- s.cyc_stall_mem + 1
    | `Llfu -> s.cyc_stall_llfu <- s.cyc_stall_llfu + 1
    | `Cir -> s.cyc_stall_cir <- s.cyc_stall_cir + 1
    | `Lsq -> s.cyc_stall_lsq <- s.cyc_stall_lsq + 1
    | `Idle | `Frozen -> s.cyc_idle <- s.cyc_idle + 1

let all_idle t = Array.for_all (fun c -> c.st = Idle) t.ctxs

(** Merge stall priorities: report the most informative reason seen. *)
let worse (a : stall) (b : stall) =
  let rank = function
    | `Idle -> 0 | `Raw -> 1 | `Mem -> 2 | `Llfu -> 3 | `Lsq -> 4
    | `Cir -> 5 | `Frozen -> 6 in
  if rank b > rank a then b else a

(** Name the resource the LPSU is blocked on, from the per-lane stall
    reasons of the last simulated cycle — the watchdog's diagnosis. *)
let classify_hang t : Fault.hang =
  let count p = Array.fold_left (fun n r -> if p r then n + 1 else n) 0
      t.lane_reason in
  let frozen_lanes =
    Array.fold_left (fun n c -> if frozen t c then n + 1 else n) 0 t.ctxs in
  let resource, detail =
    if frozen_lanes > 0 then
      Fault.Lane_frozen,
      Printf.sprintf "%d lane(s) frozen; commit point pinned at iter %d"
        frozen_lanes t.commit_iter
    else if count (fun r -> r = `Cir) > 0 then
      Fault.Cib_chain,
      Printf.sprintf "%d lane(s) waiting on a CIB value for iter >= %d"
        (count (fun r -> r = `Cir)) t.commit_iter
    else if count (fun r -> r = `Lsq) > 0 then
      Fault.Lsq_full,
      Printf.sprintf "%d lane(s) LSQ-bound; oldest uncommitted iter %d"
        (count (fun r -> r = `Lsq)) t.commit_iter
    else if count (fun r -> r = `Mem) > 0 then
      Fault.Port_starved,
      Printf.sprintf "%d lane(s) denied the shared memory port"
        (count (fun r -> r = `Mem))
    else
      Fault.No_progress,
      Printf.sprintf "no commit or dispatch for %d cycles"
        (t.cycle - t.last_progress)
  in
  { h_resource = resource; h_cycle = t.cycle; h_committed = t.committed;
    h_detail = detail }

let run_to_completion t ~fuel : (unit, Fault.hang) Stdlib.result =
  let threads = Array.length t.ctxs / t.lpsu.lanes in
  let start = t.cycle in
  let rotate = ref 0 in
  let failure = ref None in
  while !failure = None && not (all_idle t && not (can_dispense t)) do
    if t.cycle - start > fuel then
      failure := Some { Fault.h_resource = Fault.Fuel; h_cycle = t.cycle;
                        h_committed = t.committed;
                        h_detail =
                          Printf.sprintf "cycle budget %d exhausted" fuel }
    else if t.watchdog > 0 && t.cycle - t.last_progress > t.watchdog then begin
      t.stats.watchdog_hangs <- t.stats.watchdog_hangs + 1;
      failure := Some (classify_hang t)
    end else begin
    (match t.faults with
     | None -> ()
     | Some plan ->
       List.iter
         (fun (e : Fault.event) ->
            if apply_fault t e then begin
              Fault.record plan e.ev_kind ~cycle:t.cycle;
              t.stats.faults_injected <- t.stats.faults_injected + 1;
              if Trace.enabled t.trace Lanes then
                Trace.event t.trace Lanes
                  "[%7d] FAULT inject %a (lane %d)" t.cycle Fault.pp_kind
                  e.ev_kind e.ev_lane
            end else Fault.defer plan e)
         (Fault.due plan ~rel:(t.cycle - start)));
    (* LMU: dispense iteration indices to idle contexts, in lane order.
       Frozen contexts take no new work. *)
    Array.iter
      (fun c ->
         if c.st = Idle && not (frozen t c) && can_dispense t then
           dispatch t c)
      t.ctxs;
    try_commits t;
    (* Each lane owns [lane_issue_width] issue slots per cycle (1 in the
       paper's simple lanes; 2 models the "superscalar lane" future
       work).  Vertical multithreading lets the second context use a
       slot when the first stalls; a context that stalls is not retried
       within the cycle. *)
    for li = 0 to t.lpsu.lanes - 1 do
      let lane = (li + !rotate) mod t.lpsu.lanes in
      let budget = ref t.lpsu.lane_issue_width in
      let issued = ref false in
      let reason = ref (`Idle : stall) in
      for ti = 0 to threads - 1 do
        let c = t.ctxs.(lane * threads + ti) in
        let stalled = ref false in
        while !budget > 0 && not !stalled do
          let r =
            if frozen t c && c.st <> Idle then Error `Frozen
            else match c.st with
            | Idle -> Error `Idle
            | Wait_commit -> Error `Lsq
            | Drain_commit -> attempt_drain t c
            | Run ->
              if c.drain_q <> [] then attempt_drain t c
              else if t.spec_pattern && c.iter <= t.commit_iter
                   && Lsq.n_stores c.lsq > 0 then begin
                (* Promoted since its last issue (possibly mid-cycle):
                   buffered state must reach memory before the lane may
                   touch memory directly. *)
                c.drain_q <- Lsq.drain_order c.lsq;
                attempt_drain t c
              end
              else attempt_issue t c
          in
          match r with
          | Ok () ->
            issued := true;
            decr budget
          | Error e ->
            stalled := true;
            reason := worse !reason e
        done
      done;
      t.lane_reason.(lane) <- (if !issued then `Idle else !reason);
      account_lane_cycle t !issued !reason
    done;
    try_commits t;
    rotate := !rotate + 1;
    t.cycle <- t.cycle + 1
    end
  done;
  match !failure with None -> Ok () | Some h -> Error h

let finals t =
  let k = Int32.of_int t.committed in
  let cir_finals =
    Array.to_list t.cibs
    |> List.map (fun cb ->
        match cib_lookup cb t.committed with
        | Some (_, v, _) -> (cb.cir.c_reg, v)
        | None ->
          (* Can only happen for a loop with zero LPSU iterations. *)
          (cb.cir.c_reg, Int32.of_int t.base_regs.(cb.cir.c_reg)))
  in
  let miv_finals =
    List.map (fun (r, base, inc) -> (r, Int32.add base (Int32.mul k inc)))
      t.miv_bases
  in
  (cir_finals, miv_finals)

(** Run specialized execution.  [stop_after] bounds the number of
    iterations dispatched (used by the adaptive profiling phase); in-flight
    iterations always drain before returning.

    Hangs (watchdog trips and fuel exhaustion) come back as [Error] so the
    machine can roll back and degrade to traditional execution instead of
    crashing.  When a fault plan is active, architectural traps raised by a
    corrupted lane are converted to hangs too — an injected fault must never
    escape as an exception. *)
let run ~prog ~mem ~dcache ~cfg ~stats ~info ~regs ~start_cycle ?stop_after
    ?trace ?faults ?(watchdog = 0) ?(fuel = 500_000_000) ()
  : (result, Fault.hang) Stdlib.result =
  let t = create ~prog ~mem ~dcache ~cfg ~stats ~info ~regs ~start_cycle
      ?stop_after ?trace ?faults ~watchdog () in
  stats.xloops_specialized <- stats.xloops_specialized + 1;
  if Trace.enabled trace Decisions then
    Trace.event trace Decisions
      "[%7d] lpsu start: xloop.%a body=%d idx0=%ld bound=%ld mivs=%d cirs=%d"
      start_cycle Insn.pp_xpat_suffix info.Scan.pat info.body_len t.idx0
      t.bound (List.length info.mivs) (List.length info.cirs);
  let outcome =
    if faults = None then run_to_completion t ~fuel
    else
      (* A corrupted index or MIV can push a lane off the address map or
         the program; report it as a hang of kind [Trapped]. *)
      match run_to_completion t ~fuel with
      | r -> r
      | exception (Exec.Trap msg | Lane_trap msg) ->
        Error { Fault.h_resource = Fault.Trapped; h_cycle = t.cycle;
                h_committed = t.committed; h_detail = msg }
      | exception Xloops_mem.Memory.Bad_access { addr; what } ->
        Error { Fault.h_resource = Fault.Trapped; h_cycle = t.cycle;
                h_committed = t.committed;
                h_detail = Printf.sprintf "%s at 0x%x" what addr }
  in
  match outcome with
  | Error h ->
    if Trace.enabled trace Decisions then
      Trace.event trace Decisions "[%7d] lpsu HANG: %a" t.cycle
        Fault.pp_hang h;
    Error h
  | Ok () ->
    let cir_finals, miv_finals = finals t in
    let next_idx = idx_of t t.committed in
    if Trace.enabled trace Decisions then
      Trace.event trace Decisions
        "[%7d] lpsu done: %d iterations in %d cycles, %d violations"
        t.cycle t.committed (t.cycle - start_cycle) t.stats.violations;
    Ok { cycles = t.cycle - start_cycle;
         iterations = t.committed;
         finished =
           (match t.info.pat.cp with
            | Insn.De -> t.exit_at <> None
            | Fixed | Dyn -> Int32.compare next_idx t.bound >= 0);
         next_idx;
         bound = t.bound;
         cir_finals;
         miv_finals }
