(** Deterministic fault injection and structured hang diagnostics for
    the LPSU: seeded plans of transient faults (dropped/duplicated CIB
    forwards, lost store broadcasts, corrupted IDQ entries, stale MIVT
    seeds, port stalls, lane freezes) plus the watchdog's structured
    hang reports, which name the blocked resource instead of dying of
    fuel exhaustion. *)

type kind =
  | Cib_drop            (** lose the newest cross-iteration forward *)
  | Cib_dup             (** duplicate a CIB value to the next consumer *)
  | Lsq_drop_load       (** forget a lane's newest recorded load *)
  | Lsq_lost_broadcast  (** swallow the next store broadcast *)
  | Idq_corrupt         (** corrupt a running iteration's index value *)
  | Mivt_stale          (** reseed an MIV register with its stale base *)
  | Port_stall          (** jam the shared data-memory port *)
  | Lane_freeze         (** freeze a lane's issue logic for good *)

val all_kinds : kind list
val kind_name : kind -> string
val pp_kind : Format.formatter -> kind -> unit

type event = {
  ev_after : int;   (** cycles after the start of a specialized run *)
  ev_lane : int;    (** target lane / structure selector (taken mod) *)
  ev_kind : kind;
}

type t

val plan : ?kinds:kind list -> seed:int -> events:int -> unit -> t
(** Reproducible plan: same [(seed, events, kinds)] → same schedule.
    Raises [Invalid_argument] on a negative count or empty kind list. *)

val explicit : event list -> t
(** A hand-written plan (tests, targeted reproduction). *)

val none : unit -> t
(** The empty plan (injects nothing, records nothing). *)

val due : t -> rel:int -> event list
(** Events whose offset has been reached at relative cycle [rel];
    removed from the plan.  The injector {!record}s the ones it applied
    and {!defer}s the ones with no applicable target. *)

val defer : t -> event -> unit
val record : t -> kind -> cycle:int -> unit

val injected : t -> int
(** Number of faults actually applied so far. *)

val injected_kinds : t -> kind list
val pending : t -> int
val pp_plan : Format.formatter -> t -> unit

(** {1 Hang diagnostics} *)

type resource =
  | Cib_chain        (** a cross-iteration register chain never fills *)
  | Lsq_full         (** every lane is load/store-queue bound *)
  | Port_starved     (** the shared memory port never frees up *)
  | Lane_frozen      (** an injected lane freeze pins the commit point *)
  | Fuel             (** cycle budget exhausted without a diagnosis *)
  | Trapped          (** an architectural trap escaped a lane mid-run *)
  | No_progress      (** stalled, but on no single identifiable resource *)

val resource_name : resource -> string
val pp_resource : Format.formatter -> resource -> unit

type hang = {
  h_resource : resource;
  h_cycle : int;       (** absolute cycle the watchdog fired at *)
  h_committed : int;   (** iterations committed before the hang *)
  h_detail : string;
}

val pp_hang : Format.formatter -> hang -> unit
