(** Per-lane load-store queue for speculative execution of
    [xloop.{om,orm,ua}] (Section II-D): buffers the lane's stores,
    records its load addresses for violation detection, and serves loads
    through a byte-accurate overlay of the buffered stores on top of
    architectural memory (store-to-load forwarding). *)

type store_entry = {
  s_addr : int;
  s_bytes : int;
  s_value : int32;  (** little-endian in the low [s_bytes] bytes *)
}

type forward_source = {
  f_iter : int;
  f_value : int32;
}

type load_entry = {
  l_addr : int;
  l_bytes : int;
  l_fwd : forward_source option;
      (** [Some _] when the value came from another lane's LSQ *)
}

type t

val create : max_loads:int -> max_stores:int -> t

val loads_full : t -> bool
val stores_full : t -> bool
val n_stores : t -> int
val is_empty : t -> bool
val clear : t -> unit

val record_load : ?fwd:forward_source -> t -> addr:int -> bytes:int -> unit
val record_store : t -> addr:int -> bytes:int -> value:int32 -> unit

val store_overlaps : t -> addr:int -> bytes:int -> bool
(** Any buffered store overlapping the range (decides whether a load can
    forward without the memory port). *)

val load_overlaps : t -> addr:int -> bytes:int -> bool
(** Any recorded load overlapping the range (violation check against a
    broadcast store). *)

val read : t -> Xloops_mem.Memory.t -> Xloops_isa.Insn.width -> int -> int32
(** Architectural load through the overlay: youngest buffered store wins
    per byte, memory otherwise. *)

val drain_order : t -> store_entry list
(** Buffered stores, oldest first. *)

val apply_store : Xloops_mem.Memory.t -> store_entry -> unit

(** {1 Inter-lane store-to-load forwarding support} *)

val read_raw : t -> Xloops_mem.Memory.t -> addr:int -> bytes:int -> int32
(** Raw little-endian bytes of a range through the overlay. *)

val covering_store_value : t -> addr:int -> bytes:int -> int32 option
(** Bytes of a single buffered store fully covering the range, if any. *)

val violated_loads :
  t -> from_iter:int -> addr:int -> bytes:int -> store:store_entry ->
  load_entry list
(** Load entries violated by a broadcast store — overlapping entries,
    except those whose forwarded value came from this very iteration and
    is confirmed byte-identical by the committing store. *)

val has_forward_from : t -> int -> bool
(** A load entry forwarded from the given iteration exists (such entries
    squash when that iteration squashes). *)

(** {1 Fault-injection hooks} (see {!Fault}) *)

val drop_newest_load : t -> bool
(** Forget the newest recorded load — a transiently lost CAM entry that
    lets a conflicting broadcast slip past violation detection.  Returns
    whether there was one to drop. *)

val corrupt_newest_store : t -> mask:int32 -> bool
(** Flip bits in the newest buffered store's value (transient data-array
    upset).  Returns whether applied. *)
