(** Direct-threaded execution tier: each {!Program.predecoded} compiles
    once into an array of closures (one indirect call per dispatch, no
    event record), with adjacent-pair *superop* fusion — cmp+branch,
    address-gen+load/store, [.xi] add+index-bump — on top, and a
    *block-compiled* layer above that: basic blocks discovered at
    predecode time compile into single closures that retire the whole
    block in one bump, with the dominant profiled triples (add chains,
    addi+cmp+branch back edges, address-gen+load+bump) fused inside.
    Fusion is purely local: the slot after a fused head keeps its
    single-op closure, so jumps into the middle of a pair or block are
    always legal.

    These tiers produce no per-instruction events, so they serve only
    observer-free functional runs; timing models, tracing, the watchdog
    and fault injection stay on {!Exec.step}.  The exception is the LPSU
    lane fast path ({!lane_meta}): pcs whose execution is observationally
    silent at the lane level may run their compiled closure between
    observation points, with the LPSU falling back to [Exec.step]
    whenever an observer is attached. *)

module Program = Xloops_asm.Program

(** Machine state the compiled closures act on.  [regs] and [mem] may
    alias a caller's structures (the LPSU lanes point [regs] at the
    hart's register file); [pc]/[retired] are only guaranteed current at
    dispatch boundaries and sync points — see {!run_serial_block}. *)
type state = {
  regs : int array;
  mem : Xloops_mem.Memory.t;
  mutable pc : int;
  mutable retired : int;
}

type op = state -> unit

val run_serial : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (Exec.run, Exec.stop) result
(** Same contract as {!Exec.run_serial}, bit-identical results
    (registers, memory, dynamic instruction count, out-of-fuel report,
    trap/halt behavior) — property-tested in [test_threaded].
    Compilation is memoized per domain, keyed by physical equality. *)

val run_serial_block : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (Exec.run, Exec.stop) result
(** {!run_serial} on the block-compiled layer: one dispatch and one
    retirement bump per basic block.  Side exits (memory traps, halt,
    fuel exhaustion) materialize the precise mid-block pc and register
    state, so results stay bit-identical to every other tier. *)

(** {1 Compilation plan} (for the fused disassembly view and the
    pair/triple profilers) *)

val superops : Program.t -> (int * string) list
(** Head pc and rule name ("alui+branch", "xi_addi+xloop_cmp", ...) of
    every fused pair, in ascending pc order.  The pair covers the head
    pc and the following instruction. *)

val fused_heads : Program.t -> bool array
(** Per-pc superop-head marks, parallel to the instruction array. *)

val block_plan : Program.t -> (int * int) list * (int * string) list
(** Compiled basic blocks as (leader pc, uop count) and fused triples as
    (head pc, "class+class+class"), both in ascending pc order. *)

type block_profile = {
  bp_dispatches : int;  (** dynamic block-tier dispatches *)
  bp_insns : int;       (** instructions retired *)
  bp_hist : int array;  (** [bp_hist.(k)] = dispatches that retired k *)
}

val run_serial_block_profiled : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (Exec.run, Exec.stop) result * block_profile
(** {!run_serial_block} with per-dispatch retirement accounting, for the
    bench block-coverage report. *)

(** {1 LPSU lane fast path} *)

(** Per-pc lane metadata: [L_plain] marks instructions an LPSU lane may
    execute through the compiled closure — single-cycle, portless,
    trapless, no memory traffic, no long-latency unit, no loop
    bookkeeping, and any control transfer recoverable from the outgoing
    pc ([l_ctrl]: 0 = never redirects, 1 = conditional, taken iff the
    outgoing pc differs from pc+1, 2 = always taken).  The LPSU demotes
    additional pcs it observes (CIR registers, last-CIR-write pcs,
    dynamic-bound writes) and skips the fast path entirely under any
    attached observer. *)
type lane_meta =
  | L_slow
  | L_plain of {
      l_op : op;
      l_insn : int Xloops_isa.Insn.t;
      l_rd : int;   (** dest register, -1 when none *)
      l_s1 : int;   (** source registers, -1 when absent *)
      l_s2 : int;
      l_ctrl : int;
    }

val lane_meta : Program.predecoded -> lane_meta array
(** Memoized with the compiled program (per domain, physical equality);
    callers must not mutate the array — copy before demoting. *)
