(** Direct-threaded execution tier: each {!Program.predecoded} compiles
    once into an array of closures (one indirect call per dispatch, no
    event record), with adjacent-pair *superop* fusion — cmp+branch,
    address-gen+load/store, [.xi] add+index-bump — on top.  Fusion is
    purely local: the slot after a fused head keeps its single-op
    closure, so jumps into the middle of a pair are always legal.

    This tier produces no per-instruction events, so it serves only
    observer-free functional runs; timing models, LPSU lanes, tracing,
    the watchdog and fault injection stay on {!Exec.step}. *)

module Program = Xloops_asm.Program

val run_serial : ?entry:int -> ?fuel:int -> Program.t ->
  Xloops_mem.Memory.t -> (Exec.run, Exec.stop) result
(** Same contract as {!Exec.run_serial}, bit-identical results
    (registers, memory, dynamic instruction count, out-of-fuel report,
    trap/halt behavior) — property-tested in [test_threaded].
    Compilation is memoized per domain, keyed by physical equality. *)

(** {1 Compilation plan} (for the fused disassembly view and the
    pair profiler) *)

val superops : Program.t -> (int * string) list
(** Head pc and rule name ("alui+branch", "xi_addi+xloop_cmp", ...) of
    every fused pair, in ascending pc order.  The pair covers the head
    pc and the following instruction. *)

val fused_heads : Program.t -> bool array
(** Per-pc superop-head marks, parallel to the instruction array. *)
