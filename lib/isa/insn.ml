(** The XLOOPS instruction set.

    The base ISA is a 32-bit RISC instruction set (loads/stores of bytes,
    halfwords and words, the usual ALU operations, branches, jumps, atomic
    memory operations and a memory fence).  The XLOOPS extensions of
    Table I of the paper are:

    - [Xloop (pat, r_idx, r_bound, l)] — ends a parallel loop body that
      starts at label [l].  The data-dependence pattern [pat] encodes how
      iterations may interact.  On a traditional microarchitecture the
      instruction executes as [blt r_idx, r_bound, l].
    - [Xi_addi]/[Xi_add] — cross-iteration instructions marking mutual
      induction variables (MIVs).  On a traditional microarchitecture they
      execute as plain additions; a specialized microarchitecture may
      compute them in parallel from the iteration index.

    The type is parameterized by the branch-target representation: the
    assembler builds ['lbl = string] programs and resolves them to
    [int] absolute instruction addresses (one word per instruction). *)

(** Inter-iteration data-dependence pattern of an [xloop] (Table I). *)
type dpattern =
  | Uc  (** unordered concurrent *)
  | Or  (** ordered through registers *)
  | Om  (** ordered through memory *)
  | Orm (** ordered through registers and memory *)
  | Ua  (** unordered atomic *)
[@@deriving show { with_path = false }, eq, ord]

(** Inter-iteration control-dependence pattern: fixed bound, or a dynamic
    bound that the loop body may monotonically increase ([.db] suffix). *)
type cpattern = Fixed | Dyn | De
[@@deriving show { with_path = false }, eq, ord]

type xpat = { dp : dpattern; cp : cpattern }
[@@deriving show { with_path = false }, eq, ord]

let pp_xpat_suffix ppf { dp; cp } =
  let d = match dp with
    | Uc -> "uc" | Or -> "or" | Om -> "om" | Orm -> "orm" | Ua -> "ua" in
  let c = match cp with Fixed -> "" | Dyn -> ".db" | De -> ".de" in
  Fmt.pf ppf "%s%s" d c

(** ALU operations.  [Mul], [Mulh], [Div], [Rem] are long-latency and
    execute on the shared LLFU in the LPSU. *)
type alu_op =
  | Add | Sub | And | Or_ | Xor | Nor
  | Sll | Srl | Sra
  | Slt | Sltu
  | Mul | Mulh | Div | Rem
[@@deriving show { with_path = false }, eq, ord]

(** Single-precision floating-point operations over the unified register
    file; operands are interpreted as IEEE-754 binary32 bit patterns.
    All execute on the shared LLFU. *)
type fpu_op =
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax
  | Feq | Flt | Fle          (** comparisons produce 0/1 *)
  | Fcvt_sw                  (** int -> float *)
  | Fcvt_ws                  (** float -> int, truncating *)
[@@deriving show { with_path = false }, eq, ord]

(** Memory access widths; [B]/[H] sign-extend, [Bu]/[Hu] zero-extend. *)
type width = B | Bu | H | Hu | W
[@@deriving show { with_path = false }, eq, ord]

(** Atomic memory operations: [rd <- M[rs]; M[rs] <- op (M[rs], rt)],
    performed atomically with respect to all lanes and the GPP. *)
type amo_op = Amo_add | Amo_and | Amo_or | Amo_xchg | Amo_min | Amo_max
[@@deriving show { with_path = false }, eq, ord]

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu
[@@deriving show { with_path = false }, eq, ord]

type 'lbl t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t      (** op rd, rs, rt *)
  | Alui of alu_op * Reg.t * Reg.t * int       (** opi rd, rs, imm *)
  | Fpu of fpu_op * Reg.t * Reg.t * Reg.t      (** fop rd, rs, rt *)
  | Lui of Reg.t * int                         (** rd <- imm << 16 *)
  | Load of width * Reg.t * Reg.t * int        (** l{w,h,b} rd, imm(rs) *)
  | Store of width * Reg.t * Reg.t * int       (** s{w,h,b} rt, imm(rs) *)
  | Amo of amo_op * Reg.t * Reg.t * Reg.t      (** amo.op rd, (rs), rt *)
  | Branch of branch_cond * Reg.t * Reg.t * 'lbl
  | Jump of 'lbl
  | Jal of 'lbl                                (** ra <- pc+1; jump *)
  | Jr of Reg.t
  | Xloop of xpat * Reg.t * Reg.t * 'lbl       (** xloop.pat r_idx, r_bound, L *)
  | Xi_addi of Reg.t * Reg.t * int             (** addiu.xi rd, rs, imm *)
  | Xi_add of Reg.t * Reg.t * Reg.t            (** addu.xi rd, rs, rt; rt loop-invariant *)
  | Sync                                       (** memory fence *)
  | Halt                                       (** stop the hart (used in place of syscalls) *)
  | Nop
[@@deriving show { with_path = false }, eq, ord]

let map_label f = function
  | Branch (c, a, b, l) -> Branch (c, a, b, f l)
  | Jump l -> Jump (f l)
  | Jal l -> Jal (f l)
  | Xloop (p, a, b, l) -> Xloop (p, a, b, f l)
  | Alu _ | Alui _ | Fpu _ | Lui _ | Load _ | Store _ | Amo _ | Jr _
  | Xi_addi _ | Xi_add _ | Sync | Halt | Nop as i ->
    (* The constructors above carry no label; rebuild at the new type. *)
    (match i with
     | Alu (o, a, b, c) -> Alu (o, a, b, c)
     | Alui (o, a, b, c) -> Alui (o, a, b, c)
     | Fpu (o, a, b, c) -> Fpu (o, a, b, c)
     | Lui (a, b) -> Lui (a, b)
     | Load (w, a, b, c) -> Load (w, a, b, c)
     | Store (w, a, b, c) -> Store (w, a, b, c)
     | Amo (o, a, b, c) -> Amo (o, a, b, c)
     | Jr r -> Jr r
     | Xi_addi (a, b, c) -> Xi_addi (a, b, c)
     | Xi_add (a, b, c) -> Xi_add (a, b, c)
     | Sync -> Sync
     | Halt -> Halt
     | Nop -> Nop
     | Branch _ | Jump _ | Jal _ | Xloop _ -> assert false)

(** Registers read by an instruction (architectural sources). *)
let sources = function
  | Alu (_, _, rs, rt) | Fpu (_, _, rs, rt) -> [ rs; rt ]
  | Alui (_, _, rs, _) -> [ rs ]
  | Lui _ -> []
  | Load (_, _, rs, _) -> [ rs ]
  | Store (_, rt, rs, _) -> [ rs; rt ]
  | Amo (_, _, rs, rt) -> [ rs; rt ]
  | Branch (_, rs, rt, _) -> [ rs; rt ]
  | Jump _ | Jal _ -> []
  | Jr rs -> [ rs ]
  | Xloop (_, rs, rt, _) -> [ rs; rt ]
  | Xi_addi (_, rs, _) -> [ rs ]
  | Xi_add (_, rs, rt) -> [ rs; rt ]
  | Sync | Halt | Nop -> []

(** Register written by an instruction, if any. *)
let dest = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Fpu (_, rd, _, _)
  | Lui (rd, _) | Load (_, rd, _, _) | Amo (_, rd, _, _)
  | Xi_addi (rd, _, _) | Xi_add (rd, _, _) ->
    if rd = Reg.zero then None else Some rd
  | Jal _ -> Some Reg.ra
  | Store _ | Branch _ | Jump _ | Jr _ | Xloop _ | Sync | Halt | Nop -> None

(* Allocation-free variants for per-instruction hot paths (timing
   models, LPSU lanes): the register slots as plain ints, -1 when the
   slot is absent.  [sources]/[dest] remain the readable interface for
   cold code. *)

let src1 = function
  | Alu (_, _, rs, _) | Fpu (_, _, rs, _) | Alui (_, _, rs, _)
  | Load (_, _, rs, _) | Store (_, _, rs, _) | Amo (_, _, rs, _)
  | Branch (_, rs, _, _) | Jr rs | Xloop (_, rs, _, _)
  | Xi_addi (_, rs, _) | Xi_add (_, rs, _) -> rs
  | Lui _ | Jump _ | Jal _ | Sync | Halt | Nop -> -1

let src2 = function
  | Alu (_, _, _, rt) | Fpu (_, _, _, rt) | Store (_, rt, _, _)
  | Amo (_, _, _, rt) | Branch (_, _, rt, _) | Xloop (_, _, rt, _)
  | Xi_add (_, _, rt) -> rt
  | Alui _ | Lui _ | Load _ | Jump _ | Jal _ | Jr _ | Xi_addi _
  | Sync | Halt | Nop -> -1

let dest_reg = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Fpu (_, rd, _, _)
  | Lui (rd, _) | Load (_, rd, _, _) | Amo (_, rd, _, _)
  | Xi_addi (rd, _, _) | Xi_add (rd, _, _) ->
    if rd = Reg.zero then -1 else rd
  | Jal _ -> Reg.ra
  | Store _ | Branch _ | Jump _ | Jr _ | Xloop _ | Sync | Halt | Nop -> -1

let is_branch = function
  | Branch _ | Jump _ | Jal _ | Jr _ | Xloop _ -> true
  | _ -> false

let is_mem = function
  | Load _ | Store _ | Amo _ -> true
  | _ -> false

(** True for instructions executed by the shared long-latency functional
    unit (integer multiply/divide and all floating point). *)
let is_llfu = function
  | Alu ((Mul | Mulh | Div | Rem), _, _, _)
  | Alui ((Mul | Mulh | Div | Rem), _, _, _)
  | Fpu _ -> true
  | _ -> false

(** Number of bytes a width accesses. *)
let width_bytes : width -> int = function
  | B | Bu -> 1
  | H | Hu -> 2
  | W -> 4

let is_xloop = function Xloop _ -> true | _ -> false
let is_xi = function Xi_addi _ | Xi_add _ -> true | _ -> false

(* Fusion metadata for the direct-threaded execution tier: a superop may
   only start at an instruction whose effect is a pure register write
   (no memory traffic, no control transfer, no trap) — those are the
   heads the threaded compiler can replay inline in front of any
   successor.  Anything may be a tail except the instructions whose
   side effects the surrounding machinery must see one at a time. *)

let fusible_head = function
  | Alu (_, rd, _, _) | Alui (_, rd, _, _) | Lui (rd, _)
  | Xi_addi (rd, _, _) | Xi_add (rd, _, _) -> rd <> Reg.zero
  | Fpu _          (* long-latency; keep the slot boundaries visible *)
  | Load _ | Store _ | Amo _ | Branch _ | Jump _ | Jal _ | Jr _
  | Xloop _ | Sync | Halt | Nop -> false

let fusible_tail = function
  | Alu _ | Alui _ | Lui _ | Xi_addi _ | Xi_add _
  | Load _ | Store _ | Branch _ | Xloop _ -> true
  | Fpu _ | Amo _ | Jump _ | Jal _ | Jr _ | Sync | Halt | Nop -> false

(** Coarse operation class, the key the superop profiler aggregates
    dynamic adjacent-pair counts under ("alui+branch", "xi_addi+xloop",
    ...). *)
let class_name = function
  | Alu _ -> "alu"
  | Alui _ -> "alui"
  | Fpu _ -> "fpu"
  | Lui _ -> "lui"
  | Load _ -> "load"
  | Store _ -> "store"
  | Amo _ -> "amo"
  | Branch _ -> "branch"
  | Jump _ -> "jump"
  | Jal _ -> "jal"
  | Jr _ -> "jr"
  | Xloop _ -> "xloop"
  | Xi_addi _ -> "xi_addi"
  | Xi_add _ -> "xi_add"
  | Sync -> "sync"
  | Halt -> "halt"
  | Nop -> "nop"

let pp pp_lbl ppf (i : _ t) =
  let r = Reg.pp in
  match i with
  | Alu (op, rd, rs, rt) ->
    Fmt.pf ppf "%s %a, %a, %a"
      (String.lowercase_ascii (show_alu_op op)) r rd r rs r rt
  | Alui (op, rd, rs, imm) ->
    Fmt.pf ppf "%si %a, %a, %d"
      (String.lowercase_ascii (show_alu_op op)) r rd r rs imm
  | Fpu (op, rd, rs, rt) ->
    Fmt.pf ppf "%s %a, %a, %a"
      (String.lowercase_ascii (show_fpu_op op)) r rd r rs r rt
  | Lui (rd, imm) -> Fmt.pf ppf "lui %a, %d" r rd imm
  | Load (w, rd, rs, imm) ->
    Fmt.pf ppf "l%s %a, %d(%a)"
      (String.lowercase_ascii (show_width w)) r rd imm r rs
  | Store (w, rt, rs, imm) ->
    Fmt.pf ppf "s%s %a, %d(%a)"
      (String.lowercase_ascii (show_width w)) r rt imm r rs
  | Amo (op, rd, rs, rt) ->
    Fmt.pf ppf "%s %a, (%a), %a"
      (String.lowercase_ascii (show_amo_op op)) r rd r rs r rt
  | Branch (c, rs, rt, l) ->
    Fmt.pf ppf "%s %a, %a, %a"
      (String.lowercase_ascii (show_branch_cond c)) r rs r rt pp_lbl l
  | Jump l -> Fmt.pf ppf "j %a" pp_lbl l
  | Jal l -> Fmt.pf ppf "jal %a" pp_lbl l
  | Jr rs -> Fmt.pf ppf "jr %a" r rs
  | Xloop (p, rs, rt, l) ->
    Fmt.pf ppf "xloop.%a %a, %a, %a" pp_xpat_suffix p r rs r rt pp_lbl l
  | Xi_addi (rd, rs, imm) -> Fmt.pf ppf "addiu.xi %a, %a, %d" r rd r rs imm
  | Xi_add (rd, rs, rt) -> Fmt.pf ppf "addu.xi %a, %a, %a" r rd r rs r rt
  | Sync -> Fmt.string ppf "sync"
  | Halt -> Fmt.string ppf "halt"
  | Nop -> Fmt.string ppf "nop"

let pp_resolved ppf i = pp Fmt.int ppf i
