(** The XLOOPS instruction set (Table I of the paper): a 32-bit RISC base
    ISA extended with [xloop] loop-pattern instructions and [.xi]
    cross-iteration (mutual-induction-variable) instructions.

    The type is parameterized by the branch-target representation:
    ['lbl = string] while building, [int] (absolute instruction address)
    after assembly. *)

(** Inter-iteration data-dependence pattern. *)
type dpattern =
  | Uc   (** unordered concurrent *)
  | Or   (** ordered through registers *)
  | Om   (** ordered through memory *)
  | Orm  (** ordered through registers and memory *)
  | Ua   (** unordered atomic *)

(** Inter-iteration control-dependence pattern: fixed bound, a dynamic
    bound the body may monotonically raise ([.db]), or a data-dependent
    exit ([.de], implemented as an extension of the paper's future work:
    the loop continues while the exit register reads zero). *)
type cpattern = Fixed | Dyn | De

type xpat = { dp : dpattern; cp : cpattern }

type alu_op =
  | Add | Sub | And | Or_ | Xor | Nor
  | Sll | Srl | Sra
  | Slt | Sltu
  | Mul | Mulh | Div | Rem

(** Single-precision FP over the unified register file (operands are
    IEEE-754 binary32 bit patterns); all FP executes on the shared
    long-latency functional unit. *)
type fpu_op =
  | Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax
  | Feq | Flt | Fle
  | Fcvt_sw  (** int -> float *)
  | Fcvt_ws  (** float -> int, truncating *)

(** Memory access widths; [B]/[H] sign-extend, [Bu]/[Hu] zero-extend. *)
type width = B | Bu | H | Hu | W

(** Atomic read-modify-write on a word:
    [rd <- M\[rs\]; M\[rs\] <- op (M\[rs\], rt)]. *)
type amo_op = Amo_add | Amo_and | Amo_or | Amo_xchg | Amo_min | Amo_max

type branch_cond = Beq | Bne | Blt | Bge | Bltu | Bgeu

type 'lbl t =
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alui of alu_op * Reg.t * Reg.t * int
  | Fpu of fpu_op * Reg.t * Reg.t * Reg.t
  | Lui of Reg.t * int
  | Load of width * Reg.t * Reg.t * int       (** l* rd, imm(rs) *)
  | Store of width * Reg.t * Reg.t * int      (** s* rt, imm(rs) *)
  | Amo of amo_op * Reg.t * Reg.t * Reg.t     (** amo.op rd, (rs), rt *)
  | Branch of branch_cond * Reg.t * Reg.t * 'lbl
  | Jump of 'lbl
  | Jal of 'lbl
  | Jr of Reg.t
  | Xloop of xpat * Reg.t * Reg.t * 'lbl
      (** [Xloop (pat, r_idx, r_bound, l)] ends the parallel loop body
          that starts at [l]; traditionally it executes as
          [blt r_idx, r_bound, l]. *)
  | Xi_addi of Reg.t * Reg.t * int            (** addiu.xi rd, rs, imm *)
  | Xi_add of Reg.t * Reg.t * Reg.t
      (** addu.xi rd, rs, rt; [rt] must be loop-invariant *)
  | Sync
  | Halt
  | Nop

(** {1 Metadata} *)

val sources : 'lbl t -> Reg.t list
(** Architectural source registers. *)

val dest : 'lbl t -> Reg.t option
(** Destination register ([None] for stores/branches and writes to r0;
    [Jal] writes {!Reg.ra}). *)

val src1 : _ t -> int
val src2 : _ t -> int
val dest_reg : _ t -> int
(** Allocation-free variants of {!sources}/{!dest} for per-instruction
    hot paths: the register number, or -1 when the slot is absent (and,
    for {!dest_reg}, for writes to r0). *)

val is_branch : _ t -> bool
val is_mem : _ t -> bool

val is_llfu : _ t -> bool
(** Executes on the shared long-latency functional unit (integer
    mul/div/rem and all FP). *)

val width_bytes : width -> int
(** Number of bytes a width accesses (1, 2 or 4). *)

val is_xloop : _ t -> bool
val is_xi : _ t -> bool

(** {1 Superop fusion metadata} (the direct-threaded execution tier)

    A fused superop executes two adjacent static instructions in one
    dispatch.  {!fusible_head} marks instructions whose entire effect is
    a register write (no memory traffic, control transfer or trap), so
    they can be replayed inline in front of any successor;
    {!fusible_tail} marks the instructions allowed in the second slot.
    Whether a particular pair actually fuses is the threaded compiler's
    decision — these predicates are the architectural constraint. *)

val fusible_head : _ t -> bool
val fusible_tail : _ t -> bool

val class_name : _ t -> string
(** Coarse operation class ("alu", "alui", "load", ...) — the key the
    superop pair profiler aggregates dynamic adjacent-pair counts
    under. *)

val map_label : ('a -> 'b) -> 'a t -> 'b t

(** {1 Printing and equality} *)

val pp_xpat_suffix : Format.formatter -> xpat -> unit
(** "uc", "or.db", ... as in the paper's mnemonics. *)

val pp : (Format.formatter -> 'lbl -> unit) -> Format.formatter ->
  'lbl t -> unit

val pp_resolved : Format.formatter -> int t -> unit

val equal : ('lbl -> 'lbl -> bool) -> 'lbl t -> 'lbl t -> bool
val equal_dpattern : dpattern -> dpattern -> bool
val equal_cpattern : cpattern -> cpattern -> bool
val equal_xpat : xpat -> xpat -> bool
val equal_alu_op : alu_op -> alu_op -> bool
val equal_fpu_op : fpu_op -> fpu_op -> bool
val equal_width : width -> width -> bool
val equal_amo_op : amo_op -> amo_op -> bool
val equal_branch_cond : branch_cond -> branch_cond -> bool

val show_dpattern : dpattern -> string
val show_alu_op : alu_op -> string
val show_fpu_op : fpu_op -> string
val show_width : width -> string
val show_amo_op : amo_op -> string
val show_branch_cond : branch_cond -> string
