(** rsort-{ua,uc} (custom): radix sort.

    - rsort-ua: two 4-bit passes over 8-bit keys.  Each pass updates a
      digit histogram with an [atomic] loop (the dominant [xloop.ua]),
      computes bucket offsets with a small serial prefix sum, and scatters
      with an [ordered] loop (stability requires the serial order, and the
      read-modify-write of the bucket cursor is a data-dependent memory
      dependence -> [xloop.om]).
    - rsort-uc (Table IV): the loop-transformed single-pass variant using
      256 buckets and AMO-reserved scatter slots — fully unordered, but
      unstable (fine for plain integers). *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 320

(* -- two-pass 4-bit version (ua) -------------------------------------- *)

let pass ~(src : string) ~dst ~shift : Ast.block =
  let open Ast.Syntax in
  [ for_ "z" (i 0) (i 16)
      [ Ast.Store ("hist", v "z", i 0) ];
    for_ ~pragma:Atomic "t" (i 0) (v "n")
      [ Ast.Decl ("d", (src.%[v "t"] lsr i shift) land i 15);
        Ast.Store ("hist", v "d", "hist".%[v "d"] + i 1) ];
    (* exclusive prefix sum over the 16 buckets *)
    Ast.Decl ("run", i 0);
    for_ "z2" (i 0) (i 16)
      [ Ast.Decl ("h", "hist".%[v "z2"]);
        Ast.Store ("off", v "z2", v "run");
        Ast.Assign ("run", v "run" + v "h") ];
    (* stable scatter: ordered (bucket cursors live in memory) *)
    for_ ~pragma:Ordered "t2" (i 0) (v "n")
      [ Ast.Decl ("key", src.%[v "t2"]);
        Ast.Decl ("d2", (v "key" lsr i shift) land i 15);
        Ast.Decl ("pos", "off".%[v "d2"]);
        Ast.Store (dst, v "pos", v "key");
        Ast.Store ("off", v "d2", v "pos" + i 1) ] ]

let kernel_ua : Ast.kernel =
  { k_name = "rsort-ua";
    arrays = [ Kernel.arr "a0" I32 n; Kernel.arr "a1" I32 n;
               Kernel.arr "hist" I32 16; Kernel.arr "off" I32 16 ];
    consts = [ ("n", n) ];
    k_body =
      pass ~src:"a0" ~dst:"a1" ~shift:0
      @ pass ~src:"a1" ~dst:"a0" ~shift:4 }

(* -- single-pass 256-bucket version (uc) -------------------------------- *)

let kernel_uc : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "rsort-uc";
    arrays = [ Kernel.arr "a0" I32 n; Kernel.arr "a1" I32 n;
               Kernel.arr "hist" I32 256; Kernel.arr "off" I32 256 ];
    consts = [ ("n", n) ];
    k_body =
      [ for_ ~pragma:Unordered "t" (i 0) (v "n")
          [ Ast.Decl ("d", "a0".%[v "t"] land i 255);
            Ast.Decl ("_h", Ast.Amo (Aadd, "hist", v "d", i 1)) ];
        Ast.Decl ("run", i 0);
        for_ "z" (i 0) (i 256)
          [ Ast.Decl ("h", "hist".%[v "z"]);
            Ast.Store ("off", v "z", v "run");
            Ast.Assign ("run", v "run" + v "h") ];
        for_ ~pragma:Unordered "t2" (i 0) (v "n")
          [ Ast.Decl ("key", "a0".%[v "t2"]);
            Ast.Decl ("pos", Ast.Amo (Aadd, "off", v "key" land i 255, i 1));
            Ast.Store ("a1", v "pos", v "key") ] ] }

let keys = Dataset.ints ~seed:1511 ~n ~bound:256

let reference_sorted () =
  let s = Array.copy keys in
  Array.sort compare s;
  s

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "a0") keys

let check_ua (base : Kernel.bases) mem =
  (* After two stable passes the result is back in a0, fully sorted. *)
  let out = Memory.read_int_array mem ~addr:(base "a0") ~n in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"a0" ~expected:(reference_sorted ()) out;
      Kernel.check_permutation ~what:"a0" ~of_:keys out ]

let check_uc (base : Kernel.bases) mem =
  let out = Memory.read_int_array mem ~addr:(base "a1") ~n in
  Kernel.all_checks
    [ Kernel.check_sorted ~what:"a1" out;
      Kernel.check_permutation ~what:"a1" ~of_:keys out ]

let descriptor : Kernel.t =
  { name = "rsort-ua"; suite = "C"; dominant = "ua";
    kernel = kernel_ua; init; check = check_ua }

let descriptor_uc : Kernel.t =
  { name = "rsort-uc"; suite = "C"; dominant = "uc";
    kernel = kernel_uc; init; check = check_uc }
