(** Deterministic synthetic datasets.

    The paper evaluates on MiBench/PolyBench/PBBS inputs tailored to fit
    the 16 KB L1 (Section V-A).  We do not ship those suites; every kernel
    instead generates a seeded, deterministic input of equivalent shape and
    size, so runs are reproducible bit-for-bit across machines and
    configurations. *)

(** Minimal LCG (numerical recipes constants), avoiding any dependence on
    OCaml's [Random] so datasets never change under us. *)
type rng = { mutable state : int }

let rng seed = { state = seed land 0x3FFFFFFF }

let next r =
  r.state <- (r.state * 1664525 + 1013904223) land 0x3FFFFFFF;
  r.state

(** Uniform integer in [0, bound). *)
let int r bound = next r mod bound

(** Uniform integer in [lo, hi]. *)
let range r lo hi = lo + int r (hi - lo + 1)

let float01 r = float_of_int (next r) /. float_of_int 0x40000000

let ints ~seed ~n ~bound =
  let r = rng seed in
  Array.init n (fun _ -> int r bound)

let bytes ~seed ~n = ints ~seed ~n ~bound:256

let floats ~seed ~n ~scale =
  let r = rng seed in
  Array.init n (fun _ -> (float01 r -. 0.5) *. 2.0 *. scale)

(** Random sparse digraph as flattened adjacency (CSR): returns
    (row_start array of n+1, edges array).  Deterministic, connected-ish
    from node 0 (every node i>0 gets an incoming edge from a lower node). *)
let graph_csr ~seed ~nodes ~avg_degree =
  let r = rng seed in
  let adj = Array.make nodes [] in
  (* Spanning structure: parent edge from a lower-numbered node. *)
  for i = 1 to nodes - 1 do
    let p = int r i in
    adj.(p) <- i :: adj.(p)
  done;
  (* Extra random edges. *)
  let extra = nodes * (avg_degree - 1) in
  for _ = 1 to max 0 extra do
    let a = int r nodes and b = int r nodes in
    if a <> b then adj.(a) <- b :: adj.(a)
  done;
  let row_start = Array.make (nodes + 1) 0 in
  for i = 0 to nodes - 1 do
    row_start.(i + 1) <- row_start.(i) + List.length adj.(i)
  done;
  let edges = Array.make row_start.(nodes) 0 in
  for i = 0 to nodes - 1 do
    List.iteri (fun k dst -> edges.(row_start.(i) + k) <- dst)
      (List.rev adj.(i))
  done;
  (row_start, edges)
