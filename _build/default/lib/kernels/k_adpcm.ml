(** adpcm-or (MiBench): IMA ADPCM encoder.  One ordered loop over samples;
    the predictor state ([valpred], [index]) is carried between iterations
    in registers, giving a long inter-iteration critical path — the
    classic hard case for specialized execution that Table IV's
    hand-scheduled variant improves. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 1200

let step_table =
  [| 7; 8; 9; 10; 11; 12; 13; 14; 16; 17; 19; 21; 23; 25; 28; 31; 34; 37;
     41; 45; 50; 55; 60; 66; 73; 80; 88; 97; 107; 118; 130; 143; 157; 173;
     190; 209; 230; 253; 279; 307; 337; 371; 408; 449; 494; 544; 598; 658;
     724; 796; 876; 963; 1060; 1166; 1282; 1411; 1552; 1707; 1878; 2066;
     2272; 2499; 2749; 3024; 3327; 3660; 4026; 4428; 4871; 5358; 5894;
     6484; 7132; 7845; 8630; 9493; 10442; 11487; 12635; 13899; 15289;
     16818; 18500; 20350; 22385; 24623; 27086; 29794; 32767 |]

let index_table = [| -1; -1; -1; -1; 2; 4; 6; 8 |]

let num_steps = Array.length step_table
let max_step_index = num_steps - 1

(* The encoder body, shared by the compiler-scheduled and hand-scheduled
   variants.  [opt] reorders the statements so the last update of each
   carried register happens as early as the dataflow allows, shrinking the
   inter-iteration critical path (Section IV-G). *)
let body ~opt : Ast.block =
  let open Ast.Syntax in
  let common_head =
    [ Ast.Decl ("sample", "pcm".%[v "s"]);
      Ast.Decl ("step", "steps".%[v "index"]);
      Ast.Decl ("diff", v "sample" - v "valpred");
      Ast.Decl ("sign", i 0);
      Ast.If (v "diff" < i 0,
              [ Ast.Assign ("sign", i 8);
                Ast.Assign ("diff", i 0 - v "diff") ], []);
      (* delta = quantize(diff / step) in 3 bits, computing vpdiff on the
         way (reference IMA encoder structure). *)
      Ast.Decl ("delta", i 0);
      Ast.Decl ("vpdiff", v "step" lsr i 3);
      Ast.If (v "diff" >= v "step",
              [ Ast.Assign ("delta", i 4);
                Ast.Assign ("diff", v "diff" - v "step");
                Ast.Assign ("vpdiff", v "vpdiff" + v "step") ], []);
      Ast.Decl ("step2", v "step" lsr i 1);
      Ast.If (v "diff" >= v "step2",
              [ Ast.Assign ("delta", v "delta" lor i 2);
                Ast.Assign ("diff", v "diff" - v "step2");
                Ast.Assign ("vpdiff", v "vpdiff" + v "step2") ], []);
      Ast.If (v "diff" >= (v "step2" lsr i 1),
              [ Ast.Assign ("delta", v "delta" lor i 1);
                Ast.Assign ("vpdiff", v "vpdiff" + (v "step2" lsr i 1)) ],
              []) ]
  in
  let update_index =
    [ Ast.Assign ("index", v "index" + "itab".%[v "delta"]);
      Ast.If (v "index" < i 0, [ Ast.Assign ("index", i 0) ], []);
      Ast.If (v "index" >= i num_steps,
              [ Ast.Assign ("index", i max_step_index) ], []) ]
  in
  let update_valpred =
    [ Ast.If (v "sign" > i 0,
              [ Ast.Assign ("valpred", v "valpred" - v "vpdiff") ],
              [ Ast.Assign ("valpred", v "valpred" + v "vpdiff") ]);
      Ast.If (v "valpred" > i 32767,
              [ Ast.Assign ("valpred", i 32767) ], []);
      Ast.If (v "valpred" < i (-32768),
              [ Ast.Assign ("valpred", i (-32768)) ], []) ]
  in
  (* Hand-scheduled updates: the clamps become unconditional min/max so
     the last write of each carried register always executes (the
     hardware forwards CIR values at the last-write instruction; a write
     skipped by a branch only forwards at the end of the iteration). *)
  let update_index_opt =
    [ Ast.Assign ("index",
                  min_ (max_ (v "index" + "itab".%[v "delta"]) (i 0))
                    (i max_step_index)) ]
  in
  let update_valpred_opt =
    [ Ast.Decl ("vd", v "vpdiff");
      Ast.If (v "sign" > i 0, [ Ast.Assign ("vd", i 0 - v "vpdiff") ], []);
      Ast.Assign ("valpred",
                  min_ (max_ (v "valpred" + v "vd") (i (-32768))) (i 32767))
    ]
  in
  let emit = [ Ast.Store ("out", v "s", v "delta" lor v "sign") ] in
  if opt then
    (* Hand-scheduled: carried-register updates first, output store
       last. *)
    common_head @ update_index_opt @ update_valpred_opt @ emit
  else
    common_head @ emit @ update_valpred @ update_index

let make ~opt : Ast.kernel =
  let open Ast.Syntax in
  { k_name = (if opt then "adpcm-or-opt" else "adpcm-or");
    arrays = [ Kernel.arr "pcm" I32 n; Kernel.arr "out" U8 n;
               Kernel.arr "steps" I32 num_steps;
               Kernel.arr "itab" I32 8 ];
    consts = [ ("n", n) ];
    k_body =
      [ Ast.Decl ("valpred", i 0);
        Ast.Decl ("index", i 0);
        for_ ~pragma:Ordered "s" (i 0) (v "n") (body ~opt) ] }

let samples =
  (* A wandering waveform: sums of scaled sines quantized to ints. *)
  Array.init n (fun t ->
      let ft = float_of_int t in
      int_of_float
        ((8000.0 *. sin (ft /. 9.0)) +. (3000.0 *. sin (ft /. 2.3))))

let reference () =
  let out = Array.make n 0 in
  let valpred = ref 0 and index = ref 0 in
  for s = 0 to n - 1 do
    let sample = samples.(s) in
    let step = step_table.(!index) in
    let diff0 = sample - !valpred in
    let sign = if diff0 < 0 then 8 else 0 in
    let diff = ref (abs diff0) in
    let delta = ref 0 in
    let vpdiff = ref (step lsr 3) in
    if !diff >= step then begin
      delta := 4; diff := !diff - step; vpdiff := !vpdiff + step
    end;
    let step2 = step lsr 1 in
    if !diff >= step2 then begin
      delta := !delta lor 2; diff := !diff - step2;
      vpdiff := !vpdiff + step2
    end;
    if !diff >= step2 lsr 1 then begin
      delta := !delta lor 1; vpdiff := !vpdiff + (step2 lsr 1)
    end;
    out.(s) <- !delta lor sign;
    valpred := if sign > 0 then !valpred - !vpdiff else !valpred + !vpdiff;
    if !valpred > 32767 then valpred := 32767;
    if !valpred < -32768 then valpred := -32768;
    index := !index + index_table.(!delta);
    if !index < 0 then index := 0;
    if !index >= num_steps then index := num_steps - 1
  done;
  out

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "pcm") samples;
  Memory.blit_int_array mem ~addr:(base "steps") step_table;
  Memory.blit_int_array mem ~addr:(base "itab") index_table

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"out" ~expected:(reference ())
    (Memory.read_bytes mem ~addr:(base "out") ~n)

let descriptor : Kernel.t =
  { name = "adpcm-or"; suite = "M"; dominant = "or";
    kernel = make ~opt:false; init; check }

let descriptor_opt : Kernel.t =
  { name = "adpcm-or-opt"; suite = "M"; dominant = "or";
    kernel = make ~opt:true; init; check }
