(** sgemm-uc (custom): single-precision matrix multiply for square
    matrices using the standard triple-nested loops.  The middle (column)
    loop is unordered; the innermost reduction stays serial inside each
    iteration.  Exercises FP arithmetic on the shared LLFU and multi-level
    strength reduction. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 14

let nn = n * n

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "sgemm-uc";
    arrays = [ Kernel.arr "ma" F32 nn; Kernel.arr "mb" F32 nn;
               Kernel.arr "mc" F32 nn ];
    consts = [ ("n", n) ];
    k_body =
      [ for_ "row" (i 0) (v "n")
          [ for_ ~pragma:Unordered "col" (i 0) (v "n")
              [ Ast.Decl ("acc", Ast.Flt 0.0);
                for_ "k" (i 0) (v "n")
                  [ Ast.Assign
                      ("acc",
                       v "acc"
                       + ("ma".%[(v "row" * v "n") + v "k"]
                          * "mb".%[(v "k" * v "n") + v "col"])) ];
                Ast.Store ("mc", (v "row" * v "n") + v "col", v "acc") ] ] ] }

let a_in = Dataset.floats ~seed:31 ~n:(n * n) ~scale:2.0
let b_in = Dataset.floats ~seed:57 ~n:(n * n) ~scale:2.0

(* The reference mimics float32 rounding by re-rounding after each
   operation, matching the simulator's FP32 semantics exactly. *)
let f32 x = Int32.float_of_bits (Int32.bits_of_float x)

let reference () =
  let c = Array.make (n * n) 0.0 in
  for r = 0 to n - 1 do
    for cc = 0 to n - 1 do
      let acc = ref (f32 0.0) in
      for k = 0 to n - 1 do
        let prod = f32 (f32 a_in.((r * n) + k) *. f32 b_in.((k * n) + cc)) in
        acc := f32 (!acc +. prod)
      done;
      c.((r * n) + cc) <- !acc
    done
  done;
  c

let init (base : Kernel.bases) mem =
  Memory.blit_f32_array mem ~addr:(base "ma") a_in;
  Memory.blit_f32_array mem ~addr:(base "mb") b_in

let check (base : Kernel.bases) mem =
  Kernel.check_f32_array ~what:"C" ~expected:(reference ()) ~eps:1e-6
    (Memory.read_f32_array mem ~addr:(base "mc") ~n:(n * n))

let descriptor : Kernel.t =
  { name = "sgemm-uc"; suite = "C"; dominant = "uc"; kernel; init; check }
