(** kmeans-{or,uc} (custom): k-means clustering, 2-D integer points.

    Each refinement step has an unordered assignment loop (nearest
    centroid per point) and a centroid-update accumulation:
    - kmeans-or accumulates per cluster with an ordered loop over points
      whose running sums/count are register-carried (the paper's dominant
      [or] loop with a one-instruction critical path);
    - kmeans-uc is the privatize-and-reduce transformation of Table IV:
      one unordered pass accumulating straight into per-cluster arrays
      with atomic memory operations. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let npts = 80
let clusters = 4
let steps = 3

let assignment_loop : Ast.block =
  let open Ast.Syntax in
  [ for_ ~pragma:Unordered "p" (i 0) (v "npts")
      [ Ast.Decl ("x", "px".%[v "p"]);
        Ast.Decl ("y", "py".%[v "p"]);
        Ast.Decl ("bestd", i 0x7FFFFFFF);
        Ast.Decl ("bestc", i 0);
        for_ "c" (i 0) (v "k")
          [ Ast.Decl ("dx", v "x" - "cx".%[v "c"]);
            Ast.Decl ("dy", v "y" - "cy".%[v "c"]);
            Ast.Decl ("d", (v "dx" * v "dx") + (v "dy" * v "dy"));
            Ast.If (v "d" < v "bestd",
                    [ Ast.Assign ("bestd", v "d");
                      Ast.Assign ("bestc", v "c") ], []) ];
        Ast.Store ("assign", v "p", v "bestc") ] ]

let recenter : Ast.block =
  let open Ast.Syntax in
  [ for_ "c2" (i 0) (v "k")
      [ Ast.If ("cnt".%[v "c2"] > i 0,
                [ Ast.Store ("cx", v "c2", "sx".%[v "c2"] / "cnt".%[v "c2"]);
                  Ast.Store ("cy", v "c2", "sy".%[v "c2"] / "cnt".%[v "c2"]) ],
                []) ] ]

(* Ordered per-cluster accumulation: sums and count are CIRs. *)
let update_or : Ast.block =
  let open Ast.Syntax in
  [ for_ "c" (i 0) (v "k")
      [ Ast.Decl ("sumx", i 0);
        Ast.Decl ("sumy", i 0);
        Ast.Decl ("num", i 0);
        for_ ~pragma:Ordered "p" (i 0) (v "npts")
          [ Ast.If ("assign".%[v "p"] = v "c",
                    [ Ast.Assign ("sumx", v "sumx" + "px".%[v "p"]);
                      Ast.Assign ("sumy", v "sumy" + "py".%[v "p"]);
                      Ast.Assign ("num", v "num" + i 1) ], []) ];
        Ast.Store ("sx", v "c", v "sumx");
        Ast.Store ("sy", v "c", v "sumy");
        Ast.Store ("cnt", v "c", v "num") ] ]
  @ recenter

(* Unordered accumulation with AMOs (privatize-and-reduce). *)
let update_uc : Ast.block =
  let open Ast.Syntax in
  [ for_ "c" (i 0) (v "k")
      [ Ast.Store ("sx", v "c", i 0);
        Ast.Store ("sy", v "c", i 0);
        Ast.Store ("cnt", v "c", i 0) ];
    for_ ~pragma:Unordered "p" (i 0) (v "npts")
      [ Ast.Decl ("c3", "assign".%[v "p"]);
        Ast.Decl ("_a", Ast.Amo (Aadd, "sx", v "c3", "px".%[v "p"]));
        Ast.Decl ("_b", Ast.Amo (Aadd, "sy", v "c3", "py".%[v "p"]));
        Ast.Decl ("_c", Ast.Amo (Aadd, "cnt", v "c3", i 1)) ] ]
  @ recenter

let make variant : Ast.kernel =
  let update = if String.equal variant "uc" then update_uc else update_or in
  let open Ast.Syntax in
  { k_name = "kmeans-" ^ variant;
    arrays = [ Kernel.arr "px" I32 npts; Kernel.arr "py" I32 npts;
               Kernel.arr "cx" I32 clusters; Kernel.arr "cy" I32 clusters;
               Kernel.arr "sx" I32 clusters; Kernel.arr "sy" I32 clusters;
               Kernel.arr "cnt" I32 clusters;
               Kernel.arr "assign" I32 npts ];
    consts = [ ("npts", npts); ("k", clusters); ("steps", steps) ];
    k_body = [ for_ "it" (i 0) (v "steps") (assignment_loop @ update) ] }

let xs = Dataset.ints ~seed:401 ~n:npts ~bound:1000
let ys = Dataset.ints ~seed:409 ~n:npts ~bound:1000

let reference () =
  let cx = Array.init clusters (fun c -> xs.(c)) in
  let cy = Array.init clusters (fun c -> ys.(c)) in
  let assign = Array.make npts 0 in
  for _ = 1 to steps do
    for p = 0 to npts - 1 do
      let bestd = ref max_int and bestc = ref 0 in
      for c = 0 to clusters - 1 do
        let dx = xs.(p) - cx.(c) and dy = ys.(p) - cy.(c) in
        let d = (dx * dx) + (dy * dy) in
        if d < !bestd then begin bestd := d; bestc := c end
      done;
      assign.(p) <- !bestc
    done;
    for c = 0 to clusters - 1 do
      let sx = ref 0 and sy = ref 0 and num = ref 0 in
      for p = 0 to npts - 1 do
        if assign.(p) = c then begin
          sx := !sx + xs.(p); sy := !sy + ys.(p); incr num
        end
      done;
      if !num > 0 then begin
        cx.(c) <- !sx / !num;
        cy.(c) <- !sy / !num
      end
    done
  done;
  (cx, cy, assign)

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "px") xs;
  Memory.blit_int_array mem ~addr:(base "py") ys;
  (* Initial centroids: the first k points. *)
  for c = 0 to clusters - 1 do
    Memory.set_int mem (base "cx" + 4 * c) xs.(c);
    Memory.set_int mem (base "cy" + 4 * c) ys.(c)
  done

let check (base : Kernel.bases) mem =
  let cx, cy, assign = reference () in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"cx" ~expected:cx
        (Memory.read_int_array mem ~addr:(base "cx") ~n:clusters);
      Kernel.check_int_array ~what:"cy" ~expected:cy
        (Memory.read_int_array mem ~addr:(base "cy") ~n:clusters);
      Kernel.check_int_array ~what:"assign" ~expected:assign
        (Memory.read_int_array mem ~addr:(base "assign") ~n:npts) ]

let descriptor : Kernel.t =
  { name = "kmeans-or"; suite = "C"; dominant = "or";
    kernel = make "or"; init; check }

let descriptor_uc : Kernel.t =
  { name = "kmeans-uc"; suite = "C"; dominant = "uc";
    kernel = make "uc"; init; check }
