(** qsort-{uc-db,uc} (custom): quicksort driven by a worklist of
    partitions.

    - qsort-uc-db: one dynamically-bounded unordered loop; each iteration
      pops a partition, partitions it in place (Lomuto), and pushes the
      two sub-partitions through an AMO-reserved worklist slot, raising
      the loop bound ([xloop.uc.db]).  Partitions are disjoint, so
      iterations never conflict on the data array.
    - qsort-uc (Table IV): the split-worklist transform — a serial outer
      round loop over fixed-bound unordered inner loops. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 96
let max_parts = 2 * n + 8

let process_partition : Ast.block =
  let open Ast.Syntax in
  [ (* Producers write wlo then whi; consumers spin on whi (sentinel -1)
       so both fields are filled before use.  Serial execution never
       spins. *)
    Ast.Decl ("phi", "whi".%[v "t"]);
    Ast.While (v "phi" < i 0, [ Ast.Assign ("phi", "whi".%[v "t"]) ]);
    Ast.Decl ("plo", "wlo".%[v "t"]);
    Ast.If
      (v "phi" - v "plo" >= i 2,
       [ (* Lomuto partition with pivot = data[phi-1] *)
         Ast.Decl ("pivot", "data".%[v "phi" - i 1]);
         Ast.Decl ("mid", v "plo");
         for_ "j" (v "plo") (v "phi" - i 1)
           [ Ast.Decl ("dj", "data".%[v "j"]);
             Ast.If (v "dj" < v "pivot",
                     [ Ast.Store ("data", v "j", "data".%[v "mid"]);
                       Ast.Store ("data", v "mid", v "dj");
                       Ast.Assign ("mid", v "mid" + i 1) ], []) ];
         Ast.Store ("data", v "phi" - i 1, "data".%[v "mid"]);
         Ast.Store ("data", v "mid", v "pivot");
         (* push [plo, mid) and [mid+1, phi) *)
         Ast.Decl ("slot1", Ast.Amo (Aadd, "tail", i 0, i 1));
         Ast.Store ("wlo", v "slot1", v "plo");
         Ast.Store ("whi", v "slot1", v "mid");
         Ast.Decl ("slot2", Ast.Amo (Aadd, "tail", i 0, i 1));
         Ast.Store ("wlo", v "slot2", v "mid" + i 1);
         Ast.Store ("whi", v "slot2", v "phi") ],
       []) ]

let arrays =
  [ Kernel.arr "data" I32 n;
    Kernel.arr "wlo" I32 max_parts; Kernel.arr "whi" I32 max_parts;
    Kernel.arr "tail" I32 1 ]

let kernel_db : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "qsort-uc-db";
    arrays;
    consts = [];
    k_body =
      [ for_ ~pragma:Unordered "t" (i 0) ("tail".%[i 0])
          process_partition ] }

let kernel_level : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "qsort-uc";
    arrays;
    consts = [];
    k_body =
      [ Ast.Decl ("lo", i 0);
        Ast.Decl ("hi", "tail".%[i 0]);
        Ast.While
          (v "lo" < v "hi",
           [ for_ ~pragma:Unordered "t" (v "lo") (v "hi") process_partition;
             Ast.Assign ("lo", v "hi");
             Ast.Assign ("hi", "tail".%[i 0]) ]) ] }

let values = Dataset.ints ~seed:1709 ~n ~bound:5000

let reference_sorted () =
  let s = Array.copy values in
  Array.sort compare s;
  s

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "data") values;
  for s = 0 to max_parts - 1 do
    Memory.set_int mem (base "whi" + 4 * s) (-1)
  done;
  Memory.set_int mem (base "wlo") 0;
  Memory.set_int mem (base "whi") n;
  Memory.set_int mem (base "tail") 1

let check (base : Kernel.bases) mem =
  let out = Memory.read_int_array mem ~addr:(base "data") ~n in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"data" ~expected:(reference_sorted ()) out;
      Kernel.check_permutation ~what:"data" ~of_:values out ]

let descriptor : Kernel.t =
  { name = "qsort-uc-db"; suite = "C"; dominant = "uc.db";
    kernel = kernel_db; init; check }

let descriptor_uc : Kernel.t =
  { name = "qsort-uc"; suite = "C"; dominant = "uc";
    kernel = kernel_level; init; check }
