(** stencil-orm (PBBS-style): in-place Gauss–Seidel 5-point relaxation
    sweep with a global residual accumulator.  The row loop both reads the
    previous row's freshly-written values (memory dependence) and carries
    the residual sum in a register, so it maps to [xloop.orm]; the inner
    column loop is a plain serial loop. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 18
let sweeps = 2

let nn = n * n

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "stencil-orm";
    arrays = [ Kernel.arr "grid" I32 nn; Kernel.arr "residual" I32 sweeps ];
    consts = [ ("n", n); ("sweeps", sweeps) ];
    k_body =
      [ for_ "s" (i 0) (v "sweeps")
          [ Ast.Decl ("res", i 0);
            for_ ~pragma:Ordered "r" (i 1) (v "n" - i 1)
              [ for_ "c" (i 1) (v "n" - i 1)
                  [ Ast.Decl ("idx", (v "r" * v "n") + v "c");
                    Ast.Decl ("old", "grid".%[v "idx"]);
                    Ast.Decl
                      ("upd",
                       (v "old"
                        + "grid".%[v "idx" - v "n"]
                        + "grid".%[v "idx" + v "n"]
                        + "grid".%[v "idx" - i 1]
                        + "grid".%[v "idx" + i 1])
                       / i 5);
                    Ast.Store ("grid", v "idx", v "upd");
                    Ast.Decl ("dv", v "upd" - v "old");
                    Ast.If (v "dv" < i 0,
                            [ Ast.Assign ("dv", i 0 - v "dv") ], []);
                    Ast.Assign ("res", v "res" + v "dv") ] ];
            Ast.Store ("residual", v "s", v "res") ] ] }

let input = Dataset.ints ~seed:1103 ~n:nn ~bound:1000

let reference () =
  let g = Array.copy input in
  let residual = Array.make sweeps 0 in
  for s = 0 to sweeps - 1 do
    let res = ref 0 in
    for r = 1 to n - 2 do
      for c = 1 to n - 2 do
        let idx = (r * n) + c in
        let old = g.(idx) in
        let upd =
          (old + g.(idx - n) + g.(idx + n) + g.(idx - 1) + g.(idx + 1)) / 5
        in
        g.(idx) <- upd;
        res := !res + abs (upd - old)
      done
    done;
    residual.(s) <- !res
  done;
  (g, residual)

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "grid") input

let check (base : Kernel.bases) mem =
  let g, residual = reference () in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"grid" ~expected:g
        (Memory.read_int_array mem ~addr:(base "grid") ~n:nn);
      Kernel.check_int_array ~what:"residual" ~expected:residual
        (Memory.read_int_array mem ~addr:(base "residual") ~n:sweeps) ]

let descriptor : Kernel.t =
  { name = "stencil-orm"; suite = "P"; dominant = "orm"; kernel; init;
    check }
