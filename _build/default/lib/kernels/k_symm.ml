(** symm-{uc,or} (PolyBench): symmetric rank-update style kernel,
    C = alpha*A*B + beta*C with A symmetric (only the lower triangle of A
    is referenced).

    Two parallelizations, as in Table II:
    - symm-uc annotates the column loop ([j]): iterations touch disjoint
      columns, so the loop is unordered;
    - symm-or annotates the inner [k] loop: the [acc] reduction is a
      register-carried dependence, and the per-k column updates are
      independent, so the compiler classifies it ordered-through-registers.
*)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 12

let alpha = 3 and beta = 2

(* Integer variant of polybench symm (integers keep the self-check
   exact while preserving the loop structure). *)
let body annotate_j : Ast.block =
  let open Ast.Syntax in
  let j_pragma = if annotate_j then Some Ast.Unordered else None in
  let k_pragma = if annotate_j then None else Some Ast.Ordered in
  [ for_ "ii" (i 0) (v "n")
      [ for_ ?pragma:j_pragma "j" (i 0) (v "n")
          [ Ast.Decl ("acc", i 0);
            for_ ?pragma:k_pragma "k" (i 0) (v "ii")
              [ Ast.Store ("mc", (v "k" * v "n") + v "j",
                           "mc".%[(v "k" * v "n") + v "j"]
                           + (v "alpha" * "mb".%[(v "ii" * v "n") + v "j"]
                              * "ma".%[(v "ii" * v "n") + v "k"]));
                Ast.Assign ("acc",
                            v "acc"
                            + ("mb".%[(v "k" * v "n") + v "j"]
                               * "ma".%[(v "ii" * v "n") + v "k"])) ];
            Ast.Store ("mc", (v "ii" * v "n") + v "j",
                       (v "beta" * "mc".%[(v "ii" * v "n") + v "j"])
                       + (v "alpha" * "mb".%[(v "ii" * v "n") + v "j"]
                          * "ma".%[(v "ii" * v "n") + v "ii"])
                       + (v "alpha" * v "acc")) ] ] ]

let nn = n * n

let make variant : Ast.kernel =
  { k_name = "symm-" ^ variant;
    arrays = [ Kernel.arr "ma" I32 nn; Kernel.arr "mb" I32 nn;
               Kernel.arr "mc" I32 nn ];
    consts = [ ("n", n); ("alpha", alpha); ("beta", beta) ];
    k_body = body (variant = "uc") }

let a_in = Dataset.ints ~seed:11 ~n:(n * n) ~bound:7
let b_in = Dataset.ints ~seed:23 ~n:(n * n) ~bound:7
let c_in = Dataset.ints ~seed:37 ~n:(n * n) ~bound:7

let reference () =
  let c = Array.copy c_in in
  for ii = 0 to n - 1 do
    for j = 0 to n - 1 do
      let acc = ref 0 in
      for k = 0 to ii - 1 do
        c.((k * n) + j) <-
          c.((k * n) + j) + (alpha * b_in.((ii * n) + j) * a_in.((ii * n) + k));
        acc := !acc + (b_in.((k * n) + j) * a_in.((ii * n) + k))
      done;
      c.((ii * n) + j) <-
        (beta * c.((ii * n) + j))
        + (alpha * b_in.((ii * n) + j) * a_in.((ii * n) + ii))
        + (alpha * !acc)
    done
  done;
  c

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "ma") a_in;
  Memory.blit_int_array mem ~addr:(base "mb") b_in;
  Memory.blit_int_array mem ~addr:(base "mc") c_in

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"C" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "mc") ~n:(n * n))

let descriptor_uc : Kernel.t =
  { name = "symm-uc"; suite = "Po"; dominant = "uc";
    kernel = make "uc"; init; check }

let descriptor_or : Kernel.t =
  { name = "symm-or"; suite = "Po"; dominant = "or";
    kernel = make "or"; init; check }
