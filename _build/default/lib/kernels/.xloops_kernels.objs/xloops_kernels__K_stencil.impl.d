lib/kernels/k_stencil.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
