lib/kernels/k_bfs.ml: Array Ast Dataset Kernel Printf Queue Xloops_compiler Xloops_mem
