lib/kernels/k_kmeans.ml: Array Ast Dataset Kernel String Xloops_compiler Xloops_mem
