lib/kernels/k_knn.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
