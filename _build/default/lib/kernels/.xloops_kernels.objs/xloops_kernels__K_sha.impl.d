lib/kernels/k_sha.ml: Array Ast Dataset Int32 Kernel Stdlib Xloops_compiler Xloops_mem
