lib/kernels/k_adpcm.ml: Array Ast Kernel Xloops_compiler Xloops_mem
