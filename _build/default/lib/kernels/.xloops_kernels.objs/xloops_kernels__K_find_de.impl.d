lib/kernels/k_find_de.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
