lib/kernels/k_ksack.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
