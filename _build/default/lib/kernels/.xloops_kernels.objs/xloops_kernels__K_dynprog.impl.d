lib/kernels/k_dynprog.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
