lib/kernels/k_rsort.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
