lib/kernels/k_ssearch.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
