lib/kernels/k_hsort.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
