lib/kernels/k_sgemm.ml: Array Ast Dataset Int32 Kernel Xloops_compiler Xloops_mem
