lib/kernels/k_dither.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
