lib/kernels/k_qsort.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
