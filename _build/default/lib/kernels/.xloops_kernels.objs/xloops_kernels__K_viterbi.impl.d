lib/kernels/k_viterbi.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
