lib/kernels/kernel.ml: Array Float List Printf Xloops_compiler Xloops_mem Xloops_sim
