lib/kernels/k_btree.ml: Array Ast Dataset Kernel List Printf Xloops_compiler Xloops_mem
