lib/kernels/kernel.mli: Xloops_compiler Xloops_mem Xloops_sim
