lib/kernels/k_symm.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
