lib/kernels/k_rgb2cmyk.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
