lib/kernels/k_mm.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
