lib/kernels/dataset.mli:
