lib/kernels/k_war.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
