lib/kernels/k_huffman.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
