lib/kernels/k_covar.ml: Array Ast Dataset Kernel Xloops_compiler Xloops_mem
