lib/kernels/dataset.ml: Array List
