(** mm-orm (PBBS): greedy maximal matching on an undirected graph —
    Figure 3 of the paper, verbatim loop structure.  The edge loop carries
    the output counter [k] in a register and the vertex-match state in
    memory, so dependence analysis maps it to [xloop.orm]. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let nverts = 192
let nedges = 640

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "mm-orm";
    arrays = [ Kernel.arr "eu" I32 nedges; Kernel.arr "ev" I32 nedges;
               Kernel.arr "vertices" I32 nverts;
               Kernel.arr "out" I32 nedges;
               Kernel.arr "nmatched" I32 1 ];
    consts = [ ("ne", nedges) ];
    k_body =
      [ Ast.Decl ("k", i 0);
        for_ ~pragma:Ordered "e" (i 0) (v "ne")
          [ Ast.Decl ("u", "eu".%[v "e"]);
            Ast.Decl ("w", "ev".%[v "e"]);
            Ast.If
              (("vertices".%[v "w"] < i 0) land ("vertices".%[v "u"] < i 0),
               [ Ast.Store ("vertices", v "w", v "u");
                 Ast.Store ("vertices", v "u", v "w");
                 Ast.Store ("out", v "k", v "e");
                 Ast.Assign ("k", v "k" + i 1) ],
               []) ];
        Ast.Store ("nmatched", i 0, v "k") ] }

let edges =
  let r = Dataset.rng 1009 in
  Array.init nedges (fun _ ->
      let u = Dataset.int r nverts in
      let w = Dataset.int r nverts in
      if u = w then (u, (w + 1) mod nverts) else (u, w))

let reference () =
  let vertices = Array.make nverts (-1) in
  let out = Array.make nedges 0 in
  let k = ref 0 in
  Array.iteri
    (fun e (u, w) ->
       if vertices.(w) < 0 && vertices.(u) < 0 then begin
         vertices.(w) <- u;
         vertices.(u) <- w;
         out.(!k) <- e;
         incr k
       end)
    edges;
  (vertices, out, !k)

let init (base : Kernel.bases) mem =
  Array.iteri
    (fun e (u, w) ->
       Memory.set_int mem (base "eu" + 4 * e) u;
       Memory.set_int mem (base "ev" + 4 * e) w)
    edges;
  for v = 0 to nverts - 1 do
    Memory.set_int mem (base "vertices" + 4 * v) (-1)
  done

let check (base : Kernel.bases) mem =
  let vertices, out, k = reference () in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"vertices" ~expected:vertices
        (Memory.read_int_array mem ~addr:(base "vertices") ~n:nverts);
      Kernel.check_int_array ~what:"out" ~expected:(Array.sub out 0 k)
        (Memory.read_int_array mem ~addr:(base "out") ~n:k);
      Kernel.check_int_array ~what:"nmatched" ~expected:[| k |]
        (Memory.read_int_array mem ~addr:(base "nmatched") ~n:1) ]

let descriptor : Kernel.t =
  { name = "mm-orm"; suite = "P"; dominant = "orm"; kernel; init; check }
