(** rgb2cmyk-uc (custom): RGB -> CMYK color-space conversion on a test
    image.  One unordered loop over pixels; each iteration is independent
    byte arithmetic with a little control flow (the max computation). *)

open Xloops_compiler

let n = 1024  (* pixels *)

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "rgb2cmyk-uc";
    arrays = [ Kernel.arr "r" U8 n; Kernel.arr "g" U8 n; Kernel.arr "b" U8 n;
               Kernel.arr "oc" U8 n; Kernel.arr "om" U8 n;
               Kernel.arr "oy" U8 n; Kernel.arr "ok" U8 n ];
    consts = [ ("n", n) ];
    k_body =
      [ for_ ~pragma:Unordered "p" (i 0) (v "n")
          [ Ast.Decl ("cr", "r".%[v "p"]);
            Ast.Decl ("cg", "g".%[v "p"]);
            Ast.Decl ("cb", "b".%[v "p"]);
            Ast.Decl ("w", max_ (v "cr") (max_ (v "cg") (v "cb")));
            Ast.Store ("ok", v "p", i 255 - v "w");
            Ast.If (v "w" > i 0,
                    [ Ast.Store ("oc", v "p",
                                 (v "w" - v "cr") * i 255 / v "w");
                      Ast.Store ("om", v "p",
                                 (v "w" - v "cg") * i 255 / v "w");
                      Ast.Store ("oy", v "p",
                                 (v "w" - v "cb") * i 255 / v "w") ],
                    [ Ast.Store ("oc", v "p", i 0);
                      Ast.Store ("om", v "p", i 0);
                      Ast.Store ("oy", v "p", i 0) ]) ] ] }

let input ch = Dataset.bytes ~seed:(17 + ch) ~n

let reference () =
  let r = input 0 and g = input 1 and b = input 2 in
  let oc = Array.make n 0 and om = Array.make n 0 in
  let oy = Array.make n 0 and ok = Array.make n 0 in
  for p = 0 to n - 1 do
    let w = max r.(p) (max g.(p) b.(p)) in
    ok.(p) <- 255 - w;
    if w > 0 then begin
      oc.(p) <- (w - r.(p)) * 255 / w;
      om.(p) <- (w - g.(p)) * 255 / w;
      oy.(p) <- (w - b.(p)) * 255 / w
    end
  done;
  (oc, om, oy, ok)

let init (base : Kernel.bases) mem =
  Xloops_mem.Memory.blit_bytes mem ~addr:(base "r") (input 0);
  Xloops_mem.Memory.blit_bytes mem ~addr:(base "g") (input 1);
  Xloops_mem.Memory.blit_bytes mem ~addr:(base "b") (input 2)

let check (base : Kernel.bases) mem =
  let oc, om, oy, ok = reference () in
  let read name = Xloops_mem.Memory.read_bytes mem ~addr:(base name) ~n in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"c" ~expected:oc (read "oc");
      Kernel.check_int_array ~what:"m" ~expected:om (read "om");
      Kernel.check_int_array ~what:"y" ~expected:oy (read "oy");
      Kernel.check_int_array ~what:"k" ~expected:ok (read "ok") ]

let descriptor : Kernel.t =
  { name = "rgb2cmyk-uc"; suite = "C"; dominant = "uc";
    kernel; init; check }
