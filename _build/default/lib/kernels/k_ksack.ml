(** ksack-{sm,lg}-om (custom): unbounded knapsack dynamic program.  The
    capacity loop is ordered-through-memory: iteration [c] reads
    [best[c - w]] for each item weight [w] — a data-dependent dependence
    distance.  The two variants demonstrate the paper's point about
    data-dependent speculation behaviour: small weights ([sm]) make nearby
    iterations conflict and squash constantly, large weights ([lg]) rarely
    conflict.  Static compiler analysis cannot tell these apart. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let capacity = 96
let items = 4
let best_len = capacity + 1

let kernel variant : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "ksack-" ^ variant ^ "-om";
    arrays = [ Kernel.arr "wt" I32 items; Kernel.arr "value" I32 items;
               Kernel.arr "best" I32 best_len ];
    consts = [ ("cap", capacity); ("items", items) ];
    k_body =
      [ for_ ~pragma:Ordered "c" (i 1) (v "cap" + i 1)
          [ Ast.Decl ("m", i 0);
            for_ "it" (i 0) (v "items")
              [ Ast.Decl ("w", "wt".%[v "it"]);
                Ast.If (v "w" <= v "c",
                        [ Ast.Decl ("cand",
                                    "best".%[v "c" - v "w"]
                                    + "value".%[v "it"]);
                          Ast.If (v "cand" > v "m",
                                  [ Ast.Assign ("m", v "cand") ], []) ],
                        []) ];
            Ast.Store ("best", v "c", v "m") ] ] }

let weights variant =
  let r = Dataset.rng (if variant = "sm" then 811 else 823) in
  Array.init items (fun _ ->
      if variant = "sm" then Dataset.range r 1 6
      else Dataset.range r 11 25)

let values variant =
  let r = Dataset.rng 907 in
  let w = weights variant in
  Array.init items (fun k -> (w.(k) * 3) + Dataset.range r 1 10)

let reference variant =
  let w = weights variant and value = values variant in
  let best = Array.make (capacity + 1) 0 in
  for c = 1 to capacity do
    let m = ref 0 in
    for it = 0 to items - 1 do
      if w.(it) <= c then begin
        let cand = best.(c - w.(it)) + value.(it) in
        if cand > !m then m := cand
      end
    done;
    best.(c) <- !m
  done;
  best

let init variant (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "wt") (weights variant);
  Memory.blit_int_array mem ~addr:(base "value") (values variant)

let check variant (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"best" ~expected:(reference variant)
    (Memory.read_int_array mem ~addr:(base "best") ~n:(capacity + 1))

let descriptor_sm : Kernel.t =
  { name = "ksack-sm-om"; suite = "C"; dominant = "om";
    kernel = kernel "sm"; init = init "sm"; check = check "sm" }

let descriptor_lg : Kernel.t =
  { name = "ksack-lg-om"; suite = "C"; dominant = "om";
    kernel = kernel "lg"; init = init "lg"; check = check "lg" }
