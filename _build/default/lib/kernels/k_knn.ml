(** knn-om (PBBS): k-nearest neighbours.  For each query the candidate
    loop maintains a k-best distance list in memory by insertion; the
    read-modify-write of the shared list is a data-dependent memory
    dependence, so the annotated loop maps to [xloop.om].  Conflicts only
    occur when a candidate actually enters the list, so speculation wins
    back some parallelism on the long no-insert stretches. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let nq = 10      (* queries *)
let npts = 120
let kbest = 4
let inf = 0x7FFFFFFF
let best_len = nq * kbest

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "knn-om";
    arrays = [ Kernel.arr "ptx" I32 npts; Kernel.arr "pty" I32 npts;
               Kernel.arr "qx" I32 nq; Kernel.arr "qy" I32 nq;
               Kernel.arr "best" I32 best_len ];
    consts = [ ("nq", nq); ("npts", npts); ("kb", kbest) ];
    k_body =
      [ for_ "q" (i 0) (v "nq")
          [ Ast.Decl ("qpx", "qx".%[v "q"]);
            Ast.Decl ("qpy", "qy".%[v "q"]);
            Ast.Decl ("bb", v "q" * v "kb");
            for_ ~pragma:Ordered "p" (i 0) (v "npts")
              [ Ast.Decl ("dx", "ptx".%[v "p"] - v "qpx");
                Ast.Decl ("dy", "pty".%[v "p"] - v "qpy");
                Ast.Decl ("d", (v "dx" * v "dx") + (v "dy" * v "dy"));
                Ast.If
                  (v "d" < "best".%[v "bb" + v "kb" - i 1],
                   [ (* insertion: shift larger entries right *)
                     Ast.Decl ("slot", v "kb" - i 1);
                     Ast.While
                       ((v "slot" > i 0)
                        land ("best".%[v "bb" + v "slot" - i 1] > v "d"),
                        [ Ast.Store ("best", v "bb" + v "slot",
                                     "best".%[v "bb" + v "slot" - i 1]);
                          Ast.Assign ("slot", v "slot" - i 1) ]);
                     Ast.Store ("best", v "bb" + v "slot", v "d") ],
                   []) ] ] ] }

let ptx = Dataset.ints ~seed:701 ~n:npts ~bound:1000
let pty = Dataset.ints ~seed:709 ~n:npts ~bound:1000
let qx = Dataset.ints ~seed:717 ~n:nq ~bound:1000
let qy = Dataset.ints ~seed:723 ~n:nq ~bound:1000

let reference () =
  let best = Array.make (nq * kbest) inf in
  for q = 0 to nq - 1 do
    for p = 0 to npts - 1 do
      let dx = ptx.(p) - qx.(q) and dy = pty.(p) - qy.(q) in
      let d = (dx * dx) + (dy * dy) in
      let bb = q * kbest in
      if d < best.(bb + kbest - 1) then begin
        let slot = ref (kbest - 1) in
        while !slot > 0 && best.(bb + !slot - 1) > d do
          best.(bb + !slot) <- best.(bb + !slot - 1);
          decr slot
        done;
        best.(bb + !slot) <- d
      end
    done
  done;
  best

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "ptx") ptx;
  Memory.blit_int_array mem ~addr:(base "pty") pty;
  Memory.blit_int_array mem ~addr:(base "qx") qx;
  Memory.blit_int_array mem ~addr:(base "qy") qy;
  for j = 0 to (nq * kbest) - 1 do
    Memory.set_int mem (base "best" + 4 * j) inf
  done

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"best" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "best") ~n:(nq * kbest))

let descriptor : Kernel.t =
  { name = "knn-om"; suite = "P"; dominant = "om"; kernel; init; check }
