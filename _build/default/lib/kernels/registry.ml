(** The kernel registry: Table II's 25 application kernels and Table IV's
    hand-optimized / loop-transformed variants. *)

(** Table II kernels, in the paper's order. *)
let table2 : Kernel.t list = [
  K_rgb2cmyk.descriptor;
  K_sgemm.descriptor;
  K_ssearch.descriptor;
  K_symm.descriptor_uc;
  K_viterbi.descriptor;
  K_war.descriptor_uc;
  K_adpcm.descriptor;
  K_covar.descriptor;
  K_dither.descriptor;
  K_kmeans.descriptor;
  K_sha.descriptor;
  K_symm.descriptor_or;
  K_dynprog.descriptor;
  K_knn.descriptor;
  K_ksack.descriptor_sm;
  K_ksack.descriptor_lg;
  K_war.descriptor_om;
  K_mm.descriptor;
  K_stencil.descriptor;
  K_btree.descriptor;
  K_hsort.descriptor;
  K_huffman.descriptor;
  K_rsort.descriptor;
  K_bfs.descriptor;
  K_qsort.descriptor;
]

(** Table IV case-study variants: hand-scheduled [or] kernels and
    loop-transformed [uc] counterparts. *)
let table4 : Kernel.t list = [
  K_adpcm.descriptor_opt;
  K_dither.descriptor_opt;
  K_sha.descriptor_opt;
  K_bfs.descriptor_uc;
  K_dither.descriptor_uc;
  K_kmeans.descriptor_uc;
  K_qsort.descriptor_uc;
  K_rsort.descriptor_uc;
]

(** Extension kernels beyond the paper's evaluation: the implemented
    future-work patterns. *)
let extensions : Kernel.t list = [
  K_find_de.descriptor;
]

let all : Kernel.t list = table2 @ table4 @ extensions

let find name =
  match List.find_opt (fun (k : Kernel.t) -> k.name = name) all with
  | Some k -> k
  | None -> invalid_arg ("Registry.find: unknown kernel " ^ name)

let names = List.map (fun (k : Kernel.t) -> k.name) all
