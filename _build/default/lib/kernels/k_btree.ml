(** btree-ua (custom): binary-search-tree construction from a stream of
    integers.  The insert loop is annotated [atomic]: iterations may run
    in any order as long as each insertion's memory updates (node
    allocation via AMO, child-pointer write, node initialization) appear
    atomic.  The traversal's long load chains stress the per-lane LSQs —
    the structural-hazard behaviour Table II reports for btree-ua. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let nkeys = 180
let max_nodes = nkeys + 1

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "btree-ua";
    arrays = [ Kernel.arr "keys" I32 nkeys;
               Kernel.arr "nkey" I32 max_nodes;
               Kernel.arr "nleft" I32 max_nodes;
               Kernel.arr "nright" I32 max_nodes;
               Kernel.arr "ncnt" I32 1 ];
    consts = [ ("nk", nkeys) ];
    k_body =
      [ (* The root (node 0) is created at init time; insert the rest. *)
        for_ ~pragma:Atomic "t" (i 1) (v "nk")
          [ Ast.Decl ("kv", "keys".%[v "t"]);
            Ast.Decl ("cur", i 0);
            Ast.Decl ("going", i 1);
            Ast.While
              (v "going" = i 1,
               [ Ast.Decl ("ck", "nkey".%[v "cur"]);
                 Ast.If
                   (v "kv" < v "ck",
                    [ Ast.Decl ("nxt", "nleft".%[v "cur"]);
                      Ast.If (v "nxt" < i 0,
                              [ Ast.Decl ("idx",
                                          Ast.Amo (Aadd, "ncnt", i 0, i 1));
                                Ast.Store ("nkey", v "idx", v "kv");
                                Ast.Store ("nleft", v "idx", i (-1));
                                Ast.Store ("nright", v "idx", i (-1));
                                Ast.Store ("nleft", v "cur", v "idx");
                                Ast.Assign ("going", i 0) ],
                              [ Ast.Assign ("cur", v "nxt") ]) ],
                    [ Ast.If
                        (v "kv" > v "ck",
                         [ Ast.Decl ("nxt2", "nright".%[v "cur"]);
                           Ast.If (v "nxt2" < i 0,
                                   [ Ast.Decl
                                       ("idx2",
                                        Ast.Amo (Aadd, "ncnt", i 0, i 1));
                                     Ast.Store ("nkey", v "idx2", v "kv");
                                     Ast.Store ("nleft", v "idx2", i (-1));
                                     Ast.Store ("nright", v "idx2", i (-1));
                                     Ast.Store ("nright", v "cur", v "idx2");
                                     Ast.Assign ("going", i 0) ],
                                   [ Ast.Assign ("cur", v "nxt2") ]) ],
                         [ (* duplicate key: drop *)
                           Ast.Assign ("going", i 0) ]) ]) ]) ] ] }

let keys = Dataset.ints ~seed:1217 ~n:nkeys ~bound:4000

(* Serial reference insertion: the LPSU's ua implementation commits
   iterations in order, so the resulting tree equals the serial one. *)
let reference () =
  let nkey = Array.make max_nodes 0 in
  let nleft = Array.make max_nodes (-1) in
  let nright = Array.make max_nodes (-1) in
  nkey.(0) <- keys.(0);
  let cnt = ref 1 in
  for t = 1 to nkeys - 1 do
    let kv = keys.(t) in
    let cur = ref 0 and going = ref true in
    while !going do
      let ck = nkey.(!cur) in
      if kv < ck then begin
        if nleft.(!cur) < 0 then begin
          let idx = !cnt in
          incr cnt;
          nkey.(idx) <- kv;
          nleft.(!cur) <- idx;
          going := false
        end else cur := nleft.(!cur)
      end
      else if kv > ck then begin
        if nright.(!cur) < 0 then begin
          let idx = !cnt in
          incr cnt;
          nkey.(idx) <- kv;
          nright.(!cur) <- idx;
          going := false
        end else cur := nright.(!cur)
      end
      else going := false
    done
  done;
  (nkey, nleft, nright, !cnt)

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "keys") keys;
  (* root *)
  Memory.set_int mem (base "nkey") keys.(0);
  Memory.set_int mem (base "nleft") (-1);
  Memory.set_int mem (base "nright") (-1);
  Memory.set_int mem (base "ncnt") 1

(* Structural check (valid BST containing exactly the distinct keys) plus
   exact equality with the serial reference. *)
let check (base : Kernel.bases) mem =
  let rkey, rleft, rright, rcnt = reference () in
  let cnt = Memory.get_int mem (base "ncnt") in
  if cnt <> rcnt then
    Error (Printf.sprintf "node count %d, expected %d" cnt rcnt)
  else begin
    let nkey = Memory.read_int_array mem ~addr:(base "nkey") ~n:cnt in
    let nleft = Memory.read_int_array mem ~addr:(base "nleft") ~n:cnt in
    let nright = Memory.read_int_array mem ~addr:(base "nright") ~n:cnt in
    (* In-order traversal must produce the sorted distinct keys. *)
    let collected = ref [] in
    let rec walk node =
      if node >= 0 then begin
        walk nleft.(node);
        collected := nkey.(node) :: !collected;
        walk nright.(node)
      end
    in
    walk 0;
    let inorder = Array.of_list (List.rev !collected) in
    let distinct = List.sort_uniq compare (Array.to_list keys) in
    Kernel.all_checks
      [ Kernel.check_int_array ~what:"inorder"
          ~expected:(Array.of_list distinct) inorder;
        Kernel.check_int_array ~what:"nkey"
          ~expected:(Array.sub rkey 0 cnt) nkey;
        Kernel.check_int_array ~what:"nleft"
          ~expected:(Array.sub rleft 0 cnt) nleft;
        Kernel.check_int_array ~what:"nright"
          ~expected:(Array.sub rright 0 cnt) nright ]
  end

let descriptor : Kernel.t =
  { name = "btree-ua"; suite = "C"; dominant = "ua"; kernel; init; check }
