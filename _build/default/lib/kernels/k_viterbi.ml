(** viterbi-uc (custom): Viterbi decoding of convolutionally encoded
    frames.  The unordered loop runs one frame per iteration; inside, the
    trellis is walked step by step with an add-compare-select over the
    states of a rate-1/2, K=3 code (4 states).  Each frame uses a private
    pair of path-metric banks, so the frame loop is fully independent.
    Branch metrics and predecessor indices are precomputed tables (as a
    production decoder would), keeping the loop body within the LPSU's
    instruction buffer. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let num_frames = 10
let frame_len = 24      (* trellis steps per frame *)
let num_states = 4
let big = 1 lsl 20

(* state = last two input bits; next_state s b = ((s << 1) | b) & 3;
   output bits from generators g0 = 7 (111), g1 = 5 (101). *)
let parity x = (0x6996 lsr ((x lxor (x lsr 4)) land 0xF)) land 1

let out_bits s b =
  let reg = (s lsl 1) lor b in  (* 3-bit shift register *)
  (parity (reg land 7), parity (reg land 5))

let hamming s b obs =
  let o0, o1 = out_bits s b in
  ((obs lsr 1) lxor o0) + ((obs land 1) lxor o1)

(* Predecessors of new state sp: p0 = (sp>>1)&1, p1 = p0|2; the consumed
   input bit is sp&1. *)
let pred0 sp = (sp lsr 1) land 1
let pred1 sp = pred0 sp lor 2

(* Per-(new state, observation) branch metrics through each
   predecessor. *)
let bm_tbl pred =
  Array.init (num_states * 4) (fun idx ->
      let sp = idx / 4 and obs = idx mod 4 in
      hamming (pred sp) (sp land 1) obs)

let bm0 = bm_tbl pred0
let bm1 = bm_tbl pred1
let p0t = Array.init num_states pred0
let p1t = Array.init num_states pred1

let bm_len = num_states * 4
let obs_len = num_frames * frame_len
let bank = 2 * num_states
let pm_len = num_frames * bank

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "viterbi-uc";
    arrays =
      [ Kernel.arr "obs" U8 obs_len;  (* 2-bit symbols *)
        Kernel.arr "bm0" I32 bm_len;
        Kernel.arr "bm1" I32 bm_len;
        Kernel.arr "p0t" I32 num_states;
        Kernel.arr "p1t" I32 num_states;
        Kernel.arr "pm" I32 pm_len;
        Kernel.arr "best" I32 num_frames ];
    consts = [ ("nf", num_frames); ("tlen", frame_len);
               ("ns", num_states); ("big", big) ];
    k_body =
      [ for_ ~pragma:Unordered "f" (i 0) (v "nf")
          [ Ast.Decl ("pmb", v "f" * i bank);
            Ast.Decl ("bigv", v "big");
            (* f-linear subscripts strength-reduce to one store each *)
            Ast.Store ("pm", v "f" * i bank, i 0);
            Ast.Store ("pm", (v "f" * i bank) + i 1, v "bigv");
            Ast.Store ("pm", (v "f" * i bank) + i 2, v "bigv");
            Ast.Store ("pm", (v "f" * i bank) + i 3, v "bigv");
            Ast.Decl ("cur", i 0);
            for_ "t" (i 0) (v "tlen")
              [ Ast.Decl ("ob", "obs".%[(v "f" * v "tlen") + v "t"]);
                Ast.Decl ("nxt", i 1 - v "cur");
                Ast.Decl ("pc_", v "pmb" + (v "cur" lsl i 2));
                Ast.Decl ("pn_", v "pmb" + (v "nxt" lsl i 2));
                for_ "sp" (i 0) (v "ns")
                  [ Ast.Decl
                      ("m0",
                       "pm".%[v "pc_" + "p0t".%[v "sp"]]
                       + "bm0".%[(v "sp" lsl i 2) + v "ob"]);
                    Ast.Decl
                      ("m1",
                       "pm".%[v "pc_" + "p1t".%[v "sp"]]
                       + "bm1".%[(v "sp" lsl i 2) + v "ob"]);
                    Ast.Store ("pm", v "pn_" + v "sp",
                               min_ (v "m0") (v "m1")) ];
                Ast.Assign ("cur", v "nxt") ];
            Ast.Decl ("fb", v "pmb" + (v "cur" lsl i 2));
            Ast.Store
              ("best", v "f",
               min_ (min_ ("pm".%[v "fb"]) ("pm".%[v "fb" + i 1]))
                 (min_ ("pm".%[v "fb" + i 2]) ("pm".%[v "fb" + i 3]))) ] ] }

let observations = Dataset.ints ~seed:73 ~n:obs_len ~bound:4

let reference () =
  Array.init num_frames (fun f ->
      let pm = Array.make num_states big in
      pm.(0) <- 0;
      let cur = ref pm in
      for t = 0 to frame_len - 1 do
        let ob = observations.((f * frame_len) + t) in
        let nxt = Array.make num_states 0 in
        for sp = 0 to num_states - 1 do
          let m0 = !cur.(p0t.(sp)) + bm0.((sp * 4) + ob) in
          let m1 = !cur.(p1t.(sp)) + bm1.((sp * 4) + ob) in
          nxt.(sp) <- min m0 m1
        done;
        cur := nxt
      done;
      Array.fold_left min max_int !cur)

let init (base : Kernel.bases) mem =
  Memory.blit_bytes mem ~addr:(base "obs") observations;
  Memory.blit_int_array mem ~addr:(base "bm0") bm0;
  Memory.blit_int_array mem ~addr:(base "bm1") bm1;
  Memory.blit_int_array mem ~addr:(base "p0t") p0t;
  Memory.blit_int_array mem ~addr:(base "p1t") p1t

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"best" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "best") ~n:num_frames)

let descriptor : Kernel.t =
  { name = "viterbi-uc"; suite = "C"; dominant = "uc"; kernel; init; check }
