(** dither-{or,or-opt,uc} (custom): black-and-white dithering of a
    grayscale image by error diffusion.

    The serial algorithm diffuses quantization error rightward along each
    row through a scalar ([err]), so the pixel loop is
    ordered-through-registers.  Table IV's variants:
    - [dither-or-opt] hand-schedules the body so the carried error is
      produced as early as possible;
    - [dither-uc] is the loop-transformed version that drops the carried
      error entirely (plain thresholding), trading output quality for an
      unordered loop — the "privatize/transform" strategy of Section IV-G.

    (The 2-D Floyd-Steinberg down-diffusion is simplified to row-local
    diffusion so the dominant loop stays [or], matching the paper's
    kernel type.) *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let rows = 24
let cols = 64
let npix = rows * cols

let or_body ~opt : Ast.block =
  let open Ast.Syntax in
  let quantize =
    [ Ast.Decl ("lvl", "gray".%[(v "y" * i cols) + v "x"] + v "err");
      Ast.Decl ("bit", i 0);
      Ast.If (v "lvl" >= i 128, [ Ast.Assign ("bit", i 255) ], []) ]
  in
  let carry = [ Ast.Assign ("err", (v "lvl" - v "bit") asr i 1) ] in
  let emit = [ Ast.Store ("bw", (v "y" * i cols) + v "x", v "bit") ] in
  if opt then quantize @ carry @ emit else quantize @ emit @ carry

let make_or ~opt : Ast.kernel =
  let open Ast.Syntax in
  { k_name = (if opt then "dither-or-opt" else "dither-or");
    arrays = [ Kernel.arr "gray" U8 npix; Kernel.arr "bw" U8 npix ];
    consts = [ ("rows", rows); ("cols", cols) ];
    k_body =
      [ for_ "y" (i 0) (v "rows")
          [ Ast.Decl ("err", i 0);
            for_ ~pragma:Ordered "x" (i 0) (v "cols") (or_body ~opt) ] ] }

let kernel_uc : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "dither-uc";
    arrays = [ Kernel.arr "gray" U8 npix; Kernel.arr "bw" U8 npix ];
    consts = [ ("npix", npix) ];
    k_body =
      [ for_ ~pragma:Unordered "p" (i 0) (v "npix")
          [ Ast.Decl ("bit", i 0);
            Ast.If ("gray".%[v "p"] >= i 128,
                    [ Ast.Assign ("bit", i 255) ], []);
            Ast.Store ("bw", v "p", v "bit") ] ] }

let image = Dataset.bytes ~seed:211 ~n:npix

let reference_or () =
  let bw = Array.make npix 0 in
  for y = 0 to rows - 1 do
    let err = ref 0 in
    for x = 0 to cols - 1 do
      let lvl = image.((y * cols) + x) + !err in
      let bit = if lvl >= 128 then 255 else 0 in
      bw.((y * cols) + x) <- bit;
      err := (lvl - bit) asr 1
    done
  done;
  bw

let reference_uc () =
  Array.map (fun p -> if p >= 128 then 255 else 0) image

let init (base : Kernel.bases) mem =
  Memory.blit_bytes mem ~addr:(base "gray") image

let check_against reference (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"bw" ~expected:(reference ())
    (Memory.read_bytes mem ~addr:(base "bw") ~n:npix)

let descriptor : Kernel.t =
  { name = "dither-or"; suite = "C"; dominant = "or";
    kernel = make_or ~opt:false; init; check = check_against reference_or }

let descriptor_opt : Kernel.t =
  { name = "dither-or-opt"; suite = "C"; dominant = "or";
    kernel = make_or ~opt:true; init; check = check_against reference_or }

let descriptor_uc : Kernel.t =
  { name = "dither-uc"; suite = "C"; dominant = "uc";
    kernel = kernel_uc; init; check = check_against reference_uc }
