(** war-{uc,om} (PolyBench): Floyd-Warshall all-pairs shortest paths
    (Figure 2 of the paper).

    - war-om annotates the middle [ii] loop [ordered] and the inner [j]
      loop [unordered]; dependence analysis maps the middle loop to
      [xloop.om] (iterations read row [k], which some iteration may also
      write) — this is the paper's headline compiler example;
    - war-uc annotates only the inner [j] loop ([unordered]): iterations
      write disjoint elements of row [ii]. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 14
let inf = 1 lsl 20

let body ~annotate_middle : Ast.block =
  let open Ast.Syntax in
  let mid_pragma = if annotate_middle then Some Ast.Ordered else None in
  [ for_ "k" (i 0) (v "n")
      [ for_ ?pragma:mid_pragma "ii" (i 0) (v "n")
          [ for_ ~pragma:Unordered "j" (i 0) (v "n")
              [ Ast.Store
                  ("path", (v "ii" * v "n") + v "j",
                   min_
                     ("path".%[(v "ii" * v "n") + v "j"])
                     ("path".%[(v "ii" * v "n") + v "k"]
                      + "path".%[(v "k" * v "n") + v "j"])) ] ] ] ]

let nn = n * n

let make variant : Ast.kernel =
  { k_name = "war-" ^ variant;
    arrays = [ Kernel.arr "path" I32 nn ];
    consts = [ ("n", n) ];
    k_body = body ~annotate_middle:(variant = "om") }

let input =
  let r = Dataset.rng 101 in
  Array.init (n * n) (fun idx ->
      let a = idx / n and b = idx mod n in
      if a = b then 0
      else if Dataset.int r 4 < 3 then Dataset.range r 1 20
      else inf)

let reference () =
  let p = Array.copy input in
  for k = 0 to n - 1 do
    for ii = 0 to n - 1 do
      for j = 0 to n - 1 do
        let via = p.((ii * n) + k) + p.((k * n) + j) in
        if via < p.((ii * n) + j) then p.((ii * n) + j) <- via
      done
    done
  done;
  p

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "path") input

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"path" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "path") ~n:(n * n))

let descriptor_uc : Kernel.t =
  { name = "war-uc"; suite = "Po"; dominant = "uc";
    kernel = make "uc"; init; check }

let descriptor_om : Kernel.t =
  { name = "war-om"; suite = "Po"; dominant = "om";
    kernel = make "om"; init; check }
