(** huffman-ua (custom): Huffman entropy coding.  The dominant loop is the
    atomic symbol-histogram update over the input stream ([xloop.ua]: any
    order, atomic read-modify-write of shared counters).  Tree
    construction (O(n^2) two-minimum selection) and code-length assignment
    run as serial loops, and the kernel reports the total encoded bit
    count. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let nsyms = 16
let input_len = 1400
let max_nodes = (2 * nsyms) - 1
let inf = 0x7FFFFFFF

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "huffman-ua";
    arrays = [ Kernel.arr "inp" U8 input_len;
               Kernel.arr "freq" I32 max_nodes;
               Kernel.arr "parent" I32 max_nodes;
               Kernel.arr "active" I32 max_nodes;
               Kernel.arr "codelen" I32 nsyms;
               Kernel.arr "total_bits" I32 1 ];
    consts = [ ("len", input_len); ("ns", nsyms);
               ("maxn", max_nodes); ("inf", inf) ];
    k_body =
      [ (* phase 1: atomic histogram *)
        for_ ~pragma:Atomic "t" (i 0) (v "len")
          [ Ast.Decl ("sym", "inp".%[v "t"]);
            Ast.Store ("freq", v "sym", "freq".%[v "sym"] + i 1) ];
        (* phase 2: serial tree build, two-minimum selection per merge *)
        Ast.Decl ("next", v "ns");
        Ast.While
          (v "next" < v "maxn",
           [ Ast.Decl ("m1", i (-1));
             Ast.Decl ("m2", i (-1));
             Ast.Decl ("f1", v "inf");
             Ast.Decl ("f2", v "inf");
             for_ "nd" (i 0) (v "next")
               [ Ast.If
                   ("active".%[v "nd"] = i 1,
                    [ Ast.Decl ("fr", "freq".%[v "nd"]);
                      Ast.If (v "fr" < v "f1",
                              [ Ast.Assign ("f2", v "f1");
                                Ast.Assign ("m2", v "m1");
                                Ast.Assign ("f1", v "fr");
                                Ast.Assign ("m1", v "nd") ],
                              [ Ast.If (v "fr" < v "f2",
                                        [ Ast.Assign ("f2", v "fr");
                                          Ast.Assign ("m2", v "nd") ],
                                        []) ]) ],
                    []) ];
             Ast.Store ("freq", v "next", v "f1" + v "f2");
             Ast.Store ("active", v "next", i 1);
             Ast.Store ("active", v "m1", i 0);
             Ast.Store ("active", v "m2", i 0);
             Ast.Store ("parent", v "m1", v "next");
             Ast.Store ("parent", v "m2", v "next");
             Ast.Assign ("next", v "next" + i 1) ]);
        (* phase 3: code lengths = depth to root; total bits *)
        Ast.Decl ("bits", i 0);
        for_ "s" (i 0) (v "ns")
          [ Ast.Decl ("depth", i 0);
            Ast.Decl ("cur", v "s");
            Ast.While (v "cur" <> v "maxn" - i 1,
                       [ Ast.Assign ("cur", "parent".%[v "cur"]);
                         Ast.Assign ("depth", v "depth" + i 1) ]);
            Ast.Store ("codelen", v "s", v "depth");
            Ast.Assign ("bits", v "bits" + (v "depth" * "freq".%[v "s"])) ];
        Ast.Store ("total_bits", i 0, v "bits") ] }

let input =
  (* Skewed symbol distribution so the code is non-trivial. *)
  let r = Dataset.rng 1409 in
  Array.init input_len (fun _ ->
      let x = Dataset.int r 100 in
      if x < 40 then 0
      else if x < 60 then 1
      else if x < 72 then 2
      else Dataset.int r nsyms)

let reference () =
  let freq = Array.make max_nodes 0 in
  Array.iter (fun s -> freq.(s) <- freq.(s) + 1) input;
  let active = Array.make max_nodes false in
  for s = 0 to nsyms - 1 do active.(s) <- true done;
  let parent = Array.make max_nodes 0 in
  for next = nsyms to max_nodes - 1 do
    let m1 = ref (-1) and m2 = ref (-1) in
    let f1 = ref inf and f2 = ref inf in
    for nd = 0 to next - 1 do
      if active.(nd) then begin
        let fr = freq.(nd) in
        if fr < !f1 then begin
          f2 := !f1; m2 := !m1; f1 := fr; m1 := nd
        end else if fr < !f2 then begin
          f2 := fr; m2 := nd
        end
      end
    done;
    freq.(next) <- !f1 + !f2;
    active.(next) <- true;
    active.(!m1) <- false;
    active.(!m2) <- false;
    parent.(!m1) <- next;
    parent.(!m2) <- next
  done;
  let codelen = Array.make nsyms 0 in
  let bits = ref 0 in
  for s = 0 to nsyms - 1 do
    let depth = ref 0 and cur = ref s in
    while !cur <> max_nodes - 1 do
      cur := parent.(!cur);
      incr depth
    done;
    codelen.(s) <- !depth;
    bits := !bits + (!depth * freq.(s))
  done;
  (codelen, !bits)

let init (base : Kernel.bases) mem =
  Memory.blit_bytes mem ~addr:(base "inp") input;
  for s = 0 to nsyms - 1 do
    Memory.set_int mem (base "active" + 4 * s) 1
  done

let check (base : Kernel.bases) mem =
  let codelen, bits = reference () in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"codelen" ~expected:codelen
        (Memory.read_int_array mem ~addr:(base "codelen") ~n:nsyms);
      Kernel.check_int_array ~what:"total_bits" ~expected:[| bits |]
        (Memory.read_int_array mem ~addr:(base "total_bits") ~n:1) ]

let descriptor : Kernel.t =
  { name = "huffman-ua"; suite = "C"; dominant = "ua"; kernel; init; check }
