(** The kernel registry: Table II's 25 application kernels, Table IV's
    hand-optimized / loop-transformed variants, and the extension
    kernels. *)

val table2 : Kernel.t list
(** The 25 kernels of Table II, in the paper's order. *)

val table4 : Kernel.t list
(** Table IV case-study variants. *)

val extensions : Kernel.t list
(** Kernels for the implemented future-work patterns (e.g. find-de). *)

val all : Kernel.t list

val find : string -> Kernel.t
(** Raises [Invalid_argument] on unknown names. *)

val names : string list
