(** find-de (extension): first-match search with a data-dependent exit —
    the control pattern the paper names as future work (Section VII),
    implemented here as [xloop.uc.de].

    Each iteration transforms its element ([out[i] = 2*a[i] + 1]) and
    tests it against the target; the loop exits at the first match.
    Under specialized execution the lanes run iterations beyond the exit
    {e control-speculatively}: their buffered stores are discarded when
    the exiting iteration commits, which the check verifies by insisting
    [out] is untouched past the exit. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 600
let target = 777

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "find-de";
    arrays = [ Kernel.arr "a" I32 n; Kernel.arr "out" I32 n;
               Kernel.arr "result" I32 1 ];
    consts = [ ("n", n); ("target", target) ];
    k_body =
      [ Ast.Store ("result", i 0, i (-1));
        for_de ~pragma:Unordered "idx" (i 0)
          ((v "hit" = i 0) land (v "idx" < v "n" - i 1))
          [ Ast.Decl ("x", "a".%[v "idx"]);
            Ast.Store ("out", v "idx", (v "x" * i 2) + i 1);
            Ast.Decl ("hit", v "x" = v "target");
            Ast.If (v "hit" = i 1,
                    [ Ast.Store ("result", i 0, v "idx") ], []) ] ] }

let input =
  let a = Dataset.ints ~seed:2203 ~n ~bound:700 in
  (* Plant the target around two-thirds in. *)
  a.(2 * n / 3) <- target;
  a

let exit_index =
  let rec go i =
    if i >= n - 1 then n - 1
    else if input.(i) = target then i
    else go (i + 1)
  in
  go 0

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "a") input

let check (base : Kernel.bases) mem =
  let out = Memory.read_int_array mem ~addr:(base "out") ~n in
  let expected =
    Array.init n (fun i ->
        if i <= exit_index then (2 * input.(i)) + 1 else 0)
  in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"out" ~expected out;
      Kernel.check_int_array ~what:"result"
        ~expected:[| (if input.(exit_index) = target then exit_index
                      else -1) |]
        (Memory.read_int_array mem ~addr:(base "result") ~n:1) ]

let descriptor : Kernel.t =
  { name = "find-de"; suite = "C"; dominant = "uc.de"; kernel; init; check }
