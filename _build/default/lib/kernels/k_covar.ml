(** covar-or (PolyBench): covariance matrix.  The mean-subtraction loops
    are plain; the dominant annotated loop is the inner accumulation over
    observations, whose running sum is a register-carried dependence
    (a one-instruction inter-iteration critical path — one of the [or]
    kernels where specialized execution does well). *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let m = 10   (* variables *)
let n = 32   (* observations *)

let nm = n * m
let mm = m * m

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "covar-or";
    arrays = [ Kernel.arr "data" I32 nm; Kernel.arr "mean" I32 m;
               Kernel.arr "cov" I32 mm ];
    consts = [ ("m", m); ("n", n) ];
    k_body =
      [ (* column means (integer division by n) *)
        for_ "j" (i 0) (v "m")
          [ Ast.Decl ("s", i 0);
            for_ "k" (i 0) (v "n")
              [ Ast.Assign ("s", v "s" + "data".%[(v "k" * v "m") + v "j"]) ];
            Ast.Store ("mean", v "j", v "s" / v "n") ];
        (* subtract means *)
        for_ "k" (i 0) (v "n")
          [ for_ "j" (i 0) (v "m")
              [ Ast.Store ("data", (v "k" * v "m") + v "j",
                           "data".%[(v "k" * v "m") + v "j"]
                           - "mean".%[v "j"]) ] ];
        (* covariance: the ordered accumulation loop dominates *)
        for_ "j1" (i 0) (v "m")
          [ for_ "j2" (v "j1") (v "m")
              [ Ast.Decl ("acc", i 0);
                for_ ~pragma:Ordered "k" (i 0) (v "n")
                  [ Ast.Assign
                      ("acc",
                       v "acc"
                       + ("data".%[(v "k" * v "m") + v "j1"]
                          * "data".%[(v "k" * v "m") + v "j2"])) ];
                Ast.Store ("cov", (v "j1" * v "m") + v "j2", v "acc");
                Ast.Store ("cov", (v "j2" * v "m") + v "j1", v "acc") ] ] ] }

let input = Dataset.ints ~seed:131 ~n:(n * m) ~bound:50

let reference () =
  let data = Array.copy input in
  let mean = Array.make m 0 in
  for j = 0 to m - 1 do
    let s = ref 0 in
    for k = 0 to n - 1 do s := !s + data.((k * m) + j) done;
    mean.(j) <- !s / n
  done;
  for k = 0 to n - 1 do
    for j = 0 to m - 1 do
      data.((k * m) + j) <- data.((k * m) + j) - mean.(j)
    done
  done;
  let cov = Array.make (m * m) 0 in
  for j1 = 0 to m - 1 do
    for j2 = j1 to m - 1 do
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (data.((k * m) + j1) * data.((k * m) + j2))
      done;
      cov.((j1 * m) + j2) <- !acc;
      cov.((j2 * m) + j1) <- !acc
    done
  done;
  cov

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "data") input

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"cov" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "cov") ~n:(m * m))

let descriptor : Kernel.t =
  { name = "covar-or"; suite = "Po"; dominant = "or"; kernel; init; check }
