(** hsort-ua (custom): binary-heap construction by repeated insertion.
    Each iteration reserves a slot with an AMO and sifts the new element
    up through the shared heap; the [atomic] annotation lets iterations
    run in any order with atomic memory updates.  A serial extraction
    phase is left unannotated (it is inherently ordered). *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 200

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "hsort-ua";
    arrays = [ Kernel.arr "vals" I32 n; Kernel.arr "heap" I32 n;
               Kernel.arr "hsize" I32 1; Kernel.arr "sorted" I32 n ];
    consts = [ ("n", n) ];
    k_body =
      [ (* phase 1: parallel atomic inserts (min-heap) *)
        for_ ~pragma:Atomic "t" (i 0) (v "n")
          [ Ast.Decl ("x", "vals".%[v "t"]);
            Ast.Decl ("idx", Ast.Amo (Aadd, "hsize", i 0, i 1));
            Ast.Store ("heap", v "idx", v "x");
            Ast.Decl ("going", i 1);
            Ast.While
              ((v "going" = i 1) land (v "idx" > i 0),
               [ Ast.Decl ("par", (v "idx" - i 1) lsr i 1);
                 Ast.Decl ("pv", "heap".%[v "par"]);
                 Ast.If (v "pv" > v "x",
                         [ Ast.Store ("heap", v "par", v "x");
                           Ast.Store ("heap", v "idx", v "pv");
                           Ast.Assign ("idx", v "par") ],
                         [ Ast.Assign ("going", i 0) ]) ]) ];
        (* phase 2: serial extract-min into sorted[] *)
        for_ "o" (i 0) (v "n")
          [ Ast.Store ("sorted", v "o", "heap".%[i 0]);
            Ast.Decl ("last", "hsize".%[i 0] - i 1);
            Ast.Store ("hsize", i 0, v "last");
            Ast.Decl ("x2", "heap".%[v "last"]);
            Ast.Decl ("hole", i 0);
            Ast.Decl ("going2", i 1);
            Ast.While
              (v "going2" = i 1,
               [ Ast.Decl ("child", (v "hole" * i 2) + i 1);
                 Ast.If
                   (v "child" >= v "last",
                    [ Ast.Assign ("going2", i 0) ],
                    [ Ast.If ((v "child" + i 1 < v "last")
                              land ("heap".%[v "child" + i 1]
                                    < "heap".%[v "child"]),
                              [ Ast.Assign ("child", v "child" + i 1) ], []);
                      Ast.If ("heap".%[v "child"] < v "x2",
                              [ Ast.Store ("heap", v "hole",
                                           "heap".%[v "child"]);
                                Ast.Assign ("hole", v "child") ],
                              [ Ast.Assign ("going2", i 0) ]) ]) ]);
            Ast.Store ("heap", v "hole", v "x2") ] ] }

let values = Dataset.ints ~seed:1301 ~n ~bound:10000

let reference_sorted () =
  let s = Array.copy values in
  Array.sort compare s;
  s

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "vals") values

let check (base : Kernel.bases) mem =
  let sorted = Memory.read_int_array mem ~addr:(base "sorted") ~n in
  Kernel.all_checks
    [ Kernel.check_int_array ~what:"sorted" ~expected:(reference_sorted ())
        sorted;
      Kernel.check_permutation ~what:"sorted" ~of_:values sorted ]

let descriptor : Kernel.t =
  { name = "hsort-ua"; suite = "C"; dominant = "ua"; kernel; init; check }
