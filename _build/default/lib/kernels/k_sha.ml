(** sha-or (MiBench): SHA-1-style block transform.  Per block: a message
    schedule expansion (an ordered loop carried through memory) followed
    by the round loop, whose five working variables a..e are all
    register-carried — a many-CIR [xloop.or] with a long inter-iteration
    critical path.  The Table IV [-opt] variant hand-schedules the round
    body so the carried registers are produced as early as possible. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let blocks = 4
let rounds = 80
let sched = 80  (* schedule length per block *)

(* Single round function (parity) and constant, keeping the round body in
   the paper's 6-24 instruction range. *)
let k_const = 0x6ED9EBA1
let w_len = blocks * sched
let digest_len = blocks * 5

let round_body ~opt : Ast.block =
  let open Ast.Syntax in
  (* rol n x = (x << n) | (x >>u (32-n)) *)
  let rol n x =
    let m = Stdlib.( - ) 32 n in
    (x lsl i n) lor (x lsr i m)
  in
  if not opt then
    [ Ast.Decl ("tmp",
                rol 5 (v "a") + (v "b" lxor v "c" lxor v "d") + v "e"
                + i k_const + "w".%[(v "blk" * i sched) + v "t"]);
      Ast.Assign ("e", v "d");
      Ast.Assign ("d", v "c");
      Ast.Assign ("c", rol 30 (v "b"));
      Ast.Assign ("b", v "a");
      Ast.Assign ("a", v "tmp") ]
  else
    (* Hand-scheduled: read every carried register up front, produce the
       new [a] (the longest chain) as early as the dataflow allows, then
       retire the cheap rotations. *)
    [ Ast.Decl ("olda", v "a");
      Ast.Decl ("oldb", v "b");
      Ast.Assign ("a",
                  rol 5 (v "olda") + (v "b" lxor v "c" lxor v "d") + v "e"
                  + i k_const + "w".%[(v "blk" * i sched) + v "t"]);
      Ast.Assign ("b", v "olda");
      Ast.Assign ("e", v "d");
      Ast.Assign ("d", v "c");
      Ast.Assign ("c", rol 30 (v "oldb")) ]

let make ~opt : Ast.kernel =
  let open Ast.Syntax in
  { k_name = (if opt then "sha-or-opt" else "sha-or");
    arrays = [ Kernel.arr "w" I32 w_len;
               Kernel.arr "digest" I32 digest_len ];
    consts = [ ("nb", blocks); ("rounds", rounds); ("sched", sched) ];
    k_body =
      [ for_ "blk" (i 0) (v "nb")
          [ (* message schedule expansion: w[t] depends on w[t-3..t-16] *)
            for_ ~pragma:Ordered "ts" (i 16) (v "sched")
              [ Ast.Decl ("base", v "blk" * v "sched");
                Ast.Store
                  ("w", v "base" + v "ts",
                   let wref k =
                     "w".%[v "base" + v "ts" - i k] in
                   let x = wref 3 lxor wref 8 lxor wref 14 lxor wref 16 in
                   (x lsl i 1) lor (x lsr i 31)) ];
            Ast.Decl ("a", i 0x67452301);
            Ast.Decl ("b", i 0xEFCDAB89);
            Ast.Decl ("c", i 0x98BADCFE);
            Ast.Decl ("d", i 0x10325476);
            Ast.Decl ("e", i 0xC3D2E1F0);
            for_ ~pragma:Ordered "t" (i 0) (v "rounds") (round_body ~opt);
            Ast.Store ("digest", v "blk" * i 5, v "a");
            Ast.Store ("digest", (v "blk" * i 5) + i 1, v "b");
            Ast.Store ("digest", (v "blk" * i 5) + i 2, v "c");
            Ast.Store ("digest", (v "blk" * i 5) + i 3, v "d");
            Ast.Store ("digest", (v "blk" * i 5) + i 4, v "e") ] ] }

let message =
  Dataset.ints ~seed:509 ~n:(blocks * 16) ~bound:0x3FFFFFFF

let reference () =
  let ( +% ) a b = Int32.add a b in
  let rol n x =
    Int32.logor (Int32.shift_left x n) (Int32.shift_right_logical x (32 - n))
  in
  let digest = Array.make (blocks * 5) 0 in
  for blk = 0 to blocks - 1 do
    let w = Array.make sched 0l in
    for t = 0 to 15 do w.(t) <- Int32.of_int message.((blk * 16) + t) done;
    for t = 16 to sched - 1 do
      let x =
        Int32.logxor w.(t - 3)
          (Int32.logxor w.(t - 8) (Int32.logxor w.(t - 14) w.(t - 16)))
      in
      w.(t) <- rol 1 x
    done;
    let a = ref 0x67452301l and b = ref 0xEFCDAB89l in
    let c = ref 0x98BADCFEl and d = ref 0x10325476l in
    let e = ref 0xC3D2E1F0l in
    for t = 0 to rounds - 1 do
      let tmp =
        rol 5 !a +% Int32.logxor !b (Int32.logxor !c !d) +% !e
        +% Int32.of_int k_const +% w.(t)
      in
      e := !d; d := !c; c := rol 30 !b; b := !a; a := tmp
    done;
    digest.((blk * 5) + 0) <- Int32.to_int !a;
    digest.((blk * 5) + 1) <- Int32.to_int !b;
    digest.((blk * 5) + 2) <- Int32.to_int !c;
    digest.((blk * 5) + 3) <- Int32.to_int !d;
    digest.((blk * 5) + 4) <- Int32.to_int !e
  done;
  digest

let init (base : Kernel.bases) mem =
  for blk = 0 to blocks - 1 do
    for t = 0 to 15 do
      Memory.set_int mem (base "w" + 4 * ((blk * sched) + t))
        message.((blk * 16) + t)
    done
  done

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"digest" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "digest") ~n:(blocks * 5))

let descriptor : Kernel.t =
  { name = "sha-or"; suite = "M"; dominant = "or";
    kernel = make ~opt:false; init; check }

let descriptor_opt : Kernel.t =
  { name = "sha-or-opt"; suite = "M"; dominant = "or";
    kernel = make ~opt:true; init; check }
