(** ssearch-uc (custom): Knuth-Morris-Pratt substring search over a
    collection of byte streams.  The unordered loop runs one stream per
    iteration; the KMP automaton (failure function precomputed at dataset
    build time) runs as an inner serial loop with data-dependent control
    flow. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let num_streams = 48
let stream_len = 48
let pat_len = 4

let total_len = num_streams * stream_len

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "ssearch-uc";
    arrays = [ Kernel.arr "streams" U8 total_len;
               Kernel.arr "pat" U8 pat_len;
               Kernel.arr "fail" I32 pat_len;
               Kernel.arr "found" I32 num_streams ];
    consts = [ ("ns", num_streams); ("len", stream_len); ("m", pat_len) ];
    k_body =
      [ for_ ~pragma:Unordered "s" (i 0) (v "ns")
          [ Ast.Decl ("q", i 0);         (* automaton state *)
            Ast.Decl ("pos", i (-1));    (* first match position *)
            Ast.Decl ("j", i 0);
            Ast.While
              (v "j" < v "len",
               [ Ast.Decl ("ch", "streams".%[(v "s" * v "len") + v "j"]);
                 Ast.While
                   ((v "q" > i 0) land (v "ch" <> "pat".%[v "q"]),
                    [ Ast.Assign ("q", "fail".%[v "q" - i 1]) ]);
                 Ast.If (v "ch" = "pat".%[v "q"],
                         [ Ast.Assign ("q", v "q" + i 1) ], []);
                 Ast.If (v "q" = v "m",
                         [ Ast.If (v "pos" < i 0,
                                   [ Ast.Assign ("pos",
                                                 v "j" - v "m" + i 1) ],
                                   []);
                           Ast.Assign ("q", i 0) ], []);
                 Ast.Assign ("j", v "j" + i 1) ]);
            Ast.Store ("found", v "s", v "pos") ] ] }

let pattern = [| 3; 1; 3; 7 |]

let streams =
  (* Byte streams over a small alphabet so matches actually occur. *)
  let raw = Dataset.ints ~seed:91 ~n:(num_streams * stream_len) ~bound:8 in
  (* Plant the pattern in every third stream. *)
  Array.mapi
    (fun idx x ->
       let s = idx / stream_len and j = idx mod stream_len in
       if s mod 3 = 0 && j >= 20 && j < 20 + pat_len then
         pattern.(j - 20)
       else x)
    raw

let failure =
  let f = Array.make pat_len 0 in
  let k = ref 0 in
  for q = 1 to pat_len - 1 do
    while !k > 0 && pattern.(!k) <> pattern.(q) do k := f.(!k - 1) done;
    if pattern.(!k) = pattern.(q) then incr k;
    f.(q) <- !k
  done;
  f

let reference () =
  Array.init num_streams (fun s ->
      let q = ref 0 and pos = ref (-1) in
      for j = 0 to stream_len - 1 do
        let ch = streams.((s * stream_len) + j) in
        while !q > 0 && ch <> pattern.(!q) do q := failure.(!q - 1) done;
        if ch = pattern.(!q) then incr q;
        if !q = pat_len then begin
          if !pos < 0 then pos := j - pat_len + 1;
          q := 0
        end
      done;
      !pos)

let init (base : Kernel.bases) mem =
  Memory.blit_bytes mem ~addr:(base "streams") streams;
  Memory.blit_bytes mem ~addr:(base "pat") pattern;
  Memory.blit_int_array mem ~addr:(base "fail") failure

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"found" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "found") ~n:num_streams)

let descriptor : Kernel.t =
  { name = "ssearch-uc"; suite = "C"; dominant = "uc"; kernel; init; check }
