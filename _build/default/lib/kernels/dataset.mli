(** Deterministic synthetic datasets (stand-ins for the paper's
    MiBench/PolyBench/PBBS inputs, sized for a 16 KB L1): a seeded LCG so
    runs reproduce bit-for-bit, plus array and graph generators. *)

type rng

val rng : int -> rng
val next : rng -> int
val int : rng -> int -> int
(** Uniform in [\[0, bound)]. *)

val range : rng -> int -> int -> int
(** Uniform in [\[lo, hi\]]. *)

val float01 : rng -> float

val ints : seed:int -> n:int -> bound:int -> int array
val bytes : seed:int -> n:int -> int array
val floats : seed:int -> n:int -> scale:float -> float array

val graph_csr : seed:int -> nodes:int -> avg_degree:int ->
  int array * int array
(** Random sparse digraph in CSR form: (row_start of length nodes+1,
    flattened edges).  Every node above 0 receives an edge from a
    lower-numbered node, so the graph is connected from node 0. *)
