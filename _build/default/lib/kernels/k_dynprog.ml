(** dynprog-om (PolyBench): 2-D dynamic programming table fill.  The inner
    column loop is annotated ordered; each cell reads its left neighbour
    (written by the previous iteration of the same loop), so the compiler
    maps it to [xloop.om] and the hardware rides on memory-dependence
    speculation with a carried distance of one — mostly serialized, as the
    paper's dynprog results show. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let n = 34

let nn = n * n

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "dynprog-om";
    arrays = [ Kernel.arr "w" I32 nn;      (* costs *)
               Kernel.arr "tbl" I32 nn ];
    consts = [ ("n", n) ];
    k_body =
      [ (* first row/column: running sums *)
        Ast.Store ("tbl", i 0, "w".%[i 0]);
        for_ "j0" (i 1) (v "n")
          [ Ast.Store ("tbl", v "j0",
                       "tbl".%[v "j0" - i 1] + "w".%[v "j0"]) ];
        for_ "i0" (i 1) (v "n")
          [ Ast.Store ("tbl", v "i0" * v "n",
                       "tbl".%[(v "i0" - i 1) * v "n"]
                       + "w".%[v "i0" * v "n"]) ];
        for_ "r" (i 1) (v "n")
          [ for_ ~pragma:Ordered "cidx" (i 1) (v "n")
              [ Ast.Store
                  ("tbl", (v "r" * v "n") + v "cidx",
                   min_
                     ("tbl".%[(v "r" * v "n") + v "cidx" - i 1])
                     ("tbl".%[((v "r" - i 1) * v "n") + v "cidx"])
                   + "w".%[(v "r" * v "n") + v "cidx"]) ] ] ] }

let costs = Dataset.ints ~seed:613 ~n:nn ~bound:40

let reference () =
  let t = Array.make nn 0 in
  t.(0) <- costs.(0);
  for j = 1 to n - 1 do t.(j) <- t.(j - 1) + costs.(j) done;
  for i = 1 to n - 1 do
    t.(i * n) <- t.((i - 1) * n) + costs.(i * n)
  done;
  for i = 1 to n - 1 do
    for j = 1 to n - 1 do
      t.((i * n) + j) <-
        min t.((i * n) + j - 1) t.(((i - 1) * n) + j) + costs.((i * n) + j)
    done
  done;
  t

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "w") costs

let check (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"tbl" ~expected:(reference ())
    (Memory.read_int_array mem ~addr:(base "tbl") ~n:nn)

let descriptor : Kernel.t =
  { name = "dynprog-om"; suite = "Po"; dominant = "om"; kernel; init; check }
