(** bfs-{uc-db,uc} (custom): breadth-first search with a worklist.

    - bfs-uc-db: one dynamically-bounded unordered loop over a growing
      worklist (Figure 1(e)'s idiom).  Iterations claim unvisited
      neighbours with [amo_xchg], append them with an [amo_add] on the
      tail pointer, and reload the loop bound — the compiler detects the
      bound update and emits [xloop.uc.db].
    - bfs-uc (Table IV): the split-worklist / level-synchronous transform,
      a serial outer level loop around a fixed-bound inner [xloop.uc].

    The dynamic variant's distances may differ from true BFS distances
    under concurrent execution (a legal outcome of unordered claiming), so
    its check validates the distance labelling: every reachable node is
    visited, no label beats the true shortest distance, and every edge is
    relaxed ([dist[w] <= dist[u] + 1]).  The level-synchronous variant is
    exact. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory

let nodes = 256
let avg_degree = 3

let row_start, edges = Dataset.graph_csr ~seed:1601 ~nodes ~avg_degree
let nedges = Array.length edges

let visit_neighbours : Ast.block =
  let open Ast.Syntax in
  [ Ast.Decl ("node", "wl".%[v "t"]);
    (* The producer publishes the raised bound only after filling the
       slot, but another lane's bound reload may race ahead of a
       different producer's slot store; spin until the slot is filled
       (sentinel -1).  Serial execution never spins. *)
    Ast.While (v "node" < i 0, [ Ast.Assign ("node", "wl".%[v "t"]) ]);
    Ast.Decl ("dn", "dist".%[v "node"]);
    Ast.Decl ("e", "rowstart".%[v "node"]);
    Ast.Decl ("elim", "rowstart".%[v "node" + i 1]);
    Ast.While
      (v "e" < v "elim",
       [ Ast.Decl ("nb", "adj".%[v "e"]);
         Ast.Decl ("claimed", Ast.Amo (Axchg, "visited", v "nb", i 1));
         Ast.If (v "claimed" = i 0,
                 [ Ast.Store ("dist", v "nb", v "dn" + i 1);
                   Ast.Decl ("slot", Ast.Amo (Aadd, "tail", i 0, i 1));
                   Ast.Store ("wl", v "slot", v "nb") ],
                 []);
         Ast.Assign ("e", v "e" + i 1) ]) ]

let arrays =
  [ Kernel.arr "rowstart" I32 (nodes + 1); Kernel.arr "adj" I32 nedges;
    Kernel.arr "wl" I32 (nodes + 4); Kernel.arr "tail" I32 1;
    Kernel.arr "visited" I32 nodes; Kernel.arr "dist" I32 nodes ]

let kernel_db : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "bfs-uc-db";
    arrays;
    consts = [];
    k_body =
      [ for_ ~pragma:Unordered "t" (i 0) ("tail".%[i 0]) visit_neighbours ] }

let kernel_level : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "bfs-uc";
    arrays;
    consts = [];
    k_body =
      [ Ast.Decl ("lo", i 0);
        Ast.Decl ("hi", "tail".%[i 0]);
        Ast.While
          (v "lo" < v "hi",
           [ for_ ~pragma:Unordered "t" (v "lo") (v "hi") visit_neighbours;
             Ast.Assign ("lo", v "hi");
             Ast.Assign ("hi", "tail".%[i 0]) ]) ] }

let shortest () =
  let dist = Array.make nodes (-1) in
  dist.(0) <- 0;
  let q = Queue.create () in
  Queue.add 0 q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    for e = row_start.(u) to row_start.(u + 1) - 1 do
      let w = edges.(e) in
      if dist.(w) < 0 then begin
        dist.(w) <- dist.(u) + 1;
        Queue.add w q
      end
    done
  done;
  dist

let init (base : Kernel.bases) mem =
  Memory.blit_int_array mem ~addr:(base "rowstart") row_start;
  Memory.blit_int_array mem ~addr:(base "adj") edges;
  for v = 0 to nodes - 1 do
    Memory.set_int mem (base "dist" + 4 * v) (-1)
  done;
  for s = 0 to nodes + 3 do
    Memory.set_int mem (base "wl" + 4 * s) (-1)
  done;
  (* seed: node 0 *)
  Memory.set_int mem (base "wl") 0;
  Memory.set_int mem (base "tail") 1;
  Memory.set_int mem (base "visited") 1;
  Memory.set_int mem (base "dist") 0

(* Validity check for unordered claiming: reachable <=> visited, source at
   0, and the labelling is sandwiched between the true shortest distance
   and edge-relaxation consistency. *)
let check_valid (base : Kernel.bases) mem =
  let sp = shortest () in
  let dist = Memory.read_int_array mem ~addr:(base "dist") ~n:nodes in
  let err = ref None in
  for u = 0 to nodes - 1 do
    if sp.(u) >= 0 && dist.(u) < 0 then
      err := Some (Printf.sprintf "node %d reachable but unvisited" u);
    if sp.(u) < 0 && dist.(u) >= 0 then
      err := Some (Printf.sprintf "node %d unreachable but visited" u);
    if sp.(u) >= 0 && dist.(u) >= 0 && dist.(u) < sp.(u) then
      err := Some (Printf.sprintf "node %d labelled %d < shortest %d"
                     u dist.(u) sp.(u))
  done;
  (* Every visited non-source node was claimed by an in-neighbour whose
     (frozen) label is exactly one less — i.e. dist is a real path length.
     Under unordered claiming an edge may legally remain "unrelaxed"
     (dist[w] > dist[u] + 1), so that is not checked. *)
  let has_parent = Array.make nodes false in
  for u = 0 to nodes - 1 do
    if dist.(u) >= 0 then
      for e = row_start.(u) to row_start.(u + 1) - 1 do
        let w = edges.(e) in
        if dist.(w) = dist.(u) + 1 then has_parent.(w) <- true
      done
  done;
  for w = 0 to nodes - 1 do
    if w <> 0 && dist.(w) >= 0 && not has_parent.(w) then
      err := Some (Printf.sprintf "node %d labelled %d with no parent"
                     w dist.(w))
  done;
  match !err with None -> Ok () | Some m -> Error m

(* The level-synchronous variant computes exact BFS distances. *)
let check_exact (base : Kernel.bases) mem =
  Kernel.check_int_array ~what:"dist" ~expected:(shortest ())
    (Memory.read_int_array mem ~addr:(base "dist") ~n:nodes)

let descriptor : Kernel.t =
  { name = "bfs-uc-db"; suite = "C"; dominant = "uc.db";
    kernel = kernel_db; init; check = check_valid }

let descriptor_uc : Kernel.t =
  { name = "bfs-uc"; suite = "C"; dominant = "uc";
    kernel = kernel_level; init; check = check_exact }
