lib/core/experiments.ml: Fmt List Xloops_compiler Xloops_energy Xloops_kernels Xloops_sim Xloops_vlsi
