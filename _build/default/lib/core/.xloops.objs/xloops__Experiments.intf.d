lib/core/experiments.mli: Format Xloops_compiler Xloops_energy Xloops_kernels Xloops_sim
