lib/core/xloops.ml: Experiments Xloops_asm Xloops_compiler Xloops_energy Xloops_isa Xloops_kernels Xloops_mem Xloops_sim Xloops_vlsi
