(** Bimodal branch predictor (2-bit saturating counters, BTB assumed
    always hitting) for the out-of-order GPP timing model.  Counters
    start weakly-taken so loop back-edges predict well immediately. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] must be a power of two (default 1024). *)

val predict_update : t -> pc:int -> taken:bool -> bool
(** Returns [true] if the prediction was correct; updates the counter
    either way. *)

val mispredicts : t -> int
val lookups : t -> int
