(** Top-level machine: a GPP, optionally augmented with an LPSU, executing
    a program in one of the paper's three execution modes.

    - {b Traditional}: every instruction, including [xloop] and [.xi],
      executes on the GPP ([xloop] as a conditional branch, [.xi] as an
      add).
    - {b Specialized}: when the GPP takes an [xloop] back-edge (i.e. after
      the first iteration has executed on the GPP, which is how the
      fall-through encoding works), it scans the body into the LPSU and
      hands the remaining iterations to specialized execution; on loops the
      LPSU cannot handle it falls back to traditional execution.
    - {b Adaptive}: an adaptive profiling table (APT) indexed by the
      [xloop] PC first measures traditional-execution throughput, then
      specialized throughput on the same number of iterations, and commits
      to whichever is faster (Section II-E).  Profiling stretches across
      dynamic instances of the loop, and a decision, once made, sticks. *)

module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory

type mode = Traditional | Specialized | Adaptive

let mode_name = function
  | Traditional -> "T" | Specialized -> "S" | Adaptive -> "A"

type result = {
  cycles : int;
  insns : int;              (** dynamically committed instructions *)
  stats : Stats.t;
}

type apt_entry =
  | Profiling of {
      mutable iters : int;
      mutable cycles : int;
      mutable last_taken : int;   (* -1 between dynamic instances *)
    }
  | Decided of {
      spec : bool;
      mutable uses : int;   (* dynamic loop instances under this decision *)
    }

let decided spec = Decided { spec; uses = 0 }

type t = {
  cfg : Config.t;
  mode : mode;
  adaptive : Config.adaptive;
  lpsu_fuel : int;
  trace : Trace.t option;
  prog : Program.t;
  mem : Memory.t;
  stats : Stats.t;
  hart : Exec.hart;
  timing : Gpp_timing.t;
  apt : (int, apt_entry) Hashtbl.t;
  scan_fail : (int, Scan.fallback_reason) Hashtbl.t;
  mutable insns : int;
}

let create ?(adaptive = Config.default_adaptive)
    ?(lpsu_fuel = 500_000_000) ?trace ~cfg ~mode ~prog ~mem
    ?(entry = 0) () =
  (match mode, cfg.Config.lpsu with
   | (Specialized | Adaptive), None ->
     invalid_arg
       (Printf.sprintf "Machine.create: config %s has no LPSU" cfg.name)
   | _ -> ());
  let stats = Stats.create () in
  { cfg; mode; adaptive; lpsu_fuel; trace; prog; mem; stats;
    hart = Exec.create_hart ~pc:entry ();
    timing = Gpp_timing.create cfg.Config.gpp stats;
    apt = Hashtbl.create 8;
    scan_fail = Hashtbl.create 8;
    insns = 0 }

(* -- Specialized-execution plumbing ---------------------------------- *)

let lpsu_cfg t =
  match t.cfg.Config.lpsu with Some l -> l | None -> assert false

(** Write the LPSU's architectural results back into the GPP register
    file: index, (possibly raised) bound, serial-final CIR values and MIV
    values — exactly the registers whose post-loop values the XLOOPS ISA
    defines. *)
let writeback t (info : Scan.t) (r : Lpsu.result) =
  Exec.set t.hart info.r_idx r.next_idx;
  Exec.set t.hart info.r_bound r.bound;
  List.iter (fun (reg, v) -> Exec.set t.hart reg v) r.cir_finals;
  List.iter (fun (reg, v) -> Exec.set t.hart reg v) r.miv_finals

(** Analyze the xloop at [pc] for specialization, caching the (static)
    failure reasons so fallback loops do not re-scan on every back-edge. *)
let analyze t ~pc =
  match Hashtbl.find_opt t.scan_fail pc with
  | Some reason -> Error reason
  | None ->
    (match Scan.analyze t.prog ~xloop_pc:pc ~regs:t.hart.regs
             ~lpsu:(lpsu_cfg t) with
    | Ok info -> Ok info
    | Error reason ->
      Hashtbl.replace t.scan_fail pc reason;
      if not (Hashtbl.mem t.apt pc) then begin
        if Trace.enabled t.trace Decisions then
          Trace.event t.trace Decisions
            "xloop@%d falls back to traditional execution: %a" pc
            Scan.pp_fallback reason;
        t.stats.xloops_traditional <- t.stats.xloops_traditional + 1;
        Hashtbl.replace t.apt pc (decided false)
      end;
      Error reason)

(** Run the LPSU over (part of) the xloop described by [info], starting
    after a scan phase, and bring the GPP state up to date.  Returns the
    LPSU result. *)
let run_lpsu ?stop_after t (info : Scan.t) =
  Gpp_timing.barrier t.timing;
  let scan = Gpp_timing.scan_cycles t.timing (lpsu_cfg t)
      ~body_insns:info.body_len in
  t.stats.scan_insns <- t.stats.scan_insns + info.body_len;
  t.stats.renames <- t.stats.renames + info.body_len;
  let start_cycle = Gpp_timing.now t.timing + scan in
  if Trace.enabled t.trace Decisions then
    Trace.event t.trace Decisions
      "[%7d] scan xloop@%d (%d instructions, %d scan cycles)"
      (Gpp_timing.now t.timing) info.Scan.xloop_pc info.body_len scan;
  let r = Lpsu.run ~prog:t.prog ~mem:t.mem
      ~dcache:(Gpp_timing.l1d t.timing) ~cfg:t.cfg ~stats:t.stats
      ~info ~regs:t.hart.regs ~start_cycle ?stop_after
      ?trace:t.trace ~fuel:t.lpsu_fuel () in
  writeback t info r;
  Gpp_timing.skip_to t.timing (start_cycle + r.cycles);
  r

let specialize_fully t (info : Scan.t) =
  let r = run_lpsu t info in
  assert r.finished;
  t.hart.pc <- info.xloop_pc + 1

(* -- Adaptive execution ----------------------------------------------- *)

let adaptive_step t ~pc (ev : Exec.event) =
  let now = Gpp_timing.now t.timing in
  let entry =
    match Hashtbl.find_opt t.apt pc with
    | Some e -> e
    | None ->
      let e = Profiling { iters = 0; cycles = 0; last_taken = -1 } in
      Hashtbl.replace t.apt pc e;
      e
  in
  let reprofile_if_stale uses =
    (* Future-work extension (Section II-E): optionally reconsider a
       decision after it has served a number of dynamic loop instances. *)
    match t.adaptive.reconsider_after with
    | Some n when uses >= n ->
      if Trace.enabled t.trace Decisions then
        Trace.event t.trace Decisions
          "xloop@%d: decision stale after %d instances; re-profiling" pc
          uses;
      Hashtbl.replace t.apt pc
        (Profiling { iters = 0; cycles = 0; last_taken = -1 })
    | _ -> ()
  in
  match entry with
  | Decided ({ spec = false; _ } as d) ->
    (* A traditional instance completes when the xloop falls through. *)
    if not ev.taken then begin
      d.uses <- d.uses + 1;
      reprofile_if_stale d.uses
    end
  | Decided ({ spec = true; _ } as d) ->
    if ev.taken then begin
      (match analyze t ~pc with
       | Ok info -> specialize_fully t info
       | Error _ -> Hashtbl.replace t.apt pc (decided false));
      d.uses <- d.uses + 1;
      reprofile_if_stale d.uses
    end
  | Profiling p ->
    if not ev.taken then p.last_taken <- -1
    else begin
      if p.last_taken >= 0 then p.cycles <- p.cycles + (now - p.last_taken);
      p.last_taken <- now;
      p.iters <- p.iters + 1;
      if p.iters >= t.adaptive.profile_iters
      || p.cycles >= t.adaptive.profile_cycles then begin
        match analyze t ~pc with
        | Error _ -> Hashtbl.replace t.apt pc (decided false)
        | Ok info ->
          (* LPSU profiling phase: same number of iterations as measured
             traditionally. *)
          let budget = max 1 p.iters in
          if Trace.enabled t.trace Decisions then
            Trace.event t.trace Decisions
              "xloop@%d: GPP profile done (%d iters, %d cycles); trying                the LPSU" pc p.iters p.cycles;
          let r = run_lpsu ~stop_after:budget t info in
          let spec_faster =
            (* cycles-per-iteration comparison, cross-multiplied. *)
            r.iterations > 0
            && r.cycles * p.iters <= p.cycles * r.iterations
          in
          if r.finished then begin
            t.hart.pc <- info.xloop_pc + 1;
            Hashtbl.replace t.apt pc (decided spec_faster)
          end else if spec_faster then begin
            (* Stay on the LPSU for the rest of the loop. *)
            let r2 = run_lpsu t info in
            assert r2.finished;
            t.hart.pc <- info.xloop_pc + 1;
            Hashtbl.replace t.apt pc (decided true)
          end else begin
            (* Migrate back: the GPP finishes the remaining iterations. *)
            if Trace.enabled t.trace Decisions then
              Trace.event t.trace Decisions
                "xloop@%d: specialized slower (%d cyc / %d iters);                  migrating back to the GPP" pc r.cycles r.iterations;
            t.stats.migrations <- t.stats.migrations + 1;
            t.hart.pc <- info.body_start;
            Hashtbl.replace t.apt pc (decided false)
          end
      end
    end

(* -- Main loop --------------------------------------------------------- *)

exception Out_of_fuel

(** Execute the program to completion ([Halt]).  [fuel] bounds the number
    of GPP-committed instructions. *)
let run ?(fuel = 500_000_000) t : result =
  (try
     let steps = ref 0 in
     while true do
       if !steps > fuel then raise Out_of_fuel;
       incr steps;
       let ev = Exec.step t.prog t.hart (Exec.direct_mem t.mem) in
       if Trace.enabled t.trace Insns then
         Trace.event t.trace Insns "[%7d] gpp      %4d: %a"
           (Gpp_timing.now t.timing) ev.pc
           Xloops_isa.Insn.pp_resolved ev.insn;
       Gpp_timing.consume t.timing ev;
       (match ev.insn with
        | Xloop (_, _, _, _) when t.cfg.Config.lpsu <> None ->
          if ev.taken then t.stats.iterations <- t.stats.iterations + 1;
          (match t.mode with
           | Traditional -> ()
           | Specialized ->
             if ev.taken then
               (match analyze t ~pc:ev.pc with
                | Ok info -> specialize_fully t info
                | Error _ -> ())
           | Adaptive ->
             (* Both edges matter: taken drives profiling/decisions,
                fall-through marks the end of a dynamic instance. *)
             adaptive_step t ~pc:ev.pc ev)
        | Xloop _ when ev.taken ->
          t.stats.iterations <- t.stats.iterations + 1
        | _ -> ())
     done
   with Exec.Halted -> ());
  Gpp_timing.barrier t.timing;
  { cycles = Gpp_timing.now t.timing;
    insns = t.stats.committed_insns;
    stats = t.stats }

(** One-call convenience: build a machine and run [prog] on [mem]. *)
let simulate ?adaptive ?lpsu_fuel ?trace ?entry ?fuel ~cfg ~mode prog mem
  : result =
  let t = create ?adaptive ?lpsu_fuel ?trace ~cfg ~mode ~prog ~mem
      ?entry () in
  run ?fuel t
