(** Execution tracing (the gem5-style debug view): a callback plus a
    verbosity level; emission is free when disabled. *)

type level =
  | Decisions  (** loop-level: scans, decisions, migrations, completions *)
  | Lanes      (** + per-lane dispatch/commit/squash/drain/CIB/bound *)
  | Insns      (** + every instruction issued (very verbose) *)

type t

val create : ?level:level -> ?limit:int -> (string -> unit) -> t
(** [limit] stops emission after that many lines (0 = unlimited). *)

val to_buffer : ?level:level -> ?limit:int -> Buffer.t -> t
val to_stdout : ?level:level -> ?limit:int -> unit -> t

val enabled : t option -> level -> bool
(** Guard hot paths with this before formatting trace arguments. *)

val event :
  t option -> level -> ('a, Format.formatter, unit, unit) format4 -> 'a

val exhausted : t option -> bool
