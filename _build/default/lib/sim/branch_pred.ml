(** Bimodal branch predictor (2-bit saturating counters, BTB assumed to
    always hit) used by the out-of-order GPP timing model. *)

type t = {
  counters : int array;   (* 0..3; >=2 predicts taken *)
  mask : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let create ?(entries = 1024) () =
  (* Initialize weakly-taken: loop back-edges predict well immediately,
     like a BTB-resident backward-taken heuristic. *)
  { counters = Array.make entries 2; mask = entries - 1;
    lookups = 0; mispredicts = 0 }

(** [predict_update t ~pc ~taken] returns [true] if the prediction was
    correct, updating the counter. *)
let predict_update t ~pc ~taken =
  t.lookups <- t.lookups + 1;
  let i = pc land t.mask in
  let c = t.counters.(i) in
  let predicted = c >= 2 in
  t.counters.(i) <-
    (if taken then min 3 (c + 1) else max 0 (c - 1));
  let correct = predicted = taken in
  if not correct then t.mispredicts <- t.mispredicts + 1;
  correct

let mispredicts t = t.mispredicts
let lookups t = t.lookups
