(** Execution tracing — the debug view a cycle-level simulator ships
    with (gem5's --debug-flags, PyMTL's line traces).

    A trace is a callback plus a verbosity level; the machine and the
    LPSU emit through {!event} only when the level admits the event, so
    tracing costs nothing when disabled.

    - [Decisions]: loop-level events only — scans, specialize/fallback
      decisions, adaptive profiling verdicts, migrations, loop
      completions;
    - [Lanes]: adds per-lane microarchitectural events — dispatches,
      commits, squashes, drains, CIB traffic, dynamic-bound updates;
    - [Insns]: adds every instruction issued by every lane and the GPP
      (very verbose). *)

type level = Decisions | Lanes | Insns

let level_rank = function Decisions -> 0 | Lanes -> 1 | Insns -> 2

type t = {
  level : level;
  emit : string -> unit;
  mutable lines : int;
  limit : int;   (** stop emitting after this many lines; 0 = unlimited *)
}

let create ?(level = Decisions) ?(limit = 0) emit =
  { level; emit; lines = 0; limit }

(** Trace to a [Buffer] (used by the tests). *)
let to_buffer ?level ?limit buf =
  create ?level ?limit (fun s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n')

(** Trace to stdout. *)
let to_stdout ?level ?limit () = create ?level ?limit print_endline

(** Cheap guard for hot paths: call sites test [enabled] before
    formatting anything, so a disabled trace costs one comparison. *)
let enabled (t : t option) lvl =
  match t with
  | Some tr ->
    level_rank lvl <= level_rank tr.level
    && (tr.limit = 0 || tr.lines < tr.limit)
  | None -> false

(** [event t lvl fmt] emits one line when [t] admits [lvl] and the line
    budget is not exhausted.  (Prefer [if enabled .. then event ..] on
    hot paths: the format arguments are evaluated either way.) *)
let event (t : t option) lvl fmt =
  match t with
  | Some tr
    when level_rank lvl <= level_rank tr.level
      && (tr.limit = 0 || tr.lines < tr.limit) ->
    tr.lines <- tr.lines + 1;
    Fmt.kstr tr.emit fmt
  | _ -> Fmt.kstr (fun _ -> ()) fmt

let exhausted = function
  | Some tr -> tr.limit > 0 && tr.lines >= tr.limit
  | None -> false
