(** Machine configurations (the paper's Table III).

    A {!machine} is a GPP (in-order or out-of-order) optionally augmented
    with an LPSU.  The named constructors at the bottom build the six
    configurations the paper evaluates — [io], [ooo2], [ooo4] and their
    [+x] variants — plus the Figure 9 design-space points. *)

open Xloops_isa

type gpp_kind =
  | Inorder                                  (** single-issue, 5-stage *)
  | Ooo of { width : int; window : int }     (** superscalar out-of-order *)

type gpp = {
  kind : gpp_kind;
  l1_size : int;            (** bytes, both I and D *)
  l1_ways : int;
  l1_line : int;
  load_use_latency : int;   (** cycles from issue to value ready, on a hit *)
  miss_penalty : int;       (** extra cycles on an L1 miss *)
  branch_penalty : int;     (** taken-branch bubble (io) / redirect (ooo) *)
  mul_latency : int;
  div_latency : int;
  fpu_latency : int;
}

type lpsu = {
  lanes : int;
  ib_entries : int;         (** loop instruction buffer capacity per LPSU *)
  idq_entries : int;        (** index-queue entries per lane *)
  lsq_loads : int;          (** LSQ load entries per lane *)
  lsq_stores : int;         (** LSQ store entries per lane *)
  mem_ports : int;          (** shared data-memory ports *)
  llfu_ports : int;         (** shared long-latency functional units *)
  threads_per_lane : int;   (** 1, or 2 for vertical multithreading *)
  lane_issue_width : int;
      (** instructions a lane may issue per cycle (the paper's
          "superscalar lane microarchitectures" future work; 1 =
          the evaluated simple in-order lanes) *)
  inter_lane_fwd : bool;
      (** allow speculative loads to forward from older lanes' LSQs
          (Section II-D's "more aggressive implementations") *)
  scan_fixed : int;         (** fixed scan-phase start-up cycles *)
  scan_per_insn : int;      (** scan cycles per instruction written *)
  supported : Insn.dpattern list; (** patterns with specialized support *)
  squash_penalty : int;     (** refill bubble after an iteration squash *)
}

type t = {
  name : string;
  gpp : gpp;
  lpsu : lpsu option;
}

(* Profiling thresholds for adaptive execution (Section IV-D: "we use 256
   iterations and 2000 cycles as thresholds for the profiling phases"). *)
type adaptive = {
  profile_iters : int;
  profile_cycles : int;
  apt_entries : int;
  reconsider_after : int option;
      (** re-enter profiling after this many dynamic loop instances have
          used a decision (the paper's future-work "reconsider the
          profiling results"); [None] = decide once, as in the paper *)
}

let default_adaptive = { profile_iters = 256; profile_cycles = 2000;
                         apt_entries = 16; reconsider_after = None }

let all_patterns = Insn.[ Uc; Or; Om; Orm; Ua ]

let gpp_inorder = {
  kind = Inorder;
  l1_size = 16 * 1024; l1_ways = 2; l1_line = 32;
  load_use_latency = 2; miss_penalty = 20; branch_penalty = 2;
  mul_latency = 4; div_latency = 12; fpu_latency = 4;
}

let gpp_ooo width = {
  gpp_inorder with
  kind = Ooo { width; window = 16 * width };
  branch_penalty = 8;  (* pipeline-refill cost of a mispredict *)
}

let default_lpsu = {
  lanes = 4;
  ib_entries = 128;
  idq_entries = 4;
  lsq_loads = 8; lsq_stores = 8;
  mem_ports = 1; llfu_ports = 1;
  threads_per_lane = 1;
  lane_issue_width = 1;
  inter_lane_fwd = false;
  scan_fixed = 8; scan_per_insn = 1;
  supported = all_patterns;
  squash_penalty = 2;
}

let io = { name = "io"; gpp = gpp_inorder; lpsu = None }
let ooo2 = { name = "ooo/2"; gpp = gpp_ooo 2; lpsu = None }
let ooo4 = { name = "ooo/4"; gpp = gpp_ooo 4; lpsu = None }

let with_lpsu ?(lpsu = default_lpsu) base suffix =
  { base with name = base.name ^ suffix; lpsu = Some lpsu }

let io_x = with_lpsu io "+x"
let ooo2_x = with_lpsu ooo2 "+x"
let ooo4_x = with_lpsu ooo4 "+x"

(* Figure 9 design-space points, all on the ooo/4 host. *)

(** 4 lanes + 2-way vertical multithreading. *)
let ooo4_x4_t =
  with_lpsu ooo4 "+x4+t" ~lpsu:{ default_lpsu with threads_per_lane = 2 }

(** 8 lanes. *)
let ooo4_x8 =
  with_lpsu ooo4 "+x8" ~lpsu:{ default_lpsu with lanes = 8 }

(** 8 lanes + doubled memory ports and LLFUs. *)
let ooo4_x8_r =
  with_lpsu ooo4 "+x8+r"
    ~lpsu:{ default_lpsu with lanes = 8; mem_ports = 2; llfu_ports = 2 }

(** 8 lanes + doubled ports + 16+16-entry LSQs. *)
let ooo4_x8_r_m =
  with_lpsu ooo4 "+x8+r+m"
    ~lpsu:{ default_lpsu with lanes = 8; mem_ports = 2; llfu_ports = 2;
                              lsq_loads = 16; lsq_stores = 16 }

(** Inter-lane store-to-load forwarding enabled — the "more aggressive
    implementation" Section II-D sketches; not part of the paper's
    evaluated design space, benched as an ablation. *)
let io_x_fwd =
  with_lpsu io "+x+fwd" ~lpsu:{ default_lpsu with inter_lane_fwd = true }

let ooo4_x_fwd =
  with_lpsu ooo4 "+x+fwd" ~lpsu:{ default_lpsu with inter_lane_fwd = true }

(** Dual-issue lanes — the "superscalar lane" future work; benched as an
    ablation. *)
let io_x_ss2 =
  with_lpsu io "+x+ss2" ~lpsu:{ default_lpsu with lane_issue_width = 2 }

let ooo4_x_ss2 =
  with_lpsu ooo4 "+x+ss2" ~lpsu:{ default_lpsu with lane_issue_width = 2 }

let baselines = [ io; ooo2; ooo4 ]
let specialized = [ io_x; ooo2_x; ooo4_x ]
let design_space = [ ooo4_x; ooo4_x4_t; ooo4_x8; ooo4_x8_r; ooo4_x8_r_m ]
let extensions = [ io_x_fwd; ooo4_x_fwd; io_x_ss2; ooo4_x_ss2 ]

let by_name name =
  let all = baselines @ specialized @ design_space @ extensions in
  match List.find_opt (fun c -> c.name = name) all with
  | Some c -> c
  | None -> invalid_arg ("Config.by_name: unknown config " ^ name)
