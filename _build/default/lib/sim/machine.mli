(** Top-level machine: a GPP, optionally with an LPSU, executing a
    program in one of the paper's three execution modes.

    - {b Traditional}: [xloop] as a branch, [.xi] as an add — the whole
      program runs on the GPP.
    - {b Specialized}: taking an [xloop] back-edge triggers the scan
      phase and hands the remaining iterations to the LPSU; loops the
      LPSU cannot handle (oversized body, unsupported pattern, calls)
      fall back to traditional execution.
    - {b Adaptive}: an adaptive profiling table (APT) indexed by the
      [xloop] PC measures traditional throughput, then specialized
      throughput over the same number of iterations, and commits to the
      winner (Section II-E); profiling stretches across dynamic
      instances, and losing loops migrate back to the GPP. *)

type mode = Traditional | Specialized | Adaptive

val mode_name : mode -> string
(** "T" / "S" / "A", as in Table II's column heads. *)

type result = {
  cycles : int;
  insns : int;        (** dynamically committed instructions *)
  stats : Stats.t;
}

type t

val create :
  ?adaptive:Config.adaptive ->
  ?lpsu_fuel:int ->
  ?trace:Trace.t ->
  cfg:Config.t -> mode:mode ->
  prog:Xloops_asm.Program.t -> mem:Xloops_mem.Memory.t ->
  ?entry:int -> unit -> t
(** Raises [Invalid_argument] if [mode] needs an LPSU and [cfg] has
    none. *)

exception Out_of_fuel

val run : ?fuel:int -> t -> result
(** Execute to [Halt]. *)

val simulate :
  ?adaptive:Config.adaptive -> ?lpsu_fuel:int -> ?trace:Trace.t ->
  ?entry:int -> ?fuel:int ->
  cfg:Config.t -> mode:mode ->
  Xloops_asm.Program.t -> Xloops_mem.Memory.t -> result
(** One-call convenience: {!create} + {!run}. *)
