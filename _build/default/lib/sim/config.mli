(** Machine configurations (Table III): a GPP (in-order or out-of-order)
    optionally augmented with a loop-pattern specialization unit. *)

type gpp_kind =
  | Inorder
  | Ooo of { width : int; window : int }

type gpp = {
  kind : gpp_kind;
  l1_size : int;
  l1_ways : int;
  l1_line : int;
  load_use_latency : int;
  miss_penalty : int;
  branch_penalty : int;
  mul_latency : int;
  div_latency : int;
  fpu_latency : int;
}

type lpsu = {
  lanes : int;
  ib_entries : int;        (** loop instruction buffer capacity *)
  idq_entries : int;
  lsq_loads : int;         (** LSQ load entries per lane *)
  lsq_stores : int;
  mem_ports : int;
  llfu_ports : int;
  threads_per_lane : int;  (** 2 = vertical multithreading (Fig. 9) *)
  lane_issue_width : int;  (** superscalar lanes (future work); 1 = paper *)
  inter_lane_fwd : bool;
      (** speculative loads may forward from older lanes' LSQs *)
  scan_fixed : int;
  scan_per_insn : int;
  supported : Xloops_isa.Insn.dpattern list;
  squash_penalty : int;
}

type t = {
  name : string;
  gpp : gpp;
  lpsu : lpsu option;
}

(** Adaptive-execution profiling thresholds (Section IV-D: 256
    iterations / 2000 cycles). *)
type adaptive = {
  profile_iters : int;
  profile_cycles : int;
  apt_entries : int;
  reconsider_after : int option;
      (** re-profile after this many instances used a decision (paper
          future work); [None] = decide once *)
}

val default_adaptive : adaptive
val all_patterns : Xloops_isa.Insn.dpattern list

val gpp_inorder : gpp
val gpp_ooo : int -> gpp
val default_lpsu : lpsu

(** {1 The paper's configurations} *)

val io : t
val ooo2 : t
val ooo4 : t
val io_x : t
val ooo2_x : t
val ooo4_x : t

val with_lpsu : ?lpsu:lpsu -> t -> string -> t
(** [with_lpsu base suffix] attaches an LPSU and appends [suffix] to the
    name. *)

(** {1 Figure 9 design-space points (all on the ooo/4 host)} *)

(** + 2-way vertical multithreading *)
val ooo4_x4_t : t

(** 8 lanes *)
val ooo4_x8 : t

(** 8 lanes + 2x memory/LLFU ports *)
val ooo4_x8_r : t

(** 8 lanes + 2x ports + 16+16 LSQs *)
val ooo4_x8_r_m : t

(** Inter-lane store-to-load forwarding ablations (not in the paper's
    evaluated space). *)
val io_x_fwd : t
val ooo4_x_fwd : t

(** Dual-issue ("superscalar") lanes, another future-work ablation. *)
val io_x_ss2 : t
val ooo4_x_ss2 : t

val baselines : t list
val specialized : t list
val design_space : t list
val extensions : t list

val by_name : string -> t
(** Raises [Invalid_argument] on unknown names. *)
