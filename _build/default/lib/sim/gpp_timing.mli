(** GPP timing models, consuming the committed-instruction event stream
    of {!Exec.step}:

    - in-order: a single-issue scoreboard (taken-branch bubbles,
      load-use latency, unpipelined divider, L1 miss penalties);
    - out-of-order: the classic windowed-dataflow model (dispatch bounded
      by width and reorder window; issue on operand readiness; loads wait
      on same-word stores; AMOs and fences serialize memory; bimodal
      branch prediction with redirect-at-resolve).

    This is the paper's gem5 altitude: cycle-approximate, honest about
    where ILP comes from. *)

type latencies = {
  alu : int; mul : int; div : int; fpu : int; load_use : int; amo : int;
}

val latencies_of : Config.gpp -> latencies
val insn_class_latency : latencies -> int Xloops_isa.Insn.t -> int

module Inorder : sig
  type t
  val create : Config.gpp -> Stats.t -> t
  val consume : t -> Exec.event -> unit
  val now : t -> int
  val barrier : t -> unit
  val skip_to : t -> int -> unit
  val count_exec_events : Stats.t -> int Xloops_isa.Insn.t -> unit
  (** Shared per-instruction event accounting (decode, RF, FU class),
      also used by the LPSU lanes. *)
end

module Ooo : sig
  type t
  val create : Config.gpp -> Stats.t -> t
  val consume : t -> Exec.event -> unit
  val now : t -> int
  val barrier : t -> unit
  val skip_to : t -> int -> unit
end

(** Uniform front door over both models. *)
type t = In_order of Inorder.t | Out_of_order of Ooo.t

val create : Config.gpp -> Stats.t -> t

val consume : t -> Exec.event -> unit
(** Account one committed instruction. *)

val now : t -> int
(** Current cycle estimate (retire time of the newest instruction). *)

val barrier : t -> unit
(** Drain the pipeline (before a specialized phase / at halt). *)

val skip_to : t -> int -> unit
(** Jump the clock forward (after a specialized phase). *)

val l1d : t -> Xloops_mem.Cache.t
(** The GPP's L1 data cache — shared with the LPSU (Figure 4). *)

val scan_cycles : t -> Config.lpsu -> body_insns:int -> int
(** Scan-phase cost; an out-of-order GPP overlaps part of the scan with
    draining earlier work (Section II-D). *)
