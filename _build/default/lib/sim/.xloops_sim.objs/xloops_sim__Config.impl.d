lib/sim/config.ml: Insn List Xloops_isa
