lib/sim/config.mli: Xloops_isa
