lib/sim/trace.mli: Buffer Format
