lib/sim/gpp_timing.ml: Array Branch_pred Config Exec Hashtbl Insn List Reg Stats Xloops_isa Xloops_mem
