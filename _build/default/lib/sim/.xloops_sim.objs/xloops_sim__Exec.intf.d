lib/sim/exec.mli: Xloops_asm Xloops_isa Xloops_mem
