lib/sim/lpsu.mli: Config Scan Stats Trace Xloops_asm Xloops_isa Xloops_mem
