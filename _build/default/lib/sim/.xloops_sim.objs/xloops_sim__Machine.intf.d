lib/sim/machine.mli: Config Stats Trace Xloops_asm Xloops_mem
