lib/sim/branch_pred.ml: Array
