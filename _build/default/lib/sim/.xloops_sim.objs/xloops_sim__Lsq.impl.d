lib/sim/lsq.ml: Insn Int32 List Xloops_isa Xloops_mem
