lib/sim/lsq.mli: Xloops_isa Xloops_mem
