lib/sim/scan.mli: Config Format Xloops_asm Xloops_isa
