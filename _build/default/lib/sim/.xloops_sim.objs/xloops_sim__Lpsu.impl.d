lib/sim/lpsu.ml: Array Config Exec Gpp_timing Insn Int32 List Lsq Printf Reg Result Scan Stats Trace Xloops_asm Xloops_isa Xloops_mem
