lib/sim/machine.ml: Config Exec Gpp_timing Hashtbl List Lpsu Printf Scan Stats Trace Xloops_asm Xloops_isa Xloops_mem
