lib/sim/gpp_timing.mli: Config Exec Stats Xloops_isa Xloops_mem
