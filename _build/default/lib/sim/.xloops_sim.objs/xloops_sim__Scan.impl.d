lib/sim/scan.ml: Array Config Fmt Insn Int32 List Reg Xloops_asm Xloops_isa
