lib/sim/exec.ml: Array Float Insn Int32 Int64 Printf Reg Xloops_asm Xloops_isa Xloops_mem
