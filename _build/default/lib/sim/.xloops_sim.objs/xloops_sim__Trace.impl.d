lib/sim/trace.ml: Buffer Fmt
