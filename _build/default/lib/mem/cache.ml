(** Set-associative cache timing model (tags only — data lives in
    {!Memory}).  Used for the 16 KB L1 instruction and data caches of the
    GPP (Table III / Section V-A: datasets are tailored to fit in the L1,
    so the model mainly classifies cold misses and the occasional conflict
    miss).  Writeback/write-allocate with LRU replacement. *)

type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  tags : int array array;       (* [set].(way) = tag, -1 invalid *)
  lru : int array array;        (* higher = more recently used *)
  mutable tick : int;
  mutable accesses : int;
  mutable misses : int;
}

let create ?(size_bytes = 16 * 1024) ?(ways = 2) ?(line_bytes = 32) () =
  let lines = size_bytes / line_bytes in
  let sets = lines / ways in
  if sets <= 0 then invalid_arg "Cache.create: too small";
  { sets; ways; line_bytes;
    tags = Array.init sets (fun _ -> Array.make ways (-1));
    lru = Array.init sets (fun _ -> Array.make ways 0);
    tick = 0; accesses = 0; misses = 0 }

(** [access t addr] returns [true] on hit.  On a miss the line is filled
    (victim chosen by LRU). *)
let access t addr =
  t.accesses <- t.accesses + 1;
  t.tick <- t.tick + 1;
  let line = addr / t.line_bytes in
  let set = line mod t.sets in
  let tag = line / t.sets in
  let tags = t.tags.(set) and lru = t.lru.(set) in
  let rec find w = if w >= t.ways then None
    else if tags.(w) = tag then Some w else find (w + 1) in
  match find 0 with
  | Some w -> lru.(w) <- t.tick; true
  | None ->
    t.misses <- t.misses + 1;
    (* Fill into the least-recently-used way. *)
    let victim = ref 0 in
    for w = 1 to t.ways - 1 do
      if lru.(w) < lru.(!victim) then victim := w
    done;
    tags.(!victim) <- tag;
    lru.(!victim) <- t.tick;
    false

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0
  else float_of_int t.misses /. float_of_int t.accesses

let reset_counters t =
  t.accesses <- 0; t.misses <- 0
