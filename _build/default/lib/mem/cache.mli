(** Set-associative cache timing model (tags only; data lives in
    {!Memory}).  Writeback/write-allocate with LRU replacement; used for
    the 16 KB L1 I/D caches of Table III. *)

type t

val create : ?size_bytes:int -> ?ways:int -> ?line_bytes:int -> unit -> t
(** Defaults: 16 KiB, 2-way, 32-byte lines. *)

val access : t -> int -> bool
(** [access t addr] returns [true] on a hit; on a miss the line is
    filled (LRU victim). *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float
val reset_counters : t -> unit
