(** Byte-addressable little-endian main memory with atomic memory
    operations — the architectural memory shared by the GPP and all LPSU
    lanes (speculative stores live in per-lane LSQs until commit). *)

exception Bad_access of { addr : int; what : string }
(** Raised on out-of-range or misaligned accesses. *)

type t = {
  data : Bytes.t;
  size : int;
  mutable loads : int;   (** architectural load count (energy model) *)
  mutable stores : int;
  mutable amos : int;
}

val create : ?size:int -> unit -> t
(** Default size 1 MiB, zero-filled. *)

val size : t -> int

(** {1 Raw accessors} (dataset setup / checking; not event-counted) *)

val get_u8 : t -> int -> int
val set_u8 : t -> int -> int -> unit
val get_u16 : t -> int -> int
val set_u16 : t -> int -> int -> unit
val get_i32 : t -> int -> int32
val set_i32 : t -> int -> int32 -> unit
val get_int : t -> int -> int
val set_int : t -> int -> int -> unit
val get_f32 : t -> int -> float
val set_f32 : t -> int -> float -> unit

(** {1 Architectural accessors} (event-counted) *)

val load : t -> Xloops_isa.Insn.width -> int -> int32
(** Sign/zero-extends according to the width. *)

val store : t -> Xloops_isa.Insn.width -> int -> int32 -> unit

val amo : t -> Xloops_isa.Insn.amo_op -> int -> int32 -> int32
(** Atomic read-modify-write on a word; returns the old value. *)

val width_bytes : Xloops_isa.Insn.width -> int

(** {1 Bulk helpers} *)

val blit_int_array : t -> addr:int -> int array -> unit
val read_int_array : t -> addr:int -> n:int -> int array
val blit_f32_array : t -> addr:int -> float array -> unit
val read_f32_array : t -> addr:int -> n:int -> float array
val blit_bytes : t -> addr:int -> int array -> unit
val read_bytes : t -> addr:int -> n:int -> int array

val reset_counters : t -> unit
