lib/mem/port.ml:
