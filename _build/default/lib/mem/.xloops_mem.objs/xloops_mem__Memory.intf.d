lib/mem/memory.mli: Bytes Xloops_isa
