lib/mem/port.mli:
