lib/mem/cache.mli:
