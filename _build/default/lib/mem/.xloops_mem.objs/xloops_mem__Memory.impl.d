lib/mem/memory.ml: Array Bytes Char Insn Int32 Xloops_isa
