(** Binary encoding of resolved instructions into 32-bit words.

    Fixed 32-bit format: 6-bit opcode, 5-bit register fields, signed
    16-bit immediates.  Branch and [xloop] targets encode as signed
    PC-relative instruction offsets; jumps use 26-bit absolute
    instruction addresses.  [to_word]/[of_word] round-trip exactly for
    programs within these ranges (property-tested in the test suite). *)

exception Encoding_error of string

val to_word : int -> int Insn.t -> int32
(** [to_word pc insn] encodes [insn] located at instruction address
    [pc].  Raises {!Encoding_error} on out-of-range immediates or
    offsets. *)

val of_word : int -> int32 -> int Insn.t
(** [of_word pc word] decodes [word] located at [pc].  Raises
    {!Encoding_error} on unknown opcodes. *)

val encode_program : int Insn.t array -> int32 array
val decode_program : int32 array -> int Insn.t array
