(** Architectural registers of the XLOOPS base ISA: a unified 32-entry
    register file shared by integer and floating-point instructions,
    with register 0 hard-wired to zero. *)

type t = int
(** A register specifier in [\[0, 31\]]. *)

val num_regs : int

val zero : t
(** Always reads 0; writes are discarded. *)

(** {1 ABI names}

    [ra] return address, [sp] spill-area base, [at] assembler temporary,
    [a0]..[a3] arguments, [t0]..[t7] temporaries, [s0]..[s13] the
    register allocator's pool, [k0]/[k1] spill scratch. *)

val ra : t
val sp : t
val at : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val k0 : t
val k1 : t

val alloc_first : t
(** First register available to the register allocator (s0). *)

val alloc_last : t
(** Last register available to the register allocator (s13). *)

val is_valid : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val name : t -> string
(** Software name ("t3", "s0", "zero", ...); raises [Invalid_argument]
    on an out-of-range specifier. *)

val of_name : string -> t
(** Inverse of {!name}; also accepts raw "rN".  Raises
    [Invalid_argument] on unknown names. *)

val pp : Format.formatter -> t -> unit
