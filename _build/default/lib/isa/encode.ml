(** Binary encoding of resolved instructions into 32-bit words.

    The encoding is a fixed 32-bit format in the spirit of the paper's
    MIPS-like base ISA:

    {v
      [31:26] opcode
      [25:21] rd
      [20:16] rs
      [15:11] rt
      [15:0]  imm16 (I-type; overlaps rt for R-type)
      [10:0]  funct (R-type)
      [25:0]  imm26 (J-type)
    v}

    Branch and xloop targets are encoded as signed 16-bit offsets relative
    to the instruction's own address (in instruction words); jumps use
    26-bit absolute instruction addresses.  Round-tripping through
    [to_word]/[of_word] is exact for programs within these ranges, which is
    property-tested in the test suite. *)

exception Encoding_error of string

let err fmt = Fmt.kstr (fun s -> raise (Encoding_error s)) fmt

let alu_ops =
  [| Insn.Add; Sub; And; Or_; Xor; Nor; Sll; Srl; Sra; Slt; Sltu;
     Mul; Mulh; Div; Rem |]

let fpu_ops =
  [| Insn.Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax; Feq; Flt; Fle;
     Fcvt_sw; Fcvt_ws |]

let widths = [| Insn.B; Bu; H; Hu; W |]

let amo_ops =
  [| Insn.Amo_add; Amo_and; Amo_or; Amo_xchg; Amo_min; Amo_max |]

let branch_conds = [| Insn.Beq; Bne; Blt; Bge; Bltu; Bgeu |]

let dpatterns = [| Insn.Uc; Or; Om; Orm; Ua |]

let index_of arr x eq what =
  let n = Array.length arr in
  let rec go i =
    if i >= n then err "unknown %s" what
    else if eq arr.(i) x then i
    else go (i + 1)
  in
  go 0

(* Opcode space. *)
let op_alu = 0x00
let op_fpu = 0x02
let op_lui = 0x03
let op_load = 0x04 (* .. 0x08, width in opcode *)
let op_store = 0x09 (* .. 0x0D *)
let op_amo = 0x0E
let op_alui = 0x10 (* .. 0x1E, alu op in opcode *)
let op_branch = 0x20 (* .. 0x25, cond in opcode *)
let op_jump = 0x26
let op_jal = 0x27
let op_jr = 0x28
let op_xi_addi = 0x2A
let op_xi_add = 0x2B
let op_sync = 0x2C
let op_halt = 0x2D
let op_nop = 0x2E
let op_xloop = 0x30 (* .. 0x3E, pattern in opcode: dp*3 + cp *)

let check_reg r = if not (Reg.is_valid r) then err "bad register %d" r

let check_imm16 imm =
  if imm < -32768 || imm > 32767 then err "imm16 out of range: %d" imm

let check_uimm16 imm =
  if imm < 0 || imm > 65535 then err "uimm16 out of range: %d" imm

let sext16 v = if v land 0x8000 <> 0 then v - 0x10000 else v

let pack_r op rd rs rt funct =
  check_reg rd; check_reg rs; check_reg rt;
  Int32.of_int
    ((op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor (rt lsl 11) lor funct)

let pack_i op rd rs imm =
  check_reg rd; check_reg rs;
  Int32.of_int
    ((op lsl 26) lor (rd lsl 21) lor (rs lsl 16) lor (imm land 0xFFFF))

let pack_j op target =
  if target < 0 || target >= 1 lsl 26 then err "jump target out of range";
  Int32.of_int ((op lsl 26) lor target)

(** [to_word pc insn] encodes [insn], located at instruction address [pc],
    as a 32-bit word. *)
let to_word pc (i : int Insn.t) : int32 =
  let rel l =
    let off = l - pc in
    check_imm16 off; off
  in
  match i with
  | Alu (op, rd, rs, rt) ->
    pack_r op_alu rd rs rt (index_of alu_ops op Insn.equal_alu_op "alu op")
  | Alui (op, rd, rs, imm) ->
    check_imm16 imm;
    pack_i (op_alui + index_of alu_ops op Insn.equal_alu_op "alu op") rd rs imm
  | Fpu (op, rd, rs, rt) ->
    pack_r op_fpu rd rs rt (index_of fpu_ops op Insn.equal_fpu_op "fpu op")
  | Lui (rd, imm) -> check_uimm16 imm; pack_i op_lui rd 0 imm
  | Load (w, rd, rs, imm) ->
    check_imm16 imm;
    pack_i (op_load + index_of widths w Insn.equal_width "width") rd rs imm
  | Store (w, rt, rs, imm) ->
    check_imm16 imm;
    pack_i (op_store + index_of widths w Insn.equal_width "width") rt rs imm
  | Amo (op, rd, rs, rt) ->
    pack_r op_amo rd rs rt (index_of amo_ops op Insn.equal_amo_op "amo op")
  | Branch (c, rs, rt, l) ->
    pack_i (op_branch + index_of branch_conds c Insn.equal_branch_cond "cond")
      rs rt (rel l)
  | Jump l -> pack_j op_jump l
  | Jal l -> pack_j op_jal l
  | Jr rs -> pack_i op_jr 0 rs 0
  | Xloop ({ dp; cp }, rs, rt, l) ->
    let dpi = index_of dpatterns dp Insn.equal_dpattern "dpattern" in
    let cpi = match cp with Insn.Fixed -> 0 | Dyn -> 1 | De -> 2 in
    pack_i (op_xloop + (dpi * 3) + cpi) rs rt (rel l)
  | Xi_addi (rd, rs, imm) -> check_imm16 imm; pack_i op_xi_addi rd rs imm
  | Xi_add (rd, rs, rt) -> pack_r op_xi_add rd rs rt 0
  | Sync -> pack_i op_sync 0 0 0
  | Halt -> pack_i op_halt 0 0 0
  | Nop -> pack_i op_nop 0 0 0

(** [of_word pc w] decodes word [w] located at instruction address [pc].
    Raises [Encoding_error] on an unknown opcode. *)
let of_word pc (w : int32) : int Insn.t =
  let w = Int32.to_int w land 0xFFFFFFFF in
  let op = (w lsr 26) land 0x3F in
  let rd = (w lsr 21) land 0x1F in
  let rs = (w lsr 16) land 0x1F in
  let rt = (w lsr 11) land 0x1F in
  let funct = w land 0x7FF in
  let imm16 = sext16 (w land 0xFFFF) in
  let uimm16 = w land 0xFFFF in
  let imm26 = w land 0x3FFFFFF in
  let idx arr i what = if i < Array.length arr then arr.(i)
    else err "bad %s index %d" what i in
  if op = op_alu then Alu (idx alu_ops funct "alu", rd, rs, rt)
  else if op = op_fpu then Fpu (idx fpu_ops funct "fpu", rd, rs, rt)
  else if op = op_lui then Lui (rd, uimm16)
  else if op >= op_load && op < op_load + 5 then
    Load (idx widths (op - op_load) "width", rd, rs, imm16)
  else if op >= op_store && op < op_store + 5 then
    Store (idx widths (op - op_store) "width", rd, rs, imm16)
  else if op = op_amo then Amo (idx amo_ops funct "amo", rd, rs, rt)
  else if op >= op_alui && op < op_alui + Array.length alu_ops then
    Alui (alu_ops.(op - op_alui), rd, rs, imm16)
  else if op >= op_branch && op < op_branch + 6 then
    Branch (branch_conds.(op - op_branch), rd, rs, pc + imm16)
  else if op = op_jump then Jump imm26
  else if op = op_jal then Jal imm26
  else if op = op_jr then Jr rs
  else if op = op_xi_addi then Xi_addi (rd, rs, imm16)
  else if op = op_xi_add then Xi_add (rd, rs, rt)
  else if op = op_sync then Sync
  else if op = op_halt then Halt
  else if op = op_nop then Nop
  else if op >= op_xloop && op < op_xloop + 15 then begin
    let k = op - op_xloop in
    let dp = idx dpatterns (k / 3) "dpattern" in
    let cp = match k mod 3 with
      | 0 -> Insn.Fixed | 1 -> Dyn | _ -> De in
    Xloop ({ dp; cp }, rd, rs, pc + imm16)
  end
  else err "unknown opcode 0x%02x" op

(** Encode a whole program; instruction [i] lives at address [i]. *)
let encode_program (prog : int Insn.t array) : int32 array =
  Array.mapi to_word prog

let decode_program (words : int32 array) : int Insn.t array =
  Array.mapi of_word words
