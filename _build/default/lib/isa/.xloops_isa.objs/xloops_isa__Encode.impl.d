lib/isa/encode.pp.ml: Array Fmt Insn Int32 Reg
