lib/isa/encode.pp.mli: Insn
