lib/isa/insn.pp.mli: Format Reg
