lib/isa/reg.pp.ml: Fmt Int Printf String
