lib/isa/insn.pp.ml: Fmt Ppx_deriving_runtime Reg String
