(** Architectural registers of the XLOOPS base ISA.

    The base ISA is a 32-bit RISC machine with a unified 32-entry register
    file shared by integer and floating-point instructions (Section III of
    the paper: "a unified register file for integer and floating-point
    instructions").  Register 0 is hard-wired to zero. *)

type t = int
(** A register specifier in [0, 31].  [r0] always reads as zero and writes
    to it are discarded. *)

let num_regs = 32

let zero = 0

(* Conventional software names, used only for disassembly and by the
   compiler's register allocator.  The ABI is deliberately simple:
   r0        zero
   r1        return address (ra)
   r2        stack pointer (sp)
   r3        assembler/linker temporary (at)
   r4..r7    argument registers (a0..a3)
   r8..r15   caller-saved temporaries (t0..t7)
   r16..r29  allocatable (s0..s13)
   r30..r31  reserved scratch for spills (k0..k1) *)

let ra = 1
let sp = 2
let at = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15

(** First and last register available to the register allocator. *)
let alloc_first = 16

let alloc_last = 29

let k0 = 30
let k1 = 31

let is_valid r = r >= 0 && r < num_regs

let equal : t -> t -> bool = Int.equal
let compare : t -> t -> int = Int.compare

let name r =
  if not (is_valid r) then invalid_arg "Reg.name"
  else if r = 0 then "zero"
  else if r = 1 then "ra"
  else if r = 2 then "sp"
  else if r = 3 then "at"
  else if r >= 4 && r <= 7 then Printf.sprintf "a%d" (r - 4)
  else if r >= 8 && r <= 15 then Printf.sprintf "t%d" (r - 8)
  else if r >= 16 && r <= 29 then Printf.sprintf "s%d" (r - 16)
  else Printf.sprintf "k%d" (r - 30)

let pp ppf r = Fmt.string ppf (name r)

let of_name s =
  let starts p = String.length s > String.length p
                 && String.sub s 0 (String.length p) = p in
  let suffix p = int_of_string (String.sub s (String.length p)
                                  (String.length s - String.length p)) in
  match s with
  | "zero" -> 0
  | "ra" -> 1
  | "sp" -> 2
  | "at" -> 3
  | _ when starts "a" -> 4 + suffix "a"
  | _ when starts "t" -> 8 + suffix "t"
  | _ when starts "s" -> 16 + suffix "s"
  | _ when starts "k" -> 30 + suffix "k"
  | _ when starts "r" -> suffix "r"
  | _ -> invalid_arg ("Reg.of_name: " ^ s)
