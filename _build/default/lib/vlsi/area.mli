(** Analytic post-place-and-route area and cycle-time model for the LPSU
    (Section V, Table V), standing in for the paper's 40 nm Synopsys
    flow + CACTI.  Calibrated to Table V's anchors: 0.25 mm^2 GPP,
    +43%-class overhead for the primary 4-lane/128-entry LPSU, roughly
    linear area in lanes, weak dependence on instruction-buffer size, and
    cycle time growing from ~1.98 ns (2 lanes) to ~2.54 ns (8 lanes). *)

type mm2 = float

type area_breakdown = {
  gpp_logic : mm2;
  gpp_icache : mm2;
  gpp_dcache : mm2;
  lmu : mm2;               (** LMU, index queues, arbiters *)
  lanes : mm2;
  instr_buffers : mm2;
  lsq : mm2;
  total : mm2;
}

val gpp_area : mm2
val gpp_cycle_time_ns : float

val area : Xloops_sim.Config.lpsu -> area_breakdown
val overhead : Xloops_sim.Config.lpsu -> float
(** Fractional overhead relative to the bare GPP. *)

val cycle_time_ns : Xloops_sim.Config.lpsu -> float

val rtl_lpsu : ib_entries:int -> lanes:int -> Xloops_sim.Config.lpsu
(** The basic RTL LPSU of Section V: [xloop.uc] only, no LSQs. *)

type table_v_row = {
  name : string;
  ct_ns : float;
  total_mm2 : mm2;
  rel_area : float;
  lpsu : Xloops_sim.Config.lpsu;
}

val table_v_configs : (string * Xloops_sim.Config.lpsu) list
val table_v : unit -> table_v_row list
val pp_table_v : Format.formatter -> table_v_row list -> unit
