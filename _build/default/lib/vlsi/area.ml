(** Analytic post-place-and-route area and cycle-time model for the LPSU
    (Section V, Table V), standing in for the paper's Synopsys 40 nm
    flow + CACTI SRAMs.

    The model is calibrated to the anchor points Table V reports:

    - baseline five-stage GPP with 16 KB I$ + 16 KB D$: 0.25 mm^2;
    - GPP + lpsu+i128+ln4: 0.36 mm^2 ("only 43% larger");
    - area overhead 24%..77% as lanes go 2..8 at i128 (roughly linear in
      the number of lanes);
    - area overhead 41%..48% as the instruction buffer goes 96..192
      entries at 4 lanes (a weak dependence);
    - cycle time growing from ~1.98 ns (2 lanes) to ~2.54 ns (8 lanes),
      with a small instruction-buffer contribution. *)

module Config = Xloops_sim.Config

type mm2 = float

type area_breakdown = {
  gpp_logic : mm2;
  gpp_icache : mm2;
  gpp_dcache : mm2;
  lmu : mm2;               (** LMU, index queues, arbiters *)
  lanes : mm2;             (** lane datapaths and register files *)
  instr_buffers : mm2;
  lsq : mm2;
  total : mm2;
}

(* Calibrated coefficients (mm^2, 40 nm). *)
let gpp_logic_area = 0.10
let cache_area_per_16k = 0.075
let lmu_area = 0.0167
let lane_area = 0.0138
let ib_area_per_entry_per_lane = 0.000052
let lsq_area_per_entry_per_lane = 0.00008

let gpp_area =
  gpp_logic_area +. (2.0 *. cache_area_per_16k)

let area (l : Config.lpsu) : area_breakdown =
  let lanes_f = float_of_int l.lanes in
  let lanes_a = lanes_f *. lane_area in
  let ib =
    lanes_f *. float_of_int l.ib_entries *. ib_area_per_entry_per_lane in
  let lsq =
    lanes_f *. float_of_int (l.lsq_loads + l.lsq_stores)
    *. lsq_area_per_entry_per_lane
  in
  let total = gpp_area +. lmu_area +. lanes_a +. ib +. lsq in
  { gpp_logic = gpp_logic_area;
    gpp_icache = cache_area_per_16k;
    gpp_dcache = cache_area_per_16k;
    lmu = lmu_area; lanes = lanes_a; instr_buffers = ib; lsq;
    total }

(** Fractional area overhead of the LPSU relative to the bare GPP. *)
let overhead (l : Config.lpsu) = (area l).total /. gpp_area -. 1.0

(* Cycle time (ns): lane count stresses the shared-port arbitration and
   broadcast networks; instruction buffer size stresses the fetch path. *)
let gpp_cycle_time_ns = 1.95

let cycle_time_ns (l : Config.lpsu) =
  1.80 +. (0.09 *. float_of_int l.lanes)
  +. (0.0009 *. float_of_int (l.ib_entries - 128))

(** The Table V configuration sweep: vary the instruction buffer at 4
    lanes, then the lane count at 128 entries.  The basic RTL LPSU
    supports only [xloop.uc] (Section V-A) and has no LSQs. *)
let rtl_lpsu ~ib_entries ~lanes : Config.lpsu =
  { Config.default_lpsu with
    ib_entries; lanes;
    lsq_loads = 0; lsq_stores = 0;
    supported = [ Xloops_isa.Insn.Uc ] }

let table_v_configs =
  [ ("lpsu+i096+ln4", rtl_lpsu ~ib_entries:96 ~lanes:4);
    ("lpsu+i128+ln4", rtl_lpsu ~ib_entries:128 ~lanes:4);
    ("lpsu+i160+ln4", rtl_lpsu ~ib_entries:160 ~lanes:4);
    ("lpsu+i192+ln4", rtl_lpsu ~ib_entries:192 ~lanes:4);
    ("lpsu+i128+ln2", rtl_lpsu ~ib_entries:128 ~lanes:2);
    ("lpsu+i128+ln6", rtl_lpsu ~ib_entries:128 ~lanes:6);
    ("lpsu+i128+ln8", rtl_lpsu ~ib_entries:128 ~lanes:8) ]

type table_v_row = {
  name : string;
  ct_ns : float;
  total_mm2 : mm2;
  rel_area : float;       (** total / gpp *)
  lpsu : Config.lpsu;
}

let table_v () =
  { name = "scalar"; ct_ns = gpp_cycle_time_ns; total_mm2 = gpp_area;
    rel_area = 1.0; lpsu = rtl_lpsu ~ib_entries:0 ~lanes:0 }
  :: List.map
    (fun (name, l) ->
       (* The RTL LPSU has no LSQ area (uc only). *)
       let a = area l in
       let total = a.total -. a.lsq in
       { name; ct_ns = cycle_time_ns l; total_mm2 = total;
         rel_area = total /. gpp_area; lpsu = l })
    table_v_configs

let pp_table_v ppf rows =
  Fmt.pf ppf "%-16s %6s %8s %8s@." "config" "CT(ns)" "mm^2" "area/GPP";
  List.iter
    (fun r ->
       Fmt.pf ppf "%-16s %6.2f %8.3f %8.2f@."
         r.name r.ct_ns r.total_mm2 r.rel_area)
    rows
