lib/vlsi/area.ml: Fmt List Xloops_isa Xloops_sim
