lib/vlsi/area.mli: Format Xloops_sim
