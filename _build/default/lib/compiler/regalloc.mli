(** Register allocation: instruction-level liveness followed by linear
    scan with whole-range spilling.

    Live ranges are conservative linearized intervals; a value live
    around a loop back-edge covers the whole loop, so a cross-iteration
    register or [.xi] pointer keeps its physical register to itself for
    the entire [xloop] body — exactly what the hardware's scan-phase
    bit-vector analysis needs to rediscover it.

    Spill slots live in memory off the reserved {!Xloops_isa.Reg.sp};
    {!Compile} rejects spill {e stores} inside xloop bodies. *)

exception Too_many_spills of string

val pool : Xloops_isa.Reg.t list
(** The allocatable physical registers (t0..t7, s0..s13). *)

val num_pool : int

type location = Phys of Xloops_isa.Reg.t | Slot of int

type allocation = {
  loc : location array;   (** indexed by vreg *)
  num_slots : int;
}

val liveness : Ir.instr array -> num_vregs:int -> int array array
(** Per-instruction live-in bitsets (63 vregs per word), from backward
    dataflow over the flat instruction array. *)

type interval = { v : int; i_start : int; i_end : int }

val intervals : Ir.instr array -> num_vregs:int -> interval list

val allocate : Ir.instr array -> num_vregs:int -> allocation

val rewrite : Ir.instr array -> allocation -> Ir.instr list
(** Physical-register code with spill loads/stores through the [k0]/[k1]
    scratch registers. *)

val run : Ir.instr list -> num_vregs:int -> Ir.instr list * int
(** [allocate] + [rewrite]; returns the code and the spill-slot count. *)
