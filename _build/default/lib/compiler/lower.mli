(** Lowering from Loopc to the virtual-register IR: annotated loops
    become fall-into [xloop] regions with the pattern chosen by
    {!Analysis}; loop strength reduction turns affine subscripts into
    incremented pointers ([.xi] inside annotated loops when the target
    allows, suppressed entirely there when it does not); loop-invariant
    address computation hoists to preheaders; dynamic bounds re-evaluate
    at the end of the body. *)

exception Compile_error of string

type target = {
  xloops : bool;  (** emit xloop/.xi; false = general-purpose ISA *)
  use_xi : bool;  (** allow .xi strength reduction in annotated loops *)
}

val general : target
val xloops_isa : target
val xloops_no_xi : target

type array_info = { ai_base : int; ai_ty : Ast.ty }

type lowered = {
  ir : Ir.instr list;
  num_vregs : int;
  xloop_regions : (string * string) list;
}

val lower_kernel :
  target:target -> arrays:(string * array_info) list -> Ast.kernel ->
  lowered
(** Raises {!Compile_error} on unbound names, type mismatches, or
    unsupported constructs. *)
