(** Compiler driver: Loopc kernel -> assembled program, through constant
    inlining, lowering (+ pattern selection and [.xi] strength
    reduction), linear-scan register allocation and code generation. *)

type target = Lower.target = { xloops : bool; use_xi : bool }

val general : target
(** The general-purpose ISA: annotated loops become plain branch loops —
    the serial baselines of Table II. *)

val xloops : target
(** Full XLOOPS ISA with [.xi] strength reduction. *)

val xloops_no_xi : target
(** XLOOPS without [.xi] — the paper's RTL/VLSI evaluation mode, which
    disables [.xi] generation in loop strength reduction and recomputes
    addresses instead (Section V-A). *)

exception Error of string

type compiled = {
  program : Xloops_asm.Program.t;
  layout : Xloops_asm.Layout.t;
  array_base : string -> int;       (** data address of an array *)
  spill_slots : int;
  target : target;
  kernel : Ast.kernel;
}

val compile : ?target:target -> ?layout:Xloops_asm.Layout.t ->
  Ast.kernel -> compiled
(** Raises {!Error} on unbound names, type errors, or register pressure
    that would require spill stores inside an [xloop] body (spill slots
    are shared memory; lanes would race on them). *)

val check_no_spill_stores_in_xloops : Xloops_asm.Program.t -> unit

val xloop_bodies : Xloops_asm.Program.t -> (int * int * int) list
(** (body start pc, xloop pc, static body length) per [xloop] — the
    Table II loop statistics. *)
