(** Dependence analysis and pattern selection (Section II-B of the
    paper): classifies [ordered] loops into [xloop.{or,om,orm}] from
    register use-def structure and ZIV/SIV/GCD subscript tests, detects
    dynamically-raised bounds, and trusts [unordered]/[atomic]
    annotations as the paper does. *)

(** [a*i + rest] where [rest] does not mention [i]. *)
type linear = { coeff : int; rest : Ast.expr }

val mentions : string -> Ast.expr -> bool

val linear_in : string -> Ast.expr -> linear option
(** Linear-form extraction; [None] when the expression is not affine in
    the variable. *)

val const_eval : Ast.expr -> int option
(** Constant folding over [+,-,*,<<]. *)

type access = {
  acc_array : string;
  acc_index : Ast.expr;
  acc_write : bool;
  acc_atomic : bool;
}

type scalar_use = First_read | First_write

type body_summary = {
  accesses : access list;
  scalar_first : (string * scalar_use) list;
      (** outer scalars with the kind of their first possible access on
          some path (branch joins intersect must-written sets; loop
          bodies may run zero times and never shield later reads) *)
  scalars_written : string list;
  arrays_written : string list;
  has_inner_loop : bool;
}

val summarize : Ast.block -> body_summary

val cross_iteration_dep : var:string -> Ast.expr -> Ast.expr -> bool
(** Conservative cross-iteration dependence test between two subscripts
    of the same array: ZIV when both are invariant, strong SIV on equal
    coefficients (distance-0 pairs are intra-iteration only), a GCD test
    on mismatched coefficients, and [true] for anything non-affine. *)

val array_has_dep : var:string -> body_summary -> string -> bool
(** W-R, R-W and W-W pairs, skipping atomic-vs-atomic pairs (AMOs don't
    order a loop by themselves). *)

type classification = {
  pattern : Xloops_isa.Insn.xpat;
  cir_scalars : string list;   (** loop-carried scalars (become CIRs) *)
  dep_arrays : string list;
  dynamic_bound : bool;
}

val carried_scalars : index:string -> body_summary -> string list
val bound_is_dynamic : Ast.for_loop -> body_summary -> bool

val classify : Ast.for_loop -> classification
(** [ordered] with no surviving dependence decays to the least
    restrictive pattern, [uc]. *)

val classify_de : Ast.for_de -> classification
(** Same data-pattern selection for a data-dependent-exit loop; the
    control pattern is always [De]. *)
