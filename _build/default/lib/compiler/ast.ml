(** Loopc: the small typed loop language the XLOOPS kernels are written in.

    Loopc plays the role of the paper's annotated C kernels: structured
    loops over statically-sized arrays, with [#pragma xloops
    unordered/ordered/atomic] annotations attached to [For] loops.  The
    compiler ({!Compile}) lowers it to the XLOOPS ISA (or to the plain
    general-purpose ISA for the baseline binaries), running the paper's
    analysis passes on the way:

    - pattern selection: [ordered] loops are classified into
      [xloop.{or,om,orm}] by register and memory dependence analysis
      ({!Analysis}); annotated loops whose bound grows get the [.db]
      suffix;
    - loop strength reduction that emits [.xi] instructions for mutual
      induction variables.

    The language is deliberately small: scalars are [int] or [float32],
    arrays are 1-D with [u8]/[u16]/[i32]/[f32] elements (multi-dimensional
    arrays are indexed manually, as in the paper's kernels), and control
    flow is [for]/[while]/[if]. *)

type ty = U8 | U16 | I32 | F32

let ty_name = function U8 -> "u8" | U16 -> "u16" | I32 -> "i32" | F32 -> "f32"

let elem_bytes = function U8 -> 1 | U16 -> 2 | I32 | F32 -> 4

(** Scalar value type: arrays of [U8]/[U16]/[I32] produce [Int] scalars. *)
type sty = Int | Flt

let sty_of_ty = function U8 | U16 | I32 -> Int | F32 -> Flt

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr | Sar
  | Lt | Le | Gt | Ge | Eq | Ne
  | Min | Max

type amo_kind = Aadd | Aand | Aor | Axchg | Amin | Amax

type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Load of string * expr                  (** arr[e] *)
  | Bin of binop * expr * expr
  | Amo of amo_kind * string * expr * expr (** amo(arr, idx, v): old value *)
  | Cvt_if of expr                         (** int -> float *)
  | Cvt_fi of expr                         (** float -> int (trunc) *)

type pragma = Unordered | Ordered | Atomic

type stmt =
  | Decl of string * expr            (** let x = e — scoped local *)
  | Assign of string * expr
  | Store of string * expr * expr    (** arr[e1] = e2 *)
  | If of expr * block * block
  | While of expr * block
  | For of for_loop
  | For_de of for_de
      (** counted loop with a data-dependent exit: the body runs at
          least once, then continues while [de_cond] holds (evaluated at
          the end of each iteration) — the paper's future-work [.de]
          control pattern *)

and block = stmt list

and for_loop = {
  index : string;
  lo : expr;
  hi : expr;   (** re-evaluated when the body updates what it reads *)
  pragma : pragma option;
  body : block;
}

and for_de = {
  de_index : string;
  de_lo : expr;
  de_cond : expr;          (** continue while true, checked post-body *)
  de_pragma : pragma option;
  de_body : block;
}

type array_decl = { a_name : string; a_ty : ty; a_len : int }

type kernel = {
  k_name : string;
  arrays : array_decl list;
  (** Compile-time integer parameters usable as [Var] in the body. *)
  consts : (string * int) list;
  k_body : block;
}

(** [for_ i lo hi ?pragma body] — a counted loop from [lo] (inclusive) to
    [hi] (exclusive) with unit step. *)
let for_ ?pragma index lo hi body = For { index; lo; hi; pragma; body }

(** [for_de i lo cond body] — a do-while-style counted loop that keeps
    iterating while [cond] (evaluated after each iteration) holds. *)
let for_de ?pragma de_index de_lo de_cond de_body =
  For_de { de_index; de_lo; de_cond; de_pragma = pragma; de_body }

(** Infix constructors for writing kernels.  Open locally
    ([Ast.Syntax.(...)]) — the operators shadow the integer ones. *)
module Syntax = struct
  let ( + ) a b = Bin (Add, a, b)
  let ( - ) a b = Bin (Sub, a, b)
  let ( * ) a b = Bin (Mul, a, b)
  let ( / ) a b = Bin (Div, a, b)
  let ( % ) a b = Bin (Rem, a, b)
  let ( < ) a b = Bin (Lt, a, b)
  let ( <= ) a b = Bin (Le, a, b)
  let ( > ) a b = Bin (Gt, a, b)
  let ( >= ) a b = Bin (Ge, a, b)
  let ( = ) a b = Bin (Eq, a, b)
  let ( <> ) a b = Bin (Ne, a, b)
  let ( land ) a b = Bin (And, a, b)
  let ( lor ) a b = Bin (Or, a, b)
  let ( lxor ) a b = Bin (Xor, a, b)
  let ( lsl ) a b = Bin (Shl, a, b)
  let ( lsr ) a b = Bin (Shr, a, b)
  let ( asr ) a b = Bin (Sar, a, b)
  let i n = Int n
  let v name = Var name
  let ( .%[] ) arr e = Load (arr, e)
  let min_ a b = Bin (Min, a, b)
  let max_ a b = Bin (Max, a, b)
  let for_ = for_
  let for_de = for_de
end

(* -- Pretty printer ---------------------------------------------------- *)

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^" | Shl -> "<<" | Shr -> ">>" | Sar -> ">>a"
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=" | Eq -> "==" | Ne -> "!="
  | Min -> "min" | Max -> "max"

let amo_name = function
  | Aadd -> "amo_add" | Aand -> "amo_and" | Aor -> "amo_or"
  | Axchg -> "amo_xchg" | Amin -> "amo_min" | Amax -> "amo_max"

let rec pp_expr ppf : expr -> unit = function
  | Int n -> Fmt.int ppf n
  | Flt f -> Fmt.float ppf f
  | Var s -> Fmt.string ppf s
  | Load (a, e) -> Fmt.pf ppf "%s[%a]" a pp_expr e
  | Bin ((Min | Max) as o, a, b) ->
    Fmt.pf ppf "%s(%a, %a)" (binop_name o) pp_expr a pp_expr b
  | Bin (o, a, b) ->
    Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_name o) pp_expr b
  | Amo (k, a, idx, v) ->
    Fmt.pf ppf "%s(%s, %a, %a)" (amo_name k) a pp_expr idx pp_expr v
  | Cvt_if e -> Fmt.pf ppf "(float)%a" pp_expr e
  | Cvt_fi e -> Fmt.pf ppf "(int)%a" pp_expr e

let pragma_name = function
  | Unordered -> "unordered" | Ordered -> "ordered" | Atomic -> "atomic"

let rec pp_stmt ppf = function
  | Decl (x, e) -> Fmt.pf ppf "let %s = %a;" x pp_expr e
  | Assign (x, e) -> Fmt.pf ppf "%s = %a;" x pp_expr e
  | Store (a, idx, e) ->
    Fmt.pf ppf "%s[%a] = %a;" a pp_expr idx pp_expr e
  | If (c, t, []) ->
    Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,}" pp_expr c pp_block t
  | If (c, t, e) ->
    Fmt.pf ppf "@[<v 2>if %a {@,%a@]@,@[<v 2>} else {@,%a@]@,}"
      pp_expr c pp_block t pp_block e
  | While (c, b) ->
    Fmt.pf ppf "@[<v 2>while %a {@,%a@]@,}" pp_expr c pp_block b
  | For f ->
    (match f.pragma with
     | Some p -> Fmt.pf ppf "#pragma xloops %s@," (pragma_name p)
     | None -> ());
    Fmt.pf ppf "@[<v 2>for %s in %a .. %a {@,%a@]@,}"
      f.index pp_expr f.lo pp_expr f.hi pp_block f.body
  | For_de f ->
    (match f.de_pragma with
     | Some p -> Fmt.pf ppf "#pragma xloops %s@," (pragma_name p)
     | None -> ());
    Fmt.pf ppf "@[<v 2>for %s from %a while %a {@,%a@]@,}"
      f.de_index pp_expr f.de_lo pp_expr f.de_cond pp_block f.de_body

and pp_block ppf b = Fmt.(list ~sep:cut pp_stmt) ppf b

let pp_kernel ppf k =
  Fmt.pf ppf "@[<v>kernel %s@," k.k_name;
  List.iter
    (fun a -> Fmt.pf ppf "array %s : %s[%d]@," a.a_name (ty_name a.a_ty)
        a.a_len)
    k.arrays;
  List.iter (fun (n, v) -> Fmt.pf ppf "const %s = %d@," n v) k.consts;
  Fmt.pf ppf "%a@]" pp_block k.k_body

(* -- Constant inlining --------------------------------------------------- *)

(** Substitute the kernel's compile-time constants into the body, so the
    dependence tests and strength reduction see real coefficients (e.g.
    [a[i*n + j]] becomes affine once [n] is a literal).  Shadowing a
    constant with a local or a loop index is rejected. *)
let subst_consts (k : kernel) : kernel =
  let bound = List.map fst k.consts in
  let check_shadow x =
    if List.mem x bound then
      invalid_arg ("Loopc: local '" ^ x ^ "' shadows a kernel constant")
  in
  let rec expr (e : expr) =
    match e with
    | Int _ | Flt _ -> e
    | Var s ->
      (match List.assoc_opt s k.consts with
       | Some c -> Int c
       | None -> e)
    | Load (a, idx) -> Load (a, expr idx)
    | Bin (o, a, b) -> Bin (o, expr a, expr b)
    | Amo (op, a, idx, value) -> Amo (op, a, expr idx, expr value)
    | Cvt_if e -> Cvt_if (expr e)
    | Cvt_fi e -> Cvt_fi (expr e)
  in
  let rec stmt = function
    | Decl (x, e) -> check_shadow x; Decl (x, expr e)
    | Assign (x, e) -> check_shadow x; Assign (x, expr e)
    | Store (a, idx, e) -> Store (a, expr idx, expr e)
    | If (c, t, e) -> If (expr c, List.map stmt t, List.map stmt e)
    | While (c, b) -> While (expr c, List.map stmt b)
    | For f ->
      check_shadow f.index;
      For { f with lo = expr f.lo; hi = expr f.hi;
                   body = List.map stmt f.body }
    | For_de f ->
      check_shadow f.de_index;
      For_de { f with de_lo = expr f.de_lo; de_cond = expr f.de_cond;
                      de_body = List.map stmt f.de_body }
  in
  { k with k_body = List.map stmt k.k_body; consts = [] }

(* -- Structural helpers used by the analyses --------------------------- *)

let rec expr_vars acc = function
  | Int _ | Flt _ -> acc
  | Var s -> s :: acc
  | Load (_, e) | Cvt_if e | Cvt_fi e -> expr_vars acc e
  | Bin (_, a, b) -> expr_vars (expr_vars acc a) b
  | Amo (_, _, i, v) -> expr_vars (expr_vars acc i) v

let rec expr_arrays acc = function
  | Int _ | Flt _ | Var _ -> acc
  | Load (a, e) -> expr_arrays (a :: acc) e
  | Cvt_if e | Cvt_fi e -> expr_arrays acc e
  | Bin (_, a, b) -> expr_arrays (expr_arrays acc a) b
  | Amo (_, a, i, v) -> expr_arrays (expr_arrays (a :: acc) i) v

let rec expr_equal (a : expr) (b : expr) =
  match a, b with
  | Int x, Int y -> Stdlib.( = ) x y
  | Flt x, Flt y -> Stdlib.( = ) x y
  | Var x, Var y -> String.equal x y
  | Load (x, e1), Load (y, e2) -> String.equal x y && expr_equal e1 e2
  | Bin (o1, a1, b1), Bin (o2, a2, b2) ->
    Stdlib.( = ) o1 o2 && expr_equal a1 a2 && expr_equal b1 b2
  | Amo (k1, x, i1, v1), Amo (k2, y, i2, v2) ->
    Stdlib.( = ) k1 k2 && String.equal x y && expr_equal i1 i2
    && expr_equal v1 v2
  | Cvt_if e1, Cvt_if e2 | Cvt_fi e1, Cvt_fi e2 -> expr_equal e1 e2
  | _ -> false
