(** Dependence analysis and pattern selection (Section II-B).

    For a loop annotated [ordered] the programmer does not say whether the
    inter-iteration dependence flows through registers, memory or both; the
    compiler decides:

    - {b register dependences} are found on the AST use-def structure: a
      scalar declared outside the loop that is (possibly) read before it is
      written inside the body carries a value between iterations — it will
      live in a cross-iteration register (CIR);
    - {b memory dependences} use the classic ZIV/SIV subscript tests on
      affine subscripts [a*i + b] of the loop index, with a GCD test for
      mismatched coefficients and conservative answers for everything the
      tests cannot prove independent;
    - loops whose {b bound} is recomputed from state the body updates are
      classified dynamic-bound ([.db]).

    [unordered] and [atomic] annotations are trusted, as in the paper. *)

open Ast

(* -- Linear-form extraction ------------------------------------------- *)

(** [a*i + rest] where [rest] does not mention [i]; [None] if [e] is not
    linear in [i]. *)
type linear = { coeff : int; rest : expr }

let rec mentions var = function
  | Int _ | Flt _ -> false
  | Var s -> String.equal s var
  | Load (_, e) | Cvt_if e | Cvt_fi e -> mentions var e
  | Bin (_, a, b) -> mentions var a || mentions var b
  | Amo (_, _, i, v) -> mentions var i || mentions var v

let rec linear_in var (e : expr) : linear option =
  match e with
  | Int _ | Flt _ -> Some { coeff = 0; rest = e }
  | Var s when String.equal s var -> Some { coeff = 1; rest = Int 0 }
  | Var _ -> Some { coeff = 0; rest = e }
  | Bin (Add, a, b) ->
    (match linear_in var a, linear_in var b with
     | Some la, Some lb ->
       Some { coeff = la.coeff + lb.coeff; rest = Bin (Add, la.rest, lb.rest) }
     | _ -> None)
  | Bin (Sub, a, b) ->
    (match linear_in var a, linear_in var b with
     | Some la, Some lb ->
       Some { coeff = la.coeff - lb.coeff; rest = Bin (Sub, la.rest, lb.rest) }
     | _ -> None)
  | Bin (Mul, a, Int c) | Bin (Mul, Int c, a) ->
    (match linear_in var a with
     | Some la ->
       Some { coeff = la.coeff * c; rest = Bin (Mul, la.rest, Int c) }
     | None -> None)
  | Bin (Shl, a, Int c) ->
    (match linear_in var a with
     | Some la ->
       Some { coeff = la.coeff * (1 lsl c);
              rest = Bin (Shl, la.rest, Int c) }
     | None -> None)
  | _ -> if mentions var e then None else Some { coeff = 0; rest = e }

(** Constant-fold an expression to an integer if possible. *)
let rec const_eval : expr -> int option = function
  | Int n -> Some n
  | Bin (op, a, b) ->
    (match const_eval a, const_eval b, op with
     | Some x, Some y, Add -> Some (x + y)
     | Some x, Some y, Sub -> Some (x - y)
     | Some x, Some y, Mul -> Some (x * y)
     | Some x, Some y, Shl -> Some (x lsl y)
     | _ -> None)
  | _ -> None

(* -- Access collection -------------------------------------------------- *)

type access = {
  acc_array : string;
  acc_index : expr;
  acc_write : bool;
  acc_atomic : bool;
}

type scalar_use = First_read | First_write

(** Everything the dependence tests need to know about a loop body. *)
type body_summary = {
  accesses : access list;
  (* Scalars declared *outside* the body, with the kind of their first
     (possible) access on some path through the body. *)
  scalar_first : (string * scalar_use) list;
  scalars_written : string list;
  arrays_written : string list;
  has_inner_loop : bool;
}

module S = Set.Make (String)

(** Walk the body tracking, per program point, the set of scalars that
    {e must} have been written on every path so far.  A read of a scalar
    not in that set may observe the previous iteration's value
    ("read-first").  Branch joins intersect the must-written sets; loop
    bodies ([While], nested [For]) may execute zero times, so their writes
    never shield later reads. *)
let summarize (body : block) : body_summary =
  let accesses = ref [] in
  let read_first = ref S.empty in
  let written = ref S.empty in
  let arrays_w = ref S.empty in
  let inner = ref false in
  let rec expr ~locals ~must (e : expr) =
    match e with
    | Int _ | Flt _ -> ()
    | Var s ->
      if not (S.mem s locals) && not (S.mem s must) then
        read_first := S.add s !read_first
    | Load (a, idx) ->
      expr ~locals ~must idx;
      accesses := { acc_array = a; acc_index = idx; acc_write = false;
                    acc_atomic = false } :: !accesses
    | Bin (_, a, b) -> expr ~locals ~must a; expr ~locals ~must b
    | Amo (_, a, idx, value) ->
      expr ~locals ~must idx; expr ~locals ~must value;
      accesses := { acc_array = a; acc_index = idx; acc_write = true;
                    acc_atomic = true } :: !accesses;
      arrays_w := S.add a !arrays_w
    | Cvt_if e | Cvt_fi e -> expr ~locals ~must e
  in
  (* Returns (locals, must) after the statement. *)
  let rec stmt (locals, must) = function
    | Decl (x, e) ->
      expr ~locals ~must e;
      (S.add x locals, must)
    | Assign (x, e) ->
      expr ~locals ~must e;
      if not (S.mem x locals) then written := S.add x !written;
      (locals, S.add x must)
    | Store (a, idx, e) ->
      expr ~locals ~must idx; expr ~locals ~must e;
      accesses := { acc_array = a; acc_index = idx; acc_write = true;
                    acc_atomic = false } :: !accesses;
      arrays_w := S.add a !arrays_w;
      (locals, must)
    | If (c, t, e) ->
      expr ~locals ~must c;
      let _, must_t = block (locals, must) t in
      let _, must_e = block (locals, must) e in
      (locals, S.inter must_t must_e)
    | While (c, b) ->
      expr ~locals ~must c;
      (* May run zero times: its writes don't shield later reads. *)
      ignore (block (locals, must) b);
      (locals, must)
    | For f ->
      inner := true;
      expr ~locals ~must f.lo; expr ~locals ~must f.hi;
      ignore (block (S.add f.index locals, must) f.body);
      (locals, must)
    | For_de f ->
      inner := true;
      expr ~locals ~must f.de_lo;
      let locals' = S.add f.de_index locals in
      ignore (block (locals', must) f.de_body);
      expr ~locals:locals' ~must f.de_cond;
      (locals, must)
  and block st stmts = List.fold_left stmt st stmts in
  ignore (block (S.empty, S.empty) body);
  let scalar_first =
    S.fold (fun s acc -> (s, First_read) :: acc) !read_first []
    @ S.fold
      (fun s acc ->
         if S.mem s !read_first then acc else (s, First_write) :: acc)
      !written []
  in
  { accesses = List.rev !accesses;
    scalar_first;
    scalars_written = S.elements !written;
    arrays_written = S.elements !arrays_w;
    has_inner_loop = !inner }

(* -- Dependence tests --------------------------------------------------- *)

(** Conservative cross-iteration dependence test between two subscripts of
    the same array, relative to loop index [var].  Returns [true] when a
    dependence between *different* iterations cannot be ruled out. *)
let cross_iteration_dep ~var (e1 : expr) (e2 : expr) : bool =
  match linear_in var e1, linear_in var e2 with
  | None, _ | _, None -> true                      (* nonlinear: assume *)
  | Some l1, Some l2 ->
    let b1 = const_eval l1.rest and b2 = const_eval l2.rest in
    if l1.coeff = 0 && l2.coeff = 0 then begin
      (* ZIV: both subscripts loop-invariant. *)
      match b1, b2 with
      | Some x, Some y -> x = y   (* same fixed cell touched every iter *)
      | _ -> true                 (* unknown offsets: assume dependence *)
    end
    else if l1.coeff = l2.coeff then begin
      (* Strong SIV: dependence distance d = (b2-b1)/a. *)
      if expr_equal l1.rest l2.rest then false  (* distance 0: intra only *)
      else
        match b1, b2 with
        | Some x, Some y ->
          let d = y - x in
          d <> 0 && d mod l1.coeff = 0
        | _ -> true
    end
    else begin
      (* Mismatched coefficients: GCD test when both offsets constant. *)
      match b1, b2 with
      | Some x, Some y ->
        let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
        let g = gcd (l1.coeff - l2.coeff) (gcd l1.coeff l2.coeff) in
        g = 0 || (y - x) mod g = 0
      | _ -> true
    end

(** Does array [a] carry a cross-iteration memory dependence in this body?
    Checks write-read, read-write and write-write pairs.  Atomic accesses
    ([Amo]) never create an *ordering* requirement by themselves — that is
    the whole point of AMOs — so pairs where both sides are atomic are
    skipped. *)
let array_has_dep ~var (summary : body_summary) a =
  let accs = List.filter (fun x -> String.equal x.acc_array a)
      summary.accesses in
  let pairs = List.concat_map
      (fun x -> List.filter_map
          (fun y ->
             if (x.acc_write || y.acc_write)
             && not (x.acc_atomic && y.acc_atomic)
             then Some (x, y) else None)
          accs)
      accs
  in
  List.exists
    (fun (x, y) -> cross_iteration_dep ~var x.acc_index y.acc_index)
    pairs

(* -- Pattern selection --------------------------------------------------- *)

type classification = {
  pattern : Xloops_isa.Insn.xpat;
  cir_scalars : string list;   (** loop-carried scalars (become CIRs) *)
  dep_arrays : string list;    (** arrays carrying memory dependences *)
  dynamic_bound : bool;
}

(** Scalars carried between iterations: declared outside, possibly read
    before written, and written in the body.  The loop index is excluded
    (handled by the induction machinery). *)
let carried_scalars ~index (s : body_summary) =
  List.filter_map
    (fun (name, first) ->
       if String.equal name index then None
       else if first = First_read && List.mem name s.scalars_written
       then Some name
       else None)
    s.scalar_first

(** Is the loop bound recomputed from state the body updates? *)
let bound_is_dynamic (f : for_loop) (s : body_summary) =
  let hi_vars = expr_vars [] f.hi in
  let hi_arrays = expr_arrays [] f.hi in
  List.exists (fun v -> List.mem v s.scalars_written) hi_vars
  || List.exists (fun a -> List.mem a s.arrays_written) hi_arrays

let classify (f : for_loop) : classification =
  let s = summarize f.body in
  let dynamic_bound = bound_is_dynamic f s in
  let cp : Xloops_isa.Insn.cpattern = if dynamic_bound then Dyn else Fixed in
  match f.pragma with
  | None ->
    { pattern = { dp = Uc; cp };  (* unreachable for serial loops *)
      cir_scalars = []; dep_arrays = []; dynamic_bound }
  | Some Unordered ->
    { pattern = { dp = Uc; cp }; cir_scalars = []; dep_arrays = [];
      dynamic_bound }
  | Some Atomic ->
    { pattern = { dp = Ua; cp }; cir_scalars = []; dep_arrays = [];
      dynamic_bound }
  | Some Ordered ->
    let cirs = carried_scalars ~index:f.index s in
    let dep_arrays =
      List.sort_uniq String.compare
        (List.filter (fun a -> array_has_dep ~var:f.index s a)
           (List.sort_uniq String.compare
              (List.map (fun x -> x.acc_array) s.accesses)))
    in
    let dp : Xloops_isa.Insn.dpattern =
      match cirs, dep_arrays with
      | [], [] -> Uc       (* provably independent: least restrictive *)
      | _ :: _, [] -> Or
      | [], _ :: _ -> Om
      | _ :: _, _ :: _ -> Orm
    in
    { pattern = { dp; cp }; cir_scalars = cirs; dep_arrays; dynamic_bound }

(** Classification for a data-dependent-exit loop: the data pattern is
    selected exactly as for a counted loop (the continue condition counts
    as body reads), and the control pattern is always [De]. *)
let classify_de (f : for_de) : classification =
  let pseudo : for_loop =
    { index = f.de_index; lo = f.de_lo; hi = Int 0; pragma = f.de_pragma;
      body = f.de_body @ [ Decl ("$cond", f.de_cond) ] }
  in
  let c = classify pseudo in
  { c with pattern = { c.pattern with cp = De }; dynamic_bound = false }
