(** Virtual-register intermediate representation.

    A flat instruction list over unlimited virtual registers; vreg 0 is
    pinned to the architectural zero register.  The register allocator
    ({!Regalloc}) rewrites vregs to physical registers (inserting spill
    code), after which {!Codegen} maps each instruction 1:1 onto the
    assembler. *)

open Xloops_isa

type vreg = int

let vzero : vreg = 0

type instr =
  | Li of vreg * int32
  | Alu of Insn.alu_op * vreg * vreg * vreg
  | Alui of Insn.alu_op * vreg * vreg * int
  | Fpu of Insn.fpu_op * vreg * vreg * vreg
  | Load of Insn.width * vreg * vreg * int
  | Store of Insn.width * vreg * vreg * int
  | Amo of Insn.amo_op * vreg * vreg * vreg
  | Br of Insn.branch_cond * vreg * vreg * string
  | Jmp of string
  | Label of string
  | Xloop of Insn.xpat * vreg * vreg * string
  | Xi_addi of vreg * vreg * int
  | Halt

let sources = function
  | Li _ | Jmp _ | Label _ | Halt -> []
  | Alu (_, _, a, b) | Fpu (_, _, a, b) -> [ a; b ]
  | Alui (_, _, a, _) -> [ a ]
  | Load (_, _, a, _) -> [ a ]
  | Store (_, v, a, _) -> [ a; v ]
  | Amo (_, _, a, v) -> [ a; v ]
  | Br (_, a, b, _) -> [ a; b ]
  | Xloop (_, a, b, _) -> [ a; b ]
  | Xi_addi (_, a, _) -> [ a ]

let dest = function
  | Li (d, _) | Alu (_, d, _, _) | Alui (_, d, _, _) | Fpu (_, d, _, _)
  | Load (_, d, _, _) | Amo (_, d, _, _) | Xi_addi (d, _, _) ->
    if d = vzero then None else Some d
  | Store _ | Br _ | Jmp _ | Label _ | Xloop _ | Halt -> None

(** Rewrite every register through [f] (used by the allocator). *)
let map_regs f = function
  | Li (d, v) -> Li (f d, v)
  | Alu (o, d, a, b) -> Alu (o, f d, f a, f b)
  | Alui (o, d, a, i) -> Alui (o, f d, f a, i)
  | Fpu (o, d, a, b) -> Fpu (o, f d, f a, f b)
  | Load (w, d, a, i) -> Load (w, f d, f a, i)
  | Store (w, v, a, i) -> Store (w, f v, f a, i)
  | Amo (o, d, a, v) -> Amo (o, f d, f a, f v)
  | Br (c, a, b, l) -> Br (c, f a, f b, l)
  | Jmp l -> Jmp l
  | Label l -> Label l
  | Xloop (p, a, b, l) -> Xloop (p, f a, f b, l)
  | Xi_addi (d, a, i) -> Xi_addi (f d, f a, i)
  | Halt -> Halt

let is_control = function
  | Br _ | Jmp _ | Xloop _ -> true
  | _ -> false

let branch_target = function
  | Br (_, _, _, l) | Jmp l | Xloop (_, _, _, l) -> Some l
  | _ -> None

(** Jumps unconditionally (no fall-through). *)
let is_unconditional = function Jmp _ | Halt -> true | _ -> false

let pp ppf (i : instr) =
  let r ppf v = Fmt.pf ppf "v%d" v in
  match i with
  | Li (d, v) -> Fmt.pf ppf "li %a, %ld" r d v
  | Alu (o, d, a, b) ->
    Fmt.pf ppf "%s %a, %a, %a"
      (String.lowercase_ascii (Insn.show_alu_op o)) r d r a r b
  | Alui (o, d, a, imm) ->
    Fmt.pf ppf "%si %a, %a, %d"
      (String.lowercase_ascii (Insn.show_alu_op o)) r d r a imm
  | Fpu (o, d, a, b) ->
    Fmt.pf ppf "%s %a, %a, %a"
      (String.lowercase_ascii (Insn.show_fpu_op o)) r d r a r b
  | Load (w, d, a, imm) ->
    Fmt.pf ppf "l%s %a, %d(%a)"
      (String.lowercase_ascii (Insn.show_width w)) r d imm r a
  | Store (w, v, a, imm) ->
    Fmt.pf ppf "s%s %a, %d(%a)"
      (String.lowercase_ascii (Insn.show_width w)) r v imm r a
  | Amo (o, d, a, v) ->
    Fmt.pf ppf "%s %a, (%a), %a"
      (String.lowercase_ascii (Insn.show_amo_op o)) r d r a r v
  | Br (c, a, b, l) ->
    Fmt.pf ppf "%s %a, %a, %s"
      (String.lowercase_ascii (Insn.show_branch_cond c)) r a r b l
  | Jmp l -> Fmt.pf ppf "j %s" l
  | Label l -> Fmt.pf ppf "%s:" l
  | Xloop (p, a, b, l) ->
    Fmt.pf ppf "xloop.%a %a, %a, %s" Insn.pp_xpat_suffix p r a r b l
  | Xi_addi (d, a, imm) -> Fmt.pf ppf "addiu.xi %a, %a, %d" r d r a imm
  | Halt -> Fmt.string ppf "halt"

let pp_program ppf (l : instr list) =
  List.iter (fun i -> Fmt.pf ppf "%a@." pp i) l
