(** Lowering from Loopc to the virtual-register IR.

    The interesting work mirrors the paper's compiler changes:

    - annotated [For] loops lower to the fall-into form (zero-trip guard,
      body, index update, [xloop] at the bottom) with the pattern chosen by
      {!Analysis.classify}; dynamic bounds re-evaluate the bound expression
      at the end of the body so the hardware sees the bound-register write;
    - {b loop strength reduction}: array subscripts affine in the nearest
      enclosing loop index become incremented pointers.  Inside an
      annotated loop (when the target permits [.xi]) the increment is an
      [addiu.xi] so the LPSU can compute the mutual induction variable in
      parallel; in serial loops it is a plain add; and when [.xi] is
      disabled (the paper's RTL evaluation mode) strength reduction is
      suppressed inside annotated loops, because a plain-add pointer would
      impose an inter-iteration register dependence the pattern does not
      declare — addresses are recomputed from the index instead;
    - loop-invariant subscripts get their address computation hoisted to
      the preheader. *)

open Ast

exception Compile_error of string

let err fmt = Fmt.kstr (fun s -> raise (Compile_error s)) fmt

type target = {
  xloops : bool;  (** emit xloop/.xi; false = general-purpose ISA *)
  use_xi : bool;  (** allow .xi strength reduction in annotated loops *)
}

let general = { xloops = false; use_xi = false }
let xloops_isa = { xloops = true; use_xi = true }
let xloops_no_xi = { xloops = true; use_xi = false }

type array_info = { ai_base : int; ai_ty : ty }

(* A strength-reduced pointer: [array[coeff*i + sym + const]] is addressed
   as [p + const*elem] where [p] is updated by [coeff*elem] per
   iteration. *)
type pointer = {
  p_array : string;
  p_coeff : int;
  p_sym : expr;        (* invariant symbolic remainder; Int 0 if none *)
  p_vreg : Ir.vreg;
  p_step : int;        (* byte step per iteration; 0 = hoisted invariant *)
}

type frame = {
  fr_index : string;
  fr_annotated : bool;
  fr_pointers : pointer list;
}

type env = {
  target : target;
  arrays : (string * array_info) list;
  consts : (string * int) list;
  mutable code : Ir.instr list;      (* reversed *)
  mutable next_vreg : int;
  mutable next_label : int;
  mutable scope : (string * (Ir.vreg * sty)) list;
  mutable frames : frame list;       (* innermost first *)
  mutable base_regs : (string * Ir.vreg) list;
      (** array base addresses cached in registers at kernel entry *)
  mutable annotated_regions : (string * string) list;
      (** (body label, end label) of each emitted xloop, for diagnostics *)
}

let emit env i = env.code <- i :: env.code

let fresh env =
  let v = env.next_vreg in
  env.next_vreg <- v + 1;
  v

let fresh_label env prefix =
  env.next_label <- env.next_label + 1;
  Printf.sprintf "%s_%d" prefix env.next_label

let array_info env a =
  match List.assoc_opt a env.arrays with
  | Some i -> i
  | None -> err "unknown array %s" a

let width_of_ty : ty -> Xloops_isa.Insn.width = function
  | U8 -> Bu | U16 -> Hu | I32 | F32 -> W

let shift_of_bytes = function 1 -> 0 | 2 -> 1 | 4 -> 2 | _ -> assert false

let fits_imm16 v = v >= -32768 && v <= 32767

(* -- Expressions -------------------------------------------------------- *)

let lookup_var env x =
  match List.assoc_opt x env.scope with
  | Some (v, t) -> `Reg (v, t)
  | None ->
    (match List.assoc_opt x env.consts with
     | Some c -> `Const c
     | None -> err "unbound variable %s" x)

(** Split an invariant remainder into (symbolic part, constant part). *)
let rec split_const (e : expr) : expr * int =
  match e with
  | Int c -> (Int 0, c)
  | Bin (Add, a, b) ->
    let sa, ca = split_const a and sb, cb = split_const b in
    let sym = match sa, sb with
      | Int 0, s | s, Int 0 -> s
      | _ -> Bin (Add, sa, sb)
    in
    (sym, ca + cb)
  | Bin (Sub, a, Int c) ->
    let sa, ca = split_const a in
    (sa, ca - c)
  | _ -> (e, 0)

let rec sty_of env (e : expr) : sty =
  match e with
  | Int _ -> Int
  | Flt _ -> Flt
  | Var x -> (match lookup_var env x with
      | `Reg (_, t) -> t
      | `Const _ -> Int)
  | Load (a, _) -> sty_of_ty (array_info env a).ai_ty
  | Bin ((Lt | Le | Gt | Ge | Eq | Ne), _, _) -> Int
  | Bin (_, a, b) ->
    (match sty_of env a, sty_of env b with
     | Flt, _ | _, Flt -> Flt
     | Int, Int -> Int)
  | Amo _ -> Int
  | Cvt_if _ -> Flt
  | Cvt_fi _ -> Int

let mv env d s = if d <> s then emit env (Ir.Alu (Add, d, s, Ir.vzero))

let li env d v = emit env (Ir.Li (d, Int32.of_int v))

(** The register holding [arr]'s base address (materialized once in the
    kernel prologue). *)
let base_reg env arr =
  match List.assoc_opt arr env.base_regs with
  | Some v -> v
  | None ->
    let v = fresh env in
    li env v (array_info env arr).ai_base;
    env.base_regs <- (arr, v) :: env.base_regs;
    v

(** Variables whose value changes inside [body] (assigned scalars, inner
    loop indices, locals): an expression mentioning any of them is not
    invariant in the loop. *)
let changing_vars (f : for_loop) : string list =
  let acc = ref [ f.index ] in
  let rec stmt = function
    | Decl (x, _) | Assign (x, _) -> acc := x :: !acc
    | Store _ -> ()
    | If (_, t, e) -> List.iter stmt t; List.iter stmt e
    | While (_, b) -> List.iter stmt b
    | For g ->
      acc := g.index :: !acc;
      List.iter stmt g.body
    | For_de g ->
      acc := g.de_index :: !acc;
      List.iter stmt g.de_body
  in
  List.iter stmt f.body;
  !acc

let rec expr_invariant ~changing (e : expr) =
  match e with
  | Int _ | Flt _ -> true
  | Var s -> not (List.mem s changing)
  | Bin (_, a, b) -> expr_invariant ~changing a && expr_invariant ~changing b
  | Load _ | Amo _ | Cvt_if _ | Cvt_fi _ -> false
  (* Loads are conservatively variant: the loop may write the array. *)

(** Find a strength-reduced pointer for access [arr[idx]] in the innermost
    frame.  Returns the base vreg and a byte offset. *)
let find_pointer env arr (idx : expr) : (Ir.vreg * int) option =
  match env.frames with
  | [] -> None
  | fr :: _ ->
    (match Analysis.linear_in fr.fr_index idx with
     | None -> None
     | Some { coeff; rest } ->
       let sym, cst = split_const rest in
       let elem = elem_bytes (array_info env arr).ai_ty in
       let off = cst * elem in
       if not (fits_imm16 off) then None
       else
         List.find_map
           (fun p ->
              if String.equal p.p_array arr && p.p_coeff = coeff
              && expr_equal p.p_sym sym
              then Some (p.p_vreg, off)
              else None)
           fr.fr_pointers)

let rec lower_expr env (e : expr) : Ir.vreg =
  match e with
  | Int 0 -> Ir.vzero
  | Int n -> let d = fresh env in li env d n; d
  | Flt f ->
    let d = fresh env in
    emit env (Ir.Li (d, Int32.bits_of_float f));
    d
  | Var x ->
    (match lookup_var env x with
     | `Reg (v, _) -> v
     | `Const c -> let d = fresh env in li env d c; d)
  | Load (arr, idx) ->
    let info = array_info env arr in
    let base, off = lower_address env arr idx in
    let d = fresh env in
    emit env (Ir.Load (width_of_ty info.ai_ty, d, base, off));
    d
  | Bin (op, a, b) ->
    let dest = fresh env in
    (match sty_of env a, sty_of env b with
     | Flt, Flt -> lower_float_bin env ~dest op a b
     | Int, Int -> lower_int_bin env ~dest op a b
     | _ -> err "mixed int/float operands in %s (insert a cast)"
              (binop_name op))
  | Amo (k, arr, idx, value) ->
    let info = array_info env arr in
    if elem_bytes info.ai_ty <> 4 then err "amo on non-word array %s" arr;
    let base, off = lower_address env arr idx in
    let addr =
      if off = 0 then base
      else begin
        let t = fresh env in
        emit env (Ir.Alui (Add, t, base, off));
        t
      end
    in
    let vv = lower_expr env value in
    let d = fresh env in
    let op : Xloops_isa.Insn.amo_op = match k with
      | Aadd -> Amo_add | Aand -> Amo_and | Aor -> Amo_or
      | Axchg -> Amo_xchg | Amin -> Amo_min | Amax -> Amo_max
    in
    emit env (Ir.Amo (op, d, addr, vv));
    d
  | Cvt_if e ->
    let v = lower_expr env e in
    let d = fresh env in
    emit env (Ir.Fpu (Fcvt_sw, d, v, Ir.vzero));
    d
  | Cvt_fi e ->
    let v = lower_expr env e in
    let d = fresh env in
    emit env (Ir.Fpu (Fcvt_ws, d, v, Ir.vzero));
    d

(** Address of [arr[idx]] as (base vreg, byte offset): via a
    strength-reduced pointer when one exists, otherwise computed inline
    from the index. *)
and lower_address env arr (idx : expr) : Ir.vreg * int =
  match find_pointer env arr idx with
  | Some (p, off) -> (p, off)
  | None ->
    let info = array_info env arr in
    let elem = elem_bytes info.ai_ty in
    (match Analysis.const_eval idx with
     | Some c when fits_imm16 (info.ai_base + (c * elem))
                && info.ai_base + (c * elem) >= 0 ->
       (* Constant subscript: absolute addressing off the zero register
          when it fits; otherwise materialize. *)
       let d = fresh env in
       li env d (info.ai_base + (c * elem));
       (d, 0)
     | _ ->
       let iv = lower_expr env idx in
       let scaled =
         if elem = 1 then iv
         else begin
           let t = fresh env in
           emit env (Ir.Alui (Sll, t, iv, shift_of_bytes elem));
           t
         end
       in
       let d = fresh env in
       emit env (Ir.Alu (Add, d, base_reg env arr, scaled));
       (d, 0))

and lower_int_bin env ~dest op a b : Ir.vreg =
  let d = dest in
  let imm_of e = match Analysis.const_eval e with
    | Some c when fits_imm16 c -> Some c
    | _ -> None
  in
  let bin (alu : Xloops_isa.Insn.alu_op) =
    (match imm_of b with
     | Some c
       when (match alu with
           | Add | And | Or_ | Xor | Slt | Sltu -> true | _ -> false) ->
       let va = lower_expr env a in
       emit env (Ir.Alui (alu, d, va, c))
     | _ ->
       let va = lower_expr env a in
       let vb = lower_expr env b in
       emit env (Ir.Alu (alu, d, va, vb)));
    d
  in
  let is_pow2 c = c > 0 && c land (c - 1) = 0 in
  let log2 c =
    let rec go n c = if c = 1 then n else go (n + 1) (c asr 1) in
    go 0 c
  in
  match op with
  | Add -> bin Add
  | Sub ->
    (match imm_of b with
     | Some c when fits_imm16 (-c) ->
       let va = lower_expr env a in
       emit env (Ir.Alui (Add, d, va, -c));
       d
     | _ -> bin Sub)
  | Mul ->
    (match imm_of b, imm_of a with
     | Some c, _ when is_pow2 c ->
       let va = lower_expr env a in
       emit env (Ir.Alui (Sll, d, va, log2 c));
       d
     | _, Some c when is_pow2 c ->
       let vb = lower_expr env b in
       emit env (Ir.Alui (Sll, d, vb, log2 c));
       d
     | _ -> bin Mul)
  | Div -> bin Div
  | Rem -> bin Rem
  | And -> bin And
  | Or -> bin Or_
  | Xor -> bin Xor
  | Shl ->
    (match imm_of b with
     | Some c -> let va = lower_expr env a in
       emit env (Ir.Alui (Sll, d, va, c)); d
     | None -> bin Sll)
  | Shr ->
    (match imm_of b with
     | Some c -> let va = lower_expr env a in
       emit env (Ir.Alui (Srl, d, va, c)); d
     | None -> bin Srl)
  | Sar ->
    (match imm_of b with
     | Some c -> let va = lower_expr env a in
       emit env (Ir.Alui (Sra, d, va, c)); d
     | None -> bin Sra)
  | Lt -> bin Slt
  | Gt ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Alu (Slt, d, vb, va));
    d
  | Le ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Alu (Slt, d, vb, va));    (* b < a *)
    emit env (Ir.Alui (Xor, d, d, 1));     (* !(b < a) *)
    d
  | Ge ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Alu (Slt, d, va, vb));
    emit env (Ir.Alui (Xor, d, d, 1));
    d
  | Eq ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    let t = fresh env in
    emit env (Ir.Alu (Sub, t, va, vb));
    emit env (Ir.Alui (Sltu, d, t, 1));
    d
  | Ne ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    let t = fresh env in
    emit env (Ir.Alu (Sub, t, va, vb));
    emit env (Ir.Alu (Sltu, d, Ir.vzero, t));
    d
  | Min | Max ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    (* Always select into a temp and copy once at the end: the temp keeps
       the branch from clobbering an aliased operand, and the final copy
       is an unconditional write — important when [d] is a
       cross-iteration register, whose last static write must execute on
       every path for the hardware to forward it early. *)
    let t = fresh env in
    let skip = fresh_label env "minmax" in
    mv env t va;
    (match op with
     | Min -> emit env (Ir.Br (Bge, vb, va, skip))
     | Max -> emit env (Ir.Br (Bge, va, vb, skip))
     | _ -> assert false);
    mv env t vb;
    emit env (Ir.Label skip);
    emit env (Ir.Alu (Add, d, t, Ir.vzero));  (* t <> d: never dropped *)
    d

and lower_float_bin env ~dest op a b : Ir.vreg =
  let d = dest in
  let f (fop : Xloops_isa.Insn.fpu_op) =
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Fpu (fop, d, va, vb));
    d
  in
  let f_swapped (fop : Xloops_isa.Insn.fpu_op) =
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Fpu (fop, d, vb, va));
    d
  in
  match op with
  | Add -> f Fadd
  | Sub -> f Fsub
  | Mul -> f Fmul
  | Div -> f Fdiv
  | Min -> f Fmin
  | Max -> f Fmax
  | Lt -> f Flt
  | Le -> f Fle
  | Eq -> f Feq
  | Gt -> f_swapped Flt
  | Ge -> f_swapped Fle
  | Ne ->
    let va = lower_expr env a in
    let vb = lower_expr env b in
    emit env (Ir.Fpu (Feq, d, va, vb));
    emit env (Ir.Alui (Xor, d, d, 1));
    d
  | Rem | And | Or | Xor | Shl | Shr | Sar ->
    err "operator %s undefined on floats" (binop_name op)

(** Lower [e] straight into register [d], avoiding the temp-plus-copy of
    [lower_expr] for the common statement forms. *)
and lower_expr_into env d (e : expr) =
  match e with
  | Int n -> if n = 0 then mv env d Ir.vzero else li env d n
  | Flt f -> emit env (Ir.Li (d, Int32.bits_of_float f))
  | Var x ->
    (match lookup_var env x with
     | `Reg (v, _) -> mv env d v
     | `Const c -> li env d c)
  | Load (arr, idx) ->
    let info = array_info env arr in
    let base, off = lower_address env arr idx in
    emit env (Ir.Load (width_of_ty info.ai_ty, d, base, off))
  | Bin (op, a, b) ->
    (match sty_of env a, sty_of env b with
     | Flt, Flt -> ignore (lower_float_bin env ~dest:d op a b)
     | Int, Int -> ignore (lower_int_bin env ~dest:d op a b)
     | _ -> err "mixed int/float operands in %s (insert a cast)"
              (binop_name op))
  | Amo _ | Cvt_if _ | Cvt_fi _ ->
    let v = lower_expr env e in
    mv env d v

(* -- Statements --------------------------------------------------------- *)

let rec lower_stmt env (s : stmt) =
  match s with
  | Decl (x, e) ->
    let t = sty_of env e in
    let v = fresh env in
    lower_expr_into env v e;   (* [x] still refers to any outer binding *)
    env.scope <- (x, (v, t)) :: env.scope
  | Assign (x, e) ->
    (match lookup_var env x with
     | `Const _ -> err "cannot assign to constant %s" x
     | `Reg (v, _) -> lower_expr_into env v e)
  | Store (arr, idx, e) ->
    let info = array_info env arr in
    let ve = lower_expr env e in
    let base, off = lower_address env arr idx in
    emit env (Ir.Store (width_of_ty info.ai_ty, ve, base, off))
  | If (c, t, e) ->
    let vc = lower_expr env c in
    let l_else = fresh_label env "else" in
    let l_end = fresh_label env "endif" in
    emit env (Ir.Br (Beq, vc, Ir.vzero, (if e = [] then l_end else l_else)));
    lower_block env t;
    if e <> [] then begin
      emit env (Ir.Jmp l_end);
      emit env (Ir.Label l_else);
      lower_block env e
    end;
    emit env (Ir.Label l_end)
  | While (c, b) ->
    let l_head = fresh_label env "while" in
    let l_end = fresh_label env "endwhile" in
    emit env (Ir.Label l_head);
    let vc = lower_expr env c in
    emit env (Ir.Br (Beq, vc, Ir.vzero, l_end));
    lower_block env b;
    emit env (Ir.Jmp l_head);
    emit env (Ir.Label l_end)
  | For f -> lower_for env f
  | For_de f -> lower_for_de env f

and lower_block env (b : block) =
  let saved = env.scope in
  List.iter (lower_stmt env) b;
  env.scope <- saved

(* -- Loops --------------------------------------------------------------- *)

(** Collect candidate strength-reduction accesses of the immediate loop
    level: subscripts linear in [f.index] with an invariant remainder.
    Descends into [If]/[While] but not into nested [For]s (which reduce
    their own accesses). *)
and collect_sr_accesses env (f : for_loop) : (string * int * expr) list =
  let changing = changing_vars f in
  let found = ref [] in
  let consider arr idx =
    match Analysis.linear_in f.index idx with
    | None -> ()
    | Some { coeff; rest } ->
      let sym, cst = split_const rest in
      let elem = elem_bytes (array_info env arr).ai_ty in
      if expr_invariant ~changing sym && fits_imm16 (cst * elem) then begin
        let key = (arr, coeff, sym) in
        if not (List.exists
                  (fun (a, c, s) ->
                     String.equal a arr && c = coeff && expr_equal s sym)
                  !found)
        then found := key :: !found
      end
  in
  let rec expr (e : expr) =
    match e with
    | Int _ | Flt _ | Var _ -> ()
    | Load (a, idx) -> expr idx; consider a idx
    | Bin (_, a, b) -> expr a; expr b
    | Amo (_, a, idx, v) -> expr idx; expr v; consider a idx
    | Cvt_if e | Cvt_fi e -> expr e
  in
  let rec stmt = function
    | Decl (_, e) | Assign (_, e) -> expr e
    | Store (a, idx, e) -> expr idx; expr e; consider a idx
    | If (c, t, e) -> expr c; List.iter stmt t; List.iter stmt e
    | While (c, b) -> expr c; List.iter stmt b
    | For _ | For_de _ -> ()  (* inner loops reduce their own accesses *)
  in
  List.iter stmt f.body;
  List.rev !found

(** Initialize strength-reduced pointers for the accesses of [f]'s
    immediate body: [p = base + (coeff*i + sym) * elem] with [i]'s
    current value in [vi]. *)
and init_pointers env (f : for_loop) vi : pointer list =
  List.map
    (fun (arr, coeff, sym) ->
       let info = array_info env arr in
       let elem = elem_bytes info.ai_ty in
       let p = fresh env in
       mv env p (base_reg env arr);
       let rec lg n c = if c <= 1 then n else lg (n + 1) (c asr 1) in
       if coeff <> 0 then begin
         let t = fresh env in
         (match coeff * elem with
          | 1 -> mv env t vi
          | ce when ce > 0 && ce land (ce - 1) = 0 ->
            emit env (Ir.Alui (Sll, t, vi, lg 0 ce))
          | ce ->
            let c = fresh env in
            li env c ce;
            emit env (Ir.Alu (Mul, t, vi, c)));
         emit env (Ir.Alu (Add, p, p, t))
       end;
       (match sym with
        | Int 0 -> ()
        | _ ->
          let vs = lower_expr env sym in
          let t = fresh env in
          (match elem with
           | 1 -> mv env t vs
           | e -> emit env (Ir.Alui (Sll, t, vs, shift_of_bytes e)));
          emit env (Ir.Alu (Add, p, p, t)));
       { p_array = arr; p_coeff = coeff; p_sym = sym; p_vreg = p;
         p_step = coeff * elem })
    (collect_sr_accesses env f)

(** End-of-body induction updates: pointer steps and the unit index
    increment, as [.xi] inside annotated loops when the target allows. *)
and emit_increments env ~annotated pointers vi =
  List.iter
    (fun p ->
       if p.p_step <> 0 then begin
         if annotated && env.target.use_xi then
           emit env (Ir.Xi_addi (p.p_vreg, p.p_vreg, p.p_step))
         else
           emit env (Ir.Alui (Add, p.p_vreg, p.p_vreg, p.p_step))
       end)
    pointers;
  if annotated && env.target.use_xi then
    emit env (Ir.Xi_addi (vi, vi, 1))
  else
    emit env (Ir.Alui (Add, vi, vi, 1))

and lower_for env (f : for_loop) =
  let annotated = env.target.xloops && f.pragma <> None in
  let cls = Analysis.classify f in
  (* Index and bound. *)
  let vi = fresh env in
  lower_expr_into env vi f.lo;
  env.scope <- (f.index, (vi, Int)) :: env.scope;
  let vb = fresh env in
  let eval_bound () = lower_expr_into env vb f.hi in
  eval_bound ();
  (* Strength reduction: suppressed inside annotated loops when .xi is
     unavailable (a plain-add pointer would be an undeclared CIR). *)
  let do_sr = (not annotated) || env.target.use_xi in
  let pointers = if not do_sr then [] else init_pointers env f vi in
  let frame = { fr_index = f.index; fr_annotated = annotated;
                fr_pointers = pointers } in
  let increments () = emit_increments env ~annotated pointers vi in
  if annotated then begin
    let l_body = fresh_label env "xbody" in
    let l_end = fresh_label env "xend" in
    emit env (Ir.Br (Bge, vi, vb, l_end));   (* zero-trip guard *)
    emit env (Ir.Label l_body);
    env.frames <- frame :: env.frames;
    lower_block env f.body;
    env.frames <- List.tl env.frames;
    if cls.dynamic_bound then eval_bound ();
    increments ();
    emit env (Ir.Xloop (cls.pattern, vi, vb, l_body));
    emit env (Ir.Label l_end);
    env.annotated_regions <- (l_body, l_end) :: env.annotated_regions
  end else begin
    let l_head = fresh_label env "for" in
    let l_end = fresh_label env "endfor" in
    emit env (Ir.Label l_head);
    if cls.dynamic_bound then eval_bound ();
    emit env (Ir.Br (Bge, vi, vb, l_end));
    env.frames <- frame :: env.frames;
    lower_block env f.body;
    env.frames <- List.tl env.frames;
    increments ();
    emit env (Ir.Jmp l_head);
    emit env (Ir.Label l_end)
  end;
  (* The index variable goes out of scope with the loop. *)
  env.scope <- List.remove_assoc f.index env.scope

(** Data-dependent-exit loop (do-while flavour: the body always runs
    once).  Annotated form: body, then the exit flag — the negation of
    the continue condition — computed into the bound register, then the
    induction updates, then [xloop.<dp>.de] which branches back while the
    flag is clear.  Serial form: a plain conditional back-edge. *)
and lower_for_de env (f : for_de) =
  let annotated = env.target.xloops && f.de_pragma <> None in
  let cls = Analysis.classify_de f in
  let vi = fresh env in
  lower_expr_into env vi f.de_lo;
  env.scope <- (f.de_index, (vi, Int)) :: env.scope;
  (* Strength reduction as for counted loops ([.xi] only when allowed). *)
  let do_sr = (not annotated) || env.target.use_xi in
  let pseudo : for_loop =
    { index = f.de_index; lo = f.de_lo; hi = Int 0; pragma = f.de_pragma;
      body = f.de_body } in
  let pointers =
    if not do_sr then [] else init_pointers env pseudo vi in
  let frame = { fr_index = f.de_index; fr_annotated = annotated;
                fr_pointers = pointers } in
  let increments () = emit_increments env ~annotated pointers vi in
  let l_body = fresh_label env "xbody" in
  env.frames <- frame :: env.frames;
  (* The continue condition may read the body's locals, so the body is
     lowered without the usual block-scope restore and the whole scope is
     popped after the condition. *)
  let saved_scope = env.scope in
  if annotated then begin
    let vexit = fresh env in
    emit env (Ir.Label l_body);
    List.iter (lower_stmt env) f.de_body;
    (* exit flag: 1 when the continue condition is false *)
    lower_expr_into env vexit (Bin (Eq, f.de_cond, Int 0));
    increments ();
    emit env (Ir.Xloop ({ dp = cls.pattern.Xloops_isa.Insn.dp; cp = De },
                        vi, vexit, l_body));
    env.annotated_regions <-
      (l_body, l_body) :: env.annotated_regions
  end else begin
    emit env (Ir.Label l_body);
    List.iter (lower_stmt env) f.de_body;
    let vc = lower_expr env f.de_cond in
    increments ();
    emit env (Ir.Br (Bne, vc, Ir.vzero, l_body))
  end;
  env.frames <- List.tl env.frames;
  env.scope <- saved_scope

(* -- Entry point --------------------------------------------------------- *)

type lowered = {
  ir : Ir.instr list;
  num_vregs : int;
  xloop_regions : (string * string) list;
}

let lower_kernel ~(target : target)
    ~(arrays : (string * array_info) list) (k : kernel) : lowered =
  let env = {
    target; arrays; consts = k.consts;
    code = []; next_vreg = 1;  (* vreg 0 = zero *)
    next_label = 0; scope = []; frames = []; base_regs = [];
    annotated_regions = [];
  } in
  (* Prologue: bind every array base to a register once.  Base registers
     are written only here, so even if one spills, the spill store stays
     outside any xloop body. *)
  List.iter (fun (a, _) -> ignore (base_reg env a)) arrays;
  lower_block env k.k_body;
  emit env Ir.Halt;
  { ir = List.rev env.code;
    num_vregs = env.next_vreg;
    xloop_regions = env.annotated_regions }
