(** Register allocation: instruction-level liveness followed by linear
    scan with spilling.

    Live ranges are conservative "linearized" intervals — a vreg's
    interval spans from the first position where it is defined or live to
    the last.  Because a value live around a loop back-edge is live-in at
    the loop header, its interval automatically covers the whole loop
    body.  This property matters beyond allocation quality: a
    cross-iteration register (CIR) or an [.xi] induction pointer keeps its
    physical register to itself for the entire [xloop] body, so the
    hardware's scan-phase bit-vector analysis sees exactly the CIRs the
    compiler intended.

    Spill slots live in a dedicated memory area addressed off the reserved
    stack register; {!Compile} rejects spill {e stores} inside [xloop]
    bodies, where lanes would race on the shared slot. *)

open Xloops_isa

exception Too_many_spills of string

(* Allocatable pool: temporaries then saved registers.  ra/sp/at/k0/k1 and
   the argument registers are reserved (sp = spill base, k0/k1 = spill
   scratch, a0..a3 free for future calling conventions). *)
let pool =
  [ Reg.t0; Reg.t1; Reg.t2; Reg.t3; Reg.t4; Reg.t5; Reg.t6; Reg.t7 ]
  @ List.init (Reg.alloc_last - Reg.alloc_first + 1)
    (fun i -> Reg.alloc_first + i)

let num_pool = List.length pool

type location = Phys of Reg.t | Slot of int

type allocation = {
  loc : location array;       (* indexed by vreg *)
  num_slots : int;
}

(* -- Liveness ----------------------------------------------------------- *)

(** Bitset-based backward dataflow over the flat instruction array. *)
let liveness (code : Ir.instr array) ~num_vregs =
  let n = Array.length code in
  let words = (num_vregs + 62) / 63 in
  let live_in = Array.make_matrix n words 0 in
  let label_pos = Hashtbl.create 16 in
  Array.iteri
    (fun i insn ->
       match insn with
       | Ir.Label l -> Hashtbl.replace label_pos l i
       | _ -> ())
    code;
  let succs i =
    let insn = code.(i) in
    let next = if i + 1 < n && not (Ir.is_unconditional insn)
      then [ i + 1 ] else [] in
    match Ir.branch_target insn with
    | Some l -> Hashtbl.find label_pos l :: next
    | None -> next
  in
  let set bits v = bits.(v / 63) <- bits.(v / 63) lor (1 lsl (v mod 63)) in
  let clear bits v =
    bits.(v / 63) <- bits.(v / 63) land lnot (1 lsl (v mod 63)) in
  let changed = ref true in
  let tmp = Array.make words 0 in
  while !changed do
    changed := false;
    for i = n - 1 downto 0 do
      (* out = union of successor live-ins *)
      Array.fill tmp 0 words 0;
      List.iter
        (fun s ->
           let sl = live_in.(s) in
           for w = 0 to words - 1 do tmp.(w) <- tmp.(w) lor sl.(w) done)
        (succs i);
      (* in = (out - def) + use *)
      (match Ir.dest code.(i) with Some d -> clear tmp d | None -> ());
      List.iter (fun s -> if s <> Ir.vzero then set tmp s)
        (Ir.sources code.(i));
      let li = live_in.(i) in
      let diff = ref false in
      for w = 0 to words - 1 do
        if tmp.(w) <> li.(w) then diff := true
      done;
      if !diff then begin
        Array.blit tmp 0 li 0 words;
        changed := true
      end
    done
  done;
  live_in

(* -- Intervals ----------------------------------------------------------- *)

type interval = { v : int; i_start : int; i_end : int }

let intervals (code : Ir.instr array) ~num_vregs =
  let live_in = liveness code ~num_vregs in
  let n = Array.length code in
  let first = Array.make num_vregs max_int in
  let last = Array.make num_vregs (-1) in
  let touch v i =
    if v <> Ir.vzero then begin
      if i < first.(v) then first.(v) <- i;
      if i > last.(v) then last.(v) <- i
    end
  in
  for i = 0 to n - 1 do
    (match Ir.dest code.(i) with Some d -> touch d i | None -> ());
    List.iter (fun s -> touch s i) (Ir.sources code.(i));
    let li = live_in.(i) in
    for w = 0 to Array.length li - 1 do
      let bits = ref li.(w) in
      while !bits <> 0 do
        let b = !bits land (- !bits) in
        let v = (w * 63) + (let rec lg n x = if x = 1 then n
                             else lg (n + 1) (x lsr 1) in lg 0 b) in
        if v < num_vregs then touch v i;
        bits := !bits land lnot b
      done
    done
  done;
  let acc = ref [] in
  for v = num_vregs - 1 downto 1 do
    if last.(v) >= 0 then
      acc := { v; i_start = first.(v); i_end = last.(v) } :: !acc
  done;
  !acc

(* -- Linear scan --------------------------------------------------------- *)

let allocate (code : Ir.instr array) ~num_vregs : allocation =
  let ivs = List.sort (fun a b -> compare a.i_start b.i_start)
      (intervals code ~num_vregs) in
  let loc = Array.make num_vregs (Phys Reg.zero) in
  let free = ref pool in
  let active = ref [] in   (* (interval, reg), sorted by i_end asc *)
  let num_slots = ref 0 in
  let expire pos =
    let expired, still =
      List.partition (fun (iv, _) -> iv.i_end < pos) !active in
    List.iter (fun (_, r) -> free := r :: !free) expired;
    active := still
  in
  let add_active iv r =
    active :=
      List.sort (fun (a, _) (b, _) -> compare a.i_end b.i_end)
        ((iv, r) :: !active)
  in
  let new_slot () =
    let s = !num_slots in
    incr num_slots;
    s
  in
  List.iter
    (fun iv ->
       expire iv.i_start;
       match !free with
       | r :: rest ->
         free := rest;
         loc.(iv.v) <- Phys r;
         add_active iv r
       | [] ->
         (* Spill the interval that ends furthest away. *)
         (match List.rev !active with
          | (victim, r) :: _ when victim.i_end > iv.i_end ->
            loc.(victim.v) <- Slot (new_slot ());
            active := List.filter (fun (a, _) -> a.v <> victim.v) !active;
            loc.(iv.v) <- Phys r;
            add_active iv r
          | _ ->
            loc.(iv.v) <- Slot (new_slot ())))
    ivs;
  { loc = loc; num_slots = !num_slots }

(* -- Rewrite -------------------------------------------------------------- *)

(** Rewrite the code with physical registers, inserting spill loads/stores
    through the reserved scratch registers [k0]/[k1] and the spill base
    register [sp]. *)
let rewrite (code : Ir.instr array) (alloc : allocation) : Ir.instr list =
  let out = ref [] in
  let emit i = out := i :: !out in
  let slot_off s = s * 4 in
  let src_reg scratch v =
    if v = Ir.vzero then Reg.zero
    else match alloc.loc.(v) with
      | Phys r -> r
      | Slot s ->
        emit (Ir.Load (W, scratch, Reg.sp, slot_off s));
        scratch
  in
  let dst_reg v =
    if v = Ir.vzero then (Reg.zero, None)
    else match alloc.loc.(v) with
      | Phys r -> (r, None)
      | Slot s -> (Reg.k0, Some s)
  in
  let finish_dst = function
    | None -> ()
    | Some s -> emit (Ir.Store (W, Reg.k0, Reg.sp, slot_off s))
  in
  Array.iter
    (fun insn ->
       match insn with
       | Ir.Li (d, v) ->
         let rd, sp = dst_reg d in
         emit (Ir.Li (rd, v)); finish_dst sp
       | Ir.Alu (o, d, a, b) ->
         let ra = src_reg Reg.k0 a in
         let rb = src_reg Reg.k1 b in
         let rd, sp = dst_reg d in
         emit (Ir.Alu (o, rd, ra, rb)); finish_dst sp
       | Ir.Alui (o, d, a, imm) ->
         let ra = src_reg Reg.k0 a in
         let rd, sp = dst_reg d in
         emit (Ir.Alui (o, rd, ra, imm)); finish_dst sp
       | Ir.Fpu (o, d, a, b) ->
         let ra = src_reg Reg.k0 a in
         let rb = src_reg Reg.k1 b in
         let rd, sp = dst_reg d in
         emit (Ir.Fpu (o, rd, ra, rb)); finish_dst sp
       | Ir.Load (w, d, a, imm) ->
         let ra = src_reg Reg.k0 a in
         let rd, sp = dst_reg d in
         emit (Ir.Load (w, rd, ra, imm)); finish_dst sp
       | Ir.Store (w, v, a, imm) ->
         let rv = src_reg Reg.k0 v in
         let ra = src_reg Reg.k1 a in
         emit (Ir.Store (w, rv, ra, imm))
       | Ir.Amo (o, d, a, v) ->
         let ra = src_reg Reg.k0 a in
         let rv = src_reg Reg.k1 v in
         let rd, sp = dst_reg d in
         emit (Ir.Amo (o, rd, ra, rv)); finish_dst sp
       | Ir.Br (c, a, b, l) ->
         let ra = src_reg Reg.k0 a in
         let rb = src_reg Reg.k1 b in
         emit (Ir.Br (c, ra, rb, l))
       | Ir.Jmp l -> emit (Ir.Jmp l)
       | Ir.Label l -> emit (Ir.Label l)
       | Ir.Xloop (p, a, b, l) ->
         let ra = src_reg Reg.k0 a in
         let rb = src_reg Reg.k1 b in
         emit (Ir.Xloop (p, ra, rb, l))
       | Ir.Xi_addi (d, a, imm) ->
         let ra = src_reg Reg.k0 a in
         let rd, sp = dst_reg d in
         emit (Ir.Xi_addi (rd, ra, imm)); finish_dst sp
       | Ir.Halt -> emit Ir.Halt)
    code;
  List.rev !out

(** Allocate and rewrite; returns physical-register IR plus the number of
    spill slots used. *)
let run (ir : Ir.instr list) ~num_vregs : Ir.instr list * int =
  let code = Array.of_list ir in
  let alloc = allocate code ~num_vregs in
  (rewrite code alloc, alloc.num_slots)
