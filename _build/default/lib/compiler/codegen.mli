(** Code generation: physical-register IR to the assembler, one machine
    instruction per IR instruction except wide [Li] constants
    (lui+ori). *)

val emit : ?spill_base:int -> Ir.instr list -> Xloops_asm.Program.t
(** The prologue initializes the reserved spill-base register when
    [spill_base] is nonzero. *)
