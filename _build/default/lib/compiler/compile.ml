(** Compiler driver: Loopc kernel -> assembled program.

    Targets mirror the paper's three binary flavours:
    - {!Lower.general}: the general-purpose ISA (annotated loops compile
      to plain branch loops) — the serial baselines of Table II;
    - {!Lower.xloops_isa}: full XLOOPS ISA with [.xi] strength reduction;
    - {!Lower.xloops_no_xi}: XLOOPS without [.xi] (the RTL/VLSI evaluation
      mode of Section V, which disables [.xi] generation in loop strength
      reduction and recomputes addresses instead). *)

open Ast

type target = Lower.target = { xloops : bool; use_xi : bool }

let general = Lower.general
let xloops = Lower.xloops_isa
let xloops_no_xi = Lower.xloops_no_xi

exception Error = Lower.Compile_error

type compiled = {
  program : Xloops_asm.Program.t;
  layout : Xloops_asm.Layout.t;
  array_base : string -> int;       (** data address of an array *)
  spill_slots : int;
  target : target;
  kernel : kernel;
}

(** Reject spill stores inside xloop bodies: spill slots live in shared
    memory, so a store from inside a specialized loop would race across
    lanes.  (Read-only reloads of live-ins are fine and are allowed.) *)
let check_no_spill_stores_in_xloops (p : Xloops_asm.Program.t) =
  let insns = p.insns in
  Array.iteri
    (fun xpc insn ->
       match insn with
       | Xloops_isa.Insn.Xloop (_, _, _, body) ->
         for pc = body to xpc - 1 do
           match insns.(pc) with
           | Xloops_isa.Insn.Store (_, _, base, _)
             when base = Xloops_isa.Reg.sp ->
             raise (Error
                      (Printf.sprintf
                         "register pressure too high: spill store at pc %d \
                          inside the xloop body ending at %d" pc xpc))
           | _ -> ()
         done
       | _ -> ())
    insns

(** Compile [k] for [target].  Array placement and the spill area are
    allocated from a fresh {!Xloops_asm.Layout} (or a caller-provided one,
    so that the same addresses can be reused across targets when comparing
    binaries on identical datasets). *)
let compile ?(target = xloops) ?layout (k : kernel) : compiled =
  let layout = match layout with
    | Some l -> l
    | None -> Xloops_asm.Layout.create ()
  in
  let arrays =
    List.map
      (fun a ->
         let base =
           match
             List.find_opt (fun (r : Xloops_asm.Layout.region) ->
                 String.equal r.name a.a_name)
               (Xloops_asm.Layout.regions layout)
           with
           | Some r -> r.base
           | None ->
             Xloops_asm.Layout.alloc layout ~name:a.a_name
               ~bytes:(a.a_len * elem_bytes a.a_ty)
         in
         (a.a_name, { Lower.ai_base = base; ai_ty = a.a_ty }))
      k.arrays
  in
  let k = Ast.subst_consts k in
  let lowered = Lower.lower_kernel ~target ~arrays k in
  let phys_ir, slots = Regalloc.run lowered.ir ~num_vregs:lowered.num_vregs in
  let spill_base =
    if slots = 0 then 0
    else Xloops_asm.Layout.alloc layout ~name:(k.k_name ^ "$spill")
        ~bytes:(slots * 4)
  in
  let program = Codegen.emit ~spill_base phys_ir in
  if target.xloops then check_no_spill_stores_in_xloops program;
  { program; layout;
    array_base =
      (fun name ->
         match List.assoc_opt name arrays with
         | Some i -> i.Lower.ai_base
         | None -> invalid_arg ("array_base: " ^ name));
    spill_slots = slots;
    target; kernel = k }

(** Static instruction count of each xloop body in the program: (body
    start pc, xloop pc, body length).  Used for Table II's loop
    statistics. *)
let xloop_bodies (p : Xloops_asm.Program.t) =
  let acc = ref [] in
  Array.iteri
    (fun xpc insn ->
       match insn with
       | Xloops_isa.Insn.Xloop (_, _, _, body) ->
         acc := (body, xpc, xpc - body) :: !acc
       | _ -> ())
    p.insns;
  List.rev !acc
