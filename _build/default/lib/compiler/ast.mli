(** Loopc: the small typed loop language the XLOOPS kernels are written
    in — the stand-in for the paper's pragma-annotated C kernels.

    Scalars are [int] or [float32]; arrays are 1-D with
    [u8]/[u16]/[i32]/[f32] elements (multi-dimensional data is indexed
    manually, as in the paper's kernels); control flow is
    [for]/[for_de]/[while]/[if].  A [For] carrying a pragma compiles to
    an [xloop] under the XLOOPS target, with the data pattern chosen by
    {!Analysis}. *)

type ty = U8 | U16 | I32 | F32

val ty_name : ty -> string
val elem_bytes : ty -> int

(** Scalar value type. *)
type sty = Int | Flt

val sty_of_ty : ty -> sty

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor | Shl | Shr | Sar
  | Lt | Le | Gt | Ge | Eq | Ne
  | Min | Max

type amo_kind = Aadd | Aand | Aor | Axchg | Amin | Amax

type expr =
  | Int of int
  | Flt of float
  | Var of string
  | Load of string * expr                  (** arr[e] *)
  | Bin of binop * expr * expr
  | Amo of amo_kind * string * expr * expr
      (** amo(arr, idx, v): atomically updates and returns the old value *)
  | Cvt_if of expr                         (** int -> float *)
  | Cvt_fi of expr                         (** float -> int, truncating *)

type pragma = Unordered | Ordered | Atomic

type stmt =
  | Decl of string * expr            (** let x = e — block-scoped local *)
  | Assign of string * expr
  | Store of string * expr * expr    (** arr[e1] = e2 *)
  | If of expr * block * block
  | While of expr * block
  | For of for_loop
  | For_de of for_de
      (** counted loop with a data-dependent exit (runs at least once;
          continues while the condition, evaluated post-body, holds) *)

and block = stmt list

and for_loop = {
  index : string;
  lo : expr;
  hi : expr;   (** re-evaluated per iteration when the body updates it *)
  pragma : pragma option;
  body : block;
}

and for_de = {
  de_index : string;
  de_lo : expr;
  de_cond : expr;
  de_pragma : pragma option;
  de_body : block;
}

type array_decl = { a_name : string; a_ty : ty; a_len : int }

type kernel = {
  k_name : string;
  arrays : array_decl list;
  consts : (string * int) list;
      (** compile-time integer parameters, inlined before analysis *)
  k_body : block;
}

val for_ : ?pragma:pragma -> string -> expr -> expr -> block -> stmt
val for_de : ?pragma:pragma -> string -> expr -> expr -> block -> stmt

(** Infix constructors for writing kernels; open locally
    ([let open Ast.Syntax in ...]) — the operators shadow the integer
    ones. *)
module Syntax : sig
  val ( + ) : expr -> expr -> expr
  val ( - ) : expr -> expr -> expr
  val ( * ) : expr -> expr -> expr
  val ( / ) : expr -> expr -> expr
  val ( % ) : expr -> expr -> expr
  val ( < ) : expr -> expr -> expr
  val ( <= ) : expr -> expr -> expr
  val ( > ) : expr -> expr -> expr
  val ( >= ) : expr -> expr -> expr
  val ( = ) : expr -> expr -> expr
  val ( <> ) : expr -> expr -> expr
  val ( land ) : expr -> expr -> expr
  val ( lor ) : expr -> expr -> expr
  val ( lxor ) : expr -> expr -> expr
  val ( lsl ) : expr -> expr -> expr
  val ( lsr ) : expr -> expr -> expr
  val ( asr ) : expr -> expr -> expr
  val i : int -> expr
  val v : string -> expr
  val ( .%[] ) : string -> expr -> expr
  val min_ : expr -> expr -> expr
  val max_ : expr -> expr -> expr
  val for_ : ?pragma:pragma -> string -> expr -> expr -> block -> stmt
  val for_de : ?pragma:pragma -> string -> expr -> expr -> block -> stmt
end

(** {1 Printing} *)

val binop_name : binop -> string
val amo_name : amo_kind -> string
val pragma_name : pragma -> string
val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_block : Format.formatter -> block -> unit
val pp_kernel : Format.formatter -> kernel -> unit

(** {1 Transformations and helpers} *)

val subst_consts : kernel -> kernel
(** Inline the kernel's compile-time constants into the body (so
    dependence tests and strength reduction see real coefficients).
    Rejects locals that shadow a constant. *)

val expr_vars : string list -> expr -> string list
val expr_arrays : string list -> expr -> string list
val expr_equal : expr -> expr -> bool
