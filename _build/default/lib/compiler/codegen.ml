(** Code generation: physical-register IR to the assembler.  One IR
    instruction maps to one machine instruction, except [Li] of wide
    constants (lui+ori via the builder pseudo-op). *)

module B = Xloops_asm.Builder

(** [emit ~spill_base ir] assembles a complete program.  The prologue
    initializes the reserved spill-base register; [spill_base] may be 0
    when no slots are in use. *)
let emit ?(spill_base = 0) (ir : Ir.instr list) : Xloops_asm.Program.t =
  let b = B.create () in
  if spill_base <> 0 then B.li b Xloops_isa.Reg.sp spill_base;
  List.iter
    (fun (i : Ir.instr) ->
       match i with
       | Li (d, v) -> B.li b d (Int32.to_int v)
       | Alu (o, d, a, r) -> B.alu b o d a r
       | Alui (o, d, a, imm) -> B.alui b o d a imm
       | Fpu (o, d, a, r) -> B.fpu b o d a r
       | Load (w, d, a, imm) -> B.load b w d a imm
       | Store (w, v, a, imm) -> B.store b w v a imm
       | Amo (o, d, a, v) -> B.amo b o d a v
       | Br (c, a, r, l) -> B.branch b c a r l
       | Jmp l -> B.jump b l
       | Label l -> B.label b l
       | Xloop (p, a, r, l) -> B.xloop b p a r l
       | Xi_addi (d, a, imm) -> B.xi_addi b d a imm
       | Halt -> B.halt b)
    ir;
  B.assemble b
