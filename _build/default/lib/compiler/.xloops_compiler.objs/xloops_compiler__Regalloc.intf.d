lib/compiler/regalloc.mli: Ir Xloops_isa
