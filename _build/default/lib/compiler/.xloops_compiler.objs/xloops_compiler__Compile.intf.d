lib/compiler/compile.mli: Ast Lower Xloops_asm
