lib/compiler/ir.mli: Format Xloops_isa
