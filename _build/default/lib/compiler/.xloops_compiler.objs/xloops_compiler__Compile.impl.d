lib/compiler/compile.ml: Array Ast Codegen List Lower Printf Regalloc String Xloops_asm Xloops_isa
