lib/compiler/ast.ml: Fmt List Stdlib String
