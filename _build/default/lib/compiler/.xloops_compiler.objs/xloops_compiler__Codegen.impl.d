lib/compiler/codegen.ml: Int32 Ir List Xloops_asm Xloops_isa
