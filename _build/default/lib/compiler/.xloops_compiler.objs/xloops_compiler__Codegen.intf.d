lib/compiler/codegen.mli: Ir Xloops_asm
