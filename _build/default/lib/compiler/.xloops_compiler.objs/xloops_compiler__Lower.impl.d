lib/compiler/lower.ml: Analysis Ast Fmt Int32 Ir List Printf String Xloops_isa
