lib/compiler/ir.ml: Fmt Insn List String Xloops_isa
