lib/compiler/regalloc.ml: Array Hashtbl Ir List Reg Xloops_isa
