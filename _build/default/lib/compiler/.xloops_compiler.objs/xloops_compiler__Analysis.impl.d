lib/compiler/analysis.ml: Ast List Set String Xloops_isa
