lib/compiler/analysis.mli: Ast Xloops_isa
