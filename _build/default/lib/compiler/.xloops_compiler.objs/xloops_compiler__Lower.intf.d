lib/compiler/lower.mli: Ast Ir
