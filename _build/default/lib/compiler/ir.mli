(** Virtual-register intermediate representation: a flat instruction list
    over unlimited virtual registers (vreg 0 pinned to the architectural
    zero register).  {!Regalloc} rewrites vregs to physical registers;
    {!Codegen} then maps 1:1 onto the assembler. *)

type vreg = int

val vzero : vreg

type instr =
  | Li of vreg * int32
  | Alu of Xloops_isa.Insn.alu_op * vreg * vreg * vreg
  | Alui of Xloops_isa.Insn.alu_op * vreg * vreg * int
  | Fpu of Xloops_isa.Insn.fpu_op * vreg * vreg * vreg
  | Load of Xloops_isa.Insn.width * vreg * vreg * int
  | Store of Xloops_isa.Insn.width * vreg * vreg * int
  | Amo of Xloops_isa.Insn.amo_op * vreg * vreg * vreg
  | Br of Xloops_isa.Insn.branch_cond * vreg * vreg * string
  | Jmp of string
  | Label of string
  | Xloop of Xloops_isa.Insn.xpat * vreg * vreg * string
  | Xi_addi of vreg * vreg * int
  | Halt

val sources : instr -> vreg list
val dest : instr -> vreg option
val map_regs : (vreg -> vreg) -> instr -> instr

val is_control : instr -> bool
val branch_target : instr -> string option
val is_unconditional : instr -> bool

val pp : Format.formatter -> instr -> unit
val pp_program : Format.formatter -> instr list -> unit
