(** Static data-segment layout.  Kernels allocate named regions here, get
    back base addresses to bake into their code as immediates, and
    initialize the regions through {!Xloops_mem.Memory} before running. *)

type region = { name : string; base : int; bytes : int }

type t = {
  mutable next : int;
  mutable regions : region list;  (* reversed *)
  limit : int;
}

(** [create ()] starts the data segment at byte address 0x1000 (addresses
    below are reserved so that null-pointer-style bugs in kernels trap) and
    bounds it by [limit] (default 1 MiB). *)
let create ?(base = 0x1000) ?(limit = 1 lsl 20) () =
  { next = base; regions = []; limit }

let align_up v a = (v + a - 1) / a * a

(** Allocate [bytes] bytes aligned to [align] (default 4); returns the base
    address. *)
let alloc ?(align = 4) t ~name ~bytes =
  let base = align_up t.next align in
  if base + bytes > t.limit then
    invalid_arg
      (Printf.sprintf "Layout.alloc %s: out of data segment (%d + %d > %d)"
         name base bytes t.limit);
  t.next <- base + bytes;
  t.regions <- { name; base; bytes } :: t.regions;
  base

(** Allocate an array of [n] 32-bit words. *)
let alloc_words ?align t ~name ~n = alloc ?align t ~name ~bytes:(n * 4)

let regions t = List.rev t.regions

let find t name =
  match List.find_opt (fun r -> r.name = name) t.regions with
  | Some r -> r
  | None -> invalid_arg ("Layout.find: " ^ name)

let pp ppf t =
  List.iter
    (fun r -> Fmt.pf ppf "%-16s 0x%06x  %6d bytes@." r.name r.base r.bytes)
    (regions t)
