(** Imperative program builder with symbolic labels and the usual
    pseudo-instructions.  This is the "assembler" of the toolchain: both
    hand-written kernels and the compiler back end emit through it. *)

open Xloops_isa

type t = {
  mutable items : string Insn.t list;  (* reversed *)
  mutable count : int;                 (* emitted instructions *)
  mutable labels : (string * int) list;
  mutable fresh : int;
}

let create () = { items = []; count = 0; labels = []; fresh = 0 }

let here b = b.count

let emit b (i : string Insn.t) =
  b.items <- i :: b.items;
  b.count <- b.count + 1

(** Define [name] at the current position.  A label may be defined only
    once. *)
let label b name =
  if List.mem_assoc name b.labels then
    invalid_arg ("Builder.label: duplicate label " ^ name);
  b.labels <- (name, b.count) :: b.labels

(** Generate a program-unique label with a readable prefix. *)
let fresh_label b prefix =
  b.fresh <- b.fresh + 1;
  Printf.sprintf "%s$%d" prefix b.fresh

(* -- Raw emitters -------------------------------------------------- *)

let alu b op rd rs rt = emit b (Alu (op, rd, rs, rt))
let alui b op rd rs imm = emit b (Alui (op, rd, rs, imm))
let fpu b op rd rs rt = emit b (Fpu (op, rd, rs, rt))
let load b w rd rs imm = emit b (Load (w, rd, rs, imm))
let store b w rt rs imm = emit b (Store (w, rt, rs, imm))
let amo b op rd rs rt = emit b (Amo (op, rd, rs, rt))
let branch b c rs rt l = emit b (Branch (c, rs, rt, l))
let jump b l = emit b (Jump l)
let jal b l = emit b (Jal l)
let jr b rs = emit b (Jr rs)
let xloop b pat rs rt l = emit b (Xloop (pat, rs, rt, l))
let xi_addi b rd rs imm = emit b (Xi_addi (rd, rs, imm))
let xi_add b rd rs rt = emit b (Xi_add (rd, rs, rt))
let sync b = emit b Sync
let halt b = emit b Halt
let nop b = emit b Nop

(* -- Common mnemonics ---------------------------------------------- *)

let add b rd rs rt = alu b Add rd rs rt
let sub b rd rs rt = alu b Sub rd rs rt
let mul b rd rs rt = alu b Mul rd rs rt
let div b rd rs rt = alu b Div rd rs rt
let rem b rd rs rt = alu b Rem rd rs rt
let and_ b rd rs rt = alu b And rd rs rt
let or_ b rd rs rt = alu b Or_ rd rs rt
let xor b rd rs rt = alu b Xor rd rs rt
let slt b rd rs rt = alu b Slt rd rs rt
let sltu b rd rs rt = alu b Sltu rd rs rt
let sll b rd rs sh = alui b Sll rd rs sh
let srl b rd rs sh = alui b Srl rd rs sh
let sra b rd rs sh = alui b Sra rd rs sh
let addi b rd rs imm = alui b Add rd rs imm
let andi b rd rs imm = alui b And rd rs imm
let ori b rd rs imm = alui b Or_ rd rs imm
let slti b rd rs imm = alui b Slt rd rs imm
let lw b rd rs imm = load b W rd rs imm
let lb b rd rs imm = load b B rd rs imm
let lbu b rd rs imm = load b Bu rd rs imm
let lh b rd rs imm = load b H rd rs imm
let lhu b rd rs imm = load b Hu rd rs imm
let sw b rt rs imm = store b W rt rs imm
let sb b rt rs imm = store b B rt rs imm
let sh b rt rs imm = store b H rt rs imm
let beq b rs rt l = branch b Beq rs rt l
let bne b rs rt l = branch b Bne rs rt l
let blt b rs rt l = branch b Blt rs rt l
let bge b rs rt l = branch b Bge rs rt l
let bltu b rs rt l = branch b Bltu rs rt l
let bgeu b rs rt l = branch b Bgeu rs rt l
let beqz b rs l = branch b Beq rs Reg.zero l
let bnez b rs l = branch b Bne rs Reg.zero l
let fadd b rd rs rt = fpu b Fadd rd rs rt
let fsub b rd rs rt = fpu b Fsub rd rs rt
let fmul b rd rs rt = fpu b Fmul rd rs rt
let fdiv b rd rs rt = fpu b Fdiv rd rs rt
let flt b rd rs rt = fpu b Flt rd rs rt

(* -- Pseudo-instructions ------------------------------------------- *)

(** [mv rd rs] — copy a register. *)
let mv b rd rs = alu b Add rd rs Reg.zero

(** [li rd imm] — load a 32-bit constant, expanding to [lui]+[ori] when it
    does not fit in a signed 16-bit immediate. *)
let li b rd imm =
  if imm >= -32768 && imm <= 32767 then addi b rd Reg.zero imm
  else begin
    let imm = imm land 0xFFFFFFFF in
    let hi = (imm lsr 16) land 0xFFFF and lo = imm land 0xFFFF in
    emit b (Lui (rd, hi));
    if lo <> 0 then ori b rd rd lo
  end

(** [ble rs rt l] — branch if [rs <= rt] (signed). *)
let ble b rs rt l = branch b Bge rt rs l

(** [bgt rs rt l] — branch if [rs > rt] (signed). *)
let bgt b rs rt l = branch b Blt rt rs l

(* -- Assembly ------------------------------------------------------- *)

exception Undefined_label of string

(** Resolve labels and produce the final program. *)
let assemble b : Program.t =
  let items = Array.of_list (List.rev b.items) in
  let resolve name =
    match List.assoc_opt name b.labels with
    | Some a -> a
    | None -> raise (Undefined_label name)
  in
  { Program.insns = Array.map (Insn.map_label resolve) items;
    symbols = List.rev b.labels }
