lib/asm/parser.mli: Program
