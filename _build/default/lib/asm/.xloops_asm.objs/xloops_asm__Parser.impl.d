lib/asm/parser.ml: Array Buffer Fmt Insn List Option Program Reg String Xloops_isa
