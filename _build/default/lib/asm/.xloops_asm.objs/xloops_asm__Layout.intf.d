lib/asm/layout.mli: Format
