lib/asm/layout.ml: Fmt List Printf
