lib/asm/program.ml: Array Fmt List Xloops_isa
