lib/asm/builder.ml: Array Insn List Printf Program Reg Xloops_isa
