lib/asm/program.mli: Format Xloops_isa
