(** An assembled XLOOPS program: instructions at word addresses 0..n-1,
    plus the symbol table kept for disassembly and debugging. *)

type t = {
  insns : int Xloops_isa.Insn.t array;
  symbols : (string * int) list;  (** label -> instruction address *)
}

let length p = Array.length p.insns

let address_of_symbol p name =
  match List.assoc_opt name p.symbols with
  | Some a -> a
  | None -> invalid_arg ("Program.address_of_symbol: " ^ name)

let symbol_at p addr =
  List.filter_map (fun (n, a) -> if a = addr then Some n else None) p.symbols

(** Disassemble the whole program, one instruction per line, with label
    definitions interleaved. *)
let pp ppf p =
  Array.iteri
    (fun pc insn ->
       List.iter (fun s -> Fmt.pf ppf "%s:@." s) (symbol_at p pc);
       Fmt.pf ppf "  %4d: %a@." pc Xloops_isa.Insn.pp_resolved insn)
    p.insns

let to_string p = Fmt.str "%a" pp p

(** Encode to flat 32-bit words (loses the symbol table). *)
let encode p = Xloops_isa.Encode.encode_program p.insns

let decode words =
  { insns = Xloops_isa.Encode.decode_program words; symbols = [] }
