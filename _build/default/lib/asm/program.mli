(** An assembled XLOOPS program: instructions at word addresses
    [0..n-1] plus the symbol table (kept for disassembly). *)

type t = {
  insns : int Xloops_isa.Insn.t array;
  symbols : (string * int) list;  (** label -> instruction address *)
}

val length : t -> int

val address_of_symbol : t -> string -> int
(** Raises [Invalid_argument] on unknown symbols. *)

val symbol_at : t -> int -> string list
(** All labels defined at an address. *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with interleaved label definitions; re-parseable
    by {!Parser.parse}. *)

val to_string : t -> string

val encode : t -> int32 array
(** Flat 32-bit machine words (drops the symbol table). *)

val decode : int32 array -> t
