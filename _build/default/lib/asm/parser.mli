(** Textual assembly parser; round-trips with {!Program.pp}.

    One instruction or label per line; labels end with ':'; comments
    start with '#' or ';'.  Register operands accept software names and
    raw [rN]; memory operands are written [off(base)]; branch and xloop
    targets may be symbolic labels or absolute instruction addresses. *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Program.t
