(** Static data-segment layout: kernels allocate named regions, bake the
    returned base addresses into their code as immediates, and
    initialize the regions through {!Xloops_mem.Memory} before running. *)

type region = { name : string; base : int; bytes : int }

type t

val create : ?base:int -> ?limit:int -> unit -> t
(** Data starts at [base] (default 0x1000 — lower addresses trap) and is
    bounded by [limit] (default 1 MiB). *)

val alloc : ?align:int -> t -> name:string -> bytes:int -> int
(** Allocate [bytes] bytes aligned to [align] (default 4); returns the
    base address.  Raises [Invalid_argument] past [limit]. *)

val alloc_words : ?align:int -> t -> name:string -> n:int -> int

val regions : t -> region list
val find : t -> string -> region
val pp : Format.formatter -> t -> unit
