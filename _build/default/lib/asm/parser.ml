(** Textual assembly parser: the front end that turns `.s`-style listings
    into programs, round-tripping with {!Program.pp}.

    Accepted syntax, one instruction or label per line:

    {v
      loop:                      ; labels end with ':'
        lw   t0, 4(a0)           # both comment styles work
        addi t0, t0, 1
        amo_add t1, (a0), t0
        xloop.uc t4, t3, loop
        halt
    v}

    Registers accept both software names ([t0], [s3], [zero]) and raw
    [rN].  Branch/jump targets may be symbolic labels or absolute
    instruction numbers.  Immediates accept decimal and [0x] hex. *)

open Xloops_isa

exception Parse_error of { line : int; msg : string }

let err line fmt =
  Fmt.kstr (fun msg -> raise (Parse_error { line; msg })) fmt

(* -- Tokenizing --------------------------------------------------------- *)

let strip_comment s =
  let cut c s =
    match String.index_opt s c with
    | Some i -> String.sub s 0 i
    | None -> s
  in
  cut '#' (cut ';' s)

let tokenize line s =
  (* Split on whitespace and commas; keep '(' ')' as separate tokens so
     "4(a0)" and "(a0)" parse uniformly. *)
  let buf = Buffer.create 8 in
  let out = ref [] in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
       match c with
       | ' ' | '\t' | ',' -> flush ()
       | '(' | ')' ->
         flush ();
         out := String.make 1 c :: !out
       | c -> Buffer.add_char buf c)
    s;
  flush ();
  ignore line;
  List.rev !out

(* -- Operand parsing ---------------------------------------------------- *)

let reg line s =
  try Reg.of_name s
  with Invalid_argument _ | Failure _ -> err line "bad register '%s'" s

let imm line s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> err line "bad immediate '%s'" s

(** Memory operand written as [off(base)] — already tokenized as
    [off; "("; base; ")"] or ["("; base; ")"] (zero offset). *)
let mem_operand line = function
  | [ off; "("; base; ")" ] -> (imm line off, reg line base)
  | [ "("; base; ")" ] -> (0, reg line base)
  | toks -> err line "bad memory operand '%s'" (String.concat " " toks)

(* -- Mnemonic tables ---------------------------------------------------- *)

let alu_ops =
  [ ("add", Insn.Add); ("sub", Sub); ("and", And); ("or_", Or_);
    ("or", Or_); ("xor", Xor); ("nor", Nor); ("sll", Sll); ("srl", Srl);
    ("sra", Sra); ("slt", Slt); ("sltu", Sltu); ("mul", Mul);
    ("mulh", Mulh); ("div", Div); ("rem", Rem) ]

let fpu_ops =
  [ ("fadd", Insn.Fadd); ("fsub", Fsub); ("fmul", Fmul); ("fdiv", Fdiv);
    ("fmin", Fmin); ("fmax", Fmax); ("feq", Feq); ("flt", Flt);
    ("fle", Fle); ("fcvt_sw", Fcvt_sw); ("fcvt_ws", Fcvt_ws) ]

let widths =
  [ ("b", Insn.B); ("bu", Bu); ("h", H); ("hu", Hu); ("w", W) ]

let amo_ops =
  [ ("amo_add", Insn.Amo_add); ("amo_and", Amo_and); ("amo_or", Amo_or);
    ("amo_xchg", Amo_xchg); ("amo_min", Amo_min); ("amo_max", Amo_max) ]

let branch_conds =
  [ ("beq", Insn.Beq); ("bne", Bne); ("blt", Blt); ("bge", Bge);
    ("bltu", Bltu); ("bgeu", Bgeu) ]

let xpat_of_suffix line s : Insn.xpat =
  let dp_of = function
    | "uc" -> Insn.Uc | "or" -> Or | "om" -> Om | "orm" -> Orm | "ua" -> Ua
    | d -> err line "unknown xloop pattern '%s'" d
  in
  match String.split_on_char '.' s with
  | [ d ] -> { dp = dp_of d; cp = Fixed }
  | [ d; "db" ] -> { dp = dp_of d; cp = Dyn }
  | [ d; "de" ] -> { dp = dp_of d; cp = De }
  | _ -> err line "unknown xloop suffix '%s'" s

(* -- Instruction parsing ------------------------------------------------- *)

let chop_prefix ~prefix s =
  let np = String.length prefix in
  if String.length s > np && String.sub s 0 np = prefix
  then Some (String.sub s np (String.length s - np))
  else None

let chop_suffix_i m =
  (* "addi" -> Add, "slli" -> Sll, ... *)
  let n = String.length m in
  if n < 2 || m.[n - 1] <> 'i' then None
  else List.assoc_opt (String.sub m 0 (n - 1)) alu_ops

let load_store m =
  match m.[0], String.length m with
  | 'l', n when n >= 2 ->
    Option.map (fun w -> `Load w)
      (List.assoc_opt (String.sub m 1 (n - 1)) widths)
  | 's', n when n >= 2 && m <> "sync" && m <> "sub" && m <> "sll"
             && m <> "srl" && m <> "sra" && m <> "slt" && m <> "sltu" ->
    Option.map (fun w -> `Store w)
      (List.assoc_opt (String.sub m 1 (n - 1)) widths)
  | _ -> None

let parse_insn line toks : string Insn.t =
  let r = reg line and im = imm line in
  match toks with
  | [] -> assert false
  | m :: rest ->
    (match List.assoc_opt m alu_ops, rest with
     | Some op, [ rd; rs; rt ] -> Alu (op, r rd, r rs, r rt)
     | Some _, _ -> err line "%s expects rd, rs, rt" m
     | None, _ ->
       match List.assoc_opt m fpu_ops, rest with
       | Some op, [ rd; rs; rt ] -> Fpu (op, r rd, r rs, r rt)
       | Some _, _ -> err line "%s expects rd, rs, rt" m
       | None, _ ->
         match List.assoc_opt m amo_ops, rest with
         | Some op, [ rd; "("; rs; ")"; rt ] ->
           Amo (op, r rd, r rs, r rt)
         | Some _, _ -> err line "%s expects rd, (rs), rt" m
         | None, _ ->
           match List.assoc_opt m branch_conds, rest with
           | Some c, [ rs; rt; l ] -> Branch (c, r rs, r rt, l)
           | Some _, _ -> err line "%s expects rs, rt, label" m
           | None, _ ->
             match chop_prefix ~prefix:"xloop." m, rest with
             | Some suffix, [ rs; rt; l ] ->
               Xloop (xpat_of_suffix line suffix, r rs, r rt, l)
             | Some _, _ -> err line "xloop expects rs, rt, label"
             | None, _ ->
               match m, rest with
               | "lui", [ rd; v ] -> Lui (r rd, im v)
               | "li", _ -> err line "li is a pseudo-op; use the builder"
               | "j", [ l ] -> Jump l
               | "jal", [ l ] -> Jal l
               | "jr", [ rs ] -> Jr (r rs)
               | "addiu.xi", [ rd; rs; v ] -> Xi_addi (r rd, r rs, im v)
               | "addu.xi", [ rd; rs; rt ] -> Xi_add (r rd, r rs, r rt)
               | "sync", [] -> Sync
               | "halt", [] -> Halt
               | "nop", [] -> Nop
               | _ ->
                 (* immediate ALU forms: addi/andi/... and loads/stores *)
                 match chop_suffix_i m, rest with
                 | Some op, [ rd; rs; v ] -> Alui (op, r rd, r rs, im v)
                 | _ ->
                   match load_store m, rest with
                   | Some (`Load w), (rd :: mem) ->
                     let off, base = mem_operand line mem in
                     Load (w, r rd, base, off)
                   | Some (`Store w), (rt :: mem) ->
                     let off, base = mem_operand line mem in
                     Store (w, r rt, base, off)
                   | _ -> err line "unknown mnemonic '%s'" m)

(* -- Whole-program parsing ----------------------------------------------- *)

(** Parse an assembly listing into a program.  Lines may carry optional
    leading "N:" instruction numbers (as printed by {!Program.pp}), which
    are ignored; branch targets may be symbolic labels or absolute
    instruction addresses, so [parse] round-trips with {!Program.pp}. *)
let parse (src : string) : Program.t =
  let items = ref [] in         (* reversed (string Insn.t) list *)
  let count = ref 0 in
  let labels = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun lineno raw ->
       let line = lineno + 1 in
       let s = String.trim (strip_comment raw) in
       if s <> "" then begin
         if String.length s > 1 && s.[String.length s - 1] = ':'
         && not (String.contains s ' ')
         && int_of_string_opt (String.sub s 0 (String.length s - 1)) = None
         then begin
           let name = String.sub s 0 (String.length s - 1) in
           if List.mem_assoc name !labels then
             err line "duplicate label %s" name;
           labels := (name, !count) :: !labels
         end else begin
           let toks = tokenize line s in
           (* optional "N:" prefix from disassembly output *)
           let toks =
             match toks with
             | t :: rest
               when String.length t > 1 && t.[String.length t - 1] = ':'
                 && int_of_string_opt
                      (String.sub t 0 (String.length t - 1)) <> None ->
               rest
             | toks -> toks
           in
           if toks <> [] then begin
             items := (line, parse_insn line toks) :: !items;
             incr count
           end
         end
       end)
    lines;
  let resolve line l =
    match int_of_string_opt l with
    | Some a -> a
    | None ->
      (match List.assoc_opt l !labels with
       | Some a -> a
       | None -> err line "undefined label %s" l)
  in
  let insns =
    List.rev_map
      (fun (line, insn) -> Insn.map_label (resolve line) insn)
      !items
    |> Array.of_list
  in
  { Program.insns; symbols = List.rev !labels }
