(** Event-based dynamic-energy model in the style of McPAT
    (Section IV-A): every timing model counts microarchitectural events
    into {!Xloops_sim.Stats}, and this module prices them.  Per-event
    energies are 45 nm-flavoured picojoules chosen for their {e relative}
    magnitudes; in particular an LPSU instruction-buffer access costs a
    tenth of an L1I access (the ratio the paper's ASIC flow reports),
    out-of-order bookkeeping grows superlinearly with issue width, and
    the LMU adds the paper's 5% overhead on LPSU-side energy. *)

(** Per-event energies in picojoules. *)
type costs = {
  icache_fetch : float;
  ib_fetch : float;
  decode : float;
  rename : float;
  rob : float;
  iq : float;
  rf_read : float;
  rf_write : float;
  alu : float;
  mul : float;
  divide : float;
  fpu : float;
  xi : float;            (** MIVT narrow multiply *)
  branch : float;
  mispredict : float;
  dcache : float;
  dcache_miss : float;   (** extra energy per line fill *)
  amo : float;
  lsq_search : float;
  lsq_write : float;
  cib : float;
  idq : float;
  scan : float;
  lmu_overhead : float;  (** fraction of LPSU-side energy *)
}

val default_costs : costs

val ooo_scale : Xloops_sim.Config.t -> float
(** Width scaling applied to rename/IQ/ROB event prices. *)

type breakdown = {
  fetch : float;
  decode_rename : float;
  window : float;         (** ROB + IQ + mispredict flushes *)
  regfile : float;
  execute : float;
  memory : float;
  lsq : float;
  lpsu_control : float;   (** CIB + IDQ + scan + LMU overhead *)
  total : float;          (** joules; the components are picojoules *)
}

val of_stats : ?costs:costs -> Xloops_sim.Config.t -> Xloops_sim.Stats.t ->
  breakdown

val frequency_hz : float
(** Clock used for power numbers (Table V cycle times are ~2 ns). *)

val power : cycles:int -> breakdown -> float
(** Average dynamic power in watts over a run of [cycles]. *)

val efficiency : baseline:breakdown -> breakdown -> float
(** [> 1] means less energy than the baseline for the same work. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
