(** Event-based dynamic-energy model in the style of McPAT (Section IV-A).

    Every timing model counts microarchitectural events into
    {!Xloops_sim.Stats}; this module prices them.  Per-event energies are
    45 nm-flavoured picojoule figures chosen for their *relative*
    magnitudes (the quantity the paper's conclusions rest on):

    - an access to an LPSU instruction buffer costs a tenth of an L1I
      access (the paper's ASIC flow reports exactly this 10x ratio, and it
      is where most of the specialized-execution energy win comes from);
    - out-of-order structures (rename, issue queue, ROB) are charged per
      dispatched instruction and grow superlinearly with issue width;
    - the LPSU's LSQs are priced like out-of-order LSQ entries and the LMU
      adds a 5% overhead on LPSU-side energy, both per the paper's stated
      methodology. *)

module Stats = Xloops_sim.Stats
module Config = Xloops_sim.Config

(** Per-event energies in picojoules. *)
type costs = {
  icache_fetch : float;
  ib_fetch : float;
  decode : float;
  rename : float;        (* per rename event *)
  rob : float;
  iq : float;
  rf_read : float;
  rf_write : float;
  alu : float;
  mul : float;
  divide : float;
  fpu : float;
  xi : float;            (* MIVT narrow multiply *)
  branch : float;
  mispredict : float;    (* flush+refill event *)
  dcache : float;
  dcache_miss : float;   (* extra energy per miss (line fill) *)
  amo : float;
  lsq_search : float;
  lsq_write : float;
  cib : float;
  idq : float;
  scan : float;          (* per instruction written to an instr buffer *)
  lmu_overhead : float;  (* fraction of LPSU-side energy *)
}

let default_costs = {
  icache_fetch = 18.0;
  ib_fetch = 1.8;        (* 10x cheaper than the I-cache *)
  decode = 2.0;
  rename = 3.5;
  rob = 4.0;
  iq = 3.5;
  rf_read = 1.2;
  rf_write = 1.8;
  alu = 3.0;
  mul = 12.0;
  divide = 22.0;
  fpu = 15.0;
  xi = 2.5;
  branch = 1.0;
  mispredict = 45.0;
  dcache = 25.0;
  dcache_miss = 110.0;
  amo = 32.0;
  lsq_search = 4.0;
  lsq_write = 3.0;
  cib = 1.5;
  idq = 1.0;
  scan = 2.2;
  lmu_overhead = 0.05;
}

(** Width scaling for out-of-order bookkeeping structures: wider machines
    have physically larger rename tables, issue queues and ROBs. *)
let ooo_scale (cfg : Config.t) =
  match cfg.gpp.kind with
  | Config.Inorder -> 1.0
  | Config.Ooo { width; _ } -> 1.0 +. (0.3 *. float_of_int (width - 1))

type breakdown = {
  fetch : float;
  decode_rename : float;
  window : float;         (* ROB + IQ *)
  regfile : float;
  execute : float;
  memory : float;
  lsq : float;
  lpsu_control : float;   (* CIB + IDQ + scan + LMU overhead *)
  total : float;          (* joules *)
}

(** Total dynamic energy in joules for a run's statistics under [cfg]. *)
let of_stats ?(costs = default_costs) (cfg : Config.t) (s : Stats.t)
  : breakdown =
  let f = float_of_int in
  let scale = ooo_scale cfg in
  let fetch =
    (f s.icache_fetches *. costs.icache_fetch)
    +. (f s.ib_fetches *. costs.ib_fetch)
    +. (f s.icache_misses *. costs.dcache_miss)
  in
  let decode_rename =
    (f s.decodes *. costs.decode)
    +. (f s.renames *. costs.rename *. scale)
  in
  let window =
    (f s.rob_ops *. costs.rob *. scale)
    +. (f s.iq_ops *. costs.iq *. scale)
    +. (f s.mispredicts *. costs.mispredict)
  in
  let regfile =
    (f s.rf_reads *. costs.rf_read) +. (f s.rf_writes *. costs.rf_write)
  in
  let execute =
    (f s.alu_ops *. costs.alu)
    +. (f s.mul_ops *. costs.mul)
    +. (f s.div_ops *. costs.divide)
    +. (f s.fpu_ops *. costs.fpu)
    +. (f s.xi_ops *. costs.xi)
    +. (f s.branches *. costs.branch)
  in
  let memory =
    (f s.dcache_accesses *. costs.dcache)
    +. (f s.dcache_misses *. costs.dcache_miss)
    +. (f s.amo_ops *. costs.amo)
  in
  let lsq =
    (f s.lsq_searches *. costs.lsq_search)
    +. (f s.lsq_writes *. costs.lsq_write)
    +. (f s.store_broadcasts *. costs.lsq_search)
  in
  let lpsu_raw =
    (f s.cib_reads *. costs.cib) +. (f s.cib_writes *. costs.cib)
    +. (f s.idq_ops *. costs.idq)
    +. (f s.scan_insns *. costs.scan)
  in
  (* The LMU/arbiter overhead applies to the energy spent on the LPSU
     side: instruction-buffer fetches, LSQ traffic and control. *)
  let lpsu_side = (f s.ib_fetches *. costs.ib_fetch) +. lsq +. lpsu_raw in
  let lpsu_control = lpsu_raw +. (costs.lmu_overhead *. lpsu_side) in
  let pj =
    fetch +. decode_rename +. window +. regfile +. execute +. memory
    +. lsq +. lpsu_control
  in
  { fetch; decode_rename; window; regfile; execute; memory; lsq;
    lpsu_control; total = pj *. 1e-12 }

(** Default clock for power numbers (Table V cycle times are ~2 ns). *)
let frequency_hz = 500e6

(** Average dynamic power in watts over [cycles]. *)
let power ~cycles (b : breakdown) =
  if cycles = 0 then 0.0
  else b.total /. (float_of_int cycles /. frequency_hz)

(** Energy efficiency of [b] relative to a baseline (ratio > 1 means [b]
    consumes less energy for the same work). *)
let efficiency ~baseline (b : breakdown) =
  if b.total = 0.0 then nan else baseline.total /. b.total

let pp_breakdown ppf (b : breakdown) =
  let pct x = if b.total = 0.0 then 0.0
    else 100.0 *. x *. 1e-12 /. b.total in
  Fmt.pf ppf
    "@[<v>total: %.3f uJ@,\
     fetch %.1f%%  decode/rename %.1f%%  window %.1f%%  regfile %.1f%%@,\
     execute %.1f%%  memory %.1f%%  lsq %.1f%%  lpsu-control %.1f%%@]"
    (b.total *. 1e6)
    (pct b.fetch) (pct b.decode_rename) (pct b.window) (pct b.regfile)
    (pct b.execute) (pct b.memory) (pct b.lsq) (pct b.lpsu_control)
