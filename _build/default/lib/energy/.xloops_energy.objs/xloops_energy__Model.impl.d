lib/energy/model.ml: Fmt Xloops_sim
