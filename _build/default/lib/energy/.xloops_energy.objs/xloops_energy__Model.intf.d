lib/energy/model.mli: Format Xloops_sim
