(* Memory subsystem tests: byte-addressable memory with AMOs, the cache
   timing model, and the shared-port arbiter. *)

module Memory = Xloops_mem.Memory
module Cache = Xloops_mem.Cache
module Port = Xloops_mem.Port
open Xloops_isa.Insn

let test_byte_halfword_word () =
  let m = Memory.create () in
  Memory.set_i32 m 0x100 0x11223344l;
  Alcotest.(check int) "byte 0" 0x44 (Memory.get_u8 m 0x100);
  Alcotest.(check int) "byte 3" 0x11 (Memory.get_u8 m 0x103);
  Alcotest.(check int) "half 0" 0x3344 (Memory.get_u16 m 0x100);
  Alcotest.(check int) "half 1" 0x1122 (Memory.get_u16 m 0x102);
  Memory.set_u8 m 0x101 0xFF;
  Alcotest.(check int32) "patched" 0x1122FF44l (Memory.get_i32 m 0x100)

let test_sign_extension () =
  let m = Memory.create () in
  Memory.set_u8 m 0x10 0x80;
  Alcotest.(check int32) "lb sext" (-128l) (Memory.load m B 0x10);
  Alcotest.(check int32) "lbu zext" 128l (Memory.load m Bu 0x10);
  Memory.set_u16 m 0x20 0x8000;
  Alcotest.(check int32) "lh sext" (-32768l) (Memory.load m H 0x20);
  Alcotest.(check int32) "lhu zext" 32768l (Memory.load m Hu 0x20)

let test_store_widths () =
  let m = Memory.create () in
  Memory.store m W 0x40 0x7FFFFFFFl;
  Memory.store m B 0x40 0xABl;
  Alcotest.(check int32) "byte store" 0x7FFFFFABl (Memory.get_i32 m 0x40);
  Memory.store m H 0x42 0x1234l;
  Alcotest.(check int32) "half store" 0x1234FFABl (Memory.get_i32 m 0x40)

let test_alignment_and_bounds () =
  let m = Memory.create ~size:4096 () in
  Alcotest.(check bool) "misaligned word" true
    (try ignore (Memory.get_i32 m 0x41); false
     with Memory.Bad_access _ -> true);
  Alcotest.(check bool) "out of bounds" true
    (try ignore (Memory.get_u8 m 5000); false
     with Memory.Bad_access _ -> true);
  Alcotest.(check bool) "negative" true
    (try ignore (Memory.get_u8 m (-1)); false
     with Memory.Bad_access _ -> true)

let test_amo () =
  let m = Memory.create () in
  Memory.set_i32 m 0x80 10l;
  Alcotest.(check int32) "amo_add old" 10l (Memory.amo m Amo_add 0x80 5l);
  Alcotest.(check int32) "amo_add new" 15l (Memory.get_i32 m 0x80);
  Alcotest.(check int32) "amo_xchg old" 15l (Memory.amo m Amo_xchg 0x80 99l);
  Alcotest.(check int32) "amo_xchg new" 99l (Memory.get_i32 m 0x80);
  ignore (Memory.amo m Amo_min 0x80 50l);
  Alcotest.(check int32) "amo_min" 50l (Memory.get_i32 m 0x80);
  ignore (Memory.amo m Amo_max 0x80 70l);
  Alcotest.(check int32) "amo_max" 70l (Memory.get_i32 m 0x80);
  ignore (Memory.amo m Amo_and 0x80 0x3Cl);
  Alcotest.(check int32) "amo_and" (Int32.logand 70l 0x3Cl)
    (Memory.get_i32 m 0x80);
  ignore (Memory.amo m Amo_or 0x80 0x80l);
  Alcotest.(check bool) "amo_or" true
    (Int32.logand (Memory.get_i32 m 0x80) 0x80l <> 0l)

let test_float_roundtrip () =
  let m = Memory.create () in
  Memory.set_f32 m 0x200 3.25;
  Alcotest.(check (float 0.0001)) "f32" 3.25 (Memory.get_f32 m 0x200)

let test_bulk_helpers () =
  let m = Memory.create () in
  Memory.blit_int_array m ~addr:0x300 [| 1; -2; 3 |];
  Alcotest.(check (array int)) "ints" [| 1; -2; 3 |]
    (Memory.read_int_array m ~addr:0x300 ~n:3);
  Memory.blit_bytes m ~addr:0x400 [| 10; 20; 255 |];
  Alcotest.(check (array int)) "bytes" [| 10; 20; 255 |]
    (Memory.read_bytes m ~addr:0x400 ~n:3)

(* -- cache ------------------------------------------------------------ *)

let test_cache_cold_then_hot () =
  let c = Cache.create ~size_bytes:1024 ~ways:2 ~line_bytes:32 () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit same line" true (Cache.access c 4);
  Alcotest.(check bool) "hit again" true (Cache.access c 31);
  Alcotest.(check bool) "next line misses" false (Cache.access c 32);
  Alcotest.(check int) "2 misses" 2 (Cache.misses c);
  Alcotest.(check int) "4 accesses" 4 (Cache.accesses c)

let test_cache_lru () =
  (* 2 ways, 16 sets of 32B: addresses 0, 1024, 2048 map to set 0. *)
  let c = Cache.create ~size_bytes:1024 ~ways:2 ~line_bytes:32 () in
  ignore (Cache.access c 0);      (* miss, fill way0 *)
  ignore (Cache.access c 1024);   (* miss, fill way1 *)
  Alcotest.(check bool) "0 still hot" true (Cache.access c 0);
  ignore (Cache.access c 2048);   (* miss, evicts 1024 (LRU) *)
  Alcotest.(check bool) "0 survives" true (Cache.access c 0);
  Alcotest.(check bool) "1024 evicted" false (Cache.access c 1024)

let test_cache_fits_working_set () =
  (* A 16KB working set in a 16KB cache: after warmup, all hits. *)
  let c = Cache.create () in
  for i = 0 to 511 do ignore (Cache.access c (i * 32)) done;
  Cache.reset_counters c;
  for _pass = 1 to 3 do
    for i = 0 to 511 do
      Alcotest.(check bool) "hot" true (Cache.access c (i * 32))
    done
  done;
  Alcotest.(check (float 0.001)) "zero miss rate" 0.0 (Cache.miss_rate c)

(* -- port -------------------------------------------------------------- *)

let test_port_width () =
  let p = Port.create ~width:2 "mem" in
  Alcotest.(check bool) "grant 1" true (Port.try_grant p ~now:10);
  Alcotest.(check bool) "grant 2" true (Port.try_grant p ~now:10);
  Alcotest.(check bool) "deny 3" false (Port.try_grant p ~now:10);
  Alcotest.(check bool) "next cycle ok" true (Port.try_grant p ~now:11);
  Alcotest.(check int) "3 grants" 3 (Port.grants p);
  Alcotest.(check int) "1 conflict" 1 (Port.conflicts p)

let test_port_occupancy () =
  let p = Port.create "llfu" in
  Alcotest.(check bool) "div grant" true
    (Port.try_grant ~occupancy:12 p ~now:0);
  Alcotest.(check bool) "busy at 5" false (Port.try_grant p ~now:5);
  Alcotest.(check bool) "busy at 11" false (Port.try_grant p ~now:11);
  Alcotest.(check bool) "free at 12" true (Port.try_grant p ~now:12)

(* -- qcheck properties -------------------------------------------------- *)

let prop_mem_roundtrip =
  QCheck.Test.make ~name:"word write/read roundtrip" ~count:500
    QCheck.(pair (int_range 0 1000) int32)
    (fun (w, v) ->
       let m = Memory.create () in
       let addr = w * 4 in
       Memory.set_i32 m addr v;
       Memory.get_i32 m addr = v)

let prop_byte_assembly =
  QCheck.Test.make ~name:"word equals its four bytes" ~count:500
    QCheck.(pair (int_range 0 1000) int32)
    (fun (w, v) ->
       let m = Memory.create () in
       let addr = w * 4 in
       Memory.set_i32 m addr v;
       let b i = Memory.get_u8 m (addr + i) in
       let reassembled =
         b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
       Int32.of_int reassembled = v
       || Int32.to_int v land 0xFFFFFFFF = reassembled)

let () =
  Alcotest.run "mem"
    [ ("memory",
       [ Alcotest.test_case "byte/half/word" `Quick test_byte_halfword_word;
         Alcotest.test_case "sign extension" `Quick test_sign_extension;
         Alcotest.test_case "store widths" `Quick test_store_widths;
         Alcotest.test_case "alignment/bounds" `Quick
           test_alignment_and_bounds;
         Alcotest.test_case "amo" `Quick test_amo;
         Alcotest.test_case "float" `Quick test_float_roundtrip;
         Alcotest.test_case "bulk" `Quick test_bulk_helpers;
         QCheck_alcotest.to_alcotest prop_mem_roundtrip;
         QCheck_alcotest.to_alcotest prop_byte_assembly ]);
      ("cache",
       [ Alcotest.test_case "cold/hot" `Quick test_cache_cold_then_hot;
         Alcotest.test_case "lru" `Quick test_cache_lru;
         Alcotest.test_case "working set" `Quick
           test_cache_fits_working_set ]);
      ("port",
       [ Alcotest.test_case "width" `Quick test_port_width;
         Alcotest.test_case "occupancy" `Quick test_port_occupancy ]);
    ]
