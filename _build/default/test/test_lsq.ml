(* Load-store-queue tests: byte-accurate overlay semantics checked
   against a simple reference model with QCheck, plus the capacity,
   overlap and drain behaviour the LPSU relies on. *)

open Xloops_isa
module Lsq = Xloops_sim.Lsq
module Memory = Xloops_mem.Memory

let test_forwarding_exact () =
  let mem = Memory.create () in
  Memory.set_i32 mem 0x100 0x11111111l;
  let q = Lsq.create ~max_loads:8 ~max_stores:8 in
  Lsq.record_store q ~addr:0x100 ~bytes:4 ~value:0x22222222l;
  Alcotest.(check int32) "forwarded" 0x22222222l
    (Lsq.read q mem W 0x100);
  Alcotest.(check int32) "memory untouched" 0x11111111l
    (Memory.get_i32 mem 0x100)

let test_partial_overlay () =
  (* A byte store overlays one byte of a word read. *)
  let mem = Memory.create () in
  Memory.set_i32 mem 0x200 0x44332211l;
  let q = Lsq.create ~max_loads:8 ~max_stores:8 in
  Lsq.record_store q ~addr:0x201 ~bytes:1 ~value:0xAAl;
  Alcotest.(check int32) "one byte overlaid" 0x4433AA11l
    (Lsq.read q mem W 0x200)

let test_youngest_store_wins () =
  let mem = Memory.create () in
  let q = Lsq.create ~max_loads:8 ~max_stores:8 in
  Lsq.record_store q ~addr:0x300 ~bytes:4 ~value:1l;
  Lsq.record_store q ~addr:0x300 ~bytes:4 ~value:2l;
  Alcotest.(check int32) "youngest" 2l (Lsq.read q mem W 0x300)

let test_sign_extension_through_overlay () =
  let mem = Memory.create () in
  let q = Lsq.create ~max_loads:8 ~max_stores:8 in
  Lsq.record_store q ~addr:0x400 ~bytes:1 ~value:0x80l;
  Alcotest.(check int32) "lb sext" (-128l) (Lsq.read q mem B 0x400);
  Alcotest.(check int32) "lbu zext" 128l (Lsq.read q mem Bu 0x400);
  Lsq.record_store q ~addr:0x402 ~bytes:2 ~value:0x8000l;
  Alcotest.(check int32) "lh sext" (-32768l) (Lsq.read q mem H 0x402)

let test_capacity () =
  let q = Lsq.create ~max_loads:2 ~max_stores:2 in
  Alcotest.(check bool) "empty" true (Lsq.is_empty q);
  Lsq.record_load q ~addr:0 ~bytes:4;
  Lsq.record_load q ~addr:4 ~bytes:4;
  Alcotest.(check bool) "loads full" true (Lsq.loads_full q);
  Alcotest.(check bool) "stores not full" false (Lsq.stores_full q);
  Lsq.record_store q ~addr:0 ~bytes:4 ~value:0l;
  Lsq.record_store q ~addr:4 ~bytes:4 ~value:0l;
  Alcotest.(check bool) "stores full" true (Lsq.stores_full q);
  Lsq.clear q;
  Alcotest.(check bool) "cleared" true (Lsq.is_empty q)

let test_overlap_checks () =
  let q = Lsq.create ~max_loads:8 ~max_stores:8 in
  Lsq.record_load q ~addr:0x100 ~bytes:4;
  Alcotest.(check bool) "exact" true (Lsq.load_overlaps q ~addr:0x100 ~bytes:4);
  Alcotest.(check bool) "partial low" true
    (Lsq.load_overlaps q ~addr:0x0FE ~bytes:4);
  Alcotest.(check bool) "partial high" true
    (Lsq.load_overlaps q ~addr:0x103 ~bytes:1);
  Alcotest.(check bool) "adjacent below" false
    (Lsq.load_overlaps q ~addr:0x0FC ~bytes:4);
  Alcotest.(check bool) "adjacent above" false
    (Lsq.load_overlaps q ~addr:0x104 ~bytes:4)

let test_drain_order_and_apply () =
  let mem = Memory.create () in
  let q = Lsq.create ~max_loads:8 ~max_stores:8 in
  Lsq.record_store q ~addr:0x500 ~bytes:4 ~value:1l;
  Lsq.record_store q ~addr:0x504 ~bytes:4 ~value:2l;
  Lsq.record_store q ~addr:0x500 ~bytes:4 ~value:3l;  (* overwrites *)
  let order = Lsq.drain_order q in
  Alcotest.(check int) "3 stores" 3 (List.length order);
  List.iter (Lsq.apply_store mem) order;
  Alcotest.(check int32) "final 0x500" 3l (Memory.get_i32 mem 0x500);
  Alcotest.(check int32) "final 0x504" 2l (Memory.get_i32 mem 0x504)

(* -- property: overlay == apply-then-read ------------------------------- *)

(* Random (addr, width, value) store sequences; reading any byte through
   the overlay must equal draining the stores into a copy of memory and
   reading there. *)

let width_gen =
  QCheck.Gen.oneofl [ (Insn.B, 1); (Insn.H, 2); (Insn.W, 4) ]

let stores_gen =
  QCheck.Gen.(list_size (int_range 0 12)
                (pair (int_range 0 15) width_gen))

let arb =
  QCheck.make stores_gen
    ~print:(fun l ->
        String.concat ";"
          (List.map (fun (slot, (_, b)) ->
               Printf.sprintf "(%d,%db)" slot b) l))

let prop_overlay_matches_drain =
  QCheck.Test.make ~name:"overlay read == drained memory read" ~count:500
    arb
    (fun stores ->
       let mem = Memory.create ~size:4096 () in
       let shadow = Memory.create ~size:4096 () in
       (* Seed both memories identically. *)
       for w = 0 to 63 do
         Memory.set_i32 mem (w * 4) (Int32.of_int (w * 0x01010101));
         Memory.set_i32 shadow (w * 4) (Int32.of_int (w * 0x01010101))
       done;
       let q = Lsq.create ~max_loads:64 ~max_stores:64 in
       List.iteri
         (fun i (slot, (_, bytes)) ->
            let addr = slot * 4 in  (* aligned for any width *)
            let value = Int32.of_int (0x5A000000 + i) in
            Lsq.record_store q ~addr ~bytes ~value)
         stores;
       (* Drain into the shadow memory. *)
       List.iter (Lsq.apply_store shadow) (Lsq.drain_order q);
       (* Every word read through the overlay equals the shadow. *)
       let ok = ref true in
       for w = 0 to 63 do
         if Lsq.read q mem W (w * 4) <> Memory.get_i32 shadow (w * 4) then
           ok := false
       done;
       !ok)

let prop_store_overlap_consistent =
  QCheck.Test.make ~name:"store_overlaps agrees with forwarding" ~count:500
    arb
    (fun stores ->
       let mem = Memory.create ~size:4096 () in
       let q = Lsq.create ~max_loads:64 ~max_stores:64 in
       List.iteri
         (fun i (slot, (_, bytes)) ->
            Lsq.record_store q ~addr:(slot * 4) ~bytes
              ~value:(Int32.of_int (i + 1)))
         stores;
       (* If no store overlaps a range, the overlay read must equal raw
          memory. *)
       let ok = ref true in
       for w = 0 to 63 do
         if not (Lsq.store_overlaps q ~addr:(w * 4) ~bytes:4)
         && Lsq.read q mem W (w * 4) <> Memory.get_i32 mem (w * 4) then
           ok := false
       done;
       !ok)

let () =
  Alcotest.run "lsq"
    [ ("overlay",
       [ Alcotest.test_case "exact forwarding" `Quick test_forwarding_exact;
         Alcotest.test_case "partial byte" `Quick test_partial_overlay;
         Alcotest.test_case "youngest wins" `Quick test_youngest_store_wins;
         Alcotest.test_case "sign extension" `Quick
           test_sign_extension_through_overlay;
         QCheck_alcotest.to_alcotest prop_overlay_matches_drain;
         QCheck_alcotest.to_alcotest prop_store_overlap_consistent ]);
      ("structure",
       [ Alcotest.test_case "capacity" `Quick test_capacity;
         Alcotest.test_case "overlap checks" `Quick test_overlap_checks;
         Alcotest.test_case "drain" `Quick test_drain_order_and_apply ]);
    ]
