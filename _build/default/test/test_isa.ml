(* ISA-level unit and property tests: register naming, instruction
   metadata (sources/dest/classes), and encode/decode round-tripping. *)

open Xloops_isa

let test_reg_names () =
  Alcotest.(check string) "zero" "zero" (Reg.name 0);
  Alcotest.(check string) "ra" "ra" (Reg.name 1);
  Alcotest.(check string) "a0" "a0" (Reg.name 4);
  Alcotest.(check string) "t3" "t3" (Reg.name 11);
  Alcotest.(check string) "s0" "s0" (Reg.name 16);
  Alcotest.(check string) "k1" "k1" (Reg.name 31);
  for r = 0 to 31 do
    Alcotest.(check int) "roundtrip" r (Reg.of_name (Reg.name r))
  done

let test_reg_of_name_r_form () =
  Alcotest.(check int) "r7" 7 (Reg.of_name "r7");
  Alcotest.check_raises "bad name" (Invalid_argument "Reg.of_name: x9")
    (fun () -> ignore (Reg.of_name "x9"))

let uc = { Insn.dp = Uc; cp = Fixed }

let test_sources_dest () =
  let i : int Insn.t = Alu (Add, 5, 6, 7) in
  Alcotest.(check (list int)) "alu srcs" [ 6; 7 ] (Insn.sources i);
  Alcotest.(check (option int)) "alu dest" (Some 5) (Insn.dest i);
  let st : int Insn.t = Store (W, 8, 9, 4) in
  Alcotest.(check (list int)) "store srcs" [ 9; 8 ] (Insn.sources st);
  Alcotest.(check (option int)) "store dest" None (Insn.dest st);
  let x : int Insn.t = Xloop (uc, 4, 5, 0) in
  Alcotest.(check (list int)) "xloop srcs" [ 4; 5 ] (Insn.sources x);
  Alcotest.(check (option int)) "r0 dest hidden" None
    (Insn.dest (Alu (Add, 0, 1, 2) : int Insn.t));
  Alcotest.(check (option int)) "jal writes ra" (Some Reg.ra)
    (Insn.dest (Jal 3 : int Insn.t))

let test_classes () =
  Alcotest.(check bool) "mul is llfu" true
    (Insn.is_llfu (Alu (Mul, 1, 2, 3) : int Insn.t));
  Alcotest.(check bool) "fadd is llfu" true
    (Insn.is_llfu (Fpu (Fadd, 1, 2, 3) : int Insn.t));
  Alcotest.(check bool) "add not llfu" false
    (Insn.is_llfu (Alu (Add, 1, 2, 3) : int Insn.t));
  Alcotest.(check bool) "xloop is branch" true
    (Insn.is_branch (Xloop (uc, 1, 2, 0) : int Insn.t));
  Alcotest.(check bool) "xi" true
    (Insn.is_xi (Xi_addi (1, 1, 4) : int Insn.t));
  Alcotest.(check bool) "amo is mem" true
    (Insn.is_mem (Amo (Amo_add, 1, 2, 3) : int Insn.t))

let test_pp_smoke () =
  let s i = Fmt.str "%a" Insn.pp_resolved i in
  Alcotest.(check string) "add" "add s0, t0, t1"
    (s (Alu (Add, 16, 8, 9)));
  Alcotest.(check string) "xloop" "xloop.uc t4, t3, 2"
    (s (Xloop (uc, 12, 11, 2)));
  Alcotest.(check string) "xloop.db" "xloop.om.db t4, t3, 2"
    (s (Xloop ({ dp = Om; cp = Dyn }, 12, 11, 2)));
  Alcotest.(check string) "xi" "addiu.xi t4, t4, 4"
    (s (Xi_addi (12, 12, 4)));
  Alcotest.(check string) "lw" "lw t0, 8(t1)" (s (Load (W, 8, 9, 8)))

(* -- encode/decode ---------------------------------------------------- *)

let reg_gen = QCheck.Gen.int_range 0 31
let imm_gen = QCheck.Gen.int_range (-32768) 32767
let pc_gen = QCheck.Gen.int_range 0 4095
(* Branch targets stay near the pc so the 16-bit offset is in range. *)

let insn_gen : (int * int Insn.t) QCheck.Gen.t =
  let open QCheck.Gen in
  let* pc = pc_gen in
  let target = int_range (max 0 (pc - 1000)) (pc + 1000) in
  let alu_op =
    oneofl Insn.[ Add; Sub; And; Or_; Xor; Nor; Sll; Srl; Sra; Slt; Sltu;
                  Mul; Mulh; Div; Rem ] in
  let fpu_op =
    oneofl Insn.[ Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax; Feq; Flt; Fle;
                  Fcvt_sw; Fcvt_ws ] in
  let width = oneofl Insn.[ B; Bu; H; Hu; W ] in
  let amo_op =
    oneofl Insn.[ Amo_add; Amo_and; Amo_or; Amo_xchg; Amo_min; Amo_max ] in
  let cond = oneofl Insn.[ Beq; Bne; Blt; Bge; Bltu; Bgeu ] in
  let dp = oneofl Insn.[ Uc; Or; Om; Orm; Ua ] in
  let cp = oneofl Insn.[ Fixed; Dyn; De ] in
  let* i =
    oneof
      [ (let* o = alu_op and* a = reg_gen and* b = reg_gen
         and* c = reg_gen in
         return (Insn.Alu (o, a, b, c)));
        (let* o = alu_op and* a = reg_gen and* b = reg_gen
         and* i = imm_gen in
         return (Insn.Alui (o, a, b, i)));
        (let* o = fpu_op and* a = reg_gen and* b = reg_gen
         and* c = reg_gen in
         return (Insn.Fpu (o, a, b, c)));
        (let* a = reg_gen and* i = int_range 0 65535 in
         return (Insn.Lui (a, i)));
        (let* w = width and* a = reg_gen and* b = reg_gen
         and* i = imm_gen in
         return (Insn.Load (w, a, b, i)));
        (let* w = width and* a = reg_gen and* b = reg_gen
         and* i = imm_gen in
         return (Insn.Store (w, a, b, i)));
        (let* o = amo_op and* a = reg_gen and* b = reg_gen
         and* c = reg_gen in
         return (Insn.Amo (o, a, b, c)));
        (let* c = cond and* a = reg_gen and* b = reg_gen
         and* l = target in
         return (Insn.Branch (c, a, b, l)));
        (let* l = int_range 0 100000 in return (Insn.Jump l));
        (let* l = int_range 0 100000 in return (Insn.Jal l));
        (let* a = reg_gen in return (Insn.Jr a));
        (let* d = dp and* c = cp and* a = reg_gen and* b = reg_gen
         and* l = target in
         return (Insn.Xloop ({ dp = d; cp = c }, a, b, l)));
        (let* a = reg_gen and* b = reg_gen and* i = imm_gen in
         return (Insn.Xi_addi (a, b, i)));
        (let* a = reg_gen and* b = reg_gen and* c = reg_gen in
         return (Insn.Xi_add (a, b, c)));
        return Insn.Sync;
        return Insn.Halt;
        return Insn.Nop ]
  in
  return (pc, i)

let arb =
  QCheck.make insn_gen
    ~print:(fun (pc, i) -> Fmt.str "@%d: %a" pc Insn.pp_resolved i)

let prop_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip" ~count:2000 arb
    (fun (pc, i) ->
       let w = Encode.to_word pc i in
       Insn.equal Int.equal (Encode.of_word pc w) i)

let prop_dest_not_source_conflict =
  QCheck.Test.make ~name:"sources are valid registers" ~count:500 arb
    (fun (_, i) ->
       List.for_all Reg.is_valid (Insn.sources i)
       && (match Insn.dest i with Some d -> Reg.is_valid d | None -> true))

let test_encode_errors () =
  Alcotest.check_raises "imm17 rejected"
    (Encode.Encoding_error "imm16 out of range: 40000") (fun () ->
        ignore (Encode.to_word 0 (Alui (Add, 1, 2, 40000) : int Insn.t)));
  Alcotest.check_raises "far branch rejected"
    (Encode.Encoding_error "imm16 out of range: 100000") (fun () ->
        ignore (Encode.to_word 0 (Branch (Beq, 1, 2, 100000) : int Insn.t)))

let test_program_encode () =
  let prog : int Insn.t array =
    [| Alui (Add, 8, 0, 5); Alui (Add, 9, 0, 3); Alu (Add, 10, 8, 9);
       Branch (Bne, 10, 0, 1); Halt |]
  in
  let words = Encode.encode_program prog in
  let back = Encode.decode_program words in
  Array.iteri
    (fun i insn ->
       Alcotest.(check bool) (Printf.sprintf "insn %d" i) true
         (Insn.equal Int.equal insn back.(i)))
    prog

let () =
  Alcotest.run "isa"
    [ ("reg",
       [ Alcotest.test_case "names" `Quick test_reg_names;
         Alcotest.test_case "of_name r-form" `Quick test_reg_of_name_r_form ]);
      ("insn",
       [ Alcotest.test_case "sources/dest" `Quick test_sources_dest;
         Alcotest.test_case "classes" `Quick test_classes;
         Alcotest.test_case "pretty-printing" `Quick test_pp_smoke ]);
      ("encode",
       [ QCheck_alcotest.to_alcotest prop_roundtrip;
         QCheck_alcotest.to_alcotest prop_dest_not_source_conflict;
         Alcotest.test_case "range errors" `Quick test_encode_errors;
         Alcotest.test_case "program" `Quick test_program_encode ]);
    ]
