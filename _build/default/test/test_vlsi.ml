(* VLSI area/cycle-time model tests: Table V anchor points and scaling
   behaviour. *)

module Area = Xloops_vlsi.Area
module Config = Xloops_sim.Config

let within pct a b = Float.abs (a -. b) /. b <= pct

let test_gpp_area () =
  (* The paper's baseline: 0.25 mm^2. *)
  Alcotest.(check bool) "0.25 mm^2" true (within 0.02 Area.gpp_area 0.25)

let test_primary_overhead () =
  (* "only 43% larger than the GPP" for lpsu+i128+ln4 (uc-only RTL LPSU,
     no LSQ area). *)
  let rows = Area.table_v () in
  let primary = List.find (fun r -> r.Area.name = "lpsu+i128+ln4") rows in
  Alcotest.(check bool)
    (Printf.sprintf "overhead %.2f in [1.35, 1.48]" primary.rel_area)
    true
    (primary.rel_area >= 1.35 && primary.rel_area <= 1.48)

let test_lane_scaling () =
  (* 2 -> 8 lanes: overhead ~24% -> ~77%, roughly linear. *)
  let rows = Area.table_v () in
  let rel n = (List.find (fun r -> r.Area.name = n) rows).Area.rel_area in
  let l2 = rel "lpsu+i128+ln2" and l4 = rel "lpsu+i128+ln4" in
  let l6 = rel "lpsu+i128+ln6" and l8 = rel "lpsu+i128+ln8" in
  Alcotest.(check bool) "monotone" true (l2 < l4 && l4 < l6 && l6 < l8);
  Alcotest.(check bool) "ln2 ~ +24%" true (l2 >= 1.18 && l2 <= 1.30);
  Alcotest.(check bool) "ln8 ~ +77%" true (l8 >= 1.60 && l8 <= 1.85);
  (* Linearity: per-lane increments within 10% of each other. *)
  let d1 = l4 -. l2 and d2 = l6 -. l4 and d3 = l8 -. l6 in
  Alcotest.(check bool) "linear in lanes" true
    (within 0.10 d1 d2 && within 0.10 d2 d3)

let test_ib_weak_dependence () =
  (* 96 -> 192 entries: overhead 41% -> 48% in the paper — a weak
     dependence compared to lanes. *)
  let rows = Area.table_v () in
  let rel n = (List.find (fun r -> r.Area.name = n) rows).Area.rel_area in
  let spread = rel "lpsu+i192+ln4" -. rel "lpsu+i096+ln4" in
  Alcotest.(check bool)
    (Printf.sprintf "ib spread %.3f < lane spread" spread) true
    (spread > 0.0
     && spread < rel "lpsu+i128+ln8" -. rel "lpsu+i128+ln2")

let test_cycle_time () =
  let ct lanes = Area.cycle_time_ns { Config.default_lpsu with lanes } in
  Alcotest.(check bool) "grows with lanes" true
    (ct 2 < ct 4 && ct 4 < ct 8);
  Alcotest.(check bool) "ln2 ~ 1.98" true (within 0.03 (ct 2) 1.98);
  Alcotest.(check bool) "ln8 ~ 2.54" true (within 0.03 (ct 8) 2.54);
  let big_ib =
    Area.cycle_time_ns { Config.default_lpsu with ib_entries = 192 } in
  Alcotest.(check bool) "ib slows fetch path" true
    (big_ib > ct 4)

let test_breakdown_consistency () =
  let a = Area.area Config.default_lpsu in
  let parts =
    a.gpp_logic +. a.gpp_icache +. a.gpp_dcache +. a.lmu +. a.lanes
    +. a.instr_buffers +. a.lsq
  in
  Alcotest.(check (float 1e-9)) "parts sum to total" a.total parts

let test_rtl_lpsu_is_uc_only () =
  let l = Area.rtl_lpsu ~ib_entries:128 ~lanes:4 in
  Alcotest.(check bool) "uc only" true
    (l.Config.supported = [ Xloops_isa.Insn.Uc ]);
  Alcotest.(check int) "no lsq" 0 (l.lsq_loads + l.lsq_stores)

let test_overhead_helper () =
  let l = Config.default_lpsu in
  let o = Area.overhead l in
  Alcotest.(check (float 1e-9)) "consistent with area"
    ((Area.area l).total /. Area.gpp_area -. 1.0) o

let () =
  Alcotest.run "vlsi"
    [ ("area",
       [ Alcotest.test_case "gpp baseline" `Quick test_gpp_area;
         Alcotest.test_case "primary +43%" `Quick test_primary_overhead;
         Alcotest.test_case "lane scaling" `Quick test_lane_scaling;
         Alcotest.test_case "ib weak dependence" `Quick
           test_ib_weak_dependence;
         Alcotest.test_case "breakdown" `Quick test_breakdown_consistency;
         Alcotest.test_case "overhead helper" `Quick test_overhead_helper ]);
      ("timing", [ Alcotest.test_case "cycle time" `Quick test_cycle_time ]);
      ("rtl", [ Alcotest.test_case "uc-only config" `Quick
                  test_rtl_lpsu_is_uc_only ]);
    ]
