(* Experiments-engine tests: the Table II pipeline end-to-end for a few
   kernels, with structural invariants on the rows it produces, plus the
   VLSI/energy figure generators. *)

module E = Xloops.Experiments
module Registry = Xloops.Kernels.Registry
module Kernel = Xloops.Kernels.Kernel

let eval name = E.evaluate (Registry.find name)

let test_row_invariants () =
  let ev = eval "war-uc" in
  let row = E.table2_row ev in
  (* Traditional execution costs ~nothing (the paper's 5% band, with a
     little slack for our codegen). *)
  List.iter
    (fun (_, (t, _, _)) ->
       Alcotest.(check bool) (Printf.sprintf "T=%.2f near 1" t) true
         (t > 0.85 && t < 1.25))
    row.t2_speedups;
  (* X/G dynamic-instruction ratio near 1. *)
  Alcotest.(check bool) (Printf.sprintf "X/G=%.2f" row.t2_xg) true
    (row.t2_xg > 0.8 && row.t2_xg < 1.2);
  (* Specialized beats traditional on the in-order host for a uc
     kernel. *)
  let _, (t_io, s_io, a_io) = List.hd row.t2_speedups in
  Alcotest.(check bool) "S > T on io" true (s_io > t_io);
  Alcotest.(check bool) "A between" true (a_io > 0.8 *. t_io);
  Alcotest.(check bool) "body stats" true
    (row.t2_body = (ev.body_min, ev.body_max) && ev.body_min > 0)

let test_host_accessor () =
  let ev = eval "dither-or" in
  List.iter
    (fun name -> ignore (E.host ev name))
    [ "io"; "ooo/2"; "ooo/4" ];
  Alcotest.check_raises "unknown host"
    (Invalid_argument "Experiments.host: zz")
    (fun () -> ignore (E.host ev "zz"))

let test_speedup_is_baseline_relative () =
  let ev = eval "dither-or" in
  let h = E.host ev "io" in
  Alcotest.(check (float 1e-9)) "definition"
    (float_of_int h.base.cycles /. float_of_int h.spec.cycles)
    (E.speedup h h.spec)

let test_energy_eff_positive () =
  let ev = eval "dither-or" in
  List.iter
    (fun p ->
       Alcotest.(check bool)
         (Printf.sprintf "%s/%s eff %.2f > 0" p.E.f8_host p.f8_mode
            p.f8_energy_eff)
         true (p.f8_energy_eff > 0.0 && p.f8_rel_power > 0.0))
    (E.fig8_points ev)

let test_fig6_fractions () =
  let _, cats = E.fig6_row (eval "war-uc") in
  let total = List.fold_left (fun a (_, f) -> a +. f) 0.0 cats in
  Alcotest.(check bool) (Printf.sprintf "sums to %.3f" total) true
    (Float.abs (total -. 1.0) < 1e-6);
  List.iter
    (fun (c, f) ->
       Alcotest.(check bool) (c ^ " in [0,1]") true (f >= 0.0 && f <= 1.0))
    cats

let test_check_failure_raises () =
  (* A kernel whose check always fails must abort the pipeline, not
     produce numbers. *)
  let k = Registry.find "war-uc" in
  let broken = { k with Kernel.check = (fun _ _ -> Error "synthetic") } in
  Alcotest.(check bool) "raises" true
    (try ignore (E.evaluate broken); false
     with E.Check_failed { msg = "synthetic"; _ } -> true)

let test_table5_and_fig10_generators () =
  let rows = Xloops.Vlsi.Area.table_v () in
  Alcotest.(check int) "8 rows" 8 (List.length rows);
  let f10 = E.fig10 () in
  Alcotest.(check int) "6 uc kernels" 6 (List.length f10);
  List.iter
    (fun (name, s, e) ->
       Alcotest.(check bool) (name ^ " sane") true (s >= 0.9 && e >= 0.9))
    f10

(* Global shape assertions over the full Table II kernel set on the
   in-order host — the paper's headline claims, asserted in CI. *)
let test_global_shapes () =
  let rows =
    List.map
      (fun (k : Kernel.t) ->
         let base = E.run_checked ~target:Xloops.Compiler.Compile.general
             ~cfg:Xloops.Sim.Config.io ~mode:Xloops.Sim.Machine.Traditional
             k in
         let trad = E.run_checked ~cfg:Xloops.Sim.Config.io_x
             ~mode:Xloops.Sim.Machine.Traditional k in
         let spec = E.run_checked ~cfg:Xloops.Sim.Config.io_x
             ~mode:Xloops.Sim.Machine.Specialized k in
         (k.name,
          float_of_int base.E.cycles /. float_of_int trad.E.cycles,
          float_of_int base.E.cycles /. float_of_int spec.E.cycles))
      Registry.table2
  in
  (* Traditional execution is near-free on every kernel. *)
  List.iter
    (fun (name, t, _) ->
       Alcotest.(check bool) (Printf.sprintf "%s T=%.2f in band" name t)
         true (t > 0.85 && t < 1.25))
    rows;
  (* Specialized execution always helps the in-order core (the paper's
     "specialized execution always benefits the in-order processor"). *)
  List.iter
    (fun (name, _, s) ->
       Alcotest.(check bool) (Printf.sprintf "%s S=%.2f >= 1" name s) true
         (s >= 0.99))
    rows;
  (* And helps substantially (>= 1.75x) on a clear majority. *)
  let big_wins =
    List.length (List.filter (fun (_, _, s) -> s >= 1.75) rows) in
  Alcotest.(check bool)
    (Printf.sprintf "%d/25 kernels gain >= 1.75x" big_wins) true
    (big_wins >= 15)

let () =
  Alcotest.run "experiments"
    [ ("table2",
       [ Alcotest.test_case "row invariants" `Quick test_row_invariants;
         Alcotest.test_case "host accessor" `Quick test_host_accessor;
         Alcotest.test_case "speedup definition" `Quick
           test_speedup_is_baseline_relative ]);
      ("energy",
       [ Alcotest.test_case "fig8 sanity" `Quick test_energy_eff_positive;
         Alcotest.test_case "fig6 fractions" `Quick test_fig6_fractions ]);
      ("robustness",
       [ Alcotest.test_case "check failure raises" `Quick
           test_check_failure_raises ]);
      ("generators",
       [ Alcotest.test_case "table5 + fig10" `Quick
           test_table5_and_fig10_generators ]);
      ("global",
       [ Alcotest.test_case "table-II shapes" `Slow test_global_shapes ]);
    ]
