(* Energy-model tests: per-event accounting, the instruction-buffer
   vs I-cache ratio that drives the paper's efficiency story, OOO width
   scaling, and end-to-end sanity on real kernel runs. *)

module Energy = Xloops_energy.Model
module Stats = Xloops_sim.Stats
module Config = Xloops_sim.Config
module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry
module Machine = Xloops_sim.Machine

let near ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. Float.max 1.0 b

let test_empty_stats_zero () =
  let b = Energy.of_stats Config.io (Stats.create ()) in
  Alcotest.(check (float 0.0)) "zero" 0.0 b.total

let test_single_events_priced () =
  let c = Energy.default_costs in
  let check_event name setter expected_pj =
    let s = Stats.create () in
    setter s;
    let b = Energy.of_stats Config.io s in
    Alcotest.(check bool)
      (Printf.sprintf "%s = %.1f pJ (got %.3f)" name expected_pj
         (b.total *. 1e12))
      true
      (near (b.total *. 1e12) expected_pj)
  in
  check_event "icache fetch" (fun s -> s.icache_fetches <- 1)
    c.icache_fetch;
  check_event "alu" (fun s -> s.alu_ops <- 1) c.alu;
  check_event "divide" (fun s -> s.div_ops <- 1) c.divide;
  check_event "dcache" (fun s -> s.dcache_accesses <- 1) c.dcache;
  check_event "rf read" (fun s -> s.rf_reads <- 1) c.rf_read

let test_ib_ten_times_cheaper () =
  (* The paper's ASIC flow: LPSU instruction buffer access costs a tenth
     of an I-cache access. *)
  let c = Energy.default_costs in
  Alcotest.(check bool) "10x" true
    (near (c.icache_fetch /. c.ib_fetch) 10.0)

let test_lmu_overhead () =
  (* LPSU-side energy carries the paper's 5% LMU/arbiter overhead. *)
  let s = Stats.create () in
  s.ib_fetches <- 1000;
  let b = Energy.of_stats Config.io_x s in
  let base = 1000.0 *. Energy.default_costs.ib_fetch in
  Alcotest.(check bool) "5% on ib fetches" true
    (near (b.total *. 1e12) (base *. 1.05))

let test_ooo_width_scaling () =
  (* Wider OOO machines pay more per dispatched instruction for rename /
     IQ / ROB. *)
  let s = Stats.create () in
  s.renames <- 1000; s.rob_ops <- 1000; s.iq_ops <- 1000;
  let e cfg = (Energy.of_stats cfg s).total in
  Alcotest.(check bool) "ooo2 > io pricing" true
    (e Config.ooo2 > e Config.io);
  Alcotest.(check bool) "ooo4 > ooo2 pricing" true
    (e Config.ooo4 > e Config.ooo2)

let test_power () =
  let s = Stats.create () in
  s.alu_ops <- 1_000_000;  (* 3 uJ *)
  let b = Energy.of_stats Config.io s in
  (* 3 uJ over 1M cycles at 500 MHz = 2 ms -> 1.5 mW. *)
  let w = Energy.power ~cycles:1_000_000 b in
  Alcotest.(check bool) (Printf.sprintf "power %.4f" w) true
    (near ~eps:1e-6 w 1.5e-3)

let test_efficiency_ratio () =
  let s1 = Stats.create () and s2 = Stats.create () in
  s1.alu_ops <- 200; s2.alu_ops <- 100;
  let b1 = Energy.of_stats Config.io s1 in
  let b2 = Energy.of_stats Config.io s2 in
  Alcotest.(check (float 0.001)) "2x" 2.0
    (Energy.efficiency ~baseline:b1 b2)

(* End-to-end: specialized execution of a uc kernel on io+x must consume
   less energy than traditional execution of the same binary on io — the
   instruction-buffer effect (Figures 8 and 10). *)
let test_specialized_saves_energy () =
  List.iter
    (fun name ->
       let k = Registry.find name in
       let e cfg mode =
         let r = Kernel.run ~cfg ~mode k in
         (Energy.of_stats cfg r.result.stats).total
       in
       let et = e Config.io Machine.Traditional in
       let es = e Config.io_x Machine.Specialized in
       Alcotest.(check bool)
         (Printf.sprintf "%s: %.3g < %.3g uJ" name (es *. 1e6) (et *. 1e6))
         true (es < et))
    [ "war-uc"; "ssearch-uc"; "kmeans-or" ]

(* The breakdown components must sum to the total. *)
let test_breakdown_sums () =
  let k = Registry.find "mm-orm" in
  let r = Kernel.run ~cfg:Config.ooo2_x ~mode:Machine.Specialized k in
  let b = Energy.of_stats Config.ooo2_x r.result.stats in
  let parts_pj =
    b.fetch +. b.decode_rename +. b.window +. b.regfile +. b.execute
    +. b.memory +. b.lsq +. b.lpsu_control
  in
  Alcotest.(check bool) "components sum to total" true
    (near (parts_pj *. 1e-12) b.total)

let () =
  Alcotest.run "energy"
    [ ("model",
       [ Alcotest.test_case "empty" `Quick test_empty_stats_zero;
         Alcotest.test_case "event prices" `Quick test_single_events_priced;
         Alcotest.test_case "IB 10x cheaper" `Quick
           test_ib_ten_times_cheaper;
         Alcotest.test_case "LMU overhead" `Quick test_lmu_overhead;
         Alcotest.test_case "ooo width scaling" `Quick
           test_ooo_width_scaling;
         Alcotest.test_case "power" `Quick test_power;
         Alcotest.test_case "efficiency" `Quick test_efficiency_ratio ]);
      ("end-to-end",
       [ Alcotest.test_case "specialized saves energy" `Quick
           test_specialized_saves_energy;
         Alcotest.test_case "breakdown sums" `Quick test_breakdown_sums ]);
    ]
