(* Application-kernel correctness across compilation targets and execution
   modes.  Every Table II / Table IV kernel self-checks its outputs
   against an OCaml reference after running on:
   - the general-purpose target, traditionally (the serial baseline);
   - the XLOOPS target, traditionally (xloop as branch, .xi as add);
   - the XLOOPS target, specialized on io+x (real LPSU execution);
   - the XLOOPS target without .xi, specialized (the VLSI-mode binary). *)

module Kernel = Xloops_kernels.Kernel
module Registry = Xloops_kernels.Registry
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Compile = Xloops_compiler.Compile

let check_run name (r : Kernel.run) =
  match r.check_result with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let run_case ~target ~cfg ~mode (k : Kernel.t) () =
  let r = Kernel.run ~target ~cfg ~mode k in
  check_run k.name r;
  Alcotest.(check bool) "made progress" true (r.result.cycles > 0)

let cases (k : Kernel.t) =
  [ Alcotest.test_case (k.name ^ " general/trad") `Quick
      (run_case ~target:Compile.general ~cfg:Config.io
         ~mode:Machine.Traditional k);
    Alcotest.test_case (k.name ^ " xloops/trad") `Quick
      (run_case ~target:Compile.xloops ~cfg:Config.io
         ~mode:Machine.Traditional k);
    Alcotest.test_case (k.name ^ " xloops/spec") `Quick
      (run_case ~target:Compile.xloops ~cfg:Config.io_x
         ~mode:Machine.Specialized k);
    Alcotest.test_case (k.name ^ " noxi/spec") `Quick
      (run_case ~target:Compile.xloops_no_xi ~cfg:Config.io_x
         ~mode:Machine.Specialized k) ]

(* A few heavier cross-checks on the out-of-order hosts and adaptive
   mode, on kernels covering each dependence pattern. *)
let representative = [ "sgemm-uc"; "adpcm-or"; "ksack-sm-om"; "mm-orm";
                       "btree-ua"; "bfs-uc-db" ]

let deep_cases name =
  let k = Registry.find name in
  [ Alcotest.test_case (name ^ " ooo4+x spec") `Quick
      (run_case ~target:Compile.xloops ~cfg:Config.ooo4_x
         ~mode:Machine.Specialized k);
    Alcotest.test_case (name ^ " ooo2+x adaptive") `Quick
      (run_case ~target:Compile.xloops ~cfg:Config.ooo2_x
         ~mode:Machine.Adaptive k) ]

(* Pattern-selection audit: the dominant pattern the kernel advertises
   must actually appear among the xloops the compiler emitted. *)
let test_dominant_pattern (k : Kernel.t) () =
  let c = Compile.compile ~target:Compile.xloops k.kernel in
  let pats =
    Array.to_list c.program.insns
    |> List.filter_map (fun insn ->
        match insn with
        | Xloops_isa.Insn.Xloop (p, _, _, _) ->
          Some (Fmt.str "%a" Xloops_isa.Insn.pp_xpat_suffix p)
        | _ -> None)
  in
  if not (List.mem k.dominant pats) then
    Alcotest.failf "%s: dominant %s not among emitted patterns [%s]"
      k.name k.dominant (String.concat "; " pats)

(* Registry invariants: unique names, lookup works, expected counts. *)
let test_registry () =
  let names = Registry.names in
  Alcotest.(check int) "25 Table II kernels" 25
    (List.length Registry.table2);
  Alcotest.(check int) "8 Table IV variants" 8
    (List.length Registry.table4);
  Alcotest.(check bool) "extensions present" true
    (List.length Registry.extensions >= 1);
  Alcotest.(check int) "unique names"
    (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n -> ignore (Registry.find n))
    names;
  Alcotest.(check bool) "unknown rejected" true
    (try ignore (Registry.find "nope"); false
     with Invalid_argument _ -> true)

let () =
  let correctness =
    List.concat_map cases Registry.all in
  let deep = List.concat_map deep_cases representative in
  let patterns =
    List.map
      (fun (k : Kernel.t) ->
         Alcotest.test_case k.name `Quick (test_dominant_pattern k))
      Registry.all
  in
  Alcotest.run "kernels"
    [ ("registry", [ Alcotest.test_case "invariants" `Quick test_registry ]);
      ("correctness", correctness);
      ("deep", deep);
      ("patterns", patterns) ]
