test/test_vlsi.ml: Alcotest Float List Printf Xloops_isa Xloops_sim Xloops_vlsi
