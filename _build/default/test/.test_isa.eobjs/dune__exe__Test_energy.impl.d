test/test_energy.ml: Alcotest Float List Printf Xloops_energy Xloops_kernels Xloops_sim
