test/test_isa.ml: Alcotest Array Encode Fmt Insn Int List Printf QCheck QCheck_alcotest Reg Xloops_isa
