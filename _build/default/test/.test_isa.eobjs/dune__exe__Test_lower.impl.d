test/test_lower.ml: Alcotest Array Ast Compile Float Int32 List Xloops_compiler Xloops_kernels Xloops_mem Xloops_sim
