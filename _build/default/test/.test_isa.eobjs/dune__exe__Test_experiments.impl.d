test/test_experiments.ml: Alcotest Float List Printf Xloops
