test/test_kernels.ml: Alcotest Array Fmt List String Xloops_compiler Xloops_isa Xloops_kernels Xloops_sim
