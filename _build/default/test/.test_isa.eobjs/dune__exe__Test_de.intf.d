test/test_de.mli:
