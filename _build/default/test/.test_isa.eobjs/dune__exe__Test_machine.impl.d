test/test_machine.ml: Alcotest Array Insn Int32 List Printf Xloops_asm Xloops_compiler Xloops_isa Xloops_kernels Xloops_mem Xloops_sim
