test/test_reconsider.mli:
