test/test_asm.ml: Alcotest Array Insn Int List String Xloops_asm Xloops_compiler Xloops_isa Xloops_kernels Xloops_mem Xloops_sim
