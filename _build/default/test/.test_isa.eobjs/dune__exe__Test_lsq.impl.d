test/test_lsq.ml: Alcotest Insn Int32 List Printf QCheck QCheck_alcotest String Xloops_isa Xloops_mem Xloops_sim
