test/test_regalloc.ml: Alcotest Array Codegen Int32 Ir List Printf Regalloc Xloops_compiler Xloops_isa Xloops_mem Xloops_sim
