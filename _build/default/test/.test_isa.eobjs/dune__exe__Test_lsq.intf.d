test/test_lsq.mli:
