test/test_mem.ml: Alcotest Int32 QCheck QCheck_alcotest Xloops_isa Xloops_mem
