test/test_reconsider.ml: Alcotest Array Ast Compile Printf Xloops_compiler Xloops_isa Xloops_kernels Xloops_mem Xloops_sim
