test/test_vlsi.mli:
