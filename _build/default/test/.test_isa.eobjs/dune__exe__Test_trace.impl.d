test/test_trace.ml: Alcotest Buffer List String Xloops_compiler Xloops_kernels Xloops_mem Xloops_sim
