test/test_fuzz.ml: Alcotest Ast Compile Fmt QCheck QCheck_alcotest Xloops_compiler Xloops_kernels Xloops_mem Xloops_sim
