test/test_exec.ml: Alcotest Array Insn Int32 QCheck QCheck_alcotest Reg Xloops_asm Xloops_isa Xloops_mem Xloops_sim
