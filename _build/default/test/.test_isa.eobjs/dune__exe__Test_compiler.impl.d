test/test_compiler.ml: Alcotest Analysis Array Ast Compile Fmt List Printf String Xloops_asm Xloops_compiler Xloops_isa Xloops_kernels Xloops_mem Xloops_sim
