test/test_lpsu.mli:
