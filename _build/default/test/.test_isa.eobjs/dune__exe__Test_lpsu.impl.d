test/test_lpsu.ml: Alcotest Array Insn List Printf Reg Xloops_asm Xloops_isa Xloops_kernels Xloops_mem Xloops_sim
