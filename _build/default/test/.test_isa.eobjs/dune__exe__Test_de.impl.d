test/test_de.ml: Alcotest Array Ast Compile Fmt Int List Printf Xloops_asm Xloops_compiler Xloops_isa Xloops_kernels Xloops_mem Xloops_sim
