test/test_scan.ml: Alcotest Array Insn List Reg Xloops_asm Xloops_isa Xloops_sim
