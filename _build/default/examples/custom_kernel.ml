(* Bringing your own kernel: the path a downstream user takes to run
   their own loop on XLOOPS hardware.

   1. Write the loop in Loopc with a `#pragma xloops` annotation.
   2. Wrap it in a Kernel.t with a dataset initializer and a self-check.
   3. Run it on any machine/mode through the same entry point the
      paper's 25 kernels use — and read the machine's view of it
      (pattern classification, body size, dependence behaviour).

   The kernel here is a banded matrix-vector multiply with a carried
   checksum, picked because it exercises three patterns at once: the row
   loop is unordered, the checksum accumulation is register-carried, and
   the band keeps subscripts interesting for the dependence tests.

   Run with:  dune exec examples/custom_kernel.exe *)

module C = Xloops.Compiler
module Sim = Xloops.Sim
module K = Xloops.Kernels
module Memory = Xloops.Mem.Memory

let n = 64          (* rows *)
let band = 4        (* half-bandwidth *)
let width = (2 * band) + 1
let mat_len = n * width

let kernel : C.Ast.kernel =
  let open C.Ast.Syntax in
  { k_name = "banded-mv";
    arrays = [ { a_name = "mat"; a_ty = I32; a_len = mat_len };
               { a_name = "vec"; a_ty = I32; a_len = n };
               { a_name = "res"; a_ty = I32; a_len = n };
               { a_name = "checksum"; a_ty = I32; a_len = 1 } ];
    consts = [ ("n", n); ("band", band); ("w", width) ];
    k_body =
      [ (* y = A*x, band storage: mat[r*w + (c - r + band)] *)
        for_ ~pragma:Unordered "r" (i 0) (v "n")
          [ C.Ast.Decl ("acc", i 0);
            for_ "d" (i 0) (v "w")
              [ C.Ast.Decl ("c", v "r" + v "d" - v "band");
                C.Ast.If
                  ((v "c" >= i 0) land (v "c" < v "n"),
                   [ C.Ast.Assign
                       ("acc",
                        v "acc"
                        + ("mat".%[(v "r" * v "w") + v "d"]
                           * "vec".%[v "c"])) ],
                   []) ];
            C.Ast.Store ("res", v "r", v "acc") ];
        (* carried checksum over the result: ordered -> xloop.or *)
        C.Ast.Decl ("sum", i 0);
        for_ ~pragma:Ordered "r2" (i 0) (v "n")
          [ C.Ast.Assign ("sum", (v "sum" lxor "res".%[v "r2"]) + i 1) ];
        C.Ast.Store ("checksum", i 0, v "sum") ] }

(* The dataset and the reference, exactly as the built-in kernels do it. *)
let mat = K.Dataset.ints ~seed:4242 ~n:mat_len ~bound:9
let vec = K.Dataset.ints ~seed:2424 ~n ~bound:9

let reference () =
  let w = (2 * band) + 1 in
  let res =
    Array.init n (fun r ->
        let acc = ref 0 in
        for d = 0 to w - 1 do
          let c = r + d - band in
          if c >= 0 && c < n then acc := !acc + (mat.((r * w) + d) * vec.(c))
        done;
        !acc)
  in
  let sum = ref 0 in
  for r = 0 to n - 1 do sum := (!sum lxor res.(r)) + 1 done;
  (res, !sum)

let descriptor : K.Kernel.t =
  { name = "banded-mv"; suite = "user"; dominant = "uc";
    kernel;
    init =
      (fun base mem ->
         Memory.blit_int_array mem ~addr:(base "mat") mat;
         Memory.blit_int_array mem ~addr:(base "vec") vec);
    check =
      (fun base mem ->
         let res, sum = reference () in
         K.Kernel.all_checks
           [ K.Kernel.check_int_array ~what:"res" ~expected:res
               (Memory.read_int_array mem ~addr:(base "res") ~n);
             K.Kernel.check_int_array ~what:"checksum" ~expected:[| sum |]
               (Memory.read_int_array mem ~addr:(base "checksum") ~n:1) ]) }

let () =
  (* What did the compiler make of the annotations? *)
  let c = C.Compile.compile descriptor.kernel in
  Fmt.pr "compiled xloops:@.";
  Array.iter
    (fun insn ->
       match insn with
       | Xloops.Isa.Insn.Xloop (pat, _, _, _) ->
         Fmt.pr "  xloop.%a@." Xloops.Isa.Insn.pp_xpat_suffix pat
       | _ -> ())
    c.program.insns;
  List.iter
    (fun (body, xpc, len) ->
       Fmt.pr "  body %d..%d (%d instructions)@." body xpc len)
    (C.Compile.xloop_bodies c.program);
  (* Run it everywhere the paper would. *)
  Fmt.pr "@.%-22s %10s %8s@." "machine/mode" "cycles" "check";
  List.iter
    (fun (label, cfg, mode) ->
       let r = K.Kernel.run ~cfg ~mode descriptor in
       Fmt.pr "%-22s %10d %8s@." label r.result.cycles
         (match r.check_result with Ok () -> "PASS" | Error _ -> "FAIL"))
    [ ("io traditional", Sim.Config.io, Sim.Machine.Traditional);
      ("io+x specialized", Sim.Config.io_x, Sim.Machine.Specialized);
      ("ooo/2+x specialized", Sim.Config.ooo2_x, Sim.Machine.Specialized);
      ("ooo/4+x adaptive", Sim.Config.ooo4_x, Sim.Machine.Adaptive) ]
