examples/graph_worklist.ml: Array Fmt Xloops
