examples/quickstart.ml: Fmt Xloops
