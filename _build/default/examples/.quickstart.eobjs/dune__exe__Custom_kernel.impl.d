examples/custom_kernel.ml: Array Fmt List Xloops
