examples/quickstart.mli:
