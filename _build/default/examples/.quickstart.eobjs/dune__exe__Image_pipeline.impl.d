examples/image_pipeline.ml: Fmt List Xloops
