examples/graph_worklist.mli:
