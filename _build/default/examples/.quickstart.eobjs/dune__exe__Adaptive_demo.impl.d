examples/adaptive_demo.ml: Fmt Xloops
