(* Image pipeline: the paper's introduction motivates specialization with
   media kernels.  This example chains two of them — RGB->CMYK conversion
   (unordered) and error-diffusion dithering (ordered through registers) —
   on every machine configuration, showing how the same binaries move
   between traditional and specialized execution.

   Run with:  dune exec examples/image_pipeline.exe *)

module K = Xloops.Kernels
module Sim = Xloops.Sim
module C = Xloops.Compiler

let stages = [ K.Registry.find "rgb2cmyk-uc"; K.Registry.find "dither-or" ]

let configs =
  [ (Sim.Config.io, Sim.Machine.Traditional, "io, traditional");
    (Sim.Config.io_x, Sim.Machine.Specialized, "io+x, specialized");
    (Sim.Config.ooo2, Sim.Machine.Traditional, "ooo/2, traditional");
    (Sim.Config.ooo2_x, Sim.Machine.Specialized, "ooo/2+x, specialized") ]

let () =
  Fmt.pr "%-22s" "stage";
  List.iter (fun (_, _, label) -> Fmt.pr " %22s" label) configs;
  Fmt.pr "@.";
  List.iter
    (fun (k : K.Kernel.t) ->
       Fmt.pr "%-22s" k.name;
       List.iter
         (fun (cfg, mode, _) ->
            let r = K.Kernel.run ~cfg ~mode k in
            (match r.check_result with
             | Ok () -> ()
             | Error m -> Fmt.failwith "%s failed: %s" k.name m);
            Fmt.pr " %14d cycles " r.result.cycles)
         configs;
       Fmt.pr "@.")
    stages;
  (* And the energy story: specialized execution fetches from the LPSU
     instruction buffer instead of the I-cache. *)
  Fmt.pr "@.energy per stage (uJ), io traditional vs io+x specialized:@.";
  List.iter
    (fun (k : K.Kernel.t) ->
       let e cfg mode =
         let r = K.Kernel.run ~cfg ~mode k in
         (Xloops.Energy.Model.of_stats cfg r.result.stats).total *. 1e6
       in
       let et = e Sim.Config.io Sim.Machine.Traditional in
       let es = e Sim.Config.io_x Sim.Machine.Specialized in
       Fmt.pr "  %-14s %.3f -> %.3f (%.2fx more efficient)@."
         k.name et es (et /. es))
    stages
