(* Adaptive execution (Section II-E): the hardware profiles traditional
   execution, then specialized execution, and commits to the faster one —
   per xloop, using the adaptive profiling table.

   We run two kernels on the aggressive ooo/4+x machine:
   - kmeans-or has a one-instruction inter-iteration critical path, so the
     LPSU beats even a 4-way out-of-order core: adaptive stays specialized;
   - adpcm-or has a long register-carried critical path, so the
     out-of-order core wins: adaptive migrates the loop back to the GPP.

   Run with:  dune exec examples/adaptive_demo.exe *)

module K = Xloops.Kernels
module Sim = Xloops.Sim

let show name =
  let k = K.Registry.find name in
  let cycles mode =
    let r = K.Kernel.run ~cfg:Sim.Config.ooo4_x ~mode k in
    (match r.check_result with
     | Ok () -> ()
     | Error m -> Fmt.failwith "%s: %s" name m);
    r.result
  in
  let t = cycles Sim.Machine.Traditional in
  let s = cycles Sim.Machine.Specialized in
  let a = cycles Sim.Machine.Adaptive in
  Fmt.pr "%-12s traditional %7d | specialized %7d | adaptive %7d \
          (migrations back to GPP: %d)@."
    name t.cycles s.cycles a.cycles a.stats.migrations;
  let best = min t.cycles s.cycles in
  Fmt.pr "%-12s adaptive is within %.0f%% of the better mode@."
    "" (100.0 *. (float_of_int a.cycles /. float_of_int best -. 1.0))

let () =
  Fmt.pr "adaptive execution on ooo/4+x:@.@.";
  show "kmeans-or";
  Fmt.pr "@.";
  show "adpcm-or"
