bin/xloops_run.ml: Arg Cmd Cmdliner Fmt List Term Xloops
