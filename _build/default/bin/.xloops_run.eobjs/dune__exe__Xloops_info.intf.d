bin/xloops_info.mli:
