bin/xloops_trace.mli:
