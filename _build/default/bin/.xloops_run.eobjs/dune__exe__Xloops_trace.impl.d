bin/xloops_trace.ml: Arg Cmd Cmdliner Fmt Term Xloops
