bin/xloops_run.mli:
