bin/xloops_disasm.ml: Arg Cmd Cmdliner Fmt List Term Xloops
