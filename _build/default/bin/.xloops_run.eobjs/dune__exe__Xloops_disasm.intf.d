bin/xloops_disasm.mli:
