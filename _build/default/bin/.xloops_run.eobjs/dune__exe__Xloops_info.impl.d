bin/xloops_info.ml: Arg Cmd Cmdliner Fmt List String Term Xloops
