(* Shared plumbing for the CLI tools: common argument parsers, the
   robustness flags (--fuel, --watchdog-cycles, --fault-seed, ...), and a
   top-level guard that turns expected failures — unknown kernel or
   config, malformed arguments, fuel exhaustion — into a one-line
   diagnostic on stderr and a nonzero exit instead of a backtrace. *)

open Cmdliner
module Sim = Xloops.Sim
module C = Xloops.Compiler

let parse_mode = function
  | "T" | "t" -> Sim.Machine.Traditional
  | "S" | "s" -> Sim.Machine.Specialized
  | "A" | "a" -> Sim.Machine.Adaptive
  | m -> invalid_arg ("unknown mode " ^ m ^ " (expected T, S or A)")

let parse_target = function
  | "general" -> C.Compile.general
  | "xloops" -> C.Compile.xloops
  | "xloops-no-xi" -> C.Compile.xloops_no_xi
  | t -> invalid_arg
           ("unknown target " ^ t
            ^ " (expected general, xloops or xloops-no-xi)")

let fuel_arg =
  let doc = "GPP instruction budget; exhausting it is an error." in
  Arg.(value & opt int 500_000_000 & info [ "fuel" ] ~doc)

let watchdog_arg =
  let doc = "LPSU no-progress watchdog threshold in cycles (0 = off)." in
  Arg.(value & opt int 50_000 & info [ "watchdog-cycles" ] ~doc)

let fault_seed_arg =
  let doc = "Inject a deterministic transient-fault plan with this seed \
             into every specialized run." in
  Arg.(value & opt (some int) None & info [ "fault-seed" ] ~doc)

let fault_events_arg =
  let doc = "Number of fault events in the plan (with --fault-seed)." in
  Arg.(value & opt int 12 & info [ "fault-events" ] ~doc)

let no_degrade_arg =
  let doc = "Disable the traditional-fallback safety net: a hung or \
             faulted specialized run fails the simulation instead of \
             rolling back." in
  Arg.(value & flag & info [ "no-degrade" ] ~doc)

let faults_of ~seed ~events =
  Option.map (fun s -> Sim.Fault.plan ~seed:s ~events ()) seed

let deadline_arg =
  let doc = "Per-run wall-clock deadline in milliseconds (0 = none): a \
             run that finishes slower than this fails as a timeout." in
  Arg.(value & opt int 0 & info [ "deadline-ms" ] ~doc)

let max_retries_arg =
  let doc = "Extra attempts for transient failures (blown deadlines, \
             I/O errors, environmental crashes), with deterministic \
             exponential backoff between attempts." in
  Arg.(value & opt int 0 & info [ "max-retries" ] ~doc)

(** Run one simulation thunk under the CLI retry policy
    ({!Xloops.Failure.with_retries}).  [salt] keys the deterministic
    backoff schedule — pass the spec digest. *)
let with_policy ~deadline_ms ~max_retries ~salt f =
  let deadline_ms = if deadline_ms <= 0 then None else Some deadline_ms in
  let o = Xloops.Failure.with_retries ?deadline_ms ~max_retries ~salt f in
  if o.Xloops.Failure.attempts > 1 then
    Fmt.epr "[retry] %s: %d attempt(s), %d ms total@." salt
      o.Xloops.Failure.attempts o.Xloops.Failure.elapsed_ms;
  o

(** Assemble the parsed CLI arguments into one first-class run plan —
    the record the evaluation engine executes and caches. *)
let spec_of ~config ~mode ~target ~fuel ~watchdog ~fault_seed
    ~fault_events ~no_degrade kernel : Xloops.Run_spec.t =
  Xloops.Run_spec.make
    ~target:(parse_target target)
    ~fuel ~watchdog
    ?fault_seed:(Option.map (fun s -> (s, fault_events)) fault_seed)
    ~degrade:(not no_degrade)
    ~cfg:(Sim.Config.by_name config)
    ~mode:(parse_mode mode)
    kernel

(** Print one summary line when fault injection / degradation was live. *)
let report_robustness (s : Sim.Stats.t) =
  if s.faults_injected > 0 || s.watchdog_hangs > 0 || s.degradations > 0
  then
    Fmt.pr "robust:  %d fault(s) injected, %d hang(s), %d degradation(s)@."
      s.faults_injected s.watchdog_hangs s.degradations

let guarded f =
  try f () with
  | Xloops.Failure.Abort msg ->
    Fmt.epr "aborted: %s@." msg; 3
  | Xloops.Failure.Sim_failed sf ->
    Fmt.epr "error: simulation failed: %a@." Sim.Machine.pp_failure sf; 2
  | Invalid_argument msg | Stdlib.Failure msg ->
    Fmt.epr "error: %s@." msg; 2
  | Sys_error msg ->
    Fmt.epr "error: %s@." msg; 2
