(* xloops_serve: the persistent spec-batch daemon.  Accepts batches of
   serialized run specs over a Unix or TCP socket (wire protocol v2,
   v1 clients still served), dedupes in-flight work by spec digest,
   schedules across a bounded worker pool with admission control, and
   consults/populates the content-addressed result cache before
   simulating.  With --cache-index the cache coordinates through the
   mmap'd shared fleet index, so several daemons (one per digest-prefix
   shard, fronted by xloops_proxy) share one bounded blob store.

     dune exec bin/xloops_serve.exe -- --listen unix:/tmp/xloops.sock
     dune exec bin/xloops_serve.exe -- --listen tcp:127.0.0.1:7440 \
       --jobs 4 --cache-dir _xloops_cache --cache-index _xloops_cache/index *)

open Cmdliner
module Service = Xloops_service
module P = Service.Protocol

let listen_arg =
  let doc = "Address to listen on: unix:PATH, tcp:HOST:PORT, or \
             HOST:PORT (port 0 lets the kernel pick; the bound address \
             is printed on stderr)." in
  Arg.(value & opt string "unix:xloops.sock" & info [ "listen" ] ~doc)

let queue_limit_arg =
  let doc = "Admission bound: a batch that would push the queue past \
             this many jobs is rejected whole (OVERLOADED)." in
  Arg.(value & opt int 256 & info [ "queue-limit" ] ~doc)

let chaos_seed_arg =
  let doc = "Inject a seeded chaos plan server-side: worker stalls and \
             transient crashes, cache read errors, blob corruption.  \
             The retry policy must absorb all of it." in
  Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~doc)

let chaos_events_arg =
  let doc = "Number of chaos events in the plan (with --chaos-seed)." in
  Arg.(value & opt int 12 & info [ "chaos-events" ] ~doc)

let banner_arg =
  let doc = "Free-text banner echoed to clients in the WELCOME frame." in
  Arg.(value & opt string "xloops_serve" & info [ "banner" ] ~doc)

let quiet_arg =
  let doc = "Suppress the [serve] diagnostics on stderr." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

(* Client mode: instead of starting a daemon, talk to the one already
   listening on --listen.  This is the ops/CI surface — no OCaml code
   needed to ask a daemon how it is doing or to drain it. *)
let client_op_arg =
  Arg.(value
       & vflag None
           [ (Some `Stats,
              info [ "stats" ]
                ~doc:"Query the daemon at --listen and print its STATS \
                      line (queue depth, in-flight, cache hit/miss, \
                      per-worker utilization, uptime).");
             (Some `Ping,
              info [ "ping" ]
                ~doc:"Health-check the daemon at --listen.");
             (Some `Shutdown,
              info [ "shutdown" ]
                ~doc:"Ask the daemon at --listen to drain and exit.") ])

let json_arg =
  let doc = "With --stats: print one line of JSON instead of prose \
             (machine-readable; CI gates parse it)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let client addr op ~json =
  match Service.Client.connect addr with
  | Error e ->
    Fmt.epr "xloops_serve: %a@." Service.Client.pp_connect_error e;
    1
  | Ok s ->
    let outcome =
      match op with
      | `Ping -> Result.map (fun () -> Fmt.pr "pong@.") (Service.Client.ping s)
      | `Stats ->
        Result.map
          (fun st ->
             if json then print_endline (P.stats_to_json st)
             else Fmt.pr "%a@." P.pp_stats st)
          (Service.Client.stats s)
      | `Shutdown ->
        Result.map (fun () -> Fmt.pr "shutdown acknowledged@.")
          (Service.Client.shutdown s)
    in
    Service.Client.close s;
    (match outcome with
     | Ok () -> 0
     | Error (Service.Client.Submit_rejected e) ->
       Fmt.epr "xloops_serve: %a@." P.pp_error e; 1
     | Error (Service.Client.Submit_conn m) ->
       Fmt.epr "xloops_serve: %s@." m; 1)

let serve listen client_op json queue_limit (eng : Cli_common.engine_args)
    chaos_seed chaos_events banner quiet =
  Cli_common.guarded @@ fun () ->
  match P.parse_addr listen with
  | Error msg -> Fmt.epr "xloops_serve: %s@." msg; 2
  | Ok addr ->
  match client_op with
  | Some op -> client addr op ~json
  | None ->
    let chaos =
      Option.map
        (fun seed ->
           Xloops.Chaos.plan ~kinds:Xloops.Chaos.recoverable_kinds ~seed
             ~events:chaos_events ())
        chaos_seed
    in
    let cache = Cli_common.cache_of_engine ?chaos ~tag:"serve" eng in
    let cfg =
      Service.Server.config ~addr ~workers:eng.Cli_common.ea_jobs
        ~max_queue:queue_limit ?cache ?chaos
        ?deadline_ms:eng.Cli_common.ea_deadline_ms
        ~max_retries:eng.Cli_common.ea_max_retries ~banner
        ~verbose:(not quiet) ()
    in
    let t = Service.Server.start cfg in
    (* SIGINT/SIGTERM drain and stop; a client SHUTDOWN does the same. *)
    let stop_sig _ =
      (* Signal context: just flag the shutdown; [wait] below returns
         and the main thread does the real teardown. *)
      ignore (Thread.create (fun () -> Service.Server.stop t) ())
    in
    if Sys.unix then begin
      Sys.set_signal Sys.sigint (Sys.Signal_handle stop_sig);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_sig)
    end;
    Fmt.epr "[serve] ready on %a (exec tier %s)@." P.pp_addr
      (Service.Server.bound_addr t)
      (Xloops.Sim.Tier.name eng.Cli_common.ea_exec_tier);
    Service.Server.wait t;
    Service.Server.stop t;
    0

let cmd =
  let doc = "run the persistent XLOOPS simulation service" in
  Cmd.v (Cmd.info "xloops_serve" ~doc)
    Term.(const serve $ listen_arg $ client_op_arg $ json_arg
          $ queue_limit_arg
          (* the daemon amortizes compilation across requests, so its
             functional runs default to the fastest tier *)
          $ Cli_common.engine_term ~pool:true
              ~tier_default:Xloops.Sim.Tier.Block ()
          $ chaos_seed_arg $ chaos_events_arg $ banner_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
