(* xloops_info: inventory of the reproduction — kernels (with their
   dependence patterns, body sizes and dynamic instruction counts),
   machine configurations, and the VLSI area model.

     dune exec bin/xloops_info.exe
     dune exec bin/xloops_info.exe -- --vlsi *)

open Cmdliner
module K = Xloops.Kernels
module Sim = Xloops.Sim
module C = Xloops.Compiler

let vlsi_arg =
  let doc = "Print the Table V area/cycle-time model instead." in
  Arg.(value & flag & info [ "vlsi" ] ~doc)

let kernels () =
  Fmt.pr "%-16s %-3s %-6s %-10s %10s %6s@." "kernel" "st" "type" "bodies"
    "dyn-insns" "X/G";
  List.iter
    (fun (k : K.Kernel.t) ->
       let c = C.Compile.compile k.kernel in
       let bodies =
         C.Compile.xloop_bodies c.program
         |> List.map (fun (_, _, l) -> string_of_int l)
         |> String.concat ","
       in
       let dyn target =
         match K.Kernel.dynamic_insns ~target k with
         | Ok n -> n
         | Error msg -> failwith msg
       in
       let gpi = dyn C.Compile.general in
       let xli = dyn C.Compile.xloops in
       Fmt.pr "%-16s %-3s %-6s %-10s %10d %6.2f@." k.name k.suite
         k.dominant bodies gpi
         (float_of_int xli /. float_of_int gpi))
    K.Registry.all;
  Fmt.pr "@.configurations:@.";
  List.iter
    (fun (c : Sim.Config.t) ->
       match c.lpsu with
       | None -> Fmt.pr "  %-14s (no LPSU)@." c.name
       | Some l ->
         Fmt.pr "  %-14s lanes=%d ib=%d lsq=%d+%d ports=%dm/%dl mt=%d@."
           c.name l.lanes l.ib_entries l.lsq_loads l.lsq_stores
           l.mem_ports l.llfu_ports l.threads_per_lane)
    Sim.Config.(baselines @ specialized @ design_space @ extensions)

let vlsi () =
  Fmt.pr "%a" Xloops.Vlsi.Area.pp_table_v (Xloops.Vlsi.Area.table_v ());
  let a = Xloops.Vlsi.Area.area Sim.Config.default_lpsu in
  Fmt.pr "@.primary LPSU breakdown (mm^2):@.";
  Fmt.pr "  gpp logic %.3f, I$ %.3f, D$ %.3f@."
    a.gpp_logic a.gpp_icache a.gpp_dcache;
  Fmt.pr "  lmu %.4f, lanes %.4f, instr buffers %.4f, lsq %.4f@."
    a.lmu a.lanes a.instr_buffers a.lsq

let run show_vlsi =
  Cli_common.guarded @@ fun () ->
  if show_vlsi then vlsi () else kernels ();
  0

let cmd =
  let doc = "list the XLOOPS kernels, configurations and VLSI model" in
  Cmd.v (Cmd.info "xloops_info" ~doc) Term.(const run $ vlsi_arg)

let () = exit (Cmd.eval' cmd)
