(* xloops_run: compile one application kernel and simulate it on a chosen
   machine configuration and execution mode, printing cycles, IPC, the
   microarchitectural event counts and the energy breakdown.

     dune exec bin/xloops_run.exe -- -k sgemm-uc -c io+x -m S
     dune exec bin/xloops_run.exe -- -k adpcm-or -c ooo/4+x -m A -t xloops *)

open Cmdliner
module K = Xloops.Kernels
module Sim = Xloops.Sim
module C = Xloops.Compiler
module Energy = Xloops.Energy.Model

let kernel_arg =
  let doc = "Kernel name (see xloops_info for the list)." in
  Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc)

let config_arg =
  let doc = "Machine configuration: io, ooo/2, ooo/4, io+x, ooo/2+x, \
             ooo/4+x, or a Figure 9 design point." in
  Arg.(value & opt string "io+x" & info [ "c"; "config" ] ~doc)

let mode_arg =
  let doc = "Execution mode: T (traditional), S (specialized), \
             A (adaptive)." in
  Arg.(value & opt string "S" & info [ "m"; "mode" ] ~doc)

let target_arg =
  let doc = "Compilation target: general, xloops, xloops-no-xi." in
  Arg.(value & opt string "xloops" & info [ "t"; "target" ] ~doc)

let verbose_arg =
  let doc = "Print the full event-counter dump." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let run kernel config mode target verbose eng fault_seed fault_events
    no_degrade =
  Cli_common.guarded @@ fun () ->
  let k = K.Registry.find kernel in
  let spec =
    Cli_common.spec_of ~eng ~config ~mode ~target ~fault_seed
      ~fault_events ~no_degrade kernel
  in
  let cfg = spec.Xloops.Run_spec.cfg and mode = spec.Xloops.Run_spec.mode in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Cli_common.with_policy ~eng
      ~salt:(Xloops.Digest_hex.to_hex (Xloops.Run_spec.digest spec))
      (fun () -> Xloops.Run_spec.run_result ~kernel:k spec)
  in
  match outcome.result with
  | Error f ->
    Fmt.epr "error: %s: %a@." k.name Xloops.Failure.pp_tagged f;
    2
  | Ok (Error f) ->
    Fmt.epr "error: %s: %a@." k.name Xloops.Failure.pp_tagged
      (Xloops.Failure.Sim f);
    2
  | Ok (Ok r) ->
    let wall = Unix.gettimeofday () -. t0 in
    let res = r.K.Kernel.result in
    res.stats.wall_ns <- int_of_float (1e9 *. wall);
    Fmt.pr "kernel:  %s (%s, dominant %s)@." k.name k.suite k.dominant;
    Fmt.pr "machine: %s, mode %s@." cfg.Sim.Config.name
      (Sim.Machine.mode_name mode);
    Fmt.pr "check:   %s@."
      (match r.check_result with
       | Ok () -> "PASS"
       | Error m -> "FAIL: " ^ m);
    Fmt.pr "cycles:  %d@." res.cycles;
    Fmt.pr "insns:   %d (IPC %.2f)@." res.insns
      (float_of_int res.insns /. float_of_int (max 1 res.cycles));
    Fmt.pr "xloops:  %d specialized, %d iterations, %d violations@."
      res.stats.xloops_specialized res.stats.iterations
      res.stats.violations;
    Cli_common.report_robustness res.stats;
    let e = Energy.of_stats cfg res.stats in
    Fmt.pr "energy:  %a@." Energy.pp_breakdown e;
    Fmt.pr "power:   %.1f mW at %.0f MHz@."
      (Energy.power ~cycles:res.cycles e *. 1e3)
      (Energy.frequency_hz /. 1e6);
    if verbose then begin
      Fmt.pr "@.host:    wall_ns %d (%.1f MIPS simulated)@."
        res.stats.wall_ns
        (float_of_int res.insns /. Float.max wall 1e-9 /. 1e6);
      Fmt.pr "spec:    %a (digest of the canonical run plan)@."
        Xloops.Digest_hex.pp (Xloops.Run_spec.digest spec);
      Fmt.pr "%a@." Sim.Stats.pp res.stats;
      (match Sim.Stats.lane_breakdown res.stats with
       | breakdown when res.stats.ib_fetches > 0 ->
         Fmt.pr "@.lane cycles:";
         List.iter (fun (c, f) -> Fmt.pr " %s=%.2f" c f) breakdown;
         Fmt.pr "@."
       | _ -> ())
    end;
    (match r.check_result with Ok () -> 0 | Error _ -> 1)

let cmd =
  let doc = "simulate an XLOOPS application kernel" in
  Cmd.v (Cmd.info "xloops_run" ~doc)
    Term.(const run $ kernel_arg $ config_arg $ mode_arg $ target_arg
          $ verbose_arg $ Cli_common.engine_term ()
          $ Cli_common.fault_seed_arg $ Cli_common.fault_events_arg
          $ Cli_common.no_degrade_arg)

let () = exit (Cmd.eval' cmd)
