(* xloops_trace: run a kernel with execution tracing — the gem5-style
   debug view of what the machine is doing.

     dune exec bin/xloops_trace.exe -- -k kmeans-or -l decisions
     dune exec bin/xloops_trace.exe -- -k ksack-sm-om -l lanes -n 120
     dune exec bin/xloops_trace.exe -- -k war-uc -l insns -n 200 *)

open Cmdliner
module K = Xloops.Kernels
module Sim = Xloops.Sim
module C = Xloops.Compiler
module Memory = Xloops.Mem.Memory

let kernel_arg =
  let doc = "Kernel name (see xloops_info for the list)." in
  Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc)

let config_arg =
  let doc = "Machine configuration (default io+x)." in
  Arg.(value & opt string "io+x" & info [ "c"; "config" ] ~doc)

let mode_arg =
  let doc = "Execution mode: T, S or A (default S)." in
  Arg.(value & opt string "S" & info [ "m"; "mode" ] ~doc)

let level_arg =
  let doc = "Trace level: decisions, lanes, or insns." in
  Arg.(value & opt string "decisions" & info [ "l"; "level" ] ~doc)

let limit_arg =
  let doc = "Stop after this many trace lines (0 = unlimited)." in
  Arg.(value & opt int 200 & info [ "n"; "limit" ] ~doc)

let verbose_arg =
  let doc = "Also report host-side simulation throughput." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let parse_level = function
  | "decisions" -> Sim.Trace.Decisions
  | "lanes" -> Sim.Trace.Lanes
  | "insns" -> Sim.Trace.Insns
  | l -> invalid_arg
           ("unknown trace level " ^ l
            ^ " (expected decisions, lanes or insns)")

let run kernel config mode level limit verbose eng fault_seed
    fault_events no_degrade =
  Cli_common.guarded @@ fun () ->
  let k = K.Registry.find kernel in
  let spec =
    Cli_common.spec_of ~eng ~config ~mode ~target:"xloops"
      ~fault_seed ~fault_events ~no_degrade kernel
  in
  let trace = Sim.Trace.to_stdout ~level:(parse_level level) ~limit () in
  let t0 = Unix.gettimeofday () in
  let policy_outcome =
    Cli_common.with_policy ~eng
      ~salt:(Xloops.Digest_hex.to_hex (Xloops.Run_spec.digest spec))
      (fun () -> Xloops.Run_spec.run_result ~kernel:k ~trace spec)
  in
  let wall = Unix.gettimeofday () -. t0 in
  if Sim.Trace.exhausted (Some trace) then
    Fmt.pr "... (trace limit reached)@.";
  match policy_outcome.result with
  | Error f ->
    Fmt.epr "error: %s: %a@." k.name Xloops.Failure.pp_tagged f;
    2
  | Ok (Error f) ->
    Fmt.epr "error: %s: %a@." k.name Xloops.Failure.pp_tagged
      (Xloops.Failure.Sim f);
    2
  | Ok (Ok r) ->
    let res = r.K.Kernel.result in
    res.stats.wall_ns <- int_of_float (1e9 *. wall);
    Fmt.pr "@.%s on %s: %d cycles, %d iterations, check %s@."
      k.name spec.Xloops.Run_spec.cfg.Sim.Config.name res.cycles
      res.stats.iterations
      (match r.check_result with
       | Ok () -> "PASS"
       | Error m -> "FAIL: " ^ m);
    if verbose then begin
      Fmt.pr "host:    wall_ns %d (%.1f MIPS simulated)@."
        res.stats.wall_ns
        (float_of_int res.insns /. Float.max wall 1e-9 /. 1e6);
      (* What the threaded tier would fuse in this program.  The traced
         (timed, observed) execution itself always runs unfused through
         Exec.step; this reports the functional-run plan legibly. *)
      let plan =
        Sim.Threaded.superops r.K.Kernel.compiled.C.Compile.program in
      let tally =
        List.fold_left
          (fun acc (_, rule) ->
             match List.assoc_opt rule acc with
             | Some n -> (rule, n + 1) :: List.remove_assoc rule acc
             | None -> (rule, 1) :: acc)
          [] plan
        |> List.sort (fun (_, a) (_, b) -> compare b a)
      in
      Fmt.pr "superops: %d fused pair(s)%a@." (List.length plan)
        Fmt.(list ~sep:nop
               (fun ppf (r, n) -> pf ppf ", %s x%d" r n))
        tally
    end;
    Cli_common.report_robustness res.stats;
    0

let cmd =
  let doc = "trace the execution of an XLOOPS kernel" in
  Cmd.v (Cmd.info "xloops_trace" ~doc)
    Term.(const run $ kernel_arg $ config_arg $ mode_arg $ level_arg
          $ limit_arg $ verbose_arg $ Cli_common.engine_term ()
          $ Cli_common.fault_seed_arg $ Cli_common.fault_events_arg
          $ Cli_common.no_degrade_arg)

let () = exit (Cmd.eval' cmd)
