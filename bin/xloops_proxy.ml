(* xloops_proxy: the fleet balancer.  Speaks the same wire protocol on
   both faces — clients connect to it exactly as they would a single
   xloops_serve daemon; upstream it routes every spec to the shard
   owning its digest prefix, fans batches out, merges the RESULT
   streams, retries transient shard trouble, and (unless --no-failover)
   executes the specs of a shard that stays down locally through the
   shared cache.

     dune exec bin/xloops_proxy.exe -- --listen tcp:127.0.0.1:7500 \
       --shard 00-7f=tcp:127.0.0.1:7501 --shard 80-ff=tcp:127.0.0.1:7502 \
       --cache-dir _xloops_cache --cache-index _xloops_cache/index *)

open Cmdliner
module Service = Xloops_service
module P = Service.Protocol

let listen_arg =
  let doc = "Address to listen on: unix:PATH, tcp:HOST:PORT, or \
             HOST:PORT (port 0 lets the kernel pick; the bound address \
             is printed on stderr)." in
  Arg.(value & opt string "unix:xloops-proxy.sock" & info [ "listen" ] ~doc)

let shard_arg =
  let doc = "One fleet shard as LO-HI=ADDR: an inclusive range of \
             two-hex-digit digest prefixes and the daemon serving it, \
             e.g. 00-7f=tcp:127.0.0.1:7501.  Repeatable; the ranges \
             must partition 00-ff exactly." in
  Arg.(value & opt_all string [] & info [ "shard" ] ~doc ~docv:"LO-HI=ADDR")

let chunk_arg =
  let doc = "Specs per upstream SUBMIT frame." in
  Arg.(value & opt int 64 & info [ "chunk" ] ~doc)

let max_attempts_arg =
  let doc = "Connection/submission rounds per shard (with deterministic \
             backoff) before the shard is declared down." in
  Arg.(value & opt int 5 & info [ "max-attempts" ] ~doc)

let no_failover_arg =
  let doc = "Do not execute a dead shard's specs locally; answer them \
             with transient IO errors instead (the client retries)." in
  Arg.(value & flag & info [ "no-failover" ] ~doc)

let banner_arg =
  let doc = "Free-text banner echoed to clients in the WELCOME frame." in
  Arg.(value & opt string "xloops_proxy" & info [ "banner" ] ~doc)

let quiet_arg =
  let doc = "Suppress the [proxy] diagnostics on stderr." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let client_op_arg =
  Arg.(value
       & vflag None
           [ (Some `Stats,
              info [ "stats" ]
                ~doc:"Query the proxy at --listen and print the summed \
                      fleet STATS (each shard's counters added; dead \
                      shards contribute nothing).");
             (Some `Ping,
              info [ "ping" ]
                ~doc:"Health-check the proxy at --listen.");
             (Some `Shutdown,
              info [ "shutdown" ]
                ~doc:"Ask the proxy at --listen to exit (the fleet's \
                      daemons keep running).") ])

let json_arg =
  let doc = "With --stats: print one line of JSON instead of prose." in
  Arg.(value & flag & info [ "json" ] ~doc)

let client addr op ~json =
  match Service.Client.connect addr with
  | Error e ->
    Fmt.epr "xloops_proxy: %a@." Service.Client.pp_connect_error e;
    1
  | Ok s ->
    let outcome =
      match op with
      | `Ping -> Result.map (fun () -> Fmt.pr "pong@.") (Service.Client.ping s)
      | `Stats ->
        Result.map
          (fun st ->
             if json then print_endline (P.stats_to_json st)
             else Fmt.pr "%a@." P.pp_stats st)
          (Service.Client.stats s)
      | `Shutdown ->
        Result.map (fun () -> Fmt.pr "shutdown acknowledged@.")
          (Service.Client.shutdown s)
    in
    Service.Client.close s;
    (match outcome with
     | Ok () -> 0
     | Error (Service.Client.Submit_rejected e) ->
       Fmt.epr "xloops_proxy: %a@." P.pp_error e; 1
     | Error (Service.Client.Submit_conn m) ->
       Fmt.epr "xloops_proxy: %s@." m; 1)

let proxy listen shard_specs client_op json chunk max_attempts no_failover
    (eng : Cli_common.engine_args) banner quiet =
  Cli_common.guarded @@ fun () ->
  match P.parse_addr listen with
  | Error msg -> Fmt.epr "xloops_proxy: %s@." msg; 2
  | Ok addr ->
  match client_op with
  | Some op -> client addr op ~json
  | None ->
    if shard_specs = [] then begin
      Fmt.epr "xloops_proxy: no shards (give at least one --shard)@."; 2
    end
    else
      match Service.Shard.of_specs shard_specs with
      | Error msg -> Fmt.epr "xloops_proxy: %s@." msg; 2
      | Ok shards ->
        let cache = Cli_common.cache_of_engine ~tag:"proxy" eng in
        let cfg =
          Service.Proxy.config ~addr ~shards ~chunk ~max_attempts
            ?deadline_ms:eng.Cli_common.ea_deadline_ms
            ~max_retries:eng.Cli_common.ea_max_retries
            ~failover:(not no_failover) ?cache ~banner ~verbose:(not quiet)
            ()
        in
        let t = Service.Proxy.start cfg in
        let stop_sig _ =
          ignore (Thread.create (fun () -> Service.Proxy.stop t) ())
        in
        if Sys.unix then begin
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop_sig);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_sig)
        end;
        Fmt.epr "[proxy] ready on %a@." P.pp_addr
          (Service.Proxy.bound_addr t);
        Service.Proxy.wait t;
        Service.Proxy.stop t;
        0

let cmd =
  let doc = "balance XLOOPS simulation batches across a sharded fleet" in
  Cmd.v (Cmd.info "xloops_proxy" ~doc)
    Term.(const proxy $ listen_arg $ shard_arg $ client_op_arg $ json_arg
          $ chunk_arg $ max_attempts_arg $ no_failover_arg
          $ Cli_common.engine_term ~pool:true
              ~tier_default:Xloops.Sim.Tier.Block ()
          $ banner_arg $ quiet_arg)

let () = exit (Cmd.eval' cmd)
