(* xloops_disasm: show a kernel's Loopc source and the assembly the XLOOPS
   compiler produces for it, with the xloop bodies annotated.

     dune exec bin/xloops_disasm.exe -- -k war-om
     dune exec bin/xloops_disasm.exe -- -k sgemm-uc -t general *)

open Cmdliner
module K = Xloops.Kernels
module C = Xloops.Compiler

let kernel_arg =
  let doc = "Kernel name (see xloops_info for the list)." in
  Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc)

let target_arg =
  let doc = "Compilation target: general, xloops, xloops-no-xi." in
  Arg.(value & opt string "xloops" & info [ "t"; "target" ] ~doc)

let source_arg =
  let doc = "Also print the Loopc source." in
  Arg.(value & flag & info [ "s"; "source" ] ~doc)

let run kernel target source =
  Cli_common.guarded @@ fun () ->
  let k = K.Registry.find kernel in
  let c = C.Compile.compile ~target:(Cli_common.parse_target target)
      k.K.Kernel.kernel
  in
  if source then
    Fmt.pr "── Loopc source ─────────────────────────────@.%a@.@."
      C.Ast.pp_kernel k.kernel;
  Fmt.pr "── data layout ──────────────────────────────@.%a@."
    Xloops.Asm.Layout.pp c.layout;
  Fmt.pr "── assembly (%d instructions, %d spill slots) ─@.%s@."
    (Xloops.Asm.Program.length c.program) c.spill_slots
    (Xloops.Asm.Program.to_string c.program);
  let bodies = C.Compile.xloop_bodies c.program in
  if bodies <> [] then begin
    Fmt.pr "── xloop bodies ─────────────────────────────@.";
    List.iter
      (fun (body, xpc, len) ->
         Fmt.pr "  pc %d..%d: %d instructions@." body xpc len)
      bodies
  end;
  0

let cmd =
  let doc = "disassemble a compiled XLOOPS kernel" in
  Cmd.v (Cmd.info "xloops_disasm" ~doc)
    Term.(const run $ kernel_arg $ target_arg $ source_arg)

let () = exit (Cmd.eval' cmd)
