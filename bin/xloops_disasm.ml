(* xloops_disasm: show a kernel's Loopc source and the assembly the XLOOPS
   compiler produces for it, with the xloop bodies annotated.

     dune exec bin/xloops_disasm.exe -- -k war-om
     dune exec bin/xloops_disasm.exe -- -k sgemm-uc -t general
     dune exec bin/xloops_disasm.exe -- -k war-uc --fused *)

open Cmdliner
module K = Xloops.Kernels
module C = Xloops.Compiler
module Program = Xloops.Asm.Program

let kernel_arg =
  let doc = "Kernel name (see xloops_info for the list)." in
  Arg.(required & opt (some string) None & info [ "k"; "kernel" ] ~doc)

let target_arg =
  let doc = "Compilation target: general, xloops, xloops-no-xi." in
  Arg.(value & opt string "xloops" & info [ "t"; "target" ] ~doc)

let source_arg =
  let doc = "Also print the Loopc source." in
  Arg.(value & flag & info [ "s"; "source" ] ~doc)

let fused_arg =
  let doc = "Annotate the listing with the threaded tier's superop plan: \
             fused pairs keep their constituent instructions, marked as \
             head (with the fusion rule) and tail." in
  Arg.(value & flag & info [ "f"; "fused" ] ~doc)

(* The fused view prints every constituent instruction — a superop is a
   dispatch-level pairing, not a rewrite — with head/tail markers, so
   the listing stays re-parseable modulo the trailing comments. *)
let pp_fused_listing ppf (p : Program.t) =
  let plan = Xloops.Sim.Threaded.superops p in
  Array.iteri
    (fun pc insn ->
       List.iter (fun s -> Fmt.pf ppf "%s:@." s) (Program.symbol_at p pc);
       let marker =
         match List.assoc_opt pc plan,
               List.exists (fun (h, _) -> h = pc - 1) plan with
         | Some r, false -> Fmt.str "  ; fused head (%s)" r
         | Some r, true -> Fmt.str "  ; fused tail + head (%s)" r
         | None, true -> "  ; fused tail"
         | None, false -> ""
       in
       Fmt.pf ppf "  %4d: %-32s%s@." pc
         (Fmt.str "%a" Xloops.Isa.Insn.pp_resolved insn) marker)
    p.insns;
  Fmt.pf ppf "@.superop plan: %d fused pair(s)@." (List.length plan)

let run kernel target source fused =
  Cli_common.guarded @@ fun () ->
  let k = K.Registry.find kernel in
  let c = C.Compile.compile ~target:(Cli_common.parse_target target)
      k.K.Kernel.kernel
  in
  if source then
    Fmt.pr "── Loopc source ─────────────────────────────@.%a@.@."
      C.Ast.pp_kernel k.kernel;
  Fmt.pr "── data layout ──────────────────────────────@.%a@."
    Xloops.Asm.Layout.pp c.layout;
  if fused then
    Fmt.pr "── assembly (%d instructions, %d spill slots, fused view) ─@.%a@."
      (Program.length c.program) c.spill_slots pp_fused_listing c.program
  else
    Fmt.pr "── assembly (%d instructions, %d spill slots) ─@.%s@."
      (Program.length c.program) c.spill_slots
      (Program.to_string c.program);
  let bodies = C.Compile.xloop_bodies c.program in
  if bodies <> [] then begin
    Fmt.pr "── xloop bodies ─────────────────────────────@.";
    List.iter
      (fun (body, xpc, len) ->
         Fmt.pr "  pc %d..%d: %d instructions@." body xpc len)
      bodies
  end;
  0

let cmd =
  let doc = "disassemble a compiled XLOOPS kernel" in
  Cmd.v (Cmd.info "xloops_disasm" ~doc)
    Term.(const run $ kernel_arg $ target_arg $ source_arg $ fused_arg)

let () = exit (Cmd.eval' cmd)
