(* Specialized-execution correctness and performance sanity checks, using
   small hand-assembled xloop kernels for each dependence pattern. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config

let uc = { Insn.dp = Uc; cp = Fixed }
let or_ = { Insn.dp = Or; cp = Fixed }
let om = { Insn.dp = Om; cp = Fixed }
let ua = { Insn.dp = Ua; cp = Fixed }
let uc_db = { Insn.dp = Uc; cp = Dyn }

let t0 = Reg.t0 and t1 = Reg.t1 and t2 = Reg.t2 and t3 = Reg.t3
let t4 = Reg.t4 and t5 = Reg.t5 and t6 = Reg.t6 and t7 = Reg.t7
let s0 = 16 and s1 = 17 and s2 = 18

(* -- vector add: a[i] = b[i] + c[i] with xloop.uc ------------------- *)

let base_b = 0x1000 and base_c = 0x2000 and base_a = 0x3000

let vector_add_prog n =
  let b = B.create () in
  B.li b t0 base_b;
  B.li b t1 base_c;
  B.li b t2 base_a;
  B.li b t3 (n * 4);  (* bound, in byte offsets *)
  B.li b t4 0;        (* index *)
  B.label b "body";
  B.add b t5 t0 t4;
  B.lw b t6 t5 0;
  B.add b t5 t1 t4;
  B.lw b t7 t5 0;
  B.add b t6 t6 t7;
  B.add b t5 t2 t4;
  B.sw b t6 t5 0;
  B.xi_addi b t4 t4 4;
  B.xloop b uc t4 t3 "body";
  B.halt b;
  B.assemble b

let setup_vectors n =
  let mem = Memory.create () in
  for i = 0 to n - 1 do
    Memory.set_int mem (base_b + 4 * i) (i * 3);
    Memory.set_int mem (base_c + 4 * i) (i * 5 + 1)
  done;
  mem

let check_vector_add n mem =
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "a[%d]" i)
      ((i * 3) + (i * 5 + 1))
      (Memory.get_int mem (base_a + 4 * i))
  done

let run ~cfg ~mode prog mem =
  Machine.ok_exn (Machine.simulate ~cfg ~mode prog mem)

let test_uc_traditional () =
  let n = 64 in
  let prog = vector_add_prog n in
  let mem = setup_vectors n in
  let r = run ~cfg:Config.io ~mode:Traditional prog mem in
  check_vector_add n mem;
  Alcotest.(check bool) "ran some cycles" true (r.cycles > n)

let test_uc_specialized_correct () =
  let n = 64 in
  let prog = vector_add_prog n in
  let mem = setup_vectors n in
  let r = run ~cfg:Config.io_x ~mode:Specialized prog mem in
  check_vector_add n mem;
  Alcotest.(check bool) "specialized xloops > 0" true
    (r.stats.xloops_specialized > 0)

let test_uc_speedup () =
  let n = 256 in
  let prog = vector_add_prog n in
  let m1 = setup_vectors n in
  let t = run ~cfg:Config.io ~mode:Traditional prog m1 in
  let m2 = setup_vectors n in
  let s = run ~cfg:Config.io_x ~mode:Specialized prog m2 in
  check_vector_add n m2;
  let speedup = float_of_int t.cycles /. float_of_int s.cycles in
  Alcotest.(check bool)
    (Printf.sprintf "uc speedup %.2f > 1.5" speedup)
    true (speedup > 1.5)

(* -- prefix sum with xloop.or --------------------------------------- *)
(* out[i] = out[i-1] + in[i], carried in register s0 (the CIR). *)

let prefix_prog n =
  let b = B.create () in
  B.li b t0 base_b;   (* in *)
  B.li b t2 base_a;   (* out *)
  B.li b t3 (n * 4);
  B.li b t4 0;
  B.li b s0 0;        (* running sum: CIR *)
  B.label b "body";
  B.add b t5 t0 t4;
  B.lw b t6 t5 0;
  B.add b s0 s0 t6;   (* read + write CIR *)
  B.add b t5 t2 t4;
  B.sw b s0 t5 0;
  B.xi_addi b t4 t4 4;
  B.xloop b or_ t4 t3 "body";
  B.halt b;
  (* store final CIR after the loop: defined for xloop.or *)
  b

let prefix_finish b =
  (* overwrite the trailing halt: assemble adds nothing, so rebuild *)
  B.assemble b

let test_or_correct () =
  let n = 100 in
  let b = prefix_prog n in
  let prog = prefix_finish b in
  let mem = Memory.create () in
  for i = 0 to n - 1 do Memory.set_int mem (base_b + 4 * i) (i + 1) done;
  let r = run ~cfg:Config.io_x ~mode:Specialized prog mem in
  let expect = ref 0 in
  for i = 0 to n - 1 do
    expect := !expect + (i + 1);
    Alcotest.(check int) (Printf.sprintf "prefix[%d]" i) !expect
      (Memory.get_int mem (base_a + 4 * i))
  done;
  Alcotest.(check bool) "used cib" true (r.stats.cib_reads > 0)

(* -- ordered-through-memory: recurrence a[i] = a[i-1] + b[i] -------- *)

let om_prog n =
  let b = B.create () in
  B.li b t0 base_b;
  B.li b t2 base_a;
  B.li b t3 (n * 4);
  B.li b t4 4;        (* start at i = 1 *)
  B.label b "body";
  B.add b t5 t2 t4;
  B.lw b t6 t5 (-4);  (* a[i-1]: depends on the previous iteration *)
  B.add b t7 t0 t4;
  B.lw b t7 t7 0;
  B.add b t6 t6 t7;
  B.sw b t6 t5 0;
  B.xi_addi b t4 t4 4;
  B.xloop b om t4 t3 "body";
  B.halt b;
  B.assemble b

let test_om_correct () =
  let n = 64 in
  let prog = om_prog n in
  let mem = Memory.create () in
  Memory.set_int mem base_a 10;   (* a[0] *)
  for i = 0 to n - 1 do Memory.set_int mem (base_b + 4 * i) i done;
  let r = run ~cfg:Config.io_x ~mode:Specialized prog mem in
  let expect = ref 10 in
  for i = 1 to n - 1 do
    expect := !expect + i;
    Alcotest.(check int) (Printf.sprintf "a[%d]" i) !expect
      (Memory.get_int mem (base_a + 4 * i))
  done;
  (* A serial memory recurrence must trigger violations/squashes. *)
  Alcotest.(check bool) "squashes happened" true (r.stats.violations > 0)

(* -- unordered atomic: histogram via buffered read-modify-write ------ *)

let ua_prog n =
  let b = B.create () in
  B.li b t0 base_b;   (* input values *)
  B.li b t2 base_a;   (* 16-bucket histogram *)
  B.li b t3 (n * 4);
  B.li b t4 0;
  B.label b "body";
  B.add b t5 t0 t4;
  B.lw b t6 t5 0;     (* v *)
  B.andi b t6 t6 15;
  B.sll b t6 t6 2;
  B.add b t6 t2 t6;   (* &hist[v & 15] *)
  B.lw b t7 t6 0;
  B.addi b t7 t7 1;
  B.sw b t7 t6 0;     (* hist[..]++ : must appear atomic *)
  B.xi_addi b t4 t4 4;
  B.xloop b ua t4 t3 "body";
  B.halt b;
  B.assemble b

let test_ua_correct () =
  let n = 128 in
  let prog = ua_prog n in
  let mem = Memory.create () in
  let expect = Array.make 16 0 in
  for i = 0 to n - 1 do
    let v = (i * 7 + 3) mod 31 in
    Memory.set_int mem (base_b + 4 * i) v;
    expect.(v land 15) <- expect.(v land 15) + 1
  done;
  ignore (run ~cfg:Config.io_x ~mode:Specialized prog mem);
  for k = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "hist[%d]" k) expect.(k)
      (Memory.get_int mem (base_a + 4 * k))
  done

(* -- dynamic bound: worklist that doubles itself ---------------------- *)
(* Each iteration i < n0 appends a new work item (value i + n0) by
   amo-incrementing the tail; the loop bound register is reloaded from the
   tail each iteration.  Total iterations = 2 * n0. *)

let tail_addr = 0x4000
let done_addr = 0x5000

let db_prog () =
  let b = B.create () in
  B.li b t0 base_b;      (* worklist *)
  B.li b t1 tail_addr;
  B.li b s1 done_addr;
  B.li b t4 0;           (* index (byte offset) *)
  B.lw b t3 t1 0;        (* bound = tail *)
  B.label b "body";
  B.add b t5 t0 t4;
  B.lw b t6 t5 0;        (* item *)
  (* record processing: done[item] = 1 *)
  B.sll b t7 t6 2;
  B.add b t7 s1 t7;
  B.li b s2 1;
  B.sw b s2 t7 0;
  (* if item < n0 (encoded: item < 8) then push item + 8 *)
  B.li b s2 8;
  B.bge b t6 s2 "skip";
  B.li b s2 4;
  B.amo b Amo_add t7 t1 s2;   (* t7 = old tail; tail += 4 *)
  B.add b t5 t0 t7;
  B.addi b t6 t6 8;
  B.sw b t6 t5 0;             (* worklist[old tail] = item + 8 *)
  B.label b "skip";
  B.lw b t3 t1 0;             (* reload bound from tail *)
  B.xi_addi b t4 t4 4;
  B.xloop b uc_db t4 t3 "body";
  B.halt b;
  B.assemble b

let test_db_correct () =
  let prog = db_prog () in
  let mem = Memory.create () in
  let n0 = 8 in
  for i = 0 to n0 - 1 do Memory.set_int mem (base_b + 4 * i) i done;
  Memory.set_int mem tail_addr (n0 * 4);
  let r = run ~cfg:Config.io_x ~mode:Specialized prog mem in
  for i = 0 to (2 * n0) - 1 do
    Alcotest.(check int) (Printf.sprintf "done[%d]" i) 1
      (Memory.get_int mem (done_addr + 4 * i))
  done;
  Alcotest.(check int) "final tail" (2 * n0 * 4)
    (Memory.get_int mem tail_addr);
  Alcotest.(check bool) "iterations = 16" true (r.stats.iterations >= 15)

(* -- cross-checks: specialized memory result == traditional ----------- *)

let test_equivalence () =
  List.iter
    (fun (name, prog, mk_mem, out_base, out_len) ->
       let m1 = mk_mem () in
       ignore (run ~cfg:Config.io ~mode:Traditional prog m1);
       let m2 = mk_mem () in
       ignore (run ~cfg:Config.ooo2_x ~mode:Specialized prog m2);
       let a1 = Memory.read_int_array m1 ~addr:out_base ~n:out_len in
       let a2 = Memory.read_int_array m2 ~addr:out_base ~n:out_len in
       Alcotest.(check (array int)) name a1 a2)
    [ ("vadd", vector_add_prog 50,
       (fun () -> setup_vectors 50), base_a, 50);
      ("om-recurrence", om_prog 40,
       (fun () ->
          let m = Memory.create () in
          Memory.set_int m base_a 7;
          for i = 0 to 39 do Memory.set_int m (base_b + 4 * i) (i * i) done;
          m),
       base_a, 40) ]


(* -- extended microarchitecture coverage ------------------------------- *)

module Registry = Xloops_kernels.Registry
module Kernel = Xloops_kernels.Kernel

let kernel_run name cfg =
  let k = Registry.find name in
  let r = Kernel.run ~cfg ~mode:Machine.Specialized k in
  (match r.Kernel.check_result with
   | Ok () -> ()
   | Error m ->
     Alcotest.failf "%s on %s: %s" name cfg.Xloops_sim.Config.name m);
  r.result

let test_inter_lane_forwarding_correct_and_counted () =
  (* om/ua kernels must stay correct with forwarding on, and actually
     forward. *)
  let total = ref 0 in
  List.iter
    (fun name ->
       let r = kernel_run name Config.io_x_fwd in
       total := !total + r.Machine.stats.lsq_forwards)
    [ "ksack-sm-om"; "dynprog-om"; "btree-ua"; "hsort-ua" ];
  Alcotest.(check bool) "forwards happened" true (!total > 0)

let test_inter_lane_forwarding_helps_war () =
  (* war-om's occasional cross-row conflicts forward cleanly: confirmed
     forwards replace violations.  (On tight serial chains like dynprog,
     aggressive forwarding instead amplifies squash cascades — which is
     why the paper leaves it as an "aggressive implementation" option;
     the ablation bench quantifies both.) *)
  let base = kernel_run "war-om" Config.io_x in
  let fwd = kernel_run "war-om" Config.io_x_fwd in
  Alcotest.(check bool)
    (Printf.sprintf "violations %d < %d" fwd.Machine.stats.violations
       base.Machine.stats.violations)
    true
    (fwd.Machine.stats.violations < base.Machine.stats.violations
     && fwd.Machine.stats.lsq_forwards > 0)

let test_multithreading_only_for_uc () =
  let mt = Config.with_lpsu Config.io "+mt"
      ~lpsu:{ Config.default_lpsu with threads_per_lane = 2 } in
  let s_uc = kernel_run "sgemm-uc" Config.io_x in
  let m_uc = kernel_run "sgemm-uc" mt in
  Alcotest.(check bool) "sgemm faster with MT" true
    (m_uc.Machine.cycles < s_uc.Machine.cycles);
  (* MT is disabled for ordered patterns: identical timing. *)
  let s_or = kernel_run "adpcm-or" Config.io_x in
  let m_or = kernel_run "adpcm-or" mt in
  Alcotest.(check int) "or unaffected" s_or.Machine.cycles
    m_or.Machine.cycles

let test_more_lanes_help () =
  let l8 = Config.with_lpsu Config.io "+l8"
      ~lpsu:{ Config.default_lpsu with lanes = 8 } in
  let c4 = kernel_run "kmeans-or" Config.io_x in
  let c8 = kernel_run "kmeans-or" l8 in
  Alcotest.(check bool) "8 lanes faster" true
    (c8.Machine.cycles < c4.Machine.cycles)

let test_bigger_lsq_helps_btree () =
  let big = Config.with_lpsu Config.io "+lsq16"
      ~lpsu:{ Config.default_lpsu with lsq_loads = 16; lsq_stores = 16 } in
  let small = kernel_run "btree-ua" Config.io_x in
  let large = kernel_run "btree-ua" big in
  Alcotest.(check bool) "16+16 LSQ faster" true
    (large.Machine.cycles < small.Machine.cycles)

let test_zero_trip_loop () =
  (* bound <= start: the guard skips the loop entirely. *)
  let b = B.create () in
  B.li b t0 0;          (* idx *)
  B.li b t1 0;          (* bound: zero iterations *)
  B.bge b t0 t1 "done";
  B.label b "body";
  B.addi b t2 t2 1;
  B.xi_addi b t0 t0 1;
  B.xloop b uc t0 t1 "body";
  B.label b "done";
  B.halt b;
  let prog = B.assemble b in
  let mem = Memory.create () in
  let r = run ~cfg:Config.io_x ~mode:Specialized prog mem in
  Alcotest.(check int) "no iterations" 0 r.stats.iterations;
  Alcotest.(check int) "no specialization" 0 r.stats.xloops_specialized

let test_single_iteration_loop () =
  (* One iteration runs on the GPP (fall-through); the xloop is never
     taken, so the LPSU never engages. *)
  let b = B.create () in
  B.li b t0 0;
  B.li b t1 1;
  B.li b t2 0;
  B.bge b t0 t1 "done";
  B.label b "body";
  B.addi b t2 t2 5;
  B.xi_addi b t0 t0 1;
  B.xloop b uc t0 t1 "body";
  B.label b "done";
  B.li b t3 0x200;
  B.sw b t2 t3 0;
  B.halt b;
  let prog = B.assemble b in
  let mem = Memory.create () in
  let r = run ~cfg:Config.io_x ~mode:Specialized prog mem in
  Alcotest.(check int) "body ran once" 5 (Memory.get_int mem 0x200);
  Alcotest.(check int) "no specialization" 0 r.stats.xloops_specialized

let test_nested_xloop_inner_as_branch () =
  (* war-om: outer om xloop whose body contains an inner uc xloop; the
     outer specializes once per outer-loop instance and the inner runs as
     a plain branch inside the lanes. *)
  let r = kernel_run "war-om" Config.io_x in
  Alcotest.(check bool) "one specialization per outer instance" true
    (r.Machine.stats.xloops_specialized >= 10)

let test_runaway_db_loop_traps () =
  (* A dynamic-bound loop that always raises its own bound never
     terminates; the LPSU's fuel guard must trap instead of hanging. *)
  let b = B.create () in
  B.li b t0 0x4000;     (* tail address *)
  B.li b s2 1;
  B.sw b s2 t0 0;       (* tail = 1 *)
  B.li b t4 0;
  B.lw b t3 t0 0;
  B.label b "body";
  B.amo b Amo_add t5 t0 s2;   (* tail++ every iteration: unbounded *)
  B.lw b t3 t0 0;
  B.xi_addi b t4 t4 1;
  B.xloop b uc_db t4 t3 "body";
  B.halt b;
  let prog = B.assemble b in
  let mem = Memory.create () in
  (* The LPSU exhausts its cycle budget (a structured Fuel hang), the
     safety net rolls the loop back to its entry checkpoint, and the
     traditional re-execution then runs the GPP out of fuel: the runaway
     is reported, not raised. *)
  match Machine.simulate ~fuel:200_000 ~lpsu_fuel:100_000
          ~cfg:Config.io_x ~mode:Specialized prog mem with
  | Ok _ -> Alcotest.fail "runaway loop completed?"
  | Error (Machine.Lpsu_hang h) ->
    Alcotest.failf "hang escaped degradation: %a" Xloops_sim.Fault.pp_hang h
  | Error (Machine.Out_of_fuel _) -> ()

let test_machine_fuel () =
  let b = B.create () in
  B.label b "spin";
  B.jump b "spin";
  let prog = B.assemble b in
  match Machine.simulate ~fuel:5000 ~cfg:Config.io
          ~mode:Traditional prog (Memory.create ()) with
  | Ok _ -> Alcotest.fail "expected Out_of_fuel"
  | Error (Machine.Lpsu_hang _) -> Alcotest.fail "expected Out_of_fuel"
  | Error (Machine.Out_of_fuel { pc; insns; cycle = _ }) ->
    Alcotest.(check int) "pc at the spin" 0 pc;
    Alcotest.(check bool) "burned the budget" true (insns > 5000)

let test_superscalar_lanes_help_or () =
  (* Dual-issue lanes attack exactly what limits the or kernels: the
     intra-iteration ILP between CIR stalls (the paper's "superscalar
     lane microarchitectures" future work). *)
  List.iter
    (fun name ->
       let base = kernel_run name Config.io_x in
       let ss2 = kernel_run name Config.io_x_ss2 in
       Alcotest.(check bool)
         (Printf.sprintf "%s: ss2 %d < %d" name ss2.Machine.cycles
            base.Machine.cycles)
         true (ss2.Machine.cycles < base.Machine.cycles))
    [ "covar-or"; "adpcm-or"; "sgemm-uc" ]

let test_lane_pc_escape_traps () =
  (* A body whose control flow jumps past its own xloop is malformed;
     the lane must trap rather than wander off. *)
  let b = B.create () in
  B.li b t0 0;
  B.li b t1 8;
  B.li b t2 3;
  B.label b "body";
  B.beq b t0 t2 "outside";   (* iteration 3 jumps past its own xloop *)
  B.xi_addi b t0 t0 1;
  B.xloop b uc t0 t1 "body";
  B.label b "outside";
  B.halt b;
  let prog = B.assemble b in
  let mem = Memory.create () in
  Alcotest.(check bool) "lane trap" true
    (try
       ignore (Machine.ok_exn
                 (Machine.simulate ~cfg:Config.io_x ~mode:Specialized
                    prog mem));
       false
     with Xloops_sim.Lpsu.Lane_trap _ -> true)

(* -- lane fast path: compiled dispatch must be invisible --------------- *)

module Tier = Xloops_sim.Tier

let test_lane_fast_path_differential () =
  (* The LPSU lane fast path runs plain instructions through the
     block tier's compiled closures whenever no observer is attached
     and the ref tier is not selected.  It must be completely
     invisible: same architectural result, same cycle count, and the
     same statistics — including violation/squash counts on the
     speculative om/ua patterns — as the Exec.step path it replaces. *)
  let saved = Tier.get () in
  Fun.protect ~finally:(fun () -> Tier.set saved) @@ fun () ->
  List.iter
    (fun name ->
       let k = Registry.find name in
       Tier.set Tier.Block;
       let fast = Kernel.run ~cfg:Config.io_x ~mode:Machine.Specialized k in
       Tier.set Tier.Ref;
       let slow = Kernel.run ~cfg:Config.io_x ~mode:Machine.Specialized k in
       (match fast.Kernel.check_result, slow.Kernel.check_result with
        | Ok (), Ok () -> ()
        | _ -> Alcotest.failf "%s: result check failed" name);
       let f = fast.Kernel.result and s = slow.Kernel.result in
       Alcotest.(check int) (name ^ ": cycles")
         s.Machine.cycles f.Machine.cycles;
       Alcotest.(check int) (name ^ ": violations")
         s.Machine.stats.violations f.Machine.stats.violations;
       Alcotest.(check int) (name ^ ": squashed insns")
         s.Machine.stats.squashed_insns f.Machine.stats.squashed_insns;
       Alcotest.(check int) (name ^ ": committed insns")
         s.Machine.stats.committed_insns f.Machine.stats.committed_insns;
       (* full structural equality, modulo wall clock *)
       f.Machine.stats.wall_ns <- 0;
       s.Machine.stats.wall_ns <- 0;
       Alcotest.(check bool) (name ^ ": stats identical") true
         (f.Machine.stats = s.Machine.stats))
    [ "sgemm-uc"; "war-uc"; "kmeans-or"; "adpcm-or"; "dynprog-om";
      "war-om"; "btree-ua"; "hsort-ua"; "bfs-uc-db" ]

let test_stats_merge_doubles () =
  (* Stats.merge must cover every counter: merging the same record twice
     doubles a sampled set of fields (one from each group). *)
  let k = Registry.find "ksack-sm-om" in
  let r = Kernel.run ~cfg:Config.io_x ~mode:Machine.Specialized k in
  let s = r.result.stats in
  let acc = Xloops_sim.Stats.create () in
  Xloops_sim.Stats.merge ~into:acc s;
  Xloops_sim.Stats.merge ~into:acc s;
  let open Xloops_sim.Stats in
  List.iter
    (fun (name, a, b) ->
       Alcotest.(check int) name (2 * a) b)
    [ ("committed", s.committed_insns, acc.committed_insns);
      ("squashed", s.squashed_insns, acc.squashed_insns);
      ("ib", s.ib_fetches, acc.ib_fetches);
      ("rf reads", s.rf_reads, acc.rf_reads);
      ("violations", s.violations, acc.violations);
      ("lsq searches", s.lsq_searches, acc.lsq_searches);
      ("forwards", s.lsq_forwards, acc.lsq_forwards);
      ("cyc exec", s.cyc_exec, acc.cyc_exec);
      ("cyc lsq", s.cyc_stall_lsq, acc.cyc_stall_lsq);
      ("idq", s.idq_ops, acc.idq_ops) ]

let () =
  Alcotest.run "lpsu"
    [ ("uc",
       [ Alcotest.test_case "traditional correct" `Quick test_uc_traditional;
         Alcotest.test_case "specialized correct" `Quick
           test_uc_specialized_correct;
         Alcotest.test_case "speedup vs io" `Quick test_uc_speedup ]);
      ("or", [ Alcotest.test_case "prefix sum" `Quick test_or_correct ]);
      ("om", [ Alcotest.test_case "recurrence" `Quick test_om_correct ]);
      ("ua", [ Alcotest.test_case "histogram" `Quick test_ua_correct ]);
      ("db", [ Alcotest.test_case "worklist" `Quick test_db_correct ]);
      ("equiv", [ Alcotest.test_case "spec == trad" `Quick test_equivalence ]);
      ("forwarding",
       [ Alcotest.test_case "correct + counted" `Quick
           test_inter_lane_forwarding_correct_and_counted;
         Alcotest.test_case "helps war-om" `Quick
           test_inter_lane_forwarding_helps_war ]);
      ("design-space",
       [ Alcotest.test_case "MT only for uc" `Quick
           test_multithreading_only_for_uc;
         Alcotest.test_case "more lanes" `Quick test_more_lanes_help;
         Alcotest.test_case "bigger LSQ" `Quick test_bigger_lsq_helps_btree ]);
      ("edges",
       [ Alcotest.test_case "zero-trip" `Quick test_zero_trip_loop;
         Alcotest.test_case "single iteration" `Quick
           test_single_iteration_loop;
         Alcotest.test_case "nested xloop" `Quick
           test_nested_xloop_inner_as_branch ]);
      ("fuel",
       [ Alcotest.test_case "runaway db loop" `Quick
           test_runaway_db_loop_traps;
         Alcotest.test_case "machine spin" `Quick test_machine_fuel ]);
      ("safety",
       [ Alcotest.test_case "lane pc escape" `Quick
           test_lane_pc_escape_traps;
         Alcotest.test_case "superscalar lanes" `Quick
           test_superscalar_lanes_help_or;
         Alcotest.test_case "stats merge" `Quick
           test_stats_merge_doubles ]);
      ("fast-path",
       [ Alcotest.test_case "compiled lanes invisible" `Quick
           test_lane_fast_path_differential ]);
    ]

