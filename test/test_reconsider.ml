(* Adaptive re-profiling (the paper's Section II-E future work,
   implemented behind Config.adaptive.reconsider_after): a loop whose
   behaviour changes phase mid-program can flip the APT's decision.

   The workload: one static xloop.om over a memory recurrence
   a[j] = a[j - d] + 1, where the distance d changes per dynamic
   instance.  Early instances run with d large (no conflicts: specialized
   execution flies); later instances run with d = 1 (a serial chain:
   squashes everywhere, the out-of-order host wins).  Without
   reconsideration, adaptive execution locks in the early "specialize"
   verdict and drags it through the serial phase; with reconsideration it
   re-profiles and migrates back. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module K = Xloops_kernels.Kernel

let n = 64            (* recurrence elements per instance *)
let instances = 24
let phase1 = 8        (* instances with the parallel-friendly distance *)
let far = 16          (* phase-1 recurrence distance *)

let kernel : Ast.kernel =
  let open Ast.Syntax in
  { k_name = "phase-change";
    arrays = [ K.arr "a" I32 n; K.arr "dist" I32 instances ];
    consts = [ ("n", n); ("insts", instances) ];
    k_body =
      [ for_ "t" (i 0) (v "insts")
          [ Ast.Decl ("d", "dist".%[v "t"]);
            for_ ~pragma:Ordered "j" (v "d") (v "n")
              [ Ast.Store ("a", v "j", "a".%[v "j" - v "d"] + i 1) ] ] ] }

let distances =
  Array.init instances (fun t -> if t < phase1 then far else 1)

let reference () =
  let a = Array.make n 0 in
  Array.iter
    (fun d ->
       for j = d to n - 1 do a.(j) <- a.(j - d) + 1 done)
    distances;
  a

let run ?adaptive mode =
  let c = Compile.compile kernel in
  let mem = Memory.create () in
  Memory.blit_int_array mem ~addr:(c.array_base "dist") distances;
  let r = Machine.ok_exn
      (Machine.simulate ?adaptive ~cfg:Config.ooo2_x ~mode
         c.program mem) in
  let out = Memory.read_int_array mem ~addr:(c.array_base "a") ~n in
  (match K.check_int_array ~what:"a" ~expected:(reference ()) out with
   | Ok () -> ()
   | Error m -> Alcotest.fail m);
  r

let test_kernel_is_om () =
  let c = Compile.compile kernel in
  let has_om = Array.exists
      (fun insn -> match insn with
         | Xloops_isa.Insn.Xloop ({ dp = Om; _ }, _, _, _) -> true
         | _ -> false)
      c.program.insns in
  Alcotest.(check bool) "om emitted" true has_om

let test_phases_behave_differently () =
  (* Sanity for the premise: pure specialized execution squashes heavily
     only because of the serial phase. *)
  let s = run Machine.Specialized in
  Alcotest.(check bool) "squashes in serial phase" true
    (s.stats.violations > instances - phase1)

let test_reconsideration_helps () =
  let sticky = run ~adaptive:Config.default_adaptive Machine.Adaptive in
  let reconsider =
    run ~adaptive:{ Config.default_adaptive with reconsider_after = Some 4 }
      Machine.Adaptive
  in
  Alcotest.(check bool)
    (Printf.sprintf "reconsider %d < sticky %d cycles" reconsider.cycles
       sticky.cycles)
    true (reconsider.cycles < sticky.cycles);
  (* The re-profiler actually flipped: far fewer instances ran
     specialized once the serial phase was re-measured. *)
  Alcotest.(check bool)
    (Printf.sprintf "fewer specialized instances (%d < %d)"
       reconsider.stats.xloops_specialized
       sticky.stats.xloops_specialized)
    true
    (reconsider.stats.xloops_specialized
     < sticky.stats.xloops_specialized)

let test_reconsideration_harmless_when_stable () =
  (* On a phase-free kernel, reconsideration must not change results and
     should cost little. *)
  let k = Xloops_kernels.Registry.find "war-uc" in
  let base = K.run ~cfg:Config.ooo2_x ~mode:Machine.Adaptive k in
  let rec_ = K.run
      ~adaptive:{ Config.default_adaptive with reconsider_after = Some 8 }
      ~cfg:Config.ooo2_x ~mode:Machine.Adaptive k in
  (match rec_.check_result with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check bool)
    (Printf.sprintf "within 20%% (%d vs %d)" rec_.result.cycles
       base.result.cycles)
    true
    (float_of_int rec_.result.cycles
     <= 1.2 *. float_of_int base.result.cycles)

let () =
  Alcotest.run "reconsider"
    [ ("phase-change",
       [ Alcotest.test_case "kernel is om" `Quick test_kernel_is_om;
         Alcotest.test_case "premise" `Quick test_phases_behave_differently;
         Alcotest.test_case "reconsideration helps" `Quick
           test_reconsideration_helps;
         Alcotest.test_case "harmless when stable" `Quick
           test_reconsideration_harmless_when_stable ]);
    ]
