(* Direct-threaded tier: closure-compiled execution with superop fusion
   must be observationally identical to the per-step tiers — registers,
   memory, dynamic instruction counts, out-of-fuel payloads and
   trap/halt behavior all bit-equal.

   Layers:
   - operator/accessor equivalence: the unboxed FPU evaluator and the
     native-int memory accessors agree with their int32 semantic specs;
   - whole-program differential: random ISA programs (forward control
     flow, including jumps into the middle of fusible pairs and
     blocks) and every registry kernel run identically through ref,
     predecode, threaded and block;
   - fuel parity: superops retire two instructions per dispatch and
     blocks retire many, so the drivers' fuel accounting is checked at
     exact exhaustion boundaries;
   - side-exit parity: a trap in the middle of a compiled block must
     materialize the precise mid-block state — same exception, same
     committed memory bytes — as the per-step tiers;
   - plan sanity: fusion actually fires where the rules say it must;
   - allocation regression: the compiled tiers must not allocate. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Program = Xloops_asm.Program
module Memory = Xloops_mem.Memory
module Exec = Xloops_sim.Exec
module Threaded = Xloops_sim.Threaded
module Tier = Xloops_sim.Tier
module Registry = Xloops_kernels.Registry
module Kernel = Xloops_kernels.Kernel
module Compile = Xloops_compiler.Compile

(* -- operator / accessor equivalence ----------------------------------- *)

let gen_int32 =
  let open QCheck.Gen in
  frequency
    [ 4, map Int32.of_int (int_range (-1000) 1000);
      2, map Int32.of_int (int_bound 0x7FFFFFFF);
      2, map Int32.bits_of_float
           (map (fun f -> f *. 1000.0) (float_range (-1.0) 1.0));
      1, oneofl [ Int32.min_int; Int32.max_int; -1l; 0l; 1l;
                  0x7F800000l (* +inf *); 0xFF800000l (* -inf *);
                  0x7FC00000l (* nan *) ] ]

let all_fpu_ops =
  [ Insn.Fadd; Fsub; Fmul; Fdiv; Fmin; Fmax; Feq; Flt; Fle;
    Fcvt_sw; Fcvt_ws ]

let prop_fpu_int_matches =
  QCheck.Test.make ~name:"fpu_eval_int matches fpu_eval" ~count:4000
    (QCheck.make
       ~print:(fun (op, a, b) ->
           Fmt.str "%s %ld %ld" (Insn.show_fpu_op op) a b)
       QCheck.Gen.(triple (oneofl all_fpu_ops) gen_int32 gen_int32))
    (fun (op, a, b) ->
       Int32.of_int
         (Exec.fpu_eval_int op (Int32.to_int a) (Int32.to_int b))
       = Exec.fpu_eval op a b)

let all_widths = [ Insn.B; Bu; H; Hu; W ]
let all_amo_ops =
  [ Insn.Amo_add; Amo_and; Amo_or; Amo_xchg; Amo_min; Amo_max ]

(* The native-int accessors must behave exactly like the int32 ones:
   same result (as a sign-extended int), same memory bytes, same event
   counters — including on the journal path. *)
let prop_mem_int_accessors =
  let gen =
    let open QCheck.Gen in
    let* w = oneofl all_widths in
    let* addr = map (fun a -> a * 4) (int_bound 60) in
    let* v = gen_int32 in
    let* op = oneofl all_amo_ops in
    let* journal = bool in
    return (w, addr, v, op, journal)
  in
  QCheck.Test.make ~name:"load_int/store_int/amo_int match int32 forms"
    ~count:2000 (QCheck.make gen)
    (fun (w, addr, v, op, journal) ->
       let m1 = Memory.create ~size:512 () in
       let m2 = Memory.create ~size:512 () in
       for i = 0 to 511 do
         Memory.set_u8 m1 i ((i * 37 + 11) land 0xFF);
         Memory.set_u8 m2 i ((i * 37 + 11) land 0xFF)
       done;
       if journal then begin
         Memory.journal_begin m1; Memory.journal_begin m2
       end;
       Memory.store m1 w addr v;
       Memory.store_int m2 w addr (Int32.to_int v);
       let l1 = Memory.load m1 w addr in
       let l2 = Memory.load_int m2 w addr in
       let a1 = Memory.amo m1 op 256 v in
       let a2 = Memory.amo_int m2 op 256 (Int32.to_int v) in
       if journal then begin
         Memory.journal_abort m1; Memory.journal_abort m2
       end;
       Int32.to_int l1 = l2
       && Int32.to_int a1 = a2
       && Bytes.equal m1.Memory.data m2.Memory.data
       && m1.Memory.loads = m2.Memory.loads
       && m1.Memory.stores = m2.Memory.stores
       && m1.Memory.amos = m2.Memory.amos)

(* -- whole-program differential ---------------------------------------- *)

(* Same shape as the test_predecode generator — forward-only control
   flow over seeded registers with a scratch memory window — plus FPU
   ops (dispatch coverage for the closure compiler) and a bias toward
   fusible adjacency: ALU-heavy straight runs with branches landing on
   arbitrary pcs, including the middle of fused pairs. *)

let scratch_base = 512

let all_alu_ops =
  [ Insn.Add; Sub; And; Or_; Xor; Nor; Sll; Srl; Sra; Slt; Sltu;
    Mul; Mulh; Div; Rem ]

let all_branch_conds = [ Insn.Beq; Bne; Blt; Bge; Bltu; Bgeu ]

let gen_insn ~pc ~len =
  let open QCheck.Gen in
  let reg = int_range 1 15 in
  let fwd = int_range (pc + 1) len in   (* the Halt sits at [len] *)
  frequency
    [ 8, (let* op = oneofl all_alu_ops in
          let* rd = reg in
          let* rs = reg in
          let* rt = reg in
          return (Insn.Alu (op, rd, rs, rt)));
      6, (let* op = oneofl all_alu_ops in
          let* rd = reg in
          let* rs = reg in
          let* imm = int_range (-40000) 40000 in
          return (Insn.Alui (op, rd, rs, imm)));
      2, (let* op = oneofl all_fpu_ops in
          let* rd = reg in
          let* rs = reg in
          let* rt = reg in
          return (Insn.Fpu (op, rd, rs, rt)));
      1, (let* rd = reg in
          let* imm = int_range 0 0xFFFF in
          return (Insn.Lui (rd, imm)));
      3, (let* rd = reg in
          let* off = int_range 0 15 in
          let* w = oneofl all_widths in
          let off = match w with
            | Insn.B | Bu -> off | H | Hu -> 2 * off | W -> 4 * off in
          return (Insn.Load (w, rd, 20, off)));
      3, (let* rt = reg in
          let* off = int_range 0 15 in
          let* w = oneofl all_widths in
          let off = match w with
            | Insn.B | Bu -> off | H | Hu -> 2 * off | W -> 4 * off in
          return (Insn.Store (w, rt, 20, off)));
      1, (let* op = oneofl all_amo_ops in
          let* rd = reg in
          let* rt = reg in
          return (Insn.Amo (op, rd, 21, rt)));
      3, (let* c = oneofl all_branch_conds in
          let* rs = reg in
          let* rt = reg in
          let* l = fwd in
          return (Insn.Branch (c, rs, rt, l)));
      1, (let* l = fwd in return (Insn.Jump l));
      1, (let* dp = oneofl [ Insn.Uc; Or; Om; Orm; Ua ] in
          let* cp = oneofl [ Insn.Fixed; Dyn; De ] in
          let* rs = reg in
          let* rt = reg in
          let* l = fwd in
          return (Insn.Xloop ({ dp; cp }, rs, rt, l)));
      1, (let* rd = reg in
          let* rs = reg in
          let* imm = int_range (-100) 100 in
          return (Insn.Xi_addi (rd, rs, imm)));
      1, (let* rd = reg in
          let* rs = reg in
          let* rt = reg in
          return (Insn.Xi_add (rd, rs, rt)));
      1, oneofl [ Insn.Sync; Nop ] ]

let gen_program =
  let open QCheck.Gen in
  let* len = int_range 5 60 in
  let* body =
    let rec go pc acc =
      if pc = len then return (List.rev acc)
      else
        let* i = gen_insn ~pc ~len in
        go (pc + 1) (i :: acc)
    in
    go 0 []
  in
  let* seeds =
    let rec go r acc =
      if r > 15 then return (List.rev acc)
      else
        let* imm = int_range (-32768) 32767 in
        go (r + 1) (Insn.Alui (Add, r, 0, imm) :: acc)
    in
    go 1 []
  in
  let prologue =
    seeds
    @ [ Insn.Alui (Add, 20, 0, scratch_base);
        Insn.Alui (Add, 21, 0, scratch_base + 128) ]
  in
  let npro = List.length prologue in
  let shift = Insn.map_label (fun l -> l + npro) in
  return
    { Program.insns =
        Array.of_list (List.map shift prologue
                       @ List.map shift body @ [ Insn.Halt ]);
      symbols = [] }

let arb_program =
  QCheck.make gen_program
    ~print:(fun p -> Fmt.str "%a" Program.pp p)

let snapshot (r : Exec.run) mem =
  (r.Exec.dynamic_insns, r.Exec.final.Exec.pc,
   Array.to_list r.Exec.final.Exec.regs,
   Bytes.to_string mem.Memory.data)

let run_tier tier p =
  let m = Memory.create ~size:4096 () in
  (Tier.run_serial_with tier p m, m)

let prop_threaded_differential =
  QCheck.Test.make ~name:"block == threaded == predecode == ref"
    ~count:400 arb_program
    (fun p ->
       match run_tier Tier.Block p, run_tier Tier.Threaded p,
             run_tier Tier.Predecode p, run_tier Tier.Ref p with
       | (Ok r0, m0), (Ok r1, m1), (Ok r2, m2), (Ok r3, m3) ->
         snapshot r0 m0 = snapshot r1 m1
         && snapshot r1 m1 = snapshot r2 m2
         && snapshot r2 m2 = snapshot r3 m3
       | (Error s0, m0), (Error s1, m1), (Error s2, m2), (Error s3, m3) ->
         s0 = s1 && s1 = s2 && s2 = s3
         && Bytes.equal m0.Memory.data m1.Memory.data
         && Bytes.equal m1.Memory.data m2.Memory.data
         && Bytes.equal m2.Memory.data m3.Memory.data
       | _ -> false)

(* Fuel parity at exact exhaustion boundaries: a fused dispatch may
   land exactly on the fuel limit, and a block dispatch retires many
   instructions at once, but neither may overshoot it, and the
   Out_of_fuel payload (pc, counts) must be identical to the per-step
   tiers.  Random fuels cut runs at arbitrary points, including inside
   fused pairs and mid-block. *)
let prop_fuel_parity =
  QCheck.Test.make ~name:"out-of-fuel payloads identical across tiers"
    ~count:400
    (QCheck.make
       QCheck.Gen.(pair gen_program (int_bound 40))
       ~print:(fun (p, fuel) -> Fmt.str "fuel %d@.%a" fuel Program.pp p))
    (fun (p, fuel) ->
       let m1 = Memory.create ~size:4096 () in
       let m2 = Memory.create ~size:4096 () in
       let m3 = Memory.create ~size:4096 () in
       match Threaded.run_serial ~fuel p m1,
             Threaded.run_serial_block ~fuel p m2,
             Exec.run_serial ~fuel p m3 with
       | Ok r1, Ok r2, Ok r3 ->
         snapshot r1 m1 = snapshot r2 m2 && snapshot r2 m2 = snapshot r3 m3
       | Error s1, Error s2, Error s3 ->
         s1 = s2 && s2 = s3
         && Bytes.equal m1.Memory.data m2.Memory.data
         && Bytes.equal m2.Memory.data m3.Memory.data
       | _ -> false)

let test_fuel_edges () =
  (* 3 li + per-iteration (16 add + addi + bne): plenty of fused pairs *)
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 50;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 15 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  let p = B.assemble b in
  List.iter
    (fun (tname, run) ->
       List.iter
         (fun fuel ->
            let m1 = Memory.create () and m2 = Memory.create () in
            match run ~fuel p m1, Exec.run_serial ~fuel p m2 with
            | Error s1, Error s2 ->
              if s1 <> s2 then
                Alcotest.failf "%s fuel %d: %a vs %a" tname fuel
                  Exec.pp_stop s1 Exec.pp_stop s2
            | Ok r1, Ok r2 ->
              Alcotest.(check int) (Fmt.str "%s fuel %d insns" tname fuel)
                r2.Exec.dynamic_insns r1.Exec.dynamic_insns
            | _ ->
              Alcotest.failf "%s fuel %d: tiers disagree on termination"
                tname fuel)
         [ 0; 1; 2; 3; 4; 5; 17; 18; 19; 20; 21; 37; 38; 39; 1000 ])
    [ ("threaded", fun ~fuel p m -> Threaded.run_serial ~fuel p m);
      ("block", fun ~fuel p m -> Threaded.run_serial_block ~fuel p m) ]

let test_trap_parity () =
  (* no halt: running off the end must trap identically in both tiers *)
  let p = { Program.insns = [| Insn.Alu (Add, 1, 1, 1) |]; symbols = [] } in
  let msg run =
    let m = Memory.create () in
    try ignore (run p m); "no-trap" with Exec.Trap m -> m
  in
  Alcotest.(check string) "trap message"
    (msg (fun p m -> Exec.run_serial p m))
    (msg (fun p m -> Threaded.run_serial p m));
  Alcotest.(check string) "trap message (block)"
    (msg (fun p m -> Exec.run_serial p m))
    (msg (fun p m -> Threaded.run_serial_block p m))

(* Side-exit state parity: a straight-line run is one compiled block,
   and an out-of-bounds/misaligned store in its middle must leave
   exactly the per-step state behind — earlier stores in the block
   committed, later ones not, and the same exception raised. *)
let test_midblock_trap_parity () =
  let b = B.create () in
  B.li b 8 0x100;
  B.li b 9 111;
  B.sw b 9 8 0;        (* commits before the trap *)
  B.addi b 9 9 1;
  B.addi b 9 9 1;
  B.sw b 9 8 2;        (* misaligned word store: traps mid-block *)
  B.addi b 9 9 1;
  B.sw b 9 8 8;        (* must never commit *)
  B.halt b;
  let p = B.assemble b in
  let outcome run =
    let m = Memory.create () in
    let r =
      try (match run p m with
           | Ok (r : Exec.run) ->
             Fmt.str "ok pc=%d insns=%d" r.Exec.final.Exec.pc
               r.Exec.dynamic_insns
           | Error s -> Fmt.str "%a" Exec.pp_stop s)
      with e -> Printexc.to_string e
    in
    (r, Bytes.to_string m.Memory.data)
  in
  let (e1, d1) = outcome (fun p m -> Exec.run_serial p m) in
  let (e2, d2) = outcome (fun p m -> Threaded.run_serial p m) in
  let (e3, d3) = outcome (fun p m -> Threaded.run_serial_block p m) in
  Alcotest.(check string) "threaded exception" e1 e2;
  Alcotest.(check string) "block exception" e1 e3;
  Alcotest.(check bool) "threaded memory" true (String.equal d1 d2);
  Alcotest.(check bool) "block memory" true (String.equal d1 d3);
  (* and the state really is mid-block: first store landed, last didn't *)
  let m = Memory.create () in
  (try ignore (Threaded.run_serial_block p m) with _ -> ());
  Alcotest.(check int) "pre-trap store committed" 111
    (Memory.get_int m 0x100);
  Alcotest.(check int) "post-trap store suppressed" 0
    (Memory.get_int m 0x108)

(* Compiled kernels: real loop structure, all three targets' worth of
   code shapes, deterministic. *)
let test_registry_differential () =
  List.iter
    (fun (k : Kernel.t) ->
       let c = Compile.compile k.Kernel.kernel in
       let run exec mem =
         k.Kernel.init c.Compile.array_base mem;
         match exec c.Compile.program mem with
         | Ok r -> r
         | Error stop ->
           Alcotest.failf "%s: %a" k.Kernel.name Exec.pp_stop stop
       in
       let m1 = Memory.create () and m2 = Memory.create () in
       let m3 = Memory.create () in
       let r1 = run (fun p m -> Threaded.run_serial p m) m1 in
       let r2 = run (fun p m -> Exec.run_serial p m) m2 in
       let r3 = run (fun p m -> Threaded.run_serial_block p m) m3 in
       if snapshot r1 m1 <> snapshot r2 m2 then
         Alcotest.failf "%s: threaded and predecode runs differ"
           k.Kernel.name;
       if snapshot r3 m3 <> snapshot r2 m2 then
         Alcotest.failf "%s: block and predecode runs differ"
           k.Kernel.name)
    Registry.all

(* -- fusion plan sanity ------------------------------------------------ *)

let test_superop_plan () =
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 10;
  B.li b 10 0;
  B.label b "top";
  B.add b 10 10 8;
  B.add b 10 10 8;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  let p = B.assemble b in
  let plan = Threaded.superops p in
  Alcotest.(check bool) "fusion fired" true (plan <> []);
  (* the add+add pair at the loop head and the addi+bne back-edge *)
  Alcotest.(check bool) "alu+alu fused" true
    (List.exists (fun (_, r) -> r = "alu+alu") plan);
  Alcotest.(check bool) "alui+branch fused" true
    (List.exists (fun (_, r) -> r = "alui+branch") plan);
  let marks = Threaded.fused_heads p in
  List.iter
    (fun (pc, _) ->
       Alcotest.(check bool) (Fmt.str "mark at %d" pc) true marks.(pc))
    plan

let test_block_plan () =
  (* Straight-line add chain into a back edge: one block for the
     prologue, one for the loop body, and fused triples inside. *)
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 10;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 5 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  let p = B.assemble b in
  let blocks, triples = Threaded.block_plan p in
  (* leaders: the entry (0) and the loop head (3, the bne target) *)
  Alcotest.(check bool) "several blocks" true (List.length blocks >= 2);
  Alcotest.(check bool) "loop head is a leader" true
    (List.mem_assoc 3 blocks);
  Alcotest.(check bool) "blocks are multi-insn" true
    (List.exists (fun (_, n) -> n >= 4) blocks);
  Alcotest.(check bool) "fused runs recorded" true (triples <> []);
  (* the whole add chain fuses into one run inside the body block *)
  Alcotest.(check bool) "add-chain run" true
    (List.exists
       (fun (_, r) ->
          String.length r >= 11 && String.sub r 0 11 = "alu+alu+alu")
       triples)

(* -- allocation regression --------------------------------------------- *)

let alloc_per_insn run =
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 100_000;
  B.li b 10 0;
  B.label b "top";
  for _ = 0 to 15 do B.add b 10 10 8 done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  let p = B.assemble b in
  let mem = Memory.create () in
  (* warm-up compiles and memoizes *)
  (match run p mem with
   | Ok _ -> ()
   | Error stop -> Alcotest.failf "warmup: %a" Exec.pp_stop stop);
  let mem2 = Memory.create () in
  let a0 = Gc.allocated_bytes () in
  let insns =
    match run p mem2 with
    | Ok (r : Exec.run) -> r.Exec.dynamic_insns
    | Error stop -> Alcotest.failf "run: %a" Exec.pp_stop stop
  in
  (Gc.allocated_bytes () -. a0) /. float_of_int insns

let test_threaded_allocation () =
  let per = alloc_per_insn (fun p m -> Threaded.run_serial p m) in
  Alcotest.(check bool)
    (Fmt.str "%.5f bytes/insn within budget" per) true (per <= 0.05)

let test_block_allocation () =
  let per = alloc_per_insn (fun p m -> Threaded.run_serial_block p m) in
  Alcotest.(check bool)
    (Fmt.str "%.5f bytes/insn within budget" per) true (per <= 0.05)

let () =
  Alcotest.run "threaded"
    [ ("operators",
       [ QCheck_alcotest.to_alcotest prop_fpu_int_matches;
         QCheck_alcotest.to_alcotest prop_mem_int_accessors ]);
      ("differential",
       [ QCheck_alcotest.to_alcotest prop_threaded_differential;
         QCheck_alcotest.to_alcotest prop_fuel_parity;
         Alcotest.test_case "fuel edges" `Quick test_fuel_edges;
         Alcotest.test_case "trap parity" `Quick test_trap_parity;
         Alcotest.test_case "mid-block trap" `Quick
           test_midblock_trap_parity;
         Alcotest.test_case "registry kernels" `Quick
           test_registry_differential ]);
      ("plan",
       [ Alcotest.test_case "superop plan" `Quick test_superop_plan;
         Alcotest.test_case "block plan" `Quick test_block_plan ]);
      ("allocation",
       [ Alcotest.test_case "straight-line run" `Quick
           test_threaded_allocation;
         Alcotest.test_case "block straight-line run" `Quick
           test_block_allocation ]);
    ]
