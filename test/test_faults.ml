(* Fault injection, progress watchdog, and graceful degradation: the
   robustness layer.  Covers fault-plan determinism, the memory write
   journal, watchdog hang diagnostics, checkpoint/restore with
   traditional fallback, and the 25-kernel differential sweep. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Fault = Xloops_sim.Fault
module Differential = Xloops.Differential

(* -- fault plans ---------------------------------------------------- *)

let plan_str ~seed ~events =
  Fmt.str "%a" Fault.pp_plan (Fault.plan ~seed ~events ())

let test_plan_deterministic () =
  Alcotest.(check string) "same seed, same plan"
    (plan_str ~seed:7 ~events:16) (plan_str ~seed:7 ~events:16);
  Alcotest.(check bool) "different seed, different plan" true
    (plan_str ~seed:7 ~events:16 <> plan_str ~seed:8 ~events:16);
  Alcotest.(check int) "all events pending" 16
    (Fault.pending (Fault.plan ~seed:7 ~events:16 ()))

let test_plan_covers_kinds () =
  (* A seeded plan rotates through every fault kind. *)
  let p = Fault.plan ~seed:3 ~events:(List.length Fault.all_kinds) () in
  let rec drain rel acc =
    if Fault.pending p = 0 || rel > 10_000 then acc
    else drain (rel + 1) (Fault.due p ~rel @ acc)
  in
  let kinds =
    drain 0 [] |> List.map (fun e -> e.Fault.ev_kind)
    |> List.sort_uniq compare
  in
  Alcotest.(check int) "every kind scheduled once"
    (List.length Fault.all_kinds) (List.length kinds)

let test_due_defer_record () =
  let ev k after = { Fault.ev_after = after; ev_lane = 0; ev_kind = k } in
  let p = Fault.explicit [ ev Fault.Cib_drop 5; ev Fault.Port_stall 9 ] in
  Alcotest.(check int) "nothing due early" 0
    (List.length (Fault.due p ~rel:4));
  (match Fault.due p ~rel:5 with
   | [ { Fault.ev_kind = Fault.Cib_drop; _ } ] -> ()
   | l -> Alcotest.failf "expected one cib-drop due, got %d" (List.length l));
  Alcotest.(check int) "one still pending" 1 (Fault.pending p);
  (* A due event with no valid target goes back in the queue. *)
  Fault.defer p (ev Fault.Cib_drop 5);
  Alcotest.(check int) "deferred event pending again" 2 (Fault.pending p);
  Alcotest.(check int) "nothing injected yet" 0 (Fault.injected p);
  Fault.record p Fault.Port_stall ~cycle:12;
  Fault.record p Fault.Port_stall ~cycle:30;
  Alcotest.(check int) "two injections" 2 (Fault.injected p);
  Alcotest.(check int) "one distinct kind" 1
    (List.length (Fault.injected_kinds p))

(* -- memory write journal ------------------------------------------- *)

let test_journal_abort_restores () =
  let mem = Memory.create () in
  Memory.set_int mem 0x100 41;
  Memory.set_u8 mem 0x104 7;
  Memory.journal_begin mem;
  Memory.set_int mem 0x100 999;
  Memory.set_u8 mem 0x104 0xff;
  Memory.set_u16 mem 0x200 0xbeef;   (* untouched before the journal *)
  Alcotest.(check bool) "journal active" true (Memory.journal_active mem);
  Alcotest.(check bool) "journal non-empty" true (Memory.journal_size mem > 0);
  Memory.journal_abort mem;
  Alcotest.(check int) "word restored" 41 (Memory.get_int mem 0x100);
  Alcotest.(check int) "byte restored" 7 (Memory.get_u8 mem 0x104);
  Alcotest.(check int) "fresh write rolled back" 0 (Memory.get_u16 mem 0x200);
  Alcotest.(check bool) "journal closed" false (Memory.journal_active mem)

let test_journal_commit_keeps () =
  let mem = Memory.create () in
  Memory.set_int mem 0x100 41;
  Memory.journal_begin mem;
  Memory.set_int mem 0x100 999;
  Memory.journal_commit mem;
  Alcotest.(check int) "write kept" 999 (Memory.get_int mem 0x100);
  Alcotest.(check bool) "journal closed" false (Memory.journal_active mem)

let test_journal_no_nesting () =
  let mem = Memory.create () in
  Memory.journal_begin mem;
  Alcotest.(check bool) "double begin rejected" true
    (try Memory.journal_begin mem; false
     with Invalid_argument _ -> true);
  Memory.journal_abort mem

(* -- watchdog and degradation on a hand-assembled kernel ------------ *)

(* Same vector-add xloop.uc as test_lpsu: a[i] = b[i] + c[i]. *)

let t0 = Reg.t0 and t1 = Reg.t1 and t2 = Reg.t2 and t3 = Reg.t3
let t4 = Reg.t4 and t5 = Reg.t5 and t6 = Reg.t6 and t7 = Reg.t7
let base_b = 0x1000 and base_c = 0x2000 and base_a = 0x3000

let vector_add_prog n =
  let uc = { Insn.dp = Uc; cp = Fixed } in
  let b = B.create () in
  B.li b t0 base_b;
  B.li b t1 base_c;
  B.li b t2 base_a;
  B.li b t3 (n * 4);
  B.li b t4 0;
  B.label b "body";
  B.add b t5 t0 t4;
  B.lw b t6 t5 0;
  B.add b t5 t1 t4;
  B.lw b t7 t5 0;
  B.add b t6 t6 t7;
  B.add b t5 t2 t4;
  B.sw b t6 t5 0;
  B.xi_addi b t4 t4 4;
  B.xloop b uc t4 t3 "body";
  B.halt b;
  B.assemble b

let setup_vectors n =
  let mem = Memory.create () in
  for i = 0 to n - 1 do
    Memory.set_int mem (base_b + 4 * i) (i * 3);
    Memory.set_int mem (base_c + 4 * i) (i * 5 + 1)
  done;
  mem

let check_vector_add n mem =
  for i = 0 to n - 1 do
    Alcotest.(check int)
      (Printf.sprintf "a[%d]" i)
      ((i * 3) + (i * 5 + 1))
      (Memory.get_int mem (base_a + 4 * i))
  done

let freeze_plan () =
  Fault.explicit
    [ { Fault.ev_after = 12; ev_lane = 0; ev_kind = Fault.Lane_freeze } ]

(* The acceptance criterion: an injected lane freeze must surface as a
   named hang diagnostic from the watchdog, not as fuel exhaustion. *)
let test_watchdog_names_frozen_lane () =
  let n = 256 in
  let prog = vector_add_prog n in
  let mem = setup_vectors n in
  match
    Machine.simulate ~faults:(freeze_plan ()) ~watchdog:400 ~degrade:false
      ~cfg:Config.io_x ~mode:Machine.Specialized prog mem
  with
  | Ok _ -> Alcotest.fail "frozen lane went unnoticed"
  | Error (Machine.Out_of_fuel _) ->
    Alcotest.fail "watchdog should trip long before fuel runs out"
  | Error (Machine.Lpsu_hang h) ->
    Alcotest.(check string) "blamed resource" "frozen lane"
      (Fault.resource_name h.Fault.h_resource);
    Alcotest.(check bool) "made some progress first" true
      (h.Fault.h_committed > 0);
    Alcotest.(check bool) "detail names a lane" true
      (String.length h.Fault.h_detail > 0)

(* With the safety net on, the same freeze rolls back to the loop-entry
   checkpoint and re-executes traditionally: correct result, degradation
   counted, hang diagnostic retained. *)
let test_degrade_recovers () =
  let n = 256 in
  let prog = vector_add_prog n in
  let mem = setup_vectors n in
  let m =
    Machine.create ~faults:(freeze_plan ()) ~watchdog:400 ~degrade:true
      ~cfg:Config.io_x ~mode:Machine.Specialized ~prog ~mem ()
  in
  (match Machine.run m with
   | Error f -> Alcotest.failf "degraded run failed: %a" Machine.pp_failure f
   | Ok r ->
     check_vector_add n mem;
     Alcotest.(check bool) "degradation counted" true
       (r.stats.degradations >= 1);
     Alcotest.(check bool) "hang counted" true (r.stats.watchdog_hangs >= 1);
     Alcotest.(check bool) "fell back to traditional" true
       (r.stats.xloops_traditional >= 1));
  match Machine.hangs m with
  | [] -> Alcotest.fail "hang diagnostic not retained"
  | h :: _ ->
    Alcotest.(check string) "retained diagnostic blames the lane"
      "frozen lane" (Fault.resource_name h.Fault.h_resource)

(* A run that completes under silently injected corruption must also be
   rolled back — Ok-with-faults is not trustworthy. *)
let test_silent_corruption_degrades () =
  let n = 128 in
  let prog = vector_add_prog n in
  let mem = setup_vectors n in
  let faults =
    Fault.explicit
      [ { Fault.ev_after = 8; ev_lane = 1; ev_kind = Fault.Idq_corrupt } ]
  in
  let m =
    Machine.create ~faults ~watchdog:10_000 ~cfg:Config.io_x
      ~mode:Machine.Specialized ~prog ~mem ()
  in
  match Machine.run m with
  | Error f -> Alcotest.failf "run failed: %a" Machine.pp_failure f
  | Ok r ->
    check_vector_add n mem;
    Alcotest.(check bool) "fault recorded" true (r.stats.faults_injected >= 1);
    Alcotest.(check bool) "run degraded" true (r.stats.degradations >= 1)

(* -- the 25-kernel differential sweep ------------------------------- *)

let test_table2_differential () =
  let outcomes, kinds = Differential.check_table2 ~seed:2014 () in
  Alcotest.(check int) "all Table II kernels swept" 25
    (List.length outcomes);
  List.iter
    (fun o ->
       if not (Differential.ok o) then
         Alcotest.failf "degraded run diverged: %a" Differential.pp_outcome o)
    outcomes;
  (* Every fault kind must actually fire somewhere in the sweep. *)
  let missing =
    List.filter (fun k -> not (List.mem k kinds)) Fault.all_kinds in
  if missing <> [] then
    Alcotest.failf "fault kinds never injected: %a"
      Fmt.(list ~sep:comma Fault.pp_kind) missing

let () =
  Alcotest.run "faults"
    [ ("plan",
       [ Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
         Alcotest.test_case "covers kinds" `Quick test_plan_covers_kinds;
         Alcotest.test_case "due/defer/record" `Quick test_due_defer_record ]);
      ("journal",
       [ Alcotest.test_case "abort restores" `Quick
           test_journal_abort_restores;
         Alcotest.test_case "commit keeps" `Quick test_journal_commit_keeps;
         Alcotest.test_case "no nesting" `Quick test_journal_no_nesting ]);
      ("watchdog",
       [ Alcotest.test_case "names frozen lane" `Quick
           test_watchdog_names_frozen_lane;
         Alcotest.test_case "degrade recovers" `Quick test_degrade_recovers;
         Alcotest.test_case "silent corruption degrades" `Quick
           test_silent_corruption_degrades ]);
      ("differential",
       [ Alcotest.test_case "table2 sweep" `Quick test_table2_differential ]);
    ]
