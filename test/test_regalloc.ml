(* Register-allocator tests: liveness dataflow, loop-covering intervals,
   allocation/rewrite correctness (checked by executing the rewritten
   code), and IR metadata. *)

open Xloops_compiler
module Reg = Xloops_isa.Reg
module Memory = Xloops_mem.Memory

(* -- IR metadata --------------------------------------------------------- *)

let test_ir_sources_dest () =
  let i : Ir.instr = Alu (Add, 5, 6, 7) in
  Alcotest.(check (list int)) "srcs" [ 6; 7 ] (Ir.sources i);
  Alcotest.(check (option int)) "dest" (Some 5) (Ir.dest i);
  Alcotest.(check (option int)) "store no dest" None
    (Ir.dest (Store (W, 3, 4, 0)));
  Alcotest.(check (option int)) "vzero dest hidden" None
    (Ir.dest (Li (Ir.vzero, 5l)));
  Alcotest.(check bool) "branch is control" true
    (Ir.is_control (Br (Beq, 1, 2, "l")));
  Alcotest.(check bool) "jmp unconditional" true
    (Ir.is_unconditional (Jmp "l"));
  Alcotest.(check (option string)) "target" (Some "l")
    (Ir.branch_target (Xloop ({ dp = Uc; cp = Fixed }, 1, 2, "l")))

let test_ir_map_regs () =
  let i : Ir.instr = Amo (Amo_add, 3, 4, 5) in
  (match Ir.map_regs (fun v -> v + 10) i with
   | Amo (Amo_add, 13, 14, 15) -> ()
   | _ -> Alcotest.fail "map_regs")

(* -- liveness ------------------------------------------------------------- *)

let live_at code ~num_vregs i v =
  let li = Regalloc.liveness (Array.of_list code) ~num_vregs in
  li.(i).(v / 63) land (1 lsl (v mod 63)) <> 0

let test_liveness_straightline () =
  let code : Ir.instr list =
    [ Li (1, 5l);            (* 0 *)
      Alu (Add, 2, 1, 1);    (* 1: last use of v1 *)
      Alu (Add, 3, 2, 2);    (* 2 *)
      Halt ]                 (* 3 *)
  in
  Alcotest.(check bool) "v1 live at 1" true (live_at code ~num_vregs:4 1 1);
  Alcotest.(check bool) "v1 dead at 2" false (live_at code ~num_vregs:4 2 1);
  Alcotest.(check bool) "v2 live at 2" true (live_at code ~num_vregs:4 2 2)

let test_liveness_around_loop () =
  (* v1 is defined before the loop and used inside it: live throughout
     the loop, including at the backward branch. *)
  let code : Ir.instr list =
    [ Li (1, 5l);            (* 0 *)
      Li (2, 10l);           (* 1 *)
      Label "top";           (* 2 *)
      Alu (Add, 3, 3, 1);    (* 3: uses v1 every iteration *)
      Alui (Add, 2, 2, -1);  (* 4 *)
      Br (Bne, 2, 0, "top"); (* 5 *)
      Halt ]
  in
  List.iter
    (fun i ->
       Alcotest.(check bool) (Printf.sprintf "v1 live at %d" i) true
         (live_at code ~num_vregs:4 i 1))
    [ 2; 3; 4; 5 ]

let test_intervals_cover_loop () =
  let code : Ir.instr array =
    [| Li (1, 5l);
       Label "top";
       Alu (Add, 2, 2, 1);
       Br (Bne, 2, 0, "top");
       Alu (Add, 3, 2, 2);
       Halt |]
  in
  let ivs = Regalloc.intervals code ~num_vregs:4 in
  let iv v = List.find (fun i -> i.Regalloc.v = v) ivs in
  Alcotest.(check bool) "v1 covers the loop" true
    ((iv 1).i_start = 0 && (iv 1).i_end >= 3);
  Alcotest.(check bool) "v2 reaches its last use" true ((iv 2).i_end = 4)

(* -- allocation ----------------------------------------------------------- *)

let test_no_spills_when_pressure_low () =
  let code : Ir.instr list =
    List.init 10 (fun k -> Ir.Li (k + 1, Int32.of_int k)) @ [ Ir.Halt ]
  in
  let _, slots = Regalloc.run code ~num_vregs:12 in
  Alcotest.(check int) "no spills" 0 slots

let test_spills_when_pressure_high () =
  (* 30 simultaneously-live values > 22 physical registers. *)
  let n = 30 in
  let defs = List.init n (fun k -> Ir.Li (k + 1, Int32.of_int k)) in
  let uses =
    List.init n (fun k -> Ir.Alu (Add, n + 1, k + 1, k + 1)) in
  let code = defs @ uses @ [ Ir.Halt ] in
  let rewritten, slots = Regalloc.run code ~num_vregs:(n + 2) in
  Alcotest.(check bool) "spilled" true (slots > 0);
  (* Every physical register in the output is architectural. *)
  List.iter
    (fun i ->
       List.iter
         (fun r -> Alcotest.(check bool) "valid reg" true (Reg.is_valid r))
         (Ir.sources i);
       match Ir.dest i with
       | Some d -> Alcotest.(check bool) "valid dest" true (Reg.is_valid d)
       | None -> ())
    rewritten

(* Execute a high-pressure program end to end: the sum of 30 distinct
   values survives allocation + spilling. *)
let test_spill_execution () =
  let n = 30 in
  let acc = n + 1 in
  let code =
    List.init n (fun k -> Ir.Li (k + 1, Int32.of_int ((k * 7) + 1)))
    @ [ Ir.Li (acc, 0l) ]
    @ List.init n (fun k -> Ir.Alu (Add, acc, acc, k + 1))
    @ [ Ir.Store (W, acc, Ir.vzero, 0x100); Ir.Halt ]
  in
  (* vzero is 0, so the store needs an address base: use an absolute
     register instead. *)
  let code =
    List.map
      (function
        | Ir.Store (w, v, b, _) when b = Ir.vzero ->
          Ir.Store (w, v, Ir.vzero, 0x100)
        | i -> i)
      code
  in
  let rewritten, slots = Regalloc.run code ~num_vregs:(n + 2) in
  Alcotest.(check bool) "spills happened" true (slots > 0);
  let prog = Codegen.emit ~spill_base:0x8000 rewritten in
  let mem = Memory.create () in
  (match Xloops_sim.Exec.run_serial prog mem with
   | Ok _ -> ()
   | Error stop ->
     failwith (Fmt.str "%a" Xloops_sim.Exec.pp_stop stop));
  let expected = List.init n (fun k -> (k * 7) + 1) |> List.fold_left (+) 0 in
  Alcotest.(check int) "sum survives spilling" expected
    (Memory.get_int mem 0x100)

let test_pool_excludes_reserved () =
  List.iter
    (fun r ->
       Alcotest.(check bool) (Reg.name r ^ " not allocatable") true
         (not (List.mem r Regalloc.pool)))
    [ Reg.zero; Reg.ra; Reg.sp; Reg.at; Reg.k0; Reg.k1 ];
  Alcotest.(check int) "22 registers" 22 Regalloc.num_pool

let () =
  Alcotest.run "regalloc"
    [ ("ir",
       [ Alcotest.test_case "sources/dest" `Quick test_ir_sources_dest;
         Alcotest.test_case "map_regs" `Quick test_ir_map_regs ]);
      ("liveness",
       [ Alcotest.test_case "straightline" `Quick
           test_liveness_straightline;
         Alcotest.test_case "around loop" `Quick test_liveness_around_loop;
         Alcotest.test_case "intervals" `Quick test_intervals_cover_loop ]);
      ("allocate",
       [ Alcotest.test_case "no spills" `Quick
           test_no_spills_when_pressure_low;
         Alcotest.test_case "spills under pressure" `Quick
           test_spills_when_pressure_high;
         Alcotest.test_case "spill execution" `Quick test_spill_execution;
         Alcotest.test_case "reserved registers" `Quick
           test_pool_excludes_reserved ]);
    ]
