(* Differential fuzzing: generate random Loopc kernels with annotated
   loops, compile them for both targets, and check that

   - general-ISA serial execution,
   - XLOOPS traditional execution, and
   - XLOOPS specialized execution (several machine configurations)

   all produce identical output memory.  Loop bodies combine arithmetic
   over loop-index subscripts, if/else control flow, reads of input
   arrays and writes to disjoint output cells (so unordered loops remain
   race-free by construction); ordered variants add a carried scalar
   and/or a fixed-distance memory recurrence, exercising the CIB and LSQ
   machinery against the serial semantics. *)

open Xloops_compiler
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config

let n = 24  (* elements per array *)

(* -- random expression / statement generation -------------------------- *)

(* Expressions over: the loop index [j], input arrays a/b, locals
   x0..x2, and (for ordered loops) the carried scalar [acc]. *)
let gen_expr ~carried depth =
  let open QCheck.Gen in
  let rec go depth st =
    let leaf =
      oneof
        ([ return (Ast.Var "j");
           map (fun c -> Ast.Int (c - 8)) (int_range 0 16);
           return (Ast.Load ("a", Var "j"));
           return (Ast.Load ("b", Var "j")) ]
         @ (if carried then
              [ return (Ast.Var "acc"); return (Ast.Var "acc2") ]
            else []))
    in
    if depth = 0 then leaf st
    else
      oneof
        [ leaf;
          (let* op = oneofl Ast.[ Add; Sub; Mul; Div; Rem; And; Or; Xor;
                                   Min; Max ] in
           let* l = go (depth - 1) in
           let* r = go (depth - 1) in
           return (Ast.Bin (op, l, r)));
          (let* l = go (depth - 1) in
           let* s = int_range 1 3 in
           return (Ast.Bin (Shr, l, Int s)));
          (* index expressions stay in range via masking *)
          (let* l = go (depth - 1) in
           return (Ast.Load ("a", Bin (And, l, Int (n - 1))))) ]
        st
  in
  go depth

let gen_stmts ~carried =
  let open QCheck.Gen in
  let expr d = gen_expr ~carried d in
  let stmt st =
    oneof
      ([ (let* e = expr 2 in
          return (Ast.Decl ("x", e)));
         (let* e = expr 2 in
          let* t = expr 1 in
          let* f = expr 1 in
          return (Ast.If (Bin (Lt, e, Int 0),
                          [ Ast.Store ("c", Var "j", t) ],
                          [ Ast.Store ("c", Var "j", f) ])) );
         (let* e = expr 2 in
          return (Ast.Store ("c", Var "j", e))) ]
       @ (if carried then
            [ (let* e = expr 1 in
               return (Ast.Assign ("acc", Bin (Add, Var "acc", e))));
              (let* e = expr 1 in
               return (Ast.Assign ("acc2",
                                   Bin (Add, Bin (Xor, Var "acc2", e),
                                        Int 1))));
              (let* e = expr 1 in
               return (Ast.If (Bin (Gt, e, Int 0),
                               [ Ast.Assign ("acc",
                                             Bin (Xor, Var "acc", e)) ],
                               [ Ast.Assign ("acc2",
                                             Bin (Sub, Var "acc2", e)) ])))
            ]
          else []))
      st
  in
  list_size (int_range 1 4) stmt

type case = {
  pragma : Ast.pragma;
  carried : bool;
  recurrence : bool;   (* c[j] also reads c[j-1]: memory-carried *)
  de : bool;           (* data-dependent exit instead of a fixed bound *)
  body : Ast.block;
  seed_a : int;
  seed_b : int;
}

let gen_case =
  let open QCheck.Gen in
  let* pragma = oneofl [ Ast.Unordered; Ast.Ordered; Ast.Atomic ] in
  let carried = pragma = Ast.Ordered in
  let* recurrence =
    if pragma = Ast.Ordered then bool else return false in
  let* de = bool in
  let* body = gen_stmts ~carried in
  let* seed_a = int_range 1 10000 in
  let* seed_b = int_range 1 10000 in
  return { pragma; carried; recurrence; de; body; seed_a; seed_b }

let kernel_of (c : case) : Ast.kernel =
  let pre =
    if c.carried then [ Ast.Decl ("acc", Int 0); Ast.Decl ("acc2", Int 7) ]
    else [] in
  let rec_read =
    if c.recurrence then
      [ Ast.Store ("c", Var "j",
                   Bin (Add, Load ("c", Var "j"),
                        Load ("c", Bin (And, Bin (Sub, Var "j", Int 1),
                                        Int (n - 1))))) ]
    else []
  in
  let post =
    if c.carried then
      [ Ast.Store ("accout", Int 0,
                   Bin (Xor, Var "acc", Bin (Mul, Var "acc2", Int 31))) ]
    else []
  in
  let loop =
    if c.de then
      (* Data-dependent exit: leave when a[j] is divisible by 8, with
         j = n-1 as the bound that guarantees termination. *)
      Ast.for_de ~pragma:c.pragma "j" (Int 0)
        (Bin (And,
              Bin (Ne, Bin (And, Load ("a", Var "j"), Int 7), Int 0),
              Bin (Lt, Var "j", Int (n - 1))))
        (c.body @ rec_read)
    else
      Ast.for_ ~pragma:c.pragma "j" (Int 0) (Var "n")
        (c.body @ rec_read)
  in
  { k_name = "fuzz";
    arrays = [ { a_name = "a"; a_ty = I32; a_len = n };
               { a_name = "b"; a_ty = I32; a_len = n };
               { a_name = "c"; a_ty = I32; a_len = n };
               { a_name = "accout"; a_ty = I32; a_len = 1 } ];
    consts = [ ("n", n) ];
    k_body = pre @ [ loop ] @ post }

let arb_case =
  QCheck.make gen_case
    ~print:(fun c ->
        Fmt.str "%a" Ast.pp_kernel (kernel_of c))

let run_case target cfg mode (c : case) =
  let compiled = Compile.compile ~target (kernel_of c) in
  let mem = Memory.create () in
  Memory.blit_int_array mem ~addr:(compiled.array_base "a")
    (Xloops_kernels.Dataset.ints ~seed:c.seed_a ~n ~bound:1000);
  Memory.blit_int_array mem ~addr:(compiled.array_base "b")
    (Xloops_kernels.Dataset.ints ~seed:c.seed_b ~n ~bound:1000);
  ignore (Machine.ok_exn (Machine.simulate ~cfg ~mode compiled.program mem));
  (Memory.read_int_array mem ~addr:(compiled.array_base "c") ~n,
   Memory.get_int mem (compiled.array_base "accout"))

let prop_differential =
  QCheck.Test.make ~name:"serial == traditional == specialized" ~count:150
    arb_case
    (fun c ->
       let reference =
         run_case Compile.general Config.io Machine.Traditional c in
       let same (a, acc) (b, acc') = a = b && acc = acc' in
       same reference
         (run_case Compile.xloops Config.io Machine.Traditional c)
       && same reference
         (run_case Compile.xloops Config.io_x Machine.Specialized c)
       && same reference
         (run_case Compile.xloops Config.ooo4_x Machine.Specialized c)
       && same reference
         (run_case Compile.xloops_no_xi Config.io_x Machine.Specialized c))

let prop_adaptive_differential =
  QCheck.Test.make ~name:"adaptive matches serial" ~count:40 arb_case
    (fun c ->
       let reference =
         run_case Compile.general Config.io Machine.Traditional c in
       reference = run_case Compile.xloops Config.ooo2_x Machine.Adaptive c)

(* Multithreaded lanes and 8-lane LPSUs must agree too. *)
let prop_design_space_differential =
  QCheck.Test.make ~name:"design-space configs match serial" ~count:60
    arb_case
    (fun c ->
       let reference =
         run_case Compile.general Config.io Machine.Traditional c in
       reference
       = run_case Compile.xloops Config.ooo4_x4_t Machine.Specialized c
       && reference
          = run_case Compile.xloops Config.ooo4_x8_r_m Machine.Specialized c
       && reference
          = run_case Compile.xloops Config.io_x_fwd Machine.Specialized c
       && reference
          = run_case Compile.xloops Config.io_x_ss2 Machine.Specialized c)

(* Random fault plans: with the safety net on, a specialized run under
   injected transient faults must still complete and leave memory
   identical to the serial reference — degrading to traditional
   re-execution whenever the plan actually bites. *)
let run_case_faulted fault_seed (c : case) =
  let compiled = Compile.compile ~target:Compile.xloops (kernel_of c) in
  let mem = Memory.create () in
  Memory.blit_int_array mem ~addr:(compiled.array_base "a")
    (Xloops_kernels.Dataset.ints ~seed:c.seed_a ~n ~bound:1000);
  Memory.blit_int_array mem ~addr:(compiled.array_base "b")
    (Xloops_kernels.Dataset.ints ~seed:c.seed_b ~n ~bound:1000);
  let faults = Xloops_sim.Fault.plan ~seed:fault_seed ~events:10 () in
  (match Machine.simulate ~faults ~watchdog:20_000 ~cfg:Config.io_x
           ~mode:Machine.Specialized compiled.program mem with
   | Ok _ -> ()
   | Error f ->
     QCheck.Test.fail_reportf "faulted run failed: %a" Machine.pp_failure f);
  (Memory.read_int_array mem ~addr:(compiled.array_base "c") ~n,
   Memory.get_int mem (compiled.array_base "accout"))

let prop_fault_differential =
  QCheck.Test.make ~name:"faulted+degraded matches serial" ~count:100
    (QCheck.pair arb_case QCheck.small_nat)
    (fun (c, fault_seed) ->
       run_case Compile.general Config.io Machine.Traditional c
       = run_case_faulted fault_seed c)

let () =
  Alcotest.run "fuzz"
    [ ("differential",
       [ QCheck_alcotest.to_alcotest prop_differential;
         QCheck_alcotest.to_alcotest prop_adaptive_differential;
         QCheck_alcotest.to_alcotest prop_design_space_differential;
         QCheck_alcotest.to_alcotest prop_fault_differential ]);
    ]
