(* Machine-level tests: timing models, execution modes, fallback paths and
   adaptive execution. *)

open Xloops_isa
module B = Xloops_asm.Builder
module Memory = Xloops_mem.Memory
module Machine = Xloops_sim.Machine
module Config = Xloops_sim.Config
module Scan = Xloops_sim.Scan

let uc = { Insn.dp = Uc; cp = Fixed }
let orm = { Insn.dp = Orm; cp = Fixed }

let base_in = 0x1000 and base_out = 0x2000

(* n iterations; [ilp] independent adds per iteration so out-of-order cores
   have work to overlap. *)
let ilp_kernel ~n ~ilp =
  let b = B.create () in
  B.li b 8 base_in;
  B.li b 9 base_out;
  B.li b 10 (n * 4);
  B.li b 11 0;
  B.label b "body";
  B.add b 12 8 11;
  B.lw b 13 12 0;
  for k = 0 to ilp - 1 do
    let rd = 16 + (k mod 8) in
    B.addi b rd 13 k
  done;
  B.add b 12 9 11;
  B.sw b 13 12 0;
  B.xi_addi b 11 11 4;
  B.xloop b uc 11 10 "body";
  B.halt b;
  B.assemble b

let fresh_mem n =
  let m = Memory.create () in
  for i = 0 to n - 1 do Memory.set_int m (base_in + 4 * i) (i * 2) done;
  m

let simulate ?adaptive ~cfg ~mode prog mem =
  Machine.ok_exn (Machine.simulate ?adaptive ~cfg ~mode prog mem)

let cycles ~cfg ~mode prog mem = (simulate ~cfg ~mode prog mem).Machine.cycles

let test_ooo_faster_than_io () =
  let n = 128 in
  let prog = ilp_kernel ~n ~ilp:8 in
  let c_io = cycles ~cfg:Config.io ~mode:Traditional prog (fresh_mem n) in
  let c_o2 = cycles ~cfg:Config.ooo2 ~mode:Traditional prog (fresh_mem n) in
  let c_o4 = cycles ~cfg:Config.ooo4 ~mode:Traditional prog (fresh_mem n) in
  Alcotest.(check bool)
    (Printf.sprintf "ooo2 (%d) < io (%d)" c_o2 c_io) true (c_o2 < c_io);
  Alcotest.(check bool)
    (Printf.sprintf "ooo4 (%d) <= ooo2 (%d)" c_o4 c_o2) true (c_o4 <= c_o2)

let test_traditional_on_lpsu_config_matches () =
  (* Traditional execution on io+x must cost the same as on io: the LPSU
     is idle and the binary identical. *)
  let n = 64 in
  let prog = ilp_kernel ~n ~ilp:2 in
  let c1 = cycles ~cfg:Config.io ~mode:Traditional prog (fresh_mem n) in
  let c2 = cycles ~cfg:Config.io_x ~mode:Traditional prog (fresh_mem n) in
  Alcotest.(check int) "identical" c1 c2

let test_specialized_requires_lpsu () =
  let prog = ilp_kernel ~n:4 ~ilp:1 in
  Alcotest.(check bool) "raises" true
    (try
       ignore (simulate ~cfg:Config.io ~mode:Specialized prog
                 (fresh_mem 4));
       false
     with Invalid_argument _ -> true)

let test_fallback_unsupported_pattern () =
  (* An LPSU that only supports uc executes an orm loop traditionally. *)
  let n = 32 in
  let b = B.create () in
  B.li b 8 base_in;
  B.li b 10 (n * 4);
  B.li b 11 0;
  B.li b 16 0;
  B.label b "body";
  B.add b 12 8 11;
  B.lw b 13 12 0;
  B.add b 16 16 13;     (* CIR *)
  B.sw b 16 12 0;
  B.xi_addi b 11 11 4;
  B.xloop b orm 11 10 "body";
  B.halt b;
  let prog = B.assemble b in
  let lpsu = { Config.default_lpsu with supported = [ Insn.Uc ] } in
  let cfg = Config.with_lpsu Config.io "+uconly" ~lpsu in
  let r = simulate ~cfg ~mode:Specialized prog (fresh_mem n) in
  Alcotest.(check int) "nothing specialized" 0
    r.Machine.stats.xloops_specialized;
  (* And the result is still correct. *)
  let m2 = fresh_mem n in
  ignore (simulate ~cfg:Config.io ~mode:Traditional prog m2)

let test_fallback_body_too_large () =
  let n = 16 in
  let b = B.create () in
  B.li b 8 base_in;
  B.li b 10 (n * 4);
  B.li b 11 0;
  B.label b "body";
  for _ = 1 to 40 do B.addi b 16 16 1 done;
  B.xi_addi b 11 11 4;
  B.xloop b uc 11 10 "body";
  B.halt b;
  let prog = B.assemble b in
  let lpsu = { Config.default_lpsu with ib_entries = 16 } in
  let cfg = Config.with_lpsu Config.io "+tiny" ~lpsu in
  let r = simulate ~cfg ~mode:Specialized prog (fresh_mem n) in
  Alcotest.(check int) "fell back" 0 r.Machine.stats.xloops_specialized

let test_scan_analysis () =
  let n = 8 in
  let prog = ilp_kernel ~n ~ilp:1 in
  (* Find the xloop. *)
  let xloop_pc = ref (-1) in
  Array.iteri
    (fun pc i -> if Insn.is_xloop i then xloop_pc := pc)
    prog.Xloops_asm.Program.insns;
  let regs = Array.make 32 0 in
  regs.(11) <- 4;   (* idx after iteration 0 *)
  regs.(10) <- n * 4;
  match Scan.analyze prog ~xloop_pc:!xloop_pc ~regs
          ~lpsu:Config.default_lpsu with
  | Error e -> Alcotest.failf "analysis failed: %a" Scan.pp_fallback e
  | Ok info ->
    Alcotest.(check int) "idx reg" 11 info.r_idx;
    Alcotest.(check int) "bound reg" 10 info.r_bound;
    Alcotest.(check int32) "step" 4l info.idx_step;
    Alcotest.(check int) "no cirs for uc" 0 (List.length info.cirs)

let test_adaptive_finishes_and_is_sane () =
  let n = 600 in  (* enough iterations to trip the 256-iteration profile *)
  let prog = ilp_kernel ~n ~ilp:2 in
  let m = fresh_mem n in
  let r = simulate ~cfg:Config.io_x ~mode:Adaptive prog m in
  (* Results correct. *)
  for i = 0 to n - 1 do
    Alcotest.(check int) "out" (i * 2) (Memory.get_int m (base_out + 4 * i))
  done;
  (* Adaptive must be within the envelope of pure modes (with slack for
     profiling overhead). *)
  let c_t = cycles ~cfg:Config.io_x ~mode:Traditional prog (fresh_mem n) in
  let c_s = cycles ~cfg:Config.io_x ~mode:Specialized prog (fresh_mem n) in
  let lo = min c_t c_s and hi = max c_t c_s in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive %d within [%d, %d+25%%]" r.Machine.cycles lo hi)
    true
    (r.Machine.cycles <= hi * 5 / 4 && r.Machine.cycles >= lo / 2)

let test_adaptive_short_loop_keeps_profiling () =
  (* A loop with fewer total iterations than the profiling threshold never
     triggers specialized execution, but still completes correctly. *)
  let n = 50 in
  let prog = ilp_kernel ~n ~ilp:1 in
  let m = fresh_mem n in
  let r = simulate ~cfg:Config.io_x ~mode:Adaptive prog m in
  Alcotest.(check int) "no specialization" 0
    r.Machine.stats.xloops_specialized;
  for i = 0 to n - 1 do
    Alcotest.(check int) "out" (i * 2) (Memory.get_int m (base_out + 4 * i))
  done

let test_insn_counts_match_modes () =
  (* Committed instruction counts should be equal between traditional and
     specialized execution of the same binary (same architectural work). *)
  let n = 100 in
  let prog = ilp_kernel ~n ~ilp:3 in
  let rt = simulate ~cfg:Config.io_x ~mode:Traditional prog
      (fresh_mem n) in
  let rs = simulate ~cfg:Config.io_x ~mode:Specialized prog
      (fresh_mem n) in
  Alcotest.(check int) "committed insns equal" rt.Machine.insns
    rs.Machine.insns

(* -- GPP timing-model properties ---------------------------------------- *)

module Gpp_timing = Xloops_sim.Gpp_timing
module Stats = Xloops_sim.Stats
module Exec = Xloops_sim.Exec

(* Drive a timing model over a program's committed event stream. *)
let time_program cfg prog =
  let stats = Stats.create () in
  let timing = Gpp_timing.create cfg stats in
  let mem = Memory.create () in
  let h = Exec.create_hart () in
  let pre = Xloops_asm.Program.predecode prog in
  let iface = Exec.direct_mem mem in
  let ev = Exec.create_event () in
  (try
     while true do
       Exec.step pre h iface ev;
       Gpp_timing.consume timing ev
     done
   with Exec.Halted -> ());
  Gpp_timing.barrier timing;
  (Gpp_timing.now timing, stats)

let straightline ~iters ~dep =
  (* A hot loop of 8 adds per iteration: [dep] chains them (serial
     dataflow), otherwise they are independent. *)
  let b = B.create () in
  B.li b 8 1;
  B.li b 9 iters;
  B.label b "top";
  for k = 0 to 7 do
    if dep then B.add b 10 10 8
    else B.add b (10 + k) 8 8
  done;
  B.addi b 9 9 (-1);
  B.bne b 9 0 "top";
  B.halt b;
  B.assemble b

let test_ooo_exploits_independence () =
  let serial, _ = time_program Config.ooo4.gpp
      (straightline ~iters:100 ~dep:true) in
  let parallel, _ =
    time_program Config.ooo4.gpp (straightline ~iters:100 ~dep:false) in
  Alcotest.(check bool)
    (Printf.sprintf "parallel %d << serial %d" parallel serial)
    true (parallel * 2 < serial)

let test_inorder_indifferent_to_independence () =
  (* A scoreboarded single-issue core runs 1-cycle adds back to back
     either way. *)
  let serial, _ = time_program Config.io.gpp
      (straightline ~iters:100 ~dep:true) in
  let parallel, _ =
    time_program Config.io.gpp (straightline ~iters:100 ~dep:false) in
  Alcotest.(check bool)
    (Printf.sprintf "|%d - %d| small" serial parallel)
    true (abs (serial - parallel) <= 8)

let test_taken_branches_cost_io () =
  let loopy n =
    let b = B.create () in
    B.li b 8 n;
    B.label b "top";
    B.addi b 8 8 (-1);
    B.bne b 8 0 "top";
    B.halt b;
    B.assemble b
  in
  let c, stats = time_program Config.io.gpp (loopy 100) in
  (* 2 insns + 2 bubble cycles per iteration, roughly. *)
  Alcotest.(check bool) (Printf.sprintf "%d cycles for 100 iters" c) true
    (c >= 390 && c <= 440);
  Alcotest.(check int) "100 branches" 100 stats.branches

let test_predictor_learns_loop () =
  (* On the OOO model the bimodal predictor mispredicts only the final
     not-taken branch (plus cold effects). *)
  let loopy n =
    let b = B.create () in
    B.li b 8 n;
    B.label b "top";
    B.addi b 8 8 (-1);
    B.bne b 8 0 "top";
    B.halt b;
    B.assemble b
  in
  let _, stats = time_program Config.ooo2.gpp (loopy 200) in
  Alcotest.(check bool)
    (Printf.sprintf "%d mispredicts" stats.mispredicts) true
    (stats.mispredicts <= 2)

let test_cache_miss_costs () =
  (* Streaming over 32 KB (2x the L1) repeatedly must be slower per
     access than re-reading one hot line. *)
  let stream ~stride ~accesses =
    let b = B.create () in
    B.li b 8 0;                     (* addr *)
    B.li b 9 accesses;
    B.label b "top";
    B.lw b 10 8 0;
    B.addi b 8 8 stride;
    B.andi b 8 8 0x7FFF;            (* wrap at 32 KB *)
    B.addi b 9 9 (-1);
    B.bne b 9 0 "top";
    B.halt b;
    B.assemble b
  in
  let cold, s1 = time_program Config.io.gpp (stream ~stride:32 ~accesses:800)
  in
  let hot, s2 = time_program Config.io.gpp (stream ~stride:0 ~accesses:800)
  in
  Alcotest.(check bool) (Printf.sprintf "cold %d > hot %d" cold hot) true
    (cold > hot + 800 * 5);
  Alcotest.(check bool) "misses counted" true
    (s1.dcache_misses > 700 && s2.dcache_misses < 10)

let test_window_monotone () =
  let prog = straightline ~iters:50 ~dep:false in
  let cycles window =
    let gpp = { Config.ooo4.gpp with kind = Ooo { width = 4; window } } in
    fst (time_program gpp prog)
  in
  let c8 = cycles 8 and c32 = cycles 32 and c128 = cycles 128 in
  Alcotest.(check bool)
    (Printf.sprintf "window 8 %d >= 32 %d >= 128 %d" c8 c32 c128)
    true (c8 >= c32 && c32 >= c128)

let test_scan_cost_model () =
  let stats = Stats.create () in
  let t_io = Gpp_timing.create Config.io.gpp stats in
  let t_ooo = Gpp_timing.create Config.ooo4.gpp stats in
  let l = Config.default_lpsu in
  Alcotest.(check int) "io scan" (l.scan_fixed + 50)
    (Gpp_timing.scan_cycles t_io l ~body_insns:50);
  Alcotest.(check bool) "ooo overlaps the fixed part" true
    (Gpp_timing.scan_cycles t_ooo l ~body_insns:50
     < Gpp_timing.scan_cycles t_io l ~body_insns:50)

let test_skip_to_advances_clock () =
  let stats = Stats.create () in
  let t = Gpp_timing.create Config.io.gpp stats in
  Gpp_timing.skip_to t 12345;
  Alcotest.(check bool) "clock advanced" true (Gpp_timing.now t >= 12345)


(* -- APT behaviour and encoded-binary execution -------------------------- *)

module Registry = Xloops_kernels.Registry
module Kernel = Xloops_kernels.Kernel

let test_apt_decision_sticks () =
  (* war-uc runs its inner uc xloop once per (k, i) pair — hundreds of
     dynamic instances of one static loop.  The APT profiles across
     instances, decides once, and never flip-flops: at most one
     migration, and the later instances follow the cached decision. *)
  let k = Registry.find "war-uc" in
  let r = Kernel.run ~cfg:Config.ooo4_x ~mode:Machine.Adaptive k in
  (match r.Kernel.check_result with Ok () -> () | Error m -> Alcotest.fail m);
  Alcotest.(check bool)
    (Printf.sprintf "migrations %d <= 1" r.result.stats.migrations)
    true (r.result.stats.migrations <= 1);
  (* The decision applies: either everything specialized after the
     profile, or nothing more did. *)
  Alcotest.(check bool) "ran to completion" true (r.result.cycles > 0)

let test_apt_profiles_across_instances () =
  (* An inner xloop with only 40 iterations per instance: a single
     instance never reaches the 256-iteration profile threshold, but ten
     instances do — so specialization (or an explicit decision) must
     eventually kick in on a winning kernel. *)
  let b = B.create () in
  let n = 40 and outer = 12 in
  B.li b 20 outer;
  B.label b "outer";
  B.li b 8 base_in;
  B.li b 10 (n * 4);
  B.li b 11 0;
  B.label b "body";
  B.add b 12 8 11;
  B.lw b 13 12 0;
  B.add b 13 13 13;
  B.add b 12 9 11;
  B.sw b 13 12 0;
  B.xi_addi b 11 11 4;
  B.xloop b uc 11 10 "body";
  B.addi b 20 20 (-1);
  B.bne b 20 0 "outer";
  B.halt b;
  let prog = B.assemble b in
  let m = fresh_mem n in
  let r = simulate ~cfg:Config.io_x ~mode:Adaptive prog m in
  (* 12 instances x 39 back-edges = 468 > 256: the profile completes in
     the 7th instance and the remaining instances run specialized. *)
  Alcotest.(check bool)
    (Printf.sprintf "specialized %d instances" r.stats.xloops_specialized)
    true (r.stats.xloops_specialized >= 1)

let test_encoded_binary_runs_identically () =
  (* Encode a real kernel to machine words, decode it back, and run it:
     identical cycles and identical memory. *)
  let k = Registry.find "dither-or" in
  let c = Xloops_compiler.Compile.compile k.kernel in
  let words = Xloops_asm.Program.encode c.program in
  let decoded = Xloops_asm.Program.decode words in
  let run prog =
    let mem = Memory.create () in
    k.init c.array_base mem;
    let r = simulate ~cfg:Config.io_x ~mode:Specialized prog mem in
    (r.Machine.cycles, Memory.read_bytes mem ~addr:(c.array_base "bw")
       ~n:(24 * 64))
  in
  let c1, m1 = run c.program in
  let c2, m2 = run decoded in
  Alcotest.(check int) "cycles identical" c1 c2;
  Alcotest.(check (array int)) "memory identical" m1 m2


let () =
  Alcotest.run "machine"
    [ ("timing",
       [ Alcotest.test_case "ooo beats io on ILP" `Quick
           test_ooo_faster_than_io;
         Alcotest.test_case "traditional ignores LPSU" `Quick
           test_traditional_on_lpsu_config_matches ]);
      ("modes",
       [ Alcotest.test_case "specialized needs LPSU" `Quick
           test_specialized_requires_lpsu;
         Alcotest.test_case "insn counts match" `Quick
           test_insn_counts_match_modes ]);
      ("fallback",
       [ Alcotest.test_case "unsupported pattern" `Quick
           test_fallback_unsupported_pattern;
         Alcotest.test_case "body too large" `Quick
           test_fallback_body_too_large ]);
      ("scan", [ Alcotest.test_case "analysis" `Quick test_scan_analysis ]);
      ("adaptive",
       [ Alcotest.test_case "sane envelope" `Quick
           test_adaptive_finishes_and_is_sane;
         Alcotest.test_case "short loop" `Quick
           test_adaptive_short_loop_keeps_profiling ]);
      ("apt",
       [ Alcotest.test_case "decision sticks" `Quick
           test_apt_decision_sticks;
         Alcotest.test_case "profiles across instances" `Quick
           test_apt_profiles_across_instances ]);
      ("binary",
       [ Alcotest.test_case "encoded binary runs" `Quick
           test_encoded_binary_runs_identically ]);
      ("gpp-timing",
       [ Alcotest.test_case "ooo exploits ILP" `Quick
           test_ooo_exploits_independence;
         Alcotest.test_case "io indifferent to ILP" `Quick
           test_inorder_indifferent_to_independence;
         Alcotest.test_case "taken-branch cost" `Quick
           test_taken_branches_cost_io;
         Alcotest.test_case "predictor learns" `Quick
           test_predictor_learns_loop;
         Alcotest.test_case "cache misses" `Quick test_cache_miss_costs;
         Alcotest.test_case "window monotone" `Quick test_window_monotone;
         Alcotest.test_case "scan cost" `Quick test_scan_cost_model;
         Alcotest.test_case "skip_to" `Quick test_skip_to_advances_clock ]);
    ]


